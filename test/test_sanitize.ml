(* Tests for the runtime protocol sanitizers (lib/sanitize).

   Two directions, both load-bearing:
   - seeded whole-stack runs (lossy wire, kill/restart) must come back
     sanitizer-clean with a nonzero check count — the sanitizers hold
     on healthy executions and are demonstrably attached;
   - deliberately injected protocol violations (double-release, stale
     fill across a reset, dispatch to a swept pid, diverged mirror)
     must each be caught with a precise diagnostic. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let us = Sim.Units.us
let ms = Sim.Units.ms

module C = Experiments.Common
module P = Fault.Plan
module Z = Sanitize

let lauberhorn =
  C.Lauberhorn (Lauberhorn.Config.enzian, Lauberhorn.Sched_mirror.Push)

let bypass = C.Bypass Coherence.Interconnect.pcie_enzian
let linux = C.Linux Coherence.Interconnect.pcie_enzian

let collector engine = Z.create ~mode:Z.Collect engine

let details z = List.map (fun v -> v.Z.detail) (Z.violations z)

let assert_clean name z =
  List.iter
    (fun v -> Format.eprintf "%s: %a@." name Z.pp_violation v)
    (Z.violations z);
  checki (name ^ ": no violations") 0 (List.length (Z.violations z));
  checkb (name ^ ": sanitizer actually ran checks") true (Z.checks_run z > 0)

let has_detail z needle =
  List.exists
    (fun d ->
      let len = String.length needle in
      let n = String.length d in
      let rec go i = i + len <= n && (String.equal (String.sub d i len) needle || go (i + 1)) in
      go 0)
    (details z)

(* --- session plumbing ---------------------------------------------- *)

let test_collect_and_raise () =
  let engine = Sim.Engine.create () in
  let z = collector engine in
  Z.report z ~checker:"test" "first";
  Z.report z ~checker:"test" "second";
  (match Z.violations z with
  | [ a; b ] ->
      Alcotest.check Alcotest.string "oldest first" "first" a.Z.detail;
      Alcotest.check Alcotest.string "then newest" "second" b.Z.detail
  | vs -> Alcotest.failf "expected 2 violations, got %d" (List.length vs));
  let zr = Z.create engine in
  (* default Raise mode *)
  match Z.report zr ~checker:"test" "boom" with
  | () -> Alcotest.fail "Raise mode did not raise"
  | exception Z.Violation v ->
      Alcotest.check Alcotest.string "checker" "test" v.Z.checker

let test_finish_idempotent () =
  let engine = Sim.Engine.create () in
  let z = collector engine in
  let runs = ref 0 in
  Z.on_finish z (fun () -> incr runs);
  Z.finish z;
  Z.finish z;
  checki "finisher ran exactly once" 1 !runs

(* --- pool sanitizer ------------------------------------------------ *)

let test_pool_clean_lifecycle () =
  let engine = Sim.Engine.create () in
  let z = collector engine in
  let pool = Net.Pool.create ~buffer_bytes:64 () in
  let w = Z.Pool_watch.attach z pool in
  let b1 = Net.Pool.acquire pool in
  let b2 = Net.Pool.acquire pool in
  checki "two outstanding" 2 (Z.Pool_watch.outstanding w);
  Net.Pool.release pool b1;
  Net.Pool.release pool b2;
  checki "none outstanding" 0 (Z.Pool_watch.outstanding w);
  Z.finish z;
  assert_clean "pool lifecycle" z

let test_pool_double_release_caught () =
  let engine = Sim.Engine.create () in
  let z = collector engine in
  let pool = Net.Pool.create ~buffer_bytes:64 () in
  let _w = Z.Pool_watch.attach z pool in
  let b1 = Net.Pool.acquire pool in
  let _b2 = Net.Pool.acquire pool in
  Net.Pool.release pool b1;
  Net.Pool.release pool b1;
  (* double release of b1 *)
  checkb "double release diagnosed" true (has_detail z "double release")

let test_pool_poisoning_detects_use_after_release () =
  let engine = Sim.Engine.create () in
  let z = collector engine in
  let pool = Net.Pool.create ~buffer_bytes:64 () in
  let w = Z.Pool_watch.attach z pool in
  let b = Net.Pool.acquire pool in
  Bytes.fill b 0 (Bytes.length b) 'A';
  let stale_view = Net.Slice.of_bytes b in
  Z.Pool_watch.assert_live w stale_view;
  checki "live view passes" 0 (List.length (Z.violations z));
  Net.Pool.release pool b;
  checkb "released buffer is poisoned" true
    (Char.equal (Bytes.get b 0) Z.Pool_watch.poison_byte);
  Z.Pool_watch.assert_live w stale_view;
  checkb "use-after-release diagnosed" true (has_detail z "use-after-release")

let test_pool_leak_caught_and_in_flight_excused () =
  let engine = Sim.Engine.create () in
  let z = collector engine in
  let pool = Net.Pool.create ~buffer_bytes:64 () in
  let _w = Z.Pool_watch.attach z pool in
  let _leaked = Net.Pool.acquire pool in
  Z.finish z;
  checkb "leak diagnosed at finish" true (has_detail z "leak");
  (* The same shape with the buffer legitimately parked (e.g. in a NIC
     ring descriptor) is excused by the in_flight closure. *)
  let engine2 = Sim.Engine.create () in
  let z2 = collector engine2 in
  let pool2 = Net.Pool.create ~buffer_bytes:64 () in
  let _w2 = Z.Pool_watch.attach z2 ~in_flight:(fun () -> 1) pool2 in
  let _parked = Net.Pool.acquire pool2 in
  Z.finish z2;
  assert_clean "parked buffer is not a leak" z2

(* --- event-loop sanitizer ------------------------------------------ *)

let test_engine_watch_clean_run () =
  let engine = Sim.Engine.create () in
  let z = collector engine in
  Z.Engine_watch.attach z engine;
  let fired = ref 0 in
  for i = 1 to 50 do
    ignore
      (Sim.Engine.schedule_at engine ~at:(us (51 - i)) (fun () -> incr fired))
  done;
  Sim.Engine.run engine ~until:(ms 1);
  Z.finish z;
  checki "all events fired" 50 !fired;
  assert_clean "monotone event loop" z

let heap_ops =
  QCheck.(list (pair (int_bound 10_000) bool))

let prop_event_heap_valid_under_fuzz =
  QCheck.Test.make ~count:200 ~name:"event heap stays valid under push/cancel/pop fuzz"
    heap_ops (fun ops ->
      let h = Sim.Event_heap.create () in
      let handles = ref [] in
      List.iter
        (fun (time, do_cancel) ->
          let hd = Sim.Event_heap.push h ~time () in
          handles := hd :: !handles;
          if do_cancel then begin
            match !handles with
            | victim :: rest ->
                Sim.Event_heap.cancel h victim;
                handles := rest
            | [] -> ()
          end)
        ops;
      (match Sim.Event_heap.validate h with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_report e);
      (* Draining must yield nondecreasing times and agree with live. *)
      let rec drain last n =
        match Sim.Event_heap.pop h with
        | None -> n
        | Some (t, ()) ->
            if t < last then QCheck.Test.fail_report "pop went backwards";
            drain t (n + 1)
      in
      let popped = drain min_int 0 in
      ignore popped;
      Sim.Event_heap.is_empty h)

(* --- coherence sanitizer ------------------------------------------- *)

let agent_profile = Coherence.Interconnect.eci

let test_coherence_clean_protocol () =
  let engine = Sim.Engine.create () in
  let z = collector engine in
  let ha =
    Coherence.Home_agent.create engine agent_profile ~timeout:(ms 15) ()
  in
  Z.Coherence_watch.attach z ha;
  let line = Coherence.Home_agent.alloc_line ha in
  let fills = ref 0 in
  Coherence.Home_agent.cpu_load ha line (fun _ -> incr fills);
  Sim.Engine.run engine ~until:(us 10);
  Coherence.Home_agent.stage ha line (Bytes.make 16 'd');
  Sim.Engine.run engine ~until:(ms 1);
  checki "fill delivered" 1 !fills;
  (* A reset with nothing in flight is a legitimate teardown. *)
  Coherence.Home_agent.reset_line ha line;
  Z.finish z;
  assert_clean "clean coherence protocol" z

let test_coherence_stale_fill_caught () =
  let engine = Sim.Engine.create () in
  let z = collector engine in
  let ha =
    Coherence.Home_agent.create engine agent_profile ~timeout:(ms 15) ()
  in
  Z.Coherence_watch.attach z ha;
  let line = Coherence.Home_agent.alloc_line ha in
  Coherence.Home_agent.cpu_load ha line (fun _ -> ());
  (* Let the load reach the agent and park. *)
  Sim.Engine.run engine ~until:(us 10);
  checkb "load parked" true (Coherence.Home_agent.load_parked ha line);
  (* Complete it — the fill is now crossing the interconnect — and
     tear the line down before the fill lands. *)
  Coherence.Home_agent.stage ha line (Bytes.make 16 'd');
  Coherence.Home_agent.reset_line ha line;
  Sim.Engine.run engine ~until:(ms 1);
  checkb "stale fill diagnosed" true (has_detail z "reset_line")

let test_directory_invariants_checked () =
  let engine = Sim.Engine.create () in
  let z = collector engine in
  let dir = Coherence.Directory.create () in
  ignore (Coherence.Directory.read dir ~line:0 ~agent:1);
  ignore (Coherence.Directory.read dir ~line:0 ~agent:2);
  ignore (Coherence.Directory.write dir ~line:1 ~agent:0);
  let before = Z.checks_run z in
  Z.Coherence_watch.check_directory z dir;
  checkb "directory check counted" true (Z.checks_run z > before);
  checki "well-formed directory clean" 0 (List.length (Z.violations z))

(* --- scheduler-mirror sanitizer ------------------------------------ *)

let test_mirror_divergence_caught () =
  let engine = Sim.Engine.create () in
  let z = collector engine in
  let _w =
    Z.Mirror_watch.attach z ~name:"test-mirror"
      ~truth:(fun () -> "core0=7.1")
      ~view:(fun () -> "core0=-")
      ()
  in
  Z.finish z;
  checkb "divergence diagnosed" true (has_detail z "test-mirror")

let test_mirror_divergence_skipped_mid_push () =
  let engine = Sim.Engine.create () in
  let z = collector engine in
  let _w =
    Z.Mirror_watch.attach z
      ~quiesced:(fun () -> false)
      ~name:"test-mirror"
      ~truth:(fun () -> "core0=7.1")
      ~view:(fun () -> "core0=-")
      ()
  in
  Z.finish z;
  checki "cutoff mid-push is not a violation" 0 (List.length (Z.violations z))

let test_mirror_dead_pid_dispatch_caught () =
  let engine = Sim.Engine.create () in
  let z = collector engine in
  let same () = "core0=-" in
  let w = Z.Mirror_watch.attach z ~name:"test-mirror" ~truth:same ~view:same () in
  Z.Mirror_watch.dispatch w ~pid:7 ~alive:true;
  checki "stale-window dispatch passes" 0 (List.length (Z.violations z));
  Z.Mirror_watch.dispatch w ~pid:7 ~alive:false;
  checkb "swept-pid dispatch diagnosed" true (has_detail z "pid 7")

(* --- whole-stack seeded runs --------------------------------------- *)

(* A short lossy open-loop run with every sanitizer attached (the
   Collect session is passed straight through [make_server], which
   wires the engine, coherence, mirror and pool watches exactly as
   LAUBERHORN_SANITIZE=1 does). *)
let sanitized_lossy ~seed ~flavour ?(kill = false) () =
  let plan =
    P.make ~seed
      ~wire:
        (P.link ~drop:0.05 ~duplicate:0.05 ~corrupt:0.02 ~reorder:0.1
           ~reorder_delay:(us 30) ())
      ()
  in
  let engine = Sim.Engine.create () in
  let z = collector engine in
  let chaos =
    Harness.Chaos.create engine ~plan ~timeout:(us 100) ~retries:60
      ~backoff:1.5 ~max_timeout:(us 500) ~jitter:0.25 ()
  in
  let setup = Workload.Scenario.echo_fleet ~n:1 () in
  let server =
    C.make_server ~ncores:4 ~engine ~fault:plan ~sanitize:z
      ~egress:(Harness.Chaos.egress chaos) flavour setup
  in
  Harness.Chaos.connect chaos server.C.driver;
  let service_id = Workload.Scenario.service_id_of setup ~service_idx:0 in
  let port = Workload.Scenario.port_of setup ~service_idx:0 in
  let rng = Sim.Rng.create ~seed:(seed + 1) in
  Workload.Arrivals.open_loop engine rng ~rate_per_s:50_000. ~until:(ms 2)
    (fun ~seq:_ ->
      Harness.Chaos.call chaos ~service_id ~method_id:0 ~port
        (Rpc.Value.Blob (Bytes.make 32 'x')));
  if kill then begin
    ignore
      (Sim.Engine.schedule_at engine ~at:(us 600) (fun () ->
           server.C.kill_service ~service_id));
    ignore
      (Sim.Engine.schedule_at engine ~at:(ms 1) (fun () ->
           server.C.restart_service ~service_id))
  end;
  Sim.Engine.run engine ~until:(ms 40);
  server.C.flush ();
  Z.finish z;
  z

let seeds = QCheck.int_bound 9_999

let prop_lossy_runs_sanitizer_clean flavour name =
  QCheck.Test.make ~count:4 ~name seeds (fun seed ->
      let z = sanitized_lossy ~seed ~flavour () in
      List.iter
        (fun v -> Format.eprintf "seed %d: %a@." seed Z.pp_violation v)
        (Z.violations z);
      List.length (Z.violations z) = 0 && Z.checks_run z > 0)

let test_kill_restart_sanitizer_clean () =
  let z = sanitized_lossy ~seed:42 ~flavour:lauberhorn ~kill:true () in
  assert_clean "lauberhorn kill/restart under loss" z

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  let q t = QCheck_alcotest.to_alcotest t in
  Alcotest.run "sanitize"
    [
      ( "session",
        [
          tc "collect vs raise" test_collect_and_raise;
          tc "finish idempotent" test_finish_idempotent;
        ] );
      ( "pool",
        [
          tc "clean lifecycle" test_pool_clean_lifecycle;
          tc "double release caught" test_pool_double_release_caught;
          tc "use-after-release via poisoning"
            test_pool_poisoning_detects_use_after_release;
          tc "leak caught, ring-parked excused"
            test_pool_leak_caught_and_in_flight_excused;
        ] );
      ( "engine",
        [
          tc "clean run" test_engine_watch_clean_run;
          q prop_event_heap_valid_under_fuzz;
        ] );
      ( "coherence",
        [
          tc "clean protocol" test_coherence_clean_protocol;
          tc "stale fill across reset caught" test_coherence_stale_fill_caught;
          tc "directory invariants" test_directory_invariants_checked;
        ] );
      ( "mirror",
        [
          tc "divergence caught" test_mirror_divergence_caught;
          tc "mid-push cutoff skipped" test_mirror_divergence_skipped_mid_push;
          tc "dead-pid dispatch caught" test_mirror_dead_pid_dispatch_caught;
        ] );
      ( "whole-stack",
        [
          q (prop_lossy_runs_sanitizer_clean lauberhorn
               "seeded lossy lauberhorn runs are sanitizer-clean");
          q (prop_lossy_runs_sanitizer_clean bypass
               "seeded lossy bypass runs are sanitizer-clean");
          q (prop_lossy_runs_sanitizer_clean linux
               "seeded lossy linux runs are sanitizer-clean");
          tc "kill/restart under loss stays clean"
            test_kill_restart_sanitizer_clean;
        ] );
    ]
