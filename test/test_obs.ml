(* The observability layer: span well-formedness under arbitrary
   emission sequences, the exact stage-attribution invariant on real
   stacks, pcap/JSON export roundtrips, and the metrics registry's
   typing rules. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string

(* --- JSON ---------------------------------------------------------- *)

let test_json_parse () =
  let doc = {| {"a": 1, "b": [true, null, -2.5e1], "c": "x\n\u0041"} |} in
  match Obs.Json.parse doc with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok v ->
      checkb "a is Int" true (Obs.Json.member "a" v = Some (Obs.Json.Int 1));
      checkb "b.2 is Float" true
        (Obs.Json.member "b" v
        = Some
            (Obs.Json.List
               [ Obs.Json.Bool true; Obs.Json.Null; Obs.Json.Float (-25.) ]));
      checkb "escapes decode" true
        (Obs.Json.member "c" v = Some (Obs.Json.Str "x\nA"));
      checkb "roundtrip" true
        (Obs.Json.parse (Obs.Json.to_string v) = Ok v)

let test_json_rejects () =
  let bad doc =
    match Obs.Json.parse doc with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted invalid document %S" doc
  in
  bad "{} x";           (* trailing garbage *)
  bad "{\"a\":}";       (* missing value *)
  bad "{'a': 1}";       (* unquoted-style key *)
  bad "[1,]";           (* trailing comma *)
  bad "nan";            (* not a JSON literal *)
  bad "01";             (* leading zero *)
  bad "\"\\q\"";        (* bad escape *)
  bad ""

(* A sized generator of JSON documents (finite floats only — the
   writer refuses NaN/infinity by design). *)
let json_gen =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return Obs.Json.Null;
        map (fun b -> Obs.Json.Bool b) bool;
        map (fun i -> Obs.Json.Int i) (int_range (-1_000_000) 1_000_000);
        map
          (fun i -> Obs.Json.Float (float_of_int i /. 64.))
          (int_range (-100_000) 100_000);
        map (fun s -> Obs.Json.Str s) (string_size ~gen:printable (0 -- 12));
      ]
  in
  let key = string_size ~gen:printable (0 -- 8) in
  sized
  @@ fix (fun self n ->
         if n = 0 then scalar
         else
           frequency
             [
               (2, scalar);
               ( 1,
                 map
                   (fun l -> Obs.Json.List l)
                   (list_size (0 -- 4) (self (n / 2))) );
               ( 1,
                 map
                   (fun l -> Obs.Json.Obj l)
                   (list_size (0 -- 4) (pair key (self (n / 2)))) );
             ])

let prop_json_roundtrip =
  QCheck.Test.make ~count:500 ~name:"JSON print/parse roundtrip"
    (QCheck.make json_gen) (fun doc ->
      match Obs.Json.parse (Obs.Json.to_string doc) with
      | Ok v -> Obs.Json.equal v doc
      | Error e -> QCheck.Test.fail_reportf "reparse failed: %s" e)

(* --- spans: well-formedness under arbitrary emission --------------- *)

(* Random op sequences against the tracer itself: whatever order the
   stacks call in (retransmits re-beginning an id, stages for unknown
   ids, instants without an RPC), the span table must stay well
   formed. *)
let ops_gen =
  QCheck.Gen.(
    list_size (0 -- 120) (triple (0 -- 4) (1 -- 3) (0 -- 100)))

let apply_ops ops =
  let tr = Obs.Tracer.create () in
  Obs.Tracer.enable tr;
  let trk = Obs.Tracer.track tr "t" in
  let now = ref 0 in
  List.iter
    (fun (op, rid, dt) ->
      now := !now + dt;
      let rpc = Int64.of_int rid in
      match op with
      | 0 -> Obs.Tracer.rpc_begin tr ~rpc ~track:trk !now
      | 1 -> Obs.Tracer.stage tr ~rpc ~track:trk ~name:"s" !now
      | 2 ->
          Obs.Tracer.detail tr ~rpc ~track:trk ~name:"d"
            ~start:(max 0 (!now - 5)) ~stop:!now
      | 3 -> Obs.Tracer.instant tr ~rpc ~track:trk ~name:"i" !now
      | _ -> Obs.Tracer.rpc_end tr ~rpc !now)
    ops;
  tr

let well_formed tr =
  let spans = Obs.Tracer.spans tr in
  let tbl = Hashtbl.create 64 in
  List.iter (fun (s : Obs.Span.t) -> Hashtbl.replace tbl s.Obs.Span.id s) spans;
  let ok = ref true in
  let fail fmt = Printf.ksprintf (fun _ -> ok := false) fmt in
  ignore
    (List.fold_left
       (fun prev_seq (s : Obs.Span.t) ->
         if s.Obs.Span.seq <= prev_seq then fail "seq not monotone";
         if Obs.Span.is_closed s && s.Obs.Span.end_time < s.Obs.Span.start_time
         then fail "negative interval";
         (if s.Obs.Span.parent <> Obs.Span.no_parent then
            match Hashtbl.find_opt tbl s.Obs.Span.parent with
            | None -> fail "dangling parent"
            | Some p ->
                if p.Obs.Span.id >= s.Obs.Span.id then
                  fail "parent emitted after child";
                if p.Obs.Span.trace_id <> s.Obs.Span.trace_id then
                  fail "parent on a different RPC");
         s.Obs.Span.seq)
       (-1) spans);
  (* Per-RPC: the latest completed chain telescopes — contiguous
     stages starting at the root's start, ending inside the root. *)
  List.iter
    (fun rid ->
      let rpc = Int64.of_int rid in
      match Obs.Tracer.stages_of tr ~rpc with
      | [] -> ()
      | first :: _ as chain ->
          let root =
            Hashtbl.find tbl (List.hd chain).Obs.Span.parent
          in
          if first.Obs.Span.start_time <> root.Obs.Span.start_time then
            fail "chain does not start at root";
          ignore
            (List.fold_left
               (fun cursor (s : Obs.Span.t) ->
                 if s.Obs.Span.start_time <> cursor then
                   fail "chain not contiguous";
                 if
                   Obs.Span.is_closed root
                   && s.Obs.Span.end_time > root.Obs.Span.end_time
                 then fail "stage escapes root";
                 s.Obs.Span.end_time)
               first.Obs.Span.start_time chain))
    [ 1; 2; 3 ];
  !ok

let prop_span_well_formed =
  QCheck.Test.make ~count:300 ~name:"spans well-formed under random emission"
    (QCheck.make ops_gen) (fun ops -> well_formed (apply_ops ops))

let prop_export_valid_json =
  QCheck.Test.make ~count:100
    ~name:"trace export is strict JSON for any span table"
    (QCheck.make ops_gen) (fun ops ->
      let tr = apply_ops ops in
      let json = Obs.Export.trace_events tr in
      match Obs.Json.parse (Obs.Json.to_string json) with
      | Ok v -> Obs.Json.equal v json
      | Error e -> QCheck.Test.fail_reportf "export reparse failed: %s" e)

let test_disabled_emits_nothing () =
  let tr = Obs.Tracer.create () in
  let trk = Obs.Tracer.track tr "t" in
  Obs.Tracer.rpc_begin tr ~rpc:1L ~track:trk 0;
  Obs.Tracer.stage tr ~rpc:1L ~track:trk ~name:"s" 10;
  Obs.Tracer.rpc_end tr ~rpc:1L 20;
  checki "no spans while disabled" 0 (Obs.Tracer.span_count tr);
  Obs.Tracer.enable tr;
  Obs.Tracer.stage tr ~rpc:1L ~track:trk ~name:"s" 30;
  checki "no cursor carried over from disabled begin" 0
    (Obs.Tracer.span_count tr)

(* --- pcap ---------------------------------------------------------- *)

let endpoint mac ip port =
  {
    Net.Frame.mac = Net.Mac_addr.of_int64 (Int64.of_int mac);
    ip = Net.Ip_addr.of_int ip;
    port;
  }

let frames_gen =
  QCheck.Gen.(
    list_size (1 -- 40) (triple (0 -- 1_000_000) (0 -- 1400) printable))

let prop_pcap_roundtrip =
  QCheck.Test.make ~count:100 ~name:"pcap roundtrip preserves every frame"
    (QCheck.make frames_gen) (fun specs ->
      let pcap = Obs.Pcap.create () in
      let src = endpoint 0x1111 0x0a000001 7000 in
      let dst = endpoint 0x2222 0x0a000002 7001 in
      let expected =
        List.mapi
          (fun i (dt, size, fill) ->
            let payload = Bytes.make size fill in
            let frame = Net.Frame.make ~src ~dst payload in
            let time = (i * 1_000_000) + dt in
            Obs.Pcap.add_frame pcap ~time frame;
            (time, payload))
          specs
      in
      match Obs.Pcap.records (Obs.Pcap.to_bytes pcap) with
      | Error e -> QCheck.Test.fail_reportf "pcap reparse failed: %s" e
      | Ok recs ->
          List.length recs = List.length expected
          && List.for_all2
               (fun (time, payload) (time', slice) ->
                 time = time'
                 &&
                 match Net.Frame.parse_slice slice with
                 | Error _ -> false
                 | Ok view ->
                     Bytes.equal (Net.Frame.of_view view).Net.Frame.payload
                       payload)
               expected recs)

let test_pcap_rejects_truncation () =
  let pcap = Obs.Pcap.create () in
  let src = endpoint 1 2 3 and dst = endpoint 4 5 6 in
  Obs.Pcap.add_frame pcap ~time:42 (Net.Frame.make ~src ~dst (Bytes.create 64));
  let whole = Obs.Pcap.to_bytes pcap in
  checkb "whole capture parses" true
    (Result.is_ok (Obs.Pcap.records whole));
  let cut = Bytes.sub whole 0 (Bytes.length whole - 3) in
  checkb "truncated capture rejected" true
    (Result.is_error (Obs.Pcap.records cut));
  Bytes.set_int32_le whole 0 0l;
  checkb "bad magic rejected" true (Result.is_error (Obs.Pcap.records whole))

(* --- metrics ------------------------------------------------------- *)

let test_metrics_registry () =
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter m "events" in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 4;
  checki "counter accumulates" 5 (Obs.Metrics.value c);
  checki "find-or-create shares state" 5
    (Obs.Metrics.value (Obs.Metrics.counter m "events"));
  checki "counter_value by name" 5 (Obs.Metrics.counter_value m "events");
  checki "unregistered name reads 0" 0 (Obs.Metrics.counter_value m "ghost");
  let g = Obs.Metrics.gauge m "depth" in
  Obs.Metrics.set g 7;
  let backing = ref 11 in
  Obs.Metrics.derive m "derived" (fun () -> !backing);
  ignore (Obs.Metrics.counter m "zero");
  checkb "to_list drops zeros, sorts, samples derived" true
    (Obs.Metrics.to_list m
    = [ ("depth", 7); ("derived", 11); ("events", 5) ]);
  backing := 13;
  checkb "derived gauges resample at export" true
    (List.assoc "derived" (Obs.Metrics.to_list m) = 13);
  checkb "keep_zero keeps the zero counter" true
    (List.mem_assoc "zero" (Obs.Metrics.to_list ~keep_zero:true m));
  checkb "counters_list is counters only" true
    (Obs.Metrics.counters_list m = [ ("events", 5) ]);
  (match Obs.Metrics.to_json m with
  | Obs.Json.Obj fields ->
      checkb "json is sorted by name" true
        (List.map fst fields = List.sort compare (List.map fst fields))
  | _ -> Alcotest.fail "metrics json is not an object");
  checkb "kind clash raises" true
    (try
       ignore (Obs.Metrics.gauge m "events");
       false
     with Invalid_argument _ -> true)

(* --- cross-fabric trace context ------------------------------------ *)

let test_context_roundtrip () =
  let ctx =
    { Obs.Context.trace = 0x1122334455667788L; parent = 42; origin = 9 }
  in
  let b = Obs.Context.to_bytes ctx in
  checki "encodes to Context.size bytes" Obs.Context.size (Bytes.length b);
  (match Obs.Context.of_bytes b with
  | Some c ->
      checkb "roundtrips" true
        (Int64.equal c.Obs.Context.trace ctx.Obs.Context.trace
        && c.Obs.Context.parent = ctx.Obs.Context.parent
        && c.Obs.Context.origin = ctx.Obs.Context.origin)
  | None -> Alcotest.fail "of_bytes rejected its own encoding");
  checkb "wrong length rejected" true
    (Obs.Context.of_bytes (Bytes.create (Obs.Context.size - 1)) = None);
  checkb "out-of-range parent rejected" true
    (try
       ignore (Obs.Context.to_bytes { ctx with Obs.Context.parent = -1 });
       false
     with Invalid_argument _ -> true);
  checkb "out-of-range origin rejected" true
    (try
       ignore
         (Obs.Context.to_bytes { ctx with Obs.Context.origin = 0x1_0000_0000 });
       false
     with Invalid_argument _ -> true)

let test_wire_ctx () =
  let ctx =
    Obs.Context.to_bytes { Obs.Context.trace = 7L; parent = 3; origin = 8 }
  in
  let plain =
    Rpc.Wire_format.request ~rpc_id:7L ~service_id:2 ~method_id:1
      (Rpc.Value.Blob (Bytes.make 16 'q'))
  in
  let tagged = Rpc.Wire_format.with_ctx plain (Some ctx) in
  let enc_plain = Rpc.Wire_format.encode plain in
  let enc_tagged = Rpc.Wire_format.encode tagged in
  checki "context adds exactly ctx_size bytes" Rpc.Wire_format.ctx_size
    (Bytes.length enc_tagged - Bytes.length enc_plain);
  (* byte 3 is the kind tag; bit 7 is the context flag. A message
     without a context must encode exactly as it did before the
     extension existed. *)
  checkb "no-context kind byte is flagless" true
    (Char.code (Bytes.get enc_plain 3) land 0x80 = 0);
  checkb "context rides the kind-byte flag" true
    (Char.code (Bytes.get enc_tagged 3) land 0x80 <> 0);
  checkb "stripping the context restores the original bytes" true
    (Bytes.equal
       (Rpc.Wire_format.encode (Rpc.Wire_format.with_ctx tagged None))
       enc_plain);
  (match Rpc.Wire_format.decode enc_plain with
  | Ok m -> checkb "no-context decode has no ctx" true (m.Rpc.Wire_format.ctx = None)
  | Error _ -> Alcotest.fail "plain message failed to decode");
  (match Rpc.Wire_format.decode enc_tagged with
  | Ok m ->
      checkb "context decodes byte-identically" true
        (match m.Rpc.Wire_format.ctx with
        | Some c -> Bytes.equal c ctx
        | None -> false);
      checkb "body survives the context" true
        (Bytes.equal m.Rpc.Wire_format.body plain.Rpc.Wire_format.body);
      let rsp =
        Rpc.Wire_format.response ~of_:m (Rpc.Value.Blob (Bytes.make 4 'r'))
      in
      checkb "response echoes the request context" true
        (match rsp.Rpc.Wire_format.ctx with
        | Some c -> Bytes.equal c ctx
        | None -> false)
  | Error _ -> Alcotest.fail "tagged message failed to decode");
  let cut = Bytes.sub enc_tagged 0 (Rpc.Wire_format.header_size + 4) in
  checkb "truncated context is Truncated" true
    (match Rpc.Wire_format.decode cut with
    | Error Rpc.Wire_format.Truncated -> true
    | _ -> false)

(* --- skip_to / stage_until and post-run stitching ------------------ *)

let test_skip_to_stitching () =
  (* The root plane covers [0,10] and [30,40]; a host plane fills the
     skipped [10,30] on its own tracer against the same trace id;
     assemble proves the two chains tile the root exactly. *)
  let root = Obs.Tracer.create () and host = Obs.Tracer.create () in
  Obs.Tracer.enable root;
  Obs.Tracer.enable host;
  let rt = Obs.Tracer.track root "fabric" in
  let ht = Obs.Tracer.track host "stack" in
  Obs.Tracer.rpc_begin root ~rpc:5L ~track:rt 0;
  Obs.Tracer.stage root ~rpc:5L ~track:rt ~name:"wire_out" 10;
  Obs.Tracer.skip_to root ~rpc:5L 30;
  Obs.Tracer.stage_until root ~rpc:5L ~track:rt ~name:"wire_back" ~stop:40;
  Obs.Tracer.rpc_end root ~rpc:5L 40;
  Obs.Tracer.rpc_begin host ~rpc:5L ~track:ht 10;
  Obs.Tracer.stage host ~rpc:5L ~track:ht ~name:"serve" 30;
  Obs.Tracer.rpc_end host ~rpc:5L 30;
  (match Obs.Stitch.assemble ~root ~parts:[ ("h0", host) ] with
  | [ s ] ->
      checkb "exact" true (Obs.Stitch.exact s);
      checki "stage_sum is the end-to-end latency" 40 s.Obs.Stitch.stage_sum;
      checkb "stages interleave planes in time order" true
        (List.map
           (fun (st : Obs.Stitch.stage) ->
             (st.Obs.Stitch.plane, st.Obs.Stitch.span.Obs.Span.name))
           s.Obs.Stitch.stages
        = [ ("", "wire_out"); ("h0", "serve"); ("", "wire_back") ])
  | l -> Alcotest.failf "expected one stitched trace, got %d" (List.length l));
  (* A skip nothing fills is a visible gap, not a silent one. *)
  let root2 = Obs.Tracer.create () in
  Obs.Tracer.enable root2;
  let rt2 = Obs.Tracer.track root2 "fabric" in
  Obs.Tracer.rpc_begin root2 ~rpc:6L ~track:rt2 0;
  Obs.Tracer.stage root2 ~rpc:6L ~track:rt2 ~name:"a" 10;
  Obs.Tracer.skip_to root2 ~rpc:6L 30;
  Obs.Tracer.stage_until root2 ~rpc:6L ~track:rt2 ~name:"b" ~stop:40;
  Obs.Tracer.rpc_end root2 ~rpc:6L 40;
  match Obs.Stitch.assemble ~root:root2 ~parts:[] with
  | [ s ] ->
      checkb "unfilled skip breaks contiguity" false s.Obs.Stitch.contiguous;
      checkb "and therefore exactness" false (Obs.Stitch.exact s);
      checki "durations still sum without the gap" 20 s.Obs.Stitch.stage_sum
  | l -> Alcotest.failf "expected one stitched trace, got %d" (List.length l)

(* --- deterministic metrics aggregation ----------------------------- *)

let test_metrics_merge () =
  let a = Obs.Metrics.create () and b = Obs.Metrics.create () in
  Obs.Metrics.add (Obs.Metrics.counter a "reqs") 3;
  Obs.Metrics.add (Obs.Metrics.counter b "reqs") 4;
  Obs.Metrics.set (Obs.Metrics.gauge a "depth") 2;
  Obs.Metrics.set (Obs.Metrics.gauge b "depth") 5;
  let backing = ref 9 in
  Obs.Metrics.derive b "derived" (fun () -> !backing);
  Sim.Histogram.record (Obs.Metrics.histogram b "lat") 100;
  Obs.Metrics.merge_into ~src:b ~dst:a;
  checki "counters add" 7 (Obs.Metrics.counter_value a "reqs");
  checki "gauges add" 7
    (Obs.Metrics.gauge_value (Obs.Metrics.gauge a "depth"));
  checki "derived is sampled into a plain gauge" 9
    (List.assoc "derived" (Obs.Metrics.to_list a));
  backing := 100;
  checki "the merged sample does not track the source closure" 9
    (List.assoc "derived" (Obs.Metrics.to_list a));
  checki "histograms merge via Sim.Histogram" 1
    (Sim.Histogram.count (Obs.Metrics.histogram a "lat"));
  checkb "kind clash raises" true
    (try
       let c = Obs.Metrics.create () in
       ignore (Obs.Metrics.gauge c "reqs");
       Obs.Metrics.merge_into ~src:b ~dst:c;
       false
     with Invalid_argument _ -> true)

(* --- multi-plane export -------------------------------------------- *)

let test_multi_export () =
  let planes =
    List.map
      (fun (label, rpc) ->
        let tr = Obs.Tracer.create () in
        Obs.Tracer.enable tr;
        let trk = Obs.Tracer.track tr label in
        Obs.Tracer.rpc_begin tr ~rpc ~track:trk 0;
        Obs.Tracer.stage tr ~rpc ~track:trk ~name:"s" 5;
        Obs.Tracer.rpc_end tr ~rpc 5;
        (label, tr))
      [ ("fabric", 1L); ("host0", 1L); ("host1", 2L) ]
  in
  let json = Obs.Export.multi_trace_events planes in
  (match Obs.Json.parse (Obs.Json.to_string json) with
  | Error e -> Alcotest.failf "multi export reparse failed: %s" e
  | Ok v -> checkb "multi export is strict JSON" true (Obs.Json.equal v json));
  match Obs.Json.member "traceEvents" json with
  | Some (Obs.Json.List evs) ->
      let pids =
        List.sort_uniq compare
          (List.filter_map (fun e -> Obs.Json.member "pid" e) evs)
      in
      checkb "one pid per plane, in list order" true
        (pids = [ Obs.Json.Int 1; Obs.Json.Int 2; Obs.Json.Int 3 ])
  | _ -> Alcotest.fail "export has no traceEvents array"

(* --- sim trace sequence numbers ------------------------------------ *)

let test_sim_trace_seq () =
  let tr = Sim.Trace.create ~capacity:8 () in
  Sim.Trace.enable tr;
  for i = 1 to 20 do
    Sim.Trace.emit tr ~time:i ~cat:"t" (fun () -> string_of_int i)
  done;
  checki "emitted counts past wrap" 20 (Sim.Trace.emitted tr);
  let entries = Sim.Trace.entries_seq tr in
  checki "ring keeps the most recent" 8 (List.length entries);
  let seqs = List.map (fun (s, _, _, _) -> s) entries in
  checkb "seqs are the last emissions, in order" true
    (seqs = [ 12; 13; 14; 15; 16; 17; 18; 19 ]);
  Sim.Trace.clear tr;
  checki "clear resets the emission count" 0 (Sim.Trace.emitted tr)

(* --- the attribution invariant on real stacks ---------------------- *)

(* E14's core claim as a test: on every flavour, with tracing enabled,
   each completed RPC's stage durations sum EXACTLY to the recorder's
   end-system latency, and both exporters roundtrip. *)
let test_attribution flavour () =
  let server, pcap, _sim_trace, completions =
    Experiments.Trace.traced_ping_pong flavour
  in
  let tracer = server.Experiments.Common.tracer in
  checki "all RPCs completed" Experiments.Trace.rtts
    (List.length completions);
  checki "every stage chain sums to the measured latency" 0
    (Experiments.Trace.exact_sum_check tracer completions);
  checki "one closed root per RPC" (List.length completions)
    (List.length (Obs.Tracer.roots tracer));
  (match Obs.Pcap.records (Obs.Pcap.to_bytes pcap) with
  | Error e -> Alcotest.failf "pcap reparse failed: %s" e
  | Ok recs ->
      checki "request + response captured per RPC"
        (2 * List.length completions)
        (List.length recs);
      checkb "every captured frame re-parses" true
        (List.for_all
           (fun (_, slice) -> Result.is_ok (Net.Frame.parse_slice slice))
           recs));
  let json = Obs.Export.trace_events tracer in
  match Obs.Json.parse (Obs.Json.to_string json) with
  | Error e -> Alcotest.failf "export reparse failed: %s" e
  | Ok v -> checkb "export is strict JSON" true (Obs.Json.equal v json)

let test_disabled_tracer_stays_empty () =
  (* The default: no tracing, no spans, zero behavioural change. *)
  let setup = Workload.Scenario.echo_fleet ~n:1 () in
  let server =
    Experiments.Common.make_server ~ncores:4
      (Experiments.Common.Linux Coherence.Interconnect.pcie_enzian)
      setup
  in
  Experiments.Common.inject_blob server ~seq:1 ~service_idx:0 ~bytes:64;
  Sim.Engine.run server.Experiments.Common.engine ~until:(Sim.Units.ms 10);
  checki "completed" 1
    (Harness.Recorder.completed server.Experiments.Common.recorder);
  checki "no spans recorded" 0
    (Obs.Tracer.span_count server.Experiments.Common.tracer);
  checks "tracks registered even while disabled" "linux"
    (Obs.Tracer.track_name server.Experiments.Common.tracer 0)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "obs"
    [
      ( "json",
        Alcotest.test_case "parses strict documents" `Quick test_json_parse
        :: Alcotest.test_case "rejects almost-JSON" `Quick test_json_rejects
        :: qsuite [ prop_json_roundtrip ] );
      ( "spans",
        Alcotest.test_case "disabled tracer emits nothing" `Quick
          test_disabled_emits_nothing
        :: qsuite [ prop_span_well_formed; prop_export_valid_json ] );
      ( "pcap",
        Alcotest.test_case "rejects truncation and bad magic" `Quick
          test_pcap_rejects_truncation
        :: qsuite [ prop_pcap_roundtrip ] );
      ( "metrics",
        [
          Alcotest.test_case "registry semantics" `Quick test_metrics_registry;
          Alcotest.test_case "deterministic merge" `Quick test_metrics_merge;
        ] );
      ( "context",
        [
          Alcotest.test_case "context bytes roundtrip" `Quick
            test_context_roundtrip;
          Alcotest.test_case "wire extension is compatible" `Quick
            test_wire_ctx;
          Alcotest.test_case "skip_to stitches across planes" `Quick
            test_skip_to_stitching;
          Alcotest.test_case "multi-plane export" `Quick test_multi_export;
        ] );
      ( "sim-trace",
        [ Alcotest.test_case "seq survives ring wrap" `Quick test_sim_trace_seq ]
      );
      ( "attribution",
        [
          Alcotest.test_case "lauberhorn stages sum exactly" `Quick
            (test_attribution
               (Experiments.Common.Lauberhorn
                  (Lauberhorn.Config.enzian, Lauberhorn.Sched_mirror.Push)));
          Alcotest.test_case "static stages sum exactly" `Quick
            (test_attribution
               (Experiments.Common.Static Lauberhorn.Config.enzian));
          Alcotest.test_case "linux stages sum exactly" `Quick
            (test_attribution
               (Experiments.Common.Linux Coherence.Interconnect.pcie_enzian));
          Alcotest.test_case "bypass stages sum exactly" `Quick
            (test_attribution
               (Experiments.Common.Bypass Coherence.Interconnect.pcie_enzian));
          Alcotest.test_case "tracing off leaves no trace" `Quick
            test_disabled_tracer_stays_empty;
        ] );
    ]
