(* Tests for the packet substrate: buffers, addresses, checksums,
   header codecs, full frames, and the wire model. *)

let check = Alcotest.check
let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string

let raises_oob f =
  try
    f ();
    false
  with Net.Buf.Out_of_bounds _ -> true

(* ---------- Buf ---------- *)

let test_buf_roundtrip () =
  let w = Net.Buf.writer 32 in
  Net.Buf.write_u8 w 0xab;
  Net.Buf.write_u16 w 0xbeef;
  Net.Buf.write_u32 w 0xdead_beef;
  Net.Buf.write_u64 w 0x0123_4567_89ab_cdefL;
  Net.Buf.write_string w "hey";
  let b = Net.Buf.contents w in
  checki "length" 18 (Bytes.length b);
  let r = Net.Buf.reader b in
  checki "u8" 0xab (Net.Buf.read_u8 r);
  checki "u16" 0xbeef (Net.Buf.read_u16 r);
  checki "u32" 0xdead_beef (Net.Buf.read_u32 r);
  check Alcotest.int64 "u64" 0x0123_4567_89ab_cdefL (Net.Buf.read_u64 r);
  checks "string" "hey" (Bytes.to_string (Net.Buf.read_bytes r ~len:3));
  Net.Buf.expect_end r

let test_buf_bounds () =
  let w = Net.Buf.writer 2 in
  Net.Buf.write_u8 w 1;
  checkb "write over capacity" true (raises_oob (fun () ->
      Net.Buf.write_u32 w 5));
  let r = Net.Buf.reader (Bytes.make 1 'x') in
  checkb "read past end" true (raises_oob (fun () ->
      ignore (Net.Buf.read_u16 r)));
  checkb "trailing bytes" true (raises_oob (fun () ->
      Net.Buf.expect_end (Net.Buf.reader (Bytes.make 2 'x'))))

let test_buf_value_ranges () =
  let w = Net.Buf.writer 8 in
  checkb "u8 range" true
    (try Net.Buf.write_u8 w 256; false with Invalid_argument _ -> true);
  checkb "u16 range" true
    (try Net.Buf.write_u16 w (-1); false with Invalid_argument _ -> true);
  checkb "u32 range" true
    (try Net.Buf.write_u32 w 0x1_0000_0000; false
     with Invalid_argument _ -> true)

let test_buf_patch_and_sub () =
  let w = Net.Buf.writer 8 in
  Net.Buf.write_u16 w 0;
  Net.Buf.write_u16 w 42;
  Net.Buf.patch_u16 w ~pos:0 7;
  let b = Net.Buf.contents w in
  let r = Net.Buf.sub_reader b ~pos:0 ~len:2 in
  checki "patched" 7 (Net.Buf.read_u16 r);
  checki "sub limit" 0 (Net.Buf.remaining r);
  checkb "patch unwritten" true (raises_oob (fun () ->
      Net.Buf.patch_u16 w ~pos:6 1))

(* ---------- Addresses ---------- *)

let test_mac_roundtrip () =
  let m = Net.Mac_addr.of_string "02:aa:bb:cc:dd:ee" in
  checks "to_string" "02:aa:bb:cc:dd:ee" (Net.Mac_addr.to_string m);
  let w = Net.Buf.writer 6 in
  Net.Mac_addr.write w m;
  let m' = Net.Mac_addr.read (Net.Buf.reader (Net.Buf.contents w)) in
  checkb "wire roundtrip" true (Net.Mac_addr.equal m m')

let test_mac_classification () =
  checkb "broadcast" true (Net.Mac_addr.is_broadcast Net.Mac_addr.broadcast);
  checkb "multicast bit" true
    (Net.Mac_addr.is_multicast (Net.Mac_addr.of_string "01:00:5e:00:00:01"));
  checkb "unicast" false
    (Net.Mac_addr.is_multicast (Net.Mac_addr.of_string "02:00:00:00:00:01"));
  checkb "bad syntax" true
    (try ignore (Net.Mac_addr.of_string "zz:00"); false
     with Invalid_argument _ -> true)

let test_ip_roundtrip () =
  let ip = Net.Ip_addr.of_string "192.168.3.7" in
  checks "to_string" "192.168.3.7" (Net.Ip_addr.to_string ip);
  checki "to_int" 0xc0a80307 (Net.Ip_addr.to_int ip);
  checkb "bad" true
    (try ignore (Net.Ip_addr.of_string "1.2.3.256"); false
     with Invalid_argument _ -> true)

let test_ip_subnet () =
  let net = Net.Ip_addr.of_string "10.1.0.0" in
  checkb "inside" true
    (Net.Ip_addr.in_subnet (Net.Ip_addr.of_string "10.1.200.3")
       ~network:net ~prefix_len:16);
  checkb "outside" false
    (Net.Ip_addr.in_subnet (Net.Ip_addr.of_string "10.2.0.1")
       ~network:net ~prefix_len:16);
  checkb "prefix 0 matches all" true
    (Net.Ip_addr.in_subnet (Net.Ip_addr.of_string "8.8.8.8")
       ~network:net ~prefix_len:0)

(* ---------- Checksum ---------- *)

let test_checksum_rfc1071_example () =
  (* Classic example: 0x0001 0xf203 0xf4f5 0xf6f7 -> checksum 0x220d. *)
  let b = Bytes.create 8 in
  List.iteri (fun i v -> Bytes.set_uint16_be b (2 * i) v)
    [ 0x0001; 0xf203; 0xf4f5; 0xf6f7 ];
  checki "rfc1071" 0x220d (Net.Checksum.compute b ~pos:0 ~len:8)

let test_checksum_odd_length () =
  let b = Bytes.of_string "\x01\x02\x03" in
  (* 0x0102 + 0x0300 = 0x0402 -> complement 0xfbfd *)
  checki "odd" 0xfbfd (Net.Checksum.compute b ~pos:0 ~len:3)

let test_checksum_composable () =
  let b = Bytes.of_string "\x01\x02\x03\x04\x05\x06" in
  let whole = Net.Checksum.ones_complement_sum b ~pos:0 ~len:6 in
  let part1 = Net.Checksum.ones_complement_sum b ~pos:0 ~len:2 in
  let part2 = Net.Checksum.ones_complement_sum ~init:part1 b ~pos:2 ~len:4 in
  checki "composable" whole part2

let checksum_verifies_after_embedding =
  QCheck.Test.make
    ~name:"data + embedded checksum verifies to all-ones" ~count:300
    QCheck.(list_of_size (Gen.int_range 2 64) (int_bound 255))
    (fun data ->
      (* Reserve two bytes at the front for the checksum field. *)
      let b = Bytes.make (2 + List.length data) '\000' in
      List.iteri (fun i v -> Bytes.set b (2 + i) (Char.chr v)) data;
      let c = Net.Checksum.compute b ~pos:0 ~len:(Bytes.length b) in
      Bytes.set_uint16_be b 0 c;
      (* A checksum of 0 means the complement was 0xffff: data already
         sums to all-ones; skip (IPv4 never emits it this way). *)
      c = 0 || Net.Checksum.verify b ~pos:0 ~len:(Bytes.length b))


(* The word-wide fast path must agree with the 2-byte reference on
   every buffer, offset, length, and seed. *)
let checksum_word_matches_bytewise =
  QCheck.Test.make ~name:"word-wide checksum matches bytewise reference"
    ~count:1000
    QCheck.(
      quad (string_of_size (Gen.int_range 0 4096)) small_nat small_nat
        small_nat)
    (fun (s, off_seed, len_seed, init) ->
      let b = Bytes.of_string s in
      let n = Bytes.length b in
      let pos = if n = 0 then 0 else off_seed mod (n + 1) in
      let len = if n = pos then 0 else len_seed mod (n - pos + 1) in
      Net.Checksum.ones_complement_sum ~init b ~pos ~len
      = Net.Checksum.ones_complement_sum_bytewise ~init b ~pos ~len)

(* ---------- IPv4 / UDP / Frame ---------- *)

let sample_ipv4 =
  {
    Net.Ipv4.dscp = 0;
    identification = 0x1234;
    ttl = 64;
    protocol = Net.Ipv4.protocol_udp;
    src = Net.Ip_addr.of_string "10.0.0.1";
    dst = Net.Ip_addr.of_string "10.0.0.2";
    payload_len = 12;
  }

let test_ipv4_roundtrip () =
  let w = Net.Buf.writer 64 in
  Net.Ipv4.write w sample_ipv4;
  Net.Buf.write_bytes w (Bytes.make 12 'p');
  let r = Net.Buf.reader (Net.Buf.contents w) in
  match Net.Ipv4.read r with
  | Error e -> Alcotest.failf "parse: %a" Net.Ipv4.pp_error e
  | Ok h ->
      checki "ttl" 64 h.Net.Ipv4.ttl;
      checki "payload_len" 12 h.Net.Ipv4.payload_len;
      checkb "src" true (Net.Ip_addr.equal sample_ipv4.Net.Ipv4.src h.Net.Ipv4.src)

let test_ipv4_detects_corruption () =
  let w = Net.Buf.writer 64 in
  Net.Ipv4.write w sample_ipv4;
  let b = Net.Buf.contents w in
  Bytes.set b 8 '\x00' (* flip TTL byte: checksum must fail *);
  (match Net.Ipv4.read (Net.Buf.reader b) with
  | Error Net.Ipv4.Bad_checksum -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Net.Ipv4.pp_error e
  | Ok _ -> Alcotest.fail "corruption not detected");
  (* Truncation. *)
  match Net.Ipv4.read (Net.Buf.reader (Bytes.sub b 0 10)) with
  | Error Net.Ipv4.Truncated -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Net.Ipv4.pp_error e
  | Ok _ -> Alcotest.fail "truncation not detected"

let test_udp_roundtrip_and_checksum () =
  let src_ip = Net.Ip_addr.of_string "10.0.0.1" in
  let dst_ip = Net.Ip_addr.of_string "10.0.0.2" in
  let payload = Bytes.of_string "hello-udp" in
  let w = Net.Buf.writer 64 in
  Net.Udp.write w
    { Net.Udp.src_port = 111; dst_port = 222;
      payload_len = Bytes.length payload }
    ~src_ip ~dst_ip ~payload;
  let seg = Net.Buf.contents w in
  (match Net.Udp.read (Net.Buf.reader seg) ~src_ip ~dst_ip with
  | Error e -> Alcotest.failf "parse: %a" Net.Udp.pp_error e
  | Ok (h, p) ->
      checki "src port" 111 h.Net.Udp.src_port;
      checks "payload" "hello-udp" (Bytes.to_string p));
  (* Corrupt one payload byte: checksum must fail. *)
  Bytes.set seg (Bytes.length seg - 1) '!';
  match Net.Udp.read (Net.Buf.reader seg) ~src_ip ~dst_ip with
  | Error Net.Udp.Bad_checksum -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Net.Udp.pp_error e
  | Ok _ -> Alcotest.fail "corruption not detected"

let ep ?(port = 1234) ?(last = 1) () =
  {
    Net.Frame.mac = Net.Mac_addr.of_int64 (Int64.of_int (0x020000000000 + last));
    ip = Net.Ip_addr.of_string (Printf.sprintf "10.0.0.%d" last);
    port;
  }

let test_frame_roundtrip () =
  let src = ep ~port:5555 ~last:1 () and dst = ep ~port:80 ~last:2 () in
  let f = Net.Frame.make ~src ~dst (Bytes.of_string "payload!") in
  let b = Net.Frame.encode f in
  checkb "min size padding" true (Bytes.length b >= Net.Ethernet.min_frame_size);
  match Net.Frame.parse b with
  | Error e -> Alcotest.failf "parse: %a" Net.Frame.pp_error e
  | Ok f' ->
      checks "payload survives" "payload!"
        (Bytes.to_string f'.Net.Frame.payload);
      checki "src port" 5555 (Net.Frame.src_endpoint f').Net.Frame.port;
      checki "dst port" 80 (Net.Frame.dst_endpoint f').Net.Frame.port

let frame_roundtrip_any_payload =
  QCheck.Test.make ~name:"frame encode/parse is identity on payload"
    ~count:200
    QCheck.(string_of_size (Gen.int_range 0 1600))
    (fun s ->
      let f =
        Net.Frame.make ~src:(ep ~last:1 ()) ~dst:(ep ~last:2 ())
          (Bytes.of_string s)
      in
      match Net.Frame.parse (Net.Frame.encode f) with
      | Ok f' -> Bytes.to_string f'.Net.Frame.payload = s
      | Error _ -> false)


let parse_slice_matches_parse =
  QCheck.Test.make ~name:"parse_slice at any offset agrees with parse"
    ~count:200
    QCheck.(pair (string_of_size (Gen.int_range 0 1600)) (int_bound 32))
    (fun (s, lead) ->
      let f =
        Net.Frame.make ~src:(ep ~last:1 ()) ~dst:(ep ~last:2 ())
          (Bytes.of_string s)
      in
      let wire = Net.Frame.encode f in
      (* Embed at a nonzero offset amid junk to exercise the slice
         arithmetic of the in-place parsers. *)
      let buf = Bytes.make (lead + Bytes.length wire + 7) '\xaa' in
      Bytes.blit wire 0 buf lead (Bytes.length wire);
      let sl = Net.Slice.make buf ~off:lead ~len:(Bytes.length wire) in
      match (Net.Frame.parse wire, Net.Frame.parse_slice sl) with
      | Ok a, Ok v -> Net.Frame.of_view v = a
      | Error _, Error _ -> true
      | _ -> false)

let test_frame_rejects_non_ipv4 () =
  let f = Net.Frame.make ~src:(ep ()) ~dst:(ep ~last:2 ()) (Bytes.create 4) in
  let b = Net.Frame.encode f in
  Bytes.set_uint16_be b 12 0x0806 (* ARP ethertype *);
  match Net.Frame.parse b with
  | Error (Net.Frame.Not_ipv4 0x0806) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Net.Frame.pp_error e
  | Ok _ -> Alcotest.fail "accepted ARP"

(* ---------- Slice / Pool ---------- *)

let test_slice_views () =
  let b = Bytes.of_string "hello world" in
  let s = Net.Slice.make b ~off:6 ~len:5 in
  checki "length" 5 (Net.Slice.length s);
  checks "to_string" "world" (Net.Slice.to_string s);
  check Alcotest.char "get" 'w' (Net.Slice.get s 0);
  checks "sub" "orl" (Net.Slice.to_string (Net.Slice.sub s ~off:1 ~len:3));
  Bytes.set b 6 'W';
  checks "aliases its base" "World" (Net.Slice.to_string s);
  checkb "content equal" true
    (Net.Slice.equal s (Net.Slice.of_string "World"));
  checkb "prefix" true
    (Net.Slice.is_prefix_of (Net.Slice.make b ~off:0 ~len:5) b);
  checkb "not prefix" false
    (Net.Slice.is_prefix_of s b);
  checkb "bounds checked" true
    (try ignore (Net.Slice.make b ~off:8 ~len:9); false
     with Invalid_argument _ -> true)

let test_pool_accounting () =
  let p = Net.Pool.create ~prealloc:2 ~buffer_bytes:64 () in
  checki "prealloc idle" 2 (Net.Pool.idle p);
  let a = Net.Pool.acquire p in
  let b = Net.Pool.acquire p in
  let c = Net.Pool.acquire p in
  checki "grew once drained" 3 (Net.Pool.created p);
  checki "outstanding" 3 (Net.Pool.outstanding p);
  Net.Pool.release p a;
  Net.Pool.release p b;
  Net.Pool.release p c;
  checki "balanced at drain" 0 (Net.Pool.outstanding p);
  checki "idle after" 3 (Net.Pool.idle p);
  checki "high water" 3 (Net.Pool.high_water p);
  let d = Net.Pool.acquire p in
  Net.Pool.release p d;
  checki "steady state reuses buffers" 3 (Net.Pool.created p);
  checkb "wrong size rejected" true
    (try Net.Pool.release p (Bytes.create 8); false
     with Invalid_argument _ -> true);
  checkb "over-release rejected" true
    (try Net.Pool.release p (Bytes.create 64); false
     with Invalid_argument _ -> true)

(* The zero-allocation claim of the hot path: a pooled
   encode_into/parse_slice round trip must cost a small fixed number of
   allocated bytes (cursors, header records, the view) regardless of
   payload size, and every pool acquire must be matched at drain. *)
let alloc_budget_bytes = 512.

let test_pooled_roundtrip_allocation_budget () =
  let pool = Net.Pool.create ~prealloc:4 ~buffer_bytes:2048 () in
  let sink = ref 0 in
  let round frame =
    let buf = Net.Pool.acquire pool in
    let s = Net.Frame.encode_into frame buf in
    (match Net.Frame.parse_slice s with
    | Ok v -> sink := !sink + Net.Slice.length v.Net.Frame.payload
    | Error _ -> assert false);
    Net.Pool.release pool buf
  in
  List.iter
    (fun payload_bytes ->
      let frame =
        Net.Frame.make ~src:(ep ~last:1 ()) ~dst:(ep ~last:2 ())
          (Bytes.make payload_bytes 'p')
      in
      for _ = 1 to 100 do round frame done (* warm-up *);
      let n = 5_000 in
      (* [Gc.allocated_bytes] only reflects the domain's allocation
         pointer at minor-collection boundaries; force a minor GC at
         both ends so the delta is exact rather than quantized to
         minor-heap segments (which made this test flaky). *)
      Gc.minor ();
      let before = Gc.allocated_bytes () in
      for _ = 1 to n do round frame done;
      Gc.minor ();
      let after = Gc.allocated_bytes () in
      let per_round = (after -. before) /. float_of_int n in
      checkb
        (Printf.sprintf "%dB payload: %.1f alloc bytes/round-trip <= %.0f"
           payload_bytes per_round alloc_budget_bytes)
        true
        (per_round <= alloc_budget_bytes))
    [ 16; 64; 1472 ];
  checki "pool balanced at drain" 0 (Net.Pool.outstanding pool);
  checki "pool never grew past prealloc" 4 (Net.Pool.created pool)

(* ---------- Wire ---------- *)

let test_wire_serialization_delay () =
  (* 1500B + 24B overhead at 100 Gb/s = 1524*8/100 = 121.92 -> 122ns *)
  checki "delay" 122 (Net.Wire.serialization_delay ~gbps:100. ~bytes:1500)

let test_wire_loss_and_corruption () =
  let e = Sim.Engine.create () in
  let delivered = ref 0 in
  let lossy =
    Net.Wire.create e ~gbps:100. ~propagation:10 ~loss:0.5 ~seed:7
      ~deliver:(fun _ -> incr delivered)
      ()
  in
  let frame = Net.Frame.make ~src:(ep ()) ~dst:(ep ~last:2 ()) (Bytes.make 32 'x') in
  for _ = 1 to 1000 do
    Net.Wire.transmit lossy frame
  done;
  Sim.Engine.run e;
  checki "loss accounting" 1000 (!delivered + Net.Wire.frames_lost lossy);
  checkb "roughly half lost" true
    (Net.Wire.frames_lost lossy > 400 && Net.Wire.frames_lost lossy < 600);
  (* Corruption: the checksums catch essentially all single-byte flips
     inside the headers; flips in padding can survive. *)
  let delivered2 = ref 0 in
  let noisy =
    Net.Wire.create e ~gbps:100. ~propagation:10 ~corruption:1.0 ~seed:8
      ~deliver:(fun _ -> incr delivered2)
      ()
  in
  for _ = 1 to 200 do
    Net.Wire.transmit noisy frame
  done;
  Sim.Engine.run e;
  checki "all accounted" 200 (!delivered2 + Net.Wire.frames_corrupted noisy);
  checkb "most flips detected and dropped" true
    (Net.Wire.frames_corrupted noisy > 100)

let test_wire_delivery_and_queueing () =
  let e = Sim.Engine.create () in
  let arrivals = ref [] in
  let w =
    Net.Wire.create e ~gbps:100. ~propagation:500
      ~deliver:(fun f ->
        arrivals := (Sim.Engine.now e, Bytes.length f.Net.Frame.payload)
                    :: !arrivals)
      ()
  in
  let frame n = Net.Frame.make ~src:(ep ()) ~dst:(ep ~last:2 ()) (Bytes.make n 'x') in
  Net.Wire.transmit w (frame 100);
  Net.Wire.transmit w (frame 100);
  Sim.Engine.run e;
  checki "both arrived" 2 (List.length !arrivals);
  (match List.rev !arrivals with
  | [ (t1, _); (t2, _) ] ->
      checkb "first after serialization+prop" true (t1 > 500);
      checkb "second queued behind first" true (t2 > t1)
  | _ -> Alcotest.fail "arrivals");
  checki "frames counted" 2 (Net.Wire.frames_sent w)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "net"
    [
      ( "buf",
        [
          Alcotest.test_case "roundtrip" `Quick test_buf_roundtrip;
          Alcotest.test_case "bounds" `Quick test_buf_bounds;
          Alcotest.test_case "value ranges" `Quick test_buf_value_ranges;
          Alcotest.test_case "patch and sub" `Quick test_buf_patch_and_sub;
        ] );
      ( "addresses",
        [
          Alcotest.test_case "mac roundtrip" `Quick test_mac_roundtrip;
          Alcotest.test_case "mac classification" `Quick
            test_mac_classification;
          Alcotest.test_case "ip roundtrip" `Quick test_ip_roundtrip;
          Alcotest.test_case "ip subnet" `Quick test_ip_subnet;
        ] );
      ( "checksum",
        [
          Alcotest.test_case "rfc1071 example" `Quick
            test_checksum_rfc1071_example;
          Alcotest.test_case "odd length" `Quick test_checksum_odd_length;
          Alcotest.test_case "composable" `Quick test_checksum_composable;
        ]
        @ qsuite
            [ checksum_verifies_after_embedding;
              checksum_word_matches_bytewise ] );
      ( "headers",
        [
          Alcotest.test_case "ipv4 roundtrip" `Quick test_ipv4_roundtrip;
          Alcotest.test_case "ipv4 detects corruption" `Quick
            test_ipv4_detects_corruption;
          Alcotest.test_case "udp roundtrip + checksum" `Quick
            test_udp_roundtrip_and_checksum;
        ] );
      ( "frame",
        [
          Alcotest.test_case "roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "rejects non-ipv4" `Quick
            test_frame_rejects_non_ipv4;
        ]
        @ qsuite [ frame_roundtrip_any_payload; parse_slice_matches_parse ]
      );
      ( "slice_pool",
        [
          Alcotest.test_case "slice views" `Quick test_slice_views;
          Alcotest.test_case "pool accounting" `Quick test_pool_accounting;
          Alcotest.test_case "allocation budget" `Quick
            test_pooled_roundtrip_allocation_budget;
        ] );
      ( "wire",
        [
          Alcotest.test_case "serialization delay" `Quick
            test_wire_serialization_delay;
          Alcotest.test_case "delivery and queueing" `Quick
            test_wire_delivery_and_queueing;
          Alcotest.test_case "loss and corruption" `Quick
            test_wire_loss_and_corruption;
        ] );
    ]
