(* Chaos suite for the deterministic fault-injection layer (lib/fault)
   and the client retry machinery it exercises. Every property runs a
   full client -> lossy wire -> stack -> lossy wire -> client loop and
   checks invariants of the recovery structure the paper leans on
   (§5.1): loss is masked by retries, corruption never survives the
   checksums, duplicates are suppressed, and the whole thing is a
   deterministic function of the plan's seed. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let us = Sim.Units.us
let ms = Sim.Units.ms

module C = Experiments.Common
module P = Fault.Plan

let bypass = C.Bypass Coherence.Interconnect.pcie_enzian

(* A short lossy open-loop run: ~100 echo calls over a 2 ms window,
   with enough retries (and drain to let the last backoff chain play
   out) that any loss rate below the extreme should fully recover. *)
let lossy ?(flavour = bypass) ?(rate = 50_000.) ?(horizon = ms 2)
    ?(drain = ms 100) ?(timeout = us 100) ?(retries = 120) ?(backoff = 1.5)
    ?(max_timeout = us 500) ?(jitter = 0.25) ?(seed = 11) plan =
  C.lossy_run ~ncores:4 ~rate ~horizon ~drain ~timeout ~retries ~backoff
    ~max_timeout ~jitter ~seed ~plan flavour

(* --- scripted drops ------------------------------------------------ *)

(* The wire plan applies to both directions, so [drop_nth [1;2;3]]
   eats the first three requests AND the first three replies: the call
   needs seven attempts (six retransmits) before a reply survives, and
   the per-link scripted-drop counters account for every loss. *)
let test_scripted_drops () =
  let plan = P.make ~seed:3 ~wire:(P.link ~drop_nth:[ 1; 2; 3 ] ()) () in
  let engine = Sim.Engine.create () in
  let chaos =
    Harness.Chaos.create engine ~plan ~timeout:(us 100) ~retries:10
      ~backoff:1.0 ~jitter:0.0 ()
  in
  let setup = Workload.Scenario.echo_fleet ~n:1 () in
  let server =
    C.make_server ~ncores:2 ~engine ~fault:plan
      ~egress:(Harness.Chaos.egress chaos) bypass setup
  in
  Harness.Chaos.connect chaos server.C.driver;
  Harness.Chaos.call chaos
    ~service_id:(Workload.Scenario.service_id_of setup ~service_idx:0)
    ~method_id:0
    ~port:(Workload.Scenario.port_of setup ~service_idx:0)
    (Rpc.Value.Blob (Bytes.make 32 'x'));
  Sim.Engine.run engine ~until:(ms 50);
  let cl = Harness.Chaos.client chaos in
  let stats = Harness.Chaos.stats chaos in
  checki "completed" 1 (Harness.Client.completed cl);
  checki "abandoned" 0 (Harness.Client.abandoned cl);
  checki "retransmits" 6 (Harness.Client.retransmits cl);
  checki "scripted request drops" 3 (List.assoc "req_scripted_drops" stats);
  checki "scripted reply drops" 3 (List.assoc "rep_scripted_drops" stats);
  checki "request frames seen" 7 (List.assoc "req_seen" stats);
  checki "reply frames seen" 4 (List.assoc "rep_seen" stats)

(* --- properties ---------------------------------------------------- *)

(* (a) Any seeded plan with loss < 1.0 (here drop, duplication and
   corruption each up to 0.4, plus reordering) completes every RPC
   once retries are enabled. *)
let prop_loss_recovered =
  QCheck.Test.make ~count:6 ~name:"retries complete every RPC under chaos"
    QCheck.(
      quad (int_bound 1000) (int_bound 40) (int_bound 40) (int_bound 40))
    (fun (seed, drop, dup, corrupt) ->
      let pct n = float_of_int n /. 100. in
      let plan =
        P.make ~seed:(seed + 1)
          ~wire:
            (P.link ~drop:(pct drop) ~duplicate:(pct dup)
               ~corrupt:(pct corrupt) ~reorder:0.2 ())
          ()
      in
      let m = lossy plan in
      m.C.sent > 0
      && m.C.completed = m.C.sent
      && C.counter m "abandoned" = 0)

(* (b) Corrupted frames never reach an endpoint: the checksums reject
   every one, the rejection counters account for them exactly, and
   (with retries off) every sent RPC either completed or was abandoned
   because one of its two frames was eaten. *)
let prop_corrupt_never_delivered =
  QCheck.Test.make ~count:6 ~name:"corrupted frames never reach an endpoint"
    QCheck.(pair (int_bound 1000) (int_bound 7))
    (fun (seed, c) ->
      let corrupt = float_of_int (c + 3) /. 10. in
      let plan = P.make ~seed:(seed + 1) ~wire:(P.link ~corrupt ()) () in
      let m = lossy ~retries:0 ~drain:(ms 10) plan in
      let ctr = C.counter m in
      m.C.sent > 0
      && ctr "req_corrupt_delivered" = 0
      && ctr "rep_corrupt_delivered" = 0
      && ctr "req_corrupt_rejected" > 0
      && m.C.completed + ctr "req_corrupt_rejected"
         + ctr "rep_corrupt_rejected"
         = m.C.sent
      && m.C.completed + ctr "abandoned" = m.C.sent)

(* (c) Duplicate-reply suppression: with both directions duplicating
   half their frames, the completion count still equals the request
   count, and the suppression counter shows the dups were real. *)
let prop_dup_suppression =
  QCheck.Test.make ~count:6 ~name:"duplicate replies are suppressed"
    QCheck.(int_bound 1000)
    (fun seed ->
      let plan =
        P.make ~seed:(seed + 1) ~wire:(P.link ~duplicate:0.5 ()) ()
      in
      let m = lossy ~retries:4 plan in
      m.C.sent > 0
      && m.C.completed = m.C.sent
      && C.counter m "duplicates_suppressed" > 0)

(* (d) Same seed, same plan => identical measurement, including the
   order-sensitive completion-timeline digest, on the stack with the
   most machinery (Lauberhorn with delayed coherence fills racing a
   short TRYAGAIN timeout). *)
let prop_determinism =
  QCheck.Test.make ~count:3 ~name:"same seed reproduces the timeline"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let plan =
        P.make ~seed:(seed + 1)
          ~wire:
            (P.link ~drop:0.05 ~duplicate:0.1 ~corrupt:0.05 ~reorder:0.1 ())
          ~fill_delay:0.2 ~fill_delay_ns:(us 300) ()
      in
      let flavour =
        C.Lauberhorn
          ( Lauberhorn.Config.with_timeout Lauberhorn.Config.enzian (us 200),
            Lauberhorn.Sched_mirror.Push )
      in
      let run () = lossy ~flavour plan in
      run () = run ())

(* --- coherence choke point ---------------------------------------- *)

(* A delayed fill loses the race against the TRYAGAIN timeout: the
   parked load gets the dummy fill, and the real data lands afterwards
   as staged state. *)
let test_home_agent_delayed_fill () =
  let e = Sim.Engine.create () in
  let ha =
    Coherence.Home_agent.create e Coherence.Interconnect.eci
      ~stage_delay:(fun () -> us 50)
      ~timeout:(us 10) ()
  in
  let line = Coherence.Home_agent.alloc_line ha in
  let fills = ref [] in
  Coherence.Home_agent.cpu_load ha line (fun f -> fills := f :: !fills);
  Coherence.Home_agent.stage ha line (Bytes.make 64 'd');
  Sim.Engine.run e;
  (match !fills with
  | [ Coherence.Home_agent.Tryagain ] -> ()
  | _ -> Alcotest.fail "expected exactly one TRYAGAIN fill");
  checki "stage was deferred" 1 (Coherence.Home_agent.delayed_stages ha);
  checkb "data landed after the dummy fill" true
    (Coherence.Home_agent.stage_pending ha line)

(* Under load on the full Lauberhorn stack: every fill delayed past the
   TRYAGAIN timeout still lets every RPC complete, through the real
   recovery path, and the counters prove it ran. *)
let test_delayed_fills_under_load () =
  let plan = P.make ~seed:5 ~fill_delay:1.0 ~fill_delay_ns:(us 400) () in
  let flavour =
    C.Lauberhorn
      ( Lauberhorn.Config.with_timeout Lauberhorn.Config.enzian (us 100),
        Lauberhorn.Sched_mirror.Push )
  in
  let m =
    C.lossy_run ~ncores:4 ~rate:20_000. ~horizon:(ms 2) ~drain:(ms 60) ~plan
      flavour
  in
  checkb "sent some" true (m.C.sent > 0);
  checki "all completed" m.C.sent m.C.completed;
  checkb "fills were delayed" true (C.counter m "ha_delayed_fills" > 0);
  checkb "TRYAGAINs fired" true (C.counter m "ha_tryagains" > 0)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "fault"
    [
      ( "links",
        Alcotest.test_case "scripted drops retransmit" `Quick
          test_scripted_drops
        :: qsuite
             [
               prop_loss_recovered;
               prop_corrupt_never_delivered;
               prop_dup_suppression;
             ] );
      ( "coherence",
        [
          Alcotest.test_case "delayed fill yields TRYAGAIN" `Quick
            test_home_agent_delayed_fill;
          Alcotest.test_case "delayed fills under load" `Slow
            test_delayed_fills_under_load;
        ] );
      ("determinism", qsuite [ prop_determinism ]);
    ]
