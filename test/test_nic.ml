(* Tests for the traditional-NIC substrate: rings, IOMMU, RSS, MSI-X
   moderation, and the DMA NIC receive path. *)

let check = Alcotest.check
let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

(* ---------- Ring ---------- *)

let test_ring_fifo () =
  let r = Nic.Ring.create ~size:4 in
  checkb "produce" true (Nic.Ring.produce r 1);
  checkb "produce" true (Nic.Ring.produce r 2);
  check (Alcotest.option Alcotest.int) "peek" (Some 1) (Nic.Ring.peek r);
  check (Alcotest.option Alcotest.int) "consume" (Some 1) (Nic.Ring.consume r);
  check (Alcotest.option Alcotest.int) "consume" (Some 2) (Nic.Ring.consume r);
  check (Alcotest.option Alcotest.int) "empty" None (Nic.Ring.consume r)

let test_ring_full_drops () =
  let r = Nic.Ring.create ~size:2 in
  ignore (Nic.Ring.produce r 1);
  ignore (Nic.Ring.produce r 2);
  checkb "full rejects" false (Nic.Ring.produce r 3);
  checki "drop counted" 1 (Nic.Ring.drops r);
  ignore (Nic.Ring.consume r);
  checkb "space again" true (Nic.Ring.produce r 3)

let test_ring_size_validation () =
  checkb "non power of two" true
    (try
       ignore (Nic.Ring.create ~size:3);
       false
     with Invalid_argument _ -> true)

let test_ring_notify () =
  let r = Nic.Ring.create ~size:4 in
  let fired = ref 0 in
  Nic.Ring.on_produce r (fun () -> incr fired);
  ignore (Nic.Ring.produce r 1);
  ignore (Nic.Ring.produce r 2);
  checki "notified per produce" 2 !fired

let ring_fifo_property =
  QCheck.Test.make ~name:"ring is FIFO under interleaved produce/consume"
    ~count:200
    QCheck.(list (option (int_bound 100)))
    (fun ops ->
      (* Some v = produce v; None = consume. *)
      let r = Nic.Ring.create ~size:8 in
      let model = Queue.create () in
      List.for_all
        (fun op ->
          match op with
          | Some v ->
              let accepted = Nic.Ring.produce r v in
              if accepted then Queue.add v model;
              accepted = (Queue.length model <= 8)
              || (Queue.length model <= 8)
          | None -> (
              match Nic.Ring.consume r, Queue.take_opt model with
              | Some a, Some b -> a = b
              | None, None -> true
              | _ -> false))
        ops)

(* ---------- IOMMU ---------- *)

let test_iommu_hit_miss_fault () =
  let mmu = Nic.Iommu.create ~iotlb_entries:2 ~hit_cost:10 ~walk_cost:100 () in
  Nic.Iommu.map mmu ~iova:0x1000 ~len:4096;
  checki "first access walks" 110 (Nic.Iommu.translate mmu ~iova:0x1000);
  checki "second hits" 10 (Nic.Iommu.translate mmu ~iova:0x1fff);
  checki "hits" 1 (Nic.Iommu.hits mmu);
  checki "misses" 1 (Nic.Iommu.misses mmu);
  checkb "fault on unmapped" true
    (Nic.Iommu.translate_opt mmu ~iova:0x9999_0000 = None);
  checki "fault counted" 1 (Nic.Iommu.faults mmu);
  checkb "translate raises on fault" true
    (try
       ignore (Nic.Iommu.translate mmu ~iova:0x9999_0000);
       false
     with Invalid_argument _ -> true)

let test_iommu_lru_eviction () =
  let mmu = Nic.Iommu.create ~iotlb_entries:2 ~hit_cost:10 ~walk_cost:100 () in
  List.iter (fun i -> Nic.Iommu.map mmu ~iova:(i * 4096) ~len:4096) [ 1; 2; 3 ];
  ignore (Nic.Iommu.translate mmu ~iova:4096);
  ignore (Nic.Iommu.translate mmu ~iova:8192);
  ignore (Nic.Iommu.translate mmu ~iova:12288) (* evicts page 1 (LRU) *);
  checki "page 1 misses again" 110 (Nic.Iommu.translate mmu ~iova:4096)

let test_iommu_unmap () =
  let mmu = Nic.Iommu.create () in
  Nic.Iommu.map mmu ~iova:0 ~len:8192;
  ignore (Nic.Iommu.translate mmu ~iova:0);
  Nic.Iommu.unmap mmu ~iova:0 ~len:4096;
  checkb "unmapped page faults" true
    (Nic.Iommu.translate_opt mmu ~iova:0 = None);
  checkb "other page survives" true
    (Nic.Iommu.translate_opt mmu ~iova:4096 <> None)

(* ---------- RSS ---------- *)

let flow i =
  ( Net.Ip_addr.of_int (0x0a000001 + i),
    Net.Ip_addr.of_int 0x0a000002,
    1000 + i,
    53 )

let test_rss_deterministic () =
  let rss = Nic.Rss.create ~queues:4 () in
  let src_ip, dst_ip, src_port, dst_port = flow 1 in
  let q1 = Nic.Rss.queue_for rss ~src_ip ~dst_ip ~src_port ~dst_port in
  let q2 = Nic.Rss.queue_for rss ~src_ip ~dst_ip ~src_port ~dst_port in
  checki "same flow same queue" q1 q2;
  checkb "in range" true (q1 >= 0 && q1 < 4)

let test_rss_spreads_flows () =
  let rss = Nic.Rss.create ~queues:4 () in
  let seen = Hashtbl.create 8 in
  for i = 0 to 255 do
    let src_ip, dst_ip, src_port, dst_port = flow i in
    Hashtbl.replace seen
      (Nic.Rss.queue_for rss ~src_ip ~dst_ip ~src_port ~dst_port)
      ()
  done;
  checki "all queues used" 4 (Hashtbl.length seen)

let test_rss_key_dependence () =
  let a = Nic.Rss.create ~queues:64 () in
  let b = Nic.Rss.create ~key:(String.make 40 '\x55') ~queues:64 () in
  let src_ip, dst_ip, src_port, dst_port = flow 3 in
  let ha = Nic.Rss.hash_flow a ~src_ip ~dst_ip ~src_port ~dst_port in
  let hb = Nic.Rss.hash_flow b ~src_ip ~dst_ip ~src_port ~dst_port in
  checkb "different keys differ" true (ha <> hb)

let test_toeplitz_zero_input () =
  checki "zero input hashes to 0" 0
    (Nic.Rss.toeplitz_hash ~key:Nic.Rss.default_key (Bytes.make 12 '\000'))

(* ---------- MSI-X ---------- *)

let test_msix_immediate_then_moderated () =
  let e = Sim.Engine.create () in
  let fired = ref [] in
  let m =
    Nic.Msix.create e ~min_interval:(Sim.Units.us 10)
      ~fire:(fun () -> fired := Sim.Engine.now e :: !fired)
      ()
  in
  Nic.Msix.raise_event m (* t=0: immediate *);
  ignore
    (Sim.Engine.schedule_after e ~after:(Sim.Units.us 2) (fun () ->
         Nic.Msix.raise_event m (* absorbed *)));
  ignore
    (Sim.Engine.schedule_after e ~after:(Sim.Units.us 3) (fun () ->
         Nic.Msix.raise_event m (* absorbed *)));
  Sim.Engine.run e;
  check
    (Alcotest.list Alcotest.int)
    "one immediate + one trailing"
    [ 0; Sim.Units.us 10 ]
    (List.rev !fired);
  checki "suppressed" 2 (Nic.Msix.suppressed m)

let test_msix_mask_latches () =
  let e = Sim.Engine.create () in
  let fired = ref 0 in
  let m =
    Nic.Msix.create e ~min_interval:0 ~fire:(fun () -> incr fired) ()
  in
  Nic.Msix.mask m;
  Nic.Msix.raise_event m;
  Nic.Msix.raise_event m;
  Sim.Engine.run e;
  checki "masked: nothing" 0 !fired;
  Nic.Msix.unmask m;
  Sim.Engine.run e;
  checki "pending delivered once" 1 !fired

(* ---------- DMA NIC ---------- *)

let sample_frame ?(dst_port = 53) () =
  let src =
    {
      Net.Frame.mac = Net.Mac_addr.of_string "02:00:00:00:00:0a";
      ip = Net.Ip_addr.of_string "10.0.0.10";
      port = 5555;
    }
  in
  let dst =
    {
      Net.Frame.mac = Net.Mac_addr.of_string "02:00:00:00:00:01";
      ip = Net.Ip_addr.of_string "10.0.0.1";
      port = dst_port;
    }
  in
  Net.Frame.make ~src ~dst (Bytes.make 64 'x')

let test_dma_nic_rx_to_ring_and_interrupt () =
  let e = Sim.Engine.create () in
  let irqs = ref [] in
  let nic =
    Nic.Dma_nic.create e Coherence.Interconnect.pcie_modern
      ~config:{ Nic.Dma_nic.default_config with Nic.Dma_nic.coalesce_interval = 0 }
      ~on_rx_interrupt:(fun ~queue -> irqs := queue :: !irqs)
      ()
  in
  Nic.Dma_nic.rx_from_wire nic (sample_frame ());
  Sim.Engine.run e;
  checki "one interrupt" 1 (List.length !irqs);
  let q = List.hd !irqs in
  (match Nic.Dma_nic.consume nic ~queue:q Net.Frame.of_view with
  | Some f -> checki "payload survives" 64 (Bytes.length f.Net.Frame.payload)
  | None -> Alcotest.fail "ring empty");
  checki "delivered" 1 (Nic.Dma_nic.rx_delivered nic);
  checkb "dma delay nonzero" true (Sim.Engine.now e > 0)

let test_dma_nic_steering_override () =
  let e = Sim.Engine.create () in
  let nic =
    Nic.Dma_nic.create e Coherence.Interconnect.pcie_modern
      ~config:{ Nic.Dma_nic.default_config with Nic.Dma_nic.coalesce_interval = 0 }
      ~on_rx_interrupt:(fun ~queue:_ -> ())
      ()
  in
  Nic.Dma_nic.set_steering nic (fun f -> f.Net.Frame.udp.Net.Udp.dst_port);
  Nic.Dma_nic.rx_from_wire nic (sample_frame ~dst_port:2 ());
  Sim.Engine.run e;
  checki "steered to queue 2" 1
    (Nic.Ring.occupancy (Nic.Dma_nic.rx_ring nic ~queue:2))

let test_dma_nic_transmit_delay () =
  let e = Sim.Engine.create () in
  let nic =
    Nic.Dma_nic.create e Coherence.Interconnect.pcie_modern
      ~on_rx_interrupt:(fun ~queue:_ -> ())
      ()
  in
  let sent_at = ref (-1) in
  Nic.Dma_nic.transmit nic (sample_frame ()) ~via:(fun _ ->
      sent_at := Sim.Engine.now e);
  Sim.Engine.run e;
  checkb "tx has dma latency" true
    (!sent_at
    >= Coherence.Interconnect.pcie_modern.Coherence.Interconnect.dma_read)

(* Overflow a tiny RX ring: the excess frames are counted tail drops
   and their pooled buffers are released on the spot — after draining,
   the pool balances (acquired = released, nothing outstanding). *)
let test_dma_nic_ring_overflow_no_leak () =
  let e = Sim.Engine.create () in
  let nic =
    Nic.Dma_nic.create e Coherence.Interconnect.pcie_modern
      ~config:
        {
          Nic.Dma_nic.default_config with
          Nic.Dma_nic.nqueues = 1;
          ring_size = 4;
          coalesce_interval = 0;
        }
      ~on_rx_interrupt:(fun ~queue:_ -> ())
      ()
  in
  for _ = 1 to 10 do
    Nic.Dma_nic.rx_from_wire nic (sample_frame ())
  done;
  Sim.Engine.run e;
  let pool = Nic.Dma_nic.pool nic in
  checki "tail drops counted" 6 (Nic.Dma_nic.rx_dropped nic);
  checki "only ring occupants outstanding" 4 (Net.Pool.outstanding pool);
  let rec drain n =
    match Nic.Dma_nic.consume nic ~queue:0 Net.Frame.of_view with
    | Some _ -> drain (n + 1)
    | None -> n
  in
  checki "ring held its capacity" 4 (drain 0);
  checki "no leaked buffers" 0 (Net.Pool.outstanding pool);
  checki "acquired = released" (Net.Pool.acquired pool)
    (Net.Pool.released pool)

(* With the NIC fault stage corrupting every DMA'd frame, the
   driver-side parse rejects each descriptor: consume skips them all
   (returning None, so a poller never stalls on a bad head), counts
   them, and releases their buffers. *)
let test_dma_nic_corrupt_descriptors_skipped () =
  let e = Sim.Engine.create () in
  let plan =
    Fault.Plan.make ~seed:1 ~nic:(Fault.Plan.link ~corrupt:1.0 ()) ()
  in
  let nic =
    Nic.Dma_nic.create e Coherence.Interconnect.pcie_modern
      ~config:
        {
          Nic.Dma_nic.default_config with
          Nic.Dma_nic.nqueues = 1;
          coalesce_interval = 0;
        }
      ~fault:plan
      ~on_rx_interrupt:(fun ~queue:_ -> ())
      ()
  in
  for _ = 1 to 5 do
    Nic.Dma_nic.rx_from_wire nic (sample_frame ())
  done;
  Sim.Engine.run e;
  (match Nic.Dma_nic.consume nic ~queue:0 Net.Frame.of_view with
  | Some _ -> Alcotest.fail "a corrupted descriptor parsed successfully"
  | None -> ());
  checki "all descriptors rejected" 5 (Nic.Dma_nic.rx_corrupt_dropped nic);
  checki "no leaked buffers" 0 (Net.Pool.outstanding (Nic.Dma_nic.pool nic))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "nic"
    [
      ( "ring",
        [
          Alcotest.test_case "fifo" `Quick test_ring_fifo;
          Alcotest.test_case "full drops" `Quick test_ring_full_drops;
          Alcotest.test_case "size validation" `Quick
            test_ring_size_validation;
          Alcotest.test_case "notify" `Quick test_ring_notify;
        ]
        @ qsuite [ ring_fifo_property ] );
      ( "iommu",
        [
          Alcotest.test_case "hit/miss/fault" `Quick test_iommu_hit_miss_fault;
          Alcotest.test_case "lru eviction" `Quick test_iommu_lru_eviction;
          Alcotest.test_case "unmap" `Quick test_iommu_unmap;
        ] );
      ( "rss",
        [
          Alcotest.test_case "deterministic" `Quick test_rss_deterministic;
          Alcotest.test_case "spreads flows" `Quick test_rss_spreads_flows;
          Alcotest.test_case "key dependence" `Quick test_rss_key_dependence;
          Alcotest.test_case "toeplitz zero input" `Quick
            test_toeplitz_zero_input;
        ] );
      ( "msix",
        [
          Alcotest.test_case "moderation" `Quick
            test_msix_immediate_then_moderated;
          Alcotest.test_case "mask latches" `Quick test_msix_mask_latches;
        ] );
      ( "dma_nic",
        [
          Alcotest.test_case "rx to ring + interrupt" `Quick
            test_dma_nic_rx_to_ring_and_interrupt;
          Alcotest.test_case "steering override" `Quick
            test_dma_nic_steering_override;
          Alcotest.test_case "transmit delay" `Quick
            test_dma_nic_transmit_delay;
          Alcotest.test_case "ring overflow releases buffers" `Quick
            test_dma_nic_ring_overflow_no_leak;
          Alcotest.test_case "corrupt descriptors skipped" `Quick
            test_dma_nic_corrupt_descriptors_skipped;
        ] );
    ]
