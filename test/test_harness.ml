(* Tests for the experiment harness: recorder matching and traffic
   construction. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

let test_traffic_frames_parse_back () =
  let frame =
    Harness.Traffic.request_frame ~rpc_id:5L ~service_id:2 ~method_id:1
      ~port:8080 (Rpc.Value.str "payload")
  in
  checki "dst port" 8080 frame.Net.Frame.udp.Net.Udp.dst_port;
  (* The full frame survives a byte-level encode/parse round trip. *)
  (match Net.Frame.parse (Net.Frame.encode frame) with
  | Ok f -> (
      match Rpc.Wire_format.decode f.Net.Frame.payload with
      | Ok w ->
          Alcotest.check Alcotest.int64 "rpc id" 5L w.Rpc.Wire_format.rpc_id;
          checki "service" 2 w.Rpc.Wire_format.service_id;
          checkb "is request" true
            (w.Rpc.Wire_format.kind = Rpc.Wire_format.Request)
      | Error e -> Alcotest.failf "rpc: %a" Rpc.Wire_format.pp_error e)
  | Error e -> Alcotest.failf "frame: %a" Net.Frame.pp_error e);
  (* Distinct client indices give distinct endpoints. *)
  let c0 = Harness.Traffic.client_endpoint ~idx:0 () in
  let c1 = Harness.Traffic.client_endpoint ~idx:1 () in
  checkb "distinct clients" false
    (Net.Ip_addr.equal c0.Net.Frame.ip c1.Net.Frame.ip)

let response_frame ~rpc_id =
  let reply =
    {
      Rpc.Wire_format.rpc_id;
      service_id = 1;
      method_id = 0;
      kind = Rpc.Wire_format.Response;
      ctx = None;
      body = Bytes.empty;
    }
  in
  Net.Frame.make
    ~src:(Harness.Traffic.server_endpoint ~port:7000)
    ~dst:(Harness.Traffic.client_endpoint ())
    (Rpc.Wire_format.encode reply)

let test_recorder_latency_measurement () =
  let e = Sim.Engine.create () in
  let r = Harness.Recorder.create e in
  Harness.Recorder.note_sent r ~rpc_id:1L;
  ignore
    (Sim.Engine.schedule_after e ~after:(Sim.Units.us 7) (fun () ->
         Harness.Recorder.egress r (response_frame ~rpc_id:1L)));
  Sim.Engine.run e;
  checki "completed" 1 (Harness.Recorder.completed r);
  checki "latency" (Sim.Units.us 7)
    (Sim.Histogram.max_value (Harness.Recorder.latencies r));
  checki "outstanding" 0 (Harness.Recorder.outstanding r)

let test_recorder_unmatched_and_duplicates () =
  let e = Sim.Engine.create () in
  let r = Harness.Recorder.create e in
  Harness.Recorder.note_sent r ~rpc_id:1L;
  Harness.Recorder.egress r (response_frame ~rpc_id:99L) (* unknown id *);
  Harness.Recorder.egress r (response_frame ~rpc_id:1L);
  Harness.Recorder.egress r (response_frame ~rpc_id:1L) (* duplicate *);
  checki "completed once" 1 (Harness.Recorder.completed r);
  checki "unmatched counted" 2 (Harness.Recorder.unmatched r)

let test_recorder_observer () =
  let e = Sim.Engine.create () in
  let r = Harness.Recorder.create e in
  let seen = ref [] in
  Harness.Recorder.on_complete r (fun ~rpc_id ~latency ->
      seen := (rpc_id, latency) :: !seen);
  Harness.Recorder.note_sent r ~rpc_id:3L;
  Harness.Recorder.complete_by_id r ~rpc_id:3L;
  checkb "observer fired" true (!seen = [ (3L, 0) ])

let test_client_retransmission_over_lossy_link () =
  (* End-to-end robustness: a client with retransmission behind a 20%%-
     lossy wire in both directions still completes every call. *)
  let engine = Sim.Engine.create () in
  let client = ref None in
  let to_client =
    Net.Wire.create engine ~gbps:100. ~propagation:(Sim.Units.ns 500)
      ~loss:0.2 ~seed:11
      ~deliver:(fun f ->
        match !client with Some c -> Harness.Client.on_reply c f | None -> ())
      ()
  in
  let stack =
    Lauberhorn.Stack.create engine ~cfg:Lauberhorn.Config.enzian ~ncores:4
      ~services:
        [ Lauberhorn.Stack.spec ~port:7000 (Rpc.Interface.echo_service ~id:1) ]
      ~egress:(fun f -> Net.Wire.transmit to_client f)
      ()
  in
  let to_server =
    Net.Wire.create engine ~gbps:100. ~propagation:(Sim.Units.ns 500)
      ~loss:0.2 ~seed:12
      ~deliver:(fun f -> Lauberhorn.Stack.ingress stack f)
      ()
  in
  let c =
    Harness.Client.create engine
      ~send:(fun f -> Net.Wire.transmit to_server f)
      ()
  in
  client := Some c;
  let done_count = ref 0 in
  for i = 1 to 200 do
    ignore
      (Sim.Engine.schedule_at engine
         ~at:(i * Sim.Units.us 20)
         (fun () ->
           Harness.Client.call c ~timeout:(Sim.Units.us 200) ~retries:10
             ~service_id:1 ~method_id:0 ~port:7000
             (Rpc.Value.Blob (Bytes.make 32 'l'))
             (fun _ -> incr done_count)))
  done;
  Sim.Engine.run engine ~until:(Sim.Units.ms 50);
  checki "all complete despite loss" 200 !done_count;
  checki "nothing abandoned" 0 (Harness.Client.abandoned c);
  checkb "retransmissions happened" true (Harness.Client.retransmits c > 20);
  checkb "wire dropped frames" true (Net.Wire.frames_lost to_server > 20)

let test_client_abandons_when_server_unreachable () =
  let engine = Sim.Engine.create () in
  let c = Harness.Client.create engine ~send:(fun _ -> ()) () in
  let got_reply = ref false in
  Harness.Client.call c ~timeout:(Sim.Units.us 100) ~retries:2 ~service_id:1
    ~method_id:0 ~port:7000 Rpc.Value.Unit (fun _ -> got_reply := true);
  Sim.Engine.run engine ~until:(Sim.Units.ms 10);
  checkb "no reply" false !got_reply;
  checki "abandoned" 1 (Harness.Client.abandoned c);
  checki "retried twice" 2 (Harness.Client.retransmits c);
  checki "slot released" 0 (Harness.Client.outstanding c)

let test_driver_describe () =
  let e = Sim.Engine.create () in
  let k = Osmodel.Kernel.create e ~ncores:1 () in
  let d =
    Harness.Driver.make ~name:"x"
      ~ingress:(fun _ -> ())
      ~kernel:k
      ~counters:(Sim.Counter.group "x")
      ()
  in
  Alcotest.check Alcotest.string "default describe" "x"
    (d.Harness.Driver.describe ())

let () =
  Alcotest.run "harness"
    [
      ( "traffic",
        [
          Alcotest.test_case "frames parse back" `Quick
            test_traffic_frames_parse_back;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "latency measurement" `Quick
            test_recorder_latency_measurement;
          Alcotest.test_case "unmatched and duplicates" `Quick
            test_recorder_unmatched_and_duplicates;
          Alcotest.test_case "observer" `Quick test_recorder_observer;
        ] );
      ( "client",
        [
          Alcotest.test_case "retransmission over lossy link" `Quick
            test_client_retransmission_over_lossy_link;
          Alcotest.test_case "abandons unreachable server" `Quick
            test_client_abandons_when_server_unreachable;
        ] );
      ( "driver",
        [ Alcotest.test_case "describe" `Quick test_driver_describe ] );
    ]
