(* Tests for the coherence substrate: interconnect profiles, the MESI
   directory, and the deferred-fill home agent. *)

let check = Alcotest.check
let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

(* ---------- Interconnect ---------- *)

let test_profiles_sane () =
  List.iter
    (fun p ->
      checkb "positive rtt" true (Coherence.Interconnect.coherent_rtt p > 0);
      checkb "positive line" true
        (p.Coherence.Interconnect.cache_line_bytes > 0);
      checkb "dma bw" true (p.Coherence.Interconnect.dma_bandwidth_gbps > 0.))
    Coherence.Interconnect.all

let test_figure2_shape () =
  (* The paper's Figure 2 ordering: coherent ECI interaction is much
     faster than a DMA round trip on the same machine. *)
  let eci = Coherence.Interconnect.eci in
  let pcie = Coherence.Interconnect.pcie_enzian in
  checkb "eci rtt < pcie mmio rtt" true
    (Coherence.Interconnect.coherent_rtt eci
     < 2 * pcie.Coherence.Interconnect.mmio_read);
  checkb "modern dma faster than enzian dma" true
    (Coherence.Interconnect.pcie_modern.Coherence.Interconnect.dma_write
     < pcie.Coherence.Interconnect.dma_write)

let test_line_transfer_pipelines () =
  let p = Coherence.Interconnect.eci in
  let one = Coherence.Interconnect.line_transfer p ~bytes:64 in
  let two = Coherence.Interconnect.line_transfer p ~bytes:200 in
  checki "one line = rtt" (Coherence.Interconnect.coherent_rtt p) one;
  let per_line =
    int_of_float
      (Float.round
         (float_of_int (p.Coherence.Interconnect.cache_line_bytes * 8)
         /. p.Coherence.Interconnect.coherent_bandwidth_gbps))
  in
  checki "second line streams at coherent bandwidth" (one + per_line) two;
  checki "zero bytes free" 0 (Coherence.Interconnect.line_transfer p ~bytes:0)

let test_dma_transfer_scales () =
  let p = Coherence.Interconnect.eci in
  let small = Coherence.Interconnect.dma_transfer p ~bytes:64 in
  let big = Coherence.Interconnect.dma_transfer p ~bytes:65536 in
  checkb "latency floor" true (small >= p.Coherence.Interconnect.dma_write);
  (* 64 KiB at 100 Gb/s is ~5.2 us of streaming. *)
  checkb "bandwidth term" true (big > small + 5_000)

let test_crossover_band () =
  (* Paper section 6: on Enzian the DMA/cache-line crossover is ~4 KiB. *)
  let p = Coherence.Interconnect.eci in
  let line_faster n =
    Coherence.Interconnect.line_transfer p ~bytes:n
    < Coherence.Interconnect.dma_transfer p ~bytes:n
  in
  checkb "64B: lines win" true (line_faster 64);
  checkb "1KiB: lines win" true (line_faster 1024);
  checkb "2KiB: lines win" true (line_faster 2048);
  checkb "16KiB: dma wins" false (line_faster 16384);
  checkb "64KiB: dma wins" false (line_faster 65536)

(* ---------- Directory ---------- *)

let test_directory_read_then_write () =
  let d = Coherence.Directory.create () in
  let tx = Coherence.Directory.read d ~line:1 ~agent:0 in
  checkb "cold read misses clean" true
    (tx.Coherence.Directory.latency = Coherence.Directory.Miss_clean);
  let tx2 = Coherence.Directory.read d ~line:1 ~agent:0 in
  checkb "second read hits" true
    (tx2.Coherence.Directory.latency = Coherence.Directory.Hit);
  let tx3 = Coherence.Directory.write d ~line:1 ~agent:1 in
  check (Alcotest.list Alcotest.int) "invalidates sharer" [ 0 ]
    tx3.Coherence.Directory.invalidated;
  checkb "modified by 1" true
    (Coherence.Directory.state d ~line:1 = Coherence.Directory.Modified 1)

let test_directory_dirty_read () =
  let d = Coherence.Directory.create () in
  ignore (Coherence.Directory.write d ~line:5 ~agent:2);
  let tx = Coherence.Directory.read d ~line:5 ~agent:0 in
  checkb "writeback needed" true
    (tx.Coherence.Directory.writeback_from = Some 2);
  checkb "now shared" true
    (match Coherence.Directory.state d ~line:5 with
    | Coherence.Directory.Shared [ 0; 2 ] -> true
    | _ -> false)

let test_directory_evict () =
  let d = Coherence.Directory.create () in
  ignore (Coherence.Directory.read d ~line:1 ~agent:0);
  ignore (Coherence.Directory.read d ~line:1 ~agent:1);
  Coherence.Directory.evict d ~line:1 ~agent:0;
  checkb "one sharer left" true
    (Coherence.Directory.holders d ~line:1 = [ 1 ]);
  Coherence.Directory.evict d ~line:1 ~agent:1;
  checkb "invalid" true
    (Coherence.Directory.state d ~line:1 = Coherence.Directory.Invalid)

let test_directory_lines_held_by () =
  let d = Coherence.Directory.create () in
  ignore (Coherence.Directory.read d ~line:3 ~agent:0);
  ignore (Coherence.Directory.write d ~line:9 ~agent:0);
  check (Alcotest.list Alcotest.int) "held" [ 3; 9 ]
    (Coherence.Directory.lines_held_by d ~agent:0)

let directory_invariants_hold =
  QCheck.Test.make
    ~name:"directory invariants hold under random op sequences" ~count:300
    QCheck.(list (triple (int_bound 2) (int_bound 4) (int_bound 3)))
    (fun ops ->
      let d = Coherence.Directory.create () in
      List.iter
        (fun (op, line, agent) ->
          match op with
          | 0 -> ignore (Coherence.Directory.read d ~line ~agent)
          | 1 -> ignore (Coherence.Directory.write d ~line ~agent)
          | _ -> Coherence.Directory.evict d ~line ~agent)
        ops;
      Coherence.Directory.check_invariants d = Ok ())

let directory_single_writer =
  QCheck.Test.make ~name:"at most one modified owner per line" ~count:300
    QCheck.(list (triple bool (int_bound 3) (int_bound 3)))
    (fun ops ->
      let d = Coherence.Directory.create () in
      List.iter
        (fun (w, line, agent) ->
          if w then ignore (Coherence.Directory.write d ~line ~agent)
          else ignore (Coherence.Directory.read d ~line ~agent))
        ops;
      List.for_all
        (fun line ->
          match Coherence.Directory.state d ~line with
          | Coherence.Directory.Modified _ ->
              List.length (Coherence.Directory.holders d ~line) = 1
          | Coherence.Directory.Shared sharers -> sharers <> []
          | Coherence.Directory.Invalid -> true)
        [ 0; 1; 2; 3 ])

(* ---------- Home agent ---------- *)

let make_ha ?(timeout = Sim.Units.ms 15) () =
  let e = Sim.Engine.create () in
  let ha = Coherence.Home_agent.create e Coherence.Interconnect.eci ~timeout () in
  (e, ha)

let test_ha_staged_then_load () =
  let e, ha = make_ha () in
  let line = Coherence.Home_agent.alloc_line ha in
  Coherence.Home_agent.stage ha line (Bytes.of_string "data");
  checkb "staged" true (Coherence.Home_agent.stage_pending ha line);
  let got = ref None in
  let t0 = Sim.Engine.now e in
  Coherence.Home_agent.cpu_load ha line (fun fill ->
      got := Some (fill, Sim.Engine.now e - t0));
  Sim.Engine.run e;
  (match !got with
  | Some (Coherence.Home_agent.Data d, dt) ->
      check Alcotest.string "payload" "data" (Bytes.to_string d);
      checki "one rtt"
        (Coherence.Interconnect.coherent_rtt Coherence.Interconnect.eci)
        dt
  | _ -> Alcotest.fail "no data fill");
  checkb "staged consumed" false (Coherence.Home_agent.stage_pending ha line);
  checki "fills" 1 (Coherence.Home_agent.fills ha)

let test_ha_parked_load_completed_by_stage () =
  let e, ha = make_ha () in
  let line = Coherence.Home_agent.alloc_line ha in
  let parked_seen = ref false in
  Coherence.Home_agent.set_on_load ha line (fun ~served ->
      if not served then parked_seen := true);
  let got = ref None in
  Coherence.Home_agent.cpu_load ha line (fun fill -> got := Some fill);
  (* Stage arrives 10 us after the load parks. *)
  ignore
    (Sim.Engine.schedule_after e ~after:(Sim.Units.us 10) (fun () ->
         Coherence.Home_agent.stage ha line (Bytes.of_string "late")));
  Sim.Engine.run e ~until:(Sim.Units.ms 1);
  checkb "park observed" true !parked_seen;
  (match !got with
  | Some (Coherence.Home_agent.Data d) ->
      check Alcotest.string "late data" "late" (Bytes.to_string d)
  | _ -> Alcotest.fail "expected data");
  checki "no tryagain" 0 (Coherence.Home_agent.tryagains ha)

let test_ha_timeout_tryagain () =
  let e, ha = make_ha ~timeout:(Sim.Units.us 100) () in
  let line = Coherence.Home_agent.alloc_line ha in
  let got = ref None in
  Coherence.Home_agent.cpu_load ha line (fun fill ->
      got := Some (fill, Sim.Engine.now e));
  Sim.Engine.run e;
  (match !got with
  | Some (Coherence.Home_agent.Tryagain, at) ->
      (* timeout + response latency *)
      checki "timing"
        (Sim.Units.us 100
        + Coherence.Interconnect.eci.Coherence.Interconnect.load_request
        + Coherence.Interconnect.eci.Coherence.Interconnect.load_response)
        at
  | _ -> Alcotest.fail "expected tryagain");
  checki "tryagains" 1 (Coherence.Home_agent.tryagains ha)

let test_ha_kick () =
  let e, ha = make_ha () in
  let line = Coherence.Home_agent.alloc_line ha in
  let got = ref None in
  Coherence.Home_agent.cpu_load ha line (fun fill -> got := Some fill);
  ignore
    (Sim.Engine.schedule_after e ~after:(Sim.Units.us 5) (fun () ->
         Coherence.Home_agent.kick ha line));
  Sim.Engine.run e ~until:(Sim.Units.ms 1);
  checkb "kicked to tryagain" true
    (!got = Some Coherence.Home_agent.Tryagain);
  (* The timeout timer must have been cancelled: no second fill. *)
  checki "single tryagain" 1 (Coherence.Home_agent.tryagains ha)

let test_ha_store_and_fetch_exclusive () =
  let e, ha = make_ha () in
  let line = Coherence.Home_agent.alloc_line ha in
  let store_seen = ref None in
  Coherence.Home_agent.set_on_store ha line (fun b ->
      store_seen := Some (Bytes.to_string b, Sim.Engine.now e));
  Coherence.Home_agent.cpu_store ha line (Bytes.of_string "resp");
  Sim.Engine.run e;
  (match !store_seen with
  | Some ("resp", at) ->
      checki "store release latency"
        Coherence.Interconnect.eci.Coherence.Interconnect.store_release at
  | _ -> Alcotest.fail "store not observed");
  let fetched = ref None in
  Coherence.Home_agent.fetch_exclusive ha line (fun b -> fetched := Some b);
  Sim.Engine.run e;
  (match !fetched with
  | Some (Some b) -> check Alcotest.string "fetched" "resp" (Bytes.to_string b)
  | _ -> Alcotest.fail "fetch failed");
  (* The CPU copy is invalidated by the fetch. *)
  let fetched2 = ref None in
  Coherence.Home_agent.fetch_exclusive ha line (fun b -> fetched2 := Some b);
  Sim.Engine.run e;
  checkb "second fetch empty" true (!fetched2 = Some None)

let test_ha_double_park_rejected () =
  let e, ha = make_ha () in
  let line = Coherence.Home_agent.alloc_line ha in
  Coherence.Home_agent.cpu_load ha line (fun _ -> ());
  Coherence.Home_agent.cpu_load ha line (fun _ -> ());
  checkb "second park raises" true
    (try
       Sim.Engine.run e ~until:(Sim.Units.us 10);
       false
     with Invalid_argument _ -> true)

let test_ha_oversized_stage_rejected () =
  let _, ha = make_ha () in
  let line = Coherence.Home_agent.alloc_line ha in
  checkb "raises" true
    (try
       Coherence.Home_agent.stage ha line (Bytes.make 256 'x');
       false
     with Invalid_argument _ -> true)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "coherence"
    [
      ( "interconnect",
        [
          Alcotest.test_case "profiles sane" `Quick test_profiles_sane;
          Alcotest.test_case "figure-2 shape" `Quick test_figure2_shape;
          Alcotest.test_case "line transfer pipelines" `Quick
            test_line_transfer_pipelines;
          Alcotest.test_case "dma transfer scales" `Quick
            test_dma_transfer_scales;
          Alcotest.test_case "crossover band" `Quick test_crossover_band;
        ] );
      ( "directory",
        [
          Alcotest.test_case "read then write" `Quick
            test_directory_read_then_write;
          Alcotest.test_case "dirty read" `Quick test_directory_dirty_read;
          Alcotest.test_case "evict" `Quick test_directory_evict;
          Alcotest.test_case "lines held by" `Quick
            test_directory_lines_held_by;
        ]
        @ qsuite [ directory_invariants_hold; directory_single_writer ] );
      ( "home_agent",
        [
          Alcotest.test_case "staged then load" `Quick
            test_ha_staged_then_load;
          Alcotest.test_case "parked completed by stage" `Quick
            test_ha_parked_load_completed_by_stage;
          Alcotest.test_case "timeout tryagain" `Quick
            test_ha_timeout_tryagain;
          Alcotest.test_case "kick" `Quick test_ha_kick;
          Alcotest.test_case "store and fetch-exclusive" `Quick
            test_ha_store_and_fetch_exclusive;
          Alcotest.test_case "double park rejected" `Quick
            test_ha_double_park_rejected;
          Alcotest.test_case "oversized stage rejected" `Quick
            test_ha_oversized_stage_rejected;
        ] );
    ]
