(* Tests for the simulation core: time units, event heap, engine, RNG,
   histogram, counters, trace. *)

let check = Alcotest.check
let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

(* ---------- Units ---------- *)

let test_units_construction () =
  checki "us" 1_000 (Sim.Units.us 1);
  checki "ms" 1_000_000 (Sim.Units.ms 1);
  checki "s" 1_000_000_000 (Sim.Units.s 1);
  checki "round" 1_500 (Sim.Units.ns_of_float_us 1.5)

let test_units_conversion () =
  check (Alcotest.float 1e-9) "to_us" 1.5 (Sim.Units.to_float_us 1_500);
  check (Alcotest.float 1e-9) "to_ms" 2.0 (Sim.Units.to_float_ms 2_000_000);
  check (Alcotest.float 1e-9) "to_s" 0.5 (Sim.Units.to_float_s 500_000_000)

let test_units_cycles () =
  let f = { Sim.Units.ghz = 2.0 } in
  check (Alcotest.float 1e-9) "cycles" 2_000. (Sim.Units.cycles_of_ns f 1_000);
  checki "ns_of_cycles" 500 (Sim.Units.ns_of_cycles f 1_000.);
  checkb "bad freq raises" true
    (try
       ignore (Sim.Units.ns_of_cycles { Sim.Units.ghz = 0. } 1.);
       false
     with Invalid_argument _ -> true)

let test_units_pp () =
  let s d = Format.asprintf "%a" Sim.Units.pp_duration d in
  check Alcotest.string "ns" "382ns" (s 382);
  check Alcotest.string "us" "12.40us" (s 12_400);
  check Alcotest.string "ms" "3.50ms" (s 3_500_000);
  check Alcotest.string "s" "1.20s" (s 1_200_000_000)

(* ---------- Event heap ---------- *)

let drain_values h =
  let rec go acc =
    match Sim.Event_heap.pop h with
    | None -> List.rev acc
    | Some (_, v) -> go (v :: acc)
  in
  go []

let drain_times h =
  let rec go acc =
    match Sim.Event_heap.pop h with
    | None -> List.rev acc
    | Some (t, _) -> go (t :: acc)
  in
  go []

let test_heap_ordering () =
  let h = Sim.Event_heap.create () in
  List.iter (fun t -> ignore (Sim.Event_heap.push h ~time:t t))
    [ 5; 1; 3; 2; 4 ];
  check (Alcotest.list Alcotest.int) "sorted" [ 1; 2; 3; 4; 5 ]
    (drain_values h)

let test_heap_fifo_ties () =
  let h = Sim.Event_heap.create () in
  List.iter (fun v -> ignore (Sim.Event_heap.push h ~time:7 v)) [ 10; 20; 30 ];
  check (Alcotest.list Alcotest.int) "ties fifo" [ 10; 20; 30 ]
    (drain_values h)

let test_heap_cancel () =
  let h = Sim.Event_heap.create () in
  let _a = Sim.Event_heap.push h ~time:1 "a" in
  let b = Sim.Event_heap.push h ~time:2 "b" in
  let _c = Sim.Event_heap.push h ~time:3 "c" in
  Sim.Event_heap.cancel h b;
  checki "live after cancel" 2 (Sim.Event_heap.live_count h);
  Sim.Event_heap.cancel h b;
  checki "double cancel no-op" 2 (Sim.Event_heap.live_count h);
  check (Alcotest.list Alcotest.string) "b skipped" [ "a"; "c" ]
    (drain_values h)

let test_heap_peek_skips_cancelled () =
  let h = Sim.Event_heap.create () in
  let a = Sim.Event_heap.push h ~time:1 "a" in
  ignore (Sim.Event_heap.push h ~time:5 "b");
  Sim.Event_heap.cancel h a;
  check (Alcotest.option Alcotest.int) "peek" (Some 5)
    (Sim.Event_heap.peek_time h)

let test_heap_growth () =
  let h = Sim.Event_heap.create () in
  for i = 999 downto 0 do
    ignore (Sim.Event_heap.push h ~time:i i)
  done;
  checki "live" 1000 (Sim.Event_heap.live_count h);
  check (Alcotest.list Alcotest.int) "all sorted"
    (List.init 1000 (fun i -> i))
    (drain_values h)

let heap_sorts_any_input =
  QCheck.Test.make ~name:"event_heap pops in nondecreasing time order"
    ~count:200
    QCheck.(list (int_bound 10_000))
    (fun times ->
      let h = Sim.Event_heap.create () in
      List.iter (fun t -> ignore (Sim.Event_heap.push h ~time:t t)) times;
      drain_times h = List.sort compare times)

let heap_cancel_removes_exactly =
  QCheck.Test.make ~name:"cancelling a subset pops the complement"
    ~count:200
    QCheck.(pair (list (int_bound 1000)) (list bool))
    (fun (times, cancels) ->
      let h = Sim.Event_heap.create () in
      let handles =
        List.map (fun t -> (t, Sim.Event_heap.push h ~time:t t)) times
      in
      let kept = ref [] in
      List.iteri
        (fun i (t, handle) ->
          let cancel =
            match List.nth_opt cancels i with Some b -> b | None -> false
          in
          if cancel then Sim.Event_heap.cancel h handle
          else kept := t :: !kept)
        handles;
      drain_times h = List.sort compare !kept)


let test_heap_cancel_after_pop () =
  let h = Sim.Event_heap.create () in
  let a = Sim.Event_heap.push h ~time:1 "a" in
  ignore (Sim.Event_heap.push h ~time:2 "b");
  (match Sim.Event_heap.pop h with
  | Some (1, "a") -> ()
  | _ -> Alcotest.fail "wrong pop");
  Sim.Event_heap.cancel h a;
  checki "cancel of popped entry is a no-op" 1 (Sim.Event_heap.live_count h)

let test_heap_compaction_preserves_order () =
  (* Cancel a large majority so the >50%-dead compaction fires, then
     check the survivors still drain in order. *)
  let h = Sim.Event_heap.create () in
  let handles =
    List.init 500 (fun i -> (i, Sim.Event_heap.push h ~time:i i))
  in
  List.iter (fun (i, hd) -> if i mod 5 <> 0 then Sim.Event_heap.cancel h hd)
    handles;
  checki "live after mass cancel" 100 (Sim.Event_heap.live_count h);
  check (Alcotest.list Alcotest.int) "survivors in order"
    (List.init 100 (fun i -> i * 5))
    (drain_values h)

(* Model-based property: the heap must agree, operation by operation,
   with a sorted-association-list reference under interleaved
   push/pop/cancel — including cancels aimed at already-popped
   handles. *)
let heap_matches_reference_model =
  QCheck.Test.make ~name:"heap agrees with sorted-list model" ~count:300
    QCheck.(list_of_size (Gen.int_range 0 400) (pair (int_bound 3) small_nat))
    (fun ops ->
      let h = Sim.Event_heap.create () in
      let model = ref [] in
      let handles = ref [||] in
      let nseq = ref 0 in
      let ok = ref true in
      List.iter
        (fun (op, v) ->
          match op with
          | 0 | 1 ->
              let time = v in
              let hd = Sim.Event_heap.push h ~time !nseq in
              handles := Array.append !handles [| (!nseq, hd) |];
              model := (time, !nseq) :: !model;
              incr nseq
          | 2 -> (
              let expected =
                match List.sort compare !model with
                | [] -> None
                | (t, s) :: _ -> Some (t, s)
              in
              match (Sim.Event_heap.pop h, expected) with
              | None, None -> ()
              | Some (t, s), Some (t', s') when t = t' && s = s' ->
                  model := List.filter (fun (_, s0) -> s0 <> s) !model
              | _ -> ok := false)
          | _ ->
              if Array.length !handles > 0 then begin
                let s, hd = !handles.(v mod Array.length !handles) in
                Sim.Event_heap.cancel h hd;
                model := List.filter (fun (_, s0) -> s0 <> s) !model
              end)
        ops;
      !ok
      && Sim.Event_heap.live_count h = List.length !model
      && drain_times h = List.sort compare (List.map fst !model))

(* ---------- Engine ---------- *)


let test_engine_ordering () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Sim.Engine.schedule_at e ~at:30 (note "c"));
  ignore (Sim.Engine.schedule_at e ~at:10 (note "a"));
  ignore (Sim.Engine.schedule_at e ~at:20 (note "b"));
  Sim.Engine.run e;
  check (Alcotest.list Alcotest.string) "order" [ "a"; "b"; "c" ]
    (List.rev !log);
  checki "clock at last event" 30 (Sim.Engine.now e);
  checki "events processed" 3 (Sim.Engine.events_processed e)

let test_engine_relative_and_nested () =
  let e = Sim.Engine.create () in
  let fired_at = ref (-1) in
  ignore
    (Sim.Engine.schedule_after e ~after:10 (fun () ->
         ignore
           (Sim.Engine.schedule_after e ~after:5 (fun () ->
                fired_at := Sim.Engine.now e))));
  Sim.Engine.run e;
  checki "nested schedule" 15 !fired_at

let test_engine_until () =
  let e = Sim.Engine.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    ignore (Sim.Engine.schedule_after e ~after:10 tick)
  in
  ignore (Sim.Engine.schedule_after e ~after:10 tick);
  Sim.Engine.run e ~until:100;
  checki "ticks within horizon" 10 !count;
  checki "clock parked at horizon" 100 (Sim.Engine.now e);
  checki "pending event retained" 1 (Sim.Engine.pending e)

let test_engine_until_advances_clock_when_drained () =
  let e = Sim.Engine.create () in
  ignore (Sim.Engine.schedule_at e ~at:5 (fun () -> ()));
  Sim.Engine.run e ~until:50;
  checki "clock" 50 (Sim.Engine.now e)

let test_engine_cancel () =
  let e = Sim.Engine.create () in
  let fired = ref false in
  let h = Sim.Engine.schedule_after e ~after:10 (fun () -> fired := true) in
  Sim.Engine.cancel e h;
  Sim.Engine.run e;
  checkb "not fired" false !fired

let test_engine_past_raises () =
  let e = Sim.Engine.create () in
  ignore (Sim.Engine.schedule_at e ~at:100 (fun () -> ()));
  Sim.Engine.run e;
  checkb "raises on past" true
    (try
       ignore (Sim.Engine.schedule_at e ~at:50 (fun () -> ()));
       false
     with Invalid_argument _ -> true)

let test_engine_step () =
  let e = Sim.Engine.create () in
  ignore (Sim.Engine.schedule_at e ~at:1 (fun () -> ()));
  checkb "first step" true (Sim.Engine.step e);
  checkb "empty step" false (Sim.Engine.step e)

(* [run ~until] boundary semantics, pinned for both scheduler backends:
   an event exactly at the horizon fires; one strictly later stays
   queued; and a cancelled entry neither fires nor counts as pending
   after the run drains past it. *)
let engine_until_boundary sched () =
  let e = Sim.Engine.create ~sched () in
  let fired = ref [] in
  ignore (Sim.Engine.schedule_at e ~at:100 (fun () -> fired := 100 :: !fired));
  ignore (Sim.Engine.schedule_at e ~at:101 (fun () -> fired := 101 :: !fired));
  Sim.Engine.run e ~until:100;
  check (Alcotest.list Alcotest.int) "event at horizon fires" [ 100 ]
    (List.rev !fired);
  checki "strictly-later event retained" 1 (Sim.Engine.pending e);
  checki "clock parked at horizon" 100 (Sim.Engine.now e);
  (* The retained event fires on a later run, exactly once. *)
  Sim.Engine.run e ~until:200;
  check (Alcotest.list Alcotest.int) "retained event fires later"
    [ 100; 101 ] (List.rev !fired);
  checki "queue drained" 0 (Sim.Engine.pending e)

let engine_until_cancel_consistent sched () =
  let e = Sim.Engine.create ~sched () in
  let fired = ref 0 in
  let h = Sim.Engine.schedule_at e ~at:50 (fun () -> incr fired) in
  ignore (Sim.Engine.schedule_at e ~at:60 (fun () -> incr fired));
  Sim.Engine.cancel e h;
  checki "pending excludes cancelled" 1 (Sim.Engine.pending e);
  Sim.Engine.run e ~until:70;
  checki "only live event fired" 1 !fired;
  checki "pending empty after run" 0 (Sim.Engine.pending e)

(* ---------- Timing wheel ---------- *)

(* Drive the heap and wheel through the same schedule/cancel/pop script
   and demand identical observable behaviour — the byte-identity
   contract [LAUBERHORN_SCHED=wheel] relies on. *)
let wheel_matches_heap =
  QCheck.Test.make ~name:"timing wheel agrees with event heap" ~count:300
    QCheck.(list_of_size (Gen.int_range 0 400) (pair (int_bound 3) small_nat))
    (fun ops ->
      let h = Sim.Event_heap.create () in
      let w = Sim.Timing_wheel.create () in
      let hh = ref [||] and wh = ref [||] in
      let clock = ref 0 in
      let ok = ref true in
      List.iter
        (fun (op, v) ->
          match op with
          | 0 | 1 ->
              (* Mix short delays (level-0 churn) with long ones that
                 exercise higher levels and the overflow vector. *)
              let d =
                if op = 0 then 1 + (v mod 300)
                else 1 + ((v + 1) * 65_537)
              in
              let t = !clock + d in
              hh := Array.append !hh [| Sim.Event_heap.push h ~time:t v |];
              wh := Array.append !wh [| Sim.Timing_wheel.push w ~time:t v |]
          | 2 -> (
              match (Sim.Event_heap.pop h, Sim.Timing_wheel.pop w) with
              | None, None -> ()
              | Some (t, x), Some (t', x') when t = t' && x = x' -> clock := t
              | _ -> ok := false)
          | _ ->
              if Array.length !hh > 0 then begin
                let i = v mod Array.length !hh in
                Sim.Event_heap.cancel h !hh.(i);
                Sim.Timing_wheel.cancel w !wh.(i)
              end)
        ops;
      !ok
      && Sim.Event_heap.live_count h = Sim.Timing_wheel.live_count w
      && Result.is_ok (Sim.Timing_wheel.validate w)
      && (let rec drain () =
            match (Sim.Event_heap.pop h, Sim.Timing_wheel.pop w) with
            | None, None -> true
            | Some (t, x), Some (t', x') when t = t' && x = x' -> drain ()
            | _ -> false
          in
          drain ()))

let test_wheel_fifo_ties () =
  let w = Sim.Timing_wheel.create () in
  ignore (Sim.Timing_wheel.push w ~time:10 "first");
  ignore (Sim.Timing_wheel.push w ~time:10 "second");
  ignore (Sim.Timing_wheel.push w ~time:10 "third");
  let popped = ref [] in
  let rec drain () =
    match Sim.Timing_wheel.pop w with
    | None -> ()
    | Some (_, x) ->
        popped := x :: !popped;
        drain ()
  in
  drain ();
  check (Alcotest.list Alcotest.string) "fifo ties"
    [ "first"; "second"; "third" ]
    (List.rev !popped)

let test_wheel_overflow_migration () =
  (* An entry beyond the 2^48 ns wheel span parks in the overflow
     vector and must still pop in global order once reachable. *)
  let w = Sim.Timing_wheel.create () in
  let far = (1 lsl 48) + 17 in
  ignore (Sim.Timing_wheel.push w ~time:far "far");
  ignore (Sim.Timing_wheel.push w ~time:5 "near");
  checkb "wheel invariants hold" true
    (Result.is_ok (Sim.Timing_wheel.validate w));
  checkb "near first"
    true
    (match Sim.Timing_wheel.pop w with Some (5, "near") -> true | _ -> false);
  checkb "far second"
    true
    (match Sim.Timing_wheel.pop w with
    | Some (t, "far") -> t = far
    | _ -> false);
  checkb "empty" true (Sim.Timing_wheel.is_empty w)

(* ---------- RNG ---------- *)

let test_rng_determinism () =
  let a = Sim.Rng.create ~seed:7 and b = Sim.Rng.create ~seed:7 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Sim.Rng.bits64 a) (Sim.Rng.bits64 b)
  done

let test_rng_split_decorrelates () =
  let a = Sim.Rng.create ~seed:7 in
  let b = Sim.Rng.split a in
  checkb "split differs" false
    (Int64.equal (Sim.Rng.bits64 a) (Sim.Rng.bits64 b))

let test_rng_seed_sensitivity () =
  let a = Sim.Rng.create ~seed:1 and b = Sim.Rng.create ~seed:2 in
  checkb "different first draw" false
    (Int64.equal (Sim.Rng.bits64 a) (Sim.Rng.bits64 b))

let test_rng_float_range () =
  let r = Sim.Rng.create ~seed:3 in
  for _ = 1 to 10_000 do
    let x = Sim.Rng.float r in
    if x < 0. || x >= 1. then Alcotest.failf "float out of range: %f" x
  done

let test_rng_int_range () =
  let r = Sim.Rng.create ~seed:4 in
  for _ = 1 to 10_000 do
    let x = Sim.Rng.int r ~bound:17 in
    if x < 0 || x >= 17 then Alcotest.failf "int out of range: %d" x
  done;
  checkb "bad bound raises" true
    (try
       ignore (Sim.Rng.int r ~bound:0);
       false
     with Invalid_argument _ -> true)

let test_rng_exponential_mean () =
  let r = Sim.Rng.create ~seed:5 in
  let n = 100_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Sim.Rng.exponential r ~mean:42.
  done;
  let mean = !sum /. float_of_int n in
  if Float.abs (mean -. 42.) > 1. then
    Alcotest.failf "exponential mean off: %f" mean

let test_rng_gaussian_moments () =
  let r = Sim.Rng.create ~seed:6 in
  let n = 100_000 in
  let sum = ref 0. and sq = ref 0. in
  for _ = 1 to n do
    let x = Sim.Rng.gaussian r ~mu:5. ~sigma:2. in
    sum := !sum +. x;
    sq := !sq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  if Float.abs (mean -. 5.) > 0.05 then Alcotest.failf "mu off: %f" mean;
  if Float.abs (var -. 4.) > 0.2 then Alcotest.failf "sigma^2 off: %f" var

let test_rng_shuffle_permutes () =
  let r = Sim.Rng.create ~seed:8 in
  let arr = Array.init 50 (fun i -> i) in
  let orig = Array.copy arr in
  Sim.Rng.shuffle r arr;
  check
    (Alcotest.list Alcotest.int)
    "same multiset"
    (List.sort compare (Array.to_list orig))
    (List.sort compare (Array.to_list arr));
  checkb "actually moved" false (arr = orig)

(* ---------- Histogram ---------- *)

let test_histogram_basics () =
  let h = Sim.Histogram.create () in
  List.iter (Sim.Histogram.record h) [ 10; 20; 30; 40; 50 ];
  checki "count" 5 (Sim.Histogram.count h);
  checki "min" 10 (Sim.Histogram.min_value h);
  checki "max" 50 (Sim.Histogram.max_value h);
  check (Alcotest.float 1e-9) "mean" 30. (Sim.Histogram.mean h)

let test_histogram_record_n () =
  let h = Sim.Histogram.create () in
  Sim.Histogram.record_n h 7 ~n:100;
  checki "count" 100 (Sim.Histogram.count h);
  checki "p99" 7 (Sim.Histogram.quantile h 0.99)

let test_histogram_quantile_exact_small () =
  let h = Sim.Histogram.create () in
  List.iter (Sim.Histogram.record h) [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ];
  checki "p50" 5 (Sim.Histogram.quantile h 0.5);
  checki "p100" 10 (Sim.Histogram.quantile h 1.0)

let test_histogram_merge_and_clear () =
  let a = Sim.Histogram.create () and b = Sim.Histogram.create () in
  Sim.Histogram.record a 100;
  Sim.Histogram.record b 200;
  Sim.Histogram.merge_into ~src:a ~dst:b;
  checki "merged count" 2 (Sim.Histogram.count b);
  checki "merged max" 200 (Sim.Histogram.max_value b);
  Sim.Histogram.clear b;
  checki "cleared" 0 (Sim.Histogram.count b)

let test_histogram_empty_raises () =
  let h = Sim.Histogram.create () in
  checkb "quantile raises" true
    (try
       ignore (Sim.Histogram.quantile h 0.5);
       false
     with Invalid_argument _ -> true);
  checkb "negative raises" true
    (try
       Sim.Histogram.record h (-1);
       false
     with Invalid_argument _ -> true)

let histogram_quantile_error_bounded =
  QCheck.Test.make
    ~name:"histogram quantile stays within bucket resolution" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 500) (int_bound 5_000_000))
    (fun values ->
      QCheck.assume (values <> []);
      let h = Sim.Histogram.create () in
      List.iter (Sim.Histogram.record h) values;
      let sorted = Array.of_list (List.sort compare values) in
      List.for_all
        (fun q ->
          let est = Sim.Histogram.quantile h q in
          let rank =
            max 0
              (min
                 (Array.length sorted - 1)
                 (int_of_float
                    (Float.round (q *. float_of_int (Array.length sorted)))
                 - 1))
          in
          let exact = sorted.(rank) in
          let tolerance = max 4 (exact / 8) in
          est >= exact - tolerance
          && est <= sorted.(Array.length sorted - 1) + tolerance)
        [ 0.5; 0.9; 0.99 ])

let histogram_mean_is_exact =
  QCheck.Test.make ~name:"histogram mean matches arithmetic mean" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 200) (int_bound 1_000_000))
    (fun values ->
      QCheck.assume (values <> []);
      let h = Sim.Histogram.create () in
      List.iter (Sim.Histogram.record h) values;
      let exact =
        float_of_int (List.fold_left ( + ) 0 values)
        /. float_of_int (List.length values)
      in
      Float.abs (Sim.Histogram.mean h -. exact) < 1e-6)

(* ---------- Counter and Trace ---------- *)

let test_counter_group () =
  let g = Sim.Counter.group "nic" in
  let a = Sim.Counter.counter g "rx" in
  let a' = Sim.Counter.counter g "rx" in
  Sim.Counter.incr a;
  Sim.Counter.add a' 4;
  checki "same counter" 5 (Sim.Counter.value a);
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "to_list" [ ("rx", 5) ] (Sim.Counter.to_list g);
  Sim.Counter.reset_group g;
  checki "reset" 0 (Sim.Counter.value a)

let test_trace_ring () =
  let t = Sim.Trace.create ~capacity:3 () in
  Sim.Trace.emit t ~time:1 ~cat:"x" (fun () -> "dropped when disabled");
  checki "disabled: empty" 0 (List.length (Sim.Trace.entries t));
  Sim.Trace.enable t;
  List.iter
    (fun i -> Sim.Trace.emit t ~time:i ~cat:"c" (fun () -> string_of_int i))
    [ 1; 2; 3; 4; 5 ];
  let entries = Sim.Trace.entries t in
  checki "capacity bound" 3 (List.length entries);
  check Alcotest.string "oldest retained" "3"
    (match entries with (_, _, m) :: _ -> m | [] -> "none");
  Sim.Trace.clear t;
  checki "cleared" 0 (List.length (Sim.Trace.entries t))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "sim"
    [
      ( "units",
        [
          Alcotest.test_case "construction" `Quick test_units_construction;
          Alcotest.test_case "conversion" `Quick test_units_conversion;
          Alcotest.test_case "cycles" `Quick test_units_cycles;
          Alcotest.test_case "pretty-printing" `Quick test_units_pp;
        ] );
      ( "event_heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "cancel" `Quick test_heap_cancel;
          Alcotest.test_case "peek skips cancelled" `Quick
            test_heap_peek_skips_cancelled;
          Alcotest.test_case "growth" `Quick test_heap_growth;
          Alcotest.test_case "cancel after pop" `Quick
            test_heap_cancel_after_pop;
          Alcotest.test_case "compaction preserves order" `Quick
            test_heap_compaction_preserves_order;
        ]
        @ qsuite
            [
              heap_sorts_any_input;
              heap_cancel_removes_exactly;
              heap_matches_reference_model;
            ] );
      ( "engine",
        [
          Alcotest.test_case "ordering" `Quick test_engine_ordering;
          Alcotest.test_case "nested scheduling" `Quick
            test_engine_relative_and_nested;
          Alcotest.test_case "until horizon" `Quick test_engine_until;
          Alcotest.test_case "until with drained queue" `Quick
            test_engine_until_advances_clock_when_drained;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "past scheduling raises" `Quick
            test_engine_past_raises;
          Alcotest.test_case "single step" `Quick test_engine_step;
          Alcotest.test_case "until boundary (heap)" `Quick
            (engine_until_boundary Sim.Scheduler.Heap);
          Alcotest.test_case "until boundary (wheel)" `Quick
            (engine_until_boundary Sim.Scheduler.Wheel);
          Alcotest.test_case "cancel-then-run pending (heap)" `Quick
            (engine_until_cancel_consistent Sim.Scheduler.Heap);
          Alcotest.test_case "cancel-then-run pending (wheel)" `Quick
            (engine_until_cancel_consistent Sim.Scheduler.Wheel);
        ] );
      ( "timing_wheel",
        [
          Alcotest.test_case "fifo ties" `Quick test_wheel_fifo_ties;
          Alcotest.test_case "overflow migration" `Quick
            test_wheel_overflow_migration;
        ]
        @ qsuite [ wheel_matches_heap ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "split decorrelates" `Quick
            test_rng_split_decorrelates;
          Alcotest.test_case "seed sensitivity" `Quick
            test_rng_seed_sensitivity;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "exponential mean" `Slow
            test_rng_exponential_mean;
          Alcotest.test_case "gaussian moments" `Slow
            test_rng_gaussian_moments;
          Alcotest.test_case "shuffle permutes" `Quick
            test_rng_shuffle_permutes;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "basics" `Quick test_histogram_basics;
          Alcotest.test_case "record_n" `Quick test_histogram_record_n;
          Alcotest.test_case "exact small quantiles" `Quick
            test_histogram_quantile_exact_small;
          Alcotest.test_case "merge and clear" `Quick
            test_histogram_merge_and_clear;
          Alcotest.test_case "empty raises" `Quick test_histogram_empty_raises;
        ]
        @ qsuite [ histogram_quantile_error_bounded; histogram_mean_is_exact ]
      );
      ( "counter_trace",
        [
          Alcotest.test_case "counter group" `Quick test_counter_group;
          Alcotest.test_case "trace ring" `Quick test_trace_ring;
        ] );
    ]
