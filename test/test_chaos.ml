(* Tests for the rack-scale fault domain (PR 9): Fault.Plan cluster
   schedule units, the switch fault seams (wedge/brownout/partition),
   the fabric wire-fault seam, generation-tagged epochs and worker
   leases on the control plane, Obs.Online streaming moments, and the
   headline QCheck property — a rack under a random fault plan stays
   byte-identical across domain counts and scheduler backends, with
   global conservation (every call resolves, every lost frame counted). *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i =
    i + n <= h && (String.equal (String.sub hay i n) needle || go (i + 1))
  in
  go 0
let us = Sim.Units.us
let ms = Sim.Units.ms

(* ---------- Fault.Plan units ---------- *)

let test_flap_grid () =
  (* jitter 0: a pure period grid — down exactly on
     [first_down + k*period, +down_for) *)
  let f = Fault.Plan.flap ~first_down:1000 ~up_for:1000 ~down_for:500 () in
  let down at = Fault.Plan.flap_down_at ~seed:42 f ~at in
  checkb "up before first_down" false (down 999);
  checkb "down at first edge" true (down 1000);
  checkb "down just before up-edge" true (down 1499);
  checkb "up after down_for" false (down 1500);
  checkb "down next cycle" true (down 2500);
  checkb "up mid next cycle" false (down 2400)

let test_flap_jitter_bounds () =
  let f =
    Fault.Plan.flap ~first_down:1000 ~up_for:1000 ~down_for:300 ~jitter:400 ()
  in
  let period = 1300 in
  for cycle = 0 to 19 do
    let e = Fault.Plan.flap_edge ~seed:7 f ~cycle in
    let base = 1000 + (cycle * period) in
    checkb "edge within jitter window" true (e >= base && e <= base + 400);
    checkb "down at its own edge" true
      (Fault.Plan.flap_down_at ~seed:7 f ~at:e);
    checkb "up just before the edge" false
      (Fault.Plan.flap_down_at ~seed:7 f ~at:(e - 1));
    if cycle > 0 then
      checkb "edges strictly increasing" true
        (e > Fault.Plan.flap_edge ~seed:7 f ~cycle:(cycle - 1))
  done

let test_plan_validation () =
  let raises f = try f () |> ignore; false with Invalid_argument _ -> true in
  checkb "empty window rejected" true (raises (fun () ->
      Fault.Plan.window ~starts:10 ~until:10));
  checkb "jitter > up_for rejected" true (raises (fun () ->
      Fault.Plan.flap ~up_for:100 ~down_for:50 ~jitter:101 ()));
  checkb "negative flap host rejected" true (raises (fun () ->
      Fault.Plan.cluster
        ~flaps:[ (-1, Fault.Plan.flap ~up_for:100 ~down_for:50 ()) ]
        ()));
  checkb "count-triggered master rejected" true (raises (fun () ->
      Fault.Plan.cluster
        ~master:(Fault.Plan.server_fault ~crash_after_rpcs:10 ())
        ()));
  checkb "empty cluster is none" true
    (Fault.Plan.cluster_is_none Fault.Plan.no_cluster);
  checkb "Plan.none has no cluster faults" true
    (Fault.Plan.cluster_is_none Fault.Plan.none.Fault.Plan.cluster)

let test_plan_flap_down_scoped () =
  let p =
    Fault.Plan.make
      ~cluster:
        (Fault.Plan.cluster
           ~flaps:
             [ (1, Fault.Plan.flap ~first_down:100 ~up_for:200 ~down_for:50 ()) ]
           ())
      ()
  in
  checkb "flapped host goes down" true (Fault.Plan.flap_down p ~host:1 ~at:120);
  checkb "other hosts unaffected" false
    (Fault.Plan.flap_down p ~host:0 ~at:120)

(* ---------- switch fault seams (driven directly) ---------- *)

type arrival = { at : int; port : int; dst : int; id : int }

let dev_endpoint i =
  {
    Net.Frame.mac =
      Net.Mac_addr.of_int64 (Int64.of_int (0x02_00_00_00_09_00 + i));
    ip = Net.Ip_addr.of_int (0x0A000900 + i);
    port = 41_000 + i;
  }

let arrival_frame a =
  Net.Frame.make ~src:(dev_endpoint a.port)
    ~dst:{ (dev_endpoint a.dst) with Net.Frame.port = 50_000 + a.dst }
    (Bytes.of_string (Printf.sprintf "f%d" a.id))

let run_faulty_switch ?cap_in ?cap_out ?wedge ?brownout ?partition ~nports
    arrivals =
  let engine = Sim.Engine.create () in
  let log = ref [] in
  let sw =
    Cluster.Switch.create engine
      ~ports:
        (Array.init nports (fun _ ->
             { Cluster.Switch.latency = us 1; tx = Sim.Units.ns 100 }))
      ?cap_in ?cap_out
      ~route:(fun f ->
        let p = f.Net.Frame.udp.Net.Udp.dst_port - 50_000 in
        if p >= 0 && p < nports then Some p else None)
      ~deliver:(fun ~port f ->
        log :=
          (Sim.Engine.now engine, port, Bytes.to_string f.Net.Frame.payload)
          :: !log)
      ()
  in
  (match wedge with Some w -> Cluster.Switch.set_port_wedge sw (Some w) | None -> ());
  (match brownout with Some b -> Cluster.Switch.set_brownout sw (Some b) | None -> ());
  (match partition with
  | Some p -> Cluster.Switch.set_partition sw (Some p)
  | None -> ());
  List.iter
    (fun a ->
      ignore
        (Sim.Engine.schedule_at engine ~at:a.at (fun () ->
             Cluster.Switch.ingress sw ~port:a.port (arrival_frame a))))
    arrivals;
  Sim.Engine.run engine ~until:(ms 50);
  (List.rev !log, Cluster.Switch.stats sw)

let frames_conserved (st : Cluster.Switch.stats) =
  st.Cluster.Switch.ingressed
  = st.Cluster.Switch.delivered + st.Cluster.Switch.drop_in
    + st.Cluster.Switch.drop_out + st.Cluster.Switch.unroutable
    + st.Cluster.Switch.port_drops + st.Cluster.Switch.partition_drops

let test_wedge_stalls_and_counts () =
  (* Port 1's transmitter is wedged over [2us, 8us): frames queue
     behind it, the overflow is a counted port-failure loss, and the
     queued ones drain only after the wedge lifts. *)
  let wedge ~port ~at =
    if port = 1 && at >= us 2 && at < us 8 then Some (us 8) else None
  in
  let arrivals =
    List.init 6 (fun i -> { at = us 3 + (i * 10); port = 0; dst = 1; id = i })
  in
  let log, st =
    run_faulty_switch ~cap_out:3 ~wedge ~nports:2 arrivals
  in
  checkb "some overflow hit the wedged port" true
    (st.Cluster.Switch.port_drops > 0);
  checki "no ordinary egress drops while wedged" 0 st.Cluster.Switch.drop_out;
  checkb "conserved" true (frames_conserved st);
  List.iter
    (fun (t, port, _) ->
      checki "all deliveries on port 1" 1 port;
      checkb "nothing delivered before the wedge lifts" true (t >= us 8))
    log

let test_wedge_defers_single_frame () =
  let wedge ~port ~at =
    if port = 1 && at >= 0 && at < us 5 then Some (us 5) else None
  in
  let log, st =
    run_faulty_switch ~wedge ~nports:2
      [ { at = us 1; port = 0; dst = 1; id = 0 } ]
  in
  checki "delivered" 1 st.Cluster.Switch.delivered;
  checki "no drops" 0 st.Cluster.Switch.port_drops;
  match log with
  | [ (t, _, _) ] -> checkb "transmit deferred past the wedge" true (t >= us 5)
  | _ -> Alcotest.fail "expected one delivery"

let test_brownout_defers_service () =
  (* The crossbar stalls over [1us, 6us): a frame arriving inside the
     window is serviced only after it ends. *)
  let brownout ~at = if at >= us 1 && at < us 6 then Some (us 6) else None in
  let log, st =
    run_faulty_switch ~brownout ~nports:2
      [ { at = us 2; port = 0; dst = 1; id = 0 } ]
  in
  checki "delivered" 1 st.Cluster.Switch.delivered;
  checkb "conserved" true (frames_conserved st);
  match log with
  | [ (t, _, _) ] ->
      checkb "service start pushed past the brownout" true (t >= us 6)
  | _ -> Alcotest.fail "expected one delivery"

let test_partition_cuts_at_crossbar () =
  (* (0 -> 1) cut over [0, 10us): in-window frames die with a counted
     loss, the reverse direction and later frames pass. *)
  let partition ~src ~dst ~at = src = 0 && dst = 1 && at < us 10 in
  let log, st =
    run_faulty_switch ~partition ~nports:2
      [
        { at = us 1; port = 0; dst = 1; id = 0 };
        { at = us 2; port = 1; dst = 0; id = 1 };
        { at = us 12; port = 0; dst = 1; id = 2 };
      ]
  in
  checki "one partition drop" 1 st.Cluster.Switch.partition_drops;
  checki "two delivered" 2 st.Cluster.Switch.delivered;
  checkb "conserved" true (frames_conserved st);
  checkb "cut frame absent from the log" true
    (not (List.exists (fun (_, _, p) -> String.equal p "f0") log))

(* ---------- fabric wire-fault seam ---------- *)

let test_wire_fault_eats_and_counts () =
  let fabric = Cluster.Fabric.create ~hosts:2 () in
  let reached = ref 0 in
  (* cut the master->host direction only *)
  Cluster.Fabric.set_link_fault fabric
    (Some (fun ~src ~dst:_ ~at:_ -> src >= 2));
  Cluster.Fabric.post_to_host fabric ~host:0 (fun () -> incr reached);
  Cluster.Fabric.run fabric ~until:(ms 1);
  checki "closure eaten at the wire" 0 !reached;
  checki "counted" 1 (Cluster.Fabric.link_drops_total fabric);
  (* clearing the seam restores delivery *)
  Cluster.Fabric.set_link_fault fabric None;
  Cluster.Fabric.post_to_host fabric ~host:0 (fun () -> incr reached);
  Cluster.Fabric.run fabric ~until:(ms 2);
  checki "delivered once cleared" 1 !reached;
  checki "no further drops" 1 (Cluster.Fabric.link_drops_total fabric)

(* ---------- control plane: epochs, crash/restart, leases ---------- *)

let test_epoch_minting_and_stale_rejection () =
  let engine = Sim.Engine.create () in
  let ctl =
    Cluster.Control.create engine ~hosts:2 ~probe_period:(us 500)
      ~probe:(fun ~host:_ -> ())
      ()
  in
  Cluster.Control.register ctl ~host:0;
  let e0 = Cluster.Control.epoch ctl ~host:0 in
  Cluster.Control.ack ~epoch:e0 ctl ~host:0;
  checki "current-epoch ack accepted" 1 (Cluster.Control.acks_received ctl);
  Cluster.Control.crash ctl;
  checkb "down after crash" false (Cluster.Control.up ctl);
  checkb "pick answers nothing while down" true
    (Option.is_none (Cluster.Control.pick ctl));
  Cluster.Control.register ctl ~host:1 (* falls on the floor *);
  Cluster.Control.restart ctl;
  checki "generation bumped" 2 (Cluster.Control.master_generation ctl);
  checki "restart counted" 1 (Cluster.Control.master_restarts ctl);
  checkb "register while down was ignored" false
    (Cluster.Control.alive ctl ~host:1);
  (* the worker re-registers under the new generation; its pre-crash
     epoch must no longer be accepted *)
  Cluster.Control.register ctl ~host:0;
  let e1 = Cluster.Control.epoch ctl ~host:0 in
  checkb "new generation mints a new epoch" true (e1 <> e0);
  Cluster.Control.ack ~epoch:e0 ctl ~host:0;
  checki "stale ack rejected" 1 (Cluster.Control.epoch_rejections ctl);
  checki "and not counted as received" 1 (Cluster.Control.acks_received ctl);
  Cluster.Control.ack ~epoch:e1 ctl ~host:0;
  checki "fresh ack accepted" 2 (Cluster.Control.acks_received ctl)

let test_reregister_mints_fresh_epoch () =
  let engine = Sim.Engine.create () in
  let ctl =
    Cluster.Control.create engine ~hosts:1 ~probe_period:(us 500)
      ~probe:(fun ~host:_ -> ())
      ()
  in
  Cluster.Control.register ctl ~host:0;
  let e0 = Cluster.Control.epoch ctl ~host:0 in
  Cluster.Control.register ctl ~host:0;
  checkb "same-generation re-register changes the epoch" true
    (Cluster.Control.epoch ctl ~host:0 <> e0)

let test_worker_lease () =
  let engine = Sim.Engine.create () in
  let fired = ref [] in
  let l =
    Cluster.Control.Worker_lease.create engine ~timeout:(us 100)
      ~re_register:(fun () -> fired := Sim.Engine.now engine :: !fired)
  in
  Cluster.Control.Worker_lease.start l;
  (* a probe at 150us renews the lease, so the 200us check stays
     quiet; silence after that expires it again *)
  ignore
    (Sim.Engine.schedule_at engine ~at:(us 150) (fun () ->
         Cluster.Control.Worker_lease.saw_probe l));
  Sim.Engine.run engine ~until:(us 460);
  let fires = List.rev !fired in
  checkb "expired at the first silent check" true
    (List.exists (fun t -> t = us 100) fires);
  checkb "renewed lease survives the next check" true
    (not (List.exists (fun t -> t = us 200) fires));
  checkb "silence expires it again" true
    (List.exists (fun t -> t >= us 300) fires);
  checki "every fire counted" (List.length fires)
    (Cluster.Control.Worker_lease.re_registrations l);
  Cluster.Control.Worker_lease.stop l;
  let n = Cluster.Control.Worker_lease.re_registrations l in
  Sim.Engine.run engine ~until:(ms 2);
  checki "stopped lease stays parked" n
    (Cluster.Control.Worker_lease.re_registrations l)

(* ---------- Obs.Online streaming moments ---------- *)

let checkf = Alcotest.check (Alcotest.float 1e-9)

let test_online_moments () =
  let s = Obs.Online.create () in
  List.iter (Obs.Online.record s) [ 5; 7; 9 ];
  checki "count" 3 (Obs.Online.count s);
  checkf "mean" 7.0 (Obs.Online.mean s);
  checkf "unbiased variance" 4.0 (Obs.Online.variance s);
  checkf "stddev" 2.0 (Obs.Online.stddev s);
  checki "min" 5 (Obs.Online.min_value s);
  checki "max" 9 (Obs.Online.max_value s);
  Obs.Online.clear s;
  checki "cleared" 0 (Obs.Online.count s);
  checkf "empty mean" 0.0 (Obs.Online.mean s);
  checkb "empty min raises" true
    (try Obs.Online.min_value s |> ignore; false
     with Invalid_argument _ -> true)

let test_online_merge_matches_combined () =
  let xs = [ 3; 1; 4; 1; 5; 9; 2; 6 ] and ys = [ 5; 3; 5; 8; 9; 7 ] in
  let a = Obs.Online.create () and b = Obs.Online.create () in
  let both = Obs.Online.create () in
  List.iter (Obs.Online.record a) xs;
  List.iter (Obs.Online.record b) ys;
  List.iter (Obs.Online.record both) (xs @ ys);
  Obs.Online.merge_into ~src:b ~dst:a;
  checki "merged count" (Obs.Online.count both) (Obs.Online.count a);
  let close = Alcotest.check (Alcotest.float 1e-6) in
  close "merged mean" (Obs.Online.mean both) (Obs.Online.mean a);
  close "merged variance" (Obs.Online.variance both) (Obs.Online.variance a);
  checki "merged min" (Obs.Online.min_value both) (Obs.Online.min_value a);
  checki "merged max" (Obs.Online.max_value both) (Obs.Online.max_value a);
  checki "src untouched" (List.length ys) (Obs.Online.count b)

(* ---------- chaos racks: determinism + conservation ---------- *)

let chaos_hosts = 4
let chaos_horizon = us 2500
let chaos_drain = ms 10

(* Run a rack under [plan] and distill everything observable into one
   string: the E17 digest, call/frame conservation, and the merged
   metrics snapshot. Any behavioural difference across domain counts
   or schedulers surfaces as a digest mismatch. *)
let run_chaos_rack ?(domains = 1) ?(sched = Sim.Scheduler.Heap) ~plan ~seed ()
    =
  let metrics = Obs.Metrics.create () in
  let rack =
    Experiments.Rack.make_rack ~domains ~sched ~fault:plan ~metrics
      ~hosts:chaos_hosts ()
  in
  let fabric = rack.Experiments.Rack.fabric in
  let master = Cluster.Fabric.master_engine fabric in
  let setup = rack.Experiments.Rack.servers.(0).Experiments.Common.setup in
  let service_id = Workload.Scenario.service_id_of setup ~service_idx:0 in
  let rng = Sim.Rng.create ~seed in
  Workload.Arrivals.open_loop master rng ~rate_per_s:120_000.
    ~until:chaos_horizon (fun ~seq:_ ->
      let t0 = Sim.Engine.now master in
      ignore
        (Harness.Client.call_id ~timeout:(us 200) ~retries:5 ~backoff:1.5
           ~max_timeout:(us 800) ~jitter:0.25 rack.Experiments.Rack.client
           ~service_id ~method_id:0 ~port:rack.Experiments.Rack.service_port
           (Rpc.Value.Blob (Bytes.make 32 'c'))
           (fun _ ->
             Sim.Histogram.record rack.Experiments.Rack.latencies
               (Sim.Engine.now master - t0))));
  Cluster.Fabric.run fabric ~until:(chaos_horizon + chaos_drain);
  Experiments.Rack.finish rack;
  let c = rack.Experiments.Rack.client in
  let st = Cluster.Switch.stats (Cluster.Fabric.switch fabric) in
  let calls_conserved =
    Harness.Client.completed c + Harness.Client.abandoned c
    + Harness.Client.errors c
    = Harness.Client.sent c
    && Harness.Client.outstanding c = 0
  in
  let conserved =
    calls_conserved && frames_conserved st
    && Cluster.Fabric.undeliverable fabric = 0
  in
  let digest =
    String.concat "\n"
      (Experiments.Rack.digest_lines rack
      @ [
          Printf.sprintf "conserved=%b link_drops=%d re_reg=%d gen=%d"
            conserved
            (Cluster.Fabric.link_drops_total fabric)
            (Array.fold_left
               (fun acc l ->
                 match l with
                 | Some l ->
                     acc + Cluster.Control.Worker_lease.re_registrations l
                 | None -> acc)
               0 rack.Experiments.Rack.leases)
            (Cluster.Control.master_generation rack.Experiments.Rack.control);
        ]
      @ List.map
          (fun (k, v) -> Printf.sprintf "%s=%d" k v)
          (Obs.Metrics.to_list ~keep_zero:true metrics))
  in
  (digest, conserved)

(* seeded regression: a master crash wipes the registration table; the
   workers' leases notice the probe silence and re-register under the
   new generation with no master cooperation *)
let test_master_restart_recovery () =
  let plan =
    Fault.Plan.make
      ~cluster:
        (Fault.Plan.cluster
           ~master:
             (Fault.Plan.server_fault ~crash_at:(us 1000) ~downtime:(us 400)
                ~restart:true ())
           ())
      ()
  in
  let digest, conserved = run_chaos_rack ~plan ~seed:4242 () in
  checkb "conserved through the restart" true conserved;
  checkb "generation bumped" true (contains ~needle:"gen=2" digest);
  (* every worker is steerable again by the end of the drain *)
  let metrics = Obs.Metrics.create () in
  let rack =
    Experiments.Rack.make_rack ~domains:1 ~fault:plan ~metrics
      ~hosts:chaos_hosts ()
  in
  Cluster.Fabric.run rack.Experiments.Rack.fabric ~until:(ms 8);
  for h = 0 to chaos_hosts - 1 do
    checkb "worker re-registered and alive" true
      (Cluster.Control.alive rack.Experiments.Rack.control ~host:h)
  done;
  checki "one restart" 1
    (Cluster.Control.master_restarts rack.Experiments.Rack.control);
  checkb "leases fired" true
    (Array.exists
       (fun l ->
         match l with
         | Some l -> Cluster.Control.Worker_lease.re_registrations l > 0
         | None -> false)
       rack.Experiments.Rack.leases)

(* seeded regression: the balancer stops steering to a host the master
   cannot see within two probe periods of the (asymmetric) partition *)
let test_partition_steering_bound () =
  let p_start = us 800 and p_end = us 2400 in
  let victim = 1 in
  let plan =
    Fault.Plan.make
      ~cluster:
        (Fault.Plan.cluster
           ~partitions:
             [
               Fault.Plan.partition ~srcs:[ Fault.Plan.Master ]
                 ~dsts:[ Fault.Plan.Host victim ]
                 ~span:(Fault.Plan.window ~starts:p_start ~until:p_end);
             ]
           ())
      ()
  in
  let metrics = Obs.Metrics.create () in
  let rack =
    Experiments.Rack.make_rack ~domains:1 ~fault:plan ~metrics
      ~hosts:chaos_hosts ()
  in
  let fabric = rack.Experiments.Rack.fabric in
  let master = Cluster.Fabric.master_engine fabric in
  let setup = rack.Experiments.Rack.servers.(0).Experiments.Common.setup in
  let service_id = Workload.Scenario.service_id_of setup ~service_idx:0 in
  let rng = Sim.Rng.create ~seed:99 in
  Workload.Arrivals.open_loop master rng ~rate_per_s:120_000.
    ~until:chaos_horizon (fun ~seq:_ ->
      ignore
        (Harness.Client.call_id ~timeout:(us 200) ~retries:5 ~backoff:1.5
           ~max_timeout:(us 800) ~jitter:0.25 rack.Experiments.Rack.client
           ~service_id ~method_id:0 ~port:rack.Experiments.Rack.service_port
           (Rpc.Value.Blob (Bytes.make 32 'p'))
           (fun _ -> ())));
  let probe_period = Experiments.Rack.probe_period in
  let at_bound = ref (-1) and at_end = ref (-1) in
  ignore
    (Sim.Engine.schedule_at master
       ~at:(p_start + (2 * probe_period))
       (fun () ->
         at_bound :=
           (Cluster.Control.steered rack.Experiments.Rack.control).(victim)));
  ignore
    (Sim.Engine.schedule_at master ~at:p_end (fun () ->
         at_end :=
           (Cluster.Control.steered rack.Experiments.Rack.control).(victim)));
  Cluster.Fabric.run fabric ~until:(chaos_horizon + chaos_drain);
  Experiments.Rack.finish rack;
  checkb "victim was steered to before the cut" true (!at_bound > 0);
  checki "not steered past the detection bound" !at_bound !at_end;
  checkb "victim revives after the partition heals" true
    (Cluster.Control.alive rack.Experiments.Rack.control ~host:victim)

(* with Plan.none the fault path must be invisible: same digest as a
   rack built with no plan at all *)
let test_plan_none_is_identity () =
  let baseline, c0 = run_chaos_rack ~plan:Fault.Plan.none ~seed:1234 () in
  let metrics = Obs.Metrics.create () in
  let rack =
    Experiments.Rack.make_rack ~domains:1 ~metrics ~hosts:chaos_hosts ()
  in
  checkb "no chaos driver armed" true
    (Option.is_none rack.Experiments.Rack.chaos);
  checkb "no leases installed" true
    (Array.for_all Option.is_none rack.Experiments.Rack.leases);
  ignore baseline;
  checkb "conserved" true c0

(* ---------- the QCheck fuzz ---------- *)

let plane_of i = if i < 0 then Fault.Plan.Master else Fault.Plan.Host i

let build_plan (flaps, wedges, brownouts, parts, master) =
  (* dedup flap hosts: last-writer-wins vs assoc-first must never race *)
  let seen = Hashtbl.create 4 in
  let flaps =
    List.filter
      (fun (h, _, _, _) ->
        if Hashtbl.mem seen h then false
        else begin
          Hashtbl.add seen h ();
          true
        end)
      flaps
  in
  Fault.Plan.make
    ~cluster:
      (Fault.Plan.cluster
         ~flaps:
           (List.map
              (fun (h, up, down, first) ->
                ( h,
                  Fault.Plan.flap ~first_down:(us first) ~up_for:(us up)
                    ~down_for:(us down) ~jitter:(us 30) () ))
              flaps)
         ~wedges:
           (List.map
              (fun (p, (a, b)) ->
                (p, Fault.Plan.window ~starts:(us a) ~until:(us b)))
              wedges)
         ~brownouts:
           (List.map
              (fun (a, b) -> Fault.Plan.window ~starts:(us a) ~until:(us b))
              brownouts)
         ~partitions:
           (List.map
              (fun (s, d, (a, b)) ->
                Fault.Plan.partition ~srcs:[ plane_of s ] ~dsts:[ plane_of d ]
                  ~span:(Fault.Plan.window ~starts:(us a) ~until:(us b)))
              parts)
         ~master:
           (match master with
           | Some (at, down) ->
               Fault.Plan.server_fault ~crash_at:(us at) ~downtime:(us down)
                 ~restart:true ()
           | None -> Fault.Plan.no_server_fault)
         ())
    ()

let gen_chaos_case =
  QCheck.Gen.(
    let window lo =
      pair (int_range lo (lo + 1200)) (int_range 80 400) >|= fun (a, len) ->
      (a, a + len)
    in
    let flap =
      int_range 0 (chaos_hosts - 1) >>= fun h ->
      int_range 300 1000 >>= fun up ->
      int_range 50 200 >>= fun down ->
      int_range 50 700 >|= fun first -> (h, up, down, first)
    in
    list_size (int_range 0 2) flap >>= fun flaps ->
    list_size (int_range 0 2)
      (pair (int_range 0 (chaos_hosts - 1)) (window 300))
    >>= fun wedges ->
    list_size (int_range 0 1) (window 500) >>= fun brownouts ->
    list_size (int_range 0 2)
      (int_range (-1) (chaos_hosts - 1) >>= fun s ->
       int_range (-1) (chaos_hosts - 1) >>= fun d ->
       window 400 >|= fun w -> (s, d, w))
    >>= fun parts ->
    option (pair (int_range 600 1400) (int_range 200 600)) >>= fun master ->
    int_range 0 1000 >|= fun seed ->
    ((flaps, wedges, brownouts, parts, master), seed))

let arb_chaos_case =
  QCheck.make
    ~print:(fun ((flaps, wedges, brownouts, parts, master), seed) ->
      Printf.sprintf "flaps=%s wedges=%s brownouts=%d parts=%s master=%s seed=%d"
        (String.concat ","
           (List.map
              (fun (h, up, down, first) ->
                Printf.sprintf "(h%d up%d down%d @%d)" h up down first)
              flaps))
        (String.concat ","
           (List.map
              (fun (p, (a, b)) -> Printf.sprintf "(p%d %d..%d)" p a b)
              wedges))
        (List.length brownouts)
        (String.concat ","
           (List.map
              (fun (s, d, (a, b)) -> Printf.sprintf "(%d>%d %d..%d)" s d a b)
              parts))
        (match master with
        | Some (at, down) -> Printf.sprintf "crash@%d+%d" at down
        | None -> "-")
        seed)
    gen_chaos_case

let qcheck_chaos_determinism =
  QCheck.Test.make ~count:10
    ~name:
      "chaos racks conserve and run byte-identical across domains/schedulers"
    arb_chaos_case
    (fun (raw, seed) ->
      let plan = build_plan raw in
      let reference, conserved =
        run_chaos_rack ~domains:1 ~sched:Sim.Scheduler.Heap ~plan ~seed ()
      in
      conserved
      && List.for_all
           (fun (domains, sched) ->
             let digest, conserved' =
               run_chaos_rack ~domains ~sched ~plan ~seed ()
             in
             conserved' && String.equal reference digest)
           [
             (2, Sim.Scheduler.Heap);
             (4, Sim.Scheduler.Heap);
             (1, Sim.Scheduler.Wheel);
             (4, Sim.Scheduler.Wheel);
           ])

let qsuite name t = (name, [ QCheck_alcotest.to_alcotest t ])

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "chaos"
    [
      ( "plan",
        [
          tc "flap grid (no jitter)" test_flap_grid;
          tc "flap jitter bounds" test_flap_jitter_bounds;
          tc "validation" test_plan_validation;
          tc "flap_down scoped to its host" test_plan_flap_down_scoped;
        ] );
      ( "switch seams",
        [
          tc "wedge stalls and counts" test_wedge_stalls_and_counts;
          tc "wedge defers a single frame" test_wedge_defers_single_frame;
          tc "brownout defers service" test_brownout_defers_service;
          tc "partition cuts at the crossbar" test_partition_cuts_at_crossbar;
        ] );
      ( "fabric seam",
        [ tc "wire fault eats and counts" test_wire_fault_eats_and_counts ] );
      ( "control plane",
        [
          tc "epochs + stale-ack rejection" test_epoch_minting_and_stale_rejection;
          tc "re-register mints fresh epoch" test_reregister_mints_fresh_epoch;
          tc "worker lease lifecycle" test_worker_lease;
        ] );
      ( "online stats",
        [
          tc "moments" test_online_moments;
          tc "merge = combined" test_online_merge_matches_combined;
        ] );
      ( "chaos rack",
        [
          tc "master restart recovery" test_master_restart_recovery;
          tc "partition steering bound" test_partition_steering_bound;
          tc "Plan.none is the identity" test_plan_none_is_identity;
        ] );
      qsuite "determinism fuzz" qcheck_chaos_determinism;
    ]
