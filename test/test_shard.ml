(* Tests for the domain-sharded conservative-PDES engine: windowing
   semantics, the lookahead contract, and the headline determinism
   property — byte-identical output for any domain count. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

let la = Sim.Units.us 2 (* lookahead used throughout *)

(* Per-shard logs: each is appended only by the domain running that
   shard, so logging is data-race free and fully ordered per shard. *)
type logs = (int * string) list array (* (time, tag) newest-first *)

let note (logs : logs) engines s tag () =
  logs.(s) <- (Sim.Engine.now engines.(s), tag) :: logs.(s)

let test_pingpong () =
  let engines = Array.init 2 (fun _ -> Sim.Engine.create ()) in
  let logs = Array.make 2 [] in
  let t = Sim.Shard_engine.create ~domains:1 ~lookahead:la engines in
  (* shard 0 fires locally at 1000, posts a reply request to shard 1;
     shard 1 receives it and posts back; three hops in total *)
  let rec hop s at hops () =
    note logs engines s (Printf.sprintf "hop%d" hops) ();
    if hops < 3 then
      Sim.Shard_engine.post t ~src:s ~dst:(1 - s) ~at:(at + la)
        (hop (1 - s) (at + la) (hops + 1))
  in
  ignore (Sim.Engine.schedule_at engines.(0) ~at:1000 (hop 0 1000 0));
  Sim.Shard_engine.run t ~until:(Sim.Units.ms 1);
  checki "shard0 events" 2 (List.length logs.(0));
  checki "shard1 events" 2 (List.length logs.(1));
  checki "hop1 on shard1 at +la" (1000 + la) (fst (List.nth (List.rev logs.(1)) 0));
  checki "clock0 at horizon" (Sim.Units.ms 1) (Sim.Engine.now engines.(0));
  checki "clock1 at horizon" (Sim.Units.ms 1) (Sim.Engine.now engines.(1));
  checkb "messages merged" true (Sim.Shard_engine.messages_merged t >= 3)

let test_lookahead_violation_raises () =
  let engines = Array.init 2 (fun _ -> Sim.Engine.create ()) in
  let t = Sim.Shard_engine.create ~domains:1 ~lookahead:la engines in
  checkb "post under lookahead rejected" true
    (try
       Sim.Shard_engine.post t ~src:0 ~dst:1 ~at:(la - 1) (fun () -> ());
       false
     with Invalid_argument _ -> true);
  checkb "post at exactly lookahead ok" true
    (try
       Sim.Shard_engine.post t ~src:0 ~dst:1 ~at:la (fun () -> ());
       true
     with Invalid_argument _ -> false)

let test_clock_fill_and_reuse () =
  let engines = Array.init 3 (fun _ -> Sim.Engine.create ()) in
  let t = Sim.Shard_engine.create ~domains:1 ~lookahead:la engines in
  let fired = ref 0 in
  ignore (Sim.Engine.schedule_at engines.(1) ~at:500 (fun () -> incr fired));
  Sim.Shard_engine.run t ~until:10_000;
  Array.iter (fun e -> checki "clock at first horizon" 10_000 (Sim.Engine.now e)) engines;
  (* a second run continues from the current state *)
  ignore (Sim.Engine.schedule_at engines.(2) ~at:15_000 (fun () -> incr fired));
  Sim.Shard_engine.run t ~until:20_000;
  Array.iter (fun e -> checki "clock at second horizon" 20_000 (Sim.Engine.now e)) engines;
  checki "both events fired" 2 !fired

(* Regression: a run must terminate (and fill clocks) even when events
   remain queued beyond the horizon — the common case for every
   experiment that leaves retry timers armed past its measurement
   window. *)
let test_pending_beyond_horizon () =
  let engines = Array.init 2 (fun _ -> Sim.Engine.create ()) in
  let t = Sim.Shard_engine.create ~domains:1 ~lookahead:la engines in
  let fired = ref 0 in
  ignore (Sim.Engine.schedule_at engines.(0) ~at:100 (fun () -> incr fired));
  ignore (Sim.Engine.schedule_at engines.(0) ~at:99_999 (fun () -> incr fired));
  ignore (Sim.Engine.schedule_at engines.(1) ~at:88_888 (fun () -> incr fired));
  Sim.Shard_engine.run t ~until:10_000;
  checki "only the in-horizon event fired" 1 !fired;
  checki "late events stay queued" 1 (Sim.Engine.pending engines.(0));
  checki "clock0 at horizon" 10_000 (Sim.Engine.now engines.(0));
  (* and a later run picks the stragglers up *)
  Sim.Shard_engine.run t ~until:100_000;
  checki "stragglers fired" 3 !fired

(* ---------- per-pair lookahead matrices ---------- *)

let test_matrix_lookahead () =
  let engines = Array.init 2 (fun _ -> Sim.Engine.create ()) in
  let latency =
    [|
      [| Sim.Units.us 2; Sim.Units.us 10 |];
      [| Sim.Units.us 2; Sim.Units.us 2 |];
    |]
  in
  let t = Sim.Shard_engine.create_matrix ~domains:1 ~latency engines in
  checki "window width is the matrix minimum" (Sim.Units.us 2)
    (Sim.Shard_engine.lookahead t);
  (* the regression that motivates per-pair validation: a post that
     clears the global minimum but arrives sooner than its own link
     allows must be rejected — under a uniform-min check it would
     silently model a faster wire than the topology has *)
  checkb "under-latency post on the long link rejected" true
    (try
       Sim.Shard_engine.post t ~src:0 ~dst:1 ~at:(Sim.Units.us 2)
         (fun () -> ());
       false
     with Invalid_argument _ -> true);
  checkb "same delivery time fine on the short link" true
    (try
       Sim.Shard_engine.post t ~src:1 ~dst:0 ~at:(Sim.Units.us 2)
         (fun () -> ());
       true
     with Invalid_argument _ -> false);
  checkb "post at exactly the pair latency ok" true
    (try
       Sim.Shard_engine.post t ~src:0 ~dst:1 ~at:(Sim.Units.us 10)
         (fun () -> ());
       true
     with Invalid_argument _ -> false)

let test_matrix_shape_raises () =
  let engines = Array.init 2 (fun _ -> Sim.Engine.create ()) in
  let raises latency =
    try
      ignore (Sim.Shard_engine.create_matrix ~domains:1 ~latency engines);
      false
    with Invalid_argument _ -> true
  in
  checkb "non-square matrix rejected" true (raises [| [| la; la |] |]);
  checkb "short row rejected" true (raises [| [| la |]; [| la; la |] |]);
  checkb "non-positive latency rejected" true
    (raises [| [| la; 0 |]; [| la; la |] |])

let test_worker_exception_parallel () =
  let engines = Array.init 2 (fun _ -> Sim.Engine.create ()) in
  let t = Sim.Shard_engine.create ~domains:2 ~lookahead:la engines in
  ignore
    (Sim.Engine.schedule_at engines.(1) ~at:100 (fun () -> failwith "boom"));
  checkb "worker failure surfaces" true
    (try
       Sim.Shard_engine.run t ~until:1_000;
       false
     with Sim.Shard_engine.Worker_failed (_, Failure m) -> String.equal m "boom")

(* ---------- determinism across domain counts ---------- *)

(* A static per-shard plan, generated up front so every run of the
   same plan is the same simulation regardless of thread scheduling.
   Each op schedules an event at [at] on [shard] that either logs,
   arms a timer, cancels a previously armed timer, or posts a logging
   closure to another shard one lookahead (plus [delta]) ahead. *)
type op = {
  shard : int;
  at : int;
  kind : int; (* 0 = plain, 1 = arm, 2 = cancel, 3 = post *)
  arg : int; (* timer id | timer id | dst shard *)
  delta : int;
}

let run_plan ?latency ~shards ~domains (plan : op list) :
    (int * string) list array =
  let engines = Array.init shards (fun _ -> Sim.Engine.create ()) in
  let logs = Array.make shards [] in
  let t =
    match latency with
    | None -> Sim.Shard_engine.create ~domains ~lookahead:la engines
    | Some m -> Sim.Shard_engine.create_matrix ~domains ~latency:m engines
  in
  (* per-shard timer tables: touched only by the owning shard *)
  let timers = Array.init shards (fun _ -> Hashtbl.create 16) in
  List.iteri
    (fun i op ->
      let s = op.shard in
      ignore
        (Sim.Engine.schedule_at engines.(s) ~at:op.at (fun () ->
             match op.kind with
             | 0 -> note logs engines s (Printf.sprintf "plain%d" i) ()
             | 1 ->
                 let h =
                   Sim.Engine.schedule_after engines.(s)
                     ~after:(100 + op.delta)
                     (note logs engines s (Printf.sprintf "timer%d" op.arg))
                 in
                 Hashtbl.replace timers.(s) op.arg h
             | 2 -> (
                 note logs engines s (Printf.sprintf "cancel%d" op.arg) ();
                 match Hashtbl.find_opt timers.(s) op.arg with
                 | Some h -> Sim.Engine.cancel engines.(s) h
                 | None -> ())
             | _ ->
                 let dst = op.arg mod shards in
                 let wire =
                   match latency with None -> la | Some m -> m.(s).(dst)
                 in
                 let at = Sim.Engine.now engines.(s) + wire + op.delta in
                 Sim.Shard_engine.post t ~src:s ~dst ~at
                   (note logs engines dst (Printf.sprintf "msg%d" i)))))
    plan;
  Sim.Shard_engine.run t ~until:(Sim.Units.ms 2);
  Array.map List.rev logs

let pp_logs logs =
  String.concat ";"
    (Array.to_list
       (Array.mapi
          (fun s l ->
            Printf.sprintf "%d:[%s]" s
              (String.concat ","
                 (List.map (fun (t, tag) -> Printf.sprintf "%d@%s" t tag) l)))
          logs))

let op_gen shards =
  QCheck.Gen.(
    map
      (fun (shard, at, kind, arg, delta) -> { shard; at; kind; arg; delta })
      (tup5 (int_bound (shards - 1))
         (map (fun x -> 10 + x) (int_bound 50_000))
         (int_bound 3) (int_bound 7) (int_bound 300)))

let arb_plan shards =
  QCheck.make
    ~print:(fun plan ->
      String.concat " "
        (List.map
           (fun o ->
             Printf.sprintf "(s%d@%d k%d a%d d%d)" o.shard o.at o.kind o.arg
               o.delta)
           plan))
    QCheck.Gen.(list_size (int_range 1 60) (op_gen shards))

let qcheck_determinism =
  QCheck.Test.make ~count:60
    ~name:"sharded runs are identical for any domain count" (arb_plan 4)
    (fun plan ->
      let ref_logs = run_plan ~shards:4 ~domains:1 plan in
      let ref_s = pp_logs ref_logs in
      List.for_all
        (fun domains ->
          String.equal ref_s (pp_logs (run_plan ~shards:4 ~domains plan)))
        [ 2; 3; 4 ])

(* Same property under a random asymmetric latency matrix: posts pay
   each pair's own wire latency, the window is the matrix minimum, and
   the output still cannot depend on the domain count. *)
let arb_matrix_plan shards =
  QCheck.make
    ~print:(fun (m, plan) ->
      Printf.sprintf "latency=%s %s"
        (String.concat ";"
           (Array.to_list
              (Array.map
                 (fun row ->
                   String.concat ","
                     (Array.to_list (Array.map string_of_int row)))
                 m)))
        (String.concat " "
           (List.map
              (fun o ->
                Printf.sprintf "(s%d@%d k%d a%d d%d)" o.shard o.at o.kind
                  o.arg o.delta)
              plan)))
    QCheck.Gen.(
      pair
        (array_size (return shards)
           (array_size (return shards)
              (map (fun x -> la + x) (int_bound (3 * la)))))
        (list_size (int_range 1 40) (op_gen shards)))

let qcheck_matrix_determinism =
  QCheck.Test.make ~count:30
    ~name:"matrix-lookahead runs are identical for any domain count"
    (arb_matrix_plan 4)
    (fun (latency, plan) ->
      let ref_s = pp_logs (run_plan ~latency ~shards:4 ~domains:1 plan) in
      List.for_all
        (fun domains ->
          String.equal ref_s
            (pp_logs (run_plan ~latency ~shards:4 ~domains plan)))
        [ 2; 4 ])

let qsuite name t = (name, [ QCheck_alcotest.to_alcotest t ])

let () =
  Alcotest.run "shard_engine"
    [
      ( "windows",
        [
          Alcotest.test_case "cross-shard ping-pong" `Quick test_pingpong;
          Alcotest.test_case "lookahead contract" `Quick
            test_lookahead_violation_raises;
          Alcotest.test_case "clock fill + reuse" `Quick
            test_clock_fill_and_reuse;
          Alcotest.test_case "pending beyond horizon" `Quick
            test_pending_beyond_horizon;
          Alcotest.test_case "worker exception surfaces" `Quick
            test_worker_exception_parallel;
          Alcotest.test_case "matrix lookahead contract" `Quick
            test_matrix_lookahead;
          Alcotest.test_case "matrix shape validation" `Quick
            test_matrix_shape_raises;
        ] );
      qsuite "determinism" qcheck_determinism;
      qsuite "matrix determinism" qcheck_matrix_determinism;
    ]
