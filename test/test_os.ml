(* Tests for the OS kernel model: accounting, run queues, scheduling,
   blocking/waking, stalls, IRQs/IPIs, and sockets. *)

let check = Alcotest.check
let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

let make ?(ncores = 2) ?costs () =
  let e = Sim.Engine.create () in
  let k =
    match costs with
    | Some costs -> Osmodel.Kernel.create e ~ncores ~costs ()
    | None -> Osmodel.Kernel.create e ~ncores ()
  in
  (e, k)

(* Kernel costs with zeroed overheads: timing assertions become exact. *)
let zero_costs =
  {
    Osmodel.Kernel.ctx_switch_process = 0;
    ctx_switch_thread = 0;
    syscall = 0;
    wake = 0;
    ipi_latency = 0;
    ipi_handler = 0;
    irq_latency = 0;
    timer_tick_period = Sim.Units.s 1000;
    timer_tick_cost = 0;
    quantum = Sim.Units.s 1000;
  }

(* ---------- Cpu_account ---------- *)

let test_account_basics () =
  let a = Osmodel.Cpu_account.create () in
  Osmodel.Cpu_account.charge a Osmodel.Cpu_account.User 100;
  Osmodel.Cpu_account.charge a Osmodel.Cpu_account.Spin 300;
  checki "user" 100 (Osmodel.Cpu_account.charged a Osmodel.Cpu_account.User);
  checki "busy" 400 (Osmodel.Cpu_account.busy a);
  checki "idle" 600 (Osmodel.Cpu_account.idle a ~window:1000);
  check (Alcotest.float 1e-9) "util" 0.4
    (Osmodel.Cpu_account.utilization a ~window:1000);
  check (Alcotest.float 1e-9) "useful" 0.25
    (Osmodel.Cpu_account.useful_fraction a);
  let merged = Osmodel.Cpu_account.merge [ a; a ] in
  checki "merged" 800 (Osmodel.Cpu_account.busy merged);
  Osmodel.Cpu_account.reset a;
  checki "reset" 0 (Osmodel.Cpu_account.busy a)

(* ---------- Runqueue ---------- *)

let test_runqueue_fifo_and_stale () =
  let proc = Osmodel.Proc.make_process ~pid:1 ~name:"p" in
  let th i = Osmodel.Proc.make_thread ~tid:i ~name:"t" ~proc () in
  let a = th 1 and b = th 2 in
  a.Osmodel.Proc.state <- Osmodel.Proc.Ready;
  b.Osmodel.Proc.state <- Osmodel.Proc.Ready;
  let q = Osmodel.Runqueue.create () in
  Osmodel.Runqueue.enqueue q a;
  Osmodel.Runqueue.enqueue q b;
  checkb "double enqueue rejected" true
    (try
       Osmodel.Runqueue.enqueue q a;
       false
     with Invalid_argument _ -> true);
  (* a goes stale (e.g. exited) and must be skipped. *)
  a.Osmodel.Proc.state <- Osmodel.Proc.Exited;
  (match Osmodel.Runqueue.pop q with
  | Some th -> checki "stale skipped" 2 th.Osmodel.Proc.tid
  | None -> Alcotest.fail "empty");
  checkb "drained" true (Osmodel.Runqueue.pop q = None)

(* ---------- Kernel scheduling ---------- *)

let test_spawn_wake_runs_body () =
  let e, k = make () in
  let ran_at = ref (-1) in
  let proc = Osmodel.Kernel.new_process k ~name:"app" in
  let th_ref = ref None in
  let th =
    Osmodel.Kernel.spawn k proc ~name:"t" (fun () ->
        ran_at := Sim.Engine.now e;
        Osmodel.Kernel.exit_thread k (Option.get !th_ref))
  in
  th_ref := Some th;
  Osmodel.Kernel.wake k th;
  Sim.Engine.run e ~until:(Sim.Units.us 100);
  checkb "body ran" true (!ran_at >= 0);
  checkb "core freed" true (Osmodel.Kernel.core_is_idle k ~core:0);
  checkb "exited" true (th.Osmodel.Proc.state = Osmodel.Proc.Exited)

let test_run_for_charges_and_advances () =
  let e, k = make ~costs:zero_costs () in
  let proc = Osmodel.Kernel.new_process k ~name:"app" in
  let done_at = ref (-1) in
  let th_ref = ref None in
  let th =
    Osmodel.Kernel.spawn k proc ~name:"t" (fun () ->
        let th = Option.get !th_ref in
        Osmodel.Kernel.run_for k th ~kind:Osmodel.Cpu_account.User 500
          (fun () ->
            done_at := Sim.Engine.now e;
            Osmodel.Kernel.exit_thread k th))
  in
  th_ref := Some th;
  Osmodel.Kernel.wake k th;
  Sim.Engine.run e ~until:(Sim.Units.ms 100);
  checki "took 500ns" 500 !done_at;
  checki "charged user" 500
    (Osmodel.Cpu_account.charged
       (Osmodel.Kernel.account k ~core:0)
       Osmodel.Cpu_account.User)

let test_block_wake_roundtrip () =
  let e, k = make ~costs:zero_costs () in
  let proc = Osmodel.Kernel.new_process k ~name:"app" in
  let resumed_at = ref (-1) in
  let th_ref = ref None in
  let th =
    Osmodel.Kernel.spawn k proc ~name:"t" (fun () ->
        let th = Option.get !th_ref in
        Osmodel.Kernel.block k th (fun () ->
            resumed_at := Sim.Engine.now e;
            Osmodel.Kernel.exit_thread k th))
  in
  th_ref := Some th;
  Osmodel.Kernel.wake k th;
  ignore
    (Sim.Engine.schedule_after e ~after:(Sim.Units.us 50) (fun () ->
         Osmodel.Kernel.wake k th));
  Sim.Engine.run e ~until:(Sim.Units.ms 100);
  checki "resumed at wake" (Sim.Units.us 50) !resumed_at

let test_sleep () =
  let e, k = make ~costs:zero_costs () in
  let proc = Osmodel.Kernel.new_process k ~name:"app" in
  let woke = ref (-1) in
  let th_ref = ref None in
  let th =
    Osmodel.Kernel.spawn k proc ~name:"t" (fun () ->
        let th = Option.get !th_ref in
        Osmodel.Kernel.sleep k th (Sim.Units.us 25) (fun () ->
            woke := Sim.Engine.now e;
            Osmodel.Kernel.exit_thread k th))
  in
  th_ref := Some th;
  Osmodel.Kernel.wake k th;
  Sim.Engine.run e ~until:(Sim.Units.ms 100);
  checki "slept" (Sim.Units.us 25) !woke

let test_two_threads_share_two_cores () =
  let e, k = make ~ncores:2 ~costs:zero_costs () in
  let proc = Osmodel.Kernel.new_process k ~name:"app" in
  let cores = ref [] in
  let spawn_busy name =
    let th_ref = ref None in
    let th =
      Osmodel.Kernel.spawn k proc ~name (fun () ->
          let th = Option.get !th_ref in
          (match th.Osmodel.Proc.state with
          | Osmodel.Proc.Running c -> cores := c :: !cores
          | _ -> ());
          Osmodel.Kernel.run_for k th ~kind:Osmodel.Cpu_account.User 1000
            (fun () -> Osmodel.Kernel.exit_thread k th))
    in
    th_ref := Some th;
    Osmodel.Kernel.wake k th
  in
  spawn_busy "a";
  spawn_busy "b";
  Sim.Engine.run e ~until:(Sim.Units.ms 100);
  check
    (Alcotest.list Alcotest.int)
    "both cores used" [ 0; 1 ]
    (List.sort compare !cores)

let test_affinity_pins () =
  let e, k = make ~ncores:4 ~costs:zero_costs () in
  let proc = Osmodel.Kernel.new_process k ~name:"app" in
  let core = ref (-1) in
  let th_ref = ref None in
  let th =
    Osmodel.Kernel.spawn k proc ~name:"pinned" ~affinity:3 (fun () ->
        let th = Option.get !th_ref in
        (match th.Osmodel.Proc.state with
        | Osmodel.Proc.Running c -> core := c
        | _ -> ());
        Osmodel.Kernel.exit_thread k th)
  in
  th_ref := Some th;
  Osmodel.Kernel.wake k th;
  Sim.Engine.run e ~until:(Sim.Units.ms 100);
  checki "ran on pinned core" 3 !core

let test_queueing_when_core_busy () =
  let e, k = make ~ncores:1 ~costs:zero_costs () in
  let proc = Osmodel.Kernel.new_process k ~name:"app" in
  let order = ref [] in
  let spawn_tagged tag work =
    let th_ref = ref None in
    let th =
      Osmodel.Kernel.spawn k proc ~name:tag (fun () ->
          let th = Option.get !th_ref in
          Osmodel.Kernel.run_for k th ~kind:Osmodel.Cpu_account.User work
            (fun () ->
              order := tag :: !order;
              Osmodel.Kernel.exit_thread k th))
    in
    th_ref := Some th;
    Osmodel.Kernel.wake k th
  in
  spawn_tagged "first" 1000;
  spawn_tagged "second" 10;
  checki "one waiting" 1 (Osmodel.Kernel.total_runnable_waiting k);
  Sim.Engine.run e ~until:(Sim.Units.ms 100);
  check
    (Alcotest.list Alcotest.string)
    "fifo completion" [ "first"; "second" ] (List.rev !order)

let test_yield_requeues_behind () =
  let e, k = make ~ncores:1 ~costs:zero_costs () in
  let proc = Osmodel.Kernel.new_process k ~name:"app" in
  let order = ref [] in
  let a_ref = ref None and b_ref = ref None in
  let a =
    Osmodel.Kernel.spawn k proc ~name:"a" (fun () ->
        let a = Option.get !a_ref in
        order := "a1" :: !order;
        Osmodel.Kernel.yield k a (fun () ->
            order := "a2" :: !order;
            Osmodel.Kernel.exit_thread k a))
  in
  a_ref := Some a;
  let b =
    Osmodel.Kernel.spawn k proc ~name:"b" (fun () ->
        let b = Option.get !b_ref in
        order := "b" :: !order;
        Osmodel.Kernel.exit_thread k b)
  in
  b_ref := Some b;
  Osmodel.Kernel.wake k a;
  Osmodel.Kernel.wake k b;
  Sim.Engine.run e ~until:(Sim.Units.ms 100);
  check
    (Alcotest.list Alcotest.string)
    "yield lets b in" [ "a1"; "b"; "a2" ] (List.rev !order)

let test_quantum_preemption () =
  let costs =
    {
      zero_costs with
      Osmodel.Kernel.timer_tick_period = Sim.Units.us 10;
      quantum = Sim.Units.us 20;
    }
  in
  let e, k = make ~ncores:1 ~costs () in
  let proc = Osmodel.Kernel.new_process k ~name:"app" in
  let order = ref [] in
  (* A long thread running in many short segments; a second thread
     queued behind it should preempt at a segment boundary after the
     quantum expires. *)
  let a_ref = ref None and b_ref = ref None in
  let rec segments th n k' =
    if n = 0 then k' ()
    else
      Osmodel.Kernel.run_for k th ~kind:Osmodel.Cpu_account.User
        (Sim.Units.us 5) (fun () -> segments th (n - 1) k')
  in
  let a =
    Osmodel.Kernel.spawn k proc ~name:"hog" (fun () ->
        let a = Option.get !a_ref in
        segments a 20 (fun () ->
            order := "hog-done" :: !order;
            Osmodel.Kernel.exit_thread k a))
  in
  a_ref := Some a;
  let b =
    Osmodel.Kernel.spawn k proc ~name:"latecomer" (fun () ->
        let b = Option.get !b_ref in
        order := "latecomer" :: !order;
        Osmodel.Kernel.exit_thread k b)
  in
  b_ref := Some b;
  Osmodel.Kernel.wake k a;
  ignore
    (Sim.Engine.schedule_after e ~after:(Sim.Units.us 1) (fun () ->
         Osmodel.Kernel.wake k b));
  Sim.Engine.run e ~until:(Sim.Units.ms 100);
  check
    (Alcotest.list Alcotest.string)
    "preempted before hog finished"
    [ "latecomer"; "hog-done" ] (List.rev !order)

let test_work_stealing () =
  let e, k = make ~ncores:2 ~costs:zero_costs () in
  let proc = Osmodel.Kernel.new_process k ~name:"app" in
  (* Three threads woken "simultaneously": one core would serialize,
     stealing should spread them. Thread 3 lands on a queue while both
     cores are busy; when core 1 finishes early it steals. *)
  let finish_times = ref [] in
  let spawn_work name work =
    let th_ref = ref None in
    let th =
      Osmodel.Kernel.spawn k proc ~name (fun () ->
          let th = Option.get !th_ref in
          Osmodel.Kernel.run_for k th ~kind:Osmodel.Cpu_account.User work
            (fun () ->
              finish_times := (name, Sim.Engine.now e) :: !finish_times;
              Osmodel.Kernel.exit_thread k th))
    in
    th_ref := Some th;
    Osmodel.Kernel.wake k th
  in
  spawn_work "long" 1000;
  spawn_work "short" 10;
  spawn_work "queued" 10;
  Sim.Engine.run e ~until:(Sim.Units.ms 100);
  let t name = List.assoc name !finish_times in
  checkb "queued stolen before long finished" true (t "queued" < t "long")

(* ---------- Stall accounting ---------- *)

let test_stall_accounting () =
  let e, k = make ~ncores:1 ~costs:zero_costs () in
  let proc = Osmodel.Kernel.new_process k ~name:"app" in
  let th_ref = ref None in
  let th =
    Osmodel.Kernel.spawn k proc ~name:"t" (fun () ->
        let th = Option.get !th_ref in
        Osmodel.Kernel.stall_begin k th;
        ignore
          (Sim.Engine.schedule_after e ~after:750 (fun () ->
               Osmodel.Kernel.stall_end k th;
               Osmodel.Kernel.exit_thread k th)))
  in
  th_ref := Some th;
  Osmodel.Kernel.wake k th;
  Sim.Engine.run e ~until:(Sim.Units.ms 100);
  checki "stall charged" 750
    (Osmodel.Cpu_account.charged
       (Osmodel.Kernel.account k ~core:0)
       Osmodel.Cpu_account.Stall)

(* ---------- IRQ / IPI ---------- *)

let test_irq_prefers_idle_core_and_charges () =
  let e, k = make ~ncores:2 () in
  let handled_on = ref (-1) in
  Osmodel.Kernel.run_irq k ~cost:400 (fun ~core -> handled_on := core);
  Sim.Engine.run e ~until:(Sim.Units.ms 100);
  checkb "some core" true (!handled_on >= 0);
  checki "kernel charged" 400
    (Osmodel.Cpu_account.charged
       (Osmodel.Kernel.account k ~core:!handled_on)
       Osmodel.Cpu_account.Kernel)

let test_ipi_delivery () =
  let e, k = make ~ncores:2 () in
  let at = ref (-1) in
  Osmodel.Kernel.send_ipi k ~core:1 (fun () -> at := Sim.Engine.now e);
  Sim.Engine.run e ~until:(Sim.Units.ms 100);
  checki "ipi latency"
    (Osmodel.Kernel.costs k).Osmodel.Kernel.ipi_latency !at

(* ---------- Context-switch hooks ---------- *)

let test_context_switch_hook_sees_transitions () =
  let e, k = make ~ncores:1 ~costs:zero_costs () in
  let proc = Osmodel.Kernel.new_process k ~name:"app" in
  let events = ref [] in
  Osmodel.Kernel.on_context_switch k (fun ~core ~prev ~next ->
      let name = function
        | None -> "-"
        | Some th -> th.Osmodel.Proc.tname
      in
      events := (core, name prev, name next) :: !events);
  let th_ref = ref None in
  let th =
    Osmodel.Kernel.spawn k proc ~name:"t" (fun () ->
        Osmodel.Kernel.exit_thread k (Option.get !th_ref))
  in
  th_ref := Some th;
  Osmodel.Kernel.wake k th;
  Sim.Engine.run e ~until:(Sim.Units.ms 100);
  check
    (Alcotest.list (Alcotest.triple Alcotest.int Alcotest.string Alcotest.string))
    "on then off"
    [ (0, "-", "t"); (0, "t", "-") ]
    (List.rev !events)

(* ---------- Socket ---------- *)

let test_socket_blocking_recv () =
  let e, k = make ~ncores:1 ~costs:zero_costs () in
  let proc = Osmodel.Kernel.new_process k ~name:"app" in
  let sock : string Osmodel.Socket.t = Osmodel.Socket.create k () in
  let got = ref [] in
  let th_ref = ref None in
  let rec loop th () =
    Osmodel.Socket.recv sock th (fun v ->
        got := v :: !got;
        if List.length !got < 2 then loop th ()
        else Osmodel.Kernel.exit_thread k th)
  in
  let th =
    Osmodel.Kernel.spawn k proc ~name:"rx" (fun () ->
        loop (Option.get !th_ref) ())
  in
  th_ref := Some th;
  Osmodel.Kernel.wake k th;
  ignore
    (Sim.Engine.schedule_after e ~after:100 (fun () ->
         Osmodel.Socket.enqueue sock "one"));
  ignore
    (Sim.Engine.schedule_after e ~after:200 (fun () ->
         Osmodel.Socket.enqueue sock "two"));
  Sim.Engine.run e ~until:(Sim.Units.ms 100);
  check (Alcotest.list Alcotest.string) "both received in order"
    [ "one"; "two" ] (List.rev !got);
  checki "enqueued total" 2 (Osmodel.Socket.enqueued sock)

let test_socket_immediate_recv () =
  let e, k = make ~ncores:1 ~costs:zero_costs () in
  let proc = Osmodel.Kernel.new_process k ~name:"app" in
  let sock : int Osmodel.Socket.t = Osmodel.Socket.create k () in
  Osmodel.Socket.enqueue sock 7;
  checki "depth" 1 (Osmodel.Socket.depth sock);
  let got = ref 0 in
  let th_ref = ref None in
  let th =
    Osmodel.Kernel.spawn k proc ~name:"rx" (fun () ->
        let th = Option.get !th_ref in
        Osmodel.Socket.recv sock th (fun v ->
            got := v;
            Osmodel.Kernel.exit_thread k th))
  in
  th_ref := Some th;
  Osmodel.Kernel.wake k th;
  Sim.Engine.run e ~until:(Sim.Units.ms 100);
  checki "got it" 7 !got

(* ---------- Crash / restart lifecycle ---------- *)

let test_kill_and_respawn_lifecycle () =
  let e, k = make ~ncores:1 ~costs:zero_costs () in
  let proc = Osmodel.Kernel.new_process k ~name:"victim" in
  let woke = ref 0 and exited = ref 0 and back = ref 0 in
  Osmodel.Kernel.on_process_exit k (fun _ -> incr exited);
  Osmodel.Kernel.on_process_respawn k (fun _ -> incr back);
  let th_ref = ref None in
  let th =
    Osmodel.Kernel.spawn k proc ~name:"w" (fun () ->
        Osmodel.Kernel.block k (Option.get !th_ref) (fun () -> incr woke))
  in
  th_ref := Some th;
  Osmodel.Kernel.wake k th;
  ignore
    (Sim.Engine.schedule_after e ~after:(Sim.Units.us 10) (fun () ->
         Osmodel.Kernel.kill k proc;
         (* A second kill of a dead process is a no-op. *)
         Osmodel.Kernel.kill k proc));
  ignore
    (Sim.Engine.schedule_after e ~after:(Sim.Units.us 20) (fun () ->
         (* Waking a killed thread must be a silent no-op, not a
            resurrection. *)
         Osmodel.Kernel.wake k th));
  ignore
    (Sim.Engine.schedule_after e ~after:(Sim.Units.us 30) (fun () ->
         Osmodel.Kernel.respawn k proc;
         let th2_ref = ref None in
         let th2 =
           Osmodel.Kernel.spawn k proc ~name:"w2" (fun () ->
               Osmodel.Kernel.exit_thread k (Option.get !th2_ref))
         in
         th2_ref := Some th2;
         Osmodel.Kernel.wake k th2));
  Sim.Engine.run e ~until:(Sim.Units.ms 1);
  checkb "old thread exited" true
    (th.Osmodel.Proc.state = Osmodel.Proc.Exited);
  checki "blocked continuation never ran" 0 !woke;
  checki "exit hook fired once" 1 !exited;
  checki "respawn hook fired once" 1 !back;
  checki "kills counted once" 1 (Osmodel.Kernel.kills k);
  checkb "process alive again" true proc.Osmodel.Proc.alive

let test_socket_backlog_survives_crash () =
  let e, k = make ~ncores:1 ~costs:zero_costs () in
  let proc = Osmodel.Kernel.new_process k ~name:"srv" in
  let sock : string Osmodel.Socket.t = Osmodel.Socket.create k () in
  let got = ref [] in
  let th_ref = ref None in
  let th =
    Osmodel.Kernel.spawn k proc ~name:"rx" (fun () ->
        Osmodel.Socket.recv sock (Option.get !th_ref) (fun v ->
            got := v :: !got))
  in
  th_ref := Some th;
  Osmodel.Kernel.wake k th;
  ignore
    (Sim.Engine.schedule_after e ~after:(Sim.Units.us 10) (fun () ->
         Osmodel.Kernel.kill k proc));
  (* Deliver while the only waiter is dead: the waiter is skipped and
     the datagram stays queued — the kernel owns the buffer. *)
  ignore
    (Sim.Engine.schedule_after e ~after:(Sim.Units.us 20) (fun () ->
         Osmodel.Socket.enqueue sock "survivor"));
  ignore
    (Sim.Engine.schedule_after e ~after:(Sim.Units.us 30) (fun () ->
         Osmodel.Kernel.respawn k proc;
         let th2_ref = ref None in
         let th2 =
           Osmodel.Kernel.spawn k proc ~name:"rx2" (fun () ->
               Osmodel.Socket.recv sock (Option.get !th2_ref) (fun v ->
                   got := v :: !got))
         in
         th2_ref := Some th2;
         Osmodel.Kernel.wake k th2));
  Sim.Engine.run e ~until:(Sim.Units.ms 1);
  check
    (Alcotest.list Alcotest.string)
    "backlog served after restart" [ "survivor" ] !got;
  checki "queue drained" 0 (Osmodel.Socket.depth sock)

let () =
  Alcotest.run "os"
    [
      ( "accounting",
        [ Alcotest.test_case "cpu_account" `Quick test_account_basics ] );
      ( "runqueue",
        [
          Alcotest.test_case "fifo and stale entries" `Quick
            test_runqueue_fifo_and_stale;
        ] );
      ( "scheduling",
        [
          Alcotest.test_case "spawn+wake runs body" `Quick
            test_spawn_wake_runs_body;
          Alcotest.test_case "run_for charges" `Quick
            test_run_for_charges_and_advances;
          Alcotest.test_case "block/wake" `Quick test_block_wake_roundtrip;
          Alcotest.test_case "sleep" `Quick test_sleep;
          Alcotest.test_case "two threads two cores" `Quick
            test_two_threads_share_two_cores;
          Alcotest.test_case "affinity" `Quick test_affinity_pins;
          Alcotest.test_case "fifo queueing" `Quick
            test_queueing_when_core_busy;
          Alcotest.test_case "yield requeues" `Quick test_yield_requeues_behind;
          Alcotest.test_case "quantum preemption" `Quick
            test_quantum_preemption;
          Alcotest.test_case "work stealing" `Quick test_work_stealing;
        ] );
      ( "stall",
        [ Alcotest.test_case "stall accounting" `Quick test_stall_accounting ]
      );
      ( "interrupts",
        [
          Alcotest.test_case "irq picks idle core" `Quick
            test_irq_prefers_idle_core_and_charges;
          Alcotest.test_case "ipi delivery" `Quick test_ipi_delivery;
        ] );
      ( "hooks",
        [
          Alcotest.test_case "context-switch transitions" `Quick
            test_context_switch_hook_sees_transitions;
        ] );
      ( "socket",
        [
          Alcotest.test_case "blocking recv" `Quick test_socket_blocking_recv;
          Alcotest.test_case "immediate recv" `Quick
            test_socket_immediate_recv;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "kill and respawn" `Quick
            test_kill_and_respawn_lifecycle;
          Alcotest.test_case "socket backlog survives crash" `Quick
            test_socket_backlog_survives_crash;
        ] );
    ]
