(* Seeded-regression suite for the steering DSL and its static
   verifier (lib/nic/steer.ml, steer_verify.ml).

   The rejection tests are the verifier's contract: each deliberately
   broken program must be rejected with a *diagnostic that names the
   defect and a concrete witness packet* — a future edit that silently
   weakens a check (coverage, disjointness, target ranges, cost,
   payload-prefix confinement, worker-pinning safety) fails here, not
   in review. The QCheck properties pin the semantic backbone: the
   first-match compiled evaluator coincides with the declarative
   match-all reference on every verified program, and [Rss.hash] is
   the one Toeplitz everyone shares. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

let env = Nic.Steer_verify.default_env

let atom field lo hi = { Nic.Steer.field; lo; hi }

let prog ?default ?on_dead name rules =
  { Nic.Steer.name; rules; default; on_dead }

let rule guard target = { Nic.Steer.guard; target }

let mk_frame ?(src_ip = 0x0a000a0a) ?(dst_ip = 0x0a000001) ?(src_port = 5555)
    ?(dst_port = 7000) ?(len = 64) ?(fill = 'x') () =
  let src =
    {
      Net.Frame.mac = Net.Mac_addr.of_string "02:00:00:00:00:0a";
      ip = Net.Ip_addr.of_int src_ip;
      port = src_port;
    }
  in
  let dst =
    {
      Net.Frame.mac = Net.Mac_addr.of_string "02:00:00:00:00:01";
      ip = Net.Ip_addr.of_int dst_ip;
      port = dst_port;
    }
  in
  Net.Frame.make ~src ~dst (Bytes.make len fill)

(* Assert rejection and that some diagnostic mentions [needle]. *)
let expect_reject ?(env = env) name p needle =
  match Nic.Steer_verify.verify ~env p with
  | Ok _ -> Alcotest.failf "%s: verifier accepted a broken program" name
  | Error diags ->
      let mentions d =
        let dl = String.lowercase_ascii d
        and nl = String.lowercase_ascii needle in
        let n = String.length nl and dn = String.length dl in
        let rec at i = i + n <= dn && (String.equal (String.sub dl i n) nl || at (i + 1)) in
        at 0
      in
      if not (List.exists mentions diags) then
        Alcotest.failf "%s: no diagnostic mentions %S in:\n%s" name needle
          (String.concat "\n" diags)

(* --- shipped programs verify --------------------------------------- *)

let test_builtins_verify () =
  List.iter
    (fun p ->
      match Nic.Steer_verify.verify ~env p with
      | Ok v ->
          let c = Nic.Steer_verify.cost v in
          checkb (p.Nic.Steer.name ^ " cost positive") true (c > 0);
          checkb
            (p.Nic.Steer.name ^ " within budget")
            true
            (c <= env.Nic.Steer_verify.cost_budget)
      | Error ds ->
          Alcotest.failf "builtin %s rejected:\n%s" p.Nic.Steer.name
            (String.concat "\n" ds))
    Nic.Steer.builtins

(* --- seeded rejections --------------------------------------------- *)

let test_reject_lossy () =
  (* dst_port 100..199 falls through with no default: packet loss. *)
  let p =
    prog "lossy"
      [
        rule [ atom Dst_port 0 99 ] (Queue 0);
        rule [ atom Dst_port 200 65_535 ] (Queue 1);
      ]
  in
  expect_reject "lossy" p "no rule matches the packet";
  expect_reject "lossy-witness" p "dst_port=100";
  expect_reject "lossy-loss" p "lost"

let test_reject_overlap () =
  (* dst_port 100..200 matches both rules: double dispatch. *)
  let p =
    prog ~default:Nic.Steer.Rss "dup"
      [
        rule [ atom Dst_port 0 200 ] (Queue 0);
        rule [ atom Dst_port 100 300 ] (Queue 1);
      ]
  in
  expect_reject "dup" p "rules 0 and 1 overlap";
  expect_reject "dup-witness" p "dst_port=150"

let test_reject_multifield_hole () =
  (* Quadrants of (length, dst_port) with one quadrant missing. *)
  let p =
    prog "quadrant"
      [
        rule [ atom Length 0 128; atom Dst_port 0 7_000 ] (Queue 0);
        rule [ atom Length 129 65_535; atom Dst_port 0 7_000 ] (Queue 1);
        rule [ atom Length 0 128; atom Dst_port 7_001 65_535 ] (Queue 2);
      ]
  in
  expect_reject "quadrant" p "no rule matches";
  expect_reject "quadrant-witness" p "length=129";
  (* ... and plugging the hole flips the verdict. *)
  let fixed =
    {
      p with
      Nic.Steer.rules =
        p.Nic.Steer.rules
        @ [ rule [ atom Length 129 65_535; atom Dst_port 7_001 65_535 ] (Queue 3) ];
    }
  in
  match Nic.Steer_verify.verify ~env fixed with
  | Ok _ -> ()
  | Error ds -> Alcotest.failf "plugged quadrants rejected:\n%s" (String.concat "\n" ds)

let test_reject_target_range () =
  let p = prog "oor" [ rule [] (Nic.Steer.Queue 9) ] in
  expect_reject "oor" p "queue 9 out of range [0,4)";
  let lanes =
    prog "lanes"
      [ rule [] (Nic.Steer.Hash_lane { key = [ Nic.Steer.Src_ip ]; lanes = 4; base = 2 }) ]
  in
  expect_reject "lanes" lanes "lane window [2,6) outside the queue range"

let test_reject_payload_prefix () =
  (* Payload byte 40 is outside the declared 32-byte prefix: reading it
     would make dispatch depend on unparsed bytes. *)
  let p =
    prog ~default:Nic.Steer.Rss "deep"
      [ rule [ atom (Nic.Steer.Payload 40) 0 10 ] (Queue 0) ]
  in
  expect_reject "deep" p "outside the guaranteed-parseable 32-byte prefix"

let test_reject_over_budget () =
  (* A 64-byte payload hash key costs 64*4 + 15 + 6*64 + 2 = 657 ns,
     over the 500 ns budget even with the prefix widened to admit it. *)
  let wide = { env with Nic.Steer_verify.payload_prefix = 64 } in
  let key = List.init 64 (fun i -> Nic.Steer.Payload i) in
  let p =
    prog "greedy" [ rule [] (Nic.Steer.Hash_lane { key; lanes = 4; base = 0 }) ]
  in
  expect_reject ~env:wide "greedy" p "exceeds the budget";
  expect_reject ~env:wide "greedy-cost" p "657 ns"

let test_reject_empty_interval () =
  let p =
    prog ~default:Nic.Steer.Rss "empty"
      [ rule [ atom Nic.Steer.Dst_port 10 5 ] (Queue 0) ]
  in
  expect_reject "empty" p "empty interval"

let test_reject_worker_without_fallback () =
  (* Pinning a worker with no on_dead composes unsafely with the
     stale-mirror dispatch model: the verifier must surface the model
     checker's counterexample trace. *)
  let p = prog "pin" [ rule [] (Nic.Steer.Worker 0) ] in
  expect_reject "pin" p "unsafe across scheduler-mirror updates";
  expect_reject "pin-trace" p "counterexample (stale-mirror model)";
  expect_reject "pin-fix" p "on_dead fallback";
  (* The same pin with a non-worker fallback is safe. *)
  let fb = prog ~on_dead:Nic.Steer.Rss "pin_fb" [ rule [] (Nic.Steer.Worker 0) ] in
  (match Nic.Steer_verify.verify ~env fb with
  | Ok _ -> ()
  | Error ds -> Alcotest.failf "pin_fb rejected:\n%s" (String.concat "\n" ds));
  (* ... but a worker on_dead just moves the problem. *)
  let ww =
    prog ~on_dead:(Nic.Steer.Worker 1) "pin_ww" [ rule [] (Nic.Steer.Worker 0) ]
  in
  expect_reject "pin_ww" ww "must not itself pin a worker"

(* --- compiled/declarative equivalence ------------------------------ *)

let frame_gen =
  QCheck.make
    ~print:(fun (a, b, c, d, e, f) ->
      Printf.sprintf "sip=%d dip=%d sp=%d dp=%d len=%d fill=%d" a b c d e f)
    QCheck.Gen.(
      tup6 (int_bound 0xffffff) (int_bound 0xffffff) (int_bound 0xffff)
        (int_bound 0xffff) (int_range 1 256) (int_bound 255))

let frame_of (sip, dip, sp, dp, len, fill) =
  mk_frame ~src_ip:sip ~dst_ip:dip ~src_port:sp ~dst_port:dp ~len
    ~fill:(Char.chr fill) ()

let compile_eval_equiv =
  let rss_tbl = Nic.Rss.create ~queues:4 () in
  let rss = Nic.Rss.queue_of_frame rss_tbl in
  QCheck.Test.make
    ~name:"compiled first-match = declarative match-all on verified programs"
    ~count:500 frame_gen (fun tup ->
      let f = frame_of tup in
      List.for_all
        (fun p ->
          match Nic.Steer_verify.verify ~env p with
          | Error _ -> QCheck.Test.fail_report "builtin no longer verifies"
          | Ok v ->
              let p = Nic.Steer_verify.program v in
              Nic.Steer.compile ~rss p f = Nic.Steer.eval ~rss p f)
        Nic.Steer.builtins)

let rss_hash_pure =
  QCheck.Test.make ~name:"Rss.hash = toeplitz under the default key"
    ~count:300
    QCheck.(list_of_size Gen.(int_range 0 40) (int_bound 255))
    (fun bytes ->
      let b = Bytes.of_string (String.init (List.length bytes) (fun i -> Char.chr (List.nth bytes i))) in
      Nic.Rss.hash b = Nic.Rss.toeplitz_hash ~key:Nic.Rss.default_key b)

let rss_hash_flow_agree =
  (* hash_flow over the canonical 12-byte RSS tuple is exactly
     [Rss.hash] of those bytes: steering-by-key and RSS share one
     Toeplitz. *)
  let t = Nic.Rss.create ~queues:8 () in
  QCheck.Test.make ~name:"hash_flow = Rss.hash of the canonical tuple"
    ~count:300
    QCheck.(quad (int_bound 0xffffff) (int_bound 0xffffff) (int_bound 0xffff) (int_bound 0xffff))
    (fun (sip, dip, sp, dp) ->
      let src_ip = Net.Ip_addr.of_int sip and dst_ip = Net.Ip_addr.of_int dip in
      let b = Bytes.create 12 in
      let be32 off v =
        Bytes.set b off (Char.chr ((v lsr 24) land 0xff));
        Bytes.set b (off + 1) (Char.chr ((v lsr 16) land 0xff));
        Bytes.set b (off + 2) (Char.chr ((v lsr 8) land 0xff));
        Bytes.set b (off + 3) (Char.chr (v land 0xff))
      and be16 off v =
        Bytes.set b off (Char.chr ((v lsr 8) land 0xff));
        Bytes.set b (off + 1) (Char.chr (v land 0xff))
      in
      be32 0 sip; be32 4 dip; be16 8 sp; be16 10 dp;
      Nic.Rss.hash_flow t ~src_ip ~dst_ip ~src_port:sp ~dst_port:dp
      = Nic.Rss.hash b)

(* --- eval totality oracle ------------------------------------------ *)

let test_eval_rejects_double_match () =
  let rss _ = 0 in
  let p =
    prog ~default:Nic.Steer.Rss "live_dup"
      [ rule [] (Nic.Steer.Queue 0); rule [] (Nic.Steer.Queue 1) ]
  in
  checkb "eval raises on double match" true
    (try
       ignore (Nic.Steer.eval ~rss p (mk_frame ()));
       false
     with Failure _ -> true);
  let lossy = prog "live_lossy" [ rule [ atom Nic.Steer.Dst_port 0 10 ] (Queue 0) ] in
  checkb "eval raises on fallthrough without default" true
    (try
       ignore (Nic.Steer.eval ~rss lossy (mk_frame ~dst_port:7000 ()));
       false
     with Failure _ -> true)

(* --- installed on a NIC: cost charged, lanes counted --------------- *)

let verified p =
  match Nic.Steer_verify.verify ~env p with
  | Ok v -> v
  | Error ds -> Alcotest.failf "fixture rejected:\n%s" (String.concat "\n" ds)

let rx_latency ?steering () =
  (* Time from wire to rx interrupt, with interrupt coalescing off —
     the steering program's verified cost must show up, exactly, and
     only when a program is installed. *)
  let e = Sim.Engine.create () in
  let at = ref (-1) in
  let nic =
    Nic.Dma_nic.create e Coherence.Interconnect.pcie_modern
      ~config:{ Nic.Dma_nic.default_config with Nic.Dma_nic.coalesce_interval = 0 }
      ~on_rx_interrupt:(fun ~queue:_ -> at := Sim.Engine.now e)
      ()
  in
  (match steering with
  | None -> ()
  | Some v -> Nic.Steer_verify.install ~nic v);
  Nic.Dma_nic.rx_from_wire nic (mk_frame ());
  Sim.Engine.run e;
  checkb "interrupt fired" true (!at >= 0);
  !at

let test_install_charges_cost () =
  let v = verified Nic.Steer.rss_all in
  let base = rx_latency () in
  let steered = rx_latency ~steering:v () in
  checki "rx path slower by exactly the verified cost"
    (Nic.Steer_verify.cost v) (steered - base)

let test_install_counts_lanes () =
  let e = Sim.Engine.create () in
  let nic =
    Nic.Dma_nic.create e Coherence.Interconnect.pcie_modern
      ~config:{ Nic.Dma_nic.default_config with Nic.Dma_nic.coalesce_interval = 0 }
      ~on_rx_interrupt:(fun ~queue:_ -> ())
      ()
  in
  let m = Obs.Metrics.create () in
  Nic.Steer_verify.install ~metrics:m ~nic (verified Nic.Steer.rss_all);
  for i = 0 to 9 do
    Nic.Dma_nic.rx_from_wire nic (mk_frame ~src_port:(4000 + i) ())
  done;
  Sim.Engine.run e;
  checki "every decision counted" 10 (Obs.Metrics.counter_value m "steer_decisions");
  let lane_sum = ref 0 in
  for q = 0 to Nic.Dma_nic.nqueues nic - 1 do
    lane_sum :=
      !lane_sum
      + Obs.Metrics.counter_value m (Printf.sprintf "steer_lane_%d" q)
  done;
  checki "lane counters sum to decisions" 10 !lane_sum

let test_steering_off_costs_zero () =
  (* The whole PR rides on this: no program installed, no cost. *)
  let a = rx_latency () and b = rx_latency () in
  checki "baseline rx latency stable" a b

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "steer"
    [
      ( "verify",
        [
          Alcotest.test_case "builtins pass" `Quick test_builtins_verify;
          Alcotest.test_case "lossy rejected" `Quick test_reject_lossy;
          Alcotest.test_case "overlap rejected" `Quick test_reject_overlap;
          Alcotest.test_case "multi-field hole" `Quick
            test_reject_multifield_hole;
          Alcotest.test_case "target out of range" `Quick
            test_reject_target_range;
          Alcotest.test_case "payload outside prefix" `Quick
            test_reject_payload_prefix;
          Alcotest.test_case "over budget" `Quick test_reject_over_budget;
          Alcotest.test_case "empty interval" `Quick
            test_reject_empty_interval;
          Alcotest.test_case "worker needs fallback" `Quick
            test_reject_worker_without_fallback;
        ] );
      ( "semantics",
        Alcotest.test_case "eval is the totality oracle" `Quick
          test_eval_rejects_double_match
        :: qsuite [ compile_eval_equiv; rss_hash_pure; rss_hash_flow_agree ] );
      ( "nic",
        [
          Alcotest.test_case "install charges verified cost" `Quick
            test_install_charges_cost;
          Alcotest.test_case "install counts lanes" `Quick
            test_install_counts_lanes;
          Alcotest.test_case "off costs zero" `Quick
            test_steering_off_costs_zero;
        ] );
    ]
