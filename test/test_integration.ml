(* Cross-stack integration tests: the paper's comparative claims, as
   assertions. Absolute numbers are simulator outputs; the *orderings*
   are what the paper predicts and what these tests pin down. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

type run = {
  recorder : Harness.Recorder.t;
  kernel : Osmodel.Kernel.t;
  counters : Sim.Counter.group;
  horizon : Sim.Units.time;
}

let horizon = Sim.Units.ms 30

(* Run one stack against an open-loop uniform workload over [nservices]
   echo services and return the measurements. *)
let run_stack ~stack ~ncores ~nservices ~rate ?(payload = 64) ?(zipf_s = 0.)
    ?(min_workers = 1) () =
  let engine = Sim.Engine.create () in
  let recorder = Harness.Recorder.create engine in
  let setup = Workload.Scenario.echo_fleet ~n:nservices () in
  let egress = Harness.Recorder.egress recorder in
  let driver, kernel, counters =
    match stack with
    | `Lauberhorn mirror_mode ->
        let s =
          Lauberhorn.Stack.create engine ~cfg:Lauberhorn.Config.enzian
            ~ncores ~mirror_mode
            ~services:
              (List.mapi
                 (fun i def ->
                   Lauberhorn.Stack.spec ~min_workers ~max_workers:2
                     ~port:setup.Workload.Scenario.ports.(i) def)
                 setup.Workload.Scenario.defs)
            ~egress ()
        in
        ( Lauberhorn.Stack.driver s,
          Lauberhorn.Stack.kernel s,
          Lauberhorn.Stack.counters s )
    | `Linux ->
        let s =
          Baseline.Linux_stack.create engine
            ~profile:Coherence.Interconnect.pcie_enzian ~ncores
            ~services:
              (List.mapi
                 (fun i def ->
                   Baseline.Linux_stack.spec
                     ~port:setup.Workload.Scenario.ports.(i) def)
                 setup.Workload.Scenario.defs)
            ~egress ()
        in
        ( Baseline.Linux_stack.driver s,
          Baseline.Linux_stack.kernel s,
          Baseline.Linux_stack.counters s )
    | `Static ->
        let s =
          Lauberhorn.Static_stack.create engine
            ~cfg:
              (Lauberhorn.Config.with_timeout Lauberhorn.Config.enzian
                 (Sim.Units.us 50))
            ~ncores
            ~services:
              (List.mapi
                 (fun i def ->
                   Lauberhorn.Static_stack.spec
                     ~port:setup.Workload.Scenario.ports.(i) def)
                 setup.Workload.Scenario.defs)
            ~egress ()
        in
        ( Lauberhorn.Static_stack.driver s,
          Lauberhorn.Static_stack.kernel s,
          Lauberhorn.Static_stack.counters s )
    | `Bypass ->
        let s =
          Baseline.Bypass_stack.create engine
            ~profile:Coherence.Interconnect.pcie_enzian ~ncores
            ~services:
              (List.mapi
                 (fun i def ->
                   Baseline.Bypass_stack.spec
                     ~port:setup.Workload.Scenario.ports.(i) def)
                 setup.Workload.Scenario.defs)
            ~egress ()
        in
        (* Flush idle-spin windows right before the horizon so the
           ledgers are complete when we read them. *)
        ignore
          (Sim.Engine.schedule_at engine ~at:(horizon + Sim.Units.ms 9)
             (fun () -> Baseline.Bypass_stack.flush_spin s));
        ( Baseline.Bypass_stack.driver s,
          Baseline.Bypass_stack.kernel s,
          Baseline.Bypass_stack.counters s )
  in
  let rng = Sim.Rng.create ~seed:1234 in
  Workload.Arrivals.open_loop engine rng ~rate_per_s:rate ~until:horizon
    (fun ~seq ->
      let pick =
        if zipf_s > 0. then
          Workload.Rpc_mix.zipf_pick rng ~services:nservices ~s:zipf_s
        else Workload.Rpc_mix.uniform_pick rng ~services:nservices
      in
      let svc = pick.Workload.Rpc_mix.service_idx in
      Harness.Traffic.inject recorder driver
        ~rpc_id:(Int64.of_int seq)
        ~service_id:(Workload.Scenario.service_id_of setup ~service_idx:svc)
        ~method_id:0
        ~port:(Workload.Scenario.port_of setup ~service_idx:svc)
        (Rpc.Value.Blob (Bytes.make payload 'w')));
  Sim.Engine.run engine ~until:(horizon + Sim.Units.ms 10);
  { recorder; kernel; counters; horizon = horizon + Sim.Units.ms 10 }

let p50 r = Sim.Histogram.quantile (Harness.Recorder.latencies r.recorder) 0.5
let p99 r = Sim.Histogram.quantile (Harness.Recorder.latencies r.recorder) 0.99

let spin_total r =
  List.fold_left
    (fun acc a -> acc + Osmodel.Cpu_account.charged a Osmodel.Cpu_account.Spin)
    0
    (Osmodel.Kernel.accounts r.kernel)

let stall_total r =
  List.fold_left
    (fun acc a ->
      acc + Osmodel.Cpu_account.charged a Osmodel.Cpu_account.Stall)
    0
    (Osmodel.Kernel.accounts r.kernel)

(* ---------- E6: latency ordering at light-to-moderate load ---------- *)

let test_latency_ordering () =
  let args = (4, 1, 100_000.) in
  let ncores, nservices, rate = args in
  let lau =
    run_stack ~stack:(`Lauberhorn Lauberhorn.Sched_mirror.Push) ~ncores
      ~nservices ~rate ()
  in
  let lin = run_stack ~stack:`Linux ~ncores ~nservices ~rate () in
  let byp = run_stack ~stack:`Bypass ~ncores ~nservices ~rate () in
  checkb
    (Printf.sprintf "lauberhorn (%d) < bypass (%d)" (p50 lau) (p50 byp))
    true (p50 lau < p50 byp);
  checkb
    (Printf.sprintf "bypass (%d) < linux (%d)" (p50 byp) (p50 lin))
    true (p50 byp < p50 lin);
  (* Nothing lost anywhere. *)
  List.iter
    (fun r ->
      checki "conservation"
        (Harness.Recorder.sent r.recorder)
        (Harness.Recorder.completed r.recorder))
    [ lau; lin; byp ]

(* ---------- E8: energy (spin vs stall) ---------- *)

let test_energy_no_spinning () =
  let ncores, nservices, rate = (4, 1, 50_000.) in
  let lau =
    run_stack ~stack:(`Lauberhorn Lauberhorn.Sched_mirror.Push) ~ncores
      ~nservices ~rate ()
  in
  let byp = run_stack ~stack:`Bypass ~ncores ~nservices ~rate () in
  checki "lauberhorn never spins" 0 (spin_total lau);
  (* Bypass burns most of 4 cores x 40ms spinning at this low load. *)
  checkb "bypass spins heavily" true (spin_total byp > Sim.Units.ms 50);
  (* Lauberhorn's waiting shows up as stalled loads instead. *)
  checkb "lauberhorn stalls instead" true (stall_total lau > Sim.Units.ms 10)

(* ---------- E5: TRYAGAIN timeout controls idle bus traffic ---------- *)

let test_tryagain_timeout_monotone () =
  let tries timeout =
    let engine = Sim.Engine.create () in
    let recorder = Harness.Recorder.create engine in
    let stack =
      Lauberhorn.Stack.create engine
        ~cfg:(Lauberhorn.Config.with_timeout Lauberhorn.Config.enzian timeout)
        ~ncores:4
        ~services:
          [ Lauberhorn.Stack.spec ~port:7000 (Rpc.Interface.echo_service ~id:1) ]
        ~egress:(Harness.Recorder.egress recorder)
        ()
    in
    Sim.Engine.run engine ~until:(Sim.Units.ms 60);
    Coherence.Home_agent.tryagains (Lauberhorn.Stack.home_agent stack)
  in
  let fast = tries (Sim.Units.us 100) in
  let mid = tries (Sim.Units.ms 1) in
  let slow = tries (Sim.Units.ms 15) in
  checkb
    (Printf.sprintf "monotone: %d > %d > %d" fast mid slow)
    true
    (fast > mid && mid > slow);
  (* At the paper's 15ms setting an idle 60ms run has single-digit
     tryagains per parked line: effectively zero polling. *)
  checkb "15ms is near-zero traffic" true (slow < 40)

(* ---------- E3 ablation: push mirror vs query ---------- *)

let test_mirror_push_beats_query () =
  let ncores, nservices, rate = (4, 1, 100_000.) in
  let push =
    run_stack ~stack:(`Lauberhorn Lauberhorn.Sched_mirror.Push) ~ncores
      ~nservices ~rate ()
  in
  let query =
    run_stack ~stack:(`Lauberhorn Lauberhorn.Sched_mirror.Query) ~ncores
      ~nservices ~rate ()
  in
  (* Querying the host at dispatch time costs an MMIO read on every
     request: ~1.1us extra on the Enzian profile. *)
  checkb
    (Printf.sprintf "push p50 %d + margin < query p50 %d" (p50 push)
       (p50 query))
    true
    (p50 push + 800 < p50 query)

(* ---------- E7: dynamic workload, many services, skew ---------- *)

let test_dynamic_skewed_services () =
  (* 32 services, strongly Zipf-skewed, on 8 cores, at a rate that
     saturates the bypass poller stuck with the hottest service (static
     binding) while leaving plenty of aggregate capacity. Lauberhorn
     activates workers on demand and shares all cores. *)
  let ncores, nservices, rate = (8, 32, 1_300_000.) in
  let lau =
    run_stack ~stack:(`Lauberhorn Lauberhorn.Sched_mirror.Push) ~ncores
      ~nservices ~rate ~zipf_s:1.6 ~min_workers:0 ()
  in
  let byp =
    run_stack ~stack:`Bypass ~ncores ~nservices ~rate ~zipf_s:1.6 ()
  in
  (* Bypass pins 12 services onto 4 pollers; the hot services share one
     poller with cold ones and head-of-line block. Lauberhorn shares
     all cores. *)
  checkb "lauberhorn completes everything" true
    (Harness.Recorder.completed lau.recorder
    = Harness.Recorder.sent lau.recorder);
  checkb
    (Printf.sprintf "tail: lauberhorn %d < bypass %d" (p99 lau) (p99 byp))
    true
    (p99 lau < p99 byp)

(* ---------- E4: DMA crossover visible end-to-end ---------- *)

let test_large_payloads_still_complete () =
  let lau =
    run_stack ~stack:(`Lauberhorn Lauberhorn.Sched_mirror.Push) ~ncores:4
      ~nservices:1 ~rate:5_000. ~payload:16_384 ()
  in
  checki "conservation"
    (Harness.Recorder.sent lau.recorder)
    (Harness.Recorder.completed lau.recorder);
  checkb "large payloads slower than small band" true
    (p50 lau > Sim.Units.us 3)

(* ---------- Ablation: coherent interconnect vs OS integration ------- *)

let test_static_ablation () =
  (* Single hot service at low load: the static coherent NIC matches
     Lauberhorn (the interconnect is doing the work). *)
  let lau_hot =
    run_stack ~stack:(`Lauberhorn Lauberhorn.Sched_mirror.Push) ~ncores:4
      ~nservices:1 ~rate:100_000. ()
  in
  let static_hot =
    run_stack ~stack:`Static ~ncores:4 ~nservices:1 ~rate:100_000. ()
  in
  checkb
    (Printf.sprintf "static p50 %d within 20%% of lauberhorn %d"
       (p50 static_hot) (p50 lau_hot))
    true
    (abs (p50 static_hot - p50 lau_hot) * 5 <= p50 lau_hot);
  (* Dynamic skewed mix: without OS integration the static split's tail
     explodes even though the fast path is identical. *)
  let lau_dyn =
    run_stack ~stack:(`Lauberhorn Lauberhorn.Sched_mirror.Push) ~ncores:8
      ~nservices:32 ~rate:1_000_000. ~zipf_s:1.6 ~min_workers:0 ()
  in
  let static_dyn =
    run_stack ~stack:`Static ~ncores:8 ~nservices:32 ~rate:1_000_000.
      ~zipf_s:1.6 ()
  in
  checkb
    (Printf.sprintf "dynamic tail: static %d >> lauberhorn %d"
       (p99 static_dyn) (p99 lau_dyn))
    true
    (p99 static_dyn > 3 * p99 lau_dyn)

(* E13: under 5% wire loss in each direction, every stack still
   completes every RPC — the client's retry layer masks the loss — and
   the retransmit counter shows the recovery actually ran. *)
let test_lossy_runs_complete () =
  let plan =
    Fault.Plan.make ~seed:9 ~wire:(Fault.Plan.link ~drop:0.05 ()) ()
  in
  List.iter
    (fun flavour ->
      let m =
        Experiments.Common.lossy_run ~ncores:4 ~rate:50_000.
          ~horizon:(Sim.Units.ms 5) ~plan flavour
      in
      let name = Experiments.Common.flavour_name flavour in
      checkb (name ^ ": sent some") true (m.Experiments.Common.sent > 0);
      checki
        (name ^ ": all completed")
        m.Experiments.Common.sent m.Experiments.Common.completed;
      checkb
        (name ^ ": retransmits nonzero")
        true
        (Experiments.Common.counter m "retransmits" > 0))
    [
      Experiments.Common.Linux Coherence.Interconnect.pcie_enzian;
      Experiments.Common.Bypass Coherence.Interconnect.pcie_enzian;
      Experiments.Common.Lauberhorn
        (Lauberhorn.Config.enzian, Lauberhorn.Sched_mirror.Push);
    ]

let () =
  Alcotest.run "integration"
    [
      ( "comparative",
        [
          Alcotest.test_case "latency ordering (E6)" `Slow
            test_latency_ordering;
          Alcotest.test_case "energy: no spinning (E8)" `Slow
            test_energy_no_spinning;
          Alcotest.test_case "tryagain timeout monotone (E5)" `Slow
            test_tryagain_timeout_monotone;
          Alcotest.test_case "mirror push beats query (E3)" `Slow
            test_mirror_push_beats_query;
          Alcotest.test_case "dynamic skewed services (E7)" `Slow
            test_dynamic_skewed_services;
          Alcotest.test_case "large payloads complete (E4)" `Slow
            test_large_payloads_still_complete;
          Alcotest.test_case "static-split ablation" `Slow
            test_static_ablation;
          Alcotest.test_case "lossy runs complete (E13)" `Slow
            test_lossy_runs_complete;
        ] );
    ]
