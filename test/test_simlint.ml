(* Seeded-regression suite for the simlint static checker (lib/simlint).
   Each test feeds a small fixture through [Simlint.check_source] at a
   path chosen to trigger (or suppress) the path-sensitive rule sets,
   and asserts the precise rule that must fire — so a future edit that
   silently disables a rule fails here, not in review. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

let rules_of findings = List.map (fun f -> f.Simlint.rule) findings

let count rule findings =
  List.length (List.filter (fun f -> String.equal f.Simlint.rule rule) findings)

let lint ~path src = Simlint.check_source ~path src

(* --- nondeterminism ------------------------------------------------ *)

let test_nondet_random () =
  let fs = lint ~path:"lib/core/thing.ml" "let roll () = Random.int 6\n" in
  checki "one finding" 1 (List.length fs);
  checki "nondeterminism" 1 (count "nondeterminism" fs)

let test_nondet_unix_clock () =
  let fs = lint ~path:"lib/sim/clock.ml" "let now () = Unix.gettimeofday ()\n" in
  checki "nondeterminism" 1 (count "nondeterminism" fs)

let test_nondet_randomized_hashtbl () =
  let fs =
    lint ~path:"lib/net/demux.ml"
      "let tbl () = Hashtbl.create ~random:true 16\n"
  in
  checki "nondeterminism" 1 (count "nondeterminism" fs)

let test_nondet_allowed_in_fault () =
  (* lib/fault owns seeded randomness; the same source must pass there. *)
  let src = "let roll () = Random.int 6\n" in
  checki "flagged in lib/core" 1
    (count "nondeterminism" (lint ~path:"lib/core/thing.ml" src));
  checki "allowed in lib/fault" 0
    (count "nondeterminism" (lint ~path:"lib/fault/plan.ml" src))

let test_nondet_domain_flagged () =
  (* Raw parallelism primitives are thread-scheduling-dependent: any
     direct use outside the deliberately-marked Shard_engine machinery
     must fire the nondeterminism rule. *)
  let fs =
    lint ~path:"lib/core/thing.ml"
      "let spawn f = Domain.spawn f\n\
       let guard = Mutex.create ()\n\
       let ctr = Atomic.make 0\n"
  in
  checki "three findings" 3 (count "nondeterminism" fs)

let test_nondet_ok_binding_escape () =
  (* [let[@nondet_ok] ...] scopes the escape to that binding only. *)
  let fs =
    lint ~path:"lib/sim/eng.ml"
      "let[@nondet_ok] barrier = Mutex.create ()\n\
       let bad = Condition.create ()\n"
  in
  checki "only unmarked binding flagged" 1 (count "nondeterminism" fs)

let test_nondet_ok_expression_escape () =
  let fs =
    lint ~path:"lib/sim/eng.ml"
      "let f () = ignore (Atomic.make 0 [@nondet_ok]); Atomic.make 1\n"
  in
  checki "marked expr clean, sibling flagged" 1 (count "nondeterminism" fs)

let test_nondet_ok_nested_binding () =
  (* The span collector must also see bindings nested inside functions,
     not just top-level structure items. *)
  let fs =
    lint ~path:"lib/sim/eng.ml"
      "let run () =\n\
      \  let[@nondet_ok] d = Domain.spawn (fun () -> ()) in\n\
      \  Domain.join d\n"
  in
  checki "nested escape covers its binding only" 1
    (count "nondeterminism" fs)

let test_nondet_sim_rng_clean () =
  let fs =
    lint ~path:"lib/sim/gen.ml"
      "let next rng = Sim.Rng.int rng 100\nlet seeded () = 42\n"
  in
  checki "clean" 0 (List.length fs)

(* --- polymorphic compare ------------------------------------------- *)

let test_poly_eq_flagged () =
  let fs = lint ~path:"lib/core/sched.ml" "let same a b = a = b\n" in
  checki "polymorphic-compare" 1 (count "polymorphic-compare" fs)

let test_poly_literal_exempt () =
  (* [x = 0] compiles to an immediate comparison — must not be flagged. *)
  let fs = lint ~path:"lib/core/sched.ml" "let zero x = x = 0\n" in
  checki "literal compare exempt" 0 (count "polymorphic-compare" fs)

let test_poly_list_mem () =
  let fs =
    lint ~path:"lib/coherence/dir.ml" "let has x xs = List.mem x xs\n"
  in
  checki "List.mem flagged" 1 (count "polymorphic-compare" fs)

let test_poly_scoped_to_core_dirs () =
  (* The poly rule applies to lib/{core,coherence,net,sim} only. *)
  let src = "let same a b = a = b\n" in
  checki "not applied in lib/harness" 0
    (count "polymorphic-compare" (lint ~path:"lib/harness/chaos.ml" src));
  checki "applied in lib/net" 1
    (count "polymorphic-compare" (lint ~path:"lib/net/frame.ml" src))

(* --- hot-path allocation discipline -------------------------------- *)

let test_hot_closure () =
  let fs =
    lint ~path:"lib/net/fast.ml"
      "let[@hot_path] f xs = List.map (fun x -> x + 1) xs\n"
  in
  checkb "closure flagged" true (count "hot-path" fs >= 1)

let test_hot_tuple_record_list () =
  let fs =
    lint ~path:"lib/net/fast.ml"
      "type r = { a : int; b : int }\n\
       let[@hot_path] f x = ((x, x), { a = x; b = x }, [ x ])\n"
  in
  checkb "tuple flagged" true (count "hot-path" fs >= 3)

let test_hot_string_building () =
  let fs =
    lint ~path:"lib/net/fast.ml"
      "let[@hot_path] f a b = a ^ Printf.sprintf \"%d\" b\n"
  in
  checki "both builders flagged" 2 (count "hot-path" fs)

let test_hot_partial_application () =
  let fs =
    lint ~path:"lib/net/fast.ml"
      "let add3 a b c = a + b + c\nlet[@hot_path] f x = add3 x 1\n"
  in
  checki "partial application flagged" 1 (count "hot-path" fs)

let test_hot_optional_args_not_partial () =
  (* Omitting an optional argument is default elimination, not closure
     construction — the arity table must not count it. *)
  let fs =
    lint ~path:"lib/net/fast.ml"
      "let sum ?(init = 0) a b = init + a + b\n\
       let[@hot_path] f x = sum x x\n"
  in
  checki "no finding" 0 (List.length fs)

let test_hot_alloc_ok_escape () =
  let fs =
    lint ~path:"lib/net/fast.ml"
      "type r = { a : int }\nlet[@hot_path] f x = ({ a = x } [@alloc_ok])\n"
  in
  checki "alloc_ok honoured" 0 (List.length fs)

let test_hot_error_path_exempt () =
  let fs =
    lint ~path:"lib/net/fast.ml"
      "let[@hot_path] f x =\n\
      \  if x < 0 then invalid_arg (Printf.sprintf \"bad %d\" x) else x\n"
  in
  checki "error path exempt" 0 (List.length fs)

let test_hot_untagged_ignored () =
  let fs =
    lint ~path:"lib/net/slow.ml" "let f xs = List.map (fun x -> x + 1) xs\n"
  in
  checki "untagged function unrestricted" 0 (List.length fs)

(* --- pool discipline ----------------------------------------------- *)

let test_pool_unpaired_acquire () =
  let fs =
    lint ~path:"lib/nic/drv.ml" "let grab pool = Pool.acquire pool\n"
  in
  checki "pool-discipline" 1 (count "pool-discipline" fs)

let test_pool_paired_ok () =
  let fs =
    lint ~path:"lib/nic/drv.ml"
      "let use pool f =\n\
      \  let b = Pool.acquire pool in\n\
      \  let r = f b in\n\
      \  Pool.release pool b;\n\
      \  r\n"
  in
  checki "paired acquire/release clean" 0 (count "pool-discipline" fs)

let test_pool_ownership_transfer () =
  let fs =
    lint ~path:"lib/nic/drv.ml"
      "let grab pool = (Pool.acquire pool [@ownership_transfer])\n"
  in
  checki "ownership_transfer honoured" 0 (count "pool-discipline" fs)

(* --- observability hook gating ------------------------------------- *)

let test_obs_unconditional_install () =
  (* Arming a hook with no Config consultation in lib/sim or
     lib/cluster must fire — the disarmed slot's zero cost is a
     library-wide claim. *)
  let src = "let arm eng p = Sim.Shard_engine.set_profiler eng (Some p)\n" in
  checki "flagged in lib/sim" 1
    (count "obs-gating" (lint ~path:"lib/sim/boot.ml" src));
  let src2 = "let arm sw h = Cluster.Switch.set_hooks sw (Some h)\n" in
  checki "flagged in lib/cluster" 1
    (count "obs-gating" (lint ~path:"lib/cluster/boot.ml" src2))

let test_obs_config_gated_ok () =
  let fs =
    lint ~path:"lib/sim/boot.ml"
      "let arm cfg eng p =\n\
      \  if cfg.Config.profile then Sim.Shard_engine.set_profiler eng (Some p)\n"
  in
  checki "Config-gated install clean" 0 (count "obs-gating" fs)

let test_obs_config_match_gated_ok () =
  let fs =
    lint ~path:"lib/cluster/boot.ml"
      "let arm sw h =\n\
      \  match Config.hooks () with\n\
      \  | true -> Cluster.Switch.set_hooks sw (Some h)\n\
      \  | false -> ()\n"
  in
  checki "match-on-Config install clean" 0 (count "obs-gating" fs)

let test_obs_gated_attr_escape () =
  let fs =
    lint ~path:"lib/sim/boot.ml"
      "let[@obs_gated] arm eng p = Sim.Shard_engine.set_profiler eng (Some p)\n\
       let bad sw cap = Cluster.Switch.tap sw ~port:0 cap\n"
  in
  checki "only the unmarked install flagged" 1 (count "obs-gating" fs)

let test_obs_tap_and_enable_flagged () =
  let fs =
    lint ~path:"lib/cluster/boot.ml"
      "let arm sw tr cap =\n\
      \  Cluster.Switch.tap sw ~port:1 cap;\n\
      \  Obs.Tracer.enable tr\n"
  in
  checki "tap + enable both flagged" 2 (count "obs-gating" fs)

let test_obs_rule_scoped_to_sim_cluster () =
  (* Experiments, harness and tests install hooks freely — the rule is
     about the library's always-on paths. *)
  let src = "let arm eng p = Sim.Shard_engine.set_profiler eng (Some p)\n" in
  checki "not applied in lib/experiments" 0
    (count "obs-gating" (lint ~path:"lib/experiments/e.ml" src));
  checki "not applied in test/" 0
    (count "obs-gating" (lint ~path:"test/t.ml" src))

(* --- cluster fault-seam discipline --------------------------------- *)

let test_seam_direct_call_flagged () =
  (* Arming a cluster fault seam anywhere in lib/ outside lib/fault is
     scripted chaos outside the plan. *)
  let src = "let wedge sw f = Cluster.Switch.set_port_wedge sw (Some f)\n" in
  checki "flagged in lib/cluster" 1
    (count "fault-seam" (lint ~path:"lib/cluster/boot.ml" src));
  checki "flagged in lib/experiments" 1
    (count "fault-seam" (lint ~path:"lib/experiments/e.ml" src));
  let src2 = "let cut fb p = Cluster.Fabric.set_link_fault fb (Some p)\n" in
  checki "set_link_fault flagged" 1
    (count "fault-seam" (lint ~path:"lib/harness/h.ml" src2))

let test_seam_all_entry_points () =
  let src =
    "let chaos sw fb eng ctl f =\n\
    \  Cluster.Switch.set_port_wedge sw (Some f);\n\
    \  Cluster.Switch.set_brownout sw None;\n\
    \  Cluster.Switch.set_partition sw None;\n\
    \  Cluster.Fabric.set_link_fault fb None;\n\
    \  Sim.Shard_engine.set_wire_fault eng None;\n\
    \  Cluster.Control.crash ctl;\n\
    \  Cluster.Control.restart ctl\n"
  in
  checki "all seven seams flagged" 7
    (count "fault-seam" (lint ~path:"lib/cluster/boot.ml" src))

let test_seam_fault_dir_exempt () =
  (* lib/fault (Rack_chaos) is the sanctioned installer. *)
  let src = "let arm sw f = Cluster.Switch.set_partition sw (Some f)\n" in
  checki "lib/fault exempt" 0
    (count "fault-seam" (lint ~path:"lib/fault/rack_chaos.ml" src));
  checki "test/ exempt" 0 (count "fault-seam" (lint ~path:"test/t.ml" src))

let test_seam_attr_escape () =
  (* Reviewed plumbing — a forwarding wrapper like
     Fabric.set_link_fault — carries [@fault_seam]. *)
  let fs =
    lint ~path:"lib/cluster/fb.ml"
      "let[@fault_seam] forward eng p = Sim.Shard_engine.set_wire_fault eng p\n\
       let bad ctl = Cluster.Control.crash ctl\n"
  in
  checki "only the unmarked call flagged" 1 (count "fault-seam" fs)

(* --- steer-seam ---------------------------------------------------- *)

let test_steer_seam_flagged () =
  (* Raw NIC dispatch-table writes outside lib/nic bypass the static
     verifier — the whole point of Steer_verify.install. *)
  let src = "let pin nic = Nic.Dma_nic.set_steering nic (fun _ -> 0)\n" in
  let fs = lint ~path:"lib/cluster/boot.ml" src in
  checki "flagged" 1 (count "steer-seam" fs);
  checkb "names the sanctioned path" true
    (List.exists
       (fun f ->
         String.equal f.Simlint.rule "steer-seam"
         && String.length f.Simlint.msg > 0)
       fs)

let test_steer_seam_exemptions () =
  let src = "let pin nic = Dma_nic.set_steering nic (fun _ -> 0)\n" in
  checki "lib/nic exempt (owns the seam)" 0
    (count "steer-seam" (lint ~path:"lib/nic/steer_verify.ml" src));
  checki "test/ exempt" 0 (count "steer-seam" (lint ~path:"test/t.ml" src));
  checki "bin/ exempt" 0 (count "steer-seam" (lint ~path:"bin/x.ml" src))

let test_steer_seam_attr_escape () =
  (* The reviewed legacy port->queue table in the bypass stack. *)
  let fs =
    lint ~path:"lib/baseline/bypass.ml"
      "let legacy nic f = (Nic.Dma_nic.set_steering nic f [@steer_seam])\n\
       let bad nic f = Nic.Dma_nic.set_steering nic f\n"
  in
  checki "only the unmarked call flagged" 1 (count "steer-seam" fs)

(* --- the repo itself is lint-clean --------------------------------- *)

let test_repo_lib_clean () =
  (* The dune @lint alias enforces this at build time; this test pins it
     from the test suite too so `dune runtest` alone catches drift.
     Resolve lib/ relative to the dune workspace root. *)
  let rec find_lib dir depth =
    if depth > 6 then None
    else
      let cand = Filename.concat dir "lib" in
      if
        Sys.file_exists cand && Sys.is_directory cand
        && Sys.file_exists (Filename.concat cand "simlint")
      then Some cand
      else find_lib (Filename.concat dir "..") (depth + 1)
  in
  match find_lib (Sys.getcwd ()) 0 with
  | None -> ()  (* sandboxed layout without sources; @lint still covers it *)
  | Some lib ->
      let fs = Simlint.run [ lib ] in
      List.iter
        (fun f -> Format.eprintf "%a@." Simlint.pp_finding f)
        fs;
      checki "lib/ is lint-clean" 0 (List.length fs)

(* --- finding metadata ---------------------------------------------- *)

let test_finding_positions () =
  let fs =
    lint ~path:"lib/core/x.ml" "let a = 1\nlet same a b = a = b\n"
  in
  match fs with
  | [ f ] ->
      checki "line" 2 f.Simlint.line;
      Alcotest.check Alcotest.string "rule" "polymorphic-compare"
        f.Simlint.rule
  | fs ->
      Alcotest.failf "expected exactly one finding, got %d (%s)"
        (List.length fs)
        (String.concat ", " (rules_of fs))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "simlint"
    [
      ( "nondeterminism",
        [
          tc "global Random flagged" test_nondet_random;
          tc "Unix clock flagged" test_nondet_unix_clock;
          tc "randomized Hashtbl flagged" test_nondet_randomized_hashtbl;
          tc "lib/fault exempt" test_nondet_allowed_in_fault;
          tc "Domain/Mutex/Atomic flagged" test_nondet_domain_flagged;
          tc "[@nondet_ok] binding escape" test_nondet_ok_binding_escape;
          tc "[@nondet_ok] expression escape" test_nondet_ok_expression_escape;
          tc "[@nondet_ok] nested binding" test_nondet_ok_nested_binding;
          tc "seeded Sim.Rng clean" test_nondet_sim_rng_clean;
        ] );
      ( "polymorphic-compare",
        [
          tc "= flagged" test_poly_eq_flagged;
          tc "literal operand exempt" test_poly_literal_exempt;
          tc "List.mem flagged" test_poly_list_mem;
          tc "scoped to core dirs" test_poly_scoped_to_core_dirs;
        ] );
      ( "hot-path",
        [
          tc "anonymous closure" test_hot_closure;
          tc "tuple/record/list cells" test_hot_tuple_record_list;
          tc "string building" test_hot_string_building;
          tc "partial application" test_hot_partial_application;
          tc "optional args are not partial" test_hot_optional_args_not_partial;
          tc "[@alloc_ok] escape" test_hot_alloc_ok_escape;
          tc "error paths exempt" test_hot_error_path_exempt;
          tc "untagged unrestricted" test_hot_untagged_ignored;
        ] );
      ( "pool-discipline",
        [
          tc "unpaired acquire" test_pool_unpaired_acquire;
          tc "paired clean" test_pool_paired_ok;
          tc "[@ownership_transfer]" test_pool_ownership_transfer;
        ] );
      ( "obs-gating",
        [
          tc "unconditional install flagged" test_obs_unconditional_install;
          tc "Config-gated if clean" test_obs_config_gated_ok;
          tc "Config-gated match clean" test_obs_config_match_gated_ok;
          tc "[@obs_gated] escape" test_obs_gated_attr_escape;
          tc "tap and enable flagged" test_obs_tap_and_enable_flagged;
          tc "scoped to lib/sim + lib/cluster" test_obs_rule_scoped_to_sim_cluster;
        ] );
      ( "fault-seam",
        [
          tc "direct seam call flagged" test_seam_direct_call_flagged;
          tc "every entry point flagged" test_seam_all_entry_points;
          tc "lib/fault and test/ exempt" test_seam_fault_dir_exempt;
          tc "[@fault_seam] escape" test_seam_attr_escape;
        ] );
      ( "steer-seam",
        [
          tc "raw set_steering flagged" test_steer_seam_flagged;
          tc "lib/nic, test/, bin/ exempt" test_steer_seam_exemptions;
          tc "[@steer_seam] escape" test_steer_seam_attr_escape;
        ] );
      ( "repo",
        [
          tc "lib/ lint-clean" test_repo_lib_clean;
          tc "finding positions" test_finding_positions;
        ] );
    ]
