(* Tests for the rack layer (lib/cluster): the ToR switch's determinism
   and conservation contracts as QCheck properties, seeded control-plane
   lifecycle regressions, a full-stack kill-during-in-flight run on a
   two-host rack, and the rack-level determinism fuzz across domain
   counts and scheduler backends. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

(* ---------- switch properties ---------- *)

(* A scripted arrival: at time [at], a frame enters on [port] destined
   for output [dst] (routed by UDP destination port), tagged [id]. *)
type arrival = { at : int; port : int; dst : int; id : int }

let dev_endpoint i =
  {
    Net.Frame.mac = Net.Mac_addr.of_int64 (Int64.of_int (0x02_00_00_00_07_00 + i));
    ip = Net.Ip_addr.of_int (0x0A000700 + i) (* 10.0.7.i *);
    port = 40_000 + i;
  }

let arrival_frame a =
  Net.Frame.make ~src:(dev_endpoint a.port)
    ~dst:{ (dev_endpoint a.dst) with Net.Frame.port = 50_000 + a.dst }
    (Bytes.of_string (Printf.sprintf "f%d" a.id))

(* Run a switch over the arrival script (injected in list order, which
   fixes the engine's tie-break seqs) and return the delivery log plus
   final stats. *)
let run_switch ?cap_in ?cap_out ~nports arrivals =
  let engine = Sim.Engine.create () in
  let log = ref [] in
  let sw =
    Cluster.Switch.create engine
      ~ports:
        (Array.init nports (fun i ->
             {
               Cluster.Switch.latency = Sim.Units.us 1;
               tx = Sim.Units.ns (100 + (10 * i));
             }))
      ?cap_in ?cap_out
      ~route:(fun f ->
        let p = f.Net.Frame.udp.Net.Udp.dst_port - 50_000 in
        if p >= 0 && p < nports then Some p else None)
      ~deliver:(fun ~port f ->
        log :=
          (Sim.Engine.now engine, port, Bytes.to_string f.Net.Frame.payload)
          :: !log)
      ()
  in
  List.iter
    (fun a ->
      ignore
        (Sim.Engine.schedule_at engine ~at:a.at (fun () ->
             Cluster.Switch.ingress sw ~port:a.port (arrival_frame a))))
    arrivals;
  Sim.Engine.run engine ~until:(Sim.Units.ms 50) (* long drain: idle *);
  (List.rev !log, Cluster.Switch.stats sw)

let pp_log log =
  String.concat ";"
    (List.map (fun (t, p, tag) -> Printf.sprintf "%d>%d@%s" t p tag) log)

let arb_arrivals =
  let gen =
    QCheck.Gen.(
      pair (int_range 2 5)
        (list_size (int_range 1 40)
           (tup3
              (map (fun x -> 10 + x) (int_bound 5_000))
              (int_bound 7) (int_bound 7))))
  in
  QCheck.make
    ~print:(fun (nports, l) ->
      Printf.sprintf "ports=%d %s" nports
        (String.concat " "
           (List.map (fun (at, p, d) -> Printf.sprintf "(%d:%d>%d)" at p d) l)))
    gen

(* A physical wire serializes: two frames cannot arrive at the same
   instant on the same port, and the (arrival-time, port) contract is
   only a function where that pair is unique. Bump colliding arrivals
   forward a nanosecond at a time — deterministically, so both runs of
   a case see the same script. *)
let arrivals_of (nports, raw) =
  let seen = Hashtbl.create 64 in
  List.mapi
    (fun i (at, p, d) ->
      let port = p mod nports in
      let at = ref at in
      while Hashtbl.mem seen (!at, port) do incr at done;
      Hashtbl.replace seen (!at, port) ();
      { at = !at; port; dst = d mod nports; id = i })
    raw

(* Delivery order is a pure function of (arrival time, ingress port):
   injecting the same script in reverse order — which flips every
   same-instant engine tie-break — must give the identical log. *)
let qcheck_switch_order_deterministic =
  QCheck.Test.make ~count:120
    ~name:"switch delivery order ignores injection order" arb_arrivals
    (fun case ->
      let arrivals = arrivals_of case in
      let nports = fst case in
      let log_fwd, _ = run_switch ~nports arrivals in
      let log_rev, _ = run_switch ~nports (List.rev arrivals) in
      String.equal (pp_log log_fwd) (pp_log log_rev))

(* With ample queues nothing drops: every frame is delivered exactly
   once (no loss, no duplication) and the drop counters stay zero. *)
let qcheck_switch_conserves_ample =
  QCheck.Test.make ~count:120 ~name:"switch conserves frames (ample queues)"
    arb_arrivals
    (fun case ->
      let arrivals = arrivals_of case in
      let log, st = run_switch ~nports:(fst case) ~cap_in:4096 ~cap_out:4096 arrivals in
      let delivered_tags = List.map (fun (_, _, tag) -> tag) log in
      let expect = List.map (fun a -> Printf.sprintf "f%d" a.id) arrivals in
      st.Cluster.Switch.drop_in = 0
      && st.Cluster.Switch.drop_out = 0
      && st.Cluster.Switch.unroutable = 0
      && st.Cluster.Switch.ingressed = List.length arrivals
      && st.Cluster.Switch.delivered = List.length arrivals
      && List.sort compare delivered_tags = List.sort compare expect)

(* With single-slot queues drops happen — but they are counted, never
   silent: ingressed = delivered + drop_in + drop_out after drain, and
   each surviving frame is still delivered exactly once. *)
let qcheck_switch_counts_drops =
  QCheck.Test.make ~count:120 ~name:"switch overflow drops are counted"
    arb_arrivals
    (fun case ->
      let arrivals = arrivals_of case in
      let log, st = run_switch ~nports:(fst case) ~cap_in:1 ~cap_out:1 arrivals in
      let tags = List.map (fun (_, _, tag) -> tag) log in
      st.Cluster.Switch.ingressed = List.length arrivals
      && st.Cluster.Switch.ingressed
         = st.Cluster.Switch.delivered + st.Cluster.Switch.drop_in
           + st.Cluster.Switch.drop_out
      && List.length (List.sort_uniq compare tags) = List.length tags)

(* Seeded regression pinning the tie-break itself: three frames enter
   at the same instant on ports 2, 1, 0 (injected in that order, all
   bound for port 0) and must come out 0, 1, 2. *)
let test_switch_tiebreak () =
  let arrivals =
    [
      { at = 100; port = 2; dst = 0; id = 2 };
      { at = 100; port = 1; dst = 0; id = 1 };
      { at = 100; port = 0; dst = 0; id = 0 };
    ]
  in
  let log, st = run_switch ~nports:3 arrivals in
  checki "all delivered" 3 st.Cluster.Switch.delivered;
  Alcotest.(check (list string))
    "ascending ingress-port order"
    [ "f0"; "f1"; "f2" ]
    (List.map (fun (_, _, tag) -> tag) log)

let test_switch_unroutable_counted () =
  let engine = Sim.Engine.create () in
  let delivered = ref 0 in
  let sw =
    Cluster.Switch.create engine
      ~ports:[| { Cluster.Switch.latency = 1000; tx = 100 } |]
      ~route:(fun _ -> None)
      ~deliver:(fun ~port:_ _ -> incr delivered)
      ()
  in
  ignore
    (Sim.Engine.schedule_at engine ~at:10 (fun () ->
         Cluster.Switch.ingress sw ~port:0
           (arrival_frame { at = 10; port = 0; dst = 0; id = 0 })));
  Sim.Engine.run engine ~until:(Sim.Units.ms 1);
  let st = Cluster.Switch.stats sw in
  checki "nothing delivered" 0 !delivered;
  checki "unroutable counted" 1 st.Cluster.Switch.unroutable;
  checki "conservation" st.Cluster.Switch.ingressed
    (st.Cluster.Switch.delivered + st.Cluster.Switch.drop_in
   + st.Cluster.Switch.drop_out + st.Cluster.Switch.unroutable)

(* ---------- control-plane lifecycle regressions ---------- *)

(* A probe loop against scripted host liveness: probes are answered
   after [ack_delay] while the host's flag is up. *)
let make_ctl ?(hosts = 3) ?(probe_period = 1_000) ?(ack_delay = 100) engine =
  let alive = Array.make hosts true in
  let ctl_ref = ref None in
  let dead_log = ref [] in
  let alive_log = ref [] in
  let ctl =
    Cluster.Control.create engine ~hosts ~probe_period
      ~probe:(fun ~host ->
        if alive.(host) then
          ignore
            (Sim.Engine.schedule_after engine ~after:ack_delay (fun () ->
                 match !ctl_ref with
                 | Some c -> Cluster.Control.ack c ~host
                 | None -> ())))
      ~on_dead:(fun ~host ->
        dead_log := (host, Sim.Engine.now engine) :: !dead_log)
      ~on_alive:(fun ~host ->
        alive_log := (host, Sim.Engine.now engine) :: !alive_log)
      ()
  in
  ctl_ref := Some ctl;
  Array.iteri (fun h _ -> Cluster.Control.register ctl ~host:h) alive;
  Cluster.Control.start ctl;
  (ctl, alive, dead_log, alive_log)

let test_control_detects_within_one_period () =
  let engine = Sim.Engine.create () in
  let period = 1_000 in
  let ctl, alive, dead_log, _ = make_ctl ~probe_period:period engine in
  let kill_at = 3_500 in
  ignore
    (Sim.Engine.schedule_at engine ~at:kill_at (fun () -> alive.(1) <- false));
  Sim.Engine.run engine ~until:10_000;
  checkb "host 1 dead" false (Cluster.Control.alive ctl ~host:1);
  checkb "others alive" true
    (Cluster.Control.alive ctl ~host:0 && Cluster.Control.alive ctl ~host:2);
  checki "exactly one death" 1 (Cluster.Control.deaths ctl);
  (* the probe at 4000 goes unanswered; the reap at 5000 declares the
     death — one period after the first probe the crash ate *)
  let death_t = List.assoc 1 !dead_log in
  checkb "declared within one period of the eaten probe" true
    (death_t - kill_at <= 2 * period);
  checki "declared at the reap tick" 5_000 death_t

let test_control_reregister_restores_steering () =
  let engine = Sim.Engine.create () in
  let ctl, alive, _, alive_log = make_ctl ~hosts:2 engine in
  ignore (Sim.Engine.schedule_at engine ~at:1_500 (fun () -> alive.(0) <- false));
  Sim.Engine.run engine ~until:6_000;
  checkb "host 0 dead" false (Cluster.Control.alive ctl ~host:0);
  (* while dead, the balancer only ever picks host 1 *)
  for _ = 1 to 8 do
    Alcotest.(check (option int)) "steered around corpse" (Some 1)
      (Cluster.Control.pick ctl)
  done;
  (* an ack from beyond the grave must not resurrect *)
  let acks_before = Cluster.Control.acks_received ctl in
  Cluster.Control.ack ctl ~host:0;
  checkb "post-mortem ack ignored" false (Cluster.Control.alive ctl ~host:0);
  checki "post-mortem ack not counted" acks_before
    (Cluster.Control.acks_received ctl);
  (* respawn: re-register resurrects and steering resumes *)
  alive.(0) <- true;
  Cluster.Control.register ctl ~host:0;
  checkb "re-registered host alive" true (Cluster.Control.alive ctl ~host:0);
  checkb "on_alive fired for the respawn" true
    (List.exists (fun (h, t) -> h = 0 && t > 1_500) !alive_log);
  let picks = List.init 4 (fun _ -> Cluster.Control.pick ctl) in
  checkb "steering includes host 0 again" true
    (List.mem (Some 0) picks);
  Sim.Engine.run engine ~until:20_000;
  checkb "respawned host survives later probes" true
    (Cluster.Control.alive ctl ~host:0)

let test_control_shedding_steers_away () =
  let engine = Sim.Engine.create () in
  let ctl, _, _, _ = make_ctl ~hosts:3 engine in
  Cluster.Control.set_shedding ctl ~host:2 true;
  let picks = List.init 6 (fun _ -> Cluster.Control.pick ctl) in
  checkb "shedding host skipped" false (List.mem (Some 2) picks);
  checkb "shedding host still alive" true (Cluster.Control.alive ctl ~host:2);
  Cluster.Control.set_shedding ctl ~host:2 false;
  let picks = List.init 3 (fun _ -> Cluster.Control.pick ctl) in
  checkb "steering resumes after shed clears" true (List.mem (Some 2) picks)

(* ---------- full-stack: kill during in-flight RPCs ---------- *)

(* A two-host rack under load; host 0's service is killed mid-run and
   respawned. Every RPC must resolve — a reply, or an explicit
   err_dead reject converted into a re-steered retry — with zero
   silent losses anywhere on the path. Reuses E17's rack builder so
   the test exercises exactly what the experiment ships. *)
let test_rack_kill_during_inflight () =
  let r = Experiments.Rack.make_rack ~domains:1 ~hosts:2 () in
  let victim = 0 in
  let setup = r.Experiments.Rack.servers.(0).Experiments.Common.setup in
  let service_id = Workload.Scenario.service_id_of setup ~service_idx:0 in
  let kill_at = Sim.Units.ms 2 in
  let respawn_at = Sim.Units.ms 5 in
  ignore
    (Sim.Engine.schedule_at
       (Cluster.Fabric.host_engine r.Experiments.Rack.fabric victim)
       ~at:kill_at
       (fun () ->
         r.Experiments.Rack.alive.(victim) <- false;
         r.Experiments.Rack.servers.(victim).Experiments.Common.kill_service
           ~service_id));
  ignore
    (Sim.Engine.schedule_at
       (Cluster.Fabric.host_engine r.Experiments.Rack.fabric victim)
       ~at:respawn_at
       (fun () ->
         r.Experiments.Rack.servers.(victim).Experiments.Common.restart_service
           ~service_id;
         r.Experiments.Rack.alive.(victim) <- true;
         Cluster.Fabric.post_to_master r.Experiments.Rack.fabric ~host:victim
           (fun () ->
             Cluster.Control.register r.Experiments.Rack.control ~host:victim)));
  Experiments.Rack.setup_arrivals r
    ~timeout:(Some (Sim.Units.us 200, 20))
    ~rate:300_000. ~seed:97;
  Cluster.Fabric.run r.Experiments.Rack.fabric
    ~until:(Sim.Units.ms 10 + Sim.Units.ms 30);
  Experiments.Rack.finish r;
  let c = r.Experiments.Rack.client in
  (* in-flight RPCs on the corpse came back as explicit rejects... *)
  checkb "err_dead rejects observed" true (Harness.Client.rejected c > 0);
  checkb "rejects became retries" true (Harness.Client.retransmits c > 0);
  (* ...and the ledger balances: nothing was silently lost *)
  checki "completed + abandoned = sent"
    (Harness.Client.sent c)
    (Harness.Client.completed c + Harness.Client.abandoned c);
  checki "none outstanding" 0 (Harness.Client.outstanding c);
  let st =
    Cluster.Switch.stats (Cluster.Fabric.switch r.Experiments.Rack.fabric)
  in
  checki "no switch ingress drops" 0 st.Cluster.Switch.drop_in;
  checki "no switch egress drops" 0 st.Cluster.Switch.drop_out;
  checki "no unroutable frames" 0 st.Cluster.Switch.unroutable;
  checki "no undeliverable frames" 0
    (Cluster.Fabric.undeliverable r.Experiments.Rack.fabric);
  (* the health check saw the death in time, and steering reacted *)
  let death_t =
    match List.assoc_opt victim (List.rev r.Experiments.Rack.dead_at) with
    | Some t -> t
    | None -> Alcotest.fail "death never detected"
  in
  checkb "dead within two probe periods of the kill" true
    (death_t - kill_at <= 2 * Experiments.Rack.probe_period);
  checki "victim never steered while dead" 0
    (r.Experiments.Rack.steered_at_rereg.(victim)
    - r.Experiments.Rack.steered_at_death.(victim));
  checkb "steering resumed after re-register" true
    ((Cluster.Control.steered r.Experiments.Rack.control).(victim)
    > r.Experiments.Rack.steered_at_rereg.(victim));
  checkb "victim alive at the end" true
    (Cluster.Control.alive r.Experiments.Rack.control ~host:victim)

(* ---------- rack determinism across domains and schedulers ---------- *)

(* A lightweight rack: echo devices (not full Lauberhorn hosts, to keep
   60 cases x 6 configurations cheap) behind real Fabric wiring — the
   switch, the lookahead matrix and the cross-shard posts are exactly
   the production paths. Digest = uplink delivery log + per-host rx
   counts + switch stats; must be byte-identical for every domain
   count and for both scheduler backends. *)
type shot = { t : int; dst : int }

let client_ep =
  {
    Net.Frame.mac = Net.Mac_addr.of_int64 0x02_00_00_00_99_01L;
    ip = Net.Ip_addr.of_int 0x0A000901 (* 10.0.9.1 *);
    port = 7_777;
  }

let run_light_rack ~domains ~sched ~hosts ~links plan =
  let host_links =
    Array.map (fun l -> { Cluster.Switch.latency = l; tx = 100 }) links
  in
  let fabric = Cluster.Fabric.create ~domains ~sched ~host_links ~hosts () in
  let master = Cluster.Fabric.master_engine fabric in
  let log = ref [] in
  let rx = Array.make hosts 0 in
  for h = 0 to hosts - 1 do
    Cluster.Fabric.connect_host fabric h
      ~ingress:(fun frame ->
        rx.(h) <- rx.(h) + 1;
        let e = Cluster.Fabric.host_engine fabric h in
        ignore
          (Sim.Engine.schedule_after e
             ~after:(200 + (37 * h))
             (fun () ->
               Cluster.Fabric.host_egress fabric h
                 (Net.Frame.make
                    ~src:(Net.Frame.dst_endpoint frame)
                    ~dst:(Net.Frame.src_endpoint frame)
                    frame.Net.Frame.payload))))
  done;
  Cluster.Fabric.connect_uplink fabric (fun frame ->
      log :=
        (Sim.Engine.now master, Bytes.to_string frame.Net.Frame.payload)
        :: !log);
  List.iteri
    (fun i s ->
      ignore
        (Sim.Engine.schedule_at master ~at:s.t (fun () ->
             Cluster.Fabric.uplink_send fabric
               (Net.Frame.make ~src:client_ep
                  ~dst:
                    (Cluster.Fabric.host_endpoint fabric (s.dst mod hosts)
                       ~port:9_000)
                  (Bytes.of_string (Printf.sprintf "m%d" i))))))
    plan;
  Cluster.Fabric.run fabric ~until:(Sim.Units.ms 2);
  let st = Cluster.Switch.stats (Cluster.Fabric.switch fabric) in
  Printf.sprintf "log=%s rx=%s in=%d out=%d dropi=%d dropo=%d undeliv=%d"
    (String.concat ";"
       (List.rev_map (fun (t, tag) -> Printf.sprintf "%d@%s" t tag) !log))
    (String.concat "," (Array.to_list (Array.map string_of_int rx)))
    st.Cluster.Switch.ingressed st.Cluster.Switch.delivered
    st.Cluster.Switch.drop_in st.Cluster.Switch.drop_out
    (Cluster.Fabric.undeliverable fabric)

let arb_rack_case =
  let gen =
    QCheck.Gen.(
      tup3 (int_range 2 4)
        (list_size (int_range 2 4)
           (oneofl [ 1_000; 2_000; 3_000; 5_000 ]))
        (list_size (int_range 1 30)
           (pair (map (fun x -> 10 + x) (int_bound 100_000)) (int_bound 7))))
  in
  QCheck.make
    ~print:(fun (hosts, links, raw) ->
      Printf.sprintf "hosts=%d links=[%s] shots=%s" hosts
        (String.concat "," (List.map string_of_int links))
        (String.concat " "
           (List.map (fun (t, d) -> Printf.sprintf "(%d>%d)" t d) raw)))
    gen

let qcheck_rack_determinism =
  QCheck.Test.make ~count:60
    ~name:"rack runs byte-identical across domains and schedulers"
    arb_rack_case
    (fun (hosts, link_list, raw) ->
      let links =
        Array.init hosts (fun h ->
            List.nth link_list (h mod List.length link_list))
      in
      let plan = List.map (fun (t, dst) -> { t; dst }) raw in
      let reference =
        run_light_rack ~domains:1 ~sched:Sim.Scheduler.Heap ~hosts ~links plan
      in
      List.for_all
        (fun (domains, sched) ->
          String.equal reference
            (run_light_rack ~domains ~sched ~hosts ~links plan))
        [
          (2, Sim.Scheduler.Heap);
          (4, Sim.Scheduler.Heap);
          (8, Sim.Scheduler.Heap);
          (1, Sim.Scheduler.Wheel);
          (4, Sim.Scheduler.Wheel);
        ])

(* ---------- cross-shard span stitching (E18's invariant) ---------- *)

(* A traced full-stack rack: Lauberhorn hosts behind the switch, the
   tracing plane armed, a handful of steered RPCs fired from the
   uplink at seeded times. Returns whether every completed RPC's
   stitched stage chain tiles its measured latency exactly, plus a
   digest (completions, stitch verdicts, profiler report) that must be
   byte-identical across domain counts and scheduler backends. *)
let run_traced_rack ~domains ~sched ~hosts ~n_rpcs ~seed =
  let obs = Obs.Tracer.create () in
  let rack = Experiments.Rack.make_rack ~domains ~sched ~obs ~hosts () in
  let fabric = rack.Experiments.Rack.fabric in
  let prof = Obs.Profiler.create ~shards:(hosts + 1) in
  Obs.Profiler.install prof (Cluster.Fabric.shard fabric);
  let master = Cluster.Fabric.master_engine fabric in
  let setup = rack.Experiments.Rack.servers.(0).Experiments.Common.setup in
  let service_id = Workload.Scenario.service_id_of setup ~service_idx:0 in
  let rng = Sim.Rng.create ~seed in
  let completions = ref [] in
  for _ = 1 to n_rpcs do
    (* past the registration window, spread over ~1 ms *)
    let at = Sim.Units.us 50 + Sim.Rng.int rng ~bound:(Sim.Units.ms 1) in
    ignore
      (Sim.Engine.schedule_at master ~at (fun () ->
           let t0 = Sim.Engine.now master in
           let id = ref 0L in
           id :=
             Harness.Client.call_id rack.Experiments.Rack.client ~service_id
               ~method_id:0 ~port:rack.Experiments.Rack.service_port
               (Rpc.Value.Blob (Bytes.make 32 'q'))
               (fun _ ->
                 let latency = Sim.Engine.now master - t0 in
                 Sim.Histogram.record rack.Experiments.Rack.latencies latency;
                 completions := (!id, latency) :: !completions)))
  done;
  Cluster.Fabric.run fabric ~until:(Sim.Units.ms 4);
  Experiments.Rack.finish rack;
  let parts =
    Array.to_list
      (Array.mapi
         (fun h s -> (Printf.sprintf "host%d" h, s.Experiments.Common.tracer))
         rack.Experiments.Rack.servers)
  in
  let stitches = Obs.Stitch.assemble ~root:obs ~parts in
  let verdict (id, latency) =
    match
      List.find_opt
        (fun (s : Obs.Stitch.t) -> Int64.equal s.Obs.Stitch.trace id)
        stitches
    with
    | Some s -> Obs.Stitch.exact s && s.Obs.Stitch.stage_sum = latency
    | None -> false
  in
  let verdicts =
    List.rev_map
      (fun ((id, latency) as c) ->
        Printf.sprintf "%Ld:%d:%b" id latency (verdict c))
      !completions
  in
  let all_exact =
    List.length !completions = n_rpcs && List.for_all verdict !completions
  in
  let digest =
    String.concat "\n"
      ((Printf.sprintf "completed=%d stitched=%d" (List.length !completions)
          (List.length stitches)
       :: verdicts)
      @ Obs.Profiler.report_lines prof)
  in
  (all_exact, digest)

let arb_traced_case =
  QCheck.make
    ~print:(fun (hosts, n_rpcs, seed) ->
      Printf.sprintf "hosts=%d rpcs=%d seed=%d" hosts n_rpcs seed)
    QCheck.Gen.(tup3 (int_range 2 3) (int_range 1 8) (int_range 0 1000))

let qcheck_stitching_exact_and_deterministic =
  QCheck.Test.make ~count:6
    ~name:
      "traced racks stitch exactly and identically across domains/schedulers"
    arb_traced_case
    (fun (hosts, n_rpcs, seed) ->
      let exact, reference =
        run_traced_rack ~domains:1 ~sched:Sim.Scheduler.Heap ~hosts ~n_rpcs
          ~seed
      in
      exact
      && List.for_all
           (fun (domains, sched) ->
             let exact', digest =
               run_traced_rack ~domains ~sched ~hosts ~n_rpcs ~seed
             in
             exact' && String.equal reference digest)
           [
             (2, Sim.Scheduler.Heap);
             (4, Sim.Scheduler.Heap);
             (1, Sim.Scheduler.Wheel);
             (4, Sim.Scheduler.Wheel);
           ])

let qsuite name t = (name, [ QCheck_alcotest.to_alcotest t ])

let () =
  Alcotest.run "cluster"
    [
      ( "switch",
        [
          Alcotest.test_case "same-instant tie-break by port" `Quick
            test_switch_tiebreak;
          Alcotest.test_case "unroutable counted" `Quick
            test_switch_unroutable_counted;
        ] );
      qsuite "switch order determinism" qcheck_switch_order_deterministic;
      qsuite "switch conservation" qcheck_switch_conserves_ample;
      qsuite "switch overflow accounting" qcheck_switch_counts_drops;
      ( "control",
        [
          Alcotest.test_case "death detected within one probe period" `Quick
            test_control_detects_within_one_period;
          Alcotest.test_case "re-register restores steering" `Quick
            test_control_reregister_restores_steering;
          Alcotest.test_case "shedding steers away" `Quick
            test_control_shedding_steers_away;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "kill during in-flight RPCs" `Quick
            test_rack_kill_during_inflight;
        ] );
      qsuite "rack determinism" qcheck_rack_determinism;
      qsuite "stitching" qcheck_stitching_exact_and_deterministic;
    ]
