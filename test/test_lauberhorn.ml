(* Tests for the Lauberhorn core library: configuration, the CONTROL
   line message layout, the endpoint protocol machine, the scheduling
   mirror, NIC scheduling policy, the hardware pipeline, and the full
   stack end to end. *)

let check = Alcotest.check
let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

(* ---------- Config ---------- *)

let test_config_defaults_match_paper () =
  let c = Lauberhorn.Config.enzian in
  checki "15ms timeout" (Sim.Units.ms 15) c.Lauberhorn.Config.tryagain_timeout;
  checki "4KiB threshold" 4096 c.Lauberhorn.Config.dma_threshold;
  (* Endpoint window should be in the same band as the DMA threshold,
     so the fallback point is consistent (section 6). *)
  let window = Lauberhorn.Config.endpoint_window c in
  checkb "window ~ threshold" true (window >= 3500 && window <= 4608)

let test_config_updates_validate () =
  checkb "bad timeout" true
    (try
       ignore (Lauberhorn.Config.with_timeout Lauberhorn.Config.enzian 0);
       false
     with Invalid_argument _ -> true);
  let c = Lauberhorn.Config.with_dma_threshold Lauberhorn.Config.enzian 512 in
  checki "threshold set" 512 c.Lauberhorn.Config.dma_threshold

(* ---------- Message ---------- *)

let sample_request ?(inline = Net.Slice.of_string "abc") () =
  {
    Lauberhorn.Message.rpc_id = 77L;
    service_id = 3;
    method_id = 1;
    code_ptr = 0x4000_1234L;
    data_ptr = 0x7000_5678L;
    total_args = 300;
    inline_args = inline;
    aux_count = 2;
    via_dma = false;
  }

let test_message_request_roundtrip () =
  let msg = Lauberhorn.Message.Request (sample_request ()) in
  let line = Lauberhorn.Message.encode ~line_bytes:128 msg in
  checki "line-sized" 128 (Bytes.length line);
  match Lauberhorn.Message.decode line with
  | Ok (Lauberhorn.Message.Request r) ->
      check Alcotest.int64 "rpc_id" 77L r.Lauberhorn.Message.rpc_id;
      checki "service" 3 r.Lauberhorn.Message.service_id;
      check Alcotest.int64 "code_ptr" 0x4000_1234L
        r.Lauberhorn.Message.code_ptr;
      check Alcotest.string "inline args" "abc"
        (Net.Slice.to_string r.Lauberhorn.Message.inline_args);
      checki "aux" 2 r.Lauberhorn.Message.aux_count;
      checkb "dma flag" false r.Lauberhorn.Message.via_dma
  | Ok m -> Alcotest.failf "wrong kind: %a" Lauberhorn.Message.pp m
  | Error e -> Alcotest.fail e

let test_message_markers () =
  List.iter
    (fun (msg, name) ->
      match
        Lauberhorn.Message.decode
          (Lauberhorn.Message.encode ~line_bytes:128 msg)
      with
      | Ok m when Lauberhorn.Message.equal m msg -> ()
      | Ok m -> Alcotest.failf "%s decoded as %a" name Lauberhorn.Message.pp m
      | Error e -> Alcotest.fail e)
    [
      (Lauberhorn.Message.Tryagain, "tryagain");
      (Lauberhorn.Message.Retire, "retire");
      (Lauberhorn.Message.Kernel_dispatch (sample_request ()), "dispatch");
    ]

let test_message_response_roundtrip () =
  let resp =
    {
      Lauberhorn.Message.resp_rpc_id = 99L;
      status = 2;
      total_len = 1000;
      inline_body = Net.Slice.of_string "xyz";
      resp_aux_count = 8;
    }
  in
  let line = Lauberhorn.Message.encode_response ~line_bytes:128 resp in
  match Lauberhorn.Message.decode_response line with
  | Ok r ->
      check Alcotest.int64 "id" 99L r.Lauberhorn.Message.resp_rpc_id;
      checki "status" 2 r.Lauberhorn.Message.status;
      checki "total" 1000 r.Lauberhorn.Message.total_len;
      check Alcotest.string "inline" "xyz"
        (Net.Slice.to_string r.Lauberhorn.Message.inline_body)
  | Error e -> Alcotest.fail e

let test_message_capacity_enforced () =
  let cap = Lauberhorn.Message.request_inline_capacity ~line_bytes:64 in
  checki "64B line capacity" 24 cap;
  checkb "overflow rejected" true
    (try
       ignore
         (Lauberhorn.Message.encode ~line_bytes:64
            (Lauberhorn.Message.Request
               (sample_request
                  ~inline:(Net.Slice.of_bytes (Bytes.make (cap + 1) 'x'))
                  ())));
       false
     with Invalid_argument _ -> true)

let message_roundtrip_property =
  QCheck.Test.make ~name:"request lines decode to what was staged"
    ~count:300
    QCheck.(
      quad (int_bound 0xffff) (int_bound 50)
        (string_of_size (Gen.int_range 0 80))
        bool)
    (fun (service_id, aux_count, inline, via_dma) ->
      let msg =
        Lauberhorn.Message.Request
          {
            Lauberhorn.Message.rpc_id = Int64.of_int service_id;
            service_id;
            method_id = 0;
            code_ptr = 1L;
            data_ptr = 2L;
            total_args = String.length inline;
            inline_args = Net.Slice.of_string inline;
            aux_count;
            via_dma;
          }
      in
      match
        Lauberhorn.Message.decode
          (Lauberhorn.Message.encode ~line_bytes:128 msg)
      with
      | Ok m -> Lauberhorn.Message.equal m msg
      | Error _ -> false)

(* ---------- Endpoint protocol ---------- *)

type ep_env = {
  engine : Sim.Engine.t;
  ha : Coherence.Home_agent.t;
  ep : Lauberhorn.Endpoint.t;
  responses : Lauberhorn.Message.response list ref;
}

let make_ep ?(cfg = Lauberhorn.Config.enzian) () =
  let engine = Sim.Engine.create () in
  let ha =
    Coherence.Home_agent.create engine cfg.Lauberhorn.Config.profile
      ~timeout:cfg.Lauberhorn.Config.tryagain_timeout ()
  in
  let responses = ref [] in
  let ep =
    Lauberhorn.Endpoint.create ha cfg ~id:0
      ~on_response:(fun r -> responses := r :: !responses)
      ()
  in
  { engine; ha; ep; responses }

let req id =
  {
    Lauberhorn.Message.rpc_id = Int64.of_int id;
    service_id = 1;
    method_id = 0;
    code_ptr = 0x4000L;
    data_ptr = 0x7000L;
    total_args = 4;
    inline_args = Net.Slice.of_string "args";
    aux_count = 0;
    via_dma = false;
  }

let resp_line ~line_bytes id =
  Lauberhorn.Message.encode_response ~line_bytes
    {
      Lauberhorn.Message.resp_rpc_id = Int64.of_int id;
      status = 0;
      total_len = 2;
      inline_body = Net.Slice.of_string "ok";
      resp_aux_count = 0;
    }

(* Drive the CPU side of an endpoint like a worker loop would: load,
   handle for [work] ns, store a response, flip, load the other line,
   forever (response collection rides on the next-line load, exactly as
   in Figure 4). *)
let cpu_loop env ~work =
  let line_bytes = 128 in
  let handled = ref [] in
  let rec go idx =
    Coherence.Home_agent.cpu_load env.ha
      (Lauberhorn.Endpoint.ctrl_line env.ep idx)
      (fun fill ->
        match fill with
        | Coherence.Home_agent.Tryagain -> go idx
        | Coherence.Home_agent.Data line -> (
            match Lauberhorn.Message.decode line with
            | Ok (Lauberhorn.Message.Request r) ->
                handled :=
                  Int64.to_int r.Lauberhorn.Message.rpc_id :: !handled;
                ignore
                  (Sim.Engine.schedule_after env.engine ~after:work
                     (fun () ->
                       Coherence.Home_agent.cpu_store env.ha
                         (Lauberhorn.Endpoint.ctrl_line env.ep idx)
                         (resp_line ~line_bytes
                            (Int64.to_int r.Lauberhorn.Message.rpc_id));
                       go (1 - idx)))
            | Ok _ | Error _ -> Alcotest.fail "bad line"))
  in
  go 0;
  handled

let test_endpoint_fast_path_single () =
  let env = make_ep () in
  let handled = cpu_loop env ~work:500 in
  ignore
    (Sim.Engine.schedule_after env.engine ~after:1000 (fun () ->
         checkb "parked before delivery" true
           (Lauberhorn.Endpoint.parked env.ep);
         checkb "delivered" true (Lauberhorn.Endpoint.deliver env.ep (req 1))));
  Sim.Engine.run env.engine ~until:(Sim.Units.ms 1);
  check (Alcotest.list Alcotest.int) "handled" [ 1 ] !handled;
  checki "one response" 1 (List.length !(env.responses));
  (match !(env.responses) with
  | [ r ] ->
      check Alcotest.int64 "response id" 1L r.Lauberhorn.Message.resp_rpc_id;
      check Alcotest.string "response body from real line" "ok"
        (Net.Slice.to_string r.Lauberhorn.Message.inline_body)
  | _ -> Alcotest.fail "responses");
  checki "delivered stat" 1 (Lauberhorn.Endpoint.stats_delivered env.ep);
  checki "responses stat" 1 (Lauberhorn.Endpoint.stats_responses env.ep)

let test_endpoint_double_buffering_pipeline () =
  let env = make_ep () in
  let handled = cpu_loop env ~work:500 in
  (* Burst of 4 requests: two stage into the lines, two queue in SRAM. *)
  ignore
    (Sim.Engine.schedule_after env.engine ~after:1000 (fun () ->
         for i = 1 to 4 do
           checkb "accepted" true (Lauberhorn.Endpoint.deliver env.ep (req i))
         done;
         checki "two queued in SRAM" 2 (Lauberhorn.Endpoint.queue_depth env.ep);
         checki "two in flight" 2 (Lauberhorn.Endpoint.in_flight env.ep)));
  Sim.Engine.run env.engine ~until:(Sim.Units.ms 5);
  check (Alcotest.list Alcotest.int) "handled in order" [ 1; 2; 3; 4 ]
    (List.rev !handled);
  checki "all responses" 4 (List.length !(env.responses));
  checki "queue drained" 0 (Lauberhorn.Endpoint.queue_depth env.ep);
  checki "none in flight" 0 (Lauberhorn.Endpoint.in_flight env.ep)

let test_endpoint_sram_overflow_drops () =
  let cfg =
    { Lauberhorn.Config.enzian with Lauberhorn.Config.nic_queue_depth = 2 }
  in
  let env = make_ep ~cfg () in
  (* No CPU attached: nothing consumes; 2 staged + 2 queued, rest drop. *)
  let accepted = ref 0 in
  for i = 1 to 6 do
    if Lauberhorn.Endpoint.deliver env.ep (req i) then incr accepted
  done;
  checki "accepted 4" 4 !accepted;
  checki "dropped 2" 2 (Lauberhorn.Endpoint.stats_dropped env.ep)

let test_endpoint_kick_and_on_parked () =
  let env = make_ep () in
  let parked_events = ref 0 in
  Lauberhorn.Endpoint.set_on_parked env.ep (fun () -> incr parked_events);
  let fills = ref [] in
  Coherence.Home_agent.cpu_load env.ha
    (Lauberhorn.Endpoint.ctrl_line env.ep 0)
    (fun fill -> fills := fill :: !fills);
  ignore
    (Sim.Engine.schedule_after env.engine ~after:1000 (fun () ->
         Lauberhorn.Endpoint.kick env.ep));
  Sim.Engine.run env.engine ~until:(Sim.Units.ms 1);
  checki "parked seen" 1 !parked_events;
  checkb "tryagain delivered" true
    (!fills = [ Coherence.Home_agent.Tryagain ]);
  checkb "no longer parked" false (Lauberhorn.Endpoint.parked env.ep)

let test_endpoint_dma_request_delay () =
  let env = make_ep () in
  let big =
    {
      (req 1) with
      Lauberhorn.Message.total_args = 16384;
      via_dma = true;
      inline_args = Net.Slice.empty;
    }
  in
  let got_at = ref (-1) in
  Coherence.Home_agent.cpu_load env.ha
    (Lauberhorn.Endpoint.ctrl_line env.ep 0)
    (fun _ -> got_at := Sim.Engine.now env.engine);
  ignore
    (Sim.Engine.schedule_after env.engine ~after:100 (fun () ->
         ignore (Lauberhorn.Endpoint.deliver env.ep big)));
  Sim.Engine.run env.engine ~until:(Sim.Units.ms 1);
  let dma =
    Coherence.Interconnect.dma_transfer Coherence.Interconnect.eci
      ~bytes:16384
  in
  checkb "line held back until payload DMA done" true (!got_at >= 100 + dma)

(* ---------- Sched mirror ---------- *)

let test_mirror_push_tracks_with_lag () =
  let e = Sim.Engine.create () in
  let k = Osmodel.Kernel.create e ~ncores:2 () in
  let m =
    Lauberhorn.Sched_mirror.create ~mode:Lauberhorn.Sched_mirror.Push
      Coherence.Interconnect.eci k
  in
  checki "free lookup" 0 (Lauberhorn.Sched_mirror.lookup_cost m);
  let proc = Osmodel.Kernel.new_process k ~name:"svc" in
  let th_ref = ref None in
  let th =
    Osmodel.Kernel.spawn k proc ~name:"w" (fun () ->
        Osmodel.Kernel.run_for k (Option.get !th_ref)
          ~kind:Osmodel.Cpu_account.User (Sim.Units.us 50) (fun () ->
            Osmodel.Kernel.exit_thread k (Option.get !th_ref)))
  in
  th_ref := Some th;
  Osmodel.Kernel.wake k th;
  (* Immediately after the wake, the mirror has not yet seen the push. *)
  checkb "lagging view" true
    (Lauberhorn.Sched_mirror.cores_running m ~pid:proc.Osmodel.Proc.pid = []);
  Sim.Engine.run e ~until:(Sim.Units.us 10);
  checkb "after push: visible" true
    (Lauberhorn.Sched_mirror.is_running m ~pid:proc.Osmodel.Proc.pid);
  Sim.Engine.run e ~until:(Sim.Units.us 100);
  checkb "after exit: gone" false
    (Lauberhorn.Sched_mirror.is_running m ~pid:proc.Osmodel.Proc.pid);
  checkb "pushes happened" true (Lauberhorn.Sched_mirror.pushes m > 0)

let test_mirror_query_costs_mmio () =
  let e = Sim.Engine.create () in
  let k = Osmodel.Kernel.create e ~ncores:1 () in
  let m =
    Lauberhorn.Sched_mirror.create ~mode:Lauberhorn.Sched_mirror.Query
      Coherence.Interconnect.eci k
  in
  checki "mmio lookup"
    Coherence.Interconnect.eci.Coherence.Interconnect.mmio_read
    (Lauberhorn.Sched_mirror.lookup_cost m);
  checki "no pushes" 0 (Lauberhorn.Sched_mirror.pushes m)

(* ---------- Nic_sched ---------- *)

let test_nic_sched_scale_up_on_queue () =
  let s = Lauberhorn.Nic_sched.create ~hi_watermark:4 () in
  checkb "queue above watermark" true
    (Lauberhorn.Nic_sched.decide s ~service:1 ~queue_depth:5 ~workers:1
       ~handler_time:500
    = Lauberhorn.Nic_sched.Add_worker);
  checkb "steady below" true
    (Lauberhorn.Nic_sched.decide s ~service:1 ~queue_depth:1 ~workers:1
       ~handler_time:500
    = Lauberhorn.Nic_sched.Steady)

let test_nic_sched_rate_estimation () =
  let s = Lauberhorn.Nic_sched.create () in
  (* 1 arrival per microsecond = 1M/s. *)
  for i = 1 to 200 do
    Lauberhorn.Nic_sched.on_arrival s ~service:7 ~now:(i * Sim.Units.us 1)
  done;
  let rate = Lauberhorn.Nic_sched.rate s ~service:7 in
  checkb "rate near 1M/s" true (rate > 0.5e6 && rate < 2e6);
  Lauberhorn.Nic_sched.on_complete s ~service:7;
  checki "outstanding" 199 (Lauberhorn.Nic_sched.outstanding s ~service:7)

let test_nic_sched_release_when_idle () =
  let s = Lauberhorn.Nic_sched.create () in
  (* Two sparse arrivals: rate ~ tiny; with 2 workers, release one. *)
  Lauberhorn.Nic_sched.on_arrival s ~service:2 ~now:0;
  Lauberhorn.Nic_sched.on_arrival s ~service:2 ~now:(Sim.Units.ms 10);
  checkb "release" true
    (Lauberhorn.Nic_sched.decide s ~service:2 ~queue_depth:0 ~workers:2
       ~handler_time:500
    = Lauberhorn.Nic_sched.Release_worker)

let test_nic_sched_shed_hysteresis () =
  let s =
    Lauberhorn.Nic_sched.create ~shed:true ~shed_hi:16 ~shed_lo:4 ()
  in
  let d depth =
    Lauberhorn.Nic_sched.decide s ~service:1 ~queue_depth:depth ~workers:1
      ~handler_time:500
  in
  (* In the band but below the high watermark: never sheds, and a
     constant arrival rate gives a constant decision — no flapping. *)
  let first = d 10 in
  for _ = 1 to 50 do
    checkb "constant depth, constant decision" true (d 10 = first)
  done;
  checkb "no shed below hi" true (first <> Lauberhorn.Nic_sched.Shed);
  (* Cross the high watermark: shed latches... *)
  checkb "sheds at hi" true (d 20 = Lauberhorn.Nic_sched.Shed);
  (* ...and stays latched while the queue sits inside the band. *)
  for _ = 1 to 50 do
    checkb "still shedding in band" true (d 10 = Lauberhorn.Nic_sched.Shed)
  done;
  (* Only draining to the low watermark clears it. *)
  checkb "clears at lo" true (d 4 <> Lauberhorn.Nic_sched.Shed);
  checkb "stays clear in band" true (d 10 <> Lauberhorn.Nic_sched.Shed);
  (* Watermark validation. *)
  checkb "inverted watermarks rejected" true
    (try
       ignore (Lauberhorn.Nic_sched.create ~shed:true ~shed_hi:4 ~shed_lo:8 ());
       false
     with Invalid_argument _ -> true)

let nic_sched_shed_hysteresis_property =
  QCheck.Test.make
    ~name:"shed follows the hysteresis model; never sheds when disabled"
    ~count:300
    QCheck.(pair bool (list (int_bound 32)))
    (fun (shed, depths) ->
      let s = Lauberhorn.Nic_sched.create ~shed ~shed_hi:16 ~shed_lo:4 () in
      let shedding = ref false in
      List.for_all
        (fun depth ->
          let d =
            Lauberhorn.Nic_sched.decide s ~service:1 ~queue_depth:depth
              ~workers:1 ~handler_time:500
          in
          (if shed then
             if !shedding then (if depth <= 4 then shedding := false)
             else if depth >= 16 then shedding := true);
          (d = Lauberhorn.Nic_sched.Shed) = (shed && !shedding))
        depths)

(* ---------- Pipeline ---------- *)

let test_pipeline_breakdown () =
  let b =
    Lauberhorn.Pipeline.rx Lauberhorn.Config.enzian ~sched_lookup:0
      ~fields:4 ~arg_bytes:64
  in
  checki "total is sum"
    (b.Lauberhorn.Pipeline.parse + b.Lauberhorn.Pipeline.demux
    + b.Lauberhorn.Pipeline.deser + b.Lauberhorn.Pipeline.sched_lookup)
    b.Lauberhorn.Pipeline.total;
  let b2 =
    Lauberhorn.Pipeline.rx Lauberhorn.Config.enzian ~sched_lookup:1_000
      ~fields:4 ~arg_bytes:64
  in
  checki "lookup adds" (b.Lauberhorn.Pipeline.total + 1_000)
    b2.Lauberhorn.Pipeline.total

(* ---------- Full stack ---------- *)

type stack_env = {
  sengine : Sim.Engine.t;
  stack : Lauberhorn.Stack.t;
  recorder : Harness.Recorder.t;
  driver : Harness.Driver.t;
}

let make_stack ?(cfg = Lauberhorn.Config.enzian) ?(ncores = 4) ?mirror_mode
    ~services () =
  let sengine = Sim.Engine.create () in
  let recorder = Harness.Recorder.create sengine in
  let stack =
    Lauberhorn.Stack.create sengine ~cfg ~ncores ?mirror_mode ~services
      ~egress:(Harness.Recorder.egress recorder)
      ()
  in
  { sengine; stack; recorder; driver = Lauberhorn.Stack.driver stack }

let echo_spec ?min_workers ?max_workers ~port ~id () =
  Lauberhorn.Stack.spec ?min_workers ?max_workers ~port
    (Rpc.Interface.echo_service ~id)

let test_stack_echo_end_to_end () =
  let env = make_stack ~services:[ echo_spec ~port:7000 ~id:1 () ] () in
  let payload = Bytes.of_string "round-trip-me" in
  let seen = ref None in
  Harness.Recorder.on_complete env.recorder (fun ~rpc_id ~latency ->
      seen := Some (rpc_id, latency));
  ignore
    (Sim.Engine.schedule_after env.sengine ~after:(Sim.Units.us 10)
       (fun () ->
         Harness.Traffic.inject env.recorder env.driver ~rpc_id:42L
           ~service_id:1 ~method_id:0 ~port:7000 (Rpc.Value.Blob payload)));
  Sim.Engine.run env.sengine ~until:(Sim.Units.ms 2);
  (match !seen with
  | Some (42L, latency) ->
      (* End-system latency for a hot 64B-ish echo should be in the
         single-digit microseconds on the ECI profile. *)
      checkb "latency band" true
        (latency > Sim.Units.ns 500 && latency < Sim.Units.us 10)
  | Some _ | None -> Alcotest.fail "no completion");
  checki "completed" 1 (Harness.Recorder.completed env.recorder);
  let fast =
    Sim.Counter.value
      (Sim.Counter.counter
         (Lauberhorn.Stack.counters env.stack)
         "fast_path")
  in
  checki "took the fast path" 1 fast

let test_stack_response_payload_fidelity () =
  (* The counter service computes: response must reflect real state. *)
  let svc = Rpc.Interface.counter_service ~id:9 in
  let env =
    make_stack
      ~services:[ Lauberhorn.Stack.spec ~port:7009 svc ]
      ()
  in
  let next = ref 0 in
  let fire v =
    incr next;
    Harness.Traffic.inject env.recorder env.driver
      ~rpc_id:(Int64.of_int !next) ~service_id:9 ~method_id:0 ~port:7009
      (Rpc.Value.int v)
  in
  ignore
    (Sim.Engine.schedule_after env.sengine ~after:(Sim.Units.us 10)
       (fun () -> fire 10));
  ignore
    (Sim.Engine.schedule_after env.sengine ~after:(Sim.Units.us 200)
       (fun () -> fire 32));
  Sim.Engine.run env.sengine ~until:(Sim.Units.ms 2);
  checki "both completed" 2 (Harness.Recorder.completed env.recorder);
  checki "no corruption" 0
    (Sim.Counter.value
       (Sim.Counter.counter
          (Lauberhorn.Stack.counters env.stack)
          "response_corrupt"))

let test_stack_cold_start_uses_slow_path () =
  let env =
    make_stack
      ~services:[ echo_spec ~min_workers:0 ~max_workers:1 ~port:7000 ~id:1 () ]
      ()
  in
  checki "no workers yet" 0
    (Lauberhorn.Stack.active_workers env.stack ~service_id:1);
  ignore
    (Sim.Engine.schedule_after env.sengine ~after:(Sim.Units.us 10)
       (fun () ->
         Harness.Traffic.inject env.recorder env.driver ~rpc_id:1L
           ~service_id:1 ~method_id:0 ~port:7000
           (Rpc.Value.Blob (Bytes.make 32 'c'))));
  Sim.Engine.run env.sengine ~until:(Sim.Units.ms 5);
  checki "completed despite cold start" 1
    (Harness.Recorder.completed env.recorder);
  let c name =
    Sim.Counter.value
      (Sim.Counter.counter (Lauberhorn.Stack.counters env.stack) name)
  in
  checki "cold path taken" 1 (c "cold_path");
  checki "kernel dispatch used" 1 (c "slow_path_dispatch");
  checki "worker activated" 1
    (Lauberhorn.Stack.active_workers env.stack ~service_id:1)

let test_stack_large_payload_dma_fallback () =
  let env = make_stack ~services:[ echo_spec ~port:7000 ~id:1 () ] () in
  ignore
    (Sim.Engine.schedule_after env.sengine ~after:(Sim.Units.us 10)
       (fun () ->
         Harness.Traffic.inject env.recorder env.driver ~rpc_id:1L
           ~service_id:1 ~method_id:0 ~port:7000
           (Rpc.Value.Blob (Bytes.make 16_384 'B'))));
  Sim.Engine.run env.sengine ~until:(Sim.Units.ms 5);
  checki "completed" 1 (Harness.Recorder.completed env.recorder);
  checkb "slower than small-rpc band" true
    (Sim.Histogram.max_value (Harness.Recorder.latencies env.recorder)
    > Sim.Units.us 3)

let test_stack_scale_up_under_burst () =
  let env =
    make_stack
      ~services:
        [ echo_spec ~min_workers:1 ~max_workers:3 ~port:7000 ~id:1 () ]
      ~ncores:4 ()
  in
  (* A dense burst: handler 500ns but arrivals every 100ns for a while
     forces queueing past the watermark. *)
  for i = 1 to 100 do
    ignore
      (Sim.Engine.schedule_at env.sengine
         ~at:(Sim.Units.us 10 + (i * 100))
         (fun () ->
           Harness.Traffic.inject env.recorder env.driver
             ~rpc_id:(Int64.of_int i) ~service_id:1 ~method_id:0 ~port:7000
             (Rpc.Value.Blob (Bytes.make 16 'x'))))
  done;
  Sim.Engine.run env.sengine ~until:(Sim.Units.ms 10);
  checki "all completed" 100 (Harness.Recorder.completed env.recorder);
  checkb "scaled past one worker" true
    (Sim.Counter.value
       (Sim.Counter.counter
          (Lauberhorn.Stack.counters env.stack)
          "worker_activate")
    >= 1)

let test_stack_many_services_share_cores () =
  let setup = Workload.Scenario.echo_fleet ~n:16 () in
  let services =
    List.mapi
      (fun i def ->
        Lauberhorn.Stack.spec ~min_workers:0 ~max_workers:1
          ~port:setup.Workload.Scenario.ports.(i) def)
      setup.Workload.Scenario.defs
  in
  let env = make_stack ~services ~ncores:4 () in
  let rng = Sim.Rng.create ~seed:11 in
  for i = 1 to 200 do
    let svc = Sim.Rng.int rng ~bound:16 in
    ignore
      (Sim.Engine.schedule_at env.sengine
         ~at:(Sim.Units.us 10 + (i * Sim.Units.us 2))
         (fun () ->
           Harness.Traffic.inject env.recorder env.driver
             ~rpc_id:(Int64.of_int i)
             ~service_id:(Workload.Scenario.service_id_of setup ~service_idx:svc)
             ~method_id:0
             ~port:(Workload.Scenario.port_of setup ~service_idx:svc)
             (Rpc.Value.Blob (Bytes.make 32 'm'))))
  done;
  Sim.Engine.run env.sengine ~until:(Sim.Units.ms 20);
  checki "16 services on 4 cores all served" 200
    (Harness.Recorder.completed env.recorder)

let test_stack_nested_rpc () =
  (* A frontend service whose handler makes a nested call into the kv
     service (paper section 6), all server-side. *)
  let kv = Rpc.Interface.kv_service ~id:2 () in
  let frontend =
    Rpc.Interface.service ~id:10 ~name:"frontend"
      [
        Rpc.Interface.method_def ~id:0 ~name:"fetch" ~request:Rpc.Schema.Str
          ~response:Rpc.Schema.Blob ~handler_time:(Sim.Units.ns 600)
          ~nested:(fun ~call v ~done_ ->
            call ~service_id:2 ~method_id:0 v (fun kv_reply ->
                match kv_reply with
                | Rpc.Value.Tuple [ Rpc.Value.Bool true; Rpc.Value.Blob b ]
                  ->
                    done_ (Rpc.Value.Blob (Bytes.cat (Bytes.of_string "hit:") b))
                | _ -> done_ (Rpc.Value.Blob (Bytes.of_string "miss"))))
          (fun _ -> Rpc.Value.Blob (Bytes.of_string "unused-fallback"));
      ]
  in
  let env =
    make_stack
      ~services:
        [
          Lauberhorn.Stack.spec ~port:7010 frontend;
          Lauberhorn.Stack.spec ~port:7002 kv;
        ]
      ()
  in
  (* Seed the kv store directly (handler state is shared). *)
  let put = Option.get (Rpc.Interface.find_method kv 1) in
  ignore
    (put.Rpc.Interface.execute
       (Rpc.Value.Tuple
          [ Rpc.Value.str "k1"; Rpc.Value.Blob (Bytes.of_string "V") ]));
  ignore
    (Sim.Engine.schedule_after env.sengine ~after:(Sim.Units.us 10)
       (fun () ->
         Harness.Traffic.inject env.recorder env.driver ~rpc_id:5L
           ~service_id:10 ~method_id:0 ~port:7010 (Rpc.Value.str "k1")));
  Sim.Engine.run env.sengine ~until:(Sim.Units.ms 5);
  checki "outer completed" 1 (Harness.Recorder.completed env.recorder);
  let c name =
    Sim.Counter.value
      (Sim.Counter.counter (Lauberhorn.Stack.counters env.stack) name)
  in
  checki "one nested call" 1 (c "nested_calls");
  (* Outer + nested both handled. *)
  checki "two rpcs handled" 2 (c "rpcs_handled");
  (* Outer latency includes the nested round trip. *)
  checkb "outer latency > single-rpc band" true
    (Sim.Histogram.max_value (Harness.Recorder.latencies env.recorder)
    > Sim.Units.us 4)

let test_stack_nested_unknown_service () =
  let frontend =
    Rpc.Interface.service ~id:11 ~name:"fe"
      [
        Rpc.Interface.method_def ~id:0 ~name:"f" ~request:Rpc.Schema.Unit
          ~response:Rpc.Schema.Bool
          ~nested:(fun ~call _ ~done_ ->
            call ~service_id:999 ~method_id:0 Rpc.Value.Unit (fun reply ->
                done_ (Rpc.Value.Bool (reply = Rpc.Value.Unit))))
          (fun _ -> Rpc.Value.Bool false);
      ]
  in
  let env =
    make_stack ~services:[ Lauberhorn.Stack.spec ~port:7011 frontend ] ()
  in
  ignore
    (Sim.Engine.schedule_after env.sengine ~after:(Sim.Units.us 10)
       (fun () ->
         Harness.Traffic.inject env.recorder env.driver ~rpc_id:1L
           ~service_id:11 ~method_id:0 ~port:7011 Rpc.Value.Unit));
  Sim.Engine.run env.sengine ~until:(Sim.Units.ms 5);
  checki "completed with fallback reply" 1
    (Harness.Recorder.completed env.recorder)

let test_stack_retire_and_resume_dispatcher () =
  let env =
    make_stack
      ~services:[ echo_spec ~min_workers:0 ~max_workers:1 ~port:7000 ~id:1 () ]
      ()
  in
  checki "two dispatchers" 2 (Lauberhorn.Stack.dispatcher_count env.stack);
  let retired = ref false in
  ignore
    (Sim.Engine.schedule_after env.sengine ~after:(Sim.Units.us 50)
       (fun () ->
         retired := Lauberhorn.Stack.retire_dispatcher env.stack ~idx:0));
  (* A cold request after the retirement: dispatcher 1 must cover. *)
  ignore
    (Sim.Engine.schedule_after env.sengine ~after:(Sim.Units.us 200)
       (fun () ->
         Harness.Traffic.inject env.recorder env.driver ~rpc_id:1L
           ~service_id:1 ~method_id:0 ~port:7000
           (Rpc.Value.Blob (Bytes.make 16 'r'))));
  Sim.Engine.run env.sengine ~until:(Sim.Units.ms 2);
  checkb "retire accepted" true !retired;
  checki "retired counter" 1
    (Sim.Counter.value
       (Sim.Counter.counter
          (Lauberhorn.Stack.counters env.stack)
          "dispatcher_retired"));
  checki "request still served" 1 (Harness.Recorder.completed env.recorder);
  (* Resume dispatcher 0 and use it again. *)
  Lauberhorn.Stack.resume_dispatcher env.stack ~idx:0;
  ignore
    (Sim.Engine.schedule_after env.sengine ~after:(Sim.Units.us 10)
       (fun () ->
         Harness.Traffic.inject env.recorder env.driver ~rpc_id:2L
           ~service_id:1 ~method_id:0 ~port:7000
           (Rpc.Value.Blob (Bytes.make 16 's'))));
  Sim.Engine.run env.sengine ~until:(Sim.Engine.now env.sengine + Sim.Units.ms 20);
  checki "serves after resume" 2 (Harness.Recorder.completed env.recorder)

let test_tx_endpoint_backpressure () =
  let engine = Sim.Engine.create () in
  let ha =
    Coherence.Home_agent.create engine Coherence.Interconnect.eci
      ~timeout:(Sim.Units.ms 15) ()
  in
  let consumed = ref [] in
  let tx =
    Lauberhorn.Tx_endpoint.create ha Lauberhorn.Config.enzian ~id:0
      ~on_line:(fun b -> consumed := Bytes.to_string b :: !consumed)
      ()
  in
  let image tag = Bytes.make 128 tag in
  let accepted = ref 0 in
  (* Three sends: two credits, so the third waits for a drain. *)
  Lauberhorn.Tx_endpoint.cpu_send tx (image 'a') ~accepted:(fun () ->
      incr accepted);
  Lauberhorn.Tx_endpoint.cpu_send tx (image 'b') ~accepted:(fun () ->
      incr accepted);
  Lauberhorn.Tx_endpoint.cpu_send tx (image 'c') ~accepted:(fun () ->
      incr accepted);
  checki "two accepted immediately" 2 !accepted;
  checki "one stalled" 1 (Lauberhorn.Tx_endpoint.backpressure_stalls tx);
  Sim.Engine.run engine ~until:(Sim.Units.ms 1);
  checki "all accepted eventually" 3 !accepted;
  checki "all consumed" 3 (List.length !consumed);
  check
    (Alcotest.list Alcotest.char)
    "fifo order" [ 'a'; 'b'; 'c' ]
    (List.rev_map (fun s -> s.[0]) !consumed);
  checki "drained" 0 (Lauberhorn.Tx_endpoint.in_flight tx);
  checkb "oversized rejected" true
    (try
       Lauberhorn.Tx_endpoint.cpu_send tx (Bytes.make 256 'x')
         ~accepted:(fun () -> ());
       false
     with Invalid_argument _ -> true)

let test_stack_nested_uses_tx_lines () =
  (* Small nested calls must flow through the worker's TX CONTROL
     lines, not the fallback frame path. *)
  let kv = Rpc.Interface.kv_service ~id:2 () in
  let frontend =
    Rpc.Interface.service ~id:10 ~name:"fe"
      [
        Rpc.Interface.method_def ~id:0 ~name:"probe" ~request:Rpc.Schema.Str
          ~response:Rpc.Schema.Bool
          ~nested:(fun ~call v ~done_ ->
            call ~service_id:2 ~method_id:0 v (fun _ ->
                done_ (Rpc.Value.Bool true)))
          (fun _ -> Rpc.Value.Bool false);
      ]
  in
  let env =
    make_stack
      ~services:
        [
          Lauberhorn.Stack.spec ~port:7010 frontend;
          Lauberhorn.Stack.spec ~port:7002 kv;
        ]
      ()
  in
  ignore
    (Sim.Engine.schedule_after env.sengine ~after:(Sim.Units.us 10)
       (fun () ->
         Harness.Traffic.inject env.recorder env.driver ~rpc_id:1L
           ~service_id:10 ~method_id:0 ~port:7010 (Rpc.Value.str "k")));
  Sim.Engine.run env.sengine ~until:(Sim.Units.ms 5);
  checki "completed" 1 (Harness.Recorder.completed env.recorder);
  let c name =
    Sim.Counter.value
      (Sim.Counter.counter (Lauberhorn.Stack.counters env.stack) name)
  in
  checki "went via TX lines" 1 (c "tx_line_sends")

let test_stack_cross_machine_nested () =
  (* Two stacks on one engine: A's frontend nests into B's kv over a
     direct (zero-latency) inter-machine link. *)
  let engine = Sim.Engine.create () in
  let recorder = Harness.Recorder.create engine in
  let a_ip = Net.Ip_addr.of_string "10.0.0.10" in
  let b_ip = Net.Ip_addr.of_string "10.0.0.11" in
  let a_addr =
    { Net.Frame.mac = Net.Mac_addr.of_string "02:00:00:00:00:0a";
      ip = a_ip; port = 0 }
  in
  let b_addr =
    { Net.Frame.mac = Net.Mac_addr.of_string "02:00:00:00:00:0b";
      ip = b_ip; port = 0 }
  in
  let a_ref = ref None in
  let kv = Rpc.Interface.kv_service ~id:2 () in
  let b =
    Lauberhorn.Stack.create engine ~cfg:Lauberhorn.Config.enzian ~ncores:2
      ~services:[ Lauberhorn.Stack.spec ~port:7002 kv ]
      ~egress:(fun f ->
        (* Replies from B go back to A's NIC. *)
        match !a_ref with
        | Some a -> Lauberhorn.Stack.ingress a f
        | None -> ())
      ()
  in
  Lauberhorn.Stack.set_address b b_addr;
  let frontend =
    Rpc.Interface.service ~id:4 ~name:"fe"
      [
        Rpc.Interface.method_def ~id:0 ~name:"probe" ~request:Rpc.Schema.Str
          ~response:Rpc.Schema.Bool
          ~nested:(fun ~call v ~done_ ->
            call ~service_id:2 ~method_id:0 v (fun reply ->
                match reply with
                | Rpc.Value.Tuple [ Rpc.Value.Bool found; _ ] ->
                    done_ (Rpc.Value.Bool found)
                | _ -> done_ (Rpc.Value.Bool false)))
          (fun _ -> Rpc.Value.Bool false);
      ]
  in
  let a =
    Lauberhorn.Stack.create engine ~cfg:Lauberhorn.Config.enzian ~ncores:2
      ~services:[ Lauberhorn.Stack.spec ~port:7100 frontend ]
      ~egress:(fun f ->
        if Net.Ip_addr.equal f.Net.Frame.ip.Net.Ipv4.dst b_ip then
          Lauberhorn.Stack.ingress b f
        else Harness.Recorder.egress recorder f)
      ()
  in
  Lauberhorn.Stack.set_address a a_addr;
  Lauberhorn.Stack.add_remote_service a ~service_id:2
    ~server:{ b_addr with Net.Frame.port = 7002 }
    ~response_schema:(Rpc.Schema.Tuple [ Rpc.Schema.Bool; Rpc.Schema.Blob ]);
  a_ref := Some a;
  (* Seed B's kv so the probe finds the key. *)
  let put = Option.get (Rpc.Interface.find_method kv 1) in
  ignore
    (put.Rpc.Interface.execute
       (Rpc.Value.Tuple
          [ Rpc.Value.str "k"; Rpc.Value.Blob (Bytes.of_string "v") ]));
  let driver = Lauberhorn.Stack.driver a in
  ignore
    (Sim.Engine.schedule_after engine ~after:(Sim.Units.us 10) (fun () ->
         Harness.Traffic.inject recorder driver ~rpc_id:1L ~service_id:4
           ~method_id:0 ~port:7100 (Rpc.Value.str "k")));
  Sim.Engine.run engine ~until:(Sim.Units.ms 5);
  checki "outer completed" 1 (Harness.Recorder.completed recorder);
  let ca name =
    Sim.Counter.value (Sim.Counter.counter (Lauberhorn.Stack.counters a) name)
  in
  checki "remote send" 1 (ca "nested_remote_sends");
  checki "remote reply" 1 (ca "nested_remote_replies");
  let cb name =
    Sim.Counter.value (Sim.Counter.counter (Lauberhorn.Stack.counters b) name)
  in
  checki "b handled the nested rpc" 1 (cb "rpcs_handled");
  (* Routing a remote id for a local service must be rejected. *)
  checkb "local service rejected" true
    (try
       Lauberhorn.Stack.add_remote_service a ~service_id:4
         ~server:{ b_addr with Net.Frame.port = 1 }
         ~response_schema:Rpc.Schema.Unit;
       false
     with Invalid_argument _ -> true)

let test_stack_telemetry () =
  let env =
    make_stack
      ~services:
        [ echo_spec ~min_workers:1 ~max_workers:1 ~port:7000 ~id:1 () ]
      ()
  in
  for i = 1 to 50 do
    ignore
      (Sim.Engine.schedule_at env.sengine
         ~at:(Sim.Units.us 10 + (i * Sim.Units.us 5))
         (fun () ->
           Harness.Traffic.inject env.recorder env.driver
             ~rpc_id:(Int64.of_int i) ~service_id:1 ~method_id:0 ~port:7000
             (Rpc.Value.Blob (Bytes.make 48 't'))))
  done;
  Sim.Engine.run env.sengine ~until:(Sim.Units.ms 5);
  let tel = Lauberhorn.Stack.telemetry env.stack in
  checki "all recorded" 50 (Lauberhorn.Telemetry.total_rpcs tel);
  check (Alcotest.list Alcotest.int) "one service" [ 1 ]
    (Lauberhorn.Telemetry.services tel);
  let fast, queued, cold = Lauberhorn.Telemetry.path_counts tel ~service_id:1 in
  checki "paths sum" 50 (fast + queued + cold);
  checkb "mostly fast" true (fast > 25);
  let bytes_in, bytes_out = Lauberhorn.Telemetry.bytes tel ~service_id:1 in
  checkb "bytes tracked" true (bytes_in > 0 && bytes_out > 0);
  let h = Lauberhorn.Telemetry.latency tel ~service_id:1 in
  checki "histogram count" 50 (Sim.Histogram.count h);
  (* The NIC-side latency must agree with the client-observed latency
     up to the TX MAC delay. *)
  let nic_p50 = Sim.Histogram.quantile h 0.5 in
  let client_p50 =
    Sim.Histogram.quantile (Harness.Recorder.latencies env.recorder) 0.5
  in
  checkb "nic view close to client view" true
    (abs (client_p50 - nic_p50) < Sim.Units.us 1)

let test_stack_tracing () =
  let env = make_stack ~services:[ echo_spec ~port:7000 ~id:1 () ] () in
  let trace = Sim.Trace.create () in
  Sim.Trace.enable trace;
  Lauberhorn.Stack.attach_trace env.stack trace;
  ignore
    (Sim.Engine.schedule_after env.sengine ~after:(Sim.Units.us 10)
       (fun () ->
         Harness.Traffic.inject env.recorder env.driver ~rpc_id:9L
           ~service_id:1 ~method_id:0 ~port:7000
           (Rpc.Value.Blob (Bytes.make 24 'z'))));
  Sim.Engine.run env.sengine ~until:(Sim.Units.ms 2);
  let cats = List.map (fun (_, c, _) -> c) (Sim.Trace.entries trace) in
  let has c = List.mem c cats in
  checkb "rx traced" true (has "rx");
  checkb "dispatch traced" true (has "dispatch");
  checkb "tx traced" true (has "tx");
  (* Events are time-ordered: rx before tx. *)
  let idx c =
    let rec go i = function
      | [] -> -1
      | x :: rest -> if x = c then i else go (i + 1) rest
    in
    go 0 cats
  in
  checkb "rx before dispatch before tx" true
    (idx "rx" < idx "dispatch" && idx "dispatch" < idx "tx")

let test_stack_tryagain_idle_traffic () =
  (* An idle stack parks its workers; with a 1 ms timeout and a 50 ms
     run, each parked line sees ~50 TRYAGAIN fills, not thousands:
     the no-spin claim (E5). *)
  let cfg =
    Lauberhorn.Config.with_timeout Lauberhorn.Config.enzian (Sim.Units.ms 1)
  in
  let env = make_stack ~cfg ~services:[ echo_spec ~port:7000 ~id:1 () ] () in
  Sim.Engine.run env.sengine ~until:(Sim.Units.ms 50);
  let tries =
    Coherence.Home_agent.tryagains (Lauberhorn.Stack.home_agent env.stack)
  in
  checkb "tryagains bounded" true (tries > 10 && tries < 500)

let test_stack_kill_restart_lifecycle () =
  let env = make_stack ~services:[ echo_spec ~port:7000 ~id:1 () ] () in
  let inject n at =
    ignore
      (Sim.Engine.schedule_after env.sengine ~after:at (fun () ->
           Harness.Traffic.inject env.recorder env.driver
             ~rpc_id:(Int64.of_int n) ~service_id:1 ~method_id:0 ~port:7000
             (Rpc.Value.Blob (Bytes.of_string "x"))))
  in
  inject 1 (Sim.Units.us 10);
  ignore
    (Sim.Engine.schedule_after env.sengine ~after:(Sim.Units.us 100)
       (fun () -> Lauberhorn.Stack.kill_service env.stack ~service_id:1));
  (* Arrives well after the death push landed: refused on the wire. *)
  inject 2 (Sim.Units.us 300);
  ignore
    (Sim.Engine.schedule_after env.sengine ~after:(Sim.Units.us 500)
       (fun () -> Lauberhorn.Stack.restart_service env.stack ~service_id:1));
  inject 3 (Sim.Units.us 800);
  Sim.Engine.run env.sengine ~until:(Sim.Units.ms 5);
  (* All three got a wire answer — the dead-window arrival an err_dead
     NACK rather than silence (the recorder counts error replies as
     completions: a response was produced). *)
  checki "every arrival answered on the wire" 3
    (Harness.Recorder.completed env.recorder);
  let mv name =
    Obs.Metrics.counter_value (Lauberhorn.Stack.metrics env.stack) name
  in
  checki "kill counted" 1 (mv "kills");
  checki "respawn counted" 1 (mv "respawns");
  checki "dead-window arrival refused" 1 (mv "crash_nacks")

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "lauberhorn"
    [
      ( "config",
        [
          Alcotest.test_case "paper constants" `Quick
            test_config_defaults_match_paper;
          Alcotest.test_case "update validation" `Quick
            test_config_updates_validate;
        ] );
      ( "message",
        [
          Alcotest.test_case "request roundtrip" `Quick
            test_message_request_roundtrip;
          Alcotest.test_case "marker lines" `Quick test_message_markers;
          Alcotest.test_case "response roundtrip" `Quick
            test_message_response_roundtrip;
          Alcotest.test_case "capacity enforced" `Quick
            test_message_capacity_enforced;
        ]
        @ qsuite [ message_roundtrip_property ] );
      ( "endpoint",
        [
          Alcotest.test_case "fast path" `Quick test_endpoint_fast_path_single;
          Alcotest.test_case "double buffering" `Quick
            test_endpoint_double_buffering_pipeline;
          Alcotest.test_case "sram overflow drops" `Quick
            test_endpoint_sram_overflow_drops;
          Alcotest.test_case "kick and on_parked" `Quick
            test_endpoint_kick_and_on_parked;
          Alcotest.test_case "dma request delay" `Quick
            test_endpoint_dma_request_delay;
        ] );
      ( "sched_mirror",
        [
          Alcotest.test_case "push tracks with lag" `Quick
            test_mirror_push_tracks_with_lag;
          Alcotest.test_case "query costs mmio" `Quick
            test_mirror_query_costs_mmio;
        ] );
      ( "nic_sched",
        [
          Alcotest.test_case "scale up on queue" `Quick
            test_nic_sched_scale_up_on_queue;
          Alcotest.test_case "rate estimation" `Quick
            test_nic_sched_rate_estimation;
          Alcotest.test_case "release when idle" `Quick
            test_nic_sched_release_when_idle;
          Alcotest.test_case "shed hysteresis" `Quick
            test_nic_sched_shed_hysteresis;
        ]
        @ qsuite [ nic_sched_shed_hysteresis_property ] );
      ( "pipeline",
        [ Alcotest.test_case "breakdown" `Quick test_pipeline_breakdown ] );
      ( "stack",
        [
          Alcotest.test_case "echo end to end" `Quick
            test_stack_echo_end_to_end;
          Alcotest.test_case "payload fidelity" `Quick
            test_stack_response_payload_fidelity;
          Alcotest.test_case "cold start slow path" `Quick
            test_stack_cold_start_uses_slow_path;
          Alcotest.test_case "dma fallback" `Quick
            test_stack_large_payload_dma_fallback;
          Alcotest.test_case "scale up under burst" `Quick
            test_stack_scale_up_under_burst;
          Alcotest.test_case "many services share cores" `Quick
            test_stack_many_services_share_cores;
          Alcotest.test_case "nested rpc (section 6)" `Quick
            test_stack_nested_rpc;
          Alcotest.test_case "nested unknown service" `Quick
            test_stack_nested_unknown_service;
          Alcotest.test_case "retire and resume dispatcher" `Quick
            test_stack_retire_and_resume_dispatcher;
          Alcotest.test_case "telemetry (section 6)" `Quick
            test_stack_telemetry;
          Alcotest.test_case "tx endpoint backpressure" `Quick
            test_tx_endpoint_backpressure;
          Alcotest.test_case "nested uses tx lines" `Quick
            test_stack_nested_uses_tx_lines;
          Alcotest.test_case "tracing (section 6)" `Quick test_stack_tracing;
          Alcotest.test_case "cross-machine nested rpc" `Quick
            test_stack_cross_machine_nested;
          Alcotest.test_case "idle tryagain bounded" `Quick
            test_stack_tryagain_idle_traffic;
          Alcotest.test_case "kill/restart lifecycle" `Quick
            test_stack_kill_restart_lifecycle;
        ] );
    ]
