(* The rack-scale chaos driver: the one place cluster fault seams get
   armed. It compiles a Fault.Plan's cluster schedules into the pure
   predicates the seams consume — per-host flap membership, per-pair
   partition windows, per-port wedge windows, brownout windows — and
   installs them on the fabric wire slot, the switch, and the control
   plane. Everything installed is a pure function of simulated time,
   so an armed rack stays byte-identical across LAUBERHORN_SHARDS.

   Injection topology:
   - link flaps and Master-plane partitions cut the per-pair shard
     wires (Fabric.set_link_fault): a host's wire carries its frames
     AND its control traffic, so a flapping link eats probes and acks
     exactly like data — the master is attached to the switch, so an
     asymmetric Master<->host partition is a directional cut of that
     host's physical wire;
   - Host->Host partitions cut at the switch crossbar
     (Switch.set_partition), where the (ingress, egress) pair is
     visible;
   - wedges and brownouts are switch-local (Switch.set_port_wedge /
     set_brownout);
   - the master crash/restart is scheduled on the master engine
     against Control.crash / Control.restart. *)

type t = {
  armed : bool;
  metrics : Obs.Metrics.t;
  fabric : Cluster.Fabric.t option;
  c_flaps : Obs.Metrics.counter option;
}

let windows_hit ws at = List.exists (fun w -> Plan.in_window w at) ws

let host_in planes h =
  List.exists
    (function Plan.Host h' -> h' = h | Plan.Master -> false)
    planes

let master_in planes =
  List.exists (function Plan.Master -> true | Plan.Host _ -> false) planes

let disarmed metrics =
  { armed = false; metrics; fabric = None; c_flaps = None }

let arm ~plan ~fabric ~control ?metrics () =
  let metrics =
    match metrics with Some m -> m | None -> Obs.Metrics.create ()
  in
  let cl = plan.Plan.cluster in
  if Plan.cluster_is_none cl then disarmed metrics
  else begin
    let hosts = Cluster.Fabric.hosts fabric in
    let master_engine = Cluster.Fabric.master_engine fabric in
    let sw = Cluster.Fabric.switch fabric in
    let ports = Cluster.Switch.ports sw in
    (* --- compile the schedules into per-host / per-port lookups --- *)
    let flap_spec = Array.make hosts None in
    List.iter
      (fun (h, f) ->
        if h < hosts then
          flap_spec.(h) <- Some (Plan.flap_seed plan ~host:h, f))
      cl.Plan.flaps;
    let to_master_cut = Array.make hosts [] in
    let from_master_cut = Array.make hosts [] in
    let pair_cut = Array.init hosts (fun _ -> Array.make hosts []) in
    List.iter
      (fun (p : Plan.partition) ->
        for s = 0 to hosts - 1 do
          if host_in p.srcs s then begin
            if master_in p.dsts then
              to_master_cut.(s) <- p.span :: to_master_cut.(s);
            for d = 0 to hosts - 1 do
              if d <> s && host_in p.dsts d then
                pair_cut.(s).(d) <- p.span :: pair_cut.(s).(d)
            done
          end;
          if master_in p.srcs && host_in p.dsts s then
            from_master_cut.(s) <- p.span :: from_master_cut.(s)
        done)
      cl.Plan.partitions;
    (* --- wire-level cuts: flaps (both directions) + Master planes --- *)
    let flap_cut h at =
      match flap_spec.(h) with
      | None -> false
      | Some (seed, f) -> Plan.flap_down_at ~seed f ~at
    in
    let wire_faults =
      cl.Plan.flaps <> []
      || Array.exists (fun ws -> ws <> []) to_master_cut
      || Array.exists (fun ws -> ws <> []) from_master_cut
    in
    if wire_faults then begin
      Cluster.Fabric.set_link_fault fabric
        (Some
           (fun ~src ~dst ~at ->
             if src >= hosts then
               dst < hosts
               && (flap_cut dst at || windows_hit from_master_cut.(dst) at)
             else flap_cut src at || windows_hit to_master_cut.(src) at));
      Obs.Metrics.derive metrics "fault_link_drops" (fun () ->
          Cluster.Fabric.link_drops_total fabric)
    end;
    (* --- crossbar cuts: Host -> Host partitions --- *)
    if Array.exists (Array.exists (fun ws -> ws <> [])) pair_cut then
      Cluster.Switch.set_partition sw
        (Some
           (fun ~src ~dst ~at ->
             src < hosts && dst < hosts && windows_hit pair_cut.(src).(dst) at));
    (* --- switch-local stalls: port wedges and brownouts --- *)
    if cl.Plan.wedges <> [] then begin
      let wedge_w = Array.make ports [] in
      List.iter
        (fun (p, w) -> if p < ports then wedge_w.(p) <- w :: wedge_w.(p))
        cl.Plan.wedges;
      Cluster.Switch.set_port_wedge sw
        (Some
           (fun ~port ~at ->
             List.find_map
               (fun w -> if Plan.in_window w at then Some w.Plan.until else None)
               wedge_w.(port)))
    end;
    if cl.Plan.brownouts <> [] then
      Cluster.Switch.set_brownout sw
        (Some
           (fun ~at ->
             List.find_map
               (fun w -> if Plan.in_window w at then Some w.Plan.until else None)
               cl.Plan.brownouts));
    (* --- master crash / restart --- *)
    (match cl.Plan.master.crash_at with
    | Some at ->
        ignore
          (Sim.Engine.schedule_at master_engine ~at (fun () ->
               Cluster.Control.crash control));
        if cl.Plan.master.restart then
          ignore
            (Sim.Engine.schedule_at master_engine
               ~at:(at + cl.Plan.master.downtime)
               (fun () -> Cluster.Control.restart control))
    | None -> ());
    (* --- flap-transition counting: one master-shard event per
       down-edge, a self-rescheduling O(1)-memory chain --- *)
    let c_flaps =
      if cl.Plan.flaps = [] then None
      else begin
        let c = Obs.Metrics.counter metrics "fault_link_flaps" in
        Array.iter
          (function
            | None -> ()
            | Some (seed, f) ->
                let rec edge cycle =
                  ignore
                    (Sim.Engine.schedule_at master_engine
                       ~at:(Plan.flap_edge ~seed f ~cycle)
                       (fun () ->
                         Obs.Metrics.incr c;
                         edge (cycle + 1)))
                in
                edge 0)
          flap_spec;
        Some c
      end
    in
    { armed = true; metrics; fabric = Some fabric; c_flaps }
  end

let armed t = t.armed
let metrics t = t.metrics

let link_flaps t =
  match t.c_flaps with Some c -> Obs.Metrics.value c | None -> 0

let link_drops t =
  match t.fabric with
  | Some f -> Cluster.Fabric.link_drops_total f
  | None -> 0
