(** Scripted server-process crash/restart driver.

    Executes a {!Plan.server_fault}: calls [crash] when the trigger
    fires — at an absolute simulation time ([crash_at]) or once the
    server has handled N RPCs ([crash_after_rpcs], reported via
    {!on_handled}) — then, if the spec says so, calls [restart] after
    [downtime]. Entirely deterministic: no RNG, just the event clock
    and the RPC count.

    With {!Plan.no_server_fault} nothing is ever scheduled and
    {!on_handled} is a cheap no-op, so a fault-free run is untouched. *)

type t

val install :
  Sim.Engine.t ->
  plan:Plan.t ->
  crash:(unit -> unit) ->
  restart:(unit -> unit) ->
  t
(** Arm the injector for [plan.server]. A time trigger is scheduled
    immediately; a count trigger waits for {!on_handled} calls. The
    crash fires at most once (whichever trigger comes first). *)

val on_handled : t -> unit -> unit
(** Report one server-handled RPC (hook this into the stack's handled
    callback). Drives the [crash_after_rpcs] trigger. *)

val is_none : t -> bool
(** Whether the underlying spec has no trigger armed. *)

val crashes : t -> int
val restarts : t -> int
