type t = {
  engine : Sim.Engine.t;
  plan : Plan.link;
  rng : Sim.Rng.t;
  deliver : Net.Frame.t -> unit;
  mutable scratch : bytes;  (* corruption-model workspace, reused *)
  mutable seen : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable scripted : int;
  mutable corrupt_rejected : int;
  mutable corrupt_delivered : int;
  mutable duplicated : int;
  mutable reordered : int;
}

let create engine ~plan ~rng ~deliver () =
  {
    engine;
    plan;
    rng;
    deliver;
    scratch = Bytes.create 0;
    seen = 0;
    delivered = 0;
    dropped = 0;
    scripted = 0;
    corrupt_rejected = 0;
    corrupt_delivered = 0;
    duplicated = 0;
    reordered = 0;
  }

(* The Ethernet header and min-frame padding are only FCS-protected on a
   real wire, and this model (like the parser) has no FCS — so to model
   "corruption is caught" honestly we flip within the IPv4+UDP region
   the existing checksums cover. The UDP checksum field itself is
   excluded: flipping it could produce 0x0000, which reads as "checksum
   absent". The redirect target is the UDP length high byte, which a
   flip always drives out of range (Bad_length). *)
let flip_checksummed rng ~ip_payload_len (s : Net.Slice.t) =
  let lo = Net.Ethernet.header_size in
  let hi =
    min (Net.Slice.length s) (lo + Net.Ipv4.header_size + ip_payload_len)
  in
  let i = lo + Sim.Rng.int rng ~bound:(max 1 (hi - lo)) in
  let udp_csum = lo + Net.Ipv4.header_size + 6 in
  let i =
    if i = udp_csum || i = udp_csum + 1 then lo + Net.Ipv4.header_size + 4
    else i
  in
  let j = s.Net.Slice.off + i in
  Bytes.set s.Net.Slice.base j
    (Char.chr (Char.code (Bytes.get s.Net.Slice.base j) lxor 0xff))

let extra_delay t =
  let bound = max 1 t.plan.Plan.reorder_delay in
  1 + Sim.Rng.int t.rng ~bound

let emit t frame =
  t.delivered <- t.delivered + 1;
  t.deliver frame

let send t frame =
  t.seen <- t.seen + 1;
  let p = t.plan in
  if List.mem t.seen p.Plan.drop_nth then t.scripted <- t.scripted + 1
  else if p.Plan.drop > 0. && Sim.Rng.float t.rng < p.Plan.drop then
    t.dropped <- t.dropped + 1
  else if p.Plan.corrupt > 0. && Sim.Rng.float t.rng < p.Plan.corrupt then begin
    let size = Net.Frame.wire_size frame in
    if Bytes.length t.scratch < size then t.scratch <- Bytes.create size;
    let s = Net.Frame.encode_into frame t.scratch in
    flip_checksummed t.rng ~ip_payload_len:frame.Net.Frame.ip.Net.Ipv4.payload_len s;
    match Net.Frame.parse_slice s with
    | Error _ -> t.corrupt_rejected <- t.corrupt_rejected + 1
    | Ok v ->
        (* Tripwire: flip_checksummed should make this unreachable. *)
        t.corrupt_delivered <- t.corrupt_delivered + 1;
        emit t (Net.Frame.of_view v)
  end
  else begin
    let dup =
      p.Plan.duplicate > 0. && Sim.Rng.float t.rng < p.Plan.duplicate
    in
    let delay =
      if p.Plan.reorder > 0. && Sim.Rng.float t.rng < p.Plan.reorder then begin
        t.reordered <- t.reordered + 1;
        extra_delay t
      end
      else 0
    in
    if delay = 0 then emit t frame
    else
      ignore
        (Sim.Engine.schedule_after t.engine ~after:delay (fun () ->
             emit t frame));
    if dup then begin
      t.duplicated <- t.duplicated + 1;
      let after = delay + extra_delay t in
      ignore
        (Sim.Engine.schedule_after t.engine ~after (fun () -> emit t frame))
    end
  end

let seen t = t.seen
let delivered t = t.delivered
let dropped t = t.dropped
let scripted_drops t = t.scripted
let corrupt_rejected t = t.corrupt_rejected
let corrupt_delivered t = t.corrupt_delivered
let duplicated t = t.duplicated
let reordered t = t.reordered

let counters t ~prefix =
  [
    (prefix ^ "seen", t.seen);
    (prefix ^ "delivered", t.delivered);
    (prefix ^ "dropped", t.dropped);
    (prefix ^ "scripted_drops", t.scripted);
    (prefix ^ "corrupt_rejected", t.corrupt_rejected);
    (prefix ^ "corrupt_delivered", t.corrupt_delivered);
    (prefix ^ "duplicated", t.duplicated);
    (prefix ^ "reordered", t.reordered);
  ]
