(** The rack-scale chaos driver — the one sanctioned installer of the
    cluster fault seams ({!Cluster.Fabric.set_link_fault},
    {!Cluster.Switch.set_port_wedge} / [set_brownout] /
    [set_partition], {!Cluster.Control.crash} / [restart]); simlint's
    [fault-seam] rule flags cluster fault-state mutation anywhere else
    inside [lib/].

    {!arm} compiles a {!Plan}'s [cluster] schedules into the pure
    time predicates the seams consume and installs them. With
    [Plan.cluster_is_none] it installs {e nothing} — every seam stays
    on its zero-cost disarmed path and the rack's behaviour and
    metrics snapshot are byte-identical to a fault-free build.

    Injection topology: a host's flapping link (and an asymmetric
    partition between it and the Master plane — the master sits behind
    the ToR, so the cut is directional on that host's physical wire)
    is applied at the shard-wire level, eating frames and control
    closures alike; Host→Host partitions cut at the switch crossbar
    where the (ingress, egress) pair is visible; wedges and brownouts
    are switch-local stall schedules; the master crash/restart is
    scheduled on the master engine. Every loss lands in a counter
    ([fault_link_drops], [switch_port_drops], [switch_partition_drops],
    [ctl_master_restarts], [ctl_epoch_rejections]) — nothing is
    silent, and every predicate is a pure function of simulated time,
    so armed runs stay byte-identical across [LAUBERHORN_SHARDS]. *)

type t

val arm :
  plan:Plan.t ->
  fabric:Cluster.Fabric.t ->
  control:Cluster.Control.t ->
  ?metrics:Obs.Metrics.t ->
  unit ->
  t
(** Compile and install the plan's cluster fault classes. [metrics] is
    the registry the driver-owned fault counters ([fault_link_flaps],
    the derived [fault_link_drops]) register on — a private one when
    omitted; counters register only for armed fault classes, so a
    fault-free plan leaves any shared registry untouched. Call once
    per rack, before [run]. *)

val armed : t -> bool
(** [false] iff the plan's cluster section was empty. *)

val metrics : t -> Obs.Metrics.t

val link_flaps : t -> int
(** Flap down-edges that have occurred so far (simulated time). *)

val link_drops : t -> int
(** Messages eaten at cut wires so far (from the fabric's per-shard
    counters). *)
