(** A fault injector wrapping one directed frame link.

    Sits between a sender's [Frame.t -> unit] and the receiver's
    ingress: applies the scripted and probabilistic faults of a
    {!Plan.link} and counts everything it does. Delivery of unfaulted
    frames is synchronous (no added latency — the wire model underneath
    still prices serialization); reordered and duplicated frames are
    re-scheduled through the engine with a seeded extra delay.

    All RNG draws are guarded on the corresponding probability being
    positive: a {!Plan.perfect_link} injector is pass-through and
    consumes no randomness. *)

type t

val create :
  Sim.Engine.t ->
  plan:Plan.link ->
  rng:Sim.Rng.t ->
  deliver:(Net.Frame.t -> unit) ->
  unit ->
  t

val send : t -> Net.Frame.t -> unit

val flip_checksummed : Sim.Rng.t -> ip_payload_len:int -> Net.Slice.t -> unit
(** Flip one byte of an encoded frame within the region the receiver's
    IPv4/UDP checksums cover (never the UDP checksum field itself,
    whose zeroing would read as "checksum absent"), so the existing
    validation rejects the frame deterministically. Shared with the
    DMA-corruption injector in [Nic.Dma_nic]. *)

(** Counters (all monotonic): *)

val seen : t -> int
val delivered : t -> int
val dropped : t -> int  (** probabilistic drops *)

val scripted_drops : t -> int  (** [drop_nth] drops *)

val corrupt_rejected : t -> int
(** corrupted frames the receiver-side checksums rejected (these never
    reach [deliver]) *)

val corrupt_delivered : t -> int
(** corrupted frames that survived validation — kept as a tripwire;
    with {!flip_checksummed} this stays 0 *)

val duplicated : t -> int
val reordered : t -> int

val counters : t -> prefix:string -> (string * int) list
(** All counters as [(prefix ^ name, value)] pairs. *)
