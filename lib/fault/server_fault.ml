type t = {
  engine : Sim.Engine.t;
  spec : Plan.server_fault;
  crash : unit -> unit;
  restart : unit -> unit;
  mutable handled : int;
  mutable fired : bool;
  mutable crashes : int;
  mutable restarts : int;
}

let fire t =
  if not t.fired then begin
    t.fired <- true;
    t.crashes <- t.crashes + 1;
    t.crash ();
    if t.spec.Plan.restart then
      ignore
        (Sim.Engine.schedule_after t.engine ~after:t.spec.Plan.downtime
           (fun () ->
             t.restarts <- t.restarts + 1;
             t.restart ()))
  end

let install engine ~plan ~crash ~restart =
  let spec = plan.Plan.server in
  let t =
    { engine; spec; crash; restart; handled = 0; fired = false;
      crashes = 0; restarts = 0 }
  in
  (match spec.Plan.crash_at with
  | None -> ()
  | Some at ->
      ignore (Sim.Engine.schedule_at engine ~at (fun () -> fire t)));
  t

let on_handled t () =
  if not t.fired then begin
    t.handled <- t.handled + 1;
    match t.spec.Plan.crash_after_rpcs with
    | Some n when t.handled >= n ->
        (* The hook runs inside the serving thread's own instruction
           stream; killing that thread out from under itself would
           leave the stack mid-step. Crash on the next event instead —
           same simulated instant, deterministic order. *)
        ignore (Sim.Engine.schedule_after t.engine ~after:0 (fun () -> fire t))
    | Some _ | None -> ()
  end

let is_none t = Plan.server_fault_is_none t.spec
let crashes t = t.crashes
let restarts t = t.restarts
