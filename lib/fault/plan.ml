type link = {
  drop : float;
  duplicate : float;
  corrupt : float;
  reorder : float;
  reorder_delay : Sim.Units.duration;
  drop_nth : int list;
}

let perfect_link =
  {
    drop = 0.;
    duplicate = 0.;
    corrupt = 0.;
    reorder = 0.;
    reorder_delay = 0;
    drop_nth = [];
  }

let check_prob name p =
  if p < 0. || p > 1. then
    invalid_arg (Printf.sprintf "Fault.Plan: %s out of [0,1]" name)

let link ?(drop = 0.) ?(duplicate = 0.) ?(corrupt = 0.) ?(reorder = 0.)
    ?(reorder_delay = Sim.Units.us 5) ?(drop_nth = []) () =
  check_prob "drop" drop;
  check_prob "duplicate" duplicate;
  check_prob "corrupt" corrupt;
  check_prob "reorder" reorder;
  if reorder_delay < 0 then invalid_arg "Fault.Plan: negative reorder_delay";
  if List.exists (fun n -> n <= 0) drop_nth then
    invalid_arg "Fault.Plan: drop_nth ordinals are 1-based";
  { drop; duplicate; corrupt; reorder; reorder_delay; drop_nth }

type server_fault = {
  crash_at : Sim.Units.time option;
  crash_after_rpcs : int option;
  downtime : Sim.Units.duration;
  restart : bool;
}

let no_server_fault =
  { crash_at = None; crash_after_rpcs = None; downtime = 0; restart = false }

let server_fault ?crash_at ?crash_after_rpcs ?(downtime = Sim.Units.ms 2)
    ?(restart = true) () =
  (match crash_at with
  | Some at when at < 0 -> invalid_arg "Fault.Plan: negative crash_at"
  | Some _ | None -> ());
  (match crash_after_rpcs with
  | Some n when n <= 0 ->
      invalid_arg "Fault.Plan: crash_after_rpcs must be positive"
  | Some _ | None -> ());
  if downtime < 0 then invalid_arg "Fault.Plan: negative downtime";
  { crash_at; crash_after_rpcs; downtime; restart }

let server_fault_is_none s =
  s.crash_at = None && s.crash_after_rpcs = None

type window = { starts : Sim.Units.time; until : Sim.Units.time }

let window ~starts ~until =
  if starts < 0 then invalid_arg "Fault.Plan: negative window start";
  if until <= starts then invalid_arg "Fault.Plan: empty window";
  { starts; until }

let in_window w t = t >= w.starts && t < w.until

type flap = {
  first_down : Sim.Units.time;
  up_for : Sim.Units.duration;
  down_for : Sim.Units.duration;
  jitter : Sim.Units.duration;
}

let flap ?(first_down = 0) ~up_for ~down_for ?(jitter = 0) () =
  if first_down < 0 then invalid_arg "Fault.Plan: negative first_down";
  if up_for <= 0 then invalid_arg "Fault.Plan: flap up_for must be positive";
  if down_for <= 0 then invalid_arg "Fault.Plan: flap down_for must be positive";
  if jitter < 0 then invalid_arg "Fault.Plan: negative flap jitter";
  if jitter > up_for then
    invalid_arg "Fault.Plan: flap jitter must not exceed up_for";
  { first_down; up_for; down_for; jitter }

(* Avalanching integer hash (xmur-style): the per-cycle jitter draw.
   Pure in (seed, cycle) so every shard computes the same flap edges
   without sharing any RNG state. *)
let hash2 a b =
  let h = (a * 0x2545f491) lxor ((b + 0x7f4a7c15) * 0x61c88647) in
  let h = h lxor (h lsr 16) in
  let h = h * 0x45d9f3b in
  let h = h lxor (h lsr 16) in
  let h = h * 0x45d9f3b in
  (h lxor (h lsr 16)) land max_int

(* The [cycle]-th down-edge instant (jitter applied) — the times the
   chaos driver schedules its flap-transition counting at. *)
let flap_edge ~seed f ~cycle =
  let period = f.up_for + f.down_for in
  let j = if f.jitter = 0 then 0 else hash2 seed cycle mod (f.jitter + 1) in
  f.first_down + (cycle * period) + j

let flap_down_at ~seed f ~at =
  if at < f.first_down then false
  else
    let period = f.up_for + f.down_for in
    let k = (at - f.first_down) / period in
    let off = at - f.first_down - (k * period) in
    let j = if f.jitter = 0 then 0 else hash2 seed k mod (f.jitter + 1) in
    off >= j && off < j + f.down_for

type plane = Host of int | Master

type partition = { srcs : plane list; dsts : plane list; span : window }

let partition ~srcs ~dsts ~span =
  if srcs = [] || dsts = [] then
    invalid_arg "Fault.Plan: partition needs non-empty src and dst planes";
  let check_plane = function
    | Host h when h < 0 -> invalid_arg "Fault.Plan: negative partition host"
    | Host _ | Master -> ()
  in
  List.iter check_plane srcs;
  List.iter check_plane dsts;
  { srcs; dsts; span }

type cluster = {
  flaps : (int * flap) list;
  wedges : (int * window) list;
  brownouts : window list;
  partitions : partition list;
  master : server_fault;
}

let no_cluster =
  {
    flaps = [];
    wedges = [];
    brownouts = [];
    partitions = [];
    master = no_server_fault;
  }

let cluster ?(flaps = []) ?(wedges = []) ?(brownouts = []) ?(partitions = [])
    ?(master = no_server_fault) () =
  if List.exists (fun (h, _) -> h < 0) flaps then
    invalid_arg "Fault.Plan: negative flap host";
  if List.exists (fun (p, _) -> p < 0) wedges then
    invalid_arg "Fault.Plan: negative wedge port";
  if master.crash_after_rpcs <> None then
    invalid_arg "Fault.Plan: master faults are time-triggered only";
  { flaps; wedges; brownouts; partitions; master }

let cluster_is_none c =
  c.flaps = [] && c.wedges = [] && c.brownouts = [] && c.partitions = []
  && server_fault_is_none c.master

type t = {
  seed : int;
  wire : link;
  nic : link;
  fill_delay : float;
  fill_delay_ns : Sim.Units.duration;
  server : server_fault;
  cluster : cluster;
}

let none =
  {
    seed = 0;
    wire = perfect_link;
    nic = perfect_link;
    fill_delay = 0.;
    fill_delay_ns = 0;
    server = no_server_fault;
    cluster = no_cluster;
  }

let make ?(seed = 0x5eed) ?(wire = perfect_link) ?(nic = perfect_link)
    ?(fill_delay = 0.) ?(fill_delay_ns = Sim.Units.ms 20)
    ?(server = no_server_fault) ?(cluster = no_cluster) () =
  check_prob "fill_delay" fill_delay;
  if fill_delay_ns < 0 then invalid_arg "Fault.Plan: negative fill_delay_ns";
  { seed; wire; nic; fill_delay; fill_delay_ns; server; cluster }

let link_is_perfect l =
  l.drop = 0. && l.duplicate = 0. && l.corrupt = 0. && l.reorder = 0.
  && l.drop_nth = []

let is_none t =
  link_is_perfect t.wire && link_is_perfect t.nic && t.fill_delay = 0.
  && server_fault_is_none t.server
  && cluster_is_none t.cluster

let derived_seed t ~salt = t.seed + (salt * 0x61c88647)
let derived_rng t ~salt = Sim.Rng.create ~seed:(derived_seed t ~salt)

(* Salt namespace for per-link flap jitter streams — decorrelated from
   the injector salts used by Harness.Chaos / Dma_nic / Home_agent. *)
let flap_salt = 0x11f1a9

let flap_seed t ~host = derived_seed t ~salt:(flap_salt + host)

let flap_down t ~host ~at =
  match List.assoc_opt host t.cluster.flaps with
  | None -> false
  | Some f -> flap_down_at ~seed:(flap_seed t ~host) f ~at
