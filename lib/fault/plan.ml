type link = {
  drop : float;
  duplicate : float;
  corrupt : float;
  reorder : float;
  reorder_delay : Sim.Units.duration;
  drop_nth : int list;
}

let perfect_link =
  {
    drop = 0.;
    duplicate = 0.;
    corrupt = 0.;
    reorder = 0.;
    reorder_delay = 0;
    drop_nth = [];
  }

let check_prob name p =
  if p < 0. || p > 1. then
    invalid_arg (Printf.sprintf "Fault.Plan: %s out of [0,1]" name)

let link ?(drop = 0.) ?(duplicate = 0.) ?(corrupt = 0.) ?(reorder = 0.)
    ?(reorder_delay = Sim.Units.us 5) ?(drop_nth = []) () =
  check_prob "drop" drop;
  check_prob "duplicate" duplicate;
  check_prob "corrupt" corrupt;
  check_prob "reorder" reorder;
  if reorder_delay < 0 then invalid_arg "Fault.Plan: negative reorder_delay";
  if List.exists (fun n -> n <= 0) drop_nth then
    invalid_arg "Fault.Plan: drop_nth ordinals are 1-based";
  { drop; duplicate; corrupt; reorder; reorder_delay; drop_nth }

type server_fault = {
  crash_at : Sim.Units.time option;
  crash_after_rpcs : int option;
  downtime : Sim.Units.duration;
  restart : bool;
}

let no_server_fault =
  { crash_at = None; crash_after_rpcs = None; downtime = 0; restart = false }

let server_fault ?crash_at ?crash_after_rpcs ?(downtime = Sim.Units.ms 2)
    ?(restart = true) () =
  (match crash_at with
  | Some at when at < 0 -> invalid_arg "Fault.Plan: negative crash_at"
  | Some _ | None -> ());
  (match crash_after_rpcs with
  | Some n when n <= 0 ->
      invalid_arg "Fault.Plan: crash_after_rpcs must be positive"
  | Some _ | None -> ());
  if downtime < 0 then invalid_arg "Fault.Plan: negative downtime";
  { crash_at; crash_after_rpcs; downtime; restart }

let server_fault_is_none s =
  s.crash_at = None && s.crash_after_rpcs = None

type t = {
  seed : int;
  wire : link;
  nic : link;
  fill_delay : float;
  fill_delay_ns : Sim.Units.duration;
  server : server_fault;
}

let none =
  {
    seed = 0;
    wire = perfect_link;
    nic = perfect_link;
    fill_delay = 0.;
    fill_delay_ns = 0;
    server = no_server_fault;
  }

let make ?(seed = 0x5eed) ?(wire = perfect_link) ?(nic = perfect_link)
    ?(fill_delay = 0.) ?(fill_delay_ns = Sim.Units.ms 20)
    ?(server = no_server_fault) () =
  check_prob "fill_delay" fill_delay;
  if fill_delay_ns < 0 then invalid_arg "Fault.Plan: negative fill_delay_ns";
  { seed; wire; nic; fill_delay; fill_delay_ns; server }

let link_is_perfect l =
  l.drop = 0. && l.duplicate = 0. && l.corrupt = 0. && l.reorder = 0.
  && l.drop_nth = []

let is_none t =
  link_is_perfect t.wire && link_is_perfect t.nic && t.fill_delay = 0.
  && server_fault_is_none t.server

let derived_seed t ~salt = t.seed + (salt * 0x61c88647)
let derived_rng t ~salt = Sim.Rng.create ~seed:(derived_seed t ~salt)
