type link = {
  drop : float;
  duplicate : float;
  corrupt : float;
  reorder : float;
  reorder_delay : Sim.Units.duration;
  drop_nth : int list;
}

let perfect_link =
  {
    drop = 0.;
    duplicate = 0.;
    corrupt = 0.;
    reorder = 0.;
    reorder_delay = 0;
    drop_nth = [];
  }

let check_prob name p =
  if p < 0. || p > 1. then
    invalid_arg (Printf.sprintf "Fault.Plan: %s out of [0,1]" name)

let link ?(drop = 0.) ?(duplicate = 0.) ?(corrupt = 0.) ?(reorder = 0.)
    ?(reorder_delay = Sim.Units.us 5) ?(drop_nth = []) () =
  check_prob "drop" drop;
  check_prob "duplicate" duplicate;
  check_prob "corrupt" corrupt;
  check_prob "reorder" reorder;
  if reorder_delay < 0 then invalid_arg "Fault.Plan: negative reorder_delay";
  if List.exists (fun n -> n <= 0) drop_nth then
    invalid_arg "Fault.Plan: drop_nth ordinals are 1-based";
  { drop; duplicate; corrupt; reorder; reorder_delay; drop_nth }

type t = {
  seed : int;
  wire : link;
  nic : link;
  fill_delay : float;
  fill_delay_ns : Sim.Units.duration;
}

let none =
  {
    seed = 0;
    wire = perfect_link;
    nic = perfect_link;
    fill_delay = 0.;
    fill_delay_ns = 0;
  }

let make ?(seed = 0x5eed) ?(wire = perfect_link) ?(nic = perfect_link)
    ?(fill_delay = 0.) ?(fill_delay_ns = Sim.Units.ms 20) () =
  check_prob "fill_delay" fill_delay;
  if fill_delay_ns < 0 then invalid_arg "Fault.Plan: negative fill_delay_ns";
  { seed; wire; nic; fill_delay; fill_delay_ns }

let link_is_perfect l =
  l.drop = 0. && l.duplicate = 0. && l.corrupt = 0. && l.reorder = 0.
  && l.drop_nth = []

let is_none t =
  link_is_perfect t.wire && link_is_perfect t.nic && t.fill_delay = 0.

let derived_seed t ~salt = t.seed + (salt * 0x61c88647)
let derived_rng t ~salt = Sim.Rng.create ~seed:(derived_seed t ~salt)
