(** Deterministic fault plans.

    A plan is pure data: which faults to inject, with what probability,
    on which link, under which seed. The injectors ({!Link}, the DMA
    NIC, the home agent) derive their private RNG streams from the
    plan's seed, so two runs with the same plan and the same workload
    seeds produce identical traces — faults included.

    [none] is the identity plan: every injector guards its RNG draws on
    the relevant probability being positive, so a [none]-configured run
    consumes no random numbers and is bit-identical to a run without
    the fault layer at all. *)

type link = {
  drop : float;  (** per-frame loss probability *)
  duplicate : float;  (** per-frame duplication probability *)
  corrupt : float;  (** per-frame single-byte corruption probability *)
  reorder : float;  (** per-frame probability of an extra random delay *)
  reorder_delay : Sim.Units.duration;
      (** maximum extra delay for reordered (and duplicated) frames *)
  drop_nth : int list;
      (** scripted drops: 1-based ordinals of frames to drop on this
          link, independent of the probabilistic faults *)
}
(** Faults applied to one directed link. *)

val perfect_link : link
(** No faults. *)

val link :
  ?drop:float ->
  ?duplicate:float ->
  ?corrupt:float ->
  ?reorder:float ->
  ?reorder_delay:Sim.Units.duration ->
  ?drop_nth:int list ->
  unit ->
  link
(** A link fault spec; everything defaults to fault-free.
    @raise Invalid_argument on probabilities outside [0,1], a negative
    delay, or non-positive scripted ordinals. *)

type server_fault = {
  crash_at : Sim.Units.time option;
      (** absolute simulation time of the crash, if time-triggered *)
  crash_after_rpcs : int option;
      (** crash once the server has handled this many RPCs, if
          count-triggered (whichever trigger fires first wins) *)
  downtime : Sim.Units.duration;
      (** how long the process stays dead before a restart *)
  restart : bool;  (** whether the process comes back at all *)
}
(** A scripted server-process crash (and optional restart). Pure data,
    deterministic by construction — no RNG involved. *)

val no_server_fault : server_fault
(** Never crashes. *)

val server_fault :
  ?crash_at:Sim.Units.time ->
  ?crash_after_rpcs:int ->
  ?downtime:Sim.Units.duration ->
  ?restart:bool ->
  unit ->
  server_fault
(** A server crash spec; [downtime] defaults to 2 ms, [restart] to
    [true]. With neither trigger given the spec is inert.
    @raise Invalid_argument on negative times or a non-positive RPC
    count. *)

val server_fault_is_none : server_fault -> bool
(** No trigger armed — the injector is a no-op. *)

type t = {
  seed : int;  (** root seed all injector streams derive from *)
  wire : link;  (** client harness <-> server MAC, both directions *)
  nic : link;
      (** NIC DMA completion stage: [drop] forces a counted tail drop
          of the DMA'd frame, [corrupt] flips a byte of the DMA'd
          bytes so the driver-side parse rejects the descriptor.
          [duplicate]/[reorder]/[drop_nth] do not apply here. *)
  fill_delay : float;
      (** probability that a coherence fill (a [Home_agent.stage]) is
          delayed by [fill_delay_ns] — with a delay longer than the
          stack's TRYAGAIN timeout this forces real TRYAGAIN recovery
          under load *)
  fill_delay_ns : Sim.Units.duration;
  server : server_fault;
      (** scripted server-process crash/restart (see {!Server_fault}) *)
}

val none : t
(** The identity plan; injectors configured with it are zero-cost. *)

val make :
  ?seed:int ->
  ?wire:link ->
  ?nic:link ->
  ?fill_delay:float ->
  ?fill_delay_ns:Sim.Units.duration ->
  ?server:server_fault ->
  unit ->
  t
(** @raise Invalid_argument on out-of-range probabilities/delays. *)

val link_is_perfect : link -> bool
val is_none : t -> bool

val derived_seed : t -> salt:int -> int
(** A per-injector seed decorrelated from the root seed. Injectors at
    different choke points use distinct salts so their fault streams
    are independent. *)

val derived_rng : t -> salt:int -> Sim.Rng.t
