(** Deterministic fault plans.

    A plan is pure data: which faults to inject, with what probability,
    on which link, under which seed. The injectors ({!Link}, the DMA
    NIC, the home agent) derive their private RNG streams from the
    plan's seed, so two runs with the same plan and the same workload
    seeds produce identical traces — faults included.

    [none] is the identity plan: every injector guards its RNG draws on
    the relevant probability being positive, so a [none]-configured run
    consumes no random numbers and is bit-identical to a run without
    the fault layer at all. *)

type link = {
  drop : float;  (** per-frame loss probability *)
  duplicate : float;  (** per-frame duplication probability *)
  corrupt : float;  (** per-frame single-byte corruption probability *)
  reorder : float;  (** per-frame probability of an extra random delay *)
  reorder_delay : Sim.Units.duration;
      (** maximum extra delay for reordered (and duplicated) frames *)
  drop_nth : int list;
      (** scripted drops: 1-based ordinals of frames to drop on this
          link, independent of the probabilistic faults *)
}
(** Faults applied to one directed link. *)

val perfect_link : link
(** No faults. *)

val link :
  ?drop:float ->
  ?duplicate:float ->
  ?corrupt:float ->
  ?reorder:float ->
  ?reorder_delay:Sim.Units.duration ->
  ?drop_nth:int list ->
  unit ->
  link
(** A link fault spec; everything defaults to fault-free.
    @raise Invalid_argument on probabilities outside [0,1], a negative
    delay, or non-positive scripted ordinals. *)

type server_fault = {
  crash_at : Sim.Units.time option;
      (** absolute simulation time of the crash, if time-triggered *)
  crash_after_rpcs : int option;
      (** crash once the server has handled this many RPCs, if
          count-triggered (whichever trigger fires first wins) *)
  downtime : Sim.Units.duration;
      (** how long the process stays dead before a restart *)
  restart : bool;  (** whether the process comes back at all *)
}
(** A scripted server-process crash (and optional restart). Pure data,
    deterministic by construction — no RNG involved. *)

val no_server_fault : server_fault
(** Never crashes. *)

val server_fault :
  ?crash_at:Sim.Units.time ->
  ?crash_after_rpcs:int ->
  ?downtime:Sim.Units.duration ->
  ?restart:bool ->
  unit ->
  server_fault
(** A server crash spec; [downtime] defaults to 2 ms, [restart] to
    [true]. With neither trigger given the spec is inert.
    @raise Invalid_argument on negative times or a non-positive RPC
    count. *)

val server_fault_is_none : server_fault -> bool
(** No trigger armed — the injector is a no-op. *)

(** {2 Cluster-level fault classes}

    Rack faults are pure schedules: every predicate below is a pure
    function of the plan and a simulated time, so any shard (or any
    domain) consulting one at any moment computes the same answer
    without shared mutable state — the property that keeps chaos runs
    byte-identical across [LAUBERHORN_SHARDS]. *)

type window = { starts : Sim.Units.time; until : Sim.Units.time }
(** A half-open interval [\[starts, until)] of simulated time. *)

val window : starts:Sim.Units.time -> until:Sim.Units.time -> window
(** @raise Invalid_argument on a negative start or an empty interval. *)

val in_window : window -> Sim.Units.time -> bool

type flap = {
  first_down : Sim.Units.time;  (** first down-edge (before jitter) *)
  up_for : Sim.Units.duration;  (** nominal up time per cycle *)
  down_for : Sim.Units.duration;  (** down time per cycle *)
  jitter : Sim.Units.duration;
      (** maximum seeded forward shift of each cycle's down-edge *)
}
(** A periodic link flap schedule: the link repeats
    [up_for + down_for]-long cycles starting at [first_down], down for
    [down_for] within each cycle, the down-edge shifted by a per-cycle
    hash draw in [\[0, jitter\]]. [jitter <= up_for] keeps every down
    window inside its own cycle, so membership is O(1) in the cycle
    index — no cumulative-sum walk, even over hour-long soaks. *)

val flap :
  ?first_down:Sim.Units.time ->
  up_for:Sim.Units.duration ->
  down_for:Sim.Units.duration ->
  ?jitter:Sim.Units.duration ->
  unit ->
  flap
(** @raise Invalid_argument on non-positive cycle parts, a negative
    [first_down], or [jitter > up_for]. *)

val flap_down_at : seed:int -> flap -> at:Sim.Units.time -> bool
(** Pure membership test: is the link down at [at]? *)

val flap_edge : seed:int -> flap -> cycle:int -> Sim.Units.time
(** The [cycle]-th (0-based) down-edge instant, jitter applied —
    strictly increasing in [cycle]. *)

type plane = Host of int | Master
(** An endpoint class a partition can cut: a worker host (by rack
    index) or the master/control plane. *)

type partition = { srcs : plane list; dsts : plane list; span : window }
(** An asymmetric cut: during [span], traffic from any plane in [srcs]
    to any plane in [dsts] is dropped (and counted); the reverse
    direction is untouched unless listed by another partition. *)

val partition : srcs:plane list -> dsts:plane list -> span:window -> partition
(** @raise Invalid_argument on empty plane lists or a negative host. *)

type cluster = {
  flaps : (int * flap) list;
      (** per-host link flaps: host [h]'s wire to the switch drops
          frames (and control probes — they cross the same wire) in
          both directions while the flap schedule says down *)
  wedges : (int * window) list;
      (** switch egress-port failures: during the window the port's
          transmitter is wedged — frames queue behind it and overflow
          drops are counted, never silent *)
  brownouts : window list;
      (** whole-switch brownouts: the crossbar stalls, ingress queues
          back up, overflow drops are counted *)
  partitions : partition list;  (** asymmetric directed cuts *)
  master : server_fault;
      (** master crash/restart (time-triggered only): workers survive
          it by re-registering under a new lease generation *)
}

val no_cluster : cluster

val cluster :
  ?flaps:(int * flap) list ->
  ?wedges:(int * window) list ->
  ?brownouts:window list ->
  ?partitions:partition list ->
  ?master:server_fault ->
  unit ->
  cluster
(** @raise Invalid_argument on negative hosts/ports or a
    count-triggered master fault. *)

val cluster_is_none : cluster -> bool
(** No cluster fault armed — every seam stays on its zero-cost path. *)

type t = {
  seed : int;  (** root seed all injector streams derive from *)
  wire : link;  (** client harness <-> server MAC, both directions *)
  nic : link;
      (** NIC DMA completion stage: [drop] forces a counted tail drop
          of the DMA'd frame, [corrupt] flips a byte of the DMA'd
          bytes so the driver-side parse rejects the descriptor.
          [duplicate]/[reorder]/[drop_nth] do not apply here. *)
  fill_delay : float;
      (** probability that a coherence fill (a [Home_agent.stage]) is
          delayed by [fill_delay_ns] — with a delay longer than the
          stack's TRYAGAIN timeout this forces real TRYAGAIN recovery
          under load *)
  fill_delay_ns : Sim.Units.duration;
  server : server_fault;
      (** scripted server-process crash/restart (see {!Server_fault}) *)
  cluster : cluster;  (** rack-scale fault schedules (see {!cluster}) *)
}

val none : t
(** The identity plan; injectors configured with it are zero-cost. *)

val make :
  ?seed:int ->
  ?wire:link ->
  ?nic:link ->
  ?fill_delay:float ->
  ?fill_delay_ns:Sim.Units.duration ->
  ?server:server_fault ->
  ?cluster:cluster ->
  unit ->
  t
(** @raise Invalid_argument on out-of-range probabilities/delays. *)

val link_is_perfect : link -> bool
val is_none : t -> bool

val derived_seed : t -> salt:int -> int
(** A per-injector seed decorrelated from the root seed. Injectors at
    different choke points use distinct salts so their fault streams
    are independent. *)

val derived_rng : t -> salt:int -> Sim.Rng.t

val flap_seed : t -> host:int -> int
(** The seed of host [host]'s flap-jitter stream — exported so the
    rack chaos driver can precompile per-host predicates. *)

val flap_down : t -> host:int -> at:Sim.Units.time -> bool
(** Is host [host]'s link down at [at]? [false] when the plan has no
    flap for that host. *)
