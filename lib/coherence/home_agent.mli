(** Device-homed cache lines with deferred fills — the mechanism behind
    the Lauberhorn receive protocol (paper §5.1, Figure 4).

    The device (NIC) is the home of a set of cache lines. A CPU load
    miss on such a line travels to the device, which may:

    - answer immediately with staged data (a normal fill),
    - park the request and answer later, when a packet arrives — the
      core is stalled, not spinning, and consumes no bus bandwidth
      while waiting, or
    - answer with a TRYAGAIN dummy fill after a timeout, because the
      coherence protocol cannot leave a fill outstanding forever
      without tripping a fatal bus error. The paper uses 15 ms.

    CPU stores to device-homed lines become visible to the device after
    the store-release latency, and the device can pull a line the CPU
    has written with a fetch-exclusive (used to collect RPC responses).

    All latencies come from the {!Interconnect.profile}. Transaction
    counts are exposed for the polling-overhead experiment (E5). *)

type t

type line_id = int

type fill =
  | Data of bytes  (** A real fill carrying line-sized payload. *)
  | Tryagain  (** Timeout dummy; the CPU should retry or yield. *)

val create :
  Sim.Engine.t -> Interconnect.profile ->
  ?stage_delay:(unit -> Sim.Units.duration) ->
  timeout:Sim.Units.duration -> unit -> t
(** [timeout] bounds how long a load may stay parked (15 ms in the
    paper).

    [stage_delay] is a fault-injection hook: sampled once per {!stage},
    a positive result defers the fill's arrival by that long, letting
    the TRYAGAIN timeout race (and beat) real data — the deferred-fill
    misbehaviour the paper's recovery structure exists for. [None]
    (the default) leaves {!stage} synchronous and costs nothing. *)

val profile : t -> Interconnect.profile
val engine : t -> Sim.Engine.t

(** {1 Sanitizer hook} *)

type sanitizer_event =
  | Fill of {
      line : line_id;
      gen_at_issue : int;  (** Line generation when the fill left the agent. *)
      gen_now : int;  (** Line generation when it reached the core. *)
      tryagain : bool;
    }
      (** A fill (real or TRYAGAIN) delivered to a waiting core. A
          mismatch between the two generations means the line was
          {!reset_line} while the fill crossed the interconnect. *)
  | Reset of { line : line_id; new_gen : int }
      (** {!reset_line} ran; generations must only ever grow. *)

val set_sanitizer : t -> (sanitizer_event -> unit) option -> unit
(** Install (or clear) the protocol observer. With [None] — the
    default — fills pay one branch and behaviour is unchanged. *)

val alloc_line : t -> line_id
(** Allocate a fresh device-homed line. *)

val set_on_load : t -> line_id -> (served:bool -> unit) -> unit
(** Device-side callback fired whenever a CPU load reaches the home
    agent: [served = true] when staged data satisfied it immediately,
    [false] when the load parked. The home agent sees every fill
    request, which is how the NIC both drives its per-endpoint protocol
    state and infers "a core is polling here" (paper §4). *)

val set_on_store : t -> line_id -> (bytes -> unit) -> unit
(** Device-side callback fired when a CPU store becomes visible. *)

val cpu_load : t -> line_id -> (fill -> unit) -> unit
(** CPU issues a load. The callback fires when the fill returns —
    immediately (one round trip) if data is staged, else when the
    device stages data or the timeout expires.
    @raise Invalid_argument if a load is already parked on this line
    (hardware cannot have two outstanding fills for one line from the
    blocked core). *)

val stage : t -> line_id -> bytes -> unit
(** Device stages fill data: completes a parked load now, or is held
    for the next load. Staged data is consumed by exactly one fill.
    @raise Invalid_argument if data exceeds the line size. *)

val stage_pending : t -> line_id -> bool
(** Whether staged data is waiting for a load. *)

val load_parked : t -> line_id -> bool
(** Whether a CPU load is currently parked on the line. *)

val kick : t -> line_id -> unit
(** Force a parked load to complete with [Tryagain] now (used to
    unblock a core for preemption, §5.1). No-op when nothing is
    parked. *)

val reset_line : t -> line_id -> unit
(** Crash teardown: discard any parked load {e without} answering it
    (its timeout timer is cancelled and its continuation never fires —
    the loading thread is dead), and drop staged data and the CPU's
    uncollected store copy. Load requests still on the interconnect
    when the reset happens die at the directory when they land
    (tallied by {!stale_loads}) instead of re-parking. The line is
    afterwards indistinguishable from a freshly allocated one. *)

val cpu_store : t -> line_id -> bytes -> unit
(** CPU writes the line; the device's [on_store] callback fires after
    the store-release latency. *)

val fetch_exclusive : t -> line_id -> (bytes option -> unit) -> unit
(** Device pulls the line from the CPU cache; yields the bytes of the
    last [cpu_store], or [None] if the CPU never wrote it. The CPU's
    copy is invalidated. *)

(** {1 Transaction accounting (bus-traffic experiments)} *)

val loads : t -> int
val fills : t -> int
val tryagains : t -> int
val stores : t -> int
val fetch_exclusives : t -> int

val delayed_stages : t -> int
(** Fills deferred by the [stage_delay] fault hook. *)

val line_resets : t -> int
(** Parked loads discarded by {!reset_line} (crash teardown). *)

val stale_loads : t -> int
(** In-flight load requests that landed after a {!reset_line} of their
    line and were discarded at the directory. *)
