type line_id = int
type fill = Data of bytes | Tryagain

type sanitizer_event =
  | Fill of {
      line : line_id;
      gen_at_issue : int;
      gen_now : int;
      tryagain : bool;
    }
  | Reset of { line : line_id; new_gen : int }

type parked = {
  callback : fill -> unit;
  timer : Sim.Engine.handle;
}

type line = {
  id : line_id;
  mutable staged : bytes option;
  mutable parked : parked option;
  mutable cpu_copy : bytes option;  (* last CPU store, until fetched *)
  mutable on_load : (served:bool -> unit) option;
  mutable on_store : (bytes -> unit) option;
  mutable gen : int;
      (* bumped by [reset_line]; loads in flight across a reset are
         discarded when they land *)
}

type t = {
  engine : Sim.Engine.t;
  prof : Interconnect.profile;
  timeout : Sim.Units.duration;
  stage_delay : (unit -> Sim.Units.duration) option;
      (* fault injection: per-stage extra interconnect latency *)
  mutable lines : line array;
  mutable n_lines : int;
  mutable loads : int;
  mutable fills : int;
  mutable tryagains : int;
  mutable stores : int;
  mutable fetchx : int;
  mutable delayed_stages : int;
  mutable line_resets : int;
  mutable stale_loads : int;
  mutable sanitizer : (sanitizer_event -> unit) option;
}

let create engine prof ?stage_delay ~timeout () =
  if timeout <= 0 then invalid_arg "Home_agent.create: non-positive timeout";
  {
    engine;
    prof;
    timeout;
    stage_delay;
    lines = Array.init 16 (fun i ->
        { id = i; staged = None; parked = None; cpu_copy = None;
          on_load = None; on_store = None; gen = 0 });
    n_lines = 0;
    loads = 0;
    fills = 0;
    tryagains = 0;
    stores = 0;
    fetchx = 0;
    delayed_stages = 0;
    line_resets = 0;
    stale_loads = 0;
    sanitizer = None;
  }

let profile t = t.prof
let engine t = t.engine
let set_sanitizer t f = t.sanitizer <- f

let alloc_line t =
  if Int.equal t.n_lines (Array.length t.lines) then begin
    let bigger =
      Array.init (2 * t.n_lines) (fun i ->
          if i < t.n_lines then t.lines.(i)
          else
            { id = i; staged = None; parked = None; cpu_copy = None;
              on_load = None; on_store = None; gen = 0 })
    in
    t.lines <- bigger
  end;
  let id = t.n_lines in
  t.n_lines <- t.n_lines + 1;
  id

let line t id =
  if id < 0 || id >= t.n_lines then
    invalid_arg (Printf.sprintf "Home_agent: unknown line %d" id);
  t.lines.(id)

let set_on_load t id f = (line t id).on_load <- Some f
let set_on_store t id f = (line t id).on_store <- Some f

let respond t ln k fill =
  (match fill with
  | Data _ -> t.fills <- t.fills + 1
  | Tryagain -> t.tryagains <- t.tryagains + 1);
  let gen_at_issue = ln.gen in
  ignore
    (Sim.Engine.schedule_after t.engine ~after:t.prof.Interconnect.load_response
       (fun () ->
         (match t.sanitizer with
         | None -> ()
         | Some observe ->
             observe
               (Fill
                  {
                    line = ln.id;
                    gen_at_issue;
                    gen_now = ln.gen;
                    tryagain =
                      (match fill with Tryagain -> true | Data _ -> false);
                  }));
         k fill))

let complete_parked t ln fill =
  match ln.parked with
  | None -> ()
  | Some p ->
      ln.parked <- None;
      Sim.Engine.cancel t.engine p.timer;
      respond t ln p.callback fill

let cpu_load t id k =
  let ln = line t id in
  t.loads <- t.loads + 1;
  let gen = ln.gen in
  (* The miss takes load_request to reach the home agent. *)
  ignore
    (Sim.Engine.schedule_after t.engine ~after:t.prof.Interconnect.load_request
       (fun () ->
         if not (Int.equal ln.gen gen) then
           (* The line was reset while this load request was on the
              interconnect: the loader's process is gone, so the
              request dies at the directory instead of parking. *)
           t.stale_loads <- t.stale_loads + 1
         else
         match ln.staged with
         | Some data ->
             ln.staged <- None;
             respond t ln k (Data data);
             (match ln.on_load with Some f -> f ~served:true | None -> ())
         | None ->
             if Option.is_some ln.parked then
               invalid_arg
                 (Printf.sprintf
                    "Home_agent.cpu_load: line %d already has a parked load"
                    id);
             let timer =
               Sim.Engine.schedule_after t.engine ~after:t.timeout (fun () ->
                   match ln.parked with
                   | None -> ()
                   | Some p ->
                       ln.parked <- None;
                       respond t ln p.callback Tryagain)
             in
             ln.parked <- Some { callback = k; timer };
             (match ln.on_load with Some f -> f ~served:false | None -> ())))

let stage t id data =
  let ln = line t id in
  if Bytes.length data > t.prof.Interconnect.cache_line_bytes then
    invalid_arg
      (Printf.sprintf "Home_agent.stage: %d bytes exceeds line size %d"
         (Bytes.length data) t.prof.Interconnect.cache_line_bytes);
  let apply () =
    match ln.parked with
    | Some _ -> complete_parked t ln (Data data)
    | None -> ln.staged <- Some data
  in
  match t.stage_delay with
  | None -> apply ()
  | Some f ->
      let d = f () in
      if d <= 0 then apply ()
      else begin
        (* A delayed interconnect fill: while it is in flight the
           parked load's timeout may win the race and answer Tryagain
           first — exactly the recovery path the paper's §5.1 dummy
           fill exists for. The data still lands when the transfer
           completes (staged, or filling the re-parked load). *)
        t.delayed_stages <- t.delayed_stages + 1;
        ignore (Sim.Engine.schedule_after t.engine ~after:d apply)
      end

let stage_pending t id = Option.is_some (line t id).staged
let load_parked t id = Option.is_some (line t id).parked

let kick t id =
  let ln = line t id in
  complete_parked t ln Tryagain

let reset_line t id =
  let ln = line t id in
  (match ln.parked with
  | None -> ()
  | Some p ->
      (* Drop the parked load without answering it: the loader is dead
         and its continuation must never fire. *)
      ln.parked <- None;
      Sim.Engine.cancel t.engine p.timer;
      t.line_resets <- t.line_resets + 1);
  ln.gen <- ln.gen + 1;
  ln.staged <- None;
  ln.cpu_copy <- None;
  match t.sanitizer with
  | None -> ()
  | Some observe -> observe (Reset { line = ln.id; new_gen = ln.gen })

let cpu_store t id data =
  let ln = line t id in
  t.stores <- t.stores + 1;
  ln.cpu_copy <- Some data;
  ignore
    (Sim.Engine.schedule_after t.engine
       ~after:t.prof.Interconnect.store_release (fun () ->
         match ln.on_store with Some f -> f data | None -> ()))

let fetch_exclusive t id k =
  let ln = line t id in
  t.fetchx <- t.fetchx + 1;
  ignore
    (Sim.Engine.schedule_after t.engine
       ~after:t.prof.Interconnect.fetch_exclusive (fun () ->
         let data = ln.cpu_copy in
         ln.cpu_copy <- None;
         k data))

let loads t = t.loads
let fills t = t.fills
let tryagains t = t.tryagains
let stores t = t.stores
let fetch_exclusives t = t.fetchx
let delayed_stages t = t.delayed_stages
let line_resets t = t.line_resets
let stale_loads t = t.stale_loads
