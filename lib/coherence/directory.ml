type agent = int

let device_agent_base = 1_000

type line_state = Invalid | Shared of agent list | Modified of agent
type t = { lines : (int, line_state) Hashtbl.t }

let create () = { lines = Hashtbl.create 256 }

let state t ~line =
  match Hashtbl.find_opt t.lines line with
  | Some s -> s
  | None -> Invalid

let set t ~line s =
  match s with
  | Invalid -> Hashtbl.remove t.lines line
  | Shared _ | Modified _ -> Hashtbl.replace t.lines line s

type transaction = {
  latency : latency_class;
  invalidated : agent list;
  writeback_from : agent option;
}

and latency_class = Hit | Miss_clean | Miss_dirty

let read t ~line ~agent =
  match state t ~line with
  | Invalid ->
      set t ~line (Shared [ agent ]);
      { latency = Miss_clean; invalidated = []; writeback_from = None }
  | Shared sharers ->
      if List.exists (Int.equal agent) sharers then
        { latency = Hit; invalidated = []; writeback_from = None }
      else begin
        set t ~line (Shared (List.sort_uniq Int.compare (agent :: sharers)));
        { latency = Miss_clean; invalidated = []; writeback_from = None }
      end
  | Modified owner ->
      if Int.equal owner agent then
        { latency = Hit; invalidated = []; writeback_from = None }
      else begin
        (* Owner is downgraded to sharer after writing back. *)
        set t ~line (Shared (List.sort_uniq Int.compare [ agent; owner ]));
        { latency = Miss_dirty; invalidated = []; writeback_from = Some owner }
      end

let write t ~line ~agent =
  match state t ~line with
  | Invalid ->
      set t ~line (Modified agent);
      { latency = Miss_clean; invalidated = []; writeback_from = None }
  | Shared sharers ->
      let others = List.filter (fun a -> not (Int.equal a agent)) sharers in
      set t ~line (Modified agent);
      let latency =
        if List.exists (Int.equal agent) sharers then Hit else Miss_clean
      in
      { latency; invalidated = others; writeback_from = None }
  | Modified owner ->
      if Int.equal owner agent then
        { latency = Hit; invalidated = []; writeback_from = None }
      else begin
        set t ~line (Modified agent);
        {
          latency = Miss_dirty;
          invalidated = [ owner ];
          writeback_from = Some owner;
        }
      end

let evict t ~line ~agent =
  match state t ~line with
  | Invalid -> ()
  | Shared sharers -> (
      match List.filter (fun a -> not (Int.equal a agent)) sharers with
      | [] -> set t ~line Invalid
      | rest -> set t ~line (Shared rest))
  | Modified owner -> if Int.equal owner agent then set t ~line Invalid

let holders t ~line =
  match state t ~line with
  | Invalid -> []
  | Shared sharers -> sharers
  | Modified owner -> [ owner ]

let lines_held_by t ~agent =
  Hashtbl.fold
    (fun line s acc ->
      let held =
        match s with
        | Invalid -> false
        | Shared sharers -> List.exists (Int.equal agent) sharers
        | Modified owner -> Int.equal owner agent
      in
      if held then line :: acc else acc)
    t.lines []
  |> List.sort Int.compare

let check_invariants t =
  let check line s =
    match s with
    | Invalid -> Error (Printf.sprintf "line %d: stored Invalid state" line)
    | Shared [] -> Error (Printf.sprintf "line %d: empty sharer list" line)
    | Shared sharers ->
        let sorted = List.sort_uniq Int.compare sharers in
        if not (List.equal Int.equal sorted sharers) then
          Error (Printf.sprintf "line %d: unsorted/duplicate sharers" line)
        else Ok ()
    | Modified _ -> Ok ()
  in
  Hashtbl.fold
    (fun line s acc ->
      match acc with Error _ -> acc | Ok () -> check line s)
    t.lines (Ok ())
