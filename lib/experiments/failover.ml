(* E15 — server-side failure domain: crash/restart lifecycle and NIC
   admission control under overload.

   Part (a) kills the (only) hot service mid-sweep on all four stacks
   and restarts it after a fixed downtime. What distinguishes the
   stacks is not whether they recover — the client's retry layer
   eventually pushes everything through — but *how* the crash window
   is experienced:

   - lauberhorn: the NIC learns of the death through the scheduling
     mirror (one push-lag later), NACKs staged/in-flight requests
     [err_dead], parks the SRAM survivors in limbo and redelivers them
     at the respawn push. Clients see explicit rejects and convert
     them into immediate retries — no timeout burned, nothing silently
     lost (conservation is checked).
   - ccnic-static: same NACK discipline, but with no mirror the kill
     tears NIC state down synchronously — the ablation shows the
     mechanism works without the OS integration, it just cannot
     coexist with dynamic scheduling.
   - linux: the kernel owns the socket buffer, so queued datagrams
     survive and are served after restart — but requests in a
     handler's hands vanish with *no* signal; clients discover the
     crash purely by timeout. That silence is the baseline.
   - bypass: the app owns the rings; a crash stops the pollers, the
     rings absorb arrivals until they overflow, and again there is no
     signal — plus the rings' contents survive only up to capacity.

   Part (b) sweeps offered load from 0.5x to 4x of one service's
   capacity on Lauberhorn with NIC admission control (hysteretic
   shedding, err_shed wire rejects) on and off. With shedding off,
   overload turns into silent SRAM-overflow drops and timeout-driven
   retries; with it on, the NIC fails fast and the latency tail of
   what *is* admitted stays bounded.

   Deterministic under fixed seeds: scripts/check.sh runs this section
   twice and requires byte-identical output. *)

let service_idx = 0

(* ---------- part (a): crash + restart ---------- *)

let crash_at = Sim.Units.ms 3
let downtime = Sim.Units.ms 2
let rate = 100_000.
let horizon = Sim.Units.ms 10
let drain = Sim.Units.ms 60

type crash_result = {
  m : Common.measurement;
  chaos : Harness.Chaos.t;
  crashes : int;
  restarts : int;
  recovery : Sim.Units.duration option;
      (* first completion at/after the restart instant, relative to the
         crash — "how long until the service demonstrably works again" *)
  window_completions : int;  (* completions inside the outage window *)
}

let run_crash ?(shed = false) ~server_fault flavour =
  let setup =
    Workload.Scenario.echo_fleet ~n:1 ~handler_time:(Sim.Units.ns 500) ()
  in
  let service_id = Workload.Scenario.service_id_of setup ~service_idx in
  let plan = Fault.Plan.make ~seed:15 ~server:server_fault () in
  let flavour =
    (* Part (a) exercises shedding only where asked; the flag lives in
       the Lauberhorn config. *)
    match flavour with
    | Common.Lauberhorn (cfg, mode) when shed ->
        Common.Lauberhorn (Lauberhorn.Config.with_shed cfg true, mode)
    | f -> f
  in
  let engine = Sim.Engine.create () in
  let metrics = Obs.Metrics.create () in
  let chaos =
    Harness.Chaos.create engine ~plan ~timeout:(Sim.Units.us 200) ~retries:20
      ~backoff:1.5 ~max_timeout:(Sim.Units.ms 2) ~jitter:0.25 ~metrics ()
  in
  let server =
    Common.make_server ~ncores:4 ~engine ~fault:plan ~metrics
      ~egress:(Harness.Chaos.egress chaos) flavour setup
  in
  Harness.Chaos.connect chaos server.Common.driver;
  let sf =
    Fault.Server_fault.install engine ~plan
      ~crash:(fun () -> server.Common.kill_service ~service_id)
      ~restart:(fun () -> server.Common.restart_service ~service_id)
  in
  (* The count trigger (crash_after_rpcs) needs the server to report
     handled RPCs; only the Lauberhorn stack exposes the hook. *)
  (match server.Common.lauberhorn with
  | Some s -> Lauberhorn.Stack.on_handled s (Fault.Server_fault.on_handled sf)
  | None -> ());
  let rng = Sim.Rng.create ~seed:42 in
  Workload.Arrivals.open_loop engine rng ~rate_per_s:rate ~until:horizon
    (fun ~seq:_ ->
      Harness.Chaos.call chaos ~service_id ~method_id:0
        ~port:(Workload.Scenario.port_of setup ~service_idx)
        (Rpc.Value.Blob (Bytes.make 64 'w')));
  Common.run_to engine ~until:(horizon + drain);
  server.Common.flush ();
  let recorder = Harness.Chaos.recorder chaos in
  let h = Harness.Recorder.latencies recorder in
  let completed = Harness.Recorder.completed recorder in
  let q p = if completed = 0 then 0 else Sim.Histogram.quantile h p in
  let acct =
    Osmodel.Cpu_account.merge
      (Osmodel.Kernel.accounts server.Common.driver.Harness.Driver.kernel)
  in
  let m =
    {
      Common.name = Common.flavour_name flavour;
      sent = Harness.Recorder.sent recorder;
      completed;
      p50 = q 0.5;
      p90 = q 0.9;
      p99 = q 0.99;
      mean = Sim.Histogram.mean h;
      max = (if completed = 0 then 0 else Sim.Histogram.max_value h);
      throughput = float_of_int completed /. Sim.Units.to_float_s horizon;
      user_ns = Osmodel.Cpu_account.charged acct Osmodel.Cpu_account.User;
      kernel_ns = Osmodel.Cpu_account.charged acct Osmodel.Cpu_account.Kernel;
      spin_ns = Osmodel.Cpu_account.charged acct Osmodel.Cpu_account.Spin;
      stall_ns = Osmodel.Cpu_account.charged acct Osmodel.Cpu_account.Stall;
      window = horizon + drain;
      counters =
        Sim.Counter.to_list server.Common.driver.Harness.Driver.counters
        @ Obs.Metrics.to_list server.Common.driver.Harness.Driver.metrics
        @ Harness.Chaos.stats chaos
        @ [ ("timeline_digest", Harness.Chaos.timeline_digest chaos) ];
    }
  in
  let timeline = Harness.Chaos.timeline chaos in
  let restart_time = crash_at + downtime in
  let recovery =
    List.find_map
      (fun (at, _, _) -> if at >= restart_time then Some (at - crash_at) else None)
      timeline
  in
  let window_completions =
    List.length
      (List.filter
         (fun (at, _, _) -> at >= crash_at && at < restart_time)
         timeline)
  in
  {
    m;
    chaos;
    crashes = Fault.Server_fault.crashes sf;
    restarts = Fault.Server_fault.restarts sf;
    recovery;
    window_completions;
  }

(* ---------- part (b): overload with/without admission control ---------- *)

(* One service, two workers at most, 2 us of handler work: the service
   saturates at ~1 M RPC/s. The sweep offers 0.5x..4x of that. *)
let overload_handler = Sim.Units.us 2
let capacity = 1_000_000.
let multiples = [ 0.5; 1.0; 2.0; 4.0 ]
let overload_horizon = Sim.Units.ms 2
let overload_drain = Sim.Units.ms 20

let run_overload ~shed ~mult =
  let setup =
    Workload.Scenario.echo_fleet ~n:1 ~handler_time:overload_handler ()
  in
  let service_id = Workload.Scenario.service_id_of setup ~service_idx in
  let plan = Fault.Plan.make ~seed:15 () in
  let cfg = Lauberhorn.Config.with_shed Lauberhorn.Config.enzian shed in
  let engine = Sim.Engine.create () in
  let metrics = Obs.Metrics.create () in
  let chaos =
    Harness.Chaos.create engine ~plan ~timeout:(Sim.Units.us 200) ~retries:5
      ~backoff:2. ~max_timeout:(Sim.Units.ms 2) ~jitter:0.25 ~metrics ()
  in
  let server =
    Common.make_server ~ncores:4 ~max_workers:2 ~engine ~fault:plan ~metrics
      ~egress:(Harness.Chaos.egress chaos)
      (Common.Lauberhorn (cfg, Lauberhorn.Sched_mirror.Push))
      setup
  in
  Harness.Chaos.connect chaos server.Common.driver;
  let rng = Sim.Rng.create ~seed:42 in
  Workload.Arrivals.open_loop engine rng ~rate_per_s:(capacity *. mult)
    ~until:overload_horizon (fun ~seq:_ ->
      Harness.Chaos.call chaos ~service_id ~method_id:0
        ~port:(Workload.Scenario.port_of setup ~service_idx)
        (Rpc.Value.Blob (Bytes.make 64 'w')));
  Common.run_to engine ~until:(overload_horizon + overload_drain);
  let recorder = Harness.Chaos.recorder chaos in
  let h = Harness.Recorder.latencies recorder in
  let completed = Harness.Recorder.completed recorder in
  let q p = if completed = 0 then 0 else Sim.Histogram.quantile h p in
  let stats = Harness.Chaos.stats chaos in
  let stat name =
    match List.assoc_opt name stats with Some v -> v | None -> 0
  in
  let metric name =
    Obs.Metrics.counter_value server.Common.driver.Harness.Driver.metrics name
  in
  ( completed,
    Harness.Recorder.sent recorder,
    q 0.5,
    q 0.99,
    stat "rejected",
    stat "retransmits",
    stat "abandoned",
    metric "sheds",
    metric "drop_full" )

(* ---------- the report ---------- *)

let crash_flavours =
  [
    Common.Linux Coherence.Interconnect.pcie_enzian;
    Common.Bypass Coherence.Interconnect.pcie_enzian;
    Common.Static Lauberhorn.Config.enzian;
    Common.Lauberhorn (Lauberhorn.Config.enzian, Lauberhorn.Sched_mirror.Push);
  ]

let run () =
  Common.section
    "E15: failover — crash/restart lifecycle and admission control";

  (* part (a): time-triggered crash at 3 ms, restart 2 ms later. *)
  let fault_timed =
    Fault.Plan.server_fault ~crash_at ~downtime ()
  in
  let results =
    List.map (fun f -> run_crash ~server_fault:fault_timed f) crash_flavours
  in
  Common.note "crash at %s, restart after %s, %s offered for %s (+drain)"
    (Common.ns crash_at) (Common.ns downtime) (Common.rate_str rate)
    (Common.ns horizon);
  Common.table
    ~header:
      [
        "stack"; "sent"; "done"; "recovery"; "outage done"; "rejected";
        "rtx"; "abandoned"; "stale"; "requeued";
      ]
    (List.map
       (fun r ->
         let c name = Common.counter r.m name in
         [
           r.m.Common.name;
           string_of_int r.m.Common.sent;
           string_of_int r.m.Common.completed;
           (match r.recovery with
           | Some d -> Common.ns d
           | None -> "never");
           string_of_int r.window_completions;
           string_of_int (c "rejected");
           string_of_int (c "retransmits");
           string_of_int (c "abandoned");
           string_of_int (c "stale_dispatch_caught");
           string_of_int (c "requeues");
         ])
       results);
  List.iter
    (fun r ->
      Common.note "%s: crashes=%d restarts=%d kills=%d respawns=%d digest=%d"
        r.m.Common.name r.crashes r.restarts
        (Common.counter r.m "kills")
        (Common.counter r.m "respawns")
        (Common.counter r.m "timeline_digest"))
    results;
  (* Conservation: every client call must be accounted for — completed
     or explicitly abandoned, never silently lost. On Lauberhorn the
     generous retry policy means nothing is abandoned at all. *)
  let conserved =
    List.for_all
      (fun r ->
        r.m.Common.completed + Common.counter r.m "abandoned"
        = r.m.Common.sent
        && Harness.Client.outstanding
             (Harness.Chaos.client r.chaos)
           = 0)
      results
  in
  let lauberhorn = List.nth results 3 in
  let lb_lossless =
    lauberhorn.m.Common.completed = lauberhorn.m.Common.sent
  in
  let crash_fired =
    List.for_all (fun r -> r.crashes = 1 && r.restarts = 1) results
  in
  Common.note
    "conservation (done + abandoned = sent, none outstanding): %b" conserved;
  Common.note
    "lauberhorn lost nothing (every call completed): %b; all crashes fired: %b%s"
    lb_lossless crash_fired
    (if conserved && lb_lossless && crash_fired then "  [shape holds]"
     else "  [SHAPE VIOLATION]");

  (* The count trigger: crash after the 200th handled RPC instead of at
     a wall-clock instant (only Lauberhorn reports handled RPCs). *)
  let fault_counted =
    Fault.Plan.server_fault ~crash_after_rpcs:200 ~downtime ()
  in
  let rc =
    run_crash ~server_fault:fault_counted
      (Common.Lauberhorn (Lauberhorn.Config.enzian, Lauberhorn.Sched_mirror.Push))
  in
  Common.note
    "count trigger (crash after 200 handled): crashes=%d sent=%d done=%d \
     rejected=%d requeued=%d"
    rc.crashes rc.m.Common.sent rc.m.Common.completed
    (Common.counter rc.m "rejected")
    (Common.counter rc.m "requeues");

  (* part (b): overload sweep, shedding off vs on. *)
  Common.note "";
  Common.note
    "overload: 1 service, 2 workers, %s handler (capacity ~%s); shed off/on"
    (Common.ns overload_handler) (Common.rate_str capacity);
  let rows =
    List.map
      (fun mult ->
        let off = run_overload ~shed:false ~mult in
        let on_ = run_overload ~shed:true ~mult in
        (mult, off, on_))
      multiples
  in
  Common.table
    ~header:
      [
        "load"; "off done/sent"; "off p99"; "off drop_full"; "on done/sent";
        "on p99"; "on sheds"; "on rejected";
      ]
    (List.map
       (fun (mult, (c0, s0, _, p99_0, _, _, _, _, drop0), (c1, s1, _, p99_1, rej1, _, _, sheds1, _)) ->
         [
           Printf.sprintf "%.1fx" mult;
           Printf.sprintf "%d/%d" c0 s0;
           Common.ns p99_0;
           string_of_int drop0;
           Printf.sprintf "%d/%d" c1 s1;
           Common.ns p99_1;
           string_of_int sheds1;
           string_of_int rej1;
         ])
       rows);
  (* Shape: below capacity the shed watermark is never reached, so
     both configurations admit and complete every request (scheduling
     micro-timing differs: admission control samples the queue before
     accepting, the shed-off path after delivering); at 2x overload
     shedding keeps the latency tail of admitted requests no worse
     than the silent-drop tail, and the rejects are explicit instead
     of silent. *)
  let _, (c0h, s0h, _, _, _, _, _, _, _), (c1h, s1h, _, _, _, _, _, _, _) =
    List.hd rows
  in
  let below_identical = c0h = c1h && s0h = s1h in
  let _, (_, _, _, p99_off2, _, _, _, _, _), (_, _, _, p99_on2, rej2, _, _, sheds2, _)
      =
    List.nth rows 2
  in
  let tail_bounded = p99_on2 <= p99_off2 in
  let explicit_rejects = sheds2 > 0 && rej2 > 0 in
  Common.note
    "paper expectation: admission control converts silent SRAM drops into";
  Common.note
    "wire rejects the client can act on, and bounds the admitted tail.";
  Common.note
    "0.5x same done/sent with/without shed: %b; 2x p99 bounded (%s <= %s): \
     %b; rejects explicit: %b%s"
    below_identical (Common.ns p99_on2) (Common.ns p99_off2) tail_bounded
    explicit_rejects
    (if below_identical && tail_bounded && explicit_rejects then
       "  [shape holds]"
     else "  [SHAPE VIOLATION]")
