(* E1 — Figure 2: 64-byte message round-trip latencies.

   The paper's figure compares the interaction latency of a coherent
   interconnect (ECI on Enzian) against DMA-over-PCIe on the same
   machine and on a modern PC server. We reproduce it as a closed-loop
   ping-pong of 64-byte RPCs with a zero-cost handler, so the measured
   time is pure mechanism. The end-system latency is measured by the
   recorder; the wire (serialization + propagation, identical for every
   mechanism) is added analytically for the full RTT. *)

let rtts = 2_000
let payload = 64
let propagation = Sim.Units.ns 500 (* ~100 m of fibre *)

let ping_pong flavour =
  let setup =
    Workload.Scenario.echo_fleet ~n:1 ~handler_time:(Sim.Units.ns 0) ()
  in
  let server = Common.make_server ~ncores:4 flavour setup in
  let remaining = ref rtts in
  let next = ref 0 in
  let fire () =
    incr next;
    Common.inject_blob server ~seq:!next ~service_idx:0 ~bytes:payload
  in
  Harness.Recorder.on_complete server.Common.recorder
    (fun ~rpc_id:_ ~latency:_ ->
      decr remaining;
      if !remaining > 0 then
        (* The next ping leaves after one client-side wire RTT. *)
        ignore
          (Sim.Engine.schedule_after server.Common.engine
             ~after:(2 * propagation) (fun () -> fire ())));
  fire ();
  Common.run_to server.Common.engine ~until:(Sim.Units.s 2);
  let h = Harness.Recorder.latencies server.Common.recorder in
  ( Harness.Recorder.completed server.Common.recorder,
    Sim.Histogram.quantile h 0.5,
    Sim.Histogram.quantile h 0.99 )

let run () =
  Common.section "E1 (Figure 2): 64-byte message round-trip latencies";
  let wire_one_way =
    propagation
    + Net.Wire.serialization_delay ~gbps:100.
        ~bytes:(64 + Net.Ethernet.header_size + Net.Ipv4.header_size
                + Net.Udp.header_size)
  in
  let mechanisms =
    [
      ( "ECI coherent (Enzian)",
        Common.Lauberhorn
          (Lauberhorn.Config.enzian, Lauberhorn.Sched_mirror.Push) );
      ( "DMA/PCIe poll-mode (Enzian)",
        Common.Bypass Coherence.Interconnect.pcie_enzian );
      ( "DMA/PCIe poll-mode (modern)",
        Common.Bypass Coherence.Interconnect.pcie_modern );
      ( "DMA/PCIe interrupts (Enzian)",
        Common.Linux Coherence.Interconnect.pcie_enzian );
      ( "CXL3 coherent (anticipated)",
        Common.Lauberhorn
          (Lauberhorn.Config.modern, Lauberhorn.Sched_mirror.Push) );
    ]
  in
  let results =
    List.map
      (fun (label, flavour) ->
        let done_, p50, p99 = ping_pong flavour in
        (label, done_, p50, p99))
      mechanisms
  in
  Common.table
    ~header:[ "mechanism"; "RTTs"; "end-system p50"; "full RTT p50"; "p99" ]
    (List.map
       (fun (label, done_, p50, p99) ->
         [
           label;
           string_of_int done_;
           Common.ns p50;
           Common.ns (p50 + (2 * wire_one_way));
           Common.ns p99;
         ])
       results);
  (* The figure itself, as ASCII bars (end-system p50). *)
  Format.printf "@.";
  let max_p50 =
    List.fold_left (fun acc (_, _, p50, _) -> max acc p50) 1 results
  in
  List.iter
    (fun (label, _, p50, _) ->
      let width = p50 * 46 / max_p50 in
      Common.note "%-29s %s %s" label
        (String.make (max 1 width) '#')
        (Common.ns p50))
    results;
  let get label =
    let _, _, p50, _ = List.find (fun (l, _, _, _) -> l = label) results in
    p50
  in
  let eci = get "ECI coherent (Enzian)" in
  let dma_enzian = get "DMA/PCIe poll-mode (Enzian)" in
  let dma_modern = get "DMA/PCIe poll-mode (modern)" in
  Common.note "paper expectation: ECI well below DMA on the same machine,";
  Common.note
    "and below even a modern server's DMA path (Figure 2's ordering).";
  Common.note "measured: ECI/DMA-Enzian speedup %.2fx, ECI/DMA-modern %.2fx%s"
    (float_of_int dma_enzian /. float_of_int eci)
    (float_of_int dma_modern /. float_of_int eci)
    (if eci < dma_modern && dma_modern < dma_enzian then "  [shape holds]"
     else "  [SHAPE VIOLATION]")
