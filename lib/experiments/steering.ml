(* E20 — application-defined receive-side steering: locality-aware
   (key-hash affinity) vs. RSS dispatch under a Zipf key workload.

   Part (a), single host: a poll-mode bypass server whose NIC runs a
   statically verified steering program ({!Nic.Steer_verify}). Requests
   carry a 4-byte cache key in the payload prefix; clients are spread
   over many flows (distinct src MAC/IP/port), so RSS spreads by flow —
   uncorrelated with the key — while the key-affinity program hashes
   the key bytes themselves, pinning each key to one lane. A per-lane
   direct-mapped key cache (the application model: one cache per pinned
   core) scores both placements; affinity must win on hit rate.

   The experiment also cross-checks, in-run, that the declarative
   reference evaluator applied at the tap agrees lane-for-lane with
   what the NIC's compiled program actually did (per-lane steering
   counters on Obs.Metrics) — the QCheck equivalence property, live.

   Part (b), rack: the same verified affinity program installed on
   every bypass host of a 4-host fabric; per-host per-lane counters
   and client-side completions, byte-identical for any
   LAUBERHORN_SHARDS (CI diffs 1 vs 4). *)

let handler_time = Sim.Units.ns 500
let nlanes = 8
let nflows = 64
let nkeys = 512
let zipf_s = 1.1
let cache_slots = 32
let payload_bytes = 64

(* Offset of the blob's data bytes inside the wire payload: RPC header
   (no ctx extension — tracing is off here) + the codec's varint length
   prefix. Computed, not assumed, so codec changes can't silently
   desynchronize the steering program from the wire format. *)
let key_off =
  Rpc.Wire_format.header_size
  + Bytes.length (Rpc.Codec.encode (Rpc.Value.Blob (Bytes.create payload_bytes)))
  - payload_bytes

let steer_env ~queues =
  {
    Nic.Steer_verify.queues;
    workers = queues;
    payload_prefix = key_off + 4;
    cost_budget = 500;
  }

let affinity_program ~lanes =
  Nic.Steer.key_affinity ~key_off ~key_len:4 ~lanes ()

let verify_or_die ~env prog =
  match Nic.Steer_verify.verify ~env prog with
  | Ok v -> v
  | Error diags ->
      List.iter (fun d -> Format.eprintf "steer_verify: %s@." d) diags;
      failwith ("E20: shipped steering program rejected: " ^ prog.Nic.Steer.name)

let key_blob key =
  let b = Bytes.make payload_bytes 'k' in
  Bytes.set b 0 (Char.chr ((key lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((key lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((key lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (key land 0xff));
  Rpc.Value.Blob b

let key_of_wire (f : Net.Frame.t) =
  let p = f.Net.Frame.payload in
  let b i = Char.code (Bytes.get p (key_off + i)) in
  (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3

(* The application model scored by the tap: one direct-mapped key
   cache per lane (per pinned core). *)
type lane_model = {
  caches : int array array;
  lane_counts : int array;
  mutable hits : int;
  mutable misses : int;
}

let lane_model ~lanes =
  {
    caches = Array.init lanes (fun _ -> Array.make cache_slots (-1));
    lane_counts = Array.make lanes 0;
    hits = 0;
    misses = 0;
  }

let model_touch m ~lane ~key =
  m.lane_counts.(lane) <- m.lane_counts.(lane) + 1;
  let slot = key mod cache_slots in
  if m.caches.(lane).(slot) = key then m.hits <- m.hits + 1
  else begin
    m.misses <- m.misses + 1;
    m.caches.(lane).(slot) <- key
  end

let hit_pct m =
  let total = m.hits + m.misses in
  if total = 0 then 0. else 100. *. float_of_int m.hits /. float_of_int total

let pct f = Printf.sprintf "%.1f%%" f

(* ---------- part (a): single host, rss vs. affinity ---------- *)

let run_config ~horizon ~rate prog =
  let env = steer_env ~queues:nlanes in
  let verified = verify_or_die ~env prog in
  let setup = Workload.Scenario.echo_fleet ~n:1 ~handler_time () in
  let service_port = Workload.Scenario.port_of setup ~service_idx:0 in
  let metrics = Obs.Metrics.create () in
  (* The tap's reference model: the *declarative* evaluator over the
     same program, with an RSS table built exactly like the NIC's own
     (same default key, same queue count, same round-robin indirection
     init) — agreement with the NIC's counters is asserted below. *)
  let model_rss = Nic.Rss.create ~queues:nlanes () in
  let model = lane_model ~lanes:nlanes in
  let tap (f : Net.Frame.t) =
    if f.Net.Frame.udp.Net.Udp.dst_port = service_port then
      let lane =
        Nic.Steer.eval ~rss:(Nic.Rss.queue_of_frame model_rss) prog f
        mod nlanes
      in
      model_touch model ~lane ~key:(key_of_wire f)
  in
  let server =
    Common.make_server ~ncores:nlanes ~tap ~metrics ~steering:verified
      (Common.Bypass Coherence.Interconnect.pcie_enzian)
      setup
  in
  let rng = Sim.Rng.create ~seed:0xe20 in
  let service_id = Workload.Scenario.service_id_of setup ~service_idx:0 in
  Workload.Arrivals.open_loop server.Common.engine rng ~rate_per_s:rate
    ~until:horizon (fun ~seq ->
      let key = Workload.Dist.zipf rng ~n:nkeys ~s:zipf_s in
      let flow = Sim.Rng.int rng ~bound:nflows in
      Harness.Traffic.inject server.Common.recorder server.Common.driver
        ~rpc_id:(Int64.of_int seq) ~service_id ~method_id:0 ~port:service_port
        ~client:(Harness.Traffic.client_endpoint ~idx:flow ())
        (key_blob key));
  let m =
    Common.measure ~name:prog.Nic.Steer.name ~horizon server
  in
  (* In-run equivalence assertion: the NIC's compiled program counted
     exactly the lanes the reference evaluator predicts. *)
  Array.iteri
    (fun lane predicted ->
      let counted =
        Obs.Metrics.counter_value metrics (Printf.sprintf "steer_lane_%d" lane)
      in
      if counted <> predicted then
        failwith
          (Printf.sprintf
             "E20: lane %d: NIC steered %d frames but the reference \
              evaluator predicts %d — compiled/declarative divergence"
             lane counted predicted))
    model.lane_counts;
  (m, model, Nic.Steer_verify.cost verified)

let lane_spread m =
  let mn = Array.fold_left min max_int m.lane_counts
  and mx = Array.fold_left max 0 m.lane_counts in
  Printf.sprintf "%d..%d" mn mx

let run_single () =
  Common.section "E20a Steering: key-hash affinity vs. RSS (Zipf keys, 1 host)";
  let horizon = Sim.Units.ms 10 in
  let rate = 300_000. in
  Common.note
    "%d keys, Zipf s=%.1f, %d client flows, %d lanes, %d-slot direct-mapped \
     key cache per lane; key bytes at payload offset %d"
    nkeys zipf_s nflows nlanes cache_slots key_off;
  let rss_m, rss_model, rss_cost =
    run_config ~horizon ~rate Nic.Steer.rss_all
  in
  let aff_m, aff_model, aff_cost =
    run_config ~horizon ~rate (affinity_program ~lanes:nlanes)
  in
  Common.table
    ~header:
      [ "program"; "cost/pkt"; "sent"; "done"; "p50"; "p99"; "cache hit";
        "lane spread" ]
    [
      [
        "rss_all"; Printf.sprintf "%d ns" rss_cost;
        string_of_int rss_m.Common.sent; string_of_int rss_m.Common.completed;
        Common.ns rss_m.Common.p50; Common.ns rss_m.Common.p99;
        pct (hit_pct rss_model); lane_spread rss_model;
      ];
      [
        "key_affinity"; Printf.sprintf "%d ns" aff_cost;
        string_of_int aff_m.Common.sent; string_of_int aff_m.Common.completed;
        Common.ns aff_m.Common.p50; Common.ns aff_m.Common.p99;
        pct (hit_pct aff_model); lane_spread aff_model;
      ];
    ];
  Common.note
    "NIC lane counters == reference evaluator on every lane (asserted in-run)";
  Common.note
    "steering off charges 0 ns/pkt; both programs above carry their \
     statically verified cost";
  if hit_pct aff_model > hit_pct rss_model then
    Common.note
      "[shape holds] key-affinity locality: %s cache hits vs %s under RSS"
      (pct (hit_pct aff_model))
      (pct (hit_pct rss_model))
  else
    Common.note "[SHAPE VIOLATION] affinity (%s) <= rss (%s) on cache hits"
      (pct (hit_pct aff_model))
      (pct (hit_pct rss_model))

(* ---------- part (b): verified steering on rack hosts ---------- *)

let rack_hosts = 4
let rack_lanes = 4

let run_rack () =
  Common.section "E20b Steering on the rack: verified programs on every host";
  let horizon = Sim.Units.ms 8 in
  let drain = Sim.Units.ms 4 in
  let rate = 200_000. in
  let fabric = Cluster.Fabric.create ~hosts:rack_hosts () in
  let master = Cluster.Fabric.master_engine fabric in
  let setup = Workload.Scenario.echo_fleet ~n:1 ~handler_time () in
  let service_port = Workload.Scenario.port_of setup ~service_idx:0 in
  let service_id = Workload.Scenario.service_id_of setup ~service_idx:0 in
  let env = steer_env ~queues:rack_lanes in
  let prog = affinity_program ~lanes:rack_lanes in
  let host_metrics = Array.init rack_hosts (fun _ -> Obs.Metrics.create ()) in
  let servers =
    Array.init rack_hosts (fun h ->
        let verified = verify_or_die ~env prog in
        let server =
          Common.make_server ~ncores:rack_lanes
            ~engine:(Cluster.Fabric.host_engine fabric h)
            ~egress:(Cluster.Fabric.host_egress fabric h)
            ~metrics:host_metrics.(h) ~steering:verified
            (Common.Bypass Coherence.Interconnect.pcie_enzian)
            setup
        in
        Cluster.Fabric.connect_host fabric h
          ~ingress:server.Common.driver.Harness.Driver.ingress;
        server)
  in
  (* One client behind the uplink; calls are re-addressed to hosts
     round-robin (an explicit counter — the client recycles rpc-id
     slots, so ids would skew low) and given a per-flow src endpoint
     so in-host RSS (were it active) would spread by flow. *)
  let next = ref 0 in
  let send (frame : Net.Frame.t) =
    let n = !next in
    incr next;
    let host = n mod rack_hosts in
    let dst =
      Cluster.Fabric.host_endpoint fabric host
        ~port:frame.Net.Frame.udp.Net.Udp.dst_port
    in
    let src = Harness.Traffic.client_endpoint ~idx:(n mod nflows) () in
    Cluster.Fabric.uplink_send fabric
      (Net.Frame.make ~src ~dst frame.Net.Frame.payload)
  in
  let client = Harness.Client.create master ~send () in
  Cluster.Fabric.connect_uplink fabric (Harness.Client.on_reply client);
  let rng = Sim.Rng.create ~seed:0xe20b in
  Workload.Arrivals.open_loop master rng ~rate_per_s:rate ~until:horizon
    (fun ~seq:_ ->
      let key = Workload.Dist.zipf rng ~n:nkeys ~s:zipf_s in
      Harness.Client.call client ~service_id ~method_id:0 ~port:service_port
        (key_blob key)
        (fun _ -> ()));
  Cluster.Fabric.run fabric ~until:(horizon + drain);
  Array.iter (fun s -> s.Common.flush ()) servers;
  Common.note "%d hosts x %d lanes, %s keyed calls via the uplink" rack_hosts
    rack_lanes (Common.rate_str rate);
  let digest = ref 0 in
  Common.table
    ~header:[ "host"; "lane 0"; "lane 1"; "lane 2"; "lane 3"; "steered" ]
    (List.init rack_hosts (fun h ->
         let lane i =
           Obs.Metrics.counter_value host_metrics.(h)
             (Printf.sprintf "steer_lane_%d" i)
         in
         let total =
           Obs.Metrics.counter_value host_metrics.(h) "steer_decisions"
         in
         digest := !digest lxor ((total + (h * 7919)) * 2654435761);
         string_of_int h
         :: List.init rack_lanes (fun i -> string_of_int (lane i))
         @ [ string_of_int total ]));
  Common.note "client: sent %d, completed %d, outstanding %d"
    (Harness.Client.sent client)
    (Harness.Client.completed client)
    (Harness.Client.outstanding client);
  Common.note "undeliverable %d, windows %d, lane digest %d"
    (Cluster.Fabric.undeliverable fabric)
    (Cluster.Fabric.windows_run fabric)
    (!digest land 0x3fffffff)

let run () =
  run_single ();
  run_rack ()
