(* E17 — rack-scale cluster: N Lauberhorn hosts behind a ToR switch
   (lib/cluster), a master/worker control plane, and a rack-level load
   balancer, all mapped one-host-per-shard onto the conservative-PDES
   engine.

   Topology: shards 0..N-1 each run a full Lauberhorn host (own NIC
   pipeline, kernel, scheduler mirror); shard N runs the switch, the
   master control plane, and the clients hanging off the switch's
   uplink port. Every frame pays its real path — client → uplink wire →
   switch (finite per-port queues, crossbar, per-port tx serialization)
   → host wire → host NIC, and back — and every control message (probe,
   ack, register, kill) crosses the same wires as closure posts. The
   shard lookahead is the per-pair wire-latency matrix, so the
   conservative window width equals the shortest link.

   Part (a), load sweep: an 8-host rack at two rack-wide offered loads,
   run at 1/2/4/8 domains. Per-host handled counts, switch counters and
   the client's latency quantiles must be byte-identical for every
   domain count — the digest lines repeat and are compared in-run. A
   16-host point then runs at the environment's domain count
   (LAUBERHORN_SHARDS), which is what scripts/check.sh diffs 1-vs-4.

   Part (b), failure + re-steering: kill host 3's service mid-sweep and
   respawn it. The health-check marks the host dead within one probe
   period of the probe its crash ate; the balancer steers new
   connections away from the corpse from that instant until the respawn
   re-registers; in-flight RPCs on the dead host resolve to err_dead
   NACKs that the client converts into (re-steered) retries. The
   conservation line — completed + abandoned = sent, none outstanding,
   zero silent losses anywhere on the path — is the headline claim. A
   shedding window on host 5 shows the same steering reaction without a
   death.

   Wall-clock never appears on stdout; events/window is the
   machine-independent parallelism measure, exactly as in E16. *)

let sweep_hosts = 8
let big_hosts = 16
let host_link = { Cluster.Switch.latency = Sim.Units.us 2; tx = Sim.Units.ns 100 }
let uplink = { Cluster.Switch.latency = Sim.Units.ns 500; tx = Sim.Units.ns 60 }
let probe_period = Sim.Units.us 500
let handler_time = Sim.Units.ns 500
let horizon = Sim.Units.ms 10
let sweep_drain = Sim.Units.ms 10
let rates = [ 200_000.; 600_000. ] (* rack-wide offered load *)
let domain_counts = [ 1; 2; 4; 8 ]

(* ---------- one rack instance ---------- *)

type rack = {
  fabric : Cluster.Fabric.t;
  control : Cluster.Control.t;
  client : Harness.Client.t;
  latencies : Sim.Histogram.t;
  servers : Common.server array;
  handled : int array; (* per-host RPCs handled by the service *)
  alive : bool array; (* host-shard liveness flags (probe targets) *)
  service_port : int;
  mutable unsteered : int; (* calls issued while no host was steerable *)
  mutable resteered : int; (* retransmits moved off a dead host *)
  (* failure timeline, recorded by control-plane callbacks *)
  mutable dead_at : (int * Sim.Units.time) list;
  mutable alive_at : (int * Sim.Units.time) list;
  mutable steered_at_death : int array;
  mutable steered_at_rereg : int array;
  chaos : Fault.Rack_chaos.t option; (* armed cluster fault driver (E19) *)
  leases : Cluster.Control.Worker_lease.t option array;
      (* per-host master leases, installed only when chaos is armed *)
}

(* Build N Lauberhorn hosts on a fabric, register them with the master,
   and wire a steering client behind the uplink. Deterministic for any
   domain count: all cross-shard traffic rides Fabric posts.

   [obs], when given, arms the cross-fabric tracing plane (E18): the
   tracer lives on the master shard and records the client-side chain —
   uplink wire, switch ingress/crossbar/egress, the wire to the host —
   then skips over the interval the host's own stack tracer covers
   (every host tracer is enabled and records against the same trace id,
   carried in the frames' Wire_format context extension) and resumes on
   the reply path. Obs.Stitch reassembles the per-plane chains into one
   causal tree per RPC whose stages tile [send, reply] exactly. All
   emission happens on the owning shard (host tracers on host shards,
   the master tracer on master-shard events only), so arming changes no
   timing and breaks no determinism. *)
let make_rack ?domains ?sched ?obs ?fault ?metrics ~hosts () =
  let fabric =
    Cluster.Fabric.create ?domains ?sched ~host_link ~uplink ?metrics ~hosts ()
  in
  let master = Cluster.Fabric.master_engine fabric in
  let setup = Workload.Scenario.echo_fleet ~n:1 ~handler_time () in
  let service_port = Workload.Scenario.port_of setup ~service_idx:0 in
  let handled = Array.make hosts 0 in
  let alive = Array.make hosts true in
  let servers =
    Array.init hosts (fun h ->
        let server =
          Common.make_server ~ncores:4 ~max_workers:3
            ~engine:(Cluster.Fabric.host_engine fabric h)
            ~egress:(Cluster.Fabric.host_egress fabric h)
            (Common.Lauberhorn
               (Lauberhorn.Config.enzian, Lauberhorn.Sched_mirror.Push))
            setup
        in
        (match server.Common.lauberhorn with
        | Some s ->
            Lauberhorn.Stack.set_address s
              (Cluster.Fabric.host_endpoint fabric h ~port:service_port);
            Lauberhorn.Stack.on_handled s (fun () ->
                handled.(h) <- handled.(h) + 1);
            if obs <> None then
              Obs.Tracer.enable (Lauberhorn.Stack.tracer s)
        | None -> ());
        Cluster.Fabric.connect_host fabric h
          ~ingress:server.Common.driver.Harness.Driver.ingress;
        server)
  in
  let rack_ref = ref None in
  let leases = Array.make hosts None in
  let control =
    Cluster.Control.create master ~hosts ~probe_period
      ~probe:(fun ~host ->
        (* The epoch rides the probe: the host echoes it back in the
           ack, so an ack minted against a pre-restart registration is
           rejected (and counted) instead of resurrecting stale
           liveness state. *)
        let ep =
          match !rack_ref with
          | Some r -> Some (Cluster.Control.epoch r.control ~host)
          | None -> None
        in
        Cluster.Fabric.post_to_host fabric ~host (fun () ->
            if alive.(host) then begin
              (match leases.(host) with
              | Some l -> Cluster.Control.Worker_lease.saw_probe l
              | None -> ());
              Cluster.Fabric.post_to_master fabric ~host (fun () ->
                  match !rack_ref with
                  | Some r -> Cluster.Control.ack ?epoch:ep r.control ~host
                  | None -> ())
            end))
      ~on_dead:(fun ~host ->
        match !rack_ref with
        | Some r ->
            r.dead_at <- (host, Sim.Engine.now master) :: r.dead_at;
            r.steered_at_death <- Cluster.Control.steered r.control
        | None -> ())
      ~on_alive:(fun ~host ->
        match !rack_ref with
        | Some r ->
            r.alive_at <- (host, Sim.Engine.now master) :: r.alive_at;
            r.steered_at_rereg <- Cluster.Control.steered r.control
        | None -> ())
      ?metrics ()
  in
  (* The tracing plane: passive switch hooks emit the fabric stages of
     every RPC frame onto the master tracer, and the client send path
     below opens the root and stamps the trace context into the frame.
     Hook installation is gated on [obs] — the disarmed switch pays one
     load-and-branch per observation point. *)
  let uplink_port = hosts in
  (match obs with
  | None -> ()
  | Some tr ->
      Obs.Tracer.enable tr;
      let sw = Cluster.Fabric.switch fabric in
      let tc = Obs.Tracer.track tr "switch" in
      let lat p = (Cluster.Switch.port_conf sw p).Cluster.Switch.latency in
      let decode frame = Rpc.Wire_format.decode frame.Net.Frame.payload in
      Cluster.Switch.set_hooks sw
        (Some
           {
             Cluster.Switch.on_ingress =
               (fun ~port ~time frame ->
                 match decode frame with
                 | Error _ -> ()
                 | Ok m ->
                     let rpc = m.Rpc.Wire_format.rpc_id in
                     if Rpc.Wire_format.is_request m then begin
                       if port = uplink_port then
                         Obs.Tracer.stage tr ~rpc ~track:tc
                           ~name:"uplink_wire" time
                     end
                     else if port < uplink_port then begin
                       (* the interval since the cursor belongs to the
                          serving host's own tracer: skip to the
                          instant the reply left the host, then charge
                          the host wire *)
                       Obs.Tracer.skip_to tr ~rpc (time - lat port);
                       Obs.Tracer.stage tr ~rpc ~track:tc
                         ~name:"wire_from_host" time
                     end);
             on_forward =
               (fun ~port:_ ~dst:_ ~time frame ->
                 match decode frame with
                 | Error _ -> ()
                 | Ok m ->
                     let rpc = m.Rpc.Wire_format.rpc_id in
                     let name =
                       if Rpc.Wire_format.is_request m then "switch_rx"
                       else "switch_rx_rsp"
                     in
                     Obs.Tracer.stage tr ~rpc ~track:tc ~name time);
             on_transmit =
               (fun ~port ~time frame ->
                 match decode frame with
                 | Error _ -> ()
                 | Ok m ->
                     let rpc = m.Rpc.Wire_format.rpc_id in
                     if Rpc.Wire_format.is_request m then begin
                       if port < uplink_port then begin
                         Obs.Tracer.stage tr ~rpc ~track:tc ~name:"switch_tx"
                           time;
                         Obs.Tracer.stage_until tr ~rpc ~track:tc
                           ~name:"wire_to_host" ~stop:(time + lat port)
                       end
                     end
                     else if port = uplink_port then begin
                       Obs.Tracer.stage tr ~rpc ~track:tc
                         ~name:"switch_tx_rsp" time;
                       Obs.Tracer.stage_until tr ~rpc ~track:tc
                         ~name:"uplink_back" ~stop:(time + lat uplink_port)
                     end);
           }));
  (* The steering send path: pin each rpc_id to a balancer-picked host
     at first transmission; a retransmit re-pins only if the master now
     believes the pinned host is dead (the LB resets the connection).
     The frame is re-addressed to the host's own endpoint, which is
     what the switch routes on. *)
  (* Keyed by the client's continuation slot (the low bits of the
     rpc_id), which the client recycles when a call completes or is
     abandoned — so the table is bounded by peak outstanding calls, not
     total calls issued, and an hours-long soak holds constant memory.
     The full rpc_id stored alongside disambiguates a recycled slot: a
     stale entry steers exactly like a missing one. *)
  let pins : (int, int64 * int) Hashtbl.t = Hashtbl.create 4096 in
  let pin_key id = Int64.to_int (Int64.logand id 0xF_FFFFL) in
  let send frame =
    match Rpc.Wire_format.decode frame.Net.Frame.payload with
    | Error _ -> ()
    | Ok msg -> (
        let r = match !rack_ref with Some r -> r | None -> assert false in
        let rpc_id = msg.Rpc.Wire_format.rpc_id in
        let target =
          match Hashtbl.find_opt pins (pin_key rpc_id) with
          | Some (id, h)
            when id = rpc_id && Cluster.Control.alive r.control ~host:h ->
              Some h
          | Some (id, _) when id = rpc_id ->
              (* pinned host died: re-steer the retry *)
              let p = Cluster.Control.pick r.control in
              (match p with
              | Some h ->
                  r.resteered <- r.resteered + 1;
                  Hashtbl.replace pins (pin_key rpc_id) (rpc_id, h)
              | None -> ());
              p
          | Some _ | None ->
              (* first transmission (or a slot recycled from a finished
                 call, which is the same thing) *)
              let p = Cluster.Control.pick r.control in
              (match p with
              | Some h -> Hashtbl.replace pins (pin_key rpc_id) (rpc_id, h)
              | None -> r.unsteered <- r.unsteered + 1);
              p
        in
        match target with
        | None -> () (* counted; the retry timer will try again *)
        | Some h ->
            let payload =
              match obs with
              | None -> frame.Net.Frame.payload
              | Some tr ->
                  (* open the causal root at first transmission and
                     carry the trace context inside the frame, across
                     the switch, to the serving host's tracer *)
                  let now = Sim.Engine.now master in
                  if not (Obs.Tracer.is_open tr ~rpc:rpc_id) then
                    Obs.Tracer.rpc_begin tr ~rpc:rpc_id
                      ~track:(Obs.Tracer.track tr "client")
                      now;
                  let parent =
                    match Obs.Tracer.root_of tr ~rpc:rpc_id with
                    | Some r -> r
                    | None -> 0
                  in
                  Rpc.Wire_format.encode
                    (Rpc.Wire_format.with_ctx msg
                       (Some
                          (Obs.Context.to_bytes
                             {
                               Obs.Context.trace = rpc_id;
                               parent;
                               origin = uplink_port;
                             })))
            in
            let dst =
              Cluster.Fabric.host_endpoint fabric h
                ~port:frame.Net.Frame.udp.Net.Udp.dst_port
            in
            Cluster.Fabric.uplink_send fabric
              (Net.Frame.make
                 ~src:(Net.Frame.src_endpoint frame)
                 ~dst payload))
  in
  let client = Harness.Client.create master ~send ?metrics () in
  let uplink_rx frame =
    (match obs with
    | None -> ()
    | Some tr -> (
        (* reply back at the client: close the causal root at the same
           instant the client's latency sample is taken *)
        match Rpc.Wire_format.decode frame.Net.Frame.payload with
        | Ok m when not (Rpc.Wire_format.is_request m) ->
            Obs.Tracer.rpc_end tr ~rpc:m.Rpc.Wire_format.rpc_id
              (Sim.Engine.now master)
        | Ok _ | Error _ -> ()));
    Harness.Client.on_reply client frame
  in
  Cluster.Fabric.connect_uplink fabric uplink_rx;
  (* spawn + register: each host announces itself across its own wire *)
  Array.iteri
    (fun h _ ->
      Cluster.Fabric.post_to_master fabric ~host:h (fun () ->
          match !rack_ref with
          | Some r -> Cluster.Control.register r.control ~host:h
          | None -> ()))
    servers;
  Cluster.Control.start control;
  (* Cluster fault domain (E19): compile and install the plan's fault
     classes, and give every host a master lease — when a master
     restart wipes the registration table, hosts notice the probe
     silence and re-register on their own, with no master cooperation.
     With no cluster faults in the plan nothing is installed and the
     rack is byte-identical to a fault-free build. *)
  let chaos =
    match fault with
    | Some plan when not (Fault.Plan.cluster_is_none plan.Fault.Plan.cluster)
      ->
        Some (Fault.Rack_chaos.arm ~plan ~fabric ~control ?metrics ())
    | Some _ | None -> None
  in
  if chaos <> None then
    Array.iteri
      (fun h (_ : Common.server) ->
        let l =
          Cluster.Control.Worker_lease.create
            (Cluster.Fabric.host_engine fabric h)
            ~timeout:(4 * probe_period)
            ~re_register:(fun () ->
              if alive.(h) then
                Cluster.Fabric.post_to_master fabric ~host:h (fun () ->
                    match !rack_ref with
                    | Some r -> Cluster.Control.register r.control ~host:h
                    | None -> ()))
        in
        Cluster.Control.Worker_lease.start l;
        leases.(h) <- Some l)
      servers;
  let rack =
    {
      fabric;
      control;
      client;
      latencies = Sim.Histogram.create ();
      servers;
      handled;
      alive;
      service_port;
      unsteered = 0;
      resteered = 0;
      dead_at = [];
      alive_at = [];
      steered_at_death = Array.make hosts 0;
      steered_at_rereg = Array.make hosts 0;
      chaos;
      leases;
    }
  in
  rack_ref := Some rack;
  rack

let setup_arrivals ?(timeout = None) rack ~rate ~seed =
  let master = Cluster.Fabric.master_engine rack.fabric in
  let rng = Sim.Rng.create ~seed in
  let setup = rack.servers.(0).Common.setup in
  let service_id = Workload.Scenario.service_id_of setup ~service_idx:0 in
  Workload.Arrivals.open_loop master rng ~rate_per_s:rate ~until:horizon
    (fun ~seq:_ ->
      let t0 = Sim.Engine.now master in
      match timeout with
      | None ->
          Harness.Client.call rack.client ~service_id ~method_id:0
            ~port:rack.service_port
            (Rpc.Value.Blob (Bytes.make 64 'w'))
            (fun _ ->
              Sim.Histogram.record rack.latencies
                (Sim.Engine.now master - t0))
      | Some (timeout, retries) ->
          ignore
            (Harness.Client.call_id ~timeout ~retries ~backoff:1.5
               ~max_timeout:(Sim.Units.ms 2) ~jitter:0.25 rack.client
               ~service_id ~method_id:0 ~port:rack.service_port
               (Rpc.Value.Blob (Bytes.make 64 'w'))
               (fun _ ->
                 Sim.Histogram.record rack.latencies
                   (Sim.Engine.now master - t0))))

let finish rack =
  Array.iter
    (fun s ->
      s.Common.flush ();
      match s.Common.sanitize with
      | None -> ()
      | Some z -> Sanitize.finish z)
    rack.servers

let quantile rack p =
  if Harness.Client.completed rack.client = 0 then 0
  else Sim.Histogram.quantile rack.latencies p

(* The diffable per-rack digest: everything machine-independent. *)
let digest_lines rack =
  let st = Cluster.Switch.stats (Cluster.Fabric.switch rack.fabric) in
  let c = rack.client in
  [
    Printf.sprintf "client sent=%d done=%d out=%d p50=%s p99=%s"
      (Harness.Client.sent c)
      (Harness.Client.completed c)
      (Harness.Client.outstanding c)
      (Common.ns (quantile rack 0.5))
      (Common.ns (quantile rack 0.99));
    Printf.sprintf
      "switch in=%d out=%d drop_in=%d drop_out=%d unroutable=%d undeliv=%d"
      st.Cluster.Switch.ingressed st.Cluster.Switch.delivered
      st.Cluster.Switch.drop_in st.Cluster.Switch.drop_out
      st.Cluster.Switch.unroutable
      (Cluster.Fabric.undeliverable rack.fabric);
    Printf.sprintf "handled [%s]"
      (String.concat ","
         (Array.to_list (Array.map string_of_int rack.handled)));
    Printf.sprintf "steered [%s]"
      (String.concat ","
         (Array.to_list
            (Array.map string_of_int (Cluster.Control.steered rack.control))));
  ]

(* ---------- part (a): load sweep across domain counts ---------- *)

let sweep_run ~rate ~domains =
  let rack = make_rack ~domains ~hosts:sweep_hosts () in
  setup_arrivals rack ~rate ~seed:1717;
  Cluster.Fabric.run rack.fabric ~until:(horizon + sweep_drain);
  finish rack;
  let windows = Cluster.Fabric.windows_run rack.fabric in
  let events = Cluster.Fabric.events_processed rack.fabric in
  (String.concat "\n  " (digest_lines rack), windows, events)

let run_sweep () =
  List.iter
    (fun rate ->
      Common.note "rack load %s over %d hosts, RR balancer, probes every %s"
        (Common.rate_str rate) sweep_hosts (Common.ns probe_period);
      let reference = ref None in
      List.iter
        (fun domains ->
          let digest, windows, events = sweep_run ~rate ~domains in
          Common.note "domains=%d windows=%d events/window=%d" domains windows
            (if windows = 0 then 0 else events / windows);
          match !reference with
          | None ->
              reference := Some digest;
              Common.note "%s" ("rack:\n  " ^ digest)
          | Some d ->
              Common.note "identical to domains=1: %b" (String.equal d digest))
        domain_counts)
    rates

let run_big () =
  let rack = make_rack ~hosts:big_hosts () in
  (* no ~domains: LAUBERHORN_SHARDS decides — the check.sh 1-vs-4 gate *)
  setup_arrivals rack ~rate:400_000. ~seed:1718;
  Cluster.Fabric.run rack.fabric ~until:(horizon + sweep_drain);
  finish rack;
  let windows = Cluster.Fabric.windows_run rack.fabric in
  let events = Cluster.Fabric.events_processed rack.fabric in
  Common.note "%d-host rack at %s (domains from env): windows=%d events/window=%d"
    big_hosts (Common.rate_str 400_000.) windows
    (if windows = 0 then 0 else events / windows);
  Common.note "%s" ("rack:\n  " ^ String.concat "\n  " (digest_lines rack))

(* ---------- part (b): host failure, detection, re-steering ---------- *)

let victim = 3
let shed_host = 5
let kill_at = Sim.Units.ms 3
let respawn_at = Sim.Units.ms 6
let shed_from = Sim.Units.ms 4
let shed_until = Sim.Units.ms 5
let failure_drain = Sim.Units.ms 30

let run_failure () =
  let rack = make_rack ~hosts:sweep_hosts () in
  let master = Cluster.Fabric.master_engine rack.fabric in
  let setup = rack.servers.(0).Common.setup in
  let service_id = Workload.Scenario.service_id_of setup ~service_idx:0 in
  (* the kill and the respawn are host-local events on the victim's
     shard: the service process crashes where it stands, and the
     respawn re-registers with the master across the wire *)
  ignore
    (Sim.Engine.schedule_at
       (Cluster.Fabric.host_engine rack.fabric victim)
       ~at:kill_at
       (fun () ->
         rack.alive.(victim) <- false;
         rack.servers.(victim).Common.kill_service ~service_id));
  ignore
    (Sim.Engine.schedule_at
       (Cluster.Fabric.host_engine rack.fabric victim)
       ~at:respawn_at
       (fun () ->
         rack.servers.(victim).Common.restart_service ~service_id;
         rack.alive.(victim) <- true;
         Cluster.Fabric.post_to_master rack.fabric ~host:victim (fun () ->
             Cluster.Control.register rack.control ~host:victim)));
  (* a shedding window on another host: the admission-control signal
     reaches the master and steering reacts, no death involved *)
  ignore
    (Sim.Engine.schedule_at master ~at:shed_from (fun () ->
         Cluster.Control.set_shedding rack.control ~host:shed_host true));
  ignore
    (Sim.Engine.schedule_at master ~at:shed_until (fun () ->
         Cluster.Control.set_shedding rack.control ~host:shed_host false));
  let shed_steered_before = ref 0 in
  let shed_steered_during = ref 0 in
  ignore
    (Sim.Engine.schedule_at master ~at:shed_from (fun () ->
         shed_steered_before := (Cluster.Control.steered rack.control).(shed_host)));
  ignore
    (Sim.Engine.schedule_at master ~at:shed_until (fun () ->
         shed_steered_during :=
           (Cluster.Control.steered rack.control).(shed_host)
           - !shed_steered_before));
  setup_arrivals rack
    ~timeout:(Some (Sim.Units.us 200, 20))
    ~rate:200_000. ~seed:1719;
  Cluster.Fabric.run rack.fabric ~until:(horizon + failure_drain);
  finish rack;
  let c = rack.client in
  Common.note
    "kill host %d at %s (respawn %s); shed host %d %s..%s; probe period %s"
    victim (Common.ns kill_at) (Common.ns respawn_at) shed_host
    (Common.ns shed_from) (Common.ns shed_until) (Common.ns probe_period);
  let detected =
    match List.assoc_opt victim (List.rev rack.dead_at) with
    | Some t -> t
    | None -> -1
  in
  let reregistered =
    match
      List.find_opt (fun (h, t) -> h = victim && t > kill_at) rack.alive_at
    with
    | Some (_, t) -> t
    | None -> -1
  in
  Common.note
    "timeline: dead detected +%s after kill (<= 2 probe periods: %b); \
     re-registered +%s after respawn"
    (Common.ns (detected - kill_at))
    (detected >= 0 && detected - kill_at <= 2 * probe_period)
    (Common.ns (reregistered - respawn_at));
  let outage_steered =
    rack.steered_at_rereg.(victim) - rack.steered_at_death.(victim)
  in
  Common.note
    "re-steering: host %d picked %d times while dead (expect 0); picked again \
     after re-register: %b; shed host %d picked %d times while shedding \
     (expect 0)"
    victim outage_steered
    ((Cluster.Control.steered rack.control).(victim)
     > rack.steered_at_rereg.(victim))
    shed_host !shed_steered_during;
  Common.note "%s" ("rack:\n  " ^ String.concat "\n  " (digest_lines rack));
  let sent = Harness.Client.sent c in
  let completed = Harness.Client.completed c in
  let abandoned = Harness.Client.abandoned c in
  let conserved =
    completed + abandoned = sent && Harness.Client.outstanding c = 0
  in
  let st = Cluster.Switch.stats (Cluster.Fabric.switch rack.fabric) in
  let silent_free =
    st.Cluster.Switch.drop_in = 0 && st.Cluster.Switch.drop_out = 0
    && st.Cluster.Switch.unroutable = 0
    && Cluster.Fabric.undeliverable rack.fabric = 0
  in
  Common.note
    "lifecycle: deaths=%d registrations=%d probes=%d acks=%d rejected=%d \
     retransmits=%d resteered=%d unsteered=%d"
    (Cluster.Control.deaths rack.control)
    (Cluster.Control.registrations rack.control)
    (Cluster.Control.probes_sent rack.control)
    (Cluster.Control.acks_received rack.control)
    (Harness.Client.rejected c)
    (Harness.Client.retransmits c)
    rack.resteered rack.unsteered;
  Common.note
    "conservation (done + abandoned = sent, none outstanding): %b; explicit \
     err_dead rejects seen: %b; no silent losses on the path: %b%s"
    conserved
    (Harness.Client.rejected c > 0)
    silent_free
    (if conserved && Harness.Client.rejected c > 0 && silent_free then
       "  [shape holds]"
     else "  [SHAPE VIOLATION]")

let run () =
  Common.section
    "E17: rack-scale cluster — ToR switch, control plane, load balancer";
  run_sweep ();
  run_big ();
  Common.note "";
  run_failure ();
  Common.note
    "paper expectation: per-host results byte-identical for every domain";
  Common.note
    "count; a host death is detected within a probe period, steered around,";
  Common.note
    "and every in-flight RPC resolves to a reply or an explicit reject."
