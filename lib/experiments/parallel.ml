(* E16 — parallel scaling: the sharded conservative-PDES engine over a
   rack of Lauberhorn hosts, 1/2/4/8 domains, E6-style load sweep.

   Eight simulated hosts, each a full Lauberhorn stack (own engine,
   NIC pipeline, scheduler mirror, recorder). Hosts exchange a quarter
   of their traffic: a client arrival on host h targets a uniformly
   chosen remote host with probability 1/4, crossing the simulated
   rack wire (2 µs each way — also the conservative lookahead) via
   {!Sim.Shard_engine.post}. Responses route back over the same wire,
   so remote RPCs pay two hops on top of end-system latency.

   The experiment's two claims, printed as diffable stdout:

   - determinism: per-host result lines are byte-identical for every
     domain count (the digest table repeats per domain count and must
     not vary);
   - scaling: wall-clock per run for each domain count. Wall-clock is
     host noise, not simulation output, so it goes to stderr — stdout
     stays byte-stable for CI diffing. On a single-core CI box the
     speedup is ~1x (domains time-slice one core); the windows/events
     ratio printed per run is the machine-independent parallelism
     measure (events per window = work available to spread across
     domains). *)

let hosts = 8
let wire = Sim.Units.us 2 (* rack wire one-way latency = lookahead *)
let remote_frac = 0.25
let horizon = Sim.Units.ms 15
let drain = Sim.Units.ms 10
let rates = [ 100_000.; 300_000. ]
let domain_counts = [ 1; 2; 4; 8 ]

type host_result = {
  sent : int;
  completed : int;
  p50 : int;
  p99 : int;
  events : int;
}

(* One full rack run: fresh engines, stacks and arrival schedules, so
   every domain count simulates the identical workload from scratch.
   Returns per-host results plus (windows, merged messages). *)
let rack_run ~rate ~domains () =
  let engines = Array.init hosts (fun _ -> Sim.Engine.create ()) in
  let shard = Sim.Shard_engine.create ~domains ~lookahead:wire engines in
  let servers = Array.make hosts None in
  let server h =
    match servers.(h) with
    | Some s -> s
    | None -> invalid_arg "E16: server used before setup"
  in
  (* Responses carry the origin's client port (40000 + origin index):
     egress on the serving host either records locally or ships the
     frame back across the wire to the origin's recorder. *)
  let egress h frame =
    let o = frame.Net.Frame.udp.Net.Udp.dst_port - 40_000 in
    if o = h || o < 0 || o >= hosts then
      Harness.Recorder.egress (server h).Common.recorder frame
    else
      Sim.Shard_engine.post shard ~src:h ~dst:o
        ~at:(Sim.Engine.now engines.(h) + wire)
        (fun () -> Harness.Recorder.egress (server o).Common.recorder frame)
  in
  Array.iteri
    (fun h engine ->
      servers.(h) <-
        Some
          (Common.make_server ~ncores:4 ~max_workers:3 ~engine
             ~egress:(egress h)
             (Common.Lauberhorn
                (Lauberhorn.Config.enzian, Lauberhorn.Sched_mirror.Push))
             (Workload.Scenario.echo_fleet ~n:1
                ~handler_time:(Sim.Units.ns 500) ())))
    engines;
  let setup = (server 0).Common.setup in
  let service_id = Workload.Scenario.service_id_of setup ~service_idx:0 in
  let port = Workload.Scenario.port_of setup ~service_idx:0 in
  Array.iteri
    (fun h engine ->
      (* per-host seed: arrival streams are independent of both the
         domain count and the other hosts *)
      let rng = Sim.Rng.create ~seed:(1000 + h) in
      Workload.Arrivals.open_loop engine rng ~rate_per_s:rate ~until:horizon
        (fun ~seq ->
          let rpc_id = Int64.of_int ((h lsl 32) lor seq) in
          let client = Harness.Traffic.client_endpoint ~idx:h () in
          let remote = Sim.Rng.float rng < remote_frac in
          if not remote then
            Harness.Traffic.inject (server h).Common.recorder
              (server h).Common.driver ~rpc_id ~service_id ~method_id:0 ~port
              ~client
              (Rpc.Value.Blob (Bytes.make 64 'w'))
          else begin
            let dst = (h + 1 + Sim.Rng.int rng ~bound:(hosts - 1)) mod hosts in
            let frame =
              Harness.Traffic.request_frame ~rpc_id ~service_id ~method_id:0
                ~port ~client
                (Rpc.Value.Blob (Bytes.make 64 'w'))
            in
            (* stamp at the origin now; the request frame crosses the
               rack wire and enters the destination NIC one wire
               latency later *)
            Harness.Recorder.note_sent (server h).Common.recorder ~rpc_id;
            Sim.Shard_engine.post shard ~src:h ~dst
              ~at:(Sim.Engine.now engine + wire)
              (fun () -> (server dst).Common.driver.Harness.Driver.ingress frame)
          end))
    engines;
  Sim.Shard_engine.run shard ~until:(horizon + drain);
  let per_host =
    Array.init hosts (fun h ->
        let s = server h in
        s.Common.flush ();
        (match s.Common.sanitize with
        | None -> ()
        | Some z -> Sanitize.finish z);
        let r = s.Common.recorder in
        let hist = Harness.Recorder.latencies r in
        let completed = Harness.Recorder.completed r in
        let q p = if completed = 0 then 0 else Sim.Histogram.quantile hist p in
        {
          sent = Harness.Recorder.sent r;
          completed;
          p50 = q 0.5;
          p99 = q 0.99;
          events = Sim.Engine.events_processed engines.(h);
        })
  in
  (per_host, Sim.Shard_engine.windows_run shard,
   Sim.Shard_engine.messages_merged shard)

let host_line h r =
  Printf.sprintf "host%d sent=%d done=%d p50=%s p99=%s events=%d" h r.sent
    r.completed (Common.ns r.p50) (Common.ns r.p99) r.events

(* Wall-clock is measured for the scaling report only; it never
   reaches stdout, which must stay byte-identical across machines and
   domain counts. *)
let[@nondet_ok] wallclock f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let run () =
  Common.section
    "E16: parallel scaling — sharded PDES rack, 1/2/4/8 domains";
  List.iter
    (fun rate ->
      Common.note "offered load %s per host, %d hosts, %.0f%% remote"
        (Common.rate_str rate) hosts (100. *. remote_frac);
      let reference = ref None in
      List.iter
        (fun domains ->
          let (per_host, windows, merged), secs =
            wallclock (fun () -> rack_run ~rate ~domains ())
          in
          let lines =
            String.concat "\n  "
              (Array.to_list (Array.mapi host_line per_host))
          in
          let events =
            Array.fold_left (fun a r -> a + r.events) 0 per_host
          in
          Common.note "domains=%d windows=%d merged=%d events/window=%d"
            domains windows merged
            (if windows = 0 then 0 else events / windows);
          (match !reference with
          | None ->
              reference := Some lines;
              Common.note "%s" ("per-host:\n  " ^ lines)
          | Some ref_lines ->
              Common.note "per-host output identical to domains=1: %b"
                (String.equal ref_lines lines));
          (* stderr: machine-local wall clock, outside the diffed
             stream *)
          Printf.eprintf "  [e16] rate=%s domains=%d wall=%.2fs\n%!"
            (Common.rate_str rate) domains secs)
        domain_counts)
    rates;
  Common.note
    "paper expectation: per-host results byte-identical for every domain";
  Common.note
    "count (conservative lookahead = wire latency); wall-clock scaling";
  Common.note "is reported on stderr and depends on available cores."
