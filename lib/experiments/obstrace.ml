(* E18 — rack-scale observability: cross-fabric causal tracing,
   per-shard PDES profiling, deterministic metrics aggregation.

   E14 showed one host attributing its end-system latency to pipeline
   stages with zero application instrumentation; E17 put N such hosts
   behind a ToR switch. This experiment closes the loop: the E17 rack
   runs with the tracing plane armed, so every fan-out RPC — client →
   uplink wire → switch ingress/crossbar/egress → host wire → NIC →
   service → reply path — stitches into one causal tree whose stage
   durations sum EXACTLY to the client-observed end-to-end latency.
   The trace context rides inside the frames (Rpc.Wire_format's
   16-byte extension), each plane traces only on its own shard, and
   Obs.Stitch reassembles post-run; exactness is re-verified in-run
   for every completed RPC.

   Alongside, the Shard_engine profiler records per-shard window
   occupancy (events/window, idle windows = pure barrier wait, outbox
   depth) and every registry — eight host stacks, the switch, the
   control plane, the profiler — merges into one rack-wide snapshot in
   fixed (shard, name) order. Everything printed is a pure function of
   the simulation: the whole digest, with tracing and profiling armed,
   is byte-identical for any LAUBERHORN_SHARDS (asserted in-run for
   1/2/4 and diffed 1-vs-4 by scripts/check.sh, artefacts included).

   Artefacts land in $E18_OUT_DIR (default artifacts/): a multi-track
   Perfetto trace (one process per host plane + the master plane's
   client/switch/control tracks), pcap taps on the uplink and host-0
   switch ports, and the merged metrics registry as JSON — each
   re-parsed here as a self-check. *)

let hosts = 8
let rate = 200_000.
let horizon = Sim.Units.ms 5
let drain = Sim.Units.ms 10
let seed = 1818
let domain_sweep = [ 1; 2; 4 ]

let out_dir () =
  let dir =
    match Sys.getenv_opt "E18_OUT_DIR" with Some d -> d | None -> "artifacts"
  in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  dir

(* ---------- one traced rack run ---------- *)

type run = {
  rack : Rack.rack;
  obs : Obs.Tracer.t;
  prof : Obs.Profiler.t;
  completions : (int64 * int) list; (* (rpc_id, latency), completion order *)
  stitches : Obs.Stitch.t list;
  pcap_uplink : Obs.Pcap.t;
  pcap_host0 : Obs.Pcap.t;
}

let host_planes rack =
  Array.to_list
    (Array.mapi
       (fun h s -> (Printf.sprintf "host%d" h, s.Common.tracer))
       rack.Rack.servers)

let traced_run ?domains () =
  let obs = Obs.Tracer.create () in
  let rack = Rack.make_rack ?domains ~obs ~hosts () in
  let prof = Obs.Profiler.create ~shards:(hosts + 1) in
  Obs.Profiler.install prof (Cluster.Fabric.shard rack.Rack.fabric);
  let sw = Cluster.Fabric.switch rack.Rack.fabric in
  let pcap_uplink = Obs.Pcap.create () in
  let pcap_host0 = Obs.Pcap.create () in
  Cluster.Switch.tap sw ~port:hosts pcap_uplink;
  Cluster.Switch.tap sw ~port:0 pcap_host0;
  (* E14-style arrivals, but open-loop across the rack and keeping our
     own (rpc_id, latency) log so the stitched trees can be checked
     against the client's measurement per RPC *)
  let master = Cluster.Fabric.master_engine rack.Rack.fabric in
  let rng = Sim.Rng.create ~seed in
  let setup = rack.Rack.servers.(0).Common.setup in
  let service_id = Workload.Scenario.service_id_of setup ~service_idx:0 in
  let completions = ref [] in
  Workload.Arrivals.open_loop master rng ~rate_per_s:rate ~until:horizon
    (fun ~seq:_ ->
      let t0 = Sim.Engine.now master in
      let id = ref 0L in
      id :=
        Harness.Client.call_id rack.Rack.client ~service_id ~method_id:0
          ~port:rack.Rack.service_port
          (Rpc.Value.Blob (Bytes.make 64 'w'))
          (fun _ ->
            let latency = Sim.Engine.now master - t0 in
            Sim.Histogram.record rack.Rack.latencies latency;
            completions := (!id, latency) :: !completions));
  Cluster.Fabric.run rack.Rack.fabric ~until:(horizon + drain);
  Rack.finish rack;
  (* control-plane track: lifecycle transitions as instants on the
     master plane (registration timeline here; deaths when they
     happen) *)
  let tc = Obs.Tracer.track obs "control" in
  List.iter
    (fun (h, t) ->
      Obs.Tracer.instant obs ~track:tc ~name:(Printf.sprintf "host%d alive" h)
        t)
    (List.rev rack.Rack.alive_at);
  List.iter
    (fun (h, t) ->
      Obs.Tracer.instant obs ~track:tc ~name:(Printf.sprintf "host%d dead" h)
        t)
    (List.rev rack.Rack.dead_at);
  let stitches = Obs.Stitch.assemble ~root:obs ~parts:(host_planes rack) in
  {
    rack;
    obs;
    prof;
    completions = List.rev !completions;
    stitches;
    pcap_uplink;
    pcap_host0;
  }

(* ---------- digest: every observable, machine-independent ---------- *)

let find_stitch r id =
  List.find_opt (fun (s : Obs.Stitch.t) -> Int64.equal s.Obs.Stitch.trace id)
    r.stitches

(* The rack-scale E14 invariant, checked per RPC against the client's
   own measurement: stitched, contiguous, and stage_sum = latency. *)
let attribution_mismatches r =
  List.fold_left
    (fun bad (id, latency) ->
      match find_stitch r id with
      | Some s when Obs.Stitch.exact s && s.Obs.Stitch.stage_sum = latency ->
          bad
      | Some _ | None -> bad + 1)
    0 r.completions

(* Per-stage totals in first-seen chain order, tagged with the plane
   kind ("fabric" for the master plane, "host" for any host's). *)
let aggregate_stages r =
  let order = ref [] in
  let totals = Hashtbl.create 16 in
  List.iter
    (fun (s : Obs.Stitch.t) ->
      List.iter
        (fun (st : Obs.Stitch.stage) ->
          let plane = if st.Obs.Stitch.plane = "" then "fabric" else "host" in
          let key = (plane, st.Obs.Stitch.span.Obs.Span.name) in
          if not (Hashtbl.mem totals key) then begin
            Hashtbl.add totals key (ref 0);
            order := key :: !order
          end;
          let cell = Hashtbl.find totals key in
          cell := !cell + Obs.Span.duration st.Obs.Stitch.span)
        s.Obs.Stitch.stages)
    r.stitches;
  List.rev_map (fun key -> (key, !(Hashtbl.find totals key))) !order

let merged_metrics r =
  let merged = Obs.Metrics.create () in
  Array.iter
    (fun s ->
      Obs.Metrics.merge_into ~src:s.Common.driver.Harness.Driver.metrics
        ~dst:merged)
    r.rack.Rack.servers;
  Obs.Metrics.merge_into
    ~src:(Cluster.Switch.metrics (Cluster.Fabric.switch r.rack.Rack.fabric))
    ~dst:merged;
  Obs.Metrics.merge_into
    ~src:(Cluster.Control.metrics r.rack.Rack.control)
    ~dst:merged;
  Obs.Profiler.merge_into_metrics r.prof merged;
  merged

let metrics_checksum m =
  List.fold_left
    (fun acc (name, v) -> acc + (Hashtbl.hash name lxor (v * 0x9e3779b1)))
    0
    (Obs.Metrics.to_list ~keep_zero:true m)

let digest_lines r =
  let n = List.length r.completions in
  let exact =
    List.length
      (List.filter
         (fun (s : Obs.Stitch.t) -> Obs.Stitch.exact s)
         r.stitches)
  in
  let total_lat = List.fold_left (fun acc (_, l) -> acc + l) 0 r.completions in
  let stitch_line =
    Printf.sprintf
      "stitched traces=%d exact=%d completed=%d attribution-mismatches=%d"
      (List.length r.stitches) exact n (attribution_mismatches r)
  in
  let stage_lines =
    List.map
      (fun ((plane, name), total) ->
        Printf.sprintf "stage %-7s %-16s mean=%-9s share=%4.1f%%" plane name
          (Common.ns (if n = 0 then 0 else total / n))
          (100. *. float_of_int total /. float_of_int (max 1 total_lat)))
      (aggregate_stages r)
  in
  let merged = merged_metrics r in
  let metrics_line =
    Printf.sprintf "merged metrics entries=%d checksum=%08x"
      (List.length (Obs.Metrics.to_list ~keep_zero:true merged))
      (metrics_checksum merged land 0xffffffff)
  in
  Rack.digest_lines r.rack
  @ (stitch_line :: stage_lines)
  @ Obs.Profiler.report_lines r.prof
  @ [ metrics_line ]

(* ---------- artefact export + self-check ---------- *)

let export_and_verify r =
  let dir = out_dir () in
  let planes = ("rack-fabric", r.obs) :: host_planes r.rack in
  let json = Obs.Export.multi_trace_events planes in
  let json_file = Filename.concat dir "e18_rack.trace.json" in
  let oc = open_out json_file in
  output_string oc (Obs.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  let parse_verdict =
    match Obs.Json.parse (Obs.Json.to_string json) with
    | Ok v when Obs.Json.equal v json -> "strict parse + roundtrip ok"
    | Ok _ -> "PARSE MISMATCH"
    | Error e -> "PARSE ERROR: " ^ e
  in
  Common.note "%s: %d planes, %d spans (%s)"
    (Filename.basename json_file)
    (List.length planes)
    (List.fold_left
       (fun acc (_, tr) -> acc + Obs.Tracer.span_count tr)
       0 planes)
    parse_verdict;
  let merged = merged_metrics r in
  let metrics_file = Filename.concat dir "e18_metrics.json" in
  let mjson = Obs.Metrics.to_json merged in
  let oc = open_out metrics_file in
  output_string oc (Obs.Json.to_string mjson);
  output_char oc '\n';
  close_out oc;
  Common.note "%s: %d metrics (merged in fixed shard order)"
    (Filename.basename metrics_file)
    (List.length (Obs.Metrics.to_list ~keep_zero:true merged));
  List.iter
    (fun (tag, pcap) ->
      let file = Filename.concat dir (Printf.sprintf "e18_%s.pcap" tag) in
      Obs.Pcap.write_file pcap ~file;
      let verdict =
        match Obs.Pcap.records (Obs.Pcap.to_bytes pcap) with
        | Error e -> "PCAP ERROR: " ^ e
        | Ok recs ->
            let parsed =
              List.for_all
                (fun (_, slice) ->
                  match Net.Frame.parse_slice slice with
                  | Ok _ -> true
                  | Error _ -> false)
                recs
            in
            if parsed then
              Printf.sprintf "%d frames, all re-parse ok" (List.length recs)
            else "PCAP REPARSE FAILURE"
      in
      Common.note "%s: %s" (Filename.basename file) verdict)
    [ ("uplink", r.pcap_uplink); ("host0", r.pcap_host0) ]

(* ---------- the experiment ---------- *)

let run () =
  Common.section
    "E18: rack-scale observability — stitched traces, shard profiler, \
     merged metrics";
  Common.note
    "%d hosts at %s, tracing + profiling armed on every shard" hosts
    (Common.rate_str rate);
  (* part (a): the armed rack is still byte-identical across domain
     counts — tracing, profiling and aggregation included *)
  let reference = ref None in
  List.iter
    (fun domains ->
      let r = traced_run ~domains () in
      let digest = String.concat "\n  " (digest_lines r) in
      let windows = Cluster.Fabric.windows_run r.rack.Rack.fabric in
      let events = Cluster.Fabric.events_processed r.rack.Rack.fabric in
      Common.note "domains=%d windows=%d events/window=%d" domains windows
        (if windows = 0 then 0 else events / windows);
      match !reference with
      | None ->
          reference := Some digest;
          Common.note "%s" ("armed rack:\n  " ^ digest)
      | Some d ->
          Common.note "identical to domains=1: %b" (String.equal d digest))
    domain_sweep;
  (* part (b): the environment's domain count (LAUBERHORN_SHARDS) —
     the run scripts/check.sh diffs 1-vs-4 and double-runs, with the
     artefacts included in the comparison *)
  let r = traced_run () in
  Common.note "";
  Common.note "env-domains run (LAUBERHORN_SHARDS decides):";
  Common.note "%s" ("armed rack:\n  " ^ String.concat "\n  " (digest_lines r));
  Common.note "";
  Common.note "exports (to $E18_OUT_DIR, default artifacts/):";
  export_and_verify r;
  Common.note
    "every stage of every RPC is attributed — client queue, uplink wire,";
  Common.note
    "switch ingress/crossbar/egress, host wire, NIC pipeline, service,";
  Common.note
    "and the reply path — and the stitched stage durations sum exactly";
  Common.note
    "to the client-observed latency, with the whole plane deterministic."
