(* E13 — fault injection: goodput and retry-inflated latency vs wire
   loss, for all three stacks.

   The paper's recovery structure (§5.1: TRYAGAIN dummy fills, bounded
   rings, NIC-side protocol state) only matters when the network
   misbehaves. Here every request and reply crosses a seeded
   fault-injection link (Fault.Plan, deterministic under Sim.Rng), and
   the client retries with exponential backoff + jitter. Goodput is
   completed RPCs per second of offered window; latency percentiles are
   measured client-side, so they include retransmission delays — the
   price of loss is visible in p99 long before goodput collapses.

   The whole sweep is deterministic: same seeds, same plan, same
   numbers (scripts/check.sh runs it twice and diffs). *)

let losses = [ 0.0; 0.01; 0.05; 0.1 ]
let rate = 100_000.
let horizon = Sim.Units.ms 10

let flavours =
  [
    Common.Linux Coherence.Interconnect.pcie_enzian;
    Common.Bypass Coherence.Interconnect.pcie_enzian;
    Common.Lauberhorn (Lauberhorn.Config.enzian, Lauberhorn.Sched_mirror.Push);
  ]

let plan_of ~loss =
  Fault.Plan.make ~seed:7
    ~wire:(Fault.Plan.link ~drop:loss ())
    ()

let run () =
  Common.section
    "E13: loss sweep — goodput and latency (with retries) vs wire loss";
  let results =
    List.map
      (fun loss ->
        ( loss,
          List.map
            (fun flavour ->
              Common.lossy_run ~ncores:4 ~rate ~horizon ~plan:(plan_of ~loss)
                flavour)
            flavours ))
      losses
  in
  Common.table
    ~header:
      ([ "wire loss" ]
      @ List.concat_map
          (fun f ->
            let n = Common.flavour_name f in
            [ n ^ " goodput"; n ^ " p50"; n ^ " p99"; n ^ " rtx" ])
          flavours)
    (List.map
       (fun (loss, ms) ->
         Printf.sprintf "%.2f" loss
         :: List.concat_map
              (fun m ->
                [
                  Common.rate_str m.Common.throughput;
                  Common.ns m.Common.p50;
                  Common.ns m.Common.p99;
                  string_of_int (Common.counter m "retransmits");
                ])
              ms)
       results);
  List.iter
    (fun (loss, ms) ->
      Common.note "loss %.2f timeline digests: %s" loss
        (String.concat " "
           (List.map
              (fun m ->
                Printf.sprintf "%s=%d" m.Common.name
                  (Common.counter m "timeline_digest"))
              ms)))
    results;
  (* Shape checks: retries recover everything at these loss rates, and
     the retransmission counters actually move with loss. *)
  let all_complete =
    List.for_all
      (fun (_, ms) ->
        List.for_all
          (fun m -> m.Common.completed = m.Common.sent && m.Common.sent > 0)
          ms)
      results
  in
  let _, at0 = List.hd results in
  let _, at10 = List.nth results 3 in
  let rtx_moves =
    List.for_all2
      (fun m0 m10 ->
        Common.counter m0 "retransmits" = 0
        && Common.counter m10 "retransmits" > 0)
      at0 at10
  in
  Common.note
    "paper expectation: retry layer masks loss (goodput holds); latency";
  Common.note
    "tails inflate with loss while the fault-free column is untouched.";
  Common.note "every RPC completed: %b; retransmits 0 at loss 0, >0 at 0.1: %b%s"
    all_complete rtx_moves
    (if all_complete && rtx_moves then "  [shape holds]"
     else "  [SHAPE VIOLATION]")
