(* E5 — Section 5.1: the TRYAGAIN timeout.

   "We avoid [coherence-protocol bus errors] by returning TRYAGAIN
   dummy messages after 15ms, reducing the polling overhead (both bus
   traffic and CPU spinning) to almost zero."

   Sweep the timeout on an idle server and measure the resulting bus
   traffic (dummy fills per second per parked line), then add sparse
   traffic and check that request latency does not depend on the
   timeout (a parked load is answered by the packet, not the timer). *)

let idle_window = Sim.Units.ms 200

let idle_traffic timeout =
  let setup = Workload.Scenario.echo_fleet ~n:1 () in
  let server =
    Common.make_server ~ncores:4
      (Common.Lauberhorn
         ( Lauberhorn.Config.with_timeout Lauberhorn.Config.enzian timeout,
           Lauberhorn.Sched_mirror.Push ))
      setup
  in
  Common.run_to server.Common.engine ~until:idle_window;
  match server.Common.lauberhorn with
  | Some stack ->
      let ha = Lauberhorn.Stack.home_agent stack in
      ( Coherence.Home_agent.tryagains ha,
        Coherence.Home_agent.loads ha + Coherence.Home_agent.fills ha
        + Coherence.Home_agent.tryagains ha )
  | None -> (0, 0)

let sparse_latency timeout =
  let m =
    Common.open_loop_run ~ncores:4 ~rate:1_000. ~horizon:(Sim.Units.ms 100)
      (Common.Lauberhorn
         ( Lauberhorn.Config.with_timeout Lauberhorn.Config.enzian timeout,
           Lauberhorn.Sched_mirror.Push ))
  in
  m.Common.p50

let run () =
  Common.section "E5: TRYAGAIN timeout vs polling overhead (idle server)";
  let timeouts =
    [
      Sim.Units.us 100;
      Sim.Units.ms 1;
      Sim.Units.ms 5;
      Sim.Units.ms 15;
      Sim.Units.ms 50;
    ]
  in
  let rows =
    List.map
      (fun timeout ->
        let tryagains, bus = idle_traffic timeout in
        let p50 = sparse_latency timeout in
        ( timeout,
          tryagains,
          [
            Common.ns timeout;
            string_of_int tryagains;
            Common.rate_str
              (float_of_int bus /. Sim.Units.to_float_s idle_window);
            Common.ns p50;
          ] ))
      timeouts
  in
  Common.table
    ~header:
      [ "timeout"; "tryagains (200ms idle)"; "bus transactions"; "sparse p50" ]
    (List.map (fun (_, _, row) -> row) rows);
  let t15 =
    let _, n, _ =
      List.find (fun (t, _, _) -> t = Sim.Units.ms 15) rows
    in
    n
  in
  let t100us =
    let _, n, _ =
      List.find (fun (t, _, _) -> t = Sim.Units.us 100) rows
    in
    n
  in
  Common.note
    "paper expectation: at 15 ms the dummy-fill traffic is negligible";
  Common.note
    "(vs a spin loop's millions of checks/s) and latency is unaffected.";
  Common.note "measured: 15ms -> %d dummies in 200ms vs %d at 100us%s" t15
    t100us
    (if t15 * 10 < t100us then "  [shape holds]" else "  [SHAPE VIOLATION]")
