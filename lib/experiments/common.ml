(* Shared infrastructure for the experiment harness: build a server
   stack of a given flavour, drive it with a workload, and collect
   latency/cycle measurements. *)

type flavour =
  | Lauberhorn of Lauberhorn.Config.t * Lauberhorn.Sched_mirror.mode
  | Linux of Coherence.Interconnect.profile
  | Bypass of Coherence.Interconnect.profile
  | Static of Lauberhorn.Config.t
      (** CC-NIC/nanoPU ablation: coherent delivery, traditional static
          split. *)

let flavour_name = function
  | Lauberhorn (cfg, Lauberhorn.Sched_mirror.Push) ->
      "lauberhorn/" ^ cfg.Lauberhorn.Config.profile.Coherence.Interconnect.name
  | Lauberhorn (_, Lauberhorn.Sched_mirror.Query) -> "lauberhorn/no-mirror"
  | Linux p -> "linux/" ^ p.Coherence.Interconnect.name
  | Bypass p -> "bypass/" ^ p.Coherence.Interconnect.name
  | Static _ -> "ccnic-static"

type server = {
  engine : Sim.Engine.t;
  driver : Harness.Driver.t;
  recorder : Harness.Recorder.t;
  tracer : Obs.Tracer.t;
  setup : Workload.Scenario.setup;
  flush : unit -> unit;  (* finalize ledgers (bypass spin windows) *)
  lauberhorn : Lauberhorn.Stack.t option;
  sanitize : Sanitize.t option;
  kill_service : service_id:int -> unit;
      (* crash the process hosting the service, flavour-appropriately *)
  restart_service : service_id:int -> unit;
}

(* [LAUBERHORN_SANITIZE=1] arms the runtime sanitizers for every
   server built through this harness without touching experiment code:
   CI runs the determinism-critical experiments once normally and once
   sanitized. Reading an env var is deterministic for a fixed
   environment, so sanitized runs are as reproducible as plain ones. *)
let sanitize_env_enabled () =
  match Sys.getenv_opt "LAUBERHORN_SANITIZE" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

(* Build a server hosting [setup]'s services under the given flavour.
   [engine]/[egress] default to a private engine recording into the
   server's own recorder; lossy runs supply both (the chaos harness
   owns the engine and interposes its faulty reply link). [fault]
   arms the stack-side choke points (DMA completions for the
   baselines, coherence fills for Lauberhorn). [tap] observes every
   frame crossing the server's edge — ingress requests and egress
   responses — e.g. for pcap capture. The server's tracer starts
   disabled; enable it to collect per-RPC stage spans. *)
let make_server ?(ncores = 8) ?(min_workers = 1) ?(max_workers = 2)
    ?(linux_threads = 2) ?engine ?(fault = Fault.Plan.none) ?egress ?tap
    ?metrics ?sanitize ?steering flavour setup =
  (match (steering, flavour) with
  | Some _, (Lauberhorn _ | Linux _ | Static _) ->
      invalid_arg
        "Common.make_server: verified steering programs require the Bypass \
         flavour (the poll-mode stack where any lane serves any port)"
  | _ -> ());
  let engine =
    match engine with
    | Some e -> e
    | None ->
        (* Backend precedence: LAUBERHORN_SCHED, then the flavour's
           config, then the heap. Either way the run is byte-identical;
           only its wall-clock cost moves. *)
        let sched =
          match Sim.Scheduler.env_kind_opt () with
          | Some k -> k
          | None -> (
              match flavour with
              | Lauberhorn (cfg, _) | Static cfg ->
                  cfg.Lauberhorn.Config.scheduler
              | Linux _ | Bypass _ -> Sim.Scheduler.Heap)
        in
        Sim.Engine.create ~sched ()
  in
  let sanitize =
    match sanitize with
    | Some _ -> sanitize
    | None ->
        if sanitize_env_enabled () then Some (Sanitize.create engine)
        else None
  in
  (match sanitize with
  | None -> ()
  | Some z -> Sanitize.Engine_watch.attach z engine);
  let recorder = Harness.Recorder.create engine in
  let tracer = Obs.Tracer.create () in
  let egress =
    match egress with Some e -> e | None -> Harness.Recorder.egress recorder
  in
  let egress =
    match tap with
    | None -> egress
    | Some tap -> fun f -> tap f; egress f
  in
  let driver, flush, lauberhorn, kill_service, restart_service =
    match flavour with
    | Lauberhorn (cfg, mirror_mode) ->
        let s =
          Lauberhorn.Stack.create engine ~cfg ~ncores ~mirror_mode ~fault
            ?metrics ?sanitize ~tracer
            ~services:
              (List.mapi
                 (fun i def ->
                   Lauberhorn.Stack.spec ~min_workers ~max_workers
                     ~port:setup.Workload.Scenario.ports.(i) def)
                 setup.Workload.Scenario.defs)
            ~egress ()
        in
        ( Lauberhorn.Stack.driver s,
          (fun () -> ()),
          Some s,
          (fun ~service_id -> Lauberhorn.Stack.kill_service s ~service_id),
          fun ~service_id -> Lauberhorn.Stack.restart_service s ~service_id )
    | Linux profile ->
        let s =
          Baseline.Linux_stack.create engine ~profile ~ncores ~fault ?metrics
            ?sanitize ~tracer
            ~services:
              (List.mapi
                 (fun i def ->
                   Baseline.Linux_stack.spec ~threads:linux_threads
                     ~port:setup.Workload.Scenario.ports.(i) def)
                 setup.Workload.Scenario.defs)
            ~egress ()
        in
        ( Baseline.Linux_stack.driver s,
          (fun () -> ()),
          None,
          (fun ~service_id -> Baseline.Linux_stack.kill_service s ~service_id),
          fun ~service_id ->
            Baseline.Linux_stack.restart_service s ~service_id )
    | Bypass profile ->
        let s =
          Baseline.Bypass_stack.create engine ~profile ~ncores ~fault ?metrics
            ?sanitize ?steering ~tracer
            ~services:
              (List.mapi
                 (fun i def ->
                   Baseline.Bypass_stack.spec
                     ~port:setup.Workload.Scenario.ports.(i) def)
                 setup.Workload.Scenario.defs)
            ~egress ()
        in
        ( Baseline.Bypass_stack.driver s,
          (fun () -> Baseline.Bypass_stack.flush_spin s),
          None,
          (fun ~service_id -> Baseline.Bypass_stack.kill_service s ~service_id),
          fun ~service_id ->
            Baseline.Bypass_stack.restart_service s ~service_id )
    | Static cfg ->
        let s =
          Lauberhorn.Static_stack.create engine ~cfg ~ncores ~fault ?metrics
            ?sanitize ~tracer
            ~services:
              (List.mapi
                 (fun i def ->
                   Lauberhorn.Static_stack.spec
                     ~port:setup.Workload.Scenario.ports.(i) def)
                 setup.Workload.Scenario.defs)
            ~egress ()
        in
        ( Lauberhorn.Static_stack.driver s,
          (fun () -> ()),
          None,
          (fun ~service_id ->
            Lauberhorn.Static_stack.kill_service s ~service_id),
          fun ~service_id ->
            Lauberhorn.Static_stack.restart_service s ~service_id )
  in
  let driver =
    match tap with
    | None -> driver
    | Some tap ->
        let inner = driver.Harness.Driver.ingress in
        { driver with Harness.Driver.ingress = (fun f -> tap f; inner f) }
  in
  {
    engine;
    driver;
    recorder;
    tracer;
    setup;
    flush;
    lauberhorn;
    sanitize;
    kill_service;
    restart_service;
  }

let inject_blob server ~seq ~service_idx ~bytes =
  let setup = server.setup in
  Harness.Traffic.inject server.recorder server.driver
    ~rpc_id:(Int64.of_int seq)
    ~service_id:(Workload.Scenario.service_id_of setup ~service_idx)
    ~method_id:0
    ~port:(Workload.Scenario.port_of setup ~service_idx)
    (Rpc.Value.Blob (Bytes.make bytes 'w'))

type measurement = {
  name : string;
  sent : int;
  completed : int;
  p50 : int;
  p90 : int;
  p99 : int;
  mean : float;
  max : int;
  throughput : float;  (* completions per second over the window *)
  user_ns : int;
  kernel_ns : int;
  spin_ns : int;
  stall_ns : int;
  window : Sim.Units.duration;
  counters : (string * int) list;
}

(* [LAUBERHORN_SHARDS>1] (or a forced test override) routes whole-run
   stepping through the sharded engine: the harness's single engine
   becomes a one-shard PDES instance executed as barrier-delimited
   conservative windows instead of one long [Engine.run]. The
   simulation is byte-identical either way — CI diffs the two — so
   this seam proves the windowed stepping discipline on every
   pre-existing experiment, not just E16. *)
let forced_shards = ref None
let set_forced_shards n = forced_shards := n

let shards_enabled () =
  match !forced_shards with
  | Some n -> n
  | None -> Sim.Shard_engine.env_domains ()

let run_to engine ~until =
  if shards_enabled () > 1 then
    let t =
      Sim.Shard_engine.create ~domains:1 ~lookahead:(Sim.Units.us 50)
        [| engine |]
    in
    Sim.Shard_engine.run t ~until
  else Sim.Engine.run engine ~until

let measure ?(drain = Sim.Units.ms 10) ~name ~horizon server =
  run_to server.engine ~until:(horizon + drain);
  server.flush ();
  (match server.sanitize with None -> () | Some z -> Sanitize.finish z);
  let h = Harness.Recorder.latencies server.recorder in
  let completed = Harness.Recorder.completed server.recorder in
  let acct =
    Osmodel.Cpu_account.merge
      (Osmodel.Kernel.accounts server.driver.Harness.Driver.kernel)
  in
  let q p = if completed = 0 then 0 else Sim.Histogram.quantile h p in
  {
    name;
    sent = Harness.Recorder.sent server.recorder;
    completed;
    p50 = q 0.5;
    p90 = q 0.9;
    p99 = q 0.99;
    mean = Sim.Histogram.mean h;
    max = (if completed = 0 then 0 else Sim.Histogram.max_value h);
    throughput = float_of_int completed /. Sim.Units.to_float_s horizon;
    user_ns = Osmodel.Cpu_account.charged acct Osmodel.Cpu_account.User;
    kernel_ns = Osmodel.Cpu_account.charged acct Osmodel.Cpu_account.Kernel;
    spin_ns = Osmodel.Cpu_account.charged acct Osmodel.Cpu_account.Spin;
    stall_ns = Osmodel.Cpu_account.charged acct Osmodel.Cpu_account.Stall;
    window = horizon + drain;
    counters =
      Sim.Counter.to_list server.driver.Harness.Driver.counters
      @ Obs.Metrics.to_list server.driver.Harness.Driver.metrics;
  }

let counter m name =
  match List.assoc_opt name m.counters with Some v -> v | None -> 0

(* A standard open-loop run: [nservices] echo services, Poisson
   arrivals, optional Zipf skew, fixed payload. *)
let open_loop_run ?(ncores = 8) ?(nservices = 1) ?(min_workers = 1)
    ?(max_workers = 2) ?(payload = 64) ?(zipf_s = 0.)
    ?(handler_time = Sim.Units.ns 500) ?(seed = 42)
    ?(horizon = Sim.Units.ms 30) ~rate flavour =
  let setup = Workload.Scenario.echo_fleet ~n:nservices ~handler_time () in
  let server = make_server ~ncores ~min_workers ~max_workers flavour setup in
  let rng = Sim.Rng.create ~seed in
  Workload.Arrivals.open_loop server.engine rng ~rate_per_s:rate
    ~until:horizon (fun ~seq ->
      let service_idx =
        if zipf_s > 0. then
          (Workload.Rpc_mix.zipf_pick rng ~services:nservices ~s:zipf_s)
            .Workload.Rpc_mix.service_idx
        else if nservices = 1 then 0
        else
          (Workload.Rpc_mix.uniform_pick rng ~services:nservices)
            .Workload.Rpc_mix.service_idx
      in
      inject_blob server ~seq ~service_idx ~bytes:payload);
  measure ~name:(flavour_name flavour) ~horizon server

(* A lossy open-loop run: the same echo fleet, but driven through the
   chaos harness — requests and replies cross seeded fault links, the
   client retries with exponential backoff, and latency is measured
   client-side (so it includes retransmission delays). The plan also
   arms the stack-side choke points via [make_server ~fault]. Returns
   the measurement plus the chaos harness for counter/timeline
   inspection. *)
let lossy_run_full ?(ncores = 4) ?(nservices = 1) ?(min_workers = 1)
    ?(max_workers = 2) ?(payload = 64) ?(handler_time = Sim.Units.ns 500)
    ?(seed = 42) ?(horizon = Sim.Units.ms 10) ?(drain = Sim.Units.ms 60)
    ?(timeout = Sim.Units.us 200) ?(retries = 20) ?(backoff = 1.5)
    ?(max_timeout = Sim.Units.ms 2) ?(jitter = 0.25) ~rate ~plan flavour =
  let setup = Workload.Scenario.echo_fleet ~n:nservices ~handler_time () in
  let engine = Sim.Engine.create () in
  let chaos =
    Harness.Chaos.create engine ~plan ~timeout ~retries ~backoff ~max_timeout
      ~jitter ()
  in
  let server =
    make_server ~ncores ~min_workers ~max_workers ~engine ~fault:plan
      ~egress:(Harness.Chaos.egress chaos) flavour setup
  in
  Harness.Chaos.connect chaos server.driver;
  let rng = Sim.Rng.create ~seed in
  Workload.Arrivals.open_loop engine rng ~rate_per_s:rate ~until:horizon
    (fun ~seq:_ ->
      let service_idx =
        if nservices = 1 then 0
        else
          (Workload.Rpc_mix.uniform_pick rng ~services:nservices)
            .Workload.Rpc_mix.service_idx
      in
      Harness.Chaos.call chaos
        ~service_id:(Workload.Scenario.service_id_of setup ~service_idx)
        ~method_id:0
        ~port:(Workload.Scenario.port_of setup ~service_idx)
        (Rpc.Value.Blob (Bytes.make payload 'w')));
  run_to engine ~until:(horizon + drain);
  server.flush ();
  (match server.sanitize with None -> () | Some z -> Sanitize.finish z);
  let recorder = Harness.Chaos.recorder chaos in
  let h = Harness.Recorder.latencies recorder in
  let completed = Harness.Recorder.completed recorder in
  let acct =
    Osmodel.Cpu_account.merge
      (Osmodel.Kernel.accounts server.driver.Harness.Driver.kernel)
  in
  let q p = if completed = 0 then 0 else Sim.Histogram.quantile h p in
  let m =
    {
      name = flavour_name flavour;
      sent = Harness.Recorder.sent recorder;
      completed;
      p50 = q 0.5;
      p90 = q 0.9;
      p99 = q 0.99;
      mean = Sim.Histogram.mean h;
      max = (if completed = 0 then 0 else Sim.Histogram.max_value h);
      throughput = float_of_int completed /. Sim.Units.to_float_s horizon;
      user_ns = Osmodel.Cpu_account.charged acct Osmodel.Cpu_account.User;
      kernel_ns = Osmodel.Cpu_account.charged acct Osmodel.Cpu_account.Kernel;
      spin_ns = Osmodel.Cpu_account.charged acct Osmodel.Cpu_account.Spin;
      stall_ns = Osmodel.Cpu_account.charged acct Osmodel.Cpu_account.Stall;
      window = horizon + drain;
      counters =
        Sim.Counter.to_list server.driver.Harness.Driver.counters
        @ Obs.Metrics.to_list server.driver.Harness.Driver.metrics
        @ Harness.Chaos.stats chaos
        @ [ ("timeline_digest", Harness.Chaos.timeline_digest chaos) ];
    }
  in
  (m, chaos)

let lossy_run ?ncores ?nservices ?min_workers ?max_workers ?payload
    ?handler_time ?seed ?horizon ?drain ?timeout ?retries ?backoff
    ?max_timeout ?jitter ~rate ~plan flavour =
  fst
    (lossy_run_full ?ncores ?nservices ?min_workers ?max_workers ?payload
       ?handler_time ?seed ?horizon ?drain ?timeout ?retries ?backoff
       ?max_timeout ?jitter ~rate ~plan flavour)

(* A replayed-trace run over [nservices] echo services. *)
let replay_run ?(ncores = 8) ?(min_workers = 1) ?(max_workers = 2)
    ?(handler_time = Sim.Units.ns 500) ~events flavour =
  let nservices =
    1
    + List.fold_left
        (fun acc ev -> max acc ev.Workload.Trace_replay.service_idx)
        0 events
  in
  let setup = Workload.Scenario.echo_fleet ~n:nservices ~handler_time () in
  let server = make_server ~ncores ~min_workers ~max_workers flavour setup in
  let seq = ref 0 in
  Workload.Trace_replay.replay server.engine events (fun ev ->
      incr seq;
      inject_blob server ~seq:!seq
        ~service_idx:ev.Workload.Trace_replay.service_idx
        ~bytes:(min ev.Workload.Trace_replay.bytes 60_000));
  let horizon =
    match List.rev events with
    | last :: _ -> last.Workload.Trace_replay.at + Sim.Units.ms 1
    | [] -> Sim.Units.ms 1
  in
  measure ~name:(flavour_name flavour) ~horizon server

(* ---------- Report formatting ---------- *)

let section title =
  Format.printf "@.%s@.%s@." title (String.make (String.length title) '=')

let note fmt = Format.printf ("  " ^^ fmt ^^ "@.")

let table ~header rows =
  let widths =
    List.fold_left
      (fun acc row ->
        List.map2 (fun w cell -> max w (String.length cell)) acc row)
      (List.map String.length header)
      rows
  in
  let print_row row =
    Format.printf "  ";
    List.iter2 (fun w cell -> Format.printf "%-*s  " w cell) widths row;
    Format.printf "@."
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let ns v = Format.asprintf "%a" Sim.Units.pp_duration v
let rate_str v = Format.asprintf "%a" Sim.Units.pp_rate v
