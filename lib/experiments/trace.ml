(* E14 — per-RPC causal tracing and stage-latency attribution.

   The paper's §6 argues that a NIC integrated with the OS sees every
   RPC's arrival and departure, so it can attribute end-system latency
   to pipeline stages with zero application instrumentation. We enable
   the span tracer on each stack flavour, run a closed-loop ping-pong,
   and decompose the recorder-measured latency into the stack's stage
   chain. The decomposition is exact by construction — stage spans
   telescope from ingress to egress — and this experiment checks that
   invariant on every completed RPC.

   Each flavour's spans are exported as a Chrome trace-event JSON
   (open in Perfetto / chrome://tracing) and every frame crossing the
   server edge is captured to a nanosecond pcap; both artefacts are
   re-parsed here as a self-check. Output files land in $E14_OUT_DIR
   (default: artifacts/, created on demand). *)

let rtts = 64
let payload = 64
let propagation = Sim.Units.ns 500

let out_dir () =
  let dir =
    match Sys.getenv_opt "E14_OUT_DIR" with Some d -> d | None -> "artifacts"
  in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  dir

let sanitize name =
  String.map (function '/' | ' ' -> '-' | c -> c) name

(* Closed-loop ping-pong with tracing enabled and the wire tapped. *)
let traced_ping_pong flavour =
  let setup =
    Workload.Scenario.echo_fleet ~n:1 ~handler_time:(Sim.Units.ns 500) ()
  in
  let engine = Sim.Engine.create () in
  let pcap = Obs.Pcap.create () in
  let tap frame =
    Obs.Pcap.add_frame pcap ~time:(Sim.Engine.now engine) frame
  in
  let server = Common.make_server ~ncores:4 ~engine ~tap flavour setup in
  Obs.Tracer.enable server.Common.tracer;
  let sim_trace = Sim.Trace.create () in
  (match server.Common.lauberhorn with
  | Some s ->
      Sim.Trace.enable sim_trace;
      Lauberhorn.Stack.attach_trace s sim_trace
  | None -> ());
  let completions = ref [] in
  let remaining = ref rtts in
  let next = ref 0 in
  let fire () =
    incr next;
    Common.inject_blob server ~seq:!next ~service_idx:0 ~bytes:payload
  in
  Harness.Recorder.on_complete server.Common.recorder
    (fun ~rpc_id ~latency ->
      completions := (rpc_id, latency) :: !completions;
      decr remaining;
      if !remaining > 0 then
        ignore
          (Sim.Engine.schedule_after engine ~after:(2 * propagation)
             (fun () -> fire ())));
  fire ();
  Common.run_to engine ~until:(Sim.Units.s 2);
  (server, pcap, sim_trace, List.rev !completions)

(* Per-stage totals in first-seen chain order. *)
let aggregate_stages tracer completions =
  let order = ref [] in
  let totals = Hashtbl.create 8 in
  List.iter
    (fun (rpc, _) ->
      List.iter
        (fun (s : Obs.Span.t) ->
          if not (Hashtbl.mem totals s.Obs.Span.name) then begin
            Hashtbl.add totals s.Obs.Span.name (ref 0);
            order := s.Obs.Span.name :: !order
          end;
          let r = Hashtbl.find totals s.Obs.Span.name in
          r := !r + Obs.Span.duration s)
        (Obs.Tracer.stages_of tracer ~rpc))
    completions;
  List.rev_map (fun name -> (name, !(Hashtbl.find totals name))) !order

let exact_sum_check tracer completions =
  List.fold_left
    (fun bad (rpc, latency) ->
      let sum =
        List.fold_left
          (fun acc s -> acc + Obs.Span.duration s)
          0
          (Obs.Tracer.stages_of tracer ~rpc)
      in
      if sum = latency then bad else bad + 1)
    0 completions

let export_and_verify ~name server pcap sim_trace =
  let dir = out_dir () in
  let base = "e14_" ^ sanitize name in
  let tracer = server.Common.tracer in
  let sim =
    if Sim.Trace.emitted sim_trace > 0 then [ ("sim-trace", sim_trace) ]
    else []
  in
  let json = Obs.Export.trace_events ~process:("lauberhorn-sim/" ^ name) ~sim
      tracer in
  let json_file = Filename.concat dir (base ^ ".trace.json") in
  Obs.Export.write_file ~process:("lauberhorn-sim/" ^ name) ~sim tracer
    ~file:json_file;
  let parse_verdict =
    match Obs.Json.parse (Obs.Json.to_string json) with
    | Ok v when Obs.Json.equal v json -> "strict parse + roundtrip ok"
    | Ok _ -> "PARSE MISMATCH"
    | Error e -> "PARSE ERROR: " ^ e
  in
  let pcap_file = Filename.concat dir (base ^ ".pcap") in
  Obs.Pcap.write_file pcap ~file:pcap_file;
  let pcap_verdict =
    match Obs.Pcap.records (Obs.Pcap.to_bytes pcap) with
    | Error e -> "PCAP ERROR: " ^ e
    | Ok recs ->
        let parsed =
          List.for_all
            (fun (_, slice) ->
              match Net.Frame.parse_slice slice with
              | Ok _ -> true
              | Error _ -> false)
            recs
        in
        if parsed then
          Printf.sprintf "%d frames, all re-parse ok" (List.length recs)
        else "PCAP REPARSE FAILURE"
  in
  Common.note "%s: %d spans -> %s (%s)" name
    (Obs.Tracer.span_count tracer)
    (Filename.basename json_file)
    parse_verdict;
  Common.note "%s: %s (%s)" name (Filename.basename pcap_file) pcap_verdict

let flavours =
  [
    ( "lauberhorn/enzian",
      Common.Lauberhorn (Lauberhorn.Config.enzian, Lauberhorn.Sched_mirror.Push)
    );
    ("ccnic-static", Common.Static Lauberhorn.Config.enzian);
    ("bypass/pcie-enzian", Common.Bypass Coherence.Interconnect.pcie_enzian);
    ("linux/pcie-enzian", Common.Linux Coherence.Interconnect.pcie_enzian);
  ]

let run () =
  Common.section
    "E14: per-RPC causal tracing and stage-latency attribution";
  let results =
    List.map
      (fun (name, flavour) ->
        let server, pcap, sim_trace, completions = traced_ping_pong flavour in
        (name, server, pcap, sim_trace, completions))
      flavours
  in
  List.iter
    (fun (name, server, _, _, completions) ->
      let tracer = server.Common.tracer in
      let n = List.length completions in
      let total_lat =
        List.fold_left (fun acc (_, l) -> acc + l) 0 completions
      in
      Format.printf "@.  -- %s: %d RPCs, mean end-system latency %s --@." name
        n
        (Common.ns (if n = 0 then 0 else total_lat / n));
      let stages = aggregate_stages tracer completions in
      Common.table
        ~header:[ "stage"; "mean"; "share" ]
        (List.map
           (fun (stage, total) ->
             [
               stage;
               Common.ns (if n = 0 then 0 else total / n);
               Printf.sprintf "%5.1f%%"
                 (100. *. float_of_int total /. float_of_int (max 1 total_lat));
             ])
           stages);
      let mismatches = exact_sum_check tracer completions in
      Common.note "stage sums equal measured latency for %d/%d RPCs%s"
        (n - mismatches) n
        (if mismatches = 0 then "  [exact]" else "  [ATTRIBUTION GAP]"))
    results;
  Format.printf "@.";
  Common.note "exports (to $E14_OUT_DIR, default the working directory):";
  List.iter
    (fun (name, server, pcap, sim_trace, _) ->
      export_and_verify ~name server pcap sim_trace)
    results;
  Common.note
    "open the .trace.json files in Perfetto (ui.perfetto.dev) or";
  Common.note
    "chrome://tracing; the .pcap files in Wireshark/tcpdump (ns precision)."
