(* E19: the chaos soak — every cluster fault class armed at once, for
   as long as you like, in constant memory.

   An 8-host rack (E17's topology) runs an open-loop RPC load while a
   Fault.Plan.cluster schedules, proportionally to the horizon: two
   flapping host links (seeded jitter), two wedged egress ports, two
   whole-switch brownouts, three asymmetric partitions (Master->host,
   host->Master, host->host), and one master crash/restart. Workers
   survive the restart through their leases (generation-tagged epochs
   reject stale acks); the balancer steers off a partitioned host
   within two probe periods.

   The horizon comes from E19_HORIZON_MS (default 24 ms — a few
   seconds of wall clock). Every per-RPC record lands in a
   constant-memory sink: the log-bucketed Sim.Histogram for quantiles,
   an Obs.Online Welford stream for exact moments, and the pin table
   is bounded by peak outstanding calls — so E19_HORIZON_MS=7_200_000
   (two hours, millions of RPCs) holds the same footprint.

   The run fails loudly (exit via failwith) if conservation breaks:
   every issued call must resolve (completed + abandoned + errors =
   sent, none outstanding) and every lost frame must be counted at the
   choke point that ate it (wire cuts, crossbar partitions, wedged
   ports, bounded queues) — zero silent losses. The digest (client
   shape, switch stats, fault counters, the merged metrics snapshot)
   is machine-independent; check.sh diffs it across a double run and
   across LAUBERHORN_SHARDS=1/4. *)

let hosts = 8
let rate = 400_000.
let probe_period = Rack.probe_period
let lease_timeout = 4 * probe_period

let horizon =
  match Sys.getenv_opt "E19_HORIZON_MS" with
  | Some s -> (
      match int_of_string_opt s with
      | Some ms when ms > 0 -> Sim.Units.ms ms
      | Some _ | None -> invalid_arg "E19_HORIZON_MS: want a positive int")
  | None -> Sim.Units.ms 24

(* Retries stop well before this: timeout chain 250us * 1.5^k capped
   at 2 ms, 8 retries deep. *)
let drain = Sim.Units.ms 40

(* Fault windows are placed at fixed fractions of the horizon, so a
   2-hour soak exercises every class with the same relative shape as
   the 24 ms CI run. *)
let frac pct = horizon / 100 * pct

let plan () =
  let w a b = Fault.Plan.window ~starts:(frac a) ~until:(frac b) in
  Fault.Plan.make
    ~cluster:
      (Fault.Plan.cluster
         ~flaps:
           [
             ( 2,
               Fault.Plan.flap ~first_down:(frac 5) ~up_for:(frac 6)
                 ~down_for:(max (Sim.Units.us 100) (frac 1))
                 ~jitter:(Sim.Units.us 50) () );
             ( 6,
               Fault.Plan.flap ~first_down:(frac 12) ~up_for:(frac 9)
                 ~down_for:(max (Sim.Units.us 150) (frac 1))
                 ~jitter:(Sim.Units.us 80) () );
           ]
         ~wedges:[ (1, w 30 33); (4, w 55 57) ]
         ~brownouts:[ w 40 41; w 70 71 ]
         ~partitions:
           [
             (* the master loses sight of host 3; host 3's acks (and
                frames) still flow — the asymmetric case *)
             Fault.Plan.partition ~srcs:[ Fault.Plan.Master ]
               ~dsts:[ Fault.Plan.Host 3 ] ~span:(w 20 30);
             (* host 5 goes mute towards the master (acks and replies
                eaten), still hears probes — the other asymmetry *)
             Fault.Plan.partition
               ~srcs:[ Fault.Plan.Host 5 ]
               ~dsts:[ Fault.Plan.Master ] ~span:(w 60 70);
             (* a host->host crossbar cut: arms the switch partition
                seam (this north-south workload routes nothing between
                hosts, so its drops stay 0 — the seam itself is
                exercised by the unit tests) *)
             Fault.Plan.partition
               ~srcs:[ Fault.Plan.Host 0 ]
               ~dsts:[ Fault.Plan.Host 1 ] ~span:(w 10 90);
           ]
         ~master:
           (Fault.Plan.server_fault ~crash_at:(frac 45)
              ~downtime:(max (Sim.Units.ms 1) (frac 4))
              ~restart:true ())
         ())
    ()

let run () =
  Common.section "E19: chaos soak — all cluster fault classes, conserved";
  let plan = plan () in
  let metrics = Obs.Metrics.create () in
  let rack = Rack.make_rack ~fault:plan ~metrics ~hosts () in
  let master = Cluster.Fabric.master_engine rack.Rack.fabric in
  let online = Obs.Online.create () in
  (* open-loop arrivals with a retrying client, as in E17's failure
     run, but against the soak's own horizon *)
  let rng = Sim.Rng.create ~seed:1920 in
  let setup = rack.Rack.servers.(0).Common.setup in
  let service_id = Workload.Scenario.service_id_of setup ~service_idx:0 in
  Workload.Arrivals.open_loop master rng ~rate_per_s:rate ~until:horizon
    (fun ~seq:_ ->
      let t0 = Sim.Engine.now master in
      ignore
        (Harness.Client.call_id ~timeout:(Sim.Units.us 250) ~retries:8
           ~backoff:1.5 ~max_timeout:(Sim.Units.ms 2) ~jitter:0.25
           rack.Rack.client ~service_id ~method_id:0
           ~port:rack.Rack.service_port
           (Rpc.Value.Blob (Bytes.make 64 'w'))
           (fun _ ->
             let d = Sim.Engine.now master - t0 in
             Sim.Histogram.record rack.Rack.latencies d;
             Obs.Online.record online d)));
  (* steering bound: once the Master->3 partition is two probe periods
     old the balancer must never pick host 3 again until the span ends *)
  let p3_start = frac 20 and p3_end = frac 30 in
  let steered_at_bound = ref 0 in
  let steered_at_heal = ref 0 in
  ignore
    (Sim.Engine.schedule_at master
       ~at:(p3_start + (2 * probe_period))
       (fun () ->
         steered_at_bound := (Cluster.Control.steered rack.Rack.control).(3)));
  ignore
    (Sim.Engine.schedule_at master ~at:p3_end (fun () ->
         steered_at_heal := (Cluster.Control.steered rack.Rack.control).(3)));
  (* master-restart recovery: by two lease timeouts after the restart
     every worker has re-registered under the new generation *)
  let restart_at = frac 45 + max (Sim.Units.ms 1) (frac 4) in
  let alive_after_restart = ref 0 in
  ignore
    (Sim.Engine.schedule_at master
       ~at:(restart_at + (2 * lease_timeout))
       (fun () ->
         for h = 0 to hosts - 1 do
           if Cluster.Control.alive rack.Rack.control ~host:h then
             incr alive_after_restart
         done));
  Cluster.Fabric.run rack.Rack.fabric ~until:(horizon + drain);
  Rack.finish rack;
  (* ---- the digest ---- *)
  let c = rack.Rack.client in
  let ctl = rack.Rack.control in
  let st = Cluster.Switch.stats (Cluster.Fabric.switch rack.Rack.fabric) in
  Common.note "%d hosts at %s for %s (+%s drain), probes every %s, leases %s"
    hosts (Common.rate_str rate) (Common.ns horizon) (Common.ns drain)
    (Common.ns probe_period) (Common.ns lease_timeout);
  Common.note "%s" ("rack:\n  " ^ String.concat "\n  " (Rack.digest_lines rack));
  Common.note "latency online: %s"
    (Format.asprintf "%a" Obs.Online.pp_summary online);
  let re_registrations =
    Array.fold_left
      (fun acc l ->
        match l with
        | Some l -> acc + Cluster.Control.Worker_lease.re_registrations l
        | None -> acc)
      0 rack.Rack.leases
  in
  Common.note
    "faults: link_flaps=%d link_drops=%d port_drops=%d partition_drops=%d \
     master_restarts=%d generation=%d epoch_rejections=%d re_registrations=%d"
    (match rack.Rack.chaos with
    | Some ch -> Fault.Rack_chaos.link_flaps ch
    | None -> 0)
    (Cluster.Fabric.link_drops_total rack.Rack.fabric)
    st.Cluster.Switch.port_drops st.Cluster.Switch.partition_drops
    (Cluster.Control.master_restarts ctl)
    (Cluster.Control.master_generation ctl)
    (Cluster.Control.epoch_rejections ctl)
    re_registrations;
  Common.note
    "recovery: steered(3) frozen during partition: %b; workers alive %s \
     after master restart: %d/%d (re-registered under gen %d)"
    (!steered_at_heal = !steered_at_bound)
    (Common.ns (2 * lease_timeout))
    !alive_after_restart hosts
    (Cluster.Control.master_generation ctl);
  (* the merged, deterministically ordered metrics snapshot: switch +
     control + client + fault counters on one registry *)
  let snap = Obs.Metrics.to_list ~keep_zero:true metrics in
  Common.note "metrics (%d):" (List.length snap);
  List.iter (fun (k, v) -> Common.note "  %s=%d" k v) snap;
  (* ---- global conservation, or die ---- *)
  let sent = Harness.Client.sent c in
  let completed = Harness.Client.completed c in
  let abandoned = Harness.Client.abandoned c in
  let errors = Harness.Client.errors c in
  let outstanding = Harness.Client.outstanding c in
  let calls_conserved =
    completed + abandoned + errors = sent && outstanding = 0
  in
  (* every frame the switch admitted either left it or died in a
     counted bucket; nothing parked once the drain is over *)
  let frames_conserved =
    st.Cluster.Switch.ingressed
    = st.Cluster.Switch.delivered + st.Cluster.Switch.drop_in
      + st.Cluster.Switch.drop_out + st.Cluster.Switch.unroutable
      + st.Cluster.Switch.port_drops + st.Cluster.Switch.partition_drops
  in
  let silent_free = Cluster.Fabric.undeliverable rack.Rack.fabric = 0 in
  Common.note
    "conservation: calls (done %d + abandoned %d + errors %d = sent %d, out \
     %d): %b; frames (in = out + counted drops): %b; undeliverable=0: %b%s"
    completed abandoned errors sent outstanding calls_conserved
    frames_conserved silent_free
    (if calls_conserved && frames_conserved && silent_free then
       "  [shape holds]"
     else "  [SHAPE VIOLATION]");
  Common.note
    "paper expectation: hours of faults and not one silent loss — every";
  Common.note
    "drop is a counter, every call resolves, and the whole transcript is";
  Common.note "byte-identical for any shard count.";
  if not (calls_conserved && frames_conserved && silent_free) then
    failwith "E19: conservation violated"
