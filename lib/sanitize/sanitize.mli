(** Runtime protocol sanitizers.

    A [Sanitize.t] is a session of always-on invariant checking over
    one simulation run: watches attach to the subsystems' observation
    hooks ({!Net.Pool.set_monitor}, {!Sim.Engine.set_monitor},
    {!Coherence.Home_agent.set_sanitizer}, and generic closures for the
    scheduler mirror), record violations with precise diagnostics, and
    run end-of-run checks (leaks, convergence) at {!finish}.

    The layer is strictly opt-in: when no sanitizer is attached every
    hook is [None] and each hot-path crossing pays a single branch —
    zero allocation, zero behaviour change. *)

type violation = {
  checker : string;  (** Which checker fired (["pool"], ["coherence"], …). *)
  detail : string;  (** Human-readable diagnostic. *)
  at : Sim.Units.time;  (** Simulated time of detection. *)
}

exception Violation of violation

type mode =
  | Raise  (** Fail fast: the first violation raises {!Violation}. *)
  | Collect  (** Record violations for inspection (tests). *)

type t

val create : ?mode:mode -> Sim.Engine.t -> t
(** A sanitizer session stamping violations with the engine's clock.
    Default mode is [Raise]. *)

val mode : t -> mode

val report : t -> checker:string -> string -> unit
(** Record a violation (raises in [Raise] mode). Checkers use this;
    tests may too, to exercise the plumbing. *)

val violations : t -> violation list
(** Recorded violations, oldest first (empty in [Raise] mode unless
    the exception was caught). *)

val checks_run : t -> int
(** Number of individual checks performed — evidence the sanitizer was
    actually exercising the run, not silently detached. *)

val on_finish : t -> (unit -> unit) -> unit
(** Register an end-of-run check; {!finish} runs them in registration
    order. *)

val finish : t -> unit
(** Run the end-of-run checks (leak, convergence, heap validation).
    Idempotent. *)

val pp_violation : Format.formatter -> violation -> unit

(** {1 Pool sanitizer}

    Leak, double-release and use-after-release detection over a
    {!Net.Pool.t}. Outstanding buffers are tracked by physical
    identity; released buffers are poisoned with [0xDD] so a read
    through a stale slice is recognisable. *)

module Pool_watch : sig
  type watch

  val attach :
    t -> ?name:string -> ?in_flight:(unit -> int) -> Net.Pool.t -> watch
  (** Install the pool monitor. [in_flight] (default: constantly 0)
      returns how many buffers are legitimately parked outside the
      pool at quiesce — e.g. completed descriptors still sitting in
      NIC rings — so the end-of-run leak check can subtract them. *)

  val outstanding : watch -> int
  (** Buffers currently tracked as acquired-but-not-released. *)

  val assert_live : watch -> Net.Slice.t -> unit
  (** Report a use-after-release if the slice reads as entirely
      poison (length ≥ {!poison_min_len}); callers invoke this before
      trusting a view whose backing buffer may have been recycled. *)

  val poison_byte : char
  val poison_min_len : int
end

(** {1 Event-loop sanitizer}

    Clock monotonicity on every event plus a structural heap check at
    {!finish}. *)

module Engine_watch : sig
  val attach : t -> Sim.Engine.t -> unit
end

(** {1 Coherence sanitizer}

    Home-agent generation discipline — generations only grow, and no
    fill is delivered across a {!Coherence.Home_agent.reset_line} —
    plus directory representation invariants on demand. *)

module Coherence_watch : sig
  val attach : t -> Coherence.Home_agent.t -> unit

  val check_directory : t -> Coherence.Directory.t -> unit
  (** Run {!Coherence.Directory.check_invariants} (at most one
      exclusive owner per line is structural; sharer lists must be
      sorted, duplicate-free and non-empty) and report any failure. *)
end

(** {1 Scheduler-mirror sanitizer}

    The mirror lives above this library, so the watch takes the two
    sides as closures rendering comparable state. *)

module Mirror_watch : sig
  type watch

  val attach :
    t -> ?quiesced:(unit -> bool) -> name:string ->
    truth:(unit -> string) -> view:(unit -> string) -> unit -> watch
  (** At {!finish} — once all push-lag traffic has quiesced — [truth]
      (kernel state) and [view] (NIC mirror state) must render
      identically. [quiesced] (default: constantly true) reports
      whether the lag has in fact drained; the run may legitimately be
      cut off mid-push, in which case the comparison is skipped. *)

  val dispatch : watch -> pid:int -> alive:bool -> unit
  (** Record a dispatch decision: [alive] is the mirror's belief about
      the target pid at the instant of dispatch. A dispatch to a pid
      the NIC already swept is a violation — during the stale window
      the mirror still believes the pid alive, so legitimate
      stale-window dispatches pass. *)
end
