type violation = {
  checker : string;
  detail : string;
  at : Sim.Units.time;
}

exception Violation of violation

type mode = Raise | Collect

type t = {
  smode : mode;
  engine : Sim.Engine.t;
  mutable recorded : violation list;  (* newest first *)
  mutable checks : int;
  mutable finishers : (unit -> unit) list;  (* reverse registration order *)
  mutable finished : bool;
}

let create ?(mode = Raise) engine =
  {
    smode = mode;
    engine;
    recorded = [];
    checks = 0;
    finishers = [];
    finished = false;
  }

let mode t = t.smode

let report t ~checker detail =
  let v = { checker; detail; at = Sim.Engine.now t.engine } in
  t.recorded <- v :: t.recorded;
  match t.smode with Raise -> raise (Violation v) | Collect -> ()

let violations t = List.rev t.recorded
let checks_run t = t.checks
let tick t = t.checks <- t.checks + 1
let on_finish t f = t.finishers <- f :: t.finishers

let finish t =
  if not t.finished then begin
    t.finished <- true;
    List.iter (fun f -> f ()) (List.rev t.finishers)
  end

let pp_violation ppf v =
  Format.fprintf ppf "[%s] at %a: %s" v.checker Sim.Units.pp_duration v.at
    v.detail

module Pool_watch = struct
  let poison_byte = '\xdd'
  let poison_min_len = 8

  type watch = {
    z : t;
    name : string;
    in_flight : (unit -> int) option;
    mutable held : bytes list;  (* physical identities outstanding *)
  }

  let outstanding w = List.length w.held

  (* Remove the first physically-equal element; [None] if absent. *)
  let take_phys b held =
    let rec go acc = function
      | [] -> None
      | x :: rest ->
          if x == b then Some (List.rev_append acc rest)
          else go (x :: acc) rest
    in
    go [] held

  let attach z ?(name = "pool") ?in_flight pool =
    let w = { z; name; in_flight; held = [] } in
    Net.Pool.set_monitor pool
      (Some
         {
           Net.Pool.on_acquire =
             (fun b ->
               tick z;
               if List.memq b w.held then
                 report z ~checker:"pool"
                   (Printf.sprintf
                      "%s: acquire returned a buffer already outstanding \
                       (the freelist holds a double-released buffer)"
                      w.name);
               w.held <- b :: w.held);
           Net.Pool.on_release =
             (fun b ->
               tick z;
               match take_phys b w.held with
               | Some rest ->
                   w.held <- rest;
                   Bytes.fill b 0 (Bytes.length b) poison_byte
               | None ->
                   report z ~checker:"pool"
                     (Printf.sprintf
                        "%s: release of a %dB buffer that is not \
                         outstanding (double release, or a buffer foreign \
                         to this pool); %d legitimately outstanding"
                        w.name (Bytes.length b) (List.length w.held)));
         });
    on_finish z (fun () ->
        tick z;
        let expected =
          match w.in_flight with None -> 0 | Some f -> f ()
        in
        let held = List.length w.held in
        if not (Int.equal held expected) then
          report z ~checker:"pool"
            (Printf.sprintf
               "%s: %d buffer(s) still outstanding at quiesce (%d accounted \
                for by ring occupancy) — leaked acquire without release"
               w.name held expected));
    w

  let assert_live w s =
    tick w.z;
    let len = Net.Slice.length s in
    if len >= poison_min_len then begin
      let poisoned = ref true in
      for i = 0 to len - 1 do
        if not (Char.equal (Net.Slice.get s i) poison_byte) then
          poisoned := false
      done;
      if !poisoned then
        report w.z ~checker:"pool"
          (Printf.sprintf
             "%s: use-after-release — a %dB slice reads as all-poison \
              (0x%02x); its backing buffer was returned to the pool"
             w.name len (Char.code poison_byte))
    end
end

module Engine_watch = struct
  let attach z engine =
    let last = ref min_int in
    Sim.Engine.set_monitor engine
      (Some
         (fun time ->
           tick z;
           if time < !last then
             report z ~checker:"engine"
               (Printf.sprintf
                  "event fires at %d after the clock already reached %d \
                   (time moved backwards)"
                  time !last)
           else last := time));
    on_finish z (fun () ->
        tick z;
        match Sim.Engine.validate engine with
        | Ok () -> ()
        | Error e -> report z ~checker:"event_heap" e)
end

module Coherence_watch = struct
  let attach z ha =
    let gens = Hashtbl.create 64 in
    Coherence.Home_agent.set_sanitizer ha
      (Some
         (function
           | Coherence.Home_agent.Fill
               { line; gen_at_issue; gen_now; tryagain } ->
               tick z;
               if not (Int.equal gen_now gen_at_issue) then
                 report z ~checker:"coherence"
                   (Printf.sprintf
                      "line %d: %s fill delivered across a reset_line \
                       (generation %d at issue, %d at delivery)"
                      line
                      (if tryagain then "TRYAGAIN" else "data")
                      gen_at_issue gen_now)
           | Coherence.Home_agent.Reset { line; new_gen } -> (
               tick z;
               let prev =
                 match Hashtbl.find_opt gens line with
                 | Some g -> g
                 | None -> 0
               in
               if new_gen <= prev then
                 report z ~checker:"coherence"
                   (Printf.sprintf
                      "line %d: generation counter not monotone (reset to \
                       %d after %d)"
                      line new_gen prev)
               else Hashtbl.replace gens line new_gen)))

  let check_directory z d =
    tick z;
    match Coherence.Directory.check_invariants d with
    | Ok () -> ()
    | Error e -> report z ~checker:"directory" e
end

module Mirror_watch = struct
  type watch = { z : t; name : string }

  let attach z ?quiesced ~name ~truth ~view () =
    let w = { z; name } in
    on_finish z (fun () ->
        let settled =
          match quiesced with None -> true | Some f -> f ()
        in
        if settled then begin
          tick z;
          let tr = truth () in
          let vw = view () in
          if not (String.equal tr vw) then
            report z ~checker:"mirror"
              (Printf.sprintf
                 "%s: NIC mirror diverged from kernel state after quiesce — \
                  kernel %s, mirror %s"
                 name tr vw)
        end);
    w

  let dispatch w ~pid ~alive =
    tick w.z;
    if not alive then
      report w.z ~checker:"mirror"
        (Printf.sprintf
           "%s: dispatch targets pid %d after the NIC swept it (death push \
            already landed)"
           w.name pid)
end
