type finding = {
  file : string;
  line : int;
  col : int;
  rule : string;
  msg : string;
}

let pp_finding ppf f =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.msg

type rules = {
  nondet : bool;
  poly_compare : bool;
  hot_path : bool;
  pool : bool;
  obs_gating : bool;
  fault_seam : bool;
  steer_seam : bool;
}

let all_rules =
  {
    nondet = true;
    poly_compare = true;
    hot_path = true;
    pool = true;
    obs_gating = true;
    fault_seam = true;
    steer_seam = true;
  }

(* Path classification is purely textual so the linter behaves the same
   from the repo root, from a dune sandbox, and on test fixtures. *)
let has_segment path seg =
  let norm = String.concat "/" (String.split_on_char '\\' path) in
  let parts = String.split_on_char '/' norm in
  List.exists (fun p -> String.equal p seg) parts

let rules_for_path path =
  if Filename.check_suffix path ".mli" then
    {
      nondet = false;
      poly_compare = false;
      hot_path = true;
      pool = true;
      obs_gating = false;
      fault_seam = false;
      steer_seam = false;
    }
  else
    let in_lib = has_segment path "lib" in
    let nondet = in_lib && not (has_segment path "fault") in
    let poly_compare =
      in_lib
      && (has_segment path "core" || has_segment path "coherence"
         || has_segment path "net" || has_segment path "sim")
    in
    let obs_gating =
      in_lib && (has_segment path "sim" || has_segment path "cluster")
    in
    (* lib/fault (Rack_chaos) is the sanctioned installer; everything
       else in lib/ must not touch the cluster fault seams *)
    let fault_seam = in_lib && not (has_segment path "fault") in
    (* lib/nic owns the dispatch table; everywhere else in lib/ the raw
       write must go through the verified install path *)
    let steer_seam = in_lib && not (has_segment path "nic") in
    {
      nondet;
      poly_compare;
      hot_path = true;
      pool = true;
      obs_gating;
      fault_seam;
      steer_seam;
    }

(* ---------- AST helpers ---------- *)

open Parsetree

let lid_parts lid = Longident.flatten lid

let has_attr name attrs =
  List.exists (fun a -> String.equal a.attr_name.Location.txt name) attrs

(* A [Module.fn] reference, matched on its last module component and
   value name so aliases like [Net.Pool.acquire] still match. *)
let is_mod_fn lid ~m ~fn =
  match lid with
  | Longident.Ldot (path, f) when String.equal f fn -> (
      match List.rev (Longident.flatten path) with
      | last :: _ -> String.equal last m
      | [] -> false)
  | _ -> false

(* ---------- per-file analysis ---------- *)

type ctx = {
  path : string;
  rules : rules;
  mutable findings : finding list;
  (* arities of this file's top-level functions, for the syntactic
     partial-application check inside [@hot_path] bodies *)
  arities : (string, int) Hashtbl.t;
  (* character offsets of =/<> uses exempted by a literal operand *)
  exempt : (int, unit) Hashtbl.t;
  (* [@nondet_ok] character spans: deliberate, reviewed nondeterminism
     (domain-parallelism machinery, wall-clock reporting) *)
  mutable nondet_ok : (int * int) list;
  (* spans in which observability hooks may be installed: any
     if/match whose scrutinee consults a Config, plus explicit
     [@obs_gated] marks *)
  mutable obs_gated : (int * int) list;
  (* [@fault_seam] spans: reviewed cluster-fault plumbing (the seam
     definitions themselves, and lib/fault's installers) *)
  mutable fault_seam_ok : (int * int) list;
  (* [@steer_seam] spans: reviewed raw dispatch-table writes outside
     lib/nic (legacy port→queue plumbing that predates the verified
     steering path) *)
  mutable steer_seam_ok : (int * int) list;
}

let in_nondet_ok ctx (loc : Location.t) =
  let p = loc.Location.loc_start.Lexing.pos_cnum in
  List.exists (fun (s, e) -> p >= s && p < e) ctx.nondet_ok

let in_obs_gated ctx (loc : Location.t) =
  let p = loc.Location.loc_start.Lexing.pos_cnum in
  List.exists (fun (s, e) -> p >= s && p < e) ctx.obs_gated

let in_fault_seam_ok ctx (loc : Location.t) =
  let p = loc.Location.loc_start.Lexing.pos_cnum in
  List.exists (fun (s, e) -> p >= s && p < e) ctx.fault_seam_ok

let in_steer_seam_ok ctx (loc : Location.t) =
  let p = loc.Location.loc_start.Lexing.pos_cnum in
  List.exists (fun (s, e) -> p >= s && p < e) ctx.steer_seam_ok

let report ctx ~loc ~rule fmt =
  let pos = loc.Location.loc_start in
  Format.kasprintf
    (fun msg ->
      ctx.findings <-
        {
          file = ctx.path;
          line = pos.Lexing.pos_lnum;
          col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
          rule;
          msg;
        }
        :: ctx.findings)
    fmt

(* ---------- rule: nondeterminism ---------- *)

let nondet_diagnosis lid =
  match lid_parts lid with
  | "Unix" :: _ ->
      Some "Unix.* (wall clock / ambient OS state) is off-limits in lib/"
  | [ "Sys"; "time" ] -> Some "Sys.time reads the wall clock"
  | [ "Hashtbl"; "randomize" ] -> Some "Hashtbl.randomize breaks determinism"
  | ("Domain" | "Thread" | "Mutex" | "Condition" | "Semaphore" | "Atomic")
    :: _ ->
      Some
        (Printf.sprintf
           "%s.* is thread-scheduling-dependent; simulation parallelism must \
            go through Sim.Shard_engine's deterministic windows — mark \
            deliberate machinery [@nondet_ok]"
           (List.hd (lid_parts lid)))
  | "Random" :: rest -> (
      match rest with
      | "State" :: more ->
          if List.exists (String.equal "make_self_init") more then
            Some "Random.State.make_self_init seeds from ambient entropy"
          else None
      | _ ->
          Some
            "the global Random PRNG is ambient mutable state; use a seeded \
             Sim.Rng (or a lib/fault plan stream)")
  | _ -> None

let check_nondet ctx ~loc lid =
  match nondet_diagnosis lid with
  | Some why ->
      if not (in_nondet_ok ctx loc) then
        report ctx ~loc ~rule:"nondeterminism" "%s" why
  | None -> ()

let check_nondet_apply ctx ~loc lid args =
  (* Hashtbl.create ~random:true — randomized bucket order. *)
  let is_hashtbl_create =
    match lid with
    | Longident.Lident "create" -> false
    | _ -> is_mod_fn lid ~m:"Hashtbl" ~fn:"create"
  in
  if is_hashtbl_create && not (in_nondet_ok ctx loc) then
    List.iter
      (fun (label, (arg : expression)) ->
        match (label, arg.pexp_desc) with
        | ( Asttypes.Labelled "random",
            Pexp_construct
              ({ Location.txt = Longident.Lident "false"; _ }, None) ) ->
            ()
        | Asttypes.Labelled "random", _ ->
            report ctx ~loc ~rule:"nondeterminism"
              "Hashtbl.create ~random randomizes iteration order"
        | _ -> ())
      args

(* ---------- rule: polymorphic compare ---------- *)

let is_literal (e : expression) =
  match e.pexp_desc with
  | Pexp_constant _ -> true
  | Pexp_construct
      ({ Location.txt = Longident.Lident ("true" | "false"); _ }, None) ->
      true
  | _ -> false

let poly_fn_name lid =
  match lid with
  | Longident.Lident (("=" | "<>" | "compare") as n) -> Some n
  | Longident.Ldot (Longident.Lident "Stdlib", (("=" | "<>" | "compare") as n))
    ->
      Some n
  | _ -> if is_mod_fn lid ~m:"Hashtbl" ~fn:"hash" then Some "Hashtbl.hash"
         else None

let list_poly_fn lid =
  match lid with
  | Longident.Ldot (Longident.Lident "List", f)
    when List.exists (String.equal f)
           [ "mem"; "assoc"; "assoc_opt"; "mem_assoc"; "remove_assoc" ] ->
      Some ("List." ^ f)
  | _ -> None

let check_poly_use ctx ~loc lid =
  match poly_fn_name lid with
  | Some (("=" | "<>") as op) ->
      report ctx ~loc ~rule:"polymorphic-compare"
        "polymorphic (%s): use a typed comparator (Int.equal, String.equal, \
         Option.is_none, ...)"
        op
  | Some fn ->
      report ctx ~loc ~rule:"polymorphic-compare"
        "%s is the polymorphic structural %s; use a typed one" fn
        (if String.equal fn "Hashtbl.hash" then "hash" else "compare")
  | None -> (
      match list_poly_fn lid with
      | Some fn ->
          report ctx ~loc ~rule:"polymorphic-compare"
            "%s compares with polymorphic equality internally; use \
             List.exists/List.find with a typed comparator"
            fn
      | None -> ())

(* ---------- rule: hot-path allocation discipline ---------- *)

let string_builders =
  [
    ( "String",
      [ "make"; "init"; "concat"; "sub"; "cat"; "of_bytes"; "map" ] );
    ( "Bytes",
      [
        "create"; "make"; "init"; "sub"; "sub_string"; "cat"; "concat";
        "of_string"; "to_string"; "copy"; "extend";
      ] );
    ("Printf", [ "sprintf" ]);
    ("Format", [ "sprintf"; "asprintf" ]);
  ]

let alloc_call_diagnosis lid =
  match lid with
  | Longident.Lident "^" -> Some "string concatenation (^) allocates"
  | Longident.Lident "@" -> Some "list append (@) allocates"
  | Longident.Ldot (Longident.Lident m, f) -> (
      match List.assoc_opt m string_builders with
      | Some fns when List.exists (String.equal f) fns ->
          Some (Printf.sprintf "%s.%s builds a fresh string/bytes" m f)
      | _ -> None)
  | _ -> None

let is_error_path lid =
  match lid with
  | Longident.Lident ("raise" | "raise_notrace" | "invalid_arg" | "failwith")
    ->
      true
  | Longident.Ldot (_, ("raise" | "invalid_arg" | "failwith")) -> true
  | _ -> false

(* Strip the leading parameter chain of a function body: those [fun]
   nodes are the function itself, not closures it builds. *)
let rec strip_params (e : expression) =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) -> strip_params body
  | Pexp_newtype (_, body) -> strip_params body
  | _ -> e

(* Optional parameters are excluded: omitting one at a call site goes
   through default elimination, not closure construction. *)
let rec arity_of (e : expression) =
  match e.pexp_desc with
  | Pexp_fun (Asttypes.Optional _, _, _, body) -> arity_of body
  | Pexp_fun (_, _, _, body) -> 1 + arity_of body
  | Pexp_newtype (_, body) -> arity_of body
  | _ -> 0

let rec check_hot ctx (e : expression) =
  let loc = e.pexp_loc in
  if has_attr "alloc_ok" e.pexp_attributes then ()
  else
    match e.pexp_desc with
    | Pexp_fun _ | Pexp_function _ ->
        report ctx ~loc ~rule:"hot-path"
          "anonymous closure allocated in a [@hot_path] body (let-bind it, \
           hoist it, or mark [@alloc_ok])"
    | Pexp_tuple parts ->
        report ctx ~loc ~rule:"hot-path"
          "tuple construction allocates in a [@hot_path] body";
        List.iter (check_hot ctx) parts
    | Pexp_record (fields, base) ->
        report ctx ~loc ~rule:"hot-path"
          "record construction allocates in a [@hot_path] body";
        List.iter (fun (_, v) -> check_hot ctx v) fields;
        Option.iter (check_hot ctx) base
    | Pexp_construct ({ Location.txt = Longident.Lident "::"; _ }, Some arg) ->
        report ctx ~loc ~rule:"hot-path"
          "list cell construction allocates in a [@hot_path] body";
        check_hot ctx arg
    | Pexp_apply ({ pexp_desc = Pexp_ident { Location.txt = lid; _ }; _ }, _)
      when is_error_path lid ->
        ()  (* error paths may allocate their diagnostics *)
    | Pexp_apply
        (({ pexp_desc = Pexp_ident { Location.txt = lid; _ }; _ } as fn), args)
      ->
        (match alloc_call_diagnosis lid with
        | Some why -> report ctx ~loc ~rule:"hot-path" "%s" why
        | None -> ());
        (match lid with
        | Longident.Lident name -> (
            match Hashtbl.find_opt ctx.arities name with
            | Some arity when List.length args < arity ->
                report ctx ~loc ~rule:"hot-path"
                  "partial application of %s (%d of %d args) allocates a \
                   closure"
                  name (List.length args) arity
            | _ -> ())
        | _ -> ());
        check_hot ctx fn;
        List.iter (fun (_, a) -> check_hot ctx a) args
    | Pexp_let (_, bindings, body) ->
        (* Named local helpers are fine (closed local functions are
           statically allocated); still lint their bodies. *)
        List.iter (fun vb -> check_hot ctx (strip_params vb.pvb_expr)) bindings;
        check_hot ctx body
    | _ ->
        let it =
          {
            Ast_iterator.default_iterator with
            expr = (fun _ sub -> check_hot ctx sub);
          }
        in
        Ast_iterator.default_iterator.expr it e

(* ---------- rule: observability hook gating ---------- *)

(* Hook-installation entry points of the tracing/profiling plane. The
   disarmed slots cost one load-and-branch on hot paths, so arming one
   from inside lib/sim or lib/cluster must be conditional on a Config
   consultation (or carry a reviewed [@obs_gated] mark) — an
   unconditional install would falsify the "zero-cost when off" claim
   for every user of the library. *)
let obs_hook_diagnosis lid =
  if is_mod_fn lid ~m:"Shard_engine" ~fn:"set_profiler" then
    Some "Shard_engine.set_profiler"
  else if is_mod_fn lid ~m:"Switch" ~fn:"set_hooks" then
    Some "Switch.set_hooks"
  else if is_mod_fn lid ~m:"Switch" ~fn:"tap" then Some "Switch.tap"
  else if is_mod_fn lid ~m:"Tracer" ~fn:"enable" then Some "Tracer.enable"
  else None

(* ---------- rule: cluster fault-seam discipline ---------- *)

(* The cluster fault seams: entry points that mutate fault state in
   the rack machinery. Only lib/fault (the Rack_chaos driver compiling
   a Fault.Plan) may arm them — a direct call anywhere else in lib/
   is scripted chaos outside the plan, invisible to the determinism
   and conservation contracts. The seam definitions themselves (and
   any reviewed plumbing, like Fabric.set_link_fault forwarding to the
   shard engine's slot) carry a [@fault_seam] mark. *)
let fault_seam_diagnosis lid =
  if is_mod_fn lid ~m:"Switch" ~fn:"set_port_wedge" then
    Some "Switch.set_port_wedge"
  else if is_mod_fn lid ~m:"Switch" ~fn:"set_brownout" then
    Some "Switch.set_brownout"
  else if is_mod_fn lid ~m:"Switch" ~fn:"set_partition" then
    Some "Switch.set_partition"
  else if is_mod_fn lid ~m:"Fabric" ~fn:"set_link_fault" then
    Some "Fabric.set_link_fault"
  else if is_mod_fn lid ~m:"Shard_engine" ~fn:"set_wire_fault" then
    Some "Shard_engine.set_wire_fault"
  else if is_mod_fn lid ~m:"Control" ~fn:"crash" then Some "Control.crash"
  else if is_mod_fn lid ~m:"Control" ~fn:"restart" then Some "Control.restart"
  else None

(* ---------- rule: steering-seam discipline ---------- *)

(* [Dma_nic.set_steering] is the raw dispatch-table write. Outside
   lib/nic a program must be verified first (Steer_verify.verify) and
   installed through Steer_verify.install, which alone can charge the
   statically proven per-packet cost; a direct call skips the totality
   / target-validity / cost proofs. Reviewed legacy plumbing carries a
   [@steer_seam] mark. *)
let steer_seam_diagnosis lid =
  if is_mod_fn lid ~m:"Dma_nic" ~fn:"set_steering" then
    Some "Dma_nic.set_steering"
  else None

(* Does the expression consult a [Config] module anywhere (ident or
   record-field access through a Config-qualified label)? *)
let expr_mentions_config (e : expression) =
  let found = ref false in
  let note lid =
    if List.exists (String.equal "Config") (lid_parts lid) then found := true
  in
  let expr it (sub : expression) =
    (match sub.pexp_desc with
    | Pexp_ident { Location.txt = lid; _ } -> note lid
    | Pexp_field (_, { Location.txt = lid; _ }) -> note lid
    | _ -> ());
    Ast_iterator.default_iterator.expr it sub
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it e;
  !found

(* ---------- rule: pool acquire/release pairing ---------- *)

type pool_scan = {
  mutable acquires : Location.t list;
  mutable releases : int;
  mutable transfer : bool;
}

let scan_pool scan vb =
  if has_attr "ownership_transfer" vb.pvb_attributes then scan.transfer <- true;
  let expr it (e : expression) =
    if has_attr "ownership_transfer" e.pexp_attributes then
      scan.transfer <- true;
    (match e.pexp_desc with
    | Pexp_ident { Location.txt = lid; _ } ->
        if is_mod_fn lid ~m:"Pool" ~fn:"acquire" then
          scan.acquires <- e.pexp_loc :: scan.acquires
        else if is_mod_fn lid ~m:"Pool" ~fn:"release" then
          scan.releases <- scan.releases + 1
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it vb.pvb_expr

(* ---------- traversal ---------- *)

let binding_name vb =
  match vb.pvb_pat.ppat_desc with
  | Ppat_var { Location.txt = name; _ } -> Some name
  | _ -> None

let check_structure ctx (str : structure) =
  (* First pass: top-level function arities for the partial-application
     heuristic, and [@nondet_ok] spans (the attribute scopes its whole
     binding or expression) so the nondet rule can honour escapes that
     appear later in the same traversal. *)
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, bindings) ->
          List.iter
            (fun vb ->
              (match binding_name vb with
              | Some name ->
                  let a = arity_of vb.pvb_expr in
                  if a > 0 then Hashtbl.replace ctx.arities name a
              | None -> ());
              if has_attr "nondet_ok" vb.pvb_attributes then
                ctx.nondet_ok <-
                  ( vb.pvb_loc.Location.loc_start.Lexing.pos_cnum,
                    vb.pvb_loc.Location.loc_end.Lexing.pos_cnum )
                  :: ctx.nondet_ok)
            bindings
      | _ -> ())
    str;
  let span_collector =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it (e : expression) ->
          if has_attr "nondet_ok" e.pexp_attributes then
            ctx.nondet_ok <-
              ( e.pexp_loc.Location.loc_start.Lexing.pos_cnum,
                e.pexp_loc.Location.loc_end.Lexing.pos_cnum )
              :: ctx.nondet_ok;
          let span () =
            ( e.pexp_loc.Location.loc_start.Lexing.pos_cnum,
              e.pexp_loc.Location.loc_end.Lexing.pos_cnum )
          in
          if has_attr "obs_gated" e.pexp_attributes then
            ctx.obs_gated <- span () :: ctx.obs_gated;
          if has_attr "fault_seam" e.pexp_attributes then
            ctx.fault_seam_ok <- span () :: ctx.fault_seam_ok;
          if has_attr "steer_seam" e.pexp_attributes then
            ctx.steer_seam_ok <- span () :: ctx.steer_seam_ok;
          (match e.pexp_desc with
          | Pexp_ifthenelse (cond, _, _) when expr_mentions_config cond ->
              ctx.obs_gated <- span () :: ctx.obs_gated
          | Pexp_match (scrut, _) when expr_mentions_config scrut ->
              ctx.obs_gated <- span () :: ctx.obs_gated
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
      value_binding =
        (fun it vb ->
          if has_attr "nondet_ok" vb.pvb_attributes then
            ctx.nondet_ok <-
              ( vb.pvb_loc.Location.loc_start.Lexing.pos_cnum,
                vb.pvb_loc.Location.loc_end.Lexing.pos_cnum )
              :: ctx.nondet_ok;
          if has_attr "obs_gated" vb.pvb_attributes then
            ctx.obs_gated <-
              ( vb.pvb_loc.Location.loc_start.Lexing.pos_cnum,
                vb.pvb_loc.Location.loc_end.Lexing.pos_cnum )
              :: ctx.obs_gated;
          if has_attr "fault_seam" vb.pvb_attributes then
            ctx.fault_seam_ok <-
              ( vb.pvb_loc.Location.loc_start.Lexing.pos_cnum,
                vb.pvb_loc.Location.loc_end.Lexing.pos_cnum )
              :: ctx.fault_seam_ok;
          if has_attr "steer_seam" vb.pvb_attributes then
            ctx.steer_seam_ok <-
              ( vb.pvb_loc.Location.loc_start.Lexing.pos_cnum,
                vb.pvb_loc.Location.loc_end.Lexing.pos_cnum )
              :: ctx.steer_seam_ok;
          Ast_iterator.default_iterator.value_binding it vb);
    }
  in
  span_collector.structure span_collector str;
  let expr it (e : expression) =
    (match e.pexp_desc with
    | Pexp_apply
        ({ pexp_desc = Pexp_ident { Location.txt = lid; _ }; pexp_loc = loc; _ },
         args) ->
        if ctx.rules.nondet then check_nondet_apply ctx ~loc lid args;
        if ctx.rules.obs_gating then (
          match obs_hook_diagnosis lid with
          | Some what when not (in_obs_gated ctx loc) ->
              report ctx ~loc ~rule:"obs-gating"
                "%s arms an observability hook unconditionally; install only \
                 under a Config-consulting branch (or mark the reviewed path \
                 [@obs_gated])"
                what
          | Some _ | None -> ());
        if ctx.rules.fault_seam then (
          match fault_seam_diagnosis lid with
          | Some what when not (in_fault_seam_ok ctx loc) ->
              report ctx ~loc ~rule:"fault-seam"
                "%s mutates cluster fault state outside lib/fault; compile \
                 the fault into a Fault.Plan and let Rack_chaos install it \
                 (or mark reviewed plumbing [@fault_seam])"
                what
          | Some _ | None -> ());
        if ctx.rules.steer_seam then (
          match steer_seam_diagnosis lid with
          | Some what when not (in_steer_seam_ok ctx loc) ->
              report ctx ~loc ~rule:"steer-seam"
                "%s writes the NIC dispatch table raw, outside lib/nic; \
                 verify the program (Steer_verify.verify) and install it \
                 through Steer_verify.install (or mark reviewed legacy \
                 plumbing [@steer_seam])"
                what
          | Some _ | None -> ());
        (* [x = 0]-style tests against a literal compile to immediate
           comparisons — exempt them before the ident pass sees the
           operator. *)
        if ctx.rules.poly_compare then (
          match poly_fn_name lid with
          | Some ("=" | "<>")
            when List.length args = 2
                 && List.exists (fun (_, a) -> is_literal a) args ->
              Hashtbl.replace ctx.exempt loc.Location.loc_start.Lexing.pos_cnum
                ()
          | _ -> ())
    | Pexp_ident { Location.txt = lid; _ } ->
        let loc = e.pexp_loc in
        if ctx.rules.nondet then check_nondet ctx ~loc lid;
        if
          ctx.rules.poly_compare
          && not (Hashtbl.mem ctx.exempt loc.Location.loc_start.Lexing.pos_cnum)
        then check_poly_use ctx ~loc lid
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let structure_item it item =
    (match item.pstr_desc with
    | Pstr_value (_, bindings) ->
        List.iter
          (fun vb ->
            if ctx.rules.hot_path && has_attr "hot_path" vb.pvb_attributes then
              check_hot ctx (strip_params vb.pvb_expr);
            if ctx.rules.pool then begin
              let scan = { acquires = []; releases = 0; transfer = false } in
              scan_pool scan vb;
              if scan.acquires <> [] && scan.releases = 0 && not scan.transfer
              then
                List.iter
                  (fun loc ->
                    report ctx ~loc ~rule:"pool-discipline"
                      "Pool.acquire with no lexically paired Pool.release in \
                       %s and no [@ownership_transfer] annotation"
                      (match binding_name vb with
                      | Some n -> n
                      | None -> "this binding"))
                  scan.acquires
            end)
          bindings
    | _ -> ());
    Ast_iterator.default_iterator.structure_item it item
  in
  let it = { Ast_iterator.default_iterator with expr; structure_item } in
  it.structure it str

let check_source ?rules ~path source =
  let rules = match rules with Some r -> r | None -> rules_for_path path in
  if Filename.check_suffix path ".mli" then []
  else begin
    let lexbuf = Lexing.from_string source in
    lexbuf.Lexing.lex_curr_p <-
      { lexbuf.Lexing.lex_curr_p with Lexing.pos_fname = path };
    Location.input_name := path;
    let str = Parse.implementation lexbuf in
    let ctx =
      {
        path;
        rules;
        findings = [];
        arities = Hashtbl.create 16;
        exempt = Hashtbl.create 16;
        nondet_ok = [];
        obs_gated = [];
        fault_seam_ok = [];
        steer_seam_ok = [];
      }
    in
    check_structure ctx str;
    List.rev ctx.findings
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_file ?rules path = check_source ?rules ~path (read_file path)

let rec walk acc path =
  if Sys.is_directory path then begin
    let entries = Sys.readdir path in
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc entry -> walk acc (Filename.concat path entry))
      acc entries
  end
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let run paths =
  let files = List.rev (List.fold_left walk [] paths) in
  List.concat_map (fun f -> check_file f) files

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let finding_to_json f =
  Printf.sprintf
    {|{"file":"%s","line":%d,"col":%d,"rule":"%s","msg":"%s"}|}
    (json_escape f.file) f.line f.col (json_escape f.rule) (json_escape f.msg)

let main () =
  let args =
    match Array.to_list Sys.argv with _ :: rest -> rest | [] -> []
  in
  let json = List.exists (String.equal "--json") args in
  let paths =
    match List.filter (fun a -> not (String.equal a "--json")) args with
    | [] -> [ "lib" ]
    | rest -> rest
  in
  let findings = run paths in
  if json then
    (* Machine-readable findings on stdout; the human lines stay on
       stderr so both can be captured independently. *)
    print_endline
      (Printf.sprintf "[%s]"
         (String.concat "," (List.map finding_to_json findings)));
  List.iter (fun f -> Format.eprintf "%a@." pp_finding f) findings;
  (* Always-printed, greppable summary — CI logs show the count even on
     a clean run. *)
  let n = List.length findings in
  Format.eprintf "simlint: %d finding%s@." n (if n = 1 then "" else "s");
  if n > 0 then exit 1
