(** Project-law static analysis over the simulator's sources.

    Seven rules, applied per-file according to its path:

    - {b nondeterminism} (all of [lib/] except [lib/fault]): no ambient
      entropy or wall-clock sources — [Random.*] (the global PRNG and
      any [self_init]), [Unix.*], [Sys.time], randomized hash tables.
      Seeded randomness belongs in [lib/fault] plans and [Sim.Rng].
    - {b polymorphic-compare} ([lib/core], [lib/coherence], [lib/net],
      [lib/sim]): no structural [=]/[<>]/[compare]/[Hashtbl.hash], and
      no [List.mem]/[List.assoc]-family calls that smuggle one in.
      Comparison against a literal constant ([0], ['c'], [1L], [true])
      is exempt — the compiler specializes those to immediate
      comparisons. Use typed comparators ([Int.equal], [String.equal],
      [Option.is_none], …).
    - {b hot-path} (everywhere): the body of a [let f ... = e
      [@@hot_path]] binding must not construct: anonymous closures,
      tuples, records, list cells, strings/bytes (the
      [^]/[String.*]/[Bytes.*]/[*printf] builders), and must not
      partially apply a function defined in the same file. Named local
      [let]-bound helpers are allowed (closed local functions are
      statically allocated). An expression wrapped [(e [@alloc_ok])] is
      exempt, as is everything under [raise]/[invalid_arg]/[failwith]
      (error paths may allocate).
    - {b pool-discipline} (everywhere): a top-level binding that calls
      [Pool.acquire] must also call [Pool.release] lexically, or carry
      an [[@ownership_transfer]] annotation (on the binding or on the
      acquire expression) documenting that the buffer escapes to
      another owner.
    - {b obs-gating} ([lib/sim], [lib/cluster]): installing an
      observability hook — [Shard_engine.set_profiler],
      [Switch.set_hooks], [Switch.tap], [Tracer.enable] — must happen
      under an [if]/[match] whose condition consults a [Config], or be
      explicitly marked [[@obs_gated]]. The disarmed slots are one
      load-and-branch on hot paths; an unconditional install inside
      the library would falsify the zero-cost-when-off claim for every
      user. Experiment/bench/test code is exempt.
    - {b fault-seam} (all of [lib/] except [lib/fault]): calling a
      cluster fault seam — [Switch.set_port_wedge] / [set_brownout] /
      [set_partition], [Fabric.set_link_fault],
      [Shard_engine.set_wire_fault], [Control.crash] / [restart] — is
      a finding. Faults belong in a [Fault.Plan] installed by
      [Fault.Rack_chaos], where they stay pure functions of simulated
      time; a direct call is scripted chaos outside the plan,
      invisible to the determinism and conservation contracts.
      Reviewed plumbing (the seam definitions, forwarding wrappers)
      carries a [[@fault_seam]] mark. Experiment/bench/test code is
      exempt.
    - {b steer-seam} (all of [lib/] except [lib/nic]): calling
      [Dma_nic.set_steering] — the raw NIC dispatch-table write — is a
      finding. Steering programs must be statically verified
      ([Steer_verify.verify]: totality, target validity, bounded cost,
      determinism) and installed through [Steer_verify.install], which
      alone charges the proven per-packet cost. Reviewed legacy
      plumbing (the kernel-bypass port→queue table) carries a
      [[@steer_seam]] mark. Experiment/bench/test code is exempt. *)

type finding = {
  file : string;
  line : int;
  col : int;
  rule : string;
      (** [nondeterminism] | [polymorphic-compare] | [hot-path] |
          [pool-discipline] | [obs-gating] | [fault-seam] |
          [steer-seam] *)
  msg : string;
}

val pp_finding : Format.formatter -> finding -> unit

type rules = {
  nondet : bool;
  poly_compare : bool;
  hot_path : bool;
  pool : bool;
  obs_gating : bool;
  fault_seam : bool;
  steer_seam : bool;
}

val all_rules : rules

val rules_for_path : string -> rules
(** The rule set the project applies to a source file at this path
    (see module doc). [.mli] files and paths outside [lib/] get only
    the hot-path and pool rules. *)

val check_source : ?rules:rules -> path:string -> string -> finding list
(** Lint one compilation unit given as a string. [rules] defaults to
    [rules_for_path path]. Findings come back in source order.
    @raise Syntaxerr.Error (or other parser exceptions) on unparsable
    input. *)

val check_file : ?rules:rules -> string -> finding list
(** [check_source] over the file's contents. *)

val run : string list -> finding list
(** Walk the given files/directories (recursively, [*.ml] only),
    linting each with its path-derived rule set. *)

val main : unit -> unit
(** CLI entry point: lint [Sys.argv] paths, print findings to stderr
    followed by an always-printed greppable [simlint: N finding(s)]
    summary, and exit 1 if any. With [--json], additionally print the
    findings as a JSON array on stdout. *)
