type kind = Request | Response | Error_reply of int

type t = {
  rpc_id : int64;
  service_id : int;
  method_id : int;
  kind : kind;
  ctx : bytes option;
  body : bytes;
}

let magic = 0x4c42 (* "LB" *)
let version = 1
let header_size = 20
let ctx_size = 16

(* The trace-context extension rides a flag bit on the kind-tag byte:
   when set, [ctx_size] opaque bytes sit between the fixed header and
   the body. A message without a context encodes byte-for-byte as it
   did before the extension existed. *)
let ctx_flag = 0x80

(* Transport-level NACK codes (carried in an Error_reply). Codes below
   0xff00 stay free for application errors. *)
let err_shed = 0xff01
let err_dead = 0xff02
let retriable_error = function
  | c when c = err_shed || c = err_dead -> true
  | _ -> false

let kind_tag = function Request -> 0 | Response -> 1 | Error_reply _ -> 2
let is_request t = match t.kind with Request -> true | Response | Error_reply _ -> false
let err_code = function Error_reply c -> c | Request | Response -> 0

let encode t =
  let ctx_len =
    match t.ctx with
    | None -> 0
    | Some c ->
        if Bytes.length c <> ctx_size then
          invalid_arg "Wire_format.encode: context must be ctx_size bytes";
        ctx_size
  in
  let w = Net.Buf.writer (header_size + ctx_len + Bytes.length t.body) in
  Net.Buf.write_u16 w magic;
  Net.Buf.write_u8 w version;
  Net.Buf.write_u8 w
    (kind_tag t.kind lor match t.ctx with Some _ -> ctx_flag | None -> 0);
  Net.Buf.write_u16 w (err_code t.kind);
  Net.Buf.write_u16 w t.method_id;
  Net.Buf.write_u32 w t.service_id;
  Net.Buf.write_u64 w t.rpc_id;
  (match t.ctx with None -> () | Some c -> Net.Buf.write_bytes w c);
  Net.Buf.write_bytes w t.body;
  Net.Buf.filled w

type error =
  | Truncated
  | Bad_magic of int
  | Bad_version of int
  | Bad_kind of int
  | Bad_body_length of int

let decode b =
  if Bytes.length b < header_size then Error Truncated
  else begin
    let r = Net.Buf.reader b in
    let m = Net.Buf.read_u16 r in
    if m <> magic then Error (Bad_magic m)
    else begin
      let v = Net.Buf.read_u8 r in
      if v <> version then Error (Bad_version v)
      else begin
        let tag_byte = Net.Buf.read_u8 r in
        let has_ctx = tag_byte land ctx_flag <> 0 in
        let tag = tag_byte land lnot ctx_flag in
        let code = Net.Buf.read_u16 r in
        let method_id = Net.Buf.read_u16 r in
        let service_id = Net.Buf.read_u32 r in
        let rpc_id = Net.Buf.read_u64 r in
        let kind =
          match tag with
          | 0 -> Some Request
          | 1 -> Some Response
          | 2 -> Some (Error_reply code)
          | _ -> None
        in
        match kind with
        | None -> Error (Bad_kind tag)
        | Some kind ->
            if has_ctx && Net.Buf.remaining r < ctx_size then Error Truncated
            else
              let ctx =
                if has_ctx then Some (Net.Buf.read_bytes r ~len:ctx_size)
                else None
              in
              let body_len = Net.Buf.remaining r in
              if body_len < 0 then Error (Bad_body_length body_len)
              else
                let body = Net.Buf.read_bytes r ~len:body_len in
                Ok { rpc_id; service_id; method_id; kind; ctx; body }
      end
    end
  end

let request ?ctx ~rpc_id ~service_id ~method_id v =
  { rpc_id; service_id; method_id; kind = Request; ctx; body = Codec.encode v }

let response ~of_ v =
  {
    rpc_id = of_.rpc_id;
    service_id = of_.service_id;
    method_id = of_.method_id;
    kind = Response;
    ctx = of_.ctx;
    body = Codec.encode v;
  }

let with_ctx t ctx = { t with ctx }

let pp_kind ppf = function
  | Request -> Format.pp_print_string ppf "request"
  | Response -> Format.pp_print_string ppf "response"
  | Error_reply c -> Format.fprintf ppf "error(%d)" c

let pp ppf t =
  Format.fprintf ppf "rpc %s id=%Ld svc=%d mth=%d body=%dB"
    (Format.asprintf "%a" pp_kind t.kind)
    t.rpc_id t.service_id t.method_id (Bytes.length t.body)

let pp_error ppf = function
  | Truncated -> Format.pp_print_string ppf "truncated RPC header"
  | Bad_magic m -> Format.fprintf ppf "bad magic 0x%04x" m
  | Bad_version v -> Format.fprintf ppf "bad version %d" v
  | Bad_kind k -> Format.fprintf ppf "bad kind tag %d" k
  | Bad_body_length l -> Format.fprintf ppf "bad body length %d" l
