(** The RPC-over-UDP wire header.

    Every UDP payload in the simulation is one RPC message:
    a 20-byte header (magic, version, kind, service, method, id, body
    length) followed by the {!Codec}-encoded body. *)

type kind =
  | Request
  | Response
  | Error_reply of int  (** Carries an application error code. *)

type t = {
  rpc_id : int64;  (** Matches a response to its request. *)
  service_id : int;
  method_id : int;
  kind : kind;
  ctx : bytes option;
      (** Optional trace-context extension: exactly {!ctx_size} opaque
          bytes (see [Obs.Context]) carried between the header and the
          body, flagged on the kind-tag byte. [None] encodes
          byte-identically to the pre-extension format. *)
  body : bytes;  (** {!Codec}-encoded arguments or results. *)
}

val header_size : int

val ctx_size : int
(** Size of the trace-context extension when present (16 bytes). *)

val err_shed : int
(** [Error_reply] code: the NIC shed the request under overload
    (admission control). The server never saw it; retry after backoff. *)

val err_dead : int
(** [Error_reply] code: the target process was dead (crashed) when the
    request arrived or while it held the request. Retriable — the
    process may be restarted. *)

val is_request : t -> bool
(** The message's kind is [Request] (typed stand-in for a polymorphic
    kind compare). *)

val retriable_error : int -> bool
(** Whether an [Error_reply] code is a transport-level NACK the client
    should treat as retriable ({!err_shed}, {!err_dead}) rather than a
    terminal application error. *)

val encode : t -> bytes

type error =
  | Truncated
  | Bad_magic of int
  | Bad_version of int
  | Bad_kind of int
  | Bad_body_length of int

val decode : bytes -> (t, error) result

val request :
  ?ctx:bytes -> rpc_id:int64 -> service_id:int -> method_id:int -> Value.t -> t
(** Build a request carrying the encoded value. *)

val response : of_:t -> Value.t -> t
(** Build the response to a request, preserving ids and the trace
    context. *)

val with_ctx : t -> bytes option -> t
(** The same message with its trace context replaced. *)

val pp : Format.formatter -> t -> unit
val pp_error : Format.formatter -> error -> unit
