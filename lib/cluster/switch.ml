(* Top-of-rack switch: finite per-port ingress/egress FIFOs around a
   deterministic crossbar.

   The tie-break discipline is the whole point. Frames arriving at the
   same simulated instant are not served in event-schedule order —
   that order depends on who scheduled what when — but collected into
   a per-instant batch and admitted in ascending ingress-port order.
   The batch trick: the first arrival of an instant schedules a sweep
   event at the same timestamp; every event already queued for that
   instant was scheduled earlier (lower sequence number), so the sweep
   runs after all of them and sees the complete batch. (An ingress
   scheduled *at* the instant, after the sweep has run, simply opens a
   second batch — still deterministic, just a later admission round.)

   Downstream of admission everything is FIFO, so the (arrival-time,
   port) order is preserved: each ingress queue serves heads in order,
   one per [fwd_delay]; same-instant crossbar completions reach the
   egress queues in admission order; each egress transmitter
   serializes one frame per [tx] and fires [deliver] at transmit
   complete. Every loss path is counted, never silent. *)

type port_conf = {
  latency : Sim.Units.duration;
  tx : Sim.Units.duration;
}

type stats = {
  ingressed : int;
  delivered : int;
  drop_in : int;
  drop_out : int;
  unroutable : int;
  port_drops : int;
  partition_drops : int;
}

(* Observation points for an external tracing plane (e.g. the rack
   experiment's cross-fabric span emitter): admission, crossbar
   completion, transmit completion. Purely passive — the switch never
   consults them for behaviour, so arming them cannot perturb the
   determinism contract. *)
type hooks = {
  on_ingress : port:int -> time:Sim.Units.time -> Net.Frame.t -> unit;
  on_forward :
    port:int -> dst:int option -> time:Sim.Units.time -> Net.Frame.t -> unit;
  on_transmit : port:int -> time:Sim.Units.time -> Net.Frame.t -> unit;
}

type t = {
  engine : Sim.Engine.t;
  ports : port_conf array;
  cap_in : int;
  cap_out : int;
  fwd_delay : Sim.Units.duration;
  route : Net.Frame.t -> int option;
  deliver : port:int -> Net.Frame.t -> unit;
  (* per-instant admission batch, newest first *)
  mutable batch : (int * Net.Frame.t) list;
  mutable sweep_armed : bool;
  (* per-ingress-port FIFO (head in service while [busy_in]) *)
  in_q : Net.Frame.t Queue.t array;
  busy_in : bool array;
  (* per-egress-port occupancy and transmitter busy-until *)
  out_len : int array;
  out_busy : Sim.Units.time array;
  (* counters: scalars live on the Obs.Metrics registry (the stats
     record is a view); per-port arrays stay for steering visibility *)
  metrics : Obs.Metrics.t;
  c_ingressed : Obs.Metrics.counter;
  c_delivered : Obs.Metrics.counter;
  c_unroutable : Obs.Metrics.counter;
  c_drop_in : Obs.Metrics.counter;
  c_drop_out : Obs.Metrics.counter;
  n_forwarded : int array;
  n_drop_in : int array;
  n_drop_out : int array;
  (* per-port pcap taps and the tracing hooks; None = disarmed, one
     load-and-branch on the hot paths *)
  taps : Obs.Pcap.t option array;
  mutable hooks : hooks option;
  (* fault seams ([Fault.Rack_chaos] is the intended installer); None =
     disarmed, one load-and-branch on each consulting path. The
     predicates must be pure functions of simulated time so delivery
     (and loss) order stays a function of (arrival-time, port). *)
  mutable wedge :
    (port:int -> at:Sim.Units.time -> Sim.Units.time option) option;
  mutable brownout : (at:Sim.Units.time -> Sim.Units.time option) option;
  mutable partition : (src:int -> dst:int -> at:Sim.Units.time -> bool) option;
  (* fault-loss counters, registered lazily at arm time so a fault-free
     switch leaves the metrics snapshot untouched *)
  mutable c_port_drops : Obs.Metrics.counter option;
  mutable c_partition_drops : Obs.Metrics.counter option;
  n_port_drops : int array;
  n_partitioned : int array;
}

let create engine ~ports ?(cap_in = 64) ?(cap_out = 64)
    ?(fwd_delay = Sim.Units.ns 300) ?metrics ~route ~deliver () =
  let n = Array.length ports in
  if n = 0 then invalid_arg "Switch.create: no ports";
  if cap_in <= 0 || cap_out <= 0 then
    invalid_arg "Switch.create: non-positive queue capacity";
  if fwd_delay <= 0 then invalid_arg "Switch.create: non-positive fwd_delay";
  Array.iter
    (fun p ->
      if p.tx <= 0 || p.latency <= 0 then
        invalid_arg "Switch.create: non-positive port latency/tx")
    ports;
  let metrics =
    match metrics with Some m -> m | None -> Obs.Metrics.create ()
  in
  {
    engine;
    ports;
    cap_in;
    cap_out;
    fwd_delay;
    route;
    deliver;
    batch = [];
    sweep_armed = false;
    in_q = Array.init n (fun _ -> Queue.create ());
    busy_in = Array.make n false;
    out_len = Array.make n 0;
    out_busy = Array.make n 0;
    metrics;
    c_ingressed = Obs.Metrics.counter metrics "switch_ingressed";
    c_delivered = Obs.Metrics.counter metrics "switch_delivered";
    c_unroutable = Obs.Metrics.counter metrics "switch_unroutable";
    c_drop_in = Obs.Metrics.counter metrics "switch_drop_in";
    c_drop_out = Obs.Metrics.counter metrics "switch_drop_out";
    n_forwarded = Array.make n 0;
    n_drop_in = Array.make n 0;
    n_drop_out = Array.make n 0;
    taps = Array.make n None;
    hooks = None;
    wedge = None;
    brownout = None;
    partition = None;
    c_port_drops = None;
    c_partition_drops = None;
    n_port_drops = Array.make n 0;
    n_partitioned = Array.make n 0;
  }

let ports t = Array.length t.ports
let port_conf t p = t.ports.(p)

(* Push a candidate transmit-start time past any wedge (or brownout)
   window containing it; abutting windows are walked, the [u > start]
   guard keeps a misbehaving predicate from looping. *)
let rec past_windows f start =
  match f ~at:start with
  | Some u when u > start -> past_windows f u
  | Some _ | None -> start

(* Egress: claim a slot in [port]'s bounded output queue, serialize
   behind whatever the transmitter is already committed to, deliver at
   transmit complete. A wedged port's transmitter stalls: frames keep
   claiming slots (and serialize after the wedge lifts), overflow is
   counted as a port-failure loss, never silent. *)
let egress_enqueue t ~port frame =
  if t.out_len.(port) >= t.cap_out then begin
    match t.wedge with
    | Some f when f ~port ~at:(Sim.Engine.now t.engine) <> None ->
        t.n_port_drops.(port) <- t.n_port_drops.(port) + 1;
        (match t.c_port_drops with
        | Some c -> Obs.Metrics.incr c
        | None -> ())
    | Some _ | None ->
        t.n_drop_out.(port) <- t.n_drop_out.(port) + 1;
        Obs.Metrics.incr t.c_drop_out
  end
  else begin
    t.out_len.(port) <- t.out_len.(port) + 1;
    let now = Sim.Engine.now t.engine in
    let start = if t.out_busy.(port) > now then t.out_busy.(port) else now in
    let start =
      match t.wedge with
      | None -> start
      | Some f -> past_windows (fun ~at -> f ~port ~at) start
    in
    let finish = start + t.ports.(port).tx in
    t.out_busy.(port) <- finish;
    ignore
      (Sim.Engine.schedule_at t.engine ~at:finish (fun () ->
           t.out_len.(port) <- t.out_len.(port) - 1;
           Obs.Metrics.incr t.c_delivered;
           t.n_forwarded.(port) <- t.n_forwarded.(port) + 1;
           (match t.taps.(port) with
           | Some cap -> Obs.Pcap.add_frame cap ~time:finish frame
           | None -> ());
           (match t.hooks with
           | Some h -> h.on_transmit ~port ~time:finish frame
           | None -> ());
           t.deliver ~port frame))
  end

(* Crossbar service of one ingress port: forward the head-of-line
   frame after [fwd_delay], then keep going while the queue is
   non-empty. The head stays queued (occupying its slot) until its
   forwarding completes. A brownout defers the service *start* — a
   frame whose service began before the stall completes (service is
   non-preemptible), frames behind it back up in the ingress FIFO and
   overflow as counted drop_in. A partitioned (src, dst) pair drops
   the frame at the crossbar with its own counted loss. *)
let rec kick t p =
  if (not t.busy_in.(p)) && not (Queue.is_empty t.in_q.(p)) then begin
    t.busy_in.(p) <- true;
    let now = Sim.Engine.now t.engine in
    let start =
      match t.brownout with None -> now | Some f -> past_windows f now
    in
    ignore
      (Sim.Engine.schedule_at t.engine ~at:(start + t.fwd_delay) (fun () ->
           let frame = Queue.pop t.in_q.(p) in
           let out =
             match t.route frame with
             | Some o when o >= 0 && o < Array.length t.ports -> Some o
             | Some _ | None -> None
           in
           (match t.hooks with
           | Some h ->
               h.on_forward ~port:p ~dst:out
                 ~time:(Sim.Engine.now t.engine) frame
           | None -> ());
           (match out with
           | Some o -> (
               match t.partition with
               | Some cut when cut ~src:p ~dst:o ~at:(Sim.Engine.now t.engine)
                 ->
                   t.n_partitioned.(p) <- t.n_partitioned.(p) + 1;
                   (match t.c_partition_drops with
                   | Some c -> Obs.Metrics.incr c
                   | None -> ())
               | Some _ | None -> egress_enqueue t ~port:o frame)
           | None -> Obs.Metrics.incr t.c_unroutable);
           t.busy_in.(p) <- false;
           kick t p))
  end

(* Admit the instant's batch in ascending ingress-port order. The sort
   is stable over the accumulated arrival order, but within one
   instant all times are equal, so port order alone decides. *)
let sweep t () =
  t.sweep_armed <- false;
  let batch = List.rev t.batch in
  t.batch <- [];
  let arr = Array.of_list batch in
  Array.stable_sort (fun (p, _) (q, _) -> Int.compare p q) arr;
  Array.iter
    (fun (p, frame) ->
      if Queue.length t.in_q.(p) >= t.cap_in then begin
        t.n_drop_in.(p) <- t.n_drop_in.(p) + 1;
        Obs.Metrics.incr t.c_drop_in
      end
      else begin
        Queue.push frame t.in_q.(p);
        kick t p
      end)
    arr

let ingress t ~port frame =
  if port < 0 || port >= Array.length t.ports then
    invalid_arg "Switch.ingress: bad port";
  Obs.Metrics.incr t.c_ingressed;
  (match t.taps.(port) with
  | Some cap -> Obs.Pcap.add_frame cap ~time:(Sim.Engine.now t.engine) frame
  | None -> ());
  (match t.hooks with
  | Some h -> h.on_ingress ~port ~time:(Sim.Engine.now t.engine) frame
  | None -> ());
  t.batch <- (port, frame) :: t.batch;
  if not t.sweep_armed then begin
    t.sweep_armed <- true;
    ignore
      (Sim.Engine.schedule_at t.engine ~at:(Sim.Engine.now t.engine) (sweep t))
  end

let opt_value = function Some c -> Obs.Metrics.value c | None -> 0

let stats t =
  {
    ingressed = Obs.Metrics.value t.c_ingressed;
    delivered = Obs.Metrics.value t.c_delivered;
    drop_in = Obs.Metrics.value t.c_drop_in;
    drop_out = Obs.Metrics.value t.c_drop_out;
    unroutable = Obs.Metrics.value t.c_unroutable;
    port_drops = opt_value t.c_port_drops;
    partition_drops = opt_value t.c_partition_drops;
  }

let forwarded t = Array.copy t.n_forwarded
let dropped_in t = Array.copy t.n_drop_in
let dropped_out t = Array.copy t.n_drop_out
let port_dropped t = Array.copy t.n_port_drops
let partition_dropped t = Array.copy t.n_partitioned
let metrics t = t.metrics

let tap t ~port writer =
  if port < 0 || port >= Array.length t.ports then
    invalid_arg "Switch.tap: bad port";
  t.taps.(port) <- Some writer

let set_hooks t h = t.hooks <- h

(* Arm-time counter registration keeps the fault-free metrics snapshot
   byte-identical to a switch built before these seams existed. *)
let set_port_wedge t f =
  (match (f, t.c_port_drops) with
  | Some _, None ->
      t.c_port_drops <- Some (Obs.Metrics.counter t.metrics "switch_port_drops")
  | (Some _ | None), _ -> ());
  t.wedge <- f
[@@fault_seam]

let set_brownout t f = t.brownout <- f [@@fault_seam]

let set_partition t f =
  (match (f, t.c_partition_drops) with
  | Some _, None ->
      t.c_partition_drops <-
        Some (Obs.Metrics.counter t.metrics "switch_partition_drops")
  | (Some _ | None), _ -> ());
  t.partition <- f
[@@fault_seam]
