(** A rack: N hosts and a ToR {!Switch} mapped onto
    {!Sim.Shard_engine}, one host per shard.

    Shards [0 .. hosts-1] each own one host's engine (NIC, kernel and
    services live there untouched); shard [hosts] owns the switch and —
    by convention — the rack's master control plane and clients hanging
    off the switch's uplink port. The shard lookahead is the per-pair
    wire-latency matrix ({!Sim.Shard_engine.create_matrix}): host [h] ↔
    switch is port [h]'s wire latency, host ↔ host is the two-link sum
    (no frame crosses the rack in less than a switch traversal), so the
    conservative window width is exactly the shortest link.

    Frame paths (every hop either a switch traversal or a wire
    crossing posted with that wire's latency):

    - a host's stack egress goes {!host_egress} → post to the switch
      shard → {!Switch.ingress} on the host's port;
    - {!Switch}-delivered frames for a host port are posted to that
      host's shard and handed to its {!connect_host} ingress;
    - uplink traffic enters via {!uplink_send} (client → switch) and
      leaves via the {!connect_uplink} callback (switch → client),
      both on the master shard.

    Control-plane messages ({!post_to_host} / {!post_to_master}) cross
    the same wires as closures — spawn, probe, kill and register
    traffic pays the same latency as data. *)

type t

val create :
  ?domains:int ->
  ?sched:Sim.Scheduler.kind ->
  ?host_link:Switch.port_conf ->
  ?uplink:Switch.port_conf ->
  ?host_links:Switch.port_conf array ->
  ?cap_in:int ->
  ?cap_out:int ->
  ?fwd_delay:Sim.Units.duration ->
  ?metrics:Obs.Metrics.t ->
  hosts:int ->
  unit ->
  t
(** Build the engines (one per host + the switch/master shard), the
    shard engine and the switch. [host_link] is every host port's wire
    (default 1 µs latency, 100 ns tx) unless [host_links] gives a
    per-host array; [uplink] is the client-facing port (default 500 ns
    latency, 50 ns tx). [domains] defaults to
    {!Sim.Shard_engine.env_domains}; [sched] picks every engine's
    event-queue backend; [metrics] is handed to {!Switch.create} so
    the switch counters land on a caller-owned registry.

    @raise Invalid_argument on [hosts < 1] or a mis-sized
    [host_links]. *)

val hosts : t -> int
val shard : t -> Sim.Shard_engine.t
val switch : t -> Switch.t
val host_engine : t -> int -> Sim.Engine.t
val master_engine : t -> Sim.Engine.t

val host_endpoint : t -> int -> port:int -> Net.Frame.endpoint
(** Host [h]'s network identity on UDP [port]: a per-host MAC and IP
    (10.0.2.h+1) the switch routes on. Address request frames here. *)

val connect_host : t -> int -> ingress:(Net.Frame.t -> unit) -> unit
(** Wire host [h]'s stack ingress. Frames delivered to an unconnected
    host are counted ({!undeliverable}), never silently lost. *)

val connect_uplink : t -> (Net.Frame.t -> unit) -> unit
(** Wire the uplink's receive side (client reply handling). *)

val host_egress : t -> int -> Net.Frame.t -> unit
(** Host [h] transmits a frame (use as the stack's egress). Call only
    from host [h]'s own events. *)

val uplink_send : t -> Net.Frame.t -> unit
(** A client behind the uplink transmits a frame toward the rack. Call
    only from master-shard events (or before {!run}). *)

val post_to_host : t -> host:int -> (unit -> unit) -> unit
(** Run a closure on host [h]'s shard one host-link latency from now
    (master-shard callers only): probes, kills, respawn commands. *)

val post_to_master : t -> host:int -> (unit -> unit) -> unit
(** Run a closure on the master shard one host-link latency from now
    (host-shard callers only): probe acks, registrations. *)

val set_link_fault :
  t -> (src:int -> dst:int -> at:Sim.Units.time -> bool) option -> unit
(** Arm (or disarm) the rack's wire fault seam on the underlying
    {!Sim.Shard_engine.set_wire_fault} slot: [cut ~src ~dst ~at]
    answers whether the [src]→[dst] wire (shard indices; [hosts] is
    the switch/master shard) eats a message delivered at [at]. Every
    swallowed post — frame or control closure; they cross the same
    wires — is counted in the posting shard's {!link_drops} cell,
    never silent. The predicate must be a pure function of its
    arguments (a {!Fault.Plan} schedule); [Fault.Rack_chaos] is the
    intended installer — simlint's [fault-seam] rule flags any other
    installation inside [lib/]. [None] — the default — keeps the post
    path at one load-and-branch. *)

val link_drops : t -> int array
(** Per-posting-shard wire-fault losses ([hosts + 1] cells; the last
    is the switch/master shard's outbound wires). *)

val link_drops_total : t -> int

val run : t -> until:Sim.Units.time -> unit
val undeliverable : t -> int
val windows_run : t -> int
val messages_merged : t -> int

val events_processed : t -> int
(** Total events fired across every shard (for the events-per-window
    parallelism measure). *)
