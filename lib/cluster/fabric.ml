(* Rack glue: engines, the shard lookahead matrix, the switch, and the
   frame/control-message paths between them. See the interface for the
   topology; the invariant maintained here is that every cross-shard
   hand-off goes through Shard_engine.post with exactly the wire
   latency the lookahead matrix promises, so the conservative windows
   are as wide as the topology allows and the byte-identical-for-any-
   domain-count contract holds for whole racks. *)

type t = {
  hosts : int;
  engines : Sim.Engine.t array; (* hosts + 1; last = switch/master *)
  shard : Sim.Shard_engine.t;
  switch : Switch.t;
  links : Switch.port_conf array; (* per host port *)
  uplink_conf : Switch.port_conf;
  host_ingress : (Net.Frame.t -> unit) option array;
  mutable uplink_ingress : (Net.Frame.t -> unit) option;
  (* per-host so each cell is only ever touched by its own shard *)
  n_undeliverable : int array;
  mutable n_undeliverable_uplink : int;
  (* wire-fault losses, one cell per posting shard (hosts + 1): each is
     only ever touched by the domain running that shard — the same
     ownership discipline as the outboxes, which is what keeps counted
     wire drops deterministic under any LAUBERHORN_SHARDS *)
  n_link_drops : int array;
}

let base_ip = Net.Ip_addr.to_int (Net.Ip_addr.of_string "10.0.2.1")

let host_endpoint_ ~host ~port =
  {
    Net.Frame.mac =
      Net.Mac_addr.of_int64 (Int64.of_int (0x02_00_00_00_02_00 + host));
    ip = Net.Ip_addr.of_int (base_ip + host);
    port;
  }

let default_host_link =
  { Switch.latency = Sim.Units.us 1; tx = Sim.Units.ns 100 }

let default_uplink =
  { Switch.latency = Sim.Units.ns 500; tx = Sim.Units.ns 50 }

let create ?domains ?sched ?(host_link = default_host_link)
    ?(uplink = default_uplink) ?host_links ?cap_in ?cap_out ?fwd_delay
    ?metrics ~hosts () =
  if hosts < 1 then invalid_arg "Fabric.create: hosts < 1";
  let links =
    match host_links with
    | None -> Array.make hosts host_link
    | Some a when Array.length a = hosts -> a
    | Some _ -> invalid_arg "Fabric.create: host_links size mismatch"
  in
  let n = hosts + 1 in
  let engines = Array.init n (fun _ -> Sim.Engine.create ?sched ()) in
  let min_link =
    Array.fold_left
      (fun acc l -> min acc l.Switch.latency)
      links.(0).Switch.latency links
  in
  (* Per-pair lookahead: host↔switch is the host's wire; host↔host is
     the two-wire sum (the through-switch lower bound — no direct
     host↔host posts exist, but the bound is semantically right);
     diagonals (self-posts, unused) get the shard's own wire. *)
  let latency =
    Array.init n (fun i ->
        Array.init n (fun j ->
            let l k = links.(k).Switch.latency in
            if i = j then if i < hosts then l i else min_link
            else if i < hosts && j < hosts then l i + l j
            else if i < hosts then l i
            else l j))
  in
  let shard = Sim.Shard_engine.create_matrix ?domains ~latency engines in
  let master = engines.(hosts) in
  let host_ingress = Array.make hosts None in
  let n_undeliverable = Array.make hosts 0 in
  let t_ref = ref None in
  let deliver ~port frame =
    let t = match !t_ref with Some t -> t | None -> assert false in
    if port < hosts then
      Sim.Shard_engine.post shard ~src:hosts ~dst:port
        ~at:(Sim.Engine.now master + links.(port).Switch.latency)
        (fun () ->
          match t.host_ingress.(port) with
          | Some ingress -> ingress frame
          | None ->
              t.n_undeliverable.(port) <- t.n_undeliverable.(port) + 1)
    else
      ignore
        (Sim.Engine.schedule_after master ~after:uplink.Switch.latency
           (fun () ->
             match t.uplink_ingress with
             | Some ingress -> ingress frame
             | None ->
                 t.n_undeliverable_uplink <- t.n_undeliverable_uplink + 1))
  in
  let route frame =
    let ip = Net.Ip_addr.to_int frame.Net.Frame.ip.Net.Ipv4.dst in
    if ip >= base_ip && ip < base_ip + hosts then Some (ip - base_ip)
    else Some hosts (* everything else exits via the uplink *)
  in
  let switch =
    Switch.create master
      ~ports:(Array.append links [| uplink |])
      ?cap_in ?cap_out ?fwd_delay ?metrics ~route ~deliver ()
  in
  let t =
    {
      hosts;
      engines;
      shard;
      switch;
      links;
      uplink_conf = uplink;
      host_ingress;
      uplink_ingress = None;
      n_undeliverable;
      n_undeliverable_uplink = 0;
      n_link_drops = Array.make n 0;
    }
  in
  t_ref := Some t;
  t

let hosts t = t.hosts
let shard t = t.shard
let switch t = t.switch
let host_engine t h = t.engines.(h)
let master_engine t = t.engines.(t.hosts)
let host_endpoint _t host ~port = host_endpoint_ ~host ~port

let connect_host t h ~ingress =
  if h < 0 || h >= t.hosts then invalid_arg "Fabric.connect_host: bad host";
  t.host_ingress.(h) <- Some ingress

let connect_uplink t ingress = t.uplink_ingress <- Some ingress

let host_egress t h frame =
  Sim.Shard_engine.post t.shard ~src:h ~dst:t.hosts
    ~at:(Sim.Engine.now t.engines.(h) + t.links.(h).Switch.latency)
    (fun () -> Switch.ingress t.switch ~port:h frame)

let uplink_send t frame =
  ignore
    (Sim.Engine.schedule_after (master_engine t)
       ~after:t.uplink_conf.Switch.latency (fun () ->
         Switch.ingress t.switch ~port:t.hosts frame))

let post_to_host t ~host fn =
  Sim.Shard_engine.post t.shard ~src:t.hosts ~dst:host
    ~at:(Sim.Engine.now (master_engine t) + t.links.(host).Switch.latency)
    fn

let post_to_master t ~host fn =
  Sim.Shard_engine.post t.shard ~src:host ~dst:t.hosts
    ~at:(Sim.Engine.now t.engines.(host) + t.links.(host).Switch.latency)
    fn

(* The per-pair wire fault seam: [cut] (a pure function of shard ids
   and time — in practice a Fault.Plan flap/partition schedule compiled
   by Fault.Rack_chaos) decides, per post, whether the wire eats the
   message; the fabric counts the loss in the posting shard's own cell
   before swallowing it, so nothing is silent and nothing is shared. *)
let set_link_fault t cut =
  match cut with
  | None -> Sim.Shard_engine.set_wire_fault t.shard None
  | Some cut ->
      Sim.Shard_engine.set_wire_fault t.shard
        (Some
           (fun ~src ~dst ~at ->
             cut ~src ~dst ~at
             && begin
                  t.n_link_drops.(src) <- t.n_link_drops.(src) + 1;
                  true
                end))
[@@fault_seam]

let link_drops t = Array.copy t.n_link_drops
let link_drops_total t = Array.fold_left ( + ) 0 t.n_link_drops

let run t ~until = Sim.Shard_engine.run t.shard ~until

let undeliverable t =
  Array.fold_left ( + ) t.n_undeliverable_uplink t.n_undeliverable

let windows_run t = Sim.Shard_engine.windows_run t.shard
let messages_merged t = Sim.Shard_engine.messages_merged t.shard

let events_processed t =
  Array.fold_left (fun acc e -> acc + Sim.Engine.events_processed e) 0 t.engines
