(* Master-side lifecycle bookkeeping: array-indexed state, a periodic
   probe loop, and a round-robin balancer. Everything is driven by the
   master's engine, so state transitions are deterministic functions of
   the simulation. *)

type state = Unregistered | Alive | Dead

(* Lease epochs: (master generation) lsl 20 lor (per-host registration
   ordinal). A registration mints a fresh epoch; a master restart bumps
   the generation, so every pre-restart epoch becomes stale at once —
   acks echoing one are rejected, never mistaken for current health. *)
let generation_shift = 20
let ordinal_mask = (1 lsl generation_shift) - 1

type t = {
  engine : Sim.Engine.t;
  probe_period : Sim.Units.duration;
  probe : host:int -> unit;
  on_dead : host:int -> unit;
  on_alive : host:int -> unit;
  states : state array;
  awaiting_ack : bool array;
  sheddings : bool array;
  n_steered : int array;
  epochs : int array;
  reg_ordinals : int array;
  mutable cursor : int;
  mutable started : bool;
  (* master process liveness: a crashed master ignores registers and
     acks, stops probing and steering; a restart loses all soft state
     (every host back to Unregistered) under a new generation *)
  mutable up : bool;
  mutable gen : int;
  (* lifecycle counters live on the Obs.Metrics registry; the named
     accessors below are views over the same cells *)
  metrics : Obs.Metrics.t;
  c_deaths : Obs.Metrics.counter;
  c_registrations : Obs.Metrics.counter;
  c_probes_sent : Obs.Metrics.counter;
  c_acks_received : Obs.Metrics.counter;
  (* fault-class counters, registered lazily (at the first crash /
     first stale ack) so a fault-free run's metrics snapshot is
     byte-identical to the pre-fault-domain control plane *)
  mutable c_master_restarts : Obs.Metrics.counter option;
  mutable c_epoch_rejections : Obs.Metrics.counter option;
}

let nop ~host:_ = ()

let create engine ~hosts ~probe_period ~probe ?(on_dead = nop)
    ?(on_alive = nop) ?metrics () =
  if hosts <= 0 then invalid_arg "Control.create: hosts must be positive";
  if probe_period <= 0 then
    invalid_arg "Control.create: probe_period must be positive";
  let metrics =
    match metrics with Some m -> m | None -> Obs.Metrics.create ()
  in
  let n_steered = Array.make hosts 0 in
  Obs.Metrics.derive metrics "ctl_steered_total" (fun () ->
      Array.fold_left ( + ) 0 n_steered);
  {
    engine;
    probe_period;
    probe;
    on_dead;
    on_alive;
    states = Array.make hosts Unregistered;
    awaiting_ack = Array.make hosts false;
    sheddings = Array.make hosts false;
    n_steered;
    epochs = Array.make hosts 0;
    reg_ordinals = Array.make hosts 0;
    cursor = 0;
    started = false;
    up = true;
    gen = 1;
    metrics;
    c_deaths = Obs.Metrics.counter metrics "ctl_deaths";
    c_registrations = Obs.Metrics.counter metrics "ctl_registrations";
    c_probes_sent = Obs.Metrics.counter metrics "ctl_probes_sent";
    c_acks_received = Obs.Metrics.counter metrics "ctl_acks_received";
    c_master_restarts = None;
    c_epoch_rejections = None;
  }

let check_host t host =
  if host < 0 || host >= Array.length t.states then
    invalid_arg "Control: bad host index"

let is_alive = function Alive -> true | Unregistered | Dead -> false

(* One probe round: reap, then probe. Reaping first means a host whose
   probe went unanswered is declared dead exactly one period after the
   probe was sent — "within one probe period" of the crash that ate
   the ack. A crashed master's pending round fires into nothing: the
   loop parks itself (started <- false) and [restart] re-arms it. *)
let rec tick t () =
  if not t.up then t.started <- false
  else begin
    Array.iteri
      (fun h st ->
        if is_alive st && t.awaiting_ack.(h) then begin
          t.states.(h) <- Dead;
          t.awaiting_ack.(h) <- false;
          Obs.Metrics.incr t.c_deaths;
          t.on_dead ~host:h
        end)
      t.states;
    Array.iteri
      (fun h st ->
        if is_alive st then begin
          t.awaiting_ack.(h) <- true;
          Obs.Metrics.incr t.c_probes_sent;
          t.probe ~host:h
        end)
      t.states;
    ignore (Sim.Engine.schedule_after t.engine ~after:t.probe_period (tick t))
  end

let start t =
  if not t.started then begin
    t.started <- true;
    ignore (Sim.Engine.schedule_after t.engine ~after:t.probe_period (tick t))
  end

(* A register mints the host's lease epoch even when the host is
   already Alive (a lease-driven defensive re-register): stale acks
   from its previous incarnation stop forgiving probes. *)
let register t ~host =
  check_host t host;
  if t.up then begin
    Obs.Metrics.incr t.c_registrations;
    t.awaiting_ack.(host) <- false;
    t.reg_ordinals.(host) <- (t.reg_ordinals.(host) + 1) land ordinal_mask;
    t.epochs.(host) <- (t.gen lsl generation_shift) lor t.reg_ordinals.(host);
    if not (is_alive t.states.(host)) then begin
      t.states.(host) <- Alive;
      t.on_alive ~host
    end
  end

let epoch t ~host =
  check_host t host;
  t.epochs.(host)

let reject_stale_ack t =
  let c =
    match t.c_epoch_rejections with
    | Some c -> c
    | None ->
        let c = Obs.Metrics.counter t.metrics "ctl_epoch_rejections" in
        t.c_epoch_rejections <- Some c;
        c
  in
  Obs.Metrics.incr c

let ack ?epoch t ~host =
  check_host t host;
  if t.up && is_alive t.states.(host) then
    match epoch with
    | Some e when e <> t.epochs.(host) -> reject_stale_ack t
    | Some _ | None ->
        Obs.Metrics.incr t.c_acks_received;
        t.awaiting_ack.(host) <- false

(* Master crash: the process is gone — probing stops, registers and
   acks fall on the floor, the balancer answers nothing. Soft state
   (who is alive, who is shedding, the round-robin cursor) dies with
   it; only the generation counter survives, because it is what makes
   pre-crash epochs detectably stale after the restart. *)
let crash t =
  if t.up then t.up <- false
[@@fault_seam]

let restart t =
  if not t.up then begin
    t.up <- true;
    t.gen <- t.gen + 1;
    Array.fill t.states 0 (Array.length t.states) Unregistered;
    Array.fill t.awaiting_ack 0 (Array.length t.awaiting_ack) false;
    Array.fill t.sheddings 0 (Array.length t.sheddings) false;
    t.cursor <- 0;
    let c =
      match t.c_master_restarts with
      | Some c -> c
      | None ->
          let c = Obs.Metrics.counter t.metrics "ctl_master_restarts" in
          t.c_master_restarts <- Some c;
          c
    in
    Obs.Metrics.incr c;
    (* the probe loop re-arms whether or not the crash-era round has
       already parked it *)
    start t
  end
[@@fault_seam]

let up t = t.up
let master_generation t = t.gen

let master_restarts t =
  match t.c_master_restarts with Some c -> Obs.Metrics.value c | None -> 0

let epoch_rejections t =
  match t.c_epoch_rejections with Some c -> Obs.Metrics.value c | None -> 0

let set_shedding t ~host v =
  check_host t host;
  t.sheddings.(host) <- v

let state t ~host =
  check_host t host;
  t.states.(host)

let alive t ~host = is_alive (state t ~host)

let shedding t ~host =
  check_host t host;
  t.sheddings.(host)

let steerable t ~host = alive t ~host && not (shedding t ~host)

let pick t =
  if not t.up then None
  else
    let n = Array.length t.states in
    let rec scan tried =
    if tried >= n then None
    else
      let h = (t.cursor + tried) mod n in
      if steerable t ~host:h then begin
        t.cursor <- (h + 1) mod n;
        t.n_steered.(h) <- t.n_steered.(h) + 1;
        Some h
      end
      else scan (tried + 1)
    in
    scan 0

let steered t = Array.copy t.n_steered
let deaths t = Obs.Metrics.value t.c_deaths
let registrations t = Obs.Metrics.value t.c_registrations
let probes_sent t = Obs.Metrics.value t.c_probes_sent
let acks_received t = Obs.Metrics.value t.c_acks_received
let metrics t = t.metrics

(* Worker-side lease: runs on the *host's* engine, so it survives the
   master by construction. Each observed probe renews the lease; a
   periodic check that finds the lease expired fires [re_register]
   (a register posted back across the wire), which is what brings a
   worker back under a restarted master's fresh generation. *)
module Worker_lease = struct
  type nonrec t = {
    engine : Sim.Engine.t;
    timeout : Sim.Units.duration;
    re_register : unit -> unit;
    mutable last_probe : Sim.Units.time;
    mutable running : bool;
    mutable re_registrations : int;
  }

  let create engine ~timeout ~re_register =
    if timeout <= 0 then
      invalid_arg "Worker_lease.create: timeout must be positive";
    {
      engine;
      timeout;
      re_register;
      last_probe = 0;
      running = false;
      re_registrations = 0;
    }

  let rec check l () =
    if l.running then begin
      let now = Sim.Engine.now l.engine in
      if now - l.last_probe >= l.timeout then begin
        l.re_registrations <- l.re_registrations + 1;
        l.re_register ()
      end;
      ignore (Sim.Engine.schedule_after l.engine ~after:l.timeout (check l))
    end

  let start l =
    if not l.running then begin
      l.running <- true;
      l.last_probe <- Sim.Engine.now l.engine;
      ignore (Sim.Engine.schedule_after l.engine ~after:l.timeout (check l))
    end

  let stop l = l.running <- false
  let saw_probe l = l.last_probe <- Sim.Engine.now l.engine
  let re_registrations l = l.re_registrations
end
