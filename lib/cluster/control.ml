(* Master-side lifecycle bookkeeping: array-indexed state, a periodic
   probe loop, and a round-robin balancer. Everything is driven by the
   master's engine, so state transitions are deterministic functions of
   the simulation. *)

type state = Unregistered | Alive | Dead

type t = {
  engine : Sim.Engine.t;
  probe_period : Sim.Units.duration;
  probe : host:int -> unit;
  on_dead : host:int -> unit;
  on_alive : host:int -> unit;
  states : state array;
  awaiting_ack : bool array;
  sheddings : bool array;
  n_steered : int array;
  mutable cursor : int;
  mutable started : bool;
  (* lifecycle counters live on the Obs.Metrics registry; the named
     accessors below are views over the same cells *)
  metrics : Obs.Metrics.t;
  c_deaths : Obs.Metrics.counter;
  c_registrations : Obs.Metrics.counter;
  c_probes_sent : Obs.Metrics.counter;
  c_acks_received : Obs.Metrics.counter;
}

let nop ~host:_ = ()

let create engine ~hosts ~probe_period ~probe ?(on_dead = nop)
    ?(on_alive = nop) ?metrics () =
  if hosts <= 0 then invalid_arg "Control.create: hosts must be positive";
  if probe_period <= 0 then
    invalid_arg "Control.create: probe_period must be positive";
  let metrics =
    match metrics with Some m -> m | None -> Obs.Metrics.create ()
  in
  let n_steered = Array.make hosts 0 in
  Obs.Metrics.derive metrics "ctl_steered_total" (fun () ->
      Array.fold_left ( + ) 0 n_steered);
  {
    engine;
    probe_period;
    probe;
    on_dead;
    on_alive;
    states = Array.make hosts Unregistered;
    awaiting_ack = Array.make hosts false;
    sheddings = Array.make hosts false;
    n_steered;
    cursor = 0;
    started = false;
    metrics;
    c_deaths = Obs.Metrics.counter metrics "ctl_deaths";
    c_registrations = Obs.Metrics.counter metrics "ctl_registrations";
    c_probes_sent = Obs.Metrics.counter metrics "ctl_probes_sent";
    c_acks_received = Obs.Metrics.counter metrics "ctl_acks_received";
  }

let check_host t host =
  if host < 0 || host >= Array.length t.states then
    invalid_arg "Control: bad host index"

let is_alive = function Alive -> true | Unregistered | Dead -> false

(* One probe round: reap, then probe. Reaping first means a host whose
   probe went unanswered is declared dead exactly one period after the
   probe was sent — "within one probe period" of the crash that ate
   the ack. *)
let rec tick t () =
  Array.iteri
    (fun h st ->
      if is_alive st && t.awaiting_ack.(h) then begin
        t.states.(h) <- Dead;
        t.awaiting_ack.(h) <- false;
        Obs.Metrics.incr t.c_deaths;
        t.on_dead ~host:h
      end)
    t.states;
  Array.iteri
    (fun h st ->
      if is_alive st then begin
        t.awaiting_ack.(h) <- true;
        Obs.Metrics.incr t.c_probes_sent;
        t.probe ~host:h
      end)
    t.states;
  ignore (Sim.Engine.schedule_after t.engine ~after:t.probe_period (tick t))

let start t =
  if not t.started then begin
    t.started <- true;
    ignore (Sim.Engine.schedule_after t.engine ~after:t.probe_period (tick t))
  end

let register t ~host =
  check_host t host;
  Obs.Metrics.incr t.c_registrations;
  t.awaiting_ack.(host) <- false;
  if not (is_alive t.states.(host)) then begin
    t.states.(host) <- Alive;
    t.on_alive ~host
  end

let ack t ~host =
  check_host t host;
  if is_alive t.states.(host) then begin
    Obs.Metrics.incr t.c_acks_received;
    t.awaiting_ack.(host) <- false
  end

let set_shedding t ~host v =
  check_host t host;
  t.sheddings.(host) <- v

let state t ~host =
  check_host t host;
  t.states.(host)

let alive t ~host = is_alive (state t ~host)

let shedding t ~host =
  check_host t host;
  t.sheddings.(host)

let steerable t ~host = alive t ~host && not (shedding t ~host)

let pick t =
  let n = Array.length t.states in
  let rec scan tried =
    if tried >= n then None
    else
      let h = (t.cursor + tried) mod n in
      if steerable t ~host:h then begin
        t.cursor <- (h + 1) mod n;
        t.n_steered.(h) <- t.n_steered.(h) + 1;
        Some h
      end
      else scan (tried + 1)
  in
  scan 0

let steered t = Array.copy t.n_steered
let deaths t = Obs.Metrics.value t.c_deaths
let registrations t = Obs.Metrics.value t.c_registrations
let probes_sent t = Obs.Metrics.value t.c_probes_sent
let acks_received t = Obs.Metrics.value t.c_acks_received
let metrics t = t.metrics
