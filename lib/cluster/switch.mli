(** A top-of-rack switch model.

    [ports] devices (hosts, plus typically one uplink) hang off the
    switch, each behind a wire with its own latency and a per-frame
    serialization (transmit) time. A frame entering at {!ingress}
    traverses: a finite per-port ingress FIFO, a crossbar that forwards
    one head-of-line frame per port per [fwd_delay], the routed output
    port's finite egress FIFO, and finally that port's transmitter —
    at which point [deliver] fires and the caller carries the frame
    over the port's wire (e.g. across a {!Sim.Shard_engine} boundary).

    {b Determinism contract}: the delivery order is a pure function of
    each frame's [(arrival time, ingress port)]. Arrivals sharing one
    simulated instant are collected and served in ascending ingress-
    port order regardless of the event-schedule order that delivered
    them — this mirrors (and composes with) {!Sim.Shard_engine}'s
    barrier merge, which orders same-time cross-shard messages by
    source shard. Ties never fall back to engine sequence numbers, so
    the contract survives any event-injection order. The pair is
    unique per frame on any physical script — a serialized wire
    delivers at most one frame per instant per port; feeding two
    same-instant frames into one port falls back to {!ingress} call
    order.

    {b No silent loss}: every frame that enters is either delivered or
    counted — ingress-queue overflow, egress-queue overflow, unroutable
    frames, and every fault-induced loss (wedged-port overflow,
    partition cut) each have a counter. {!stats} conserves:
    [ingressed = delivered + drop_in + drop_out + unroutable +
    port_drops + partition_drops + in-flight]. *)

type port_conf = {
  latency : Sim.Units.duration;
      (** Wire latency between this port and its device — exported for
          the fabric's lookahead matrix; the switch itself does not
          consume it (delivery happens at transmit-complete, the wire
          crossing is the caller's). *)
  tx : Sim.Units.duration;
      (** Per-frame serialization time on this port's transmitter. *)
}

type stats = {
  ingressed : int;
  delivered : int;
  drop_in : int;  (** Frames dropped at a full ingress queue. *)
  drop_out : int;  (** Frames dropped at a full egress queue. *)
  unroutable : int;  (** Frames [route] could not map to a port. *)
  port_drops : int;
      (** Frames dropped behind a wedged egress port's full queue. *)
  partition_drops : int;
      (** Frames cut at the crossbar by an armed partition. *)
}

type t

(** Passive observation points for an external tracing plane (see the
    rack experiments' cross-fabric span emitter): a frame's admission
    at {!ingress}, its crossbar completion (with the routed output
    port, [None] when unroutable), and its transmit completion —
    immediately before [deliver]. The switch never consults them for
    behaviour; arming them cannot perturb the determinism contract. *)
type hooks = {
  on_ingress : port:int -> time:Sim.Units.time -> Net.Frame.t -> unit;
  on_forward :
    port:int -> dst:int option -> time:Sim.Units.time -> Net.Frame.t -> unit;
  on_transmit : port:int -> time:Sim.Units.time -> Net.Frame.t -> unit;
}

val create :
  Sim.Engine.t ->
  ports:port_conf array ->
  ?cap_in:int ->
  ?cap_out:int ->
  ?fwd_delay:Sim.Units.duration ->
  ?metrics:Obs.Metrics.t ->
  route:(Net.Frame.t -> int option) ->
  deliver:(port:int -> Net.Frame.t -> unit) ->
  unit ->
  t
(** [cap_in]/[cap_out] bound the per-port ingress/egress queues in
    frames (defaults 64); [fwd_delay] is the crossbar's per-frame
    forwarding time (default 300 ns). [route] maps a frame to its
    output port ([None] counts as unroutable). [deliver] fires on the
    switch's engine at transmit-complete time. [metrics] is the
    registry the scalar counters ([switch_ingressed],
    [switch_delivered], [switch_drop_in], [switch_drop_out],
    [switch_unroutable]) register on — a private one when omitted;
    {!stats} is a view of the same counters either way.

    @raise Invalid_argument on an empty port array, a non-positive
    capacity or delay, or a non-positive port [tx]. *)

val ingress : t -> port:int -> Net.Frame.t -> unit
(** A frame arrives from the device on [port]. Must be called from the
    switch engine's own events. @raise Invalid_argument on a bad
    port. *)

val ports : t -> int
val port_conf : t -> int -> port_conf
val stats : t -> stats

val forwarded : t -> int array
(** Per-egress-port delivered-frame counts (steering visibility). *)

val dropped_in : t -> int array
val dropped_out : t -> int array

val port_dropped : t -> int array
(** Per-egress-port wedged-overflow losses. *)

val partition_dropped : t -> int array
(** Per-ingress-port partition-cut losses. *)

val metrics : t -> Obs.Metrics.t
(** The registry behind {!stats} (the one passed to {!create}, or the
    switch's private one). *)

val tap : t -> port:int -> Obs.Pcap.t -> unit
(** Arm a pcap port-tap: every frame admitted from [port]'s device and
    every frame transmitted to it is appended to the writer with its
    simulated timestamp, so any rack link can be dumped and diffed.
    Disarmed ports cost one load-and-branch per frame.
    @raise Invalid_argument on a bad port. *)

val set_hooks : t -> hooks option -> unit
(** Arm (or disarm) the tracing observation points. [None] — the
    default — costs one load-and-branch per observation site. Arm only
    from a config-gated path (simlint flags unconditional installation
    inside [lib/]). *)

(** {2 Fault seams}

    Deterministic fault injection points, intended to be armed only by
    [Fault.Rack_chaos] from a {!Fault.Plan} — simlint's [fault-seam]
    rule flags any other cluster fault-state mutation inside [lib/].
    Every predicate must be a pure function of its arguments (a plan
    schedule, never shared mutable state), so delivery and loss order
    remain a function of [(arrival-time, ingress port)] and chaos runs
    stay byte-identical across [LAUBERHORN_SHARDS]. [None] — the
    default for each seam — costs one load-and-branch on its consulting
    path; with no seam armed the switch's behaviour and its metrics
    snapshot are byte-identical to the pre-seam model (the fault-loss
    counters register lazily at arm time). *)

val set_port_wedge :
  t -> (port:int -> at:Sim.Units.time -> Sim.Units.time option) option -> unit
(** Egress-port failure: while the predicate answers [Some until] (the
    first instant the port is free again), [port]'s transmitter is
    wedged — queued frames serialize only after the wedge lifts, and
    frames arriving behind a full queue are counted as [port_drops].
    Arming registers the [switch_port_drops] counter. *)

val set_brownout :
  t -> (at:Sim.Units.time -> Sim.Units.time option) option -> unit
(** Whole-switch brownout: while the predicate answers [Some until],
    crossbar service starts are deferred to [until] (service already
    begun completes — non-preemptible), so ingress FIFOs back up and
    overflow as counted [drop_in]. *)

val set_partition :
  t -> (src:int -> dst:int -> at:Sim.Units.time -> bool) option -> unit
(** Asymmetric partition cut at the crossbar: a routed frame whose
    [(ingress port, egress port)] pair the predicate cuts at forward
    time is dropped and counted as [partition_drops] ([src]→[dst] only;
    the reverse direction asks the predicate with swapped arguments).
    Arming registers the [switch_partition_drops] counter. *)
