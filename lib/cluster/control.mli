(** The rack's master/worker control plane.

    A master (conventionally co-located with the ToR switch's shard)
    tracks the lifecycle of [hosts] workers: a host {!register}s when
    it comes up, is health-checked every [probe_period], is marked
    {!Dead} when a probe goes unanswered for a full period, and comes
    back by re-registering after a respawn. The embedded load balancer
    ({!pick}) steers each new connection to the next host, round-robin,
    skipping hosts that are dead, unregistered, or shedding — so
    steering reacts to deaths within one probe period and to
    re-registrations immediately.

    Probes are sent through the caller-supplied [probe] callback (in a
    rack, a closure posted across the shard boundary to the host, whose
    reply posts {!ack} back), so the control plane itself is pure
    deterministic bookkeeping on the master's engine. *)

type state = Unregistered | Alive | Dead

type t

val create :
  Sim.Engine.t ->
  hosts:int ->
  probe_period:Sim.Units.duration ->
  probe:(host:int -> unit) ->
  ?on_dead:(host:int -> unit) ->
  ?on_alive:(host:int -> unit) ->
  ?metrics:Obs.Metrics.t ->
  unit ->
  t
(** [on_dead]/[on_alive] observe state transitions (e.g. to log a
    failure timeline or tear down steering state). [metrics] is the
    registry the lifecycle counters ([ctl_deaths],
    [ctl_registrations], [ctl_probes_sent], [ctl_acks_received], and
    the derived [ctl_steered_total]) register on — a private one when
    omitted; the named accessors below are views of the same cells.

    @raise Invalid_argument on [hosts <= 0] or a non-positive
    period. *)

val start : t -> unit
(** Begin the periodic probe loop (idempotent). Each round first
    declares dead every [Alive] host whose previous probe was never
    {!ack}ed, then probes every host still [Alive]. A crashed host is
    therefore marked dead at most one probe period after its last
    ack. *)

val register : t -> host:int -> unit
(** A host announces itself (spawn or respawn): state becomes [Alive],
    any pending probe is forgiven, and steering resumes immediately.
    @raise Invalid_argument on a bad host index. *)

val ack : t -> host:int -> unit
(** A probe reply arrived. Ignored for dead/unregistered hosts (a
    reply already in flight when the host was declared dead does not
    resurrect it — only {!register} does). *)

val set_shedding : t -> host:int -> bool -> unit
(** Mark a host as shedding load (e.g. its NIC admission control is
    rejecting): it stays alive and keeps being probed, but {!pick}
    steers new connections elsewhere. *)

val state : t -> host:int -> state
val alive : t -> host:int -> bool
val shedding : t -> host:int -> bool

val steerable : t -> host:int -> bool
(** [Alive] and not shedding. *)

val pick : t -> int option
(** The load balancer: the next steerable host, round-robin; [None]
    when every host is dead, unregistered, or shedding. *)

val steered : t -> int array
(** Per-host {!pick} counts. *)

val deaths : t -> int
val registrations : t -> int
val probes_sent : t -> int
val acks_received : t -> int

val metrics : t -> Obs.Metrics.t
(** The registry behind the counters above (the one passed to
    {!create}, or the control plane's private one). *)
