(** The rack's master/worker control plane.

    A master (conventionally co-located with the ToR switch's shard)
    tracks the lifecycle of [hosts] workers: a host {!register}s when
    it comes up, is health-checked every [probe_period], is marked
    {!Dead} when a probe goes unanswered for a full period, and comes
    back by re-registering after a respawn. The embedded load balancer
    ({!pick}) steers each new connection to the next host, round-robin,
    skipping hosts that are dead, unregistered, or shedding — so
    steering reacts to deaths within one probe period and to
    re-registrations immediately.

    Probes are sent through the caller-supplied [probe] callback (in a
    rack, a closure posted across the shard boundary to the host, whose
    reply posts {!ack} back), so the control plane itself is pure
    deterministic bookkeeping on the master's engine. *)

type state = Unregistered | Alive | Dead

type t

val create :
  Sim.Engine.t ->
  hosts:int ->
  probe_period:Sim.Units.duration ->
  probe:(host:int -> unit) ->
  ?on_dead:(host:int -> unit) ->
  ?on_alive:(host:int -> unit) ->
  ?metrics:Obs.Metrics.t ->
  unit ->
  t
(** [on_dead]/[on_alive] observe state transitions (e.g. to log a
    failure timeline or tear down steering state). [metrics] is the
    registry the lifecycle counters ([ctl_deaths],
    [ctl_registrations], [ctl_probes_sent], [ctl_acks_received], and
    the derived [ctl_steered_total]) register on — a private one when
    omitted; the named accessors below are views of the same cells.

    @raise Invalid_argument on [hosts <= 0] or a non-positive
    period. *)

val start : t -> unit
(** Begin the periodic probe loop (idempotent). Each round first
    declares dead every [Alive] host whose previous probe was never
    {!ack}ed, then probes every host still [Alive]. A crashed host is
    therefore marked dead at most one probe period after its last
    ack. *)

val register : t -> host:int -> unit
(** A host announces itself (spawn or respawn): state becomes [Alive],
    any pending probe is forgiven, steering resumes immediately, and a
    fresh lease {!epoch} is minted — even when the host was already
    alive (a lease-driven defensive re-register), so acks from its
    previous incarnation turn stale. Ignored while the master is
    crashed (the process is not there to hear it).
    @raise Invalid_argument on a bad host index. *)

val epoch : t -> host:int -> int
(** The host's current lease epoch:
    [(master generation lsl 20) lor registration ordinal]. Probes
    should carry it so acks can echo it back. [0] before the first
    registration. *)

val ack : ?epoch:int -> t -> host:int -> unit
(** A probe reply arrived. Ignored for dead/unregistered hosts (a
    reply already in flight when the host was declared dead does not
    resurrect it — only {!register} does) and while the master is
    crashed. When the reply echoes an [epoch] that is not the host's
    current one — it predates a master restart or a re-register — it
    is rejected and counted ([ctl_epoch_rejections]), never mistaken
    for current health. *)

val crash : t -> unit
(** The master process dies: probing stops, {!register}/{!ack} fall on
    the floor, {!pick} answers [None]. Idempotent. Arm only from a
    {!Fault.Plan}-driven seam ([Fault.Rack_chaos]); simlint's
    [fault-seam] rule flags anything else inside [lib/]. *)

val restart : t -> unit
(** The master comes back with empty soft state: every host is
    [Unregistered] (workers must re-register — their {!Worker_lease}
    does this within one lease timeout), shedding flags and the
    balancer cursor are cleared, the probe loop re-arms, and the
    generation counter bumps so every pre-crash epoch is stale. Counted
    in [ctl_master_restarts] (registered lazily at first restart).
    Idempotent while up. *)

val up : t -> bool
(** [false] between {!crash} and {!restart}. *)

val master_generation : t -> int
(** Bumped by every {!restart}; starts at 1. *)

val master_restarts : t -> int
val epoch_rejections : t -> int

val set_shedding : t -> host:int -> bool -> unit
(** Mark a host as shedding load (e.g. its NIC admission control is
    rejecting): it stays alive and keeps being probed, but {!pick}
    steers new connections elsewhere. *)

val state : t -> host:int -> state
val alive : t -> host:int -> bool
val shedding : t -> host:int -> bool

val steerable : t -> host:int -> bool
(** [Alive] and not shedding. *)

val pick : t -> int option
(** The load balancer: the next steerable host, round-robin; [None]
    when every host is dead, unregistered, or shedding. *)

val steered : t -> int array
(** Per-host {!pick} counts. *)

val deaths : t -> int
val registrations : t -> int
val probes_sent : t -> int
val acks_received : t -> int

val metrics : t -> Obs.Metrics.t
(** The registry behind the counters above (the one passed to
    {!create}, or the control plane's private one). *)

(** Worker-side lease keeping a host registered across master
    restarts. It runs on the {e host's} engine: every probe the host
    observes renews the lease ({!Worker_lease.saw_probe}); a periodic
    check that finds no probe for a full [timeout] fires
    [re_register] — in a rack, a {!register} posted back across the
    wire — so a worker orphaned by a master crash rejoins the new
    generation within one timeout of the restart, with no master-side
    cooperation. All bookkeeping is host-engine-deterministic. *)
module Worker_lease : sig
  type t

  val create :
    Sim.Engine.t -> timeout:Sim.Units.duration -> re_register:(unit -> unit) ->
    t
  (** @raise Invalid_argument on a non-positive timeout. *)

  val start : t -> unit
  (** Begin the periodic lease check (idempotent); the lease counts as
      renewed at start time. *)

  val stop : t -> unit
  (** Park the check loop (e.g. while the host process itself is
      dead — a dead worker must not re-register). *)

  val saw_probe : t -> unit
  (** Renew the lease: a probe from the master reached this host. *)

  val re_registrations : t -> int
  (** How many times the lease expired and [re_register] fired. *)
end
