type mode = Push | Query

type t = {
  mmode : mode;
  prof : Coherence.Interconnect.profile;
  kernel : Osmodel.Kernel.t;
  view : (int * int) option array;  (* core -> (pid, tid) *)
  dead : (int, unit) Hashtbl.t;  (* pids the NIC believes are dead *)
  mutable on_pid_dead : (int -> unit) list;
  mutable on_pid_respawn : (int -> unit) list;
  mutable pushes : int;
  mutable pending : int;  (* pushes scheduled but not yet landed *)
}

let create ~mode prof kernel =
  let t =
    {
      mmode = mode;
      prof;
      kernel;
      view = Array.make (Osmodel.Kernel.ncores kernel) None;
      dead = Hashtbl.create 8;
      on_pid_dead = [];
      on_pid_respawn = [];
      pushes = 0;
      pending = 0;
    }
  in
  (match mode with
  | Push ->
      Osmodel.Kernel.on_context_switch kernel (fun ~core ~prev:_ ~next ->
          let entry =
            Option.map
              (fun (th : Osmodel.Proc.thread) ->
                (th.Osmodel.Proc.proc.Osmodel.Proc.pid, th.Osmodel.Proc.tid))
              next
          in
          (* The push crosses the interconnect before the NIC sees it. *)
          t.pending <- t.pending + 1;
          ignore
            (Sim.Engine.schedule_after
               (Osmodel.Kernel.engine kernel)
               ~after:prof.Coherence.Interconnect.store_release
               (fun () ->
                 t.pending <- t.pending - 1;
                 t.pushes <- t.pushes + 1;
                 t.view.(core) <- entry)))
  | Query -> ());
  (* Process death travels the same path as occupancy updates: in Push
     mode the NIC learns after one store-release — the stale window the
     dispatch path must survive — and the subscribed callbacks run at
     that (lagged) instant. In Query mode the kernel is consulted live,
     so callbacks fire immediately. *)
  Osmodel.Kernel.on_process_exit kernel (fun proc ->
      let pid = proc.Osmodel.Proc.pid in
      let land_death () =
        t.pushes <- t.pushes + 1;
        Hashtbl.replace t.dead pid ();
        List.iter (fun f -> f pid) (List.rev t.on_pid_dead)
      in
      match mode with
      | Query -> land_death ()
      | Push ->
          t.pending <- t.pending + 1;
          ignore
            (Sim.Engine.schedule_after
               (Osmodel.Kernel.engine kernel)
               ~after:prof.Coherence.Interconnect.store_release
               (fun () ->
                 t.pending <- t.pending - 1;
                 land_death ())));
  Osmodel.Kernel.on_process_respawn kernel (fun proc ->
      let pid = proc.Osmodel.Proc.pid in
      let land_respawn () =
        t.pushes <- t.pushes + 1;
        Hashtbl.remove t.dead pid;
        List.iter (fun f -> f pid) (List.rev t.on_pid_respawn)
      in
      match mode with
      | Query -> land_respawn ()
      | Push ->
          t.pending <- t.pending + 1;
          ignore
            (Sim.Engine.schedule_after
               (Osmodel.Kernel.engine kernel)
               ~after:prof.Coherence.Interconnect.store_release
               (fun () ->
                 t.pending <- t.pending - 1;
                 land_respawn ())));
  t

let mode t = t.mmode

let lookup_cost t =
  match t.mmode with
  | Push -> 0
  | Query -> t.prof.Coherence.Interconnect.mmio_read

let truth t core =
  Option.map
    (fun (th : Osmodel.Proc.thread) ->
      (th.Osmodel.Proc.proc.Osmodel.Proc.pid, th.Osmodel.Proc.tid))
    (Osmodel.Kernel.current t.kernel ~core)

let kernel_truth t ~core = truth t core

let core_occupant t ~core =
  match t.mmode with Push -> t.view.(core) | Query -> truth t core

let cores_running t ~pid =
  let n = Osmodel.Kernel.ncores t.kernel in
  let rec go core acc =
    if core >= n then List.rev acc
    else
      match core_occupant t ~core with
      | Some (p, _) when Int.equal p pid -> go (core + 1) (core :: acc)
      | Some _ | None -> go (core + 1) acc
  in
  go 0 []

let is_running t ~pid = not (List.is_empty (cores_running t ~pid))

let pid_alive t ~pid = not (Hashtbl.mem t.dead pid)
let in_flight_pushes t = t.pending
let on_pid_dead t f = t.on_pid_dead <- f :: t.on_pid_dead
let on_pid_respawn t f = t.on_pid_respawn <- f :: t.on_pid_respawn
let pushes t = t.pushes
