type service_spec = {
  service : Rpc.Interface.service_def;
  port : int;
  min_workers : int;
  max_workers : int;
}

let spec ?(min_workers = 1) ?(max_workers = 1) ~port service =
  if min_workers < 0 || max_workers < 1 || min_workers > max_workers then
    invalid_arg "Stack.spec: inconsistent worker bounds";
  { service; port; min_workers; max_workers }

type inflight =
  | App of {
      mdef : Rpc.Interface.method_def;
      args : Rpc.Value.t;
      svc_id : int;  (* owning service, for the crash-teardown sweep *)
      reply_src : Net.Frame.endpoint;  (* server side *)
      reply_dst : Net.Frame.endpoint;  (* client side *)
      mutable full_body : bytes;  (* response bytes beyond the line *)
      arrived : Sim.Units.time;
      arg_bytes : int;
      path : Telemetry.path;
    }
  | Dispatch_ack of { svc_id : int; widx : int }

type worker = {
  widx : int;
  mutable wthread : Osmodel.Proc.thread;
      (* replaced on process restart (the endpoint survives, the
         thread does not) *)
  wep : Endpoint.t;
  mutable wtx : Tx_endpoint.t option;
      (* transmit lines for nested calls (Figure 4's disjoint TX set) *)
  mutable active : bool;
  mutable starting : bool;
  mutable cpu_idx : int;
  mutable empty_cycles : int;
}

type service_rt = {
  sspec : service_spec;
  sproc : Osmodel.Proc.process;
  mutable workers : worker array;
  mutable active_count : int;
  limbo : Message.request Queue.t;
      (* NIC-SRAM survivors of a crash, redelivered on restart *)
}

type dispatcher = { dthread : Osmodel.Proc.thread; dep : Endpoint.t }

type remote = {
  server : Net.Frame.endpoint;  (* remote machine + service port *)
  response_schema : Rpc.Schema.t;
}

type t = {
  engine : Sim.Engine.t;
  cfg : Config.t;
  kern : Osmodel.Kernel.t;
  ha : Coherence.Home_agent.t;
  smirror : Sched_mirror.t;
  dmx : Demux.t;
  sched : Nic_sched.t;
  egress : Net.Frame.t -> unit;
  counters : Sim.Counter.group;
  inflight : (int64, inflight) Hashtbl.t;
  services : (int, service_rt) Hashtbl.t;
  mutable dispatchers : dispatcher array;
  parked_eps : (int, Endpoint.t) Hashtbl.t;  (* tid -> endpoint *)
  telemetry : Telemetry.t;
  metrics : Obs.Metrics.t;
  tracer : Obs.Tracer.t;
  trk : int;  (* span track for the rpc stage chain *)
  trk_detail : int;  (* span track for NIC pipeline sub-intervals *)
  fault_active : bool;
      (* fault plan present: feed fault/recovery events into telemetry
         (fault-free runs record nothing, keeping reports unchanged) *)
  remotes : (int, remote) Hashtbl.t;  (* service_id -> where it lives *)
  mutable address : Net.Frame.endpoint option;  (* our own identity *)
  mutable trace : Sim.Trace.t option;
  nested_conts : Rpc.Value.t Rpc.Continuation.t;
      (* reply continuations for nested calls (paper section 6) *)
  mutable next_dispatch_id : int64;
  mutable mac : Nic.Mac.t option;
  mutable handled_hook : (unit -> unit) option;
      (* per-handled-RPC callback (server fault injector) *)
  (* Robustness counters — on the metrics registry, whose export drops
     zero entries, so fault-free/shed-off reports are unchanged. *)
  m_kills : Obs.Metrics.counter;
  m_respawns : Obs.Metrics.counter;
  m_stale : Obs.Metrics.counter;  (* stale_dispatch_caught *)
  m_crash_nacks : Obs.Metrics.counter;
  m_requeues : Obs.Metrics.counter;
  m_sheds : Obs.Metrics.counter;
  m_drop_full : Obs.Metrics.counter;
  m_drop_shed : Obs.Metrics.counter;
  sanitize : Sanitize.t option;
  mutable mwatch : Sanitize.Mirror_watch.watch option;
      (* installed after [t] exists (its closures render [t]'s state) *)
}

let kernel t = t.kern
let home_agent t = t.ha
let mirror t = t.smirror
let counters t = t.counters
let config t = t.cfg
let sanitizer t = t.sanitize

(* Sanitizer probe at the moment a request is handed to a worker
   endpoint: the mirror must still believe the target pid alive —
   a dispatch after the death push landed would target a swept
   process. One branch when no sanitizer is attached. *)
let sanitize_dispatch t sv =
  match t.mwatch with
  | None -> ()
  | Some mw ->
      let pid = sv.sproc.Osmodel.Proc.pid in
      Sanitize.Mirror_watch.dispatch mw ~pid
        ~alive:(Sched_mirror.pid_alive t.smirror ~pid)

let ctr t name = Sim.Counter.counter t.counters name

let emit t ~cat f =
  match t.trace with
  | Some trace -> Sim.Trace.emit trace ~time:(Sim.Engine.now t.engine) ~cat f
  | None -> ()

(* Close the stage running since this RPC's cursor at the current sim
   time. One branch when the tracer is disabled. *)
let span_stage t ~rpc name =
  Obs.Tracer.stage t.tracer ~rpc ~track:t.trk ~name (Sim.Engine.now t.engine)

(* Detail spans decomposing the NIC pipeline stage, emitted at the
   moment the pipeline completes (they reach back from now). *)
let pipeline_details t ~rpc (b : Pipeline.breakdown) ~decrypt =
  if Obs.Tracer.is_enabled t.tracer then begin
    let stop = Sim.Engine.now t.engine in
    let seg = ref (stop - b.Pipeline.total - decrypt) in
    let detail name d =
      if d > 0 then begin
        Obs.Tracer.detail t.tracer ~rpc ~track:t.trk_detail ~name ~start:!seg
          ~stop:(!seg + d);
        seg := !seg + d
      end
    in
    detail "parse" b.Pipeline.parse;
    detail "demux" b.Pipeline.demux;
    detail "hw_unmarshal" b.Pipeline.deser;
    detail "sched_lookup" b.Pipeline.sched_lookup;
    detail "decrypt" decrypt
  end
let prof t = t.cfg.Config.profile
let line_bytes t = (prof t).Coherence.Interconnect.cache_line_bytes

(* DRAM read cost for DMA-delivered payloads (≈25 GB/s streaming). *)
let mem_read_cost bytes = 100 + (bytes / 25)

(* Nested-call reply ids live in their own tag range so responses can
   be routed to the waiting worker instead of the wire. *)
let nested_tag = Int64.shift_left 1L 61

let nested_rpc_id cont = Int64.logor nested_tag (Int64.of_int cont)

let nested_cont_of rpc_id =
  if
    Int64.logand rpc_id nested_tag <> 0L
    && Int64.logand rpc_id (Int64.shift_left 1L 62) = 0L
  then Some (Int64.to_int (Int64.logand rpc_id 0xffff_ffffL))
  else None

let service_rt t service_id =
  match Hashtbl.find_opt t.services service_id with
  | Some rt -> rt
  | None ->
      invalid_arg (Printf.sprintf "Stack: unknown service %d" service_id)

(* ---------- Worker (CPU user-mode loop, Figure 4/5 left side) -------- *)

(* A thread that parks while other runnable work waits on its core is
   answered with an immediate TRYAGAIN (paper section 5.1: a blocked
   communication load is the clean descheduling point), sending it
   through the kernel so the queued thread can run. *)
let park_would_starve t th =
  match th.Osmodel.Proc.state with
  | Osmodel.Proc.Running cid ->
      Osmodel.Kernel.runqueue_length t.kern ~core:cid > 0
  | Osmodel.Proc.Ready | Osmodel.Proc.Blocked | Osmodel.Proc.Exited -> false

let respond_line t w ~rpc_id ~status ~body =
  let cap = Message.response_inline_capacity ~line_bytes:(line_bytes t) in
  let inline_len = min cap (Bytes.length body) in
  let rest = Bytes.length body - inline_len in
  let resp_aux_count =
    if rest <= 0 then 0 else (rest + line_bytes t - 1) / line_bytes t
  in
  let resp =
    {
      Message.resp_rpc_id = rpc_id;
      status;
      total_len = Bytes.length body;
      inline_body = Net.Slice.make body ~off:0 ~len:inline_len;
      resp_aux_count;
    }
  in
  Coherence.Home_agent.cpu_store t.ha
    (Endpoint.ctrl_line w.wep w.cpu_idx)
    (Message.encode_response ~line_bytes:(line_bytes t) resp)

let rec worker_loop t sv w () = park_worker t sv w

and park_worker t sv w =
  (* Bind the thread at park time: if the process is killed while this
     load is parked and later restarted, the fill completion must be
     judged against the thread that parked, not the respawned one. *)
  let th = w.wthread in
  Osmodel.Kernel.stall_begin t.kern th;
  Coherence.Home_agent.cpu_load t.ha
    (Endpoint.ctrl_line w.wep w.cpu_idx)
    (fun fill ->
      if Osmodel.Proc.is_exited th then
        (* Killed while parked; the kill already closed the stall and
           the teardown sweep owns whatever this fill carried. *)
        ()
      else begin
      Osmodel.Kernel.stall_end t.kern th;
      match fill with
      | Coherence.Home_agent.Tryagain -> worker_tryagain t sv w
      | Coherence.Home_agent.Data line -> (
          w.empty_cycles <- 0;
          match Message.decode line with
          | Ok (Message.Request r) -> worker_handle t sv w r
          | Ok (Message.Tryagain | Message.Retire | Message.Kernel_dispatch _)
          | Error _ ->
              Sim.Counter.incr (ctr t "worker_bad_line");
              worker_loop t sv w ())
      end)

and worker_tryagain t sv w =
  Sim.Counter.incr (ctr t "worker_tryagain");
  emit t ~cat:"tryagain" (fun () ->
      Printf.sprintf "worker %s got TRYAGAIN (empty=%d)"
        w.wthread.Osmodel.Proc.tname (w.empty_cycles + 1));
  w.empty_cycles <- w.empty_cycles + 1;
  if
    w.empty_cycles >= t.cfg.Config.tryagains_before_yield
    && sv.active_count > sv.sspec.min_workers
    (* A request may have raced into the endpoint between the TRYAGAIN
       decision on the NIC and this code running: never deactivate with
       work (or an uncollected response) in flight. *)
    && Endpoint.in_flight w.wep = 0
    && Endpoint.queue_depth w.wep = 0
  then begin
    (* Scale down: give the core back for good until re-dispatched. *)
    w.active <- false;
    sv.active_count <- sv.active_count - 1;
    Sim.Counter.incr (ctr t "worker_deactivate");
    Osmodel.Kernel.block t.kern w.wthread (fun () ->
        w.empty_cycles <- 0;
        worker_loop t sv w ())
  end
  else
    (* The paper's user-mode loop: a TRYAGAIN sends the process into
       the kernel (schedule()); it re-parks if nothing else runs. *)
    Osmodel.Kernel.yield t.kern w.wthread (fun () -> worker_loop t sv w ())

and worker_handle t sv w (r : Message.request) =
  match Hashtbl.find_opt t.inflight r.Message.rpc_id with
  | None | Some (Dispatch_ack _) ->
      Sim.Counter.incr (ctr t "worker_orphan_request");
      worker_loop t sv w ()
  | Some (App app) ->
      span_stage t ~rpc:r.Message.rpc_id "queue";
      let dma_read =
        if r.Message.via_dma then mem_read_cost r.Message.total_args else 0
      in
      let work = app.mdef.Rpc.Interface.handler_time + dma_read in
      let finish result =
        span_stage t ~rpc:r.Message.rpc_id "handler";
        let body = Rpc.Codec.encode result in
        app.full_body <- body;
        respond_line t w ~rpc_id:r.Message.rpc_id ~status:0 ~body;
        w.cpu_idx <- 1 - w.cpu_idx;
        Sim.Counter.incr (ctr t "rpcs_handled");
        (match t.handled_hook with Some f -> f () | None -> ());
        worker_loop t sv w ()
      in
      Osmodel.Kernel.run_for t.kern w.wthread ~kind:Osmodel.Cpu_account.User
        work (fun () ->
          match app.mdef.Rpc.Interface.nested with
          | None -> finish (app.mdef.Rpc.Interface.execute app.args)
          | Some h ->
              let call ~service_id ~method_id v k =
                nested_call t w ~service_id ~method_id v k
              in
              h ~call app.args ~done_:finish)

(* This machine's own network identity (for outbound nested calls). *)
and self_address t =
  match t.address with
  | Some a -> a
  | None ->
      {
        Net.Frame.mac = Net.Mac_addr.of_string "02:00:00:00:00:01";
        ip = Net.Ip_addr.of_string "10.0.0.1";
        port = 0;
      }

(* Assemble a nested-request frame and emit it: hairpin through our own
   MAC for local services, out the egress (the wire) for remote ones. *)
and tx_emit t ~cont ~service_id ~method_id ~dst body =
  let self = self_address t in
  let src = { self with Net.Frame.port = 60_000 + (cont mod 5_000) } in
  let frame =
    Net.Frame.make ~src ~dst
      (Rpc.Wire_format.encode
         {
           Rpc.Wire_format.rpc_id = nested_rpc_id cont;
           service_id;
           method_id;
           kind = Rpc.Wire_format.Request;
           ctx = None;
           body;
         })
  in
  if Net.Ip_addr.equal dst.Net.Frame.ip self.Net.Frame.ip then
    match t.mac with
    | Some mac -> Nic.Mac.rx mac frame
    | None -> invalid_arg "Stack: MAC not initialised"
  else begin
    Sim.Counter.incr (ctr t "nested_remote_sends");
    t.egress frame
  end

(* NIC-side consumer of a worker's TX CONTROL lines: decode the stored
   line image back into a request and emit it. *)
and on_tx_line t image =
  match Message.decode image with
  | Ok (Message.Request r) -> (
      match Demux.port_of_service t.dmx ~service_id:r.Message.service_id with
      | None -> Sim.Counter.incr (ctr t "tx_line_no_service")
      | Some port ->
          Sim.Counter.incr (ctr t "tx_line_sends");
          let cont =
            match nested_cont_of r.Message.rpc_id with
            | Some c -> c
            | None -> 0
          in
          tx_emit t ~cont ~service_id:r.Message.service_id
            ~method_id:r.Message.method_id
            ~dst:{ (self_address t) with Net.Frame.port }
            (Net.Slice.to_bytes r.Message.inline_args))
  | Ok (Message.Kernel_dispatch _ | Message.Tryagain | Message.Retire)
  | Error _ ->
      Sim.Counter.incr (ctr t "tx_bad_line")

(* Issue a nested RPC from a running worker: small requests go out
   through the worker's TX CONTROL lines (Figure 4's disjoint transmit
   set); larger ones fall back to direct frame injection. The worker
   blocks and resumes when the reply continuation fires (paper section
   6: "rapidly create a dedicated end-point for an RPC reply"). *)
and nested_call t w ~service_id ~method_id v k =
  let dst =
    match Demux.port_of_service t.dmx ~service_id with
    | Some port -> Some { (self_address t) with Net.Frame.port }
    | None -> (
        match Hashtbl.find_opt t.remotes service_id with
        | Some r -> Some r.server
        | None -> None)
  in
  match dst with
  | None ->
      Sim.Counter.incr (ctr t "nested_no_service");
      k Rpc.Value.Unit
  | Some dst ->
      let reply = ref Rpc.Value.Unit in
      let cont =
        Rpc.Continuation.alloc t.nested_conts (fun result ->
            reply := result;
            Osmodel.Kernel.wake t.kern w.wthread)
      in
      Sim.Counter.incr (ctr t "nested_calls");
      let body = Rpc.Codec.encode v in
      (match w.wtx with
      | Some wtx
        when Bytes.length body <= Config.inline_capacity t.cfg
             && Net.Ip_addr.equal dst.Net.Frame.ip
                  (self_address t).Net.Frame.ip ->
          let image =
            Message.encode ~line_bytes:(line_bytes t)
              (Message.Request
                 {
                   Message.rpc_id = nested_rpc_id cont;
                   service_id;
                   method_id;
                   code_ptr = 0L;
                   data_ptr = 0L;
                   total_args = Bytes.length body;
                   inline_args = Net.Slice.of_bytes body;
                   aux_count = 0;
                   via_dma = false;
                 })
          in
          Tx_endpoint.cpu_send wtx image ~accepted:(fun () -> ())
      | Some _ | None ->
          tx_emit t ~cont ~service_id ~method_id ~dst body);
      Osmodel.Kernel.block t.kern w.wthread (fun () -> k !reply)

let activate_worker t sv w =
  w.starting <- false;
  if Osmodel.Proc.is_exited w.wthread then
    (* An activation raced the kill: by the time the dispatcher ran the
       KERNEL_DISPATCH, the target process was dead. *)
    Sim.Counter.incr (ctr t "dispatch_to_dead")
  else if not w.active then begin
    emit t ~cat:"activate" (fun () ->
        Printf.sprintf "worker %s activated" w.wthread.Osmodel.Proc.tname);
    w.active <- true;
    sv.active_count <- sv.active_count + 1;
    Sim.Counter.incr (ctr t "worker_activate");
    Osmodel.Kernel.wake t.kern w.wthread
  end

(* ---------- Dispatcher kernel threads (Figure 5 slow path) ----------- *)

let dispatch_handling_cost = Sim.Units.ns 300

let rec dispatcher_loop t d idx () = park_dispatcher t d idx

and park_dispatcher t d idx =
  Osmodel.Kernel.stall_begin t.kern d.dthread;
  Coherence.Home_agent.cpu_load t.ha
    (Endpoint.ctrl_line d.dep idx)
    (fun fill ->
      Osmodel.Kernel.stall_end t.kern d.dthread;
      match fill with
      | Coherence.Home_agent.Tryagain ->
          (* Periodic schedule() as a regular kernel thread. *)
          Osmodel.Kernel.yield t.kern d.dthread (fun () ->
              dispatcher_loop t d idx ())
      | Coherence.Home_agent.Data line -> (
          match Message.decode line with
          | Ok (Message.Kernel_dispatch r) ->
              Osmodel.Kernel.run_for t.kern d.dthread
                ~kind:Osmodel.Cpu_account.Kernel dispatch_handling_cost
                (fun () ->
                  (match Hashtbl.find_opt t.inflight r.Message.rpc_id with
                  | Some (Dispatch_ack { svc_id; widx }) ->
                      let sv = service_rt t svc_id in
                      activate_worker t sv sv.workers.(widx)
                  | Some (App _) | None ->
                      Sim.Counter.incr (ctr t "dispatcher_orphan"));
                  (* Follow the line protocol: ack into the same line,
                     then monitor the other one. *)
                  let ack =
                    Message.encode_response ~line_bytes:(line_bytes t)
                      {
                        Message.resp_rpc_id = r.Message.rpc_id;
                        status = 0;
                        total_len = 0;
                        inline_body = Net.Slice.empty;
                        resp_aux_count = 0;
                      }
                  in
                  Coherence.Home_agent.cpu_store t.ha
                    (Endpoint.ctrl_line d.dep idx) ack;
                  Osmodel.Kernel.yield t.kern d.dthread (fun () ->
                      dispatcher_loop t d (1 - idx) ()))
          | Ok Message.Retire ->
              (* Reallocation request: leave the CPU entirely. *)
              Sim.Counter.incr (ctr t "dispatcher_retired");
              Osmodel.Kernel.block t.kern d.dthread (fun () ->
                  dispatcher_loop t d idx ())
          | Ok (Message.Request _ | Message.Tryagain) | Error _ ->
              Sim.Counter.incr (ctr t "dispatcher_bad_line");
              dispatcher_loop t d idx ()))

let pick_dispatcher t =
  let parked =
    Array.to_list t.dispatchers
    |> List.find_opt (fun d -> Endpoint.parked d.dep)
  in
  match parked with
  | Some d -> Some d
  | None ->
      Array.to_list t.dispatchers
      |> List.sort (fun a b ->
             Int.compare
               (Endpoint.queue_depth a.dep + Endpoint.in_flight a.dep)
               (Endpoint.queue_depth b.dep + Endpoint.in_flight b.dep))
      |> (function [] -> None | d :: _ -> Some d)

let request_worker_activation t sv w =
  if (not w.active) && not w.starting then begin
    match pick_dispatcher t with
    | None -> Sim.Counter.incr (ctr t "dispatch_no_dispatcher")
    | Some d ->
        w.starting <- true;
        let id = t.next_dispatch_id in
        t.next_dispatch_id <- Int64.add id 1L;
        Hashtbl.replace t.inflight id
          (Dispatch_ack
             { svc_id = sv.sspec.service.Rpc.Interface.service_id;
               widx = w.widx });
        let msg =
          {
            Message.rpc_id = id;
            service_id = sv.sspec.service.Rpc.Interface.service_id;
            method_id = w.widx;
            code_ptr = 0L;
            data_ptr = 0L;
            total_args = 0;
            inline_args = Net.Slice.empty;
            aux_count = 0;
            via_dma = false;
          }
        in
        Sim.Counter.incr (ctr t "slow_path_dispatch");
        if not (Endpoint.deliver ~kernel_dispatch:true d.dep msg) then begin
          Hashtbl.remove t.inflight id;
          w.starting <- false;
          Sim.Counter.incr (ctr t "dispatch_dropped")
        end
  end

(* ---------- NIC receive pipeline and dispatch ------------------------ *)

let choose_worker sv =
  (* Prefer a parked active worker (zero-latency handoff), then the
     least-loaded active worker, then an inactive one (needs a slow-path
     activation). *)
  let best_parked = ref None and best_active = ref None in
  Array.iter
    (fun w ->
      if w.active then begin
        if Endpoint.parked w.wep && Option.is_none !best_parked then
          best_parked := Some w;
        let load = Endpoint.in_flight w.wep + Endpoint.queue_depth w.wep in
        match !best_active with
        | Some (_, l) when l <= load -> ()
        | Some _ | None -> best_active := Some (w, load)
      end)
    sv.workers;
  match !best_parked with
  | Some w -> (w, `Fast)
  | None -> (
      match !best_active with
      | Some (w, _) -> (w, `Queued)
      | None -> (sv.workers.(0), `Inactive))

let scale_decision t sv =
  let service = sv.sspec.service.Rpc.Interface.service_id in
  let queue_depth =
    Array.fold_left
      (fun acc w -> acc + Endpoint.queue_depth w.wep)
      0 sv.workers
  in
  let handler_time =
    match sv.sspec.service.Rpc.Interface.methods with
    | m :: _ -> m.Rpc.Interface.handler_time
    | [] -> Sim.Units.ns 500
  in
  Nic_sched.decide t.sched ~service ~queue_depth ~workers:sv.active_count
    ~handler_time

let tx_mac_delay = Sim.Units.ns 200

(* An explicit transport-level reject on the wire (Error_reply): the
   client sees why its request did not complete instead of inferring a
   silent drop from a timeout. *)
let nack t ~rpc_id ~service_id ~src ~dst ~code =
  let reply =
    {
      Rpc.Wire_format.rpc_id;
      service_id;
      method_id = 0;
      kind = Rpc.Wire_format.Error_reply code;
      ctx = Obs.Tracer.context_of t.tracer ~rpc:rpc_id;
      body = Bytes.empty;
    }
  in
  let frame = Net.Frame.make ~src ~dst (Rpc.Wire_format.encode reply) in
  ignore
    (Sim.Engine.schedule_after t.engine ~after:tx_mac_delay (fun () ->
         Sim.Counter.incr (ctr t "tx_frames");
         Obs.Tracer.rpc_end t.tracer ~rpc:rpc_id (Sim.Engine.now t.engine);
         t.egress frame))

let dispatch_request t (entry : Demux.entry) frame
    (wire : Rpc.Wire_format.t) (mdef : Rpc.Interface.method_def) args =
  let sv =
    service_rt t entry.Demux.service.Rpc.Interface.service_id
  in
  let rpc_id = wire.Rpc.Wire_format.rpc_id in
  if Hashtbl.mem t.inflight rpc_id then begin
    Sim.Counter.incr (ctr t "duplicate_rpc_id");
    if t.fault_active then Telemetry.incr_fault t.telemetry "duplicate_rpc_id"
  end
  else if not (Sched_mirror.pid_alive t.smirror ~pid:sv.sproc.Osmodel.Proc.pid)
  then begin
    (* The NIC believes the target process is dead (the death push has
       landed): refuse on the wire rather than dispatch to a corpse. *)
    Obs.Metrics.incr t.m_crash_nacks;
    if t.fault_active then Telemetry.incr_fault t.telemetry "crash_nack";
    nack t ~rpc_id
      ~service_id:entry.Demux.service.Rpc.Interface.service_id
      ~src:(Net.Frame.dst_endpoint frame) ~dst:(Net.Frame.src_endpoint frame)
      ~code:Rpc.Wire_format.err_dead
  end
  else begin
    let body = wire.Rpc.Wire_format.body in
    let arg_bytes = Bytes.length body in
    let window = Config.endpoint_window t.cfg in
    let via_dma =
      arg_bytes > t.cfg.Config.dma_threshold || arg_bytes > window
    in
    let inline_cap = Config.inline_capacity t.cfg in
    let inline_len = min inline_cap arg_bytes in
    let aux_count =
      if via_dma then 0
      else
        let rest = arg_bytes - inline_len in
        if rest <= 0 then 0 else (rest + line_bytes t - 1) / line_bytes t
    in
    let msg =
      {
        Message.rpc_id;
        service_id = entry.Demux.service.Rpc.Interface.service_id;
        method_id = mdef.Rpc.Interface.method_id;
        code_ptr =
          Demux.code_ptr entry ~method_id:mdef.Rpc.Interface.method_id;
        data_ptr = entry.Demux.data_ptr;
        total_args = arg_bytes;
        inline_args = Net.Slice.make body ~off:0 ~len:inline_len;
        aux_count;
        via_dma;
      }
    in
    (* With admission control armed the decision is taken once, before
       the arrival is accepted (so a Shed never occupies queue space);
       with it off, the decision is taken after delivery, exactly as
       the pre-admission-control stack did. *)
    let early_decision =
      if t.cfg.Config.shed then Some (scale_decision t sv) else None
    in
    match early_decision with
    | Some Nic_sched.Shed ->
        Obs.Metrics.incr t.m_sheds;
        Obs.Metrics.incr t.m_drop_shed;
        if t.fault_active then Telemetry.incr_fault t.telemetry "shed";
        nack t ~rpc_id
          ~service_id:entry.Demux.service.Rpc.Interface.service_id
          ~src:(Net.Frame.dst_endpoint frame)
          ~dst:(Net.Frame.src_endpoint frame)
          ~code:Rpc.Wire_format.err_shed
    | Some (Nic_sched.Steady | Nic_sched.Add_worker | Nic_sched.Release_worker)
    | None ->
    Nic_sched.on_arrival t.sched
      ~service:entry.Demux.service.Rpc.Interface.service_id
      ~now:(Sim.Engine.now t.engine);
    let w, path = choose_worker sv in
    Hashtbl.replace t.inflight rpc_id
      (App
         {
           mdef;
           args;
           svc_id = entry.Demux.service.Rpc.Interface.service_id;
           reply_src = Net.Frame.dst_endpoint frame;
           reply_dst = Net.Frame.src_endpoint frame;
           full_body = Bytes.empty;
           arrived = Sim.Engine.now t.engine;
           arg_bytes;
           path =
             (match path with
             | `Fast -> Telemetry.Fast
             | `Queued -> Telemetry.Queued
             | `Inactive -> Telemetry.Cold);
         });
    sanitize_dispatch t sv;
    if Endpoint.deliver w.wep msg then begin
      emit t ~cat:"dispatch" (fun () ->
          Format.asprintf "rpc %Ld -> svc %d worker %d (%s)" rpc_id
            entry.Demux.service.Rpc.Interface.service_id w.widx
            (match path with
            | `Fast -> "fast"
            | `Queued -> "queued"
            | `Inactive -> "cold"));
      (match path with
      | `Fast -> Sim.Counter.incr (ctr t "fast_path")
      | `Queued -> Sim.Counter.incr (ctr t "queued_path")
      | `Inactive ->
          Sim.Counter.incr (ctr t "cold_path");
          request_worker_activation t sv w);
      (* NIC-driven scale-up when queues build. *)
      let decision =
        match early_decision with
        | Some d -> d
        | None -> scale_decision t sv
      in
      match decision with
      | Nic_sched.Add_worker -> (
          let candidate =
            Array.to_list sv.workers
            |> List.find_opt (fun w -> (not w.active) && not w.starting)
          in
          match candidate with
          | Some w when sv.active_count < sv.sspec.max_workers ->
              request_worker_activation t sv w
          | Some _ | None -> ())
      | Nic_sched.Release_worker | Nic_sched.Steady | Nic_sched.Shed -> ()
    end
    else begin
      Hashtbl.remove t.inflight rpc_id;
      Sim.Counter.incr (ctr t "nic_queue_drop");
      Obs.Metrics.incr t.m_drop_full;
      if t.fault_active then Telemetry.incr_fault t.telemetry "nic_queue_drop"
    end
  end

let nic_rx t frame =
  Sim.Counter.incr (ctr t "rx_frames");
  emit t ~cat:"rx" (fun () ->
      Format.asprintf "frame %a" Net.Udp.pp frame.Net.Frame.udp);
  match Rpc.Wire_format.decode frame.Net.Frame.payload with
  | Error _ ->
      Sim.Counter.incr (ctr t "rx_bad_rpc");
      if t.fault_active then Telemetry.incr_fault t.telemetry "rx_bad_rpc"
  | Ok wire
    when not (Rpc.Wire_format.is_request wire) -> (
      (* A response from a remote machine to one of our nested calls. *)
      match nested_cont_of wire.Rpc.Wire_format.rpc_id with
      | Some cont -> (
          match
            Hashtbl.find_opt t.remotes wire.Rpc.Wire_format.service_id
          with
          | Some r -> (
              match
                Rpc.Codec.decode r.response_schema wire.Rpc.Wire_format.body
              with
              | Ok v ->
                  Sim.Counter.incr (ctr t "nested_remote_replies");
                  if not (Rpc.Continuation.fire t.nested_conts cont v) then
                    Sim.Counter.incr (ctr t "nested_orphan_reply")
              | Error _ -> Sim.Counter.incr (ctr t "nested_bad_reply"))
          | None -> Sim.Counter.incr (ctr t "rx_stray_response"))
      | None -> Sim.Counter.incr (ctr t "rx_stray_response"))
  | Ok wire -> (
      span_stage t ~rpc:wire.Rpc.Wire_format.rpc_id "mac";
      match Demux.lookup t.dmx ~port:frame.Net.Frame.udp.Net.Udp.dst_port with
      | None -> Sim.Counter.incr (ctr t "rx_no_service")
      | Some entry -> (
          match
            Rpc.Interface.find_method entry.Demux.service
              wire.Rpc.Wire_format.method_id
          with
          | None -> Sim.Counter.incr (ctr t "rx_no_method")
          | Some mdef -> (
              match
                Rpc.Codec.decode mdef.Rpc.Interface.request
                  wire.Rpc.Wire_format.body
              with
              | Error _ -> Sim.Counter.incr (ctr t "rx_bad_args")
              | Ok args ->
                  let breakdown =
                    Pipeline.rx t.cfg
                      ~sched_lookup:(Sched_mirror.lookup_cost t.smirror)
                      ~fields:(Rpc.Value.field_count args)
                      ~arg_bytes:(Bytes.length wire.Rpc.Wire_format.body)
                  in
                  let decrypt =
                    if t.cfg.Config.encrypt then
                      Crypto.cost Crypto.aes_gcm_nic
                        ~bytes:(Net.Frame.wire_size frame)
                    else 0
                  in
                  ignore
                    (Sim.Engine.schedule_after t.engine
                       ~after:(breakdown.Pipeline.total + decrypt)
                       (fun () ->
                         pipeline_details t ~rpc:wire.Rpc.Wire_format.rpc_id
                           breakdown ~decrypt;
                         span_stage t ~rpc:wire.Rpc.Wire_format.rpc_id
                           "nic_pipeline";
                         dispatch_request t entry frame wire mdef args)))))

(* ---------- Response collection and egress --------------------------- *)

let on_endpoint_response t (resp : Message.response) =
  match Hashtbl.find_opt t.inflight resp.Message.resp_rpc_id with
  | None -> Sim.Counter.incr (ctr t "orphan_response")
  | Some (Dispatch_ack _) ->
      Hashtbl.remove t.inflight resp.Message.resp_rpc_id
  | Some (App app)
    when Option.is_some (nested_cont_of resp.Message.resp_rpc_id)
         && Net.Ip_addr.equal app.reply_dst.Net.Frame.ip
              (self_address t).Net.Frame.ip ->
      (* A reply to one of OUR nested calls, hairpinned locally. A
         request from another machine may carry that machine's nested
         tag in its id — those take the normal wire-reply path below. *)
      Hashtbl.remove t.inflight resp.Message.resp_rpc_id;
      (match Demux.lookup t.dmx ~port:app.reply_src.Net.Frame.port with
      | Some e ->
          Nic_sched.on_complete t.sched
            ~service:e.Demux.service.Rpc.Interface.service_id
      | None -> ());
      let result =
        match
          Rpc.Codec.decode app.mdef.Rpc.Interface.response app.full_body
        with
        | Ok v -> v
        | Error _ ->
            Sim.Counter.incr (ctr t "nested_bad_reply");
            Rpc.Value.Unit
      in
      let cont =
        match nested_cont_of resp.Message.resp_rpc_id with
        | Some c -> c
        | None -> assert false
      in
      (* Reply delivery to the waiting worker's reply end-point: one
         coherent fill. *)
      ignore
        (Sim.Engine.schedule_after t.engine
           ~after:(prof t).Coherence.Interconnect.load_response (fun () ->
             if not (Rpc.Continuation.fire t.nested_conts cont result) then
               Sim.Counter.incr (ctr t "nested_orphan_reply")))
  | Some (App app) ->
      Hashtbl.remove t.inflight resp.Message.resp_rpc_id;
      span_stage t ~rpc:resp.Message.resp_rpc_id "collect";
      let service_id =
        (* reply carries the same ids as the request *)
        match Demux.lookup t.dmx ~port:app.reply_src.Net.Frame.port with
        | Some e -> e.Demux.service.Rpc.Interface.service_id
        | None -> -1
      in
      if service_id >= 0 then
        Nic_sched.on_complete t.sched ~service:service_id;
      (* Fidelity check: the inline prefix collected from the cache
         line must match the response body the handler produced. *)
      let prefix_ok =
        Net.Slice.is_prefix_of resp.Message.inline_body app.full_body
      in
      if not prefix_ok then Sim.Counter.incr (ctr t "response_corrupt");
      if service_id >= 0 then
        Telemetry.record t.telemetry ~service_id ~path:app.path
          ~latency:(Sim.Engine.now t.engine - app.arrived)
          ~bytes_in:app.arg_bytes
          ~bytes_out:(Bytes.length app.full_body);
      let reply =
        {
          Rpc.Wire_format.rpc_id = resp.Message.resp_rpc_id;
          service_id = (if service_id >= 0 then service_id else 0);
          method_id = 0;
          kind =
            (if resp.Message.status = 0 then Rpc.Wire_format.Response
             else Rpc.Wire_format.Error_reply resp.Message.status);
          ctx =
            Obs.Tracer.context_of t.tracer ~rpc:resp.Message.resp_rpc_id;
          body = app.full_body;
        }
      in
      let frame =
        Net.Frame.make ~src:app.reply_src ~dst:app.reply_dst
          (Rpc.Wire_format.encode reply)
      in
      emit t ~cat:"tx" (fun () ->
          Format.asprintf "response %Ld (%dB body)"
            resp.Message.resp_rpc_id
            (Bytes.length app.full_body));
      let encrypt =
        if t.cfg.Config.encrypt then
          Crypto.cost Crypto.aes_gcm_nic
            ~bytes:(Net.Frame.wire_size frame)
        else 0
      in
      ignore
        (Sim.Engine.schedule_after t.engine ~after:(tx_mac_delay + encrypt)
           (fun () ->
             Sim.Counter.incr (ctr t "tx_frames");
             span_stage t ~rpc:resp.Message.resp_rpc_id "tx";
             Obs.Tracer.rpc_end t.tracer ~rpc:resp.Message.resp_rpc_id
               (Sim.Engine.now t.engine);
             t.egress frame))

(* ---------- Crash/restart lifecycle ---------------------------------- *)

(* NIC-side teardown, run when the death push LANDS (not when the kill
   happens — the stale window in between is real and survivable). The
   NIC-SRAM queue contents survive into the service's limbo queue for
   redelivery after restart; whatever was already staged into (or
   parked on) the CONTROL lines was in the dead process's hands and is
   NACKed from the in-flight table — caught, never silently lost. *)
let sweep_dead_service t sv =
  let sid = sv.sspec.service.Rpc.Interface.service_id in
  let limbo_ids = Hashtbl.create 16 in
  Array.iter
    (fun w ->
      List.iter
        (fun ((msg : Message.request), _kernel_dispatch) ->
          Hashtbl.replace limbo_ids msg.Message.rpc_id ();
          Queue.add msg sv.limbo)
        (Endpoint.reset w.wep);
      w.active <- false;
      w.starting <- false;
      w.empty_cycles <- 0)
    sv.workers;
  sv.active_count <- 0;
  let doomed = ref [] in
  Hashtbl.iter
    (fun id entry ->
      match entry with
      | App { svc_id; reply_src; reply_dst; _ }
        when Int.equal svc_id sid && not (Hashtbl.mem limbo_ids id) ->
          doomed := (id, Some (reply_src, reply_dst)) :: !doomed
      | Dispatch_ack d when Int.equal d.svc_id sid ->
          doomed := (id, None) :: !doomed
      | App _ | Dispatch_ack _ -> ())
    t.inflight;
  List.iter
    (fun (id, entry) ->
      Hashtbl.remove t.inflight id;
      match entry with
      | None -> ()  (* cold activation of a now-dead worker *)
      | Some ((reply_src : Net.Frame.endpoint), (reply_dst : Net.Frame.endpoint))
        -> (
          Obs.Metrics.incr t.m_stale;
          if t.fault_active then
            Telemetry.incr_fault t.telemetry "stale_dispatch_caught";
          Nic_sched.on_complete t.sched ~service:sid;
          match nested_cont_of id with
          | Some cont
            when Net.Ip_addr.equal reply_dst.Net.Frame.ip
                   (self_address t).Net.Frame.ip ->
              (* Hairpinned nested call into the dead service: unblock
                 the waiting caller rather than NACK our own wire. *)
              if
                not (Rpc.Continuation.fire t.nested_conts cont Rpc.Value.Unit)
              then Sim.Counter.incr (ctr t "nested_orphan_reply")
          | Some _ | None ->
              nack t ~rpc_id:id ~service_id:sid ~src:reply_src ~dst:reply_dst
                ~code:Rpc.Wire_format.err_dead))
    !doomed

(* Redeliver the crash survivors once the NIC learns the process is
   back. Their in-flight entries were retained, so client retransmits
   that raced the restart hit the duplicate-id suppression instead of
   double-executing. *)
let drain_limbo t sv =
  let sid = sv.sspec.service.Rpc.Interface.service_id in
  while not (Queue.is_empty sv.limbo) do
    let msg = Queue.pop sv.limbo in
    let w, _path = choose_worker sv in
    sanitize_dispatch t sv;
    if Endpoint.deliver w.wep msg then begin
      Obs.Metrics.incr t.m_requeues;
      if t.fault_active then Telemetry.incr_fault t.telemetry "requeue"
    end
    else begin
      Obs.Metrics.incr t.m_crash_nacks;
      match Hashtbl.find_opt t.inflight msg.Message.rpc_id with
      | Some (App a) ->
          Hashtbl.remove t.inflight msg.Message.rpc_id;
          Nic_sched.on_complete t.sched ~service:sid;
          nack t ~rpc_id:msg.Message.rpc_id ~service_id:sid ~src:a.reply_src
            ~dst:a.reply_dst ~code:Rpc.Wire_format.err_dead
      | Some (Dispatch_ack _) | None -> ()
    end
  done

let kill_service t ~service_id =
  let sv = service_rt t service_id in
  if sv.sproc.Osmodel.Proc.alive then begin
    emit t ~cat:"crash" (fun () ->
        Printf.sprintf "service %d (%s) crashed" service_id
          sv.sproc.Osmodel.Proc.pname);
    Obs.Metrics.incr t.m_kills;
    if t.fault_active then Telemetry.incr_fault t.telemetry "kill";
    (* Kernel-side only. The NIC's mirror learns after the push lag;
       the teardown sweep runs when that push lands. *)
    Osmodel.Kernel.kill t.kern sv.sproc
  end

let restart_service t ~service_id =
  let sv = service_rt t service_id in
  if not sv.sproc.Osmodel.Proc.alive then begin
    emit t ~cat:"crash" (fun () ->
        Printf.sprintf "service %d (%s) restarted" service_id
          sv.sproc.Osmodel.Proc.pname);
    Obs.Metrics.incr t.m_respawns;
    Osmodel.Kernel.respawn t.kern sv.sproc;
    (* Fresh threads over the surviving endpoints (which the sweep left
       in their post-reset state: cur line 0, no credits consumed). *)
    Array.iter
      (fun w ->
        Hashtbl.remove t.parked_eps w.wthread.Osmodel.Proc.tid;
        let name = w.wthread.Osmodel.Proc.tname in
        let th =
          Osmodel.Kernel.spawn t.kern sv.sproc ~name (fun () ->
              worker_loop t sv w ())
        in
        w.wthread <- th;
        w.cpu_idx <- 0;
        w.empty_cycles <- 0;
        w.active <- false;
        w.starting <- false;
        Hashtbl.replace t.parked_eps th.Osmodel.Proc.tid w.wep)
      sv.workers;
    sv.active_count <- 0;
    for i = 0 to sv.sspec.min_workers - 1 do
      sv.workers.(i).active <- true;
      sv.active_count <- sv.active_count + 1;
      Osmodel.Kernel.wake t.kern sv.workers.(i).wthread
    done
  end

let on_handled t f = t.handled_hook <- Some f

(* ---------- Construction --------------------------------------------- *)

(* Process-wide so every service across every simulated host gets a
   distinct fake code page; atomic so stacks built for different
   shards can never tear it. Shard setup runs on the coordinator in
   shard order, so the assignment stays deterministic. *)
let[@nondet_ok] next_code_ptr = Atomic.make 0x4000_0000

let[@nondet_ok] fresh_code_ptrs n =
  Array.init n (fun i ->
      let base = Int64.of_int (Atomic.fetch_and_add next_code_ptr 0x1000) in
      Int64.add base (Int64.of_int (i * 64)))

let create engine ~cfg ~ncores ?kernel_costs
    ?(mirror_mode = Sched_mirror.Push) ?(dispatchers = 2)
    ?(fault = Fault.Plan.none) ?metrics ?tracer ?sanitize ~services ~egress
    () =
  if List.is_empty services then invalid_arg "Stack.create: no services";
  if dispatchers < 1 then invalid_arg "Stack.create: need a dispatcher";
  let sanitize =
    match sanitize with
    | Some _ -> sanitize
    | None ->
        if cfg.Config.sanitize then Some (Sanitize.create engine) else None
  in
  let kern =
    match kernel_costs with
    | Some costs -> Osmodel.Kernel.create engine ~ncores ~costs ()
    | None -> Osmodel.Kernel.create engine ~ncores ()
  in
  let stage_delay =
    (* The coherence choke point: with probability [fill_delay] a fill
       stays in flight for [fill_delay_ns] — longer than the TRYAGAIN
       timeout means the worker recovers through a real dummy fill
       while the data is still coming. *)
    if fault.Fault.Plan.fill_delay > 0. then begin
      let frng = Fault.Plan.derived_rng fault ~salt:21 in
      Some
        (fun () ->
          if Sim.Rng.float frng < fault.Fault.Plan.fill_delay then
            fault.Fault.Plan.fill_delay_ns
          else 0)
    end
    else None
  in
  let ha =
    Coherence.Home_agent.create engine cfg.Config.profile ?stage_delay
      ~timeout:cfg.Config.tryagain_timeout ()
  in
  let smirror = Sched_mirror.create ~mode:mirror_mode cfg.Config.profile kern in
  let metrics =
    match metrics with Some m -> m | None -> Obs.Metrics.create ()
  in
  let tracer =
    match tracer with Some tr -> tr | None -> Obs.Tracer.create ()
  in
  Obs.Metrics.derive metrics "ha_delayed_fills" (fun () ->
      Coherence.Home_agent.delayed_stages ha);
  Obs.Metrics.derive metrics "ha_tryagains" (fun () ->
      Coherence.Home_agent.tryagains ha);
  let t =
    {
      engine;
      cfg;
      kern;
      ha;
      smirror;
      dmx = Demux.create ();
      sched = Nic_sched.create ~shed:cfg.Config.shed ();
      egress;
      counters = Sim.Counter.group "lauberhorn";
      inflight = Hashtbl.create 4096;
      services = Hashtbl.create 32;
      dispatchers = [||];
      parked_eps = Hashtbl.create 64;
      telemetry = Telemetry.create ~metrics ();
      metrics;
      tracer;
      trk = Obs.Tracer.track tracer "lauberhorn";
      trk_detail = Obs.Tracer.track tracer "nic-pipeline";
      fault_active = not (Fault.Plan.is_none fault);
      remotes = Hashtbl.create 16;
      address = None;
      trace = None;
      nested_conts = Rpc.Continuation.create ();
      next_dispatch_id = Int64.shift_left 1L 62;
      mac = None;
      handled_hook = None;
      m_kills = Obs.Metrics.counter metrics "kills";
      m_respawns = Obs.Metrics.counter metrics "respawns";
      m_stale = Obs.Metrics.counter metrics "stale_dispatch_caught";
      m_crash_nacks = Obs.Metrics.counter metrics "crash_nacks";
      m_requeues = Obs.Metrics.counter metrics "requeues";
      m_sheds = Obs.Metrics.counter metrics "sheds";
      m_drop_full = Obs.Metrics.counter metrics "drop_full";
      m_drop_shed = Obs.Metrics.counter metrics "drop_shed";
      sanitize;
      mwatch = None;
    }
  in
  (match sanitize with
  | None -> ()
  | Some z ->
      Sanitize.Coherence_watch.attach z ha;
      (* Render both sides of the scheduling state — per-core occupancy
         and per-service liveness — for the end-of-run convergence
         check. Compared only once no push is in flight. *)
      let render occupant alive =
        let b = Buffer.create 64 in
        for core = 0 to ncores - 1 do
          (match occupant ~core with
          | Some (pid, tid) -> Buffer.add_string b (Printf.sprintf "%d.%d" pid tid)
          | None -> Buffer.add_char b '-');
          Buffer.add_char b ' '
        done;
        Hashtbl.fold (fun sid sv acc -> (sid, sv) :: acc) t.services []
        |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
        |> List.iter (fun (sid, sv) ->
               Buffer.add_string b
                 (Printf.sprintf "svc%d=%s "
                    sid
                    (if alive sv then "alive" else "dead")));
        Buffer.contents b
      in
      t.mwatch <-
        Some
          (Sanitize.Mirror_watch.attach z
             ~quiesced:(fun () ->
               Int.equal (Sched_mirror.in_flight_pushes smirror) 0)
             ~name:"sched-mirror"
             ~truth:(fun () ->
               render
                 (fun ~core -> Sched_mirror.kernel_truth smirror ~core)
                 (fun sv -> sv.sproc.Osmodel.Proc.alive))
             ~view:(fun () ->
               render
                 (fun ~core -> Sched_mirror.core_occupant smirror ~core)
                 (fun sv ->
                   Sched_mirror.pid_alive smirror
                     ~pid:sv.sproc.Osmodel.Proc.pid))
             ()));
  let next_ep_id = ref 0 in
  let new_endpoint ?owner () =
    let id = !next_ep_id in
    incr next_ep_id;
    let ep =
      Endpoint.create ha cfg ~id
        ~on_response:(fun r -> on_endpoint_response t r)
        ()
    in
    (match owner with
    | None -> ()
    | Some get_thread ->
        Endpoint.set_on_parked ep (fun () ->
            if park_would_starve t (get_thread ()) then begin
              Sim.Counter.incr (ctr t "park_self_kick");
              Endpoint.kick ep
            end));
    ep
  in
  (* Dispatcher kernel threads. *)
  let kproc = Osmodel.Kernel.new_process kern ~name:"kernel" in
  t.dispatchers <-
    Array.init dispatchers (fun i ->
        let d_ref = ref None in
        let dep =
          new_endpoint
            ~owner:(fun () ->
              match !d_ref with
              | Some d -> d.dthread
              | None -> invalid_arg "dispatcher not ready")
            ()
        in
        let body () =
          match !d_ref with
          | Some d -> dispatcher_loop t d 0 ()
          | None -> assert false
        in
        let dthread =
          Osmodel.Kernel.spawn kern kproc
            ~name:(Printf.sprintf "lauberhorn-disp%d" i) ~kernel_thread:true
            body
        in
        let d = { dthread; dep } in
        d_ref := Some d;
        Hashtbl.replace t.parked_eps dthread.Osmodel.Proc.tid dep;
        d);
  (* Services and their workers. *)
  List.iter
    (fun sspec ->
      let svc = sspec.service in
      let sproc =
        Osmodel.Kernel.new_process kern ~name:svc.Rpc.Interface.service_name
      in
      let sv =
        { sspec; sproc; workers = [||]; active_count = 0;
          limbo = Queue.create () }
      in
      let workers =
        Array.init sspec.max_workers (fun widx ->
            let w_ref = ref None in
            let wep =
              new_endpoint
                ~owner:(fun () ->
                  match !w_ref with
                  | Some w -> w.wthread
                  | None -> invalid_arg "worker not ready")
                ()
            in
            let body () =
              match !w_ref with
              | Some w -> worker_loop t sv w ()
              | None -> assert false
            in
            let wthread =
              Osmodel.Kernel.spawn kern sproc
                ~name:
                  (Printf.sprintf "%s-w%d" svc.Rpc.Interface.service_name
                     widx)
                body
            in
            let w =
              {
                widx;
                wthread;
                wep;
                wtx = None;
                active = false;
                starting = false;
                cpu_idx = 0;
                empty_cycles = 0;
              }
            in
            w.wtx <-
              Some
                (Tx_endpoint.create ha cfg ~id:(Endpoint.id wep)
                   ~on_line:(fun image -> on_tx_line t image)
                   ());
            w_ref := Some w;
            Hashtbl.replace t.parked_eps wthread.Osmodel.Proc.tid wep;
            w)
      in
      sv.workers <- workers;
      let code_ptrs =
        fresh_code_ptrs
          (List.fold_left
             (fun acc m -> max acc (m.Rpc.Interface.method_id + 1))
             1 svc.Rpc.Interface.methods)
      in
      let data_ptr =
        Int64.of_int (0x7000_0000 + (sproc.Osmodel.Proc.pid * 0x10000))
      in
      Hashtbl.replace t.services svc.Rpc.Interface.service_id sv;
      Demux.bind t.dmx ~port:sspec.port
        {
          Demux.service = svc;
          pid = sproc.Osmodel.Proc.pid;
          endpoint = workers.(0).wep;
          code_ptrs;
          data_ptr;
        };
      (* Hot services start with min_workers already parked. *)
      for i = 0 to sspec.min_workers - 1 do
        workers.(i).active <- true;
        sv.active_count <- sv.active_count + 1;
        Osmodel.Kernel.wake kern workers.(i).wthread
      done)
    services;
  (* Start dispatchers. *)
  Array.iter (fun d -> Osmodel.Kernel.wake kern d.dthread) t.dispatchers;
  (* Crash lifecycle, as the NIC perceives it: the teardown sweep and
     the limbo redelivery both run when the corresponding push lands,
     not when the kernel-side event happens. *)
  Sched_mirror.on_pid_dead smirror (fun pid ->
      Hashtbl.iter
        (fun _sid sv ->
          if Int.equal sv.sproc.Osmodel.Proc.pid pid then
            sweep_dead_service t sv)
        t.services);
  Sched_mirror.on_pid_respawn smirror (fun pid ->
      Hashtbl.iter
        (fun _sid sv ->
          if Int.equal sv.sproc.Osmodel.Proc.pid pid then drain_limbo t sv)
        t.services);
  (* Preemption: a thread queued behind a parked occupant gets the core
     via a TRYAGAIN kick (paper Â§5.1). *)
  Osmodel.Kernel.on_wake_enqueue kern (fun ~core _th ->
      match Osmodel.Kernel.current kern ~core with
      | None -> ()
      | Some occupant -> (
          match
            Hashtbl.find_opt t.parked_eps occupant.Osmodel.Proc.tid
          with
          | Some ep when Endpoint.parked ep ->
              Sim.Counter.incr (ctr t "preempt_kick");
              Endpoint.kick ep
          | Some _ | None -> ()));
  (* The MAC front end. *)
  let mac =
    Nic.Mac.create engine ~sink:(fun f -> nic_rx t f) ()
  in
  t.mac <- Some mac;
  t

let ingress t frame =
  (* Tracing on: open the RPC's root span at the instant the request
     frame hits the NIC — the same sim time the harness stamps
     note_sent, so the root span IS the measured end-system latency.
     The wire-format decode is only paid when tracing. *)
  if Obs.Tracer.is_enabled t.tracer then begin
    match Rpc.Wire_format.decode frame.Net.Frame.payload with
    | Ok w when Rpc.Wire_format.is_request w ->
        Obs.Tracer.rpc_begin t.tracer ~rpc:w.Rpc.Wire_format.rpc_id
          ~track:t.trk (Sim.Engine.now t.engine);
        (match w.Rpc.Wire_format.ctx with
        | Some c ->
            Obs.Tracer.set_context t.tracer ~rpc:w.Rpc.Wire_format.rpc_id c
        | None -> ())
    | Ok _ | Error _ -> ()
  end;
  match t.mac with
  | Some mac -> Nic.Mac.rx mac frame
  | None -> invalid_arg "Stack.ingress: MAC not initialised"

let active_workers t ~service_id = (service_rt t service_id).active_count

let telemetry t = t.telemetry
let metrics t = t.metrics
let tracer t = t.tracer
let attach_trace t trace = t.trace <- Some trace
let set_address t address = t.address <- Some address

let add_remote_service t ~service_id ~server ~response_schema =
  if Option.is_some (Demux.port_of_service t.dmx ~service_id) then
    invalid_arg "Stack.add_remote_service: service is local";
  Hashtbl.replace t.remotes service_id { server; response_schema }
let dispatcher_count t = Array.length t.dispatchers

let retire_dispatcher t ~idx =
  if idx < 0 || idx >= Array.length t.dispatchers then
    invalid_arg "Stack.retire_dispatcher: no such dispatcher";
  let d = t.dispatchers.(idx) in
  let ok = Endpoint.retire d.dep in
  if ok then Sim.Counter.incr (ctr t "dispatcher_retire_sent");
  ok

let resume_dispatcher t ~idx =
  if idx < 0 || idx >= Array.length t.dispatchers then
    invalid_arg "Stack.resume_dispatcher: no such dispatcher";
  let d = t.dispatchers.(idx) in
  match d.dthread.Osmodel.Proc.state with
  | Osmodel.Proc.Blocked -> Osmodel.Kernel.wake t.kern d.dthread
  | Osmodel.Proc.Ready | Osmodel.Proc.Running _ | Osmodel.Proc.Exited -> ()

let endpoint_of t ~service_id ~worker =
  let sv = service_rt t service_id in
  if worker < 0 || worker >= Array.length sv.workers then
    invalid_arg "Stack.endpoint_of: no such worker";
  sv.workers.(worker).wep

let driver t =
  Harness.Driver.make ~name:"lauberhorn"
    ~ingress:(fun f -> ingress t f)
    ~kernel:t.kern ~counters:t.counters ~metrics:t.metrics
    ~describe:(fun () ->
      Printf.sprintf "lauberhorn(%s, %d cores, timeout=%s)"
        (prof t).Coherence.Interconnect.name
        (Osmodel.Kernel.ncores t.kern)
        (Format.asprintf "%a" Sim.Units.pp_duration
           t.cfg.Config.tryagain_timeout))
    ()
