(** A Lauberhorn communication end-point: two CONTROL cache lines homed
    on the NIC plus auxiliary lines (paper §5.1, Figure 4), with the
    NIC-side protocol state machine.

    Double buffering: requests are staged alternately into the two
    CONTROL lines. When the CPU — having written its response into the
    line that carried request [n] — loads the other line for request
    [n+1], the home agent sees that load; the endpoint then pulls the
    response line back with a fetch-exclusive and hands it to the
    stack for transmission. At most two requests are in flight per
    endpoint; beyond that, requests wait in a bounded NIC SRAM queue.

    CONTROL lines carry real encoded {!Message} images through the
    {!Coherence.Home_agent}; auxiliary-line traffic is priced on the
    interconnect profile without materialising each line. *)

type t

val create :
  Coherence.Home_agent.t -> Config.t -> id:int ->
  on_response:(Message.response -> unit) -> unit -> t
(** [on_response] fires when a response line (plus any aux/DMA payload
    time) has been collected from the CPU cache. *)

val id : t -> int

val ctrl_line : t -> int -> Coherence.Home_agent.line_id
(** The two CONTROL lines, index 0 and 1 (CPU side loads these). *)

val deliver : ?kernel_dispatch:bool -> t -> Message.request -> bool
(** NIC delivers a request: stages it into the current CONTROL line if
    a credit is free, else queues it in NIC SRAM. Returns [false] when
    the SRAM queue is also full (drop — counted). Aux-line and
    DMA-fallback transfer time for oversized arguments is charged
    before the line becomes visible. [kernel_dispatch] wraps the line
    as a KERNEL_DISPATCH envelope for dispatcher endpoints (default
    plain REQUEST). *)

val set_on_parked : t -> (unit -> unit) -> unit
(** Fires whenever a CPU load parks on the current CONTROL line with
    nothing to deliver — the "a core is polling here" signal consumed
    by the scheduling logic. *)

val parked : t -> bool
(** A load is parked on the line the next request would go to. *)

val kick : t -> unit
(** Answer a parked load with TRYAGAIN immediately (preemption path). *)

val retire : t -> bool
(** Answer a parked load with a RETIRE line (paper §5.2: reallocating a
    non-preemptible kernel thread waiting on Lauberhorn). Returns
    [false] when no load is parked — retirement needs the thread at its
    synchronization point. Does not consume a delivery credit. *)

val reset : t -> (Message.request * bool) list
(** Crash teardown: tear down both CONTROL lines (parked loads are
    discarded without answering — the loaders are dead — and staged or
    CPU-written data dropped), zero the credit state, and return the
    NIC-SRAM queue contents in arrival order (with their
    [kernel_dispatch] flags). The SRAM queue lives on the NIC, not in
    the crashed process, so those requests survive for requeueing; the
    ≤2 staged requests do not — the caller must NACK them from its
    in-flight table. *)

val queue_depth : t -> int
(** Requests waiting in NIC SRAM (excludes the ≤2 staged in lines). *)

val in_flight : t -> int
(** Requests staged/being-handled whose responses are not collected. *)

val stats_delivered : t -> int
val stats_responses : t -> int
val stats_dropped : t -> int
