(** The NIC's mirror of kernel scheduling state (paper §4–5.2).

    In [Push] mode — the paper's design — the kernel pushes every
    occupancy change over the coherent interconnect; the NIC's view
    lags reality by one store-release latency but costs nothing to
    consult at dispatch time. The [Query] ablation (E3 variant) models
    a conventional untrusted-NIC design in which the NIC must ask the
    host (one MMIO round trip) at each dispatch, showing why sharing
    state beats querying for it. *)

type mode = Push | Query

type t

val create :
  mode:mode -> Coherence.Interconnect.profile -> Osmodel.Kernel.t -> t
(** Installs a context-switch hook on the kernel (Push mode applies the
    update after the push latency; Query mode keeps no copy). *)

val mode : t -> mode

val lookup_cost : t -> Sim.Units.duration
(** NIC-side cost of consulting the scheduling state at dispatch time:
    0 in [Push] mode, one MMIO read in [Query] mode. *)

val core_occupant : t -> core:int -> (int * int) option
(** The NIC's belief about the [(pid, tid)] on a core. *)

val kernel_truth : t -> core:int -> (int * int) option
(** The kernel's actual [(pid, tid)] on a core, bypassing the mirror —
    the reference the sanitizer compares {!core_occupant} against. *)

val cores_running : t -> pid:int -> int list
(** Cores believed to run threads of the process. *)

val is_running : t -> pid:int -> bool

val pid_alive : t -> pid:int -> bool
(** The NIC's belief about whether the process exists. In [Push] mode a
    kill becomes visible only after the store-release push lands — the
    stale window during which a dispatch can race a corpse — and a
    respawn likewise. In [Query] mode the kernel's truth is reflected
    immediately (the MMIO cost is the caller's to charge via
    {!lookup_cost}). *)

val on_pid_dead : t -> (int -> unit) -> unit
(** Subscribe to process-death notifications {e as the NIC perceives
    them}: the callback runs when the death push lands (after the lag
    in Push mode, immediately in Query mode), in subscription order.
    This is where the NIC-side teardown sweep hangs. *)

val on_pid_respawn : t -> (int -> unit) -> unit
(** Same, for respawns: runs when the NIC learns the process is back
    (after the lag in Push mode) — where requeueing of retained
    requests hangs. *)

val pushes : t -> int
(** State-update messages received (Push mode: occupancy, death, and
    respawn pushes; Query mode counts lifecycle notifications only). *)

val in_flight_pushes : t -> int
(** Pushes scheduled but not yet landed — nonzero exactly during the
    stale window. The sanitizer's convergence check only compares
    mirror and kernel once this is zero (lag quiesced). Always 0 in
    [Query] mode. *)
