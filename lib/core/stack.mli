(** The end-to-end Lauberhorn server stack (paper §5, Figures 3–5).

    Ties together every piece: frames enter through the MAC, stream
    through the hardware pipeline (parse → demux → hardware unmarshal →
    scheduling-state lookup), and are dispatched:

    - {b fast path}: a worker thread of the target service is parked on
      its endpoint's CONTROL line → the NIC stages the prepared line;
      the stalled load returns with code pointer + arguments; the
      handler runs with zero software dispatch overhead;
    - {b slow path}: no worker is active → the request still lands in
      the endpoint, and a KERNEL_DISPATCH message goes to a kernel
      dispatcher thread's own CONTROL lines; the dispatcher wakes a
      worker, which enters the user-mode loop (Figure 5).

    Workers receive TRYAGAIN on timeout or when the NIC kicks them to
    free a core (the kernel's wake-enqueue signal); they then yield,
    and after [tryagains_before_yield] consecutive empty cycles
    deactivate, implementing NIC-driven core scaling. Large payloads
    fall back to DMA per the configured threshold. *)

type service_spec = {
  service : Rpc.Interface.service_def;
  port : int;
  min_workers : int;  (** Workers kept active even when idle. *)
  max_workers : int;  (** Scale-up ceiling (≤ threads created). *)
}

val spec :
  ?min_workers:int -> ?max_workers:int -> port:int ->
  Rpc.Interface.service_def -> service_spec
(** Defaults: min 1, max 1. *)

type t

val create :
  Sim.Engine.t -> cfg:Config.t -> ncores:int ->
  ?kernel_costs:Osmodel.Kernel.costs ->
  ?mirror_mode:Sched_mirror.mode -> ?dispatchers:int ->
  ?fault:Fault.Plan.t -> ?metrics:Obs.Metrics.t -> ?tracer:Obs.Tracer.t ->
  ?sanitize:Sanitize.t ->
  services:service_spec list -> egress:(Net.Frame.t -> unit) -> unit -> t
(** Builds kernel, home agent, endpoints, demux table, mirror,
    dispatcher kernel threads and service worker threads; services with
    [min_workers > 0] start with that many workers already parked
    (hot services). [dispatchers] defaults to 2.

    [fault] (default {!Fault.Plan.none}) arms the coherence choke
    point: fills are delayed per the plan's [fill_delay] knobs, forcing
    workers through real TRYAGAIN recovery, and fault/recovery events
    are fed into {!Telemetry} and the stack's metrics registry. The
    default plan draws no randomness and changes nothing.

    [metrics] (default a fresh registry) unifies the stack's exported
    scalars: the home agent's delayed-fill/TRYAGAIN tallies register as
    derived gauges and telemetry fault counters land there too.

    [tracer] (default a fresh, disabled tracer) collects per-RPC causal
    spans: a root span opened at {!ingress}, stage spans at each
    pipeline boundary (mac → nic_pipeline → queue → handler → collect →
    tx, with parse/demux/unmarshal detail spans on their own track),
    closed at egress. Stage durations telescope: they sum exactly to
    the recorder-measured end-system latency. Disabled, every emission
    is one branch.

    [sanitize] attaches the runtime sanitizers: home-agent generation
    discipline ({!Sanitize.Coherence_watch}) and scheduler-mirror
    convergence plus swept-pid dispatch checks
    ({!Sanitize.Mirror_watch}). When absent and [cfg.sanitize] is set,
    the stack creates its own session (retrieve it with {!sanitizer}
    and call {!Sanitize.finish} after the run). *)

val ingress : t -> Net.Frame.t -> unit
(** Connect as the wire's deliver callback. *)

val kernel : t -> Osmodel.Kernel.t
val home_agent : t -> Coherence.Home_agent.t
val mirror : t -> Sched_mirror.t

val sanitizer : t -> Sanitize.t option
(** The attached sanitizer session, if any. *)


val counters : t -> Sim.Counter.group
val config : t -> Config.t

val active_workers : t -> service_id:int -> int
(** Currently active (scheduled or parked) workers of a service. *)

val endpoint_of : t -> service_id:int -> worker:int -> Endpoint.t

val telemetry : t -> Telemetry.t
(** NIC-gathered per-service statistics (paper §6). *)

val metrics : t -> Obs.Metrics.t
(** The unified metrics registry this stack exports through. *)

val tracer : t -> Obs.Tracer.t
(** The stack's span collector ({!Obs.Tracer.enable} to record). *)

val set_address : t -> Net.Frame.endpoint -> unit
(** This machine's network identity (source of outbound nested calls).
    Defaults to 10.0.0.1 / 02:00:00:00:00:01. *)

val add_remote_service :
  t -> service_id:int -> server:Net.Frame.endpoint ->
  response_schema:Rpc.Schema.t -> unit
(** Route nested calls to [service_id] over the wire to another
    machine ([server] is its address and service port). The response
    schema is registered so the NIC can unmarshal remote replies —
    microservice chains span machines in real deployments.
    @raise Invalid_argument if the service is hosted locally. *)

val attach_trace : t -> Sim.Trace.t -> unit
(** Stream rx/dispatch/tryagain/activate/tx events into a trace ring
    (paper §6: tracing and debugging via close OS integration). The
    trace must be {!Sim.Trace.enable}d to record. *)

(** {1 Crash/restart lifecycle} *)

val kill_service : t -> service_id:int -> unit
(** Crash the service's process: every thread dies where it stands
    (kernel-side, immediately). The NIC is {e not} told synchronously —
    its scheduler mirror learns after the usual push lag, and only then
    does the NIC-side teardown run: CONTROL lines are reset, requests
    the dead process held are NACKed [err_dead] from the in-flight
    table ("stale dispatches caught"), NIC-SRAM queue contents move to
    a limbo queue for redelivery, and subsequent arrivals are refused
    on the wire until a restart. During the stale window, dispatches
    can still land on the corpse; they are caught by the sweep — never
    silently lost. No-op if already dead. *)

val restart_service : t -> service_id:int -> unit
(** Bring a killed service back: same pid, fresh worker threads over
    the surviving endpoints, [min_workers] re-activated. When the
    respawn push lands at the NIC, limbo'd requests are redelivered
    (counted as "requeues"). No-op if alive. *)

val on_handled : t -> (unit -> unit) -> unit
(** Register a callback invoked after each RPC handled by any worker
    (the server-fault injector's [crash_after_rpcs] trigger). *)

val dispatcher_count : t -> int

val retire_dispatcher : t -> idx:int -> bool
(** Send RETIRE to a parked dispatcher kernel thread: it leaves its CPU
    entirely (paper §5.2's core-reallocation path for non-preemptible
    kernels). Returns [false] if that dispatcher is not currently
    parked. *)

val resume_dispatcher : t -> idx:int -> unit
(** Wake a retired dispatcher; it re-enters its monitoring loop. *)

val driver : t -> Harness.Driver.t
(** Package as a harness driver. *)
