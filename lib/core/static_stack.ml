type service_spec = { service : Rpc.Interface.service_def; port : int }

let spec ~port service = { service; port }

type inflight = {
  mdef : Rpc.Interface.method_def;
  args : Rpc.Value.t;
  svc_id : int;  (* owning service, for the crash-teardown sweep *)
  reply_src : Net.Frame.endpoint;
  reply_dst : Net.Frame.endpoint;
  mutable full_body : bytes;
}

type worker = {
  mutable wthread : Osmodel.Proc.thread;  (* replaced on restart *)
  wep : Endpoint.t;
  mutable cpu_idx : int;
  limbo : Message.request Queue.t;
      (* NIC-SRAM survivors of a crash, redelivered on restart *)
}

type t = {
  engine : Sim.Engine.t;
  cfg : Config.t;
  kern : Osmodel.Kernel.t;
  ha : Coherence.Home_agent.t;
  dmx : Demux.t;
  egress : Net.Frame.t -> unit;
  counters : Sim.Counter.group;
  inflight : (int64, inflight) Hashtbl.t;
  by_service : (int, worker) Hashtbl.t;
  core_map : (int, int) Hashtbl.t;
  dead : (int, unit) Hashtbl.t;  (* crashed service ids *)
  metrics : Obs.Metrics.t;
  m_kills : Obs.Metrics.counter;
  m_respawns : Obs.Metrics.counter;
  m_stale : Obs.Metrics.counter;
  m_crash_nacks : Obs.Metrics.counter;
  m_requeues : Obs.Metrics.counter;
  m_drop_full : Obs.Metrics.counter;
  tracer : Obs.Tracer.t;
  trk : int;
  trk_detail : int;
  mutable mac : Nic.Mac.t option;
}

let kernel t = t.kern
let counters t = t.counters
let metrics t = t.metrics
let tracer t = t.tracer
let ctr t name = Sim.Counter.counter t.counters name
let prof t = t.cfg.Config.profile
let line_bytes t = (prof t).Coherence.Interconnect.cache_line_bytes
let mem_read_cost bytes = 100 + (bytes / 25)

let span_stage t ~rpc name =
  Obs.Tracer.stage t.tracer ~rpc ~track:t.trk ~name (Sim.Engine.now t.engine)

let pipeline_details t ~rpc (b : Pipeline.breakdown) =
  if Obs.Tracer.is_enabled t.tracer then begin
    let stop = Sim.Engine.now t.engine in
    let seg = ref (stop - b.Pipeline.total) in
    let detail name d =
      if d > 0 then begin
        Obs.Tracer.detail t.tracer ~rpc ~track:t.trk_detail ~name ~start:!seg
          ~stop:(!seg + d);
        seg := !seg + d
      end
    in
    detail "parse" b.Pipeline.parse;
    detail "demux" b.Pipeline.demux;
    detail "hw_unmarshal" b.Pipeline.deser
  end

(* ---------- The pinned worker loop ---------- *)

let respond_line t w ~rpc_id ~body =
  let cap = Message.response_inline_capacity ~line_bytes:(line_bytes t) in
  let inline_len = min cap (Bytes.length body) in
  let rest = Bytes.length body - inline_len in
  let resp_aux_count =
    if rest <= 0 then 0 else (rest + line_bytes t - 1) / line_bytes t
  in
  Coherence.Home_agent.cpu_store t.ha
    (Endpoint.ctrl_line w.wep w.cpu_idx)
    (Message.encode_response ~line_bytes:(line_bytes t)
       {
         Message.resp_rpc_id = rpc_id;
         status = 0;
         total_len = Bytes.length body;
         inline_body = Net.Slice.make body ~off:0 ~len:inline_len;
         resp_aux_count;
       })

let rec worker_loop t w () =
  (* Bind the thread at park time: a fill completing after a kill must
     be judged against the thread that parked, not a respawned one. *)
  let th = w.wthread in
  Osmodel.Kernel.stall_begin t.kern th;
  Coherence.Home_agent.cpu_load t.ha
    (Endpoint.ctrl_line w.wep w.cpu_idx)
    (fun fill ->
      if Osmodel.Proc.is_exited th then ()
      else begin
      Osmodel.Kernel.stall_end t.kern th;
      match fill with
      | Coherence.Home_agent.Tryagain ->
          (* Share the core with any colocated pinned service: yield
             and come straight back. No retirement — the static world
             never gives the core up for good. *)
          Osmodel.Kernel.yield t.kern w.wthread (fun () -> worker_loop t w ())
      | Coherence.Home_agent.Data line -> (
          match Message.decode line with
          | Ok (Message.Request r) -> handle t w r
          | Ok (Message.Tryagain | Message.Retire | Message.Kernel_dispatch _)
          | Error _ ->
              Sim.Counter.incr (ctr t "worker_bad_line");
              worker_loop t w ())
      end)

and handle t w (r : Message.request) =
  match Hashtbl.find_opt t.inflight r.Message.rpc_id with
  | None ->
      Sim.Counter.incr (ctr t "worker_orphan_request");
      worker_loop t w ()
  | Some inf ->
      span_stage t ~rpc:r.Message.rpc_id "queue";
      let dma_read =
        if r.Message.via_dma then mem_read_cost r.Message.total_args else 0
      in
      Osmodel.Kernel.run_for t.kern w.wthread ~kind:Osmodel.Cpu_account.User
        (inf.mdef.Rpc.Interface.handler_time + dma_read) (fun () ->
          span_stage t ~rpc:r.Message.rpc_id "handler";
          let result = inf.mdef.Rpc.Interface.execute inf.args in
          let body = Rpc.Codec.encode result in
          inf.full_body <- body;
          respond_line t w ~rpc_id:r.Message.rpc_id ~body;
          w.cpu_idx <- 1 - w.cpu_idx;
          Sim.Counter.incr (ctr t "rpcs_handled");
          worker_loop t w ())

(* ---------- NIC side ---------- *)

let tx_mac_delay = Sim.Units.ns 200

let on_endpoint_response t (resp : Message.response) =
  match Hashtbl.find_opt t.inflight resp.Message.resp_rpc_id with
  | None -> Sim.Counter.incr (ctr t "orphan_response")
  | Some inf ->
      Hashtbl.remove t.inflight resp.Message.resp_rpc_id;
      span_stage t ~rpc:resp.Message.resp_rpc_id "collect";
      let reply =
        {
          Rpc.Wire_format.rpc_id = resp.Message.resp_rpc_id;
          service_id = 0;
          method_id = inf.mdef.Rpc.Interface.method_id;
          kind = Rpc.Wire_format.Response;
          ctx =
            Obs.Tracer.context_of t.tracer ~rpc:resp.Message.resp_rpc_id;
          body = inf.full_body;
        }
      in
      let frame =
        Net.Frame.make ~src:inf.reply_src ~dst:inf.reply_dst
          (Rpc.Wire_format.encode reply)
      in
      ignore
        (Sim.Engine.schedule_after t.engine ~after:tx_mac_delay (fun () ->
             Sim.Counter.incr (ctr t "tx_frames");
             span_stage t ~rpc:resp.Message.resp_rpc_id "tx";
             Obs.Tracer.rpc_end t.tracer ~rpc:resp.Message.resp_rpc_id
               (Sim.Engine.now t.engine);
             t.egress frame))

(* Explicit transport-level reject (see Stack.nack). *)
let nack t ~rpc_id ~service_id ~src ~dst ~code =
  let reply =
    {
      Rpc.Wire_format.rpc_id;
      service_id;
      method_id = 0;
      kind = Rpc.Wire_format.Error_reply code;
      ctx = Obs.Tracer.context_of t.tracer ~rpc:rpc_id;
      body = Bytes.empty;
    }
  in
  let frame = Net.Frame.make ~src ~dst (Rpc.Wire_format.encode reply) in
  ignore
    (Sim.Engine.schedule_after t.engine ~after:tx_mac_delay (fun () ->
         Sim.Counter.incr (ctr t "tx_frames");
         Obs.Tracer.rpc_end t.tracer ~rpc:rpc_id (Sim.Engine.now t.engine);
         t.egress frame))

let rec nic_rx t frame =
  Sim.Counter.incr (ctr t "rx_frames");
  match Rpc.Wire_format.decode frame.Net.Frame.payload with
  | Error _ -> Sim.Counter.incr (ctr t "rx_bad_rpc")
  | Ok wire -> (
      span_stage t ~rpc:wire.Rpc.Wire_format.rpc_id "mac";
      match Demux.lookup t.dmx ~port:frame.Net.Frame.udp.Net.Udp.dst_port with
      | None -> Sim.Counter.incr (ctr t "rx_no_service")
      | Some entry -> (
          match
            Rpc.Interface.find_method entry.Demux.service
              wire.Rpc.Wire_format.method_id
          with
          | None -> Sim.Counter.incr (ctr t "rx_no_method")
          | Some mdef -> (
              match
                Rpc.Codec.decode mdef.Rpc.Interface.request
                  wire.Rpc.Wire_format.body
              with
              | Error _ -> Sim.Counter.incr (ctr t "rx_bad_args")
              | Ok args ->
                  (* No scheduling state to consult: static binding. *)
                  let breakdown =
                    Pipeline.rx t.cfg ~sched_lookup:0
                      ~fields:(Rpc.Value.field_count args)
                      ~arg_bytes:(Bytes.length wire.Rpc.Wire_format.body)
                  in
                  ignore
                    (Sim.Engine.schedule_after t.engine
                       ~after:breakdown.Pipeline.total (fun () ->
                         pipeline_details t ~rpc:wire.Rpc.Wire_format.rpc_id
                           breakdown;
                         span_stage t ~rpc:wire.Rpc.Wire_format.rpc_id
                           "nic_pipeline";
                         dispatch t entry frame wire mdef args)))))

and dispatch t (entry : Demux.entry) frame (wire : Rpc.Wire_format.t) mdef
    args =
  let rpc_id = wire.Rpc.Wire_format.rpc_id in
  if Hashtbl.mem t.inflight rpc_id then
    Sim.Counter.incr (ctr t "duplicate_rpc_id")
  else if Hashtbl.mem t.dead entry.Demux.service.Rpc.Interface.service_id
  then begin
    (* Statically-bound target is down: refuse on the wire. *)
    Obs.Metrics.incr t.m_crash_nacks;
    nack t ~rpc_id ~service_id:entry.Demux.service.Rpc.Interface.service_id
      ~src:(Net.Frame.dst_endpoint frame) ~dst:(Net.Frame.src_endpoint frame)
      ~code:Rpc.Wire_format.err_dead
  end
  else begin
    let body = wire.Rpc.Wire_format.body in
    let arg_bytes = Bytes.length body in
    let window = Config.endpoint_window t.cfg in
    let via_dma =
      arg_bytes > t.cfg.Config.dma_threshold || arg_bytes > window
    in
    let inline_cap = Config.inline_capacity t.cfg in
    let inline_len = min inline_cap arg_bytes in
    let aux_count =
      if via_dma then 0
      else
        let rest = arg_bytes - inline_len in
        if rest <= 0 then 0 else (rest + line_bytes t - 1) / line_bytes t
    in
    Hashtbl.replace t.inflight rpc_id
      {
        mdef;
        args;
        svc_id = entry.Demux.service.Rpc.Interface.service_id;
        reply_src = Net.Frame.dst_endpoint frame;
        reply_dst = Net.Frame.src_endpoint frame;
        full_body = Bytes.empty;
      };
    let w =
      Hashtbl.find t.by_service entry.Demux.service.Rpc.Interface.service_id
    in
    let msg =
      {
        Message.rpc_id;
        service_id = entry.Demux.service.Rpc.Interface.service_id;
        method_id = mdef.Rpc.Interface.method_id;
        code_ptr =
          Demux.code_ptr entry ~method_id:mdef.Rpc.Interface.method_id;
        data_ptr = entry.Demux.data_ptr;
        total_args = arg_bytes;
        inline_args = Net.Slice.make body ~off:0 ~len:inline_len;
        aux_count;
        via_dma;
      }
    in
    if not (Endpoint.deliver w.wep msg) then begin
      Hashtbl.remove t.inflight rpc_id;
      Sim.Counter.incr (ctr t "nic_queue_drop");
      Obs.Metrics.incr t.m_drop_full
    end
  end

(* ---------- Crash/restart lifecycle ---------- *)

(* The ablation has no scheduler mirror, so there is no push lag to
   model: the kill both tears the process down and sweeps the NIC side
   in one step. NIC-SRAM survivors go to limbo for redelivery; staged
   requests are NACKed — never silently lost. *)
let kill_service t ~service_id =
  match Hashtbl.find_opt t.by_service service_id with
  | None ->
      invalid_arg
        (Printf.sprintf "Static_stack: unknown service %d" service_id)
  | Some w ->
      let proc = w.wthread.Osmodel.Proc.proc in
      if proc.Osmodel.Proc.alive then begin
        Obs.Metrics.incr t.m_kills;
        Osmodel.Kernel.kill t.kern proc;
        Hashtbl.replace t.dead service_id ();
        let limbo_ids = Hashtbl.create 16 in
        List.iter
          (fun ((msg : Message.request), _kd) ->
            Hashtbl.replace limbo_ids msg.Message.rpc_id ();
            Queue.add msg w.limbo)
          (Endpoint.reset w.wep);
        let doomed = ref [] in
        Hashtbl.iter
          (fun id (inf : inflight) ->
            if
              Int.equal inf.svc_id service_id
              && not (Hashtbl.mem limbo_ids id)
            then
              doomed := (id, inf.reply_src, inf.reply_dst) :: !doomed)
          t.inflight;
        List.iter
          (fun (id, reply_src, reply_dst) ->
            Hashtbl.remove t.inflight id;
            Obs.Metrics.incr t.m_stale;
            nack t ~rpc_id:id ~service_id ~src:reply_src ~dst:reply_dst
              ~code:Rpc.Wire_format.err_dead)
          !doomed
      end

let restart_service t ~service_id =
  match Hashtbl.find_opt t.by_service service_id with
  | None ->
      invalid_arg
        (Printf.sprintf "Static_stack: unknown service %d" service_id)
  | Some w ->
      let proc = w.wthread.Osmodel.Proc.proc in
      if not proc.Osmodel.Proc.alive then begin
        Obs.Metrics.incr t.m_respawns;
        Osmodel.Kernel.respawn t.kern proc;
        Hashtbl.remove t.dead service_id;
        let name = w.wthread.Osmodel.Proc.tname in
        let affinity =
          match Hashtbl.find_opt t.core_map service_id with
          | Some c -> c
          | None -> 0
        in
        let th =
          Osmodel.Kernel.spawn t.kern proc ~name ~affinity (fun () ->
              worker_loop t w ())
        in
        w.wthread <- th;
        w.cpu_idx <- 0;
        Osmodel.Kernel.wake t.kern th;
        (* Redeliver the crash survivors. *)
        while not (Queue.is_empty w.limbo) do
          let msg = Queue.pop w.limbo in
          if Endpoint.deliver w.wep msg then Obs.Metrics.incr t.m_requeues
          else begin
            Obs.Metrics.incr t.m_crash_nacks;
            match Hashtbl.find_opt t.inflight msg.Message.rpc_id with
            | Some inf ->
                Hashtbl.remove t.inflight msg.Message.rpc_id;
                nack t ~rpc_id:msg.Message.rpc_id ~service_id
                  ~src:inf.reply_src ~dst:inf.reply_dst
                  ~code:Rpc.Wire_format.err_dead
            | None -> ()
          end
        done
      end

(* ---------- Construction ---------- *)

(* Atomic for the same reason as [Stack.next_code_ptr]: shard-safe,
   still deterministic because shard setup is coordinator-sequential. *)
let[@nondet_ok] next_code_ptr = Atomic.make 0x5000_0000

let[@nondet_ok] fresh_code_ptrs n =
  Array.init n (fun i ->
      let base = Int64.of_int (Atomic.fetch_and_add next_code_ptr 0x1000) in
      Int64.add base (Int64.of_int (i * 64)))

let create engine ~cfg ~ncores ?kernel_costs ?(fault = Fault.Plan.none)
    ?metrics ?tracer ?sanitize ~services ~egress () =
  if List.is_empty services then
    invalid_arg "Static_stack.create: no services";
  let sanitize =
    match sanitize with
    | Some _ -> sanitize
    | None ->
        if cfg.Config.sanitize then Some (Sanitize.create engine) else None
  in
  let kern =
    match kernel_costs with
    | Some costs -> Osmodel.Kernel.create engine ~ncores ~costs ()
    | None -> Osmodel.Kernel.create engine ~ncores ()
  in
  let stage_delay =
    if fault.Fault.Plan.fill_delay > 0. then begin
      let frng = Fault.Plan.derived_rng fault ~salt:22 in
      Some
        (fun () ->
          if Sim.Rng.float frng < fault.Fault.Plan.fill_delay then
            fault.Fault.Plan.fill_delay_ns
          else 0)
    end
    else None
  in
  let ha =
    Coherence.Home_agent.create engine cfg.Config.profile ?stage_delay
      ~timeout:cfg.Config.tryagain_timeout ()
  in
  let metrics =
    match metrics with Some m -> m | None -> Obs.Metrics.create ()
  in
  let tracer =
    match tracer with Some tr -> tr | None -> Obs.Tracer.create ()
  in
  Obs.Metrics.derive metrics "ha_delayed_fills" (fun () ->
      Coherence.Home_agent.delayed_stages ha);
  Obs.Metrics.derive metrics "ha_tryagains" (fun () ->
      Coherence.Home_agent.tryagains ha);
  (match sanitize with
  | None -> ()
  | Some z -> Sanitize.Coherence_watch.attach z ha);
  let t =
    {
      engine;
      cfg;
      kern;
      ha;
      dmx = Demux.create ();
      egress;
      counters = Sim.Counter.group "ccnic-static";
      inflight = Hashtbl.create 4096;
      by_service = Hashtbl.create 32;
      core_map = Hashtbl.create 32;
      dead = Hashtbl.create 8;
      metrics;
      m_kills = Obs.Metrics.counter metrics "kills";
      m_respawns = Obs.Metrics.counter metrics "respawns";
      m_stale = Obs.Metrics.counter metrics "stale_dispatch_caught";
      m_crash_nacks = Obs.Metrics.counter metrics "crash_nacks";
      m_requeues = Obs.Metrics.counter metrics "requeues";
      m_drop_full = Obs.Metrics.counter metrics "drop_full";
      tracer;
      trk = Obs.Tracer.track tracer "ccnic-static";
      trk_detail = Obs.Tracer.track tracer "nic-pipeline";
      mac = None;
    }
  in
  List.iteri
    (fun i sspec ->
      let svc = sspec.service in
      let core = i mod ncores in
      let proc =
        Osmodel.Kernel.new_process kern ~name:svc.Rpc.Interface.service_name
      in
      let wep =
        Endpoint.create ha cfg ~id:i
          ~on_response:(fun r -> on_endpoint_response t r)
          ()
      in
      let w_ref = ref None in
      let body () =
        match !w_ref with
        | Some w -> worker_loop t w ()
        | None -> assert false
      in
      let wthread =
        Osmodel.Kernel.spawn kern proc
          ~name:(svc.Rpc.Interface.service_name ^ "-pinned")
          ~affinity:core body
      in
      let w = { wthread; wep; cpu_idx = 0; limbo = Queue.create () } in
      w_ref := Some w;
      Hashtbl.replace t.by_service svc.Rpc.Interface.service_id w;
      Hashtbl.replace t.core_map svc.Rpc.Interface.service_id core;
      let code_ptrs =
        fresh_code_ptrs
          (List.fold_left
             (fun acc m -> max acc (m.Rpc.Interface.method_id + 1))
             1 svc.Rpc.Interface.methods)
      in
      Demux.bind t.dmx ~port:sspec.port
        {
          Demux.service = svc;
          pid = proc.Osmodel.Proc.pid;
          endpoint = wep;
          code_ptrs;
          data_ptr = Int64.of_int (0x7800_0000 + (i * 0x10000));
        };
      Osmodel.Kernel.wake kern wthread)
    services;
  let mac = Nic.Mac.create engine ~sink:(fun f -> nic_rx t f) () in
  t.mac <- Some mac;
  t

let ingress t frame =
  if Obs.Tracer.is_enabled t.tracer then begin
    match Rpc.Wire_format.decode frame.Net.Frame.payload with
    | Ok w when Rpc.Wire_format.is_request w ->
        Obs.Tracer.rpc_begin t.tracer ~rpc:w.Rpc.Wire_format.rpc_id
          ~track:t.trk (Sim.Engine.now t.engine);
        (match w.Rpc.Wire_format.ctx with
        | Some c ->
            Obs.Tracer.set_context t.tracer ~rpc:w.Rpc.Wire_format.rpc_id c
        | None -> ())
    | Ok _ | Error _ -> ()
  end;
  match t.mac with
  | Some mac -> Nic.Mac.rx mac frame
  | None -> invalid_arg "Static_stack.ingress: MAC not initialised"

let core_of_service t ~service_id =
  match Hashtbl.find_opt t.core_map service_id with
  | Some c -> c
  | None ->
      invalid_arg
        (Printf.sprintf "Static_stack: unknown service %d" service_id)

let driver t =
  Harness.Driver.make ~name:"ccnic-static"
    ~ingress:(fun f -> ingress t f)
    ~kernel:t.kern ~counters:t.counters ~metrics:t.metrics
    ~describe:(fun () ->
      Printf.sprintf "ccnic-static(%s, %d cores, %d services)"
        (prof t).Coherence.Interconnect.name
        (Osmodel.Kernel.ncores t.kern)
        (Hashtbl.length t.by_service))
    ()
