type t = {
  profile : Coherence.Interconnect.profile;
  tryagain_timeout : Sim.Units.duration;
  dma_threshold : int;
  aux_lines : int;
  nic_queue_depth : int;
  parse_delay : Sim.Units.duration;
  demux_delay : Sim.Units.duration;
  deser : Rpc.Deser_cost.profile;
  tryagains_before_yield : int;
  encrypt : bool;
  shed : bool;
  sanitize : bool;
  scheduler : Sim.Scheduler.kind;
}

let enzian =
  {
    profile = Coherence.Interconnect.eci;
    tryagain_timeout = Sim.Units.ms 15;
    dma_threshold = 4096;
    aux_lines = 31;
    nic_queue_depth = 64;
    parse_delay = Sim.Units.ns 150;
    demux_delay = Sim.Units.ns 100;
    deser = Rpc.Deser_cost.nic_pipeline;
    tryagains_before_yield = 2;
    encrypt = false;
    shed = false;
    sanitize = false;
    scheduler = Sim.Scheduler.Heap;
  }

let modern =
  {
    enzian with
    profile = Coherence.Interconnect.cxl3;
    aux_lines = 63;
    parse_delay = Sim.Units.ns 80;
    demux_delay = Sim.Units.ns 60;
  }

let with_encryption t encrypt = { t with encrypt }
let with_scheduler t scheduler = { t with scheduler }
let with_shed t shed = { t with shed }
let with_sanitize t sanitize = { t with sanitize }

let with_timeout t timeout =
  if timeout <= 0 then invalid_arg "Config.with_timeout: non-positive";
  { t with tryagain_timeout = timeout }

let with_dma_threshold t n =
  if n <= 0 then invalid_arg "Config.with_dma_threshold: non-positive";
  { t with dma_threshold = n }

let control_header_bytes = 40

let inline_capacity t =
  t.profile.Coherence.Interconnect.cache_line_bytes - control_header_bytes

let endpoint_window t =
  inline_capacity t
  + (t.aux_lines * t.profile.Coherence.Interconnect.cache_line_bytes)
