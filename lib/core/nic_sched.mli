(** NIC-gathered load statistics and core-scaling policy (paper §5.2).

    "[Preemption] can be initiated by the kernel scheduler, or by
    Lauberhorn based on statistics it gathers about the instantaneous
    load on each server process. This approach therefore also supports
    dynamic scaling of the cores used for RPC based on load."

    The NIC keeps, per service, an exponentially weighted arrival rate
    and watches endpoint queue depth. The policy is deliberately
    simple and hysteretic: scale up when the queue persists above the
    high watermark, release a core (let the worker's TRYAGAIN-yield
    take effect) when the rate says one fewer worker still keeps
    utilisation below the low-water target. *)

type t

val create :
  ?ewma_tau:Sim.Units.duration -> ?hi_watermark:int ->
  ?target_util:float -> ?shed:bool -> ?shed_hi:int -> ?shed_lo:int ->
  unit -> t
(** Defaults: 100 µs rate-averaging constant, scale up when more than 4
    requests queue, aim below 70% per-worker utilisation.

    [shed] (default [false]) arms admission control: a service whose
    endpoint backlog reaches [shed_hi] (default 16) starts shedding —
    {!decide} answers {!Shed} for every arrival — until the backlog
    drains to [shed_lo] (default 4). The wide hysteresis band prevents
    the gate flapping at a constant arrival rate. With [shed] off the
    decision space is exactly the pre-admission-control one.
    @raise Invalid_argument unless [0 <= shed_lo < shed_hi] (when
    [shed] is on) and the other parameters are in range. *)

val on_arrival : t -> service:int -> now:Sim.Units.time -> unit
val on_complete : t -> service:int -> unit

val rate : t -> service:int -> float
(** Estimated arrivals per second. *)

val outstanding : t -> service:int -> int
(** Accepted minus completed. *)

type decision =
  | Steady
  | Add_worker  (** Dispatch an additional worker (scale up). *)
  | Release_worker  (** Let one worker yield its core (scale down). *)
  | Shed
      (** Reject this arrival at the NIC: the service is in overload
          and the request should be NACKed on the wire rather than
          silently queued to a drop. Only produced when the scheduler
          was created with [~shed:true]. *)

val decide :
  t -> service:int -> queue_depth:int -> workers:int ->
  handler_time:Sim.Units.duration -> decision
(** Evaluated per arrival by the stack. Admission control (when armed)
    takes precedence over scaling decisions; the hysteretic shed state
    is updated as a side effect of this call. *)

val services_tracked : t -> int
