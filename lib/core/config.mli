(** Lauberhorn platform configuration.

    Bundles an interconnect profile with the NIC-design parameters the
    paper fixes in §5–6: the 15 ms TRYAGAIN timeout, the ~4 KiB
    DMA-fallback threshold, the endpoint geometry (two CONTROL lines
    plus auxiliary lines), and the hardware pipeline stage costs. *)

type t = {
  profile : Coherence.Interconnect.profile;
  tryagain_timeout : Sim.Units.duration;
      (** How long the NIC may park a cache fill before answering with
          a TRYAGAIN dummy (paper: 15 ms, bounded by the coherence
          protocol's bus-error timeout). *)
  dma_threshold : int;
      (** Payloads larger than this revert to DMA transfer (paper §6:
          empirically ~4 KiB on Enzian). *)
  aux_lines : int;
      (** Auxiliary cache lines per endpoint for multi-line payloads. *)
  nic_queue_depth : int;
      (** Per-endpoint SRAM request queue on the NIC. *)
  parse_delay : Sim.Units.duration;
      (** Streaming header decoders (Ethernet/IP/UDP strip). *)
  demux_delay : Sim.Units.duration;
      (** Flow-table and scheduling-state lookup. *)
  deser : Rpc.Deser_cost.profile;
      (** Hardware unmarshal pipeline pricing. *)
  tryagains_before_yield : int;
      (** User-mode loop policy: consecutive TRYAGAINs before the
          process yields its core back to the kernel (dynamic
          down-scaling, §5.2). *)
  encrypt : bool;
      (** Inline AES-GCM on every frame through the NIC pipeline
          (§6). Adds {!Crypto.aes_gcm_nic} time per packet, no CPU. *)
  shed : bool;
      (** NIC admission control: overloaded services NACK arrivals on
          the wire ({!Nic_sched.Shed}) instead of queueing them to a
          silent SRAM drop. Off by default — the paper's base design —
          so pre-existing experiments are untouched. *)
  sanitize : bool;
      (** Attach the runtime sanitizers ({!Sanitize}) to the stack:
          coherence generation discipline, event-loop monotonicity,
          scheduler-mirror convergence, pool accounting. Off by
          default — every hook is then [None] and costs one branch. *)
  scheduler : Sim.Scheduler.kind;
      (** Event-queue backend for engines the harness creates on this
          config ({!Sim.Scheduler.Heap} by default). Both backends
          produce byte-identical simulations; the wheel wins on
          timer-dominated schedules. The [LAUBERHORN_SCHED]
          environment variable overrides this at engine creation. *)
}

val enzian : t
(** ECI on Enzian, the paper's prototype platform. *)

val modern : t
(** The same design on a CXL 3.0-class server — the paper's
    "we anticipate comparable gains with CXL 3.0". *)

val with_timeout : t -> Sim.Units.duration -> t
val with_encryption : t -> bool -> t
val with_dma_threshold : t -> int -> t
val with_shed : t -> bool -> t
val with_sanitize : t -> bool -> t
val with_scheduler : t -> Sim.Scheduler.kind -> t

val control_header_bytes : int
(** Fixed header of a request CONTROL line (see {!Message}). *)

val inline_capacity : t -> int
(** Argument bytes carried in the first CONTROL line. *)

val endpoint_window : t -> int
(** Maximum unmarshaled-argument bytes an endpoint can deliver without
    DMA fallback: inline + aux capacity. *)
