type path = Fast | Queued | Cold

type svc = {
  hist : Sim.Histogram.t;
  mutable fast : int;
  mutable queued : int;
  mutable cold : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
}

type t = {
  table : (int, svc) Hashtbl.t;
  mutable total : int;
  metrics : Obs.Metrics.t;
      (* fault-injection and recovery events live here as counters;
         all-zero (and absent from reports) on fault-free runs *)
}

let create ?metrics () =
  let metrics =
    match metrics with Some m -> m | None -> Obs.Metrics.create ()
  in
  { table = Hashtbl.create 32; total = 0; metrics }

let metrics t = t.metrics

let add_fault t name n =
  if n <> 0 then Obs.Metrics.add (Obs.Metrics.counter t.metrics name) n

let incr_fault t name = add_fault t name 1
let fault_count t name = Obs.Metrics.counter_value t.metrics name
let fault_counts t = Obs.Metrics.counters_list t.metrics

let svc t service_id =
  match Hashtbl.find_opt t.table service_id with
  | Some s -> s
  | None ->
      let s =
        {
          hist = Sim.Histogram.create ();
          fast = 0;
          queued = 0;
          cold = 0;
          bytes_in = 0;
          bytes_out = 0;
        }
      in
      Hashtbl.add t.table service_id s;
      s

let record t ~service_id ~path ~latency ~bytes_in ~bytes_out =
  let s = svc t service_id in
  Sim.Histogram.record s.hist latency;
  (match path with
  | Fast -> s.fast <- s.fast + 1
  | Queued -> s.queued <- s.queued + 1
  | Cold -> s.cold <- s.cold + 1);
  s.bytes_in <- s.bytes_in + bytes_in;
  s.bytes_out <- s.bytes_out + bytes_out;
  t.total <- t.total + 1

let services t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.table [] |> List.sort Int.compare

let get t service_id =
  match Hashtbl.find_opt t.table service_id with
  | Some s -> s
  | None ->
      invalid_arg (Printf.sprintf "Telemetry: unknown service %d" service_id)

let latency t ~service_id = (get t service_id).hist

let path_counts t ~service_id =
  let s = get t service_id in
  (s.fast, s.queued, s.cold)

let bytes t ~service_id =
  let s = get t service_id in
  (s.bytes_in, s.bytes_out)

let total_rpcs t = t.total

let pp_report ppf t =
  Format.fprintf ppf "NIC telemetry: %d RPCs across %d services" t.total
    (Hashtbl.length t.table);
  List.iter
    (fun service_id ->
      let s = get t service_id in
      Format.fprintf ppf
        "@\n  service %d: %a@\n    paths: fast=%d queued=%d cold=%d  bytes: in=%d out=%d"
        service_id Sim.Histogram.pp_summary s.hist s.fast s.queued s.cold
        s.bytes_in s.bytes_out)
    (services t);
  match fault_counts t with
  | [] -> ()
  | faults ->
      Format.fprintf ppf "@\n  faults:";
      List.iter (fun (k, v) -> Format.fprintf ppf " %s=%d" k v) faults
