(** The CC-NIC/nanoPU-style ablation: a coherently-attached NIC with
    the {e traditional} hardware/software split (paper §2: such designs
    "deliver packets directly into the register file" but "preserve the
    same hardware/software boundary ... this works well when the
    workload is relatively static, can be bound to dedicated cores, and
    is rarely idle").

    Concretely: the same CONTROL-line delivery mechanism as
    {!Stack} — parked loads, staged lines, fetch-exclusive response
    collection — but none of the OS integration:

    - each service is statically bound to one dedicated, pinned core;
    - the NIC has no scheduling-state mirror and no kernel channel:
      requests for a service can only go to its one endpoint;
    - workers never yield or retire — an idle service still owns its
      core (parked, not spinning — the coherent part still helps);
    - no NIC-driven scaling: a hot service cannot borrow a neighbour's
      core.

    Comparing this against {!Stack} in E6/E7 separates what the
    coherent interconnect buys (latency) from what OS integration buys
    (flexibility under dynamic load). *)

type service_spec = { service : Rpc.Interface.service_def; port : int }

val spec : port:int -> Rpc.Interface.service_def -> service_spec

type t

val create :
  Sim.Engine.t -> cfg:Config.t -> ncores:int ->
  ?kernel_costs:Osmodel.Kernel.costs -> ?fault:Fault.Plan.t ->
  ?metrics:Obs.Metrics.t -> ?tracer:Obs.Tracer.t ->
  ?sanitize:Sanitize.t ->
  services:service_spec list ->
  egress:(Net.Frame.t -> unit) -> unit -> t
(** Services are assigned to cores round-robin; more services than
    cores means multiple services pinned to the same core, sharing it
    by TRYAGAIN-timeout turns only (the static world's answer).

    [metrics] and [tracer] as in {!Stack.create}: home-agent tallies
    register as derived gauges; per-RPC stage spans (same stage names
    as {!Stack}) telescope to the measured latency. [sanitize] attaches
    the coherence sanitizer to the home agent (also implied by
    [cfg.sanitize]).
    @raise Invalid_argument if [services] is empty. *)

val ingress : t -> Net.Frame.t -> unit
val kernel : t -> Osmodel.Kernel.t
val counters : t -> Sim.Counter.group
val metrics : t -> Obs.Metrics.t
val tracer : t -> Obs.Tracer.t
val core_of_service : t -> service_id:int -> int

val kill_service : t -> service_id:int -> unit
(** Crash the service's pinned process. With no scheduler mirror in
    this ablation there is no push lag to model: the kill tears down
    kernel state and sweeps the NIC side in one step — NIC-SRAM queue
    contents are kept for redelivery, staged requests are NACKed
    [err_dead], and subsequent arrivals are refused on the wire.
    @raise Invalid_argument on an unknown service. *)

val restart_service : t -> service_id:int -> unit
(** Respawn a killed service on its original core and redeliver the
    crash survivors. @raise Invalid_argument on an unknown service. *)

val driver : t -> Harness.Driver.t
