type svc_stats = {
  mutable rate : float;  (* arrivals/s, EWMA *)
  mutable last_arrival : Sim.Units.time option;
  mutable accepted : int;
  mutable completed : int;
  mutable shedding : bool;  (* admission-control state (hysteretic) *)
}

type t = {
  ewma_tau : float;  (* seconds *)
  hi_watermark : int;
  target_util : float;
  shed : bool;
  shed_hi : int;
  shed_lo : int;
  table : (int, svc_stats) Hashtbl.t;
}

let create ?(ewma_tau = Sim.Units.us 100) ?(hi_watermark = 4)
    ?(target_util = 0.7) ?(shed = false) ?(shed_hi = 16) ?(shed_lo = 4) () =
  if ewma_tau <= 0 then invalid_arg "Nic_sched.create: non-positive tau";
  if target_util <= 0. || target_util > 1. then
    invalid_arg "Nic_sched.create: target_util out of (0,1]";
  if shed && (shed_lo < 0 || shed_hi <= shed_lo) then
    invalid_arg "Nic_sched.create: need 0 <= shed_lo < shed_hi";
  {
    ewma_tau = Sim.Units.to_float_s ewma_tau;
    hi_watermark;
    target_util;
    shed;
    shed_hi;
    shed_lo;
    table = Hashtbl.create 32;
  }

let stats t service =
  match Hashtbl.find_opt t.table service with
  | Some s -> s
  | None ->
      let s =
        { rate = 0.; last_arrival = None; accepted = 0; completed = 0;
          shedding = false }
      in
      Hashtbl.add t.table service s;
      s

let on_arrival t ~service ~now =
  let s = stats t service in
  s.accepted <- s.accepted + 1;
  (match s.last_arrival with
  | None -> ()
  | Some prev ->
      let dt = Sim.Units.to_float_s (max 1 (now - prev)) in
      let inst = 1. /. dt in
      (* Time-constant EWMA: weight decays with the gap length, so idle
         periods pull the estimate down. *)
      let alpha = 1. -. exp (-.dt /. t.ewma_tau) in
      s.rate <- s.rate +. (alpha *. (inst -. s.rate)));
  s.last_arrival <- Some now

let on_complete t ~service =
  let s = stats t service in
  s.completed <- s.completed + 1

let rate t ~service = (stats t service).rate
let outstanding t ~service =
  let s = stats t service in
  s.accepted - s.completed

type decision = Steady | Add_worker | Release_worker | Shed

let decide t ~service ~queue_depth ~workers ~handler_time =
  let s = stats t service in
  (* Admission control runs ahead of scaling: once the backlog blows
     through shed_hi the service sheds every arrival until it drains
     back below shed_lo. The wide hysteresis band keeps the gate from
     chattering at a constant arrival rate. *)
  if t.shed then begin
    if s.shedding then begin
      if queue_depth <= t.shed_lo then s.shedding <- false
    end
    else if queue_depth >= t.shed_hi then s.shedding <- true
  end;
  if t.shed && s.shedding then Shed
  else if queue_depth > t.hi_watermark then Add_worker
  else if workers > 1 then begin
    (* Would one fewer worker still sit below the utilisation target? *)
    let per_req = Sim.Units.to_float_s handler_time in
    let util_with = s.rate *. per_req /. float_of_int (workers - 1) in
    if util_with < t.target_util *. 0.5 && queue_depth = 0 then
      Release_worker
    else Steady
  end
  else Steady

let services_tracked t = Hashtbl.length t.table
