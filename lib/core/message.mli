(** Byte-level layout of CONTROL cache lines (paper Figure 4).

    The NIC answers a parked load with a carefully prepared cache line
    holding "only the information needed to dispatch an RPC: just the
    arguments and virtual address of the first instruction of the
    target function to jump to". This module is that layout, encoded
    for real into line-sized byte buffers, so tests can check that what
    the CPU decodes is exactly what the NIC staged.

    A request CONTROL line is a 40-byte header plus inline argument
    bytes; arguments beyond the line spill into auxiliary lines, and
    payloads beyond the endpoint window travel by DMA with only the
    header delivered coherently. *)

type request = {
  rpc_id : int64;
  service_id : int;
  method_id : int;
  code_ptr : int64;  (** VA of the handler's first instruction. *)
  data_ptr : int64;  (** VA of the endpoint's data area. *)
  total_args : int;  (** Unmarshaled argument bytes in total. *)
  inline_args : Net.Slice.t;  (** The prefix carried in this line. *)
  aux_count : int;  (** Auxiliary lines holding the rest. *)
  via_dma : bool;  (** Large payload: body delivered by DMA. *)
}

type response = {
  resp_rpc_id : int64;
  status : int;  (** 0 = success; else application error code. *)
  total_len : int;
  inline_body : Net.Slice.t;
  resp_aux_count : int;
}

type t =
  | Request of request
  | Kernel_dispatch of request
      (** Same body, addressed to a kernel dispatcher CONTROL line
          because no user thread was available (Figure 5 slow path). *)
  | Tryagain
  | Retire  (** Reallocation request to a non-preemptible kthread. *)

val request_header_bytes : int
(** 40 bytes. *)

val response_header_bytes : int
(** 20 bytes. *)

val request_inline_capacity : line_bytes:int -> int
val response_inline_capacity : line_bytes:int -> int

val encode : line_bytes:int -> t -> bytes
(** Render into one line image (length exactly [line_bytes]).
    @raise Invalid_argument if inline bytes exceed capacity or fields
    are out of range. *)

val encode_response : line_bytes:int -> response -> bytes

val decode : bytes -> (t, string) result
(** Decode a line the CPU just loaded. The inline bytes of the result
    are a zero-copy view into [b]; they stay valid only while the line
    image is not overwritten. *)

val decode_response : bytes -> (response, string) result
(** Decode a line the NIC just fetched back. Same aliasing rule as
    {!decode}. *)

val equal : t -> t -> bool
(** Content equality: inline slices are compared by contents, not by
    backing buffer identity. *)

val equal_request : request -> request -> bool
val equal_response : response -> response -> bool

val pp : Format.formatter -> t -> unit
