type request = {
  rpc_id : int64;
  service_id : int;
  method_id : int;
  code_ptr : int64;
  data_ptr : int64;
  total_args : int;
  inline_args : Net.Slice.t;
  aux_count : int;
  via_dma : bool;
}

type response = {
  resp_rpc_id : int64;
  status : int;
  total_len : int;
  inline_body : Net.Slice.t;
  resp_aux_count : int;
}

type t =
  | Request of request
  | Kernel_dispatch of request
  | Tryagain
  | Retire

let request_header_bytes = 40
let response_header_bytes = 20

let request_inline_capacity ~line_bytes = line_bytes - request_header_bytes
let response_inline_capacity ~line_bytes = line_bytes - response_header_bytes

let tag_request = 1
let tag_tryagain = 2
let tag_retire = 3
let tag_response = 4
let tag_kernel_dispatch = 5

let flag_via_dma = 0x01

let encode_request_body ~line_bytes ~tag (r : request) =
  let cap = request_inline_capacity ~line_bytes in
  if Net.Slice.length r.inline_args > cap then
    invalid_arg
      (Printf.sprintf "Message.encode: %d inline bytes > capacity %d"
         (Net.Slice.length r.inline_args) cap);
  let w = Net.Buf.writer line_bytes in
  Net.Buf.write_u8 w tag;
  Net.Buf.write_u8 w (if r.via_dma then flag_via_dma else 0);
  Net.Buf.write_u16 w r.aux_count;
  Net.Buf.write_u32 w r.service_id;
  Net.Buf.write_u16 w r.method_id;
  Net.Buf.write_u16 w (Net.Slice.length r.inline_args);
  Net.Buf.write_u32 w r.total_args;
  Net.Buf.write_u64 w r.rpc_id;
  Net.Buf.write_u64 w r.code_ptr;
  Net.Buf.write_u64 w r.data_ptr;
  Net.Buf.write_slice w r.inline_args;
  (* Pad the line image to full size without a scratch buffer, then
     hand back the writer's own buffer — the image is exactly one
     allocation. *)
  Net.Buf.write_zeros w (line_bytes - Net.Buf.writer_pos w);
  Net.Buf.filled w

let single_tag_line ~line_bytes tag =
  let w = Net.Buf.writer line_bytes in
  Net.Buf.write_u8 w tag;
  Net.Buf.write_zeros w (line_bytes - 1);
  Net.Buf.filled w

let encode ~line_bytes t =
  if line_bytes < request_header_bytes then
    invalid_arg "Message.encode: line too small for header";
  match t with
  | Request r -> encode_request_body ~line_bytes ~tag:tag_request r
  | Kernel_dispatch r ->
      encode_request_body ~line_bytes ~tag:tag_kernel_dispatch r
  | Tryagain -> single_tag_line ~line_bytes tag_tryagain
  | Retire -> single_tag_line ~line_bytes tag_retire

let encode_response ~line_bytes (r : response) =
  let cap = response_inline_capacity ~line_bytes in
  if Net.Slice.length r.inline_body > cap then
    invalid_arg
      (Printf.sprintf
         "Message.encode_response: %d inline bytes > capacity %d"
         (Net.Slice.length r.inline_body) cap);
  let w = Net.Buf.writer line_bytes in
  Net.Buf.write_u8 w tag_response;
  Net.Buf.write_u8 w 0;
  Net.Buf.write_u16 w r.status;
  Net.Buf.write_u16 w (Net.Slice.length r.inline_body);
  Net.Buf.write_u16 w r.resp_aux_count;
  Net.Buf.write_u32 w r.total_len;
  Net.Buf.write_u64 w r.resp_rpc_id;
  Net.Buf.write_slice w r.inline_body;
  Net.Buf.write_zeros w (line_bytes - Net.Buf.writer_pos w);
  Net.Buf.filled w

let decode_request_body r =
  let flags = Net.Buf.read_u8 r in
  let aux_count = Net.Buf.read_u16 r in
  let service_id = Net.Buf.read_u32 r in
  let method_id = Net.Buf.read_u16 r in
  let inline_len = Net.Buf.read_u16 r in
  let total_args = Net.Buf.read_u32 r in
  let rpc_id = Net.Buf.read_u64 r in
  let code_ptr = Net.Buf.read_u64 r in
  let data_ptr = Net.Buf.read_u64 r in
  let inline_args = Net.Buf.read_slice r ~len:inline_len in
  {
    rpc_id;
    service_id;
    method_id;
    code_ptr;
    data_ptr;
    total_args;
    inline_args;
    aux_count;
    via_dma = flags land flag_via_dma <> 0;
  }

let decode b =
  match
    let r = Net.Buf.reader b in
    let tag = Net.Buf.read_u8 r in
    if Int.equal tag tag_request then Ok (Request (decode_request_body r))
    else if Int.equal tag tag_kernel_dispatch then
      Ok (Kernel_dispatch (decode_request_body r))
    else if Int.equal tag tag_tryagain then Ok Tryagain
    else if Int.equal tag tag_retire then Ok Retire
    else Error (Printf.sprintf "unknown control-line tag %d" tag)
  with
  | result -> result
  | exception Net.Buf.Out_of_bounds msg -> Error ("truncated line: " ^ msg)

let decode_response b =
  match
    let r = Net.Buf.reader b in
    let tag = Net.Buf.read_u8 r in
    if not (Int.equal tag tag_response) then
      Error (Printf.sprintf "not a response line (tag %d)" tag)
    else begin
      let _flags = Net.Buf.read_u8 r in
      let status = Net.Buf.read_u16 r in
      let inline_len = Net.Buf.read_u16 r in
      let resp_aux_count = Net.Buf.read_u16 r in
      let total_len = Net.Buf.read_u32 r in
      let resp_rpc_id = Net.Buf.read_u64 r in
      let inline_body = Net.Buf.read_slice r ~len:inline_len in
      Ok { resp_rpc_id; status; total_len; inline_body; resp_aux_count }
    end
  with
  | result -> result
  | exception Net.Buf.Out_of_bounds msg -> Error ("truncated line: " ^ msg)

let equal_request (a : request) (b : request) =
  Int64.equal a.rpc_id b.rpc_id
  && Int.equal a.service_id b.service_id
  && Int.equal a.method_id b.method_id
  && Int64.equal a.code_ptr b.code_ptr
  && Int64.equal a.data_ptr b.data_ptr
  && Int.equal a.total_args b.total_args
  && Net.Slice.equal a.inline_args b.inline_args
  && Int.equal a.aux_count b.aux_count
  && Bool.equal a.via_dma b.via_dma

let equal_response (a : response) (b : response) =
  Int64.equal a.resp_rpc_id b.resp_rpc_id
  && Int.equal a.status b.status
  && Int.equal a.total_len b.total_len
  && Net.Slice.equal a.inline_body b.inline_body
  && Int.equal a.resp_aux_count b.resp_aux_count

let equal a b =
  match (a, b) with
  | Request x, Request y | Kernel_dispatch x, Kernel_dispatch y ->
      equal_request x y
  | Tryagain, Tryagain | Retire, Retire -> true
  | (Request _ | Kernel_dispatch _ | Tryagain | Retire), _ -> false

let pp ppf = function
  | Request r ->
      Format.fprintf ppf
        "request id=%Ld svc=%d mth=%d code=0x%Lx args=%d/%d aux=%d%s"
        r.rpc_id r.service_id r.method_id r.code_ptr
        (Net.Slice.length r.inline_args)
        r.total_args r.aux_count
        (if r.via_dma then " via-dma" else "")
  | Kernel_dispatch r ->
      Format.fprintf ppf "kernel-dispatch svc=%d id=%Ld" r.service_id
        r.rpc_id
  | Tryagain -> Format.pp_print_string ppf "tryagain"
  | Retire -> Format.pp_print_string ppf "retire"
