(** NIC-side per-service statistics (paper §6: "support for tracing,
    debugging, and statistics presents interesting properties for
    further close integration with the OS").

    Because the NIC sees both the arrival and the response of every
    RPC, it can measure true end-system latency per service with zero
    CPU cost — no application instrumentation, no sampling daemon. The
    stack feeds this module at dispatch and at response collection. *)

type path = Fast | Queued | Cold
(** How a request was dispatched: straight into a parked load, queued
    behind a busy worker, or through the kernel (Figure 5). *)

type t

val create : ?metrics:Obs.Metrics.t -> unit -> t
(** [metrics] is the registry fault counters are registered on — pass
    the stack's shared registry so fault events surface alongside the
    NIC's drop gauges; defaults to a private one. *)

val metrics : t -> Obs.Metrics.t

val record :
  t -> service_id:int -> path:path -> latency:Sim.Units.duration ->
  bytes_in:int -> bytes_out:int -> unit

val services : t -> int list
(** Service ids with at least one recorded RPC, sorted. *)

val latency : t -> service_id:int -> Sim.Histogram.t
(** Per-service end-system latency as the NIC saw it.
    @raise Invalid_argument for an unknown service. *)

val path_counts : t -> service_id:int -> int * int * int
(** [(fast, queued, cold)]. *)

val bytes : t -> service_id:int -> int * int
(** [(in, out)] payload bytes. *)

val total_rpcs : t -> int

(** {1 Fault and recovery accounting}

    Named counters the stacks feed when a fault plan is active:
    rejected frames, queue drops, deferred fills, TRYAGAIN recoveries,
    client retries. They register on the {!Obs.Metrics} registry the
    telemetry was created with. Fault-free runs record nothing here,
    so reports are unchanged. *)

val incr_fault : t -> string -> unit
val add_fault : t -> string -> int -> unit
val fault_count : t -> string -> int
val fault_counts : t -> (string * int) list
(** Sorted by name. *)

val pp_report : Format.formatter -> t -> unit
(** Multi-line per-service report (plus the fault section when any
    fault counter is nonzero). *)
