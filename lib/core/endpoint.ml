type t = {
  ha : Coherence.Home_agent.t;
  cfg : Config.t;
  eid : int;
  ctrl : Coherence.Home_agent.line_id array;
  on_response : Message.response -> unit;
  mutable on_parked : (unit -> unit) option;
  pending : (Message.request * bool) Queue.t;  (* request, kernel_dispatch *)
  mutable cur : int;
  to_collect : int Queue.t;
  mutable outstanding : int;
  mutable n_delivered : int;
  mutable n_responses : int;
  mutable n_dropped : int;
}

let id t = t.eid

let ctrl_line t i =
  if i <> 0 && i <> 1 then invalid_arg "Endpoint.ctrl_line: index not 0/1";
  t.ctrl.(i)

let engine t = Coherence.Home_agent.engine t.ha
let prof t = (t.cfg : Config.t).Config.profile

(* Auxiliary lines stream behind the CONTROL line at the coherent-path
   bandwidth (cf. Interconnect.line_transfer); oversized payloads use a
   DMA burst instead. *)
let aux_stream_delay t ~lines =
  let p = prof t in
  lines
  * int_of_float
      (Float.round
         (float_of_int (p.Coherence.Interconnect.cache_line_bytes * 8)
         /. p.Coherence.Interconnect.coherent_bandwidth_gbps))

let extra_request_delay t (msg : Message.request) =
  if msg.Message.via_dma then
    Coherence.Interconnect.dma_transfer (prof t) ~bytes:msg.Message.total_args
  else if msg.Message.aux_count > 0 then
    aux_stream_delay t ~lines:msg.Message.aux_count
  else 0

let extra_response_delay t (resp : Message.response) =
  let inline = Net.Slice.length resp.Message.inline_body in
  let rest = resp.Message.total_len - inline in
  if rest <= 0 then 0
  else if resp.Message.total_len > t.cfg.Config.dma_threshold then
    Coherence.Interconnect.dma_transfer (prof t) ~bytes:rest
  else aux_stream_delay t ~lines:resp.Message.resp_aux_count

let stage_now t (msg, kernel_dispatch) =
  let line = t.ctrl.(t.cur) in
  t.cur <- 1 - t.cur;
  t.outstanding <- t.outstanding + 1;
  t.n_delivered <- t.n_delivered + 1;
  Queue.add (1 - t.cur) t.to_collect;
  let delay = extra_request_delay t msg in
  let envelope =
    if kernel_dispatch then Message.Kernel_dispatch msg
    else Message.Request msg
  in
  let image =
    Message.encode
      ~line_bytes:(prof t).Coherence.Interconnect.cache_line_bytes envelope
  in
  if delay = 0 then Coherence.Home_agent.stage t.ha line image
  else
    ignore
      (Sim.Engine.schedule_after (engine t) ~after:delay (fun () ->
           Coherence.Home_agent.stage t.ha line image))

let rec try_deliver t =
  if t.outstanding < 2 then
    match Queue.take_opt t.pending with
    | Some msg ->
        stage_now t msg;
        try_deliver t
    | None -> ()

let deliver ?(kernel_dispatch = false) t msg =
  if t.outstanding < 2 && Queue.is_empty t.pending then begin
    stage_now t (msg, kernel_dispatch);
    true
  end
  else if Queue.length t.pending < t.cfg.Config.nic_queue_depth then begin
    Queue.add (msg, kernel_dispatch) t.pending;
    true
  end
  else begin
    t.n_dropped <- t.n_dropped + 1;
    false
  end

let collect t c =
  Coherence.Home_agent.fetch_exclusive t.ha t.ctrl.(c) (fun data ->
      match data with
      | None ->
          invalid_arg
            (Printf.sprintf
               "Endpoint %d: fetch-exclusive found no response in line %d"
               t.eid c)
      | Some bytes -> (
          match Message.decode_response bytes with
          | Error e ->
              invalid_arg
                (Printf.sprintf "Endpoint %d: bad response line: %s" t.eid e)
          | Ok resp ->
              let finish () =
                t.outstanding <- t.outstanding - 1;
                t.n_responses <- t.n_responses + 1;
                t.on_response resp;
                try_deliver t
              in
              let delay = extra_response_delay t resp in
              if delay = 0 then finish ()
              else
                ignore
                  (Sim.Engine.schedule_after (engine t) ~after:delay finish)))

let on_ctrl_load t j ~served =
  (match Queue.peek_opt t.to_collect with
  | Some c when Int.equal c (1 - j) ->
      ignore (Queue.pop t.to_collect);
      collect t c
  | Some _ | None -> ());
  if not served then begin
    (match t.on_parked with Some f -> f () | None -> ());
    try_deliver t
  end

let set_on_parked t f = t.on_parked <- Some f
let parked t = Coherence.Home_agent.load_parked t.ha t.ctrl.(t.cur)
let kick t = if parked t then Coherence.Home_agent.kick t.ha t.ctrl.(t.cur)

let retire t =
  if parked t then begin
    (* Complete the parked load with a RETIRE marker. The line is not a
       delivery: no credit consumed, no response expected, so [cur] and
       the collect queue stay untouched. *)
    Coherence.Home_agent.stage t.ha t.ctrl.(t.cur)
      (Message.encode
         ~line_bytes:(prof t).Coherence.Interconnect.cache_line_bytes
         Message.Retire);
    true
  end
  else false
let reset t =
  (* Crash teardown. The SRAM queue survives on the NIC and is handed
     back to the stack for requeueing; everything staged in (or parked
     on) the CONTROL lines is torn down — those RPCs were in the dead
     process's hands and must be NACKed by the caller. *)
  let requeue = List.of_seq (Queue.to_seq t.pending) in
  Queue.clear t.pending;
  Coherence.Home_agent.reset_line t.ha t.ctrl.(0);
  Coherence.Home_agent.reset_line t.ha t.ctrl.(1);
  Queue.clear t.to_collect;
  t.cur <- 0;
  t.outstanding <- 0;
  requeue

let queue_depth t = Queue.length t.pending
let in_flight t = t.outstanding
let stats_delivered t = t.n_delivered
let stats_responses t = t.n_responses
let stats_dropped t = t.n_dropped

let create ha cfg ~id ~on_response () =
  let t =
    {
      ha;
      cfg;
      eid = id;
      ctrl =
        [| Coherence.Home_agent.alloc_line ha;
           Coherence.Home_agent.alloc_line ha |];
      on_response;
      on_parked = None;
      pending = Queue.create ();
      cur = 0;
      to_collect = Queue.create ();
      outstanding = 0;
      n_delivered = 0;
      n_responses = 0;
      n_dropped = 0;
    }
  in
  Coherence.Home_agent.set_on_load ha t.ctrl.(0) (fun ~served ->
      on_ctrl_load t 0 ~served);
  Coherence.Home_agent.set_on_load ha t.ctrl.(1) (fun ~served ->
      on_ctrl_load t 1 ~served);
  t

