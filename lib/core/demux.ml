type entry = {
  service : Rpc.Interface.service_def;
  pid : int;
  endpoint : Endpoint.t;
  code_ptrs : int64 array;
  data_ptr : int64;
}

type t = { by_port : (int, entry) Hashtbl.t }

let create () = { by_port = Hashtbl.create 64 }

let bind t ~port entry =
  if Hashtbl.mem t.by_port port then
    invalid_arg (Printf.sprintf "Demux.bind: port %d already bound" port);
  Hashtbl.add t.by_port port entry

let unbind t ~port = Hashtbl.remove t.by_port port
let lookup t ~port = Hashtbl.find_opt t.by_port port

let lookup_service t ~service_id =
  Hashtbl.fold
    (fun _ e acc ->
      match acc with
      | Some _ -> acc
      | None ->
          if Int.equal e.service.Rpc.Interface.service_id service_id then
            Some e
          else None)
    t.by_port None

let port_of_service t ~service_id =
  Hashtbl.fold
    (fun port e acc ->
      match acc with
      | Some _ -> acc
      | None ->
          if Int.equal e.service.Rpc.Interface.service_id service_id then
            Some port
          else None)
    t.by_port None

let entries t =
  Hashtbl.fold (fun port e acc -> (port, e) :: acc) t.by_port []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let code_ptr e ~method_id =
  if method_id < 0 || method_id >= Array.length e.code_ptrs then
    invalid_arg (Printf.sprintf "Demux.code_ptr: unknown method %d" method_id);
  e.code_ptrs.(method_id)
