exception Out_of_bounds of string

type reader = { rbuf : bytes; rlimit : int; mutable rpos : int }
type writer = { wbuf : bytes; mutable wpos : int }

let fail fmt = Printf.ksprintf (fun s -> raise (Out_of_bounds s)) fmt

(* Writing *)

let writer n =
  if n < 0 then invalid_arg "Buf.writer: negative capacity";
  { wbuf = Bytes.make n '\000'; wpos = 0 }

let writer_over b = { wbuf = b; wpos = 0 }

let writer_pos w = w.wpos
let writer_bytes w = w.wbuf

let check_write w n =
  if w.wpos + n > Bytes.length w.wbuf then
    fail "write of %d bytes at %d exceeds capacity %d" n w.wpos
      (Bytes.length w.wbuf)

let write_u8 w v =
  if v < 0 || v > 0xff then invalid_arg "Buf.write_u8: value out of range";
  check_write w 1;
  Bytes.unsafe_set w.wbuf w.wpos (Char.unsafe_chr v);
  w.wpos <- w.wpos + 1

let write_u16 w v =
  if v < 0 || v > 0xffff then invalid_arg "Buf.write_u16: value out of range";
  check_write w 2;
  Bytes.set_uint16_be w.wbuf w.wpos v;
  w.wpos <- w.wpos + 2

let write_u32 w v =
  if v < 0 || v > 0xffff_ffff then
    invalid_arg "Buf.write_u32: value out of range";
  check_write w 4;
  Bytes.set_int32_be w.wbuf w.wpos (Int32.of_int v);
  w.wpos <- w.wpos + 4

let write_u64 w v =
  check_write w 8;
  Bytes.set_int64_be w.wbuf w.wpos v;
  w.wpos <- w.wpos + 8

let write_bytes w b =
  let n = Bytes.length b in
  check_write w n;
  Bytes.blit b 0 w.wbuf w.wpos n;
  w.wpos <- w.wpos + n

let write_string w s =
  let n = String.length s in
  check_write w n;
  Bytes.blit_string s 0 w.wbuf w.wpos n;
  w.wpos <- w.wpos + n

let write_slice w s =
  let n = Slice.length s in
  check_write w n;
  Slice.blit s w.wbuf ~dst_off:w.wpos;
  w.wpos <- w.wpos + n

let write_zeros w n =
  if n < 0 then invalid_arg "Buf.write_zeros: negative length";
  check_write w n;
  Bytes.fill w.wbuf w.wpos n '\000';
  w.wpos <- w.wpos + n

let patch_u16 w ~pos v =
  if v < 0 || v > 0xffff then invalid_arg "Buf.patch_u16: value out of range";
  if pos < 0 || pos + 2 > w.wpos then
    fail "patch_u16 at %d outside written region [0,%d)" pos w.wpos;
  Bytes.set_uint16_be w.wbuf pos v

let contents w = Bytes.sub w.wbuf 0 w.wpos

let filled w =
  if not (Int.equal w.wpos (Bytes.length w.wbuf)) then
    fail "filled: %d bytes written of %d capacity" w.wpos
      (Bytes.length w.wbuf);
  w.wbuf

let written_slice w = Slice.make w.wbuf ~off:0 ~len:w.wpos

(* Reading *)

let reader b = { rbuf = b; rlimit = Bytes.length b; rpos = 0 }

let reader_of_slice s =
  {
    rbuf = s.Slice.base;
    rlimit = s.Slice.off + s.Slice.len;
    rpos = s.Slice.off;
  }

let sub_reader b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    fail "sub_reader [%d,%d) outside buffer of %d bytes" pos (pos + len)
      (Bytes.length b);
  { rbuf = b; rlimit = pos + len; rpos = pos }

let reader_pos r = r.rpos
let reader_bytes r = r.rbuf
let remaining r = r.rlimit - r.rpos

let narrow r ~len =
  if len < 0 || r.rpos + len > r.rlimit then
    fail "narrow of %d bytes at %d exceeds limit %d" len r.rpos r.rlimit;
  { rbuf = r.rbuf; rlimit = r.rpos + len; rpos = r.rpos }

let remaining_slice r =
  Slice.make r.rbuf ~off:r.rpos ~len:(r.rlimit - r.rpos)

let check_read r n =
  if r.rpos + n > r.rlimit then
    fail "read of %d bytes at %d exceeds limit %d" n r.rpos r.rlimit

let read_u8 r =
  check_read r 1;
  let v = Char.code (Bytes.unsafe_get r.rbuf r.rpos) in
  r.rpos <- r.rpos + 1;
  v

let read_u16 r =
  check_read r 2;
  let v = Bytes.get_uint16_be r.rbuf r.rpos in
  r.rpos <- r.rpos + 2;
  v

let read_u32 r =
  check_read r 4;
  let v = Int32.to_int (Bytes.get_int32_be r.rbuf r.rpos) land 0xffff_ffff in
  r.rpos <- r.rpos + 4;
  v

let read_u64 r =
  check_read r 8;
  let v = Bytes.get_int64_be r.rbuf r.rpos in
  r.rpos <- r.rpos + 8;
  v

let read_bytes r ~len =
  if len < 0 then invalid_arg "Buf.read_bytes: negative length";
  check_read r len;
  let b = Bytes.sub r.rbuf r.rpos len in
  r.rpos <- r.rpos + len;
  b

let read_slice r ~len =
  if len < 0 then invalid_arg "Buf.read_slice: negative length";
  check_read r len;
  let s = Slice.make r.rbuf ~off:r.rpos ~len in
  r.rpos <- r.rpos + len;
  s

let skip r ~len =
  if len < 0 then invalid_arg "Buf.skip: negative length";
  check_read r len;
  r.rpos <- r.rpos + len

let expect_end r =
  if remaining r <> 0 then fail "%d trailing bytes after parse" (remaining r)
