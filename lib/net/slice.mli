(** Zero-copy view into a [bytes] buffer.

    A slice is a (buffer, offset, length) triple: the unit the packet
    hot path passes around instead of [Bytes.sub] copies. The record is
    exposed so parsers and checksums can work on [base] directly with
    explicit bounds; treat the fields as read-only. Slices alias their
    buffer — a slice over a {!Pool} buffer is only valid until the
    buffer is released. *)

type t = private { base : bytes; off : int; len : int }

val make : bytes -> off:int -> len:int -> t
(** View of [base[off, off+len)].
    @raise Invalid_argument if the range is out of bounds. *)

val of_bytes : bytes -> t
(** View of a whole buffer (no copy). *)

val of_string : string -> t
(** Copies the string into a fresh buffer (strings are immutable). *)

val empty : t
val length : t -> int
val is_empty : t -> bool

val get : t -> int -> char
(** Byte at slice-relative index. *)

val sub : t -> off:int -> len:int -> t
(** Narrower view into the same buffer (no copy). *)

val to_bytes : t -> bytes
(** Copy out — the only allocating escape hatch. *)

val to_string : t -> string

val blit : t -> bytes -> dst_off:int -> unit
(** Copy the slice's contents into [dst] at [dst_off]. *)

val equal : t -> t -> bool
(** Content equality, no allocation. *)

val equal_bytes : t -> bytes -> bool

val is_prefix_of : t -> bytes -> bool
(** True when the slice's contents equal a prefix of [b]. *)

val pp : Format.formatter -> t -> unit
