(* Represented as an immediate [int]: 48 bits fit in OCaml's 63-bit
   native int, so addresses never box — an [int64] representation would
   allocate on every read/compare without flambda. *)
type t = int

let of_int64 v =
  if Int64.shift_right_logical v 48 <> 0L then
    invalid_arg "Mac_addr.of_int64: more than 48 bits";
  Int64.to_int v

let to_int64 t = Int64.of_int t

let of_string s =
  let parts = String.split_on_char ':' s in
  if List.length parts <> 6 then
    invalid_arg ("Mac_addr.of_string: " ^ s);
  let octet p =
    if String.length p <> 2 then invalid_arg ("Mac_addr.of_string: " ^ s);
    match int_of_string_opt ("0x" ^ p) with
    | Some v when v >= 0 && v <= 0xff -> v
    | Some _ | None -> invalid_arg ("Mac_addr.of_string: " ^ s)
  in
  List.fold_left (fun acc p -> (acc lsl 8) lor octet p) 0 parts

let octet_at t i = (t lsr (8 * (5 - i))) land 0xff

let to_string t =
  String.concat ":"
    (List.init 6 (fun i -> Printf.sprintf "%02x" (octet_at t i)))

let broadcast = 0xffff_ffff_ffff
let is_broadcast t = Int.equal t broadcast
let is_multicast t = octet_at t 0 land 1 = 1

let write w t =
  Buf.write_u16 w (t lsr 32);
  Buf.write_u32 w (t land 0xffff_ffff)

let read r =
  let hi = Buf.read_u16 r in
  let lo = Buf.read_u32 r in
  (hi lsl 32) lor lo

let equal = Int.equal
let compare = Int.compare
let pp ppf t = Format.pp_print_string ppf (to_string t)
