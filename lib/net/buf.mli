(** Bounded cursor-based reader/writer over [bytes].

    All NIC header encoders and decoders in this repository go through
    this module, so every out-of-bounds access and every truncated
    packet surfaces as {!exception-Out_of_bounds} rather than silent
    corruption. Multi-byte integers are big-endian (network order). *)

exception Out_of_bounds of string

type reader
type writer

(** {1 Writing} *)

val writer : int -> writer
(** A writer over a fresh zeroed buffer of the given capacity. *)

val writer_over : bytes -> writer
(** A writer over a caller-owned (e.g. {!Pool}) buffer, starting at
    position 0. Existing contents are NOT cleared: use {!write_zeros}
    for padding instead of relying on a zeroed buffer. *)

val writer_pos : writer -> int
(** Bytes written so far. *)

val writer_bytes : writer -> bytes
(** The underlying buffer (no copy) — for in-place checksum
    computation over an already-written region. Positions in it are
    absolute writer positions. *)

val write_u8 : writer -> int -> unit
(** @raise Invalid_argument if the value is outside [0, 255]. *)

val write_u16 : writer -> int -> unit
val write_u32 : writer -> int -> unit
val write_u64 : writer -> int64 -> unit
val write_bytes : writer -> bytes -> unit
val write_string : writer -> string -> unit

val write_slice : writer -> Slice.t -> unit
(** Blit a slice's contents (one copy, into the writer). *)

val write_zeros : writer -> int -> unit
(** Write [n] zero bytes without allocating a scratch buffer. *)

val patch_u16 : writer -> pos:int -> int -> unit
(** Overwrite two bytes at an already-written position (checksum
    back-patching). *)

val contents : writer -> bytes
(** Copy of the bytes written so far. *)

val filled : writer -> bytes
(** The underlying buffer without copying, for exact-capacity writers.
    @raise Out_of_bounds if the writer is not full — that would leak
    uninitialised (or stale) tail bytes. *)

val written_slice : writer -> Slice.t
(** Zero-copy view of the bytes written so far. *)

(** {1 Reading} *)

val reader : bytes -> reader

val reader_of_slice : Slice.t -> reader
(** Reader over a slice's range, without copying. *)

val sub_reader : bytes -> pos:int -> len:int -> reader
val reader_pos : reader -> int

val reader_bytes : reader -> bytes
(** The underlying buffer (no copy) — for in-place checksum
    verification over a region about to be parsed. Positions in it are
    absolute reader positions. *)

val remaining : reader -> int

val narrow : reader -> len:int -> reader
(** A reader over the next [len] unread bytes (shares the buffer; the
    original reader is not advanced). Replaces [sub_reader] +
    [Bytes.sub] in zero-copy parsers. *)

val remaining_slice : reader -> Slice.t
(** Zero-copy view of the unread bytes. *)

val read_u8 : reader -> int
val read_u16 : reader -> int
val read_u32 : reader -> int
val read_u64 : reader -> int64
val read_bytes : reader -> len:int -> bytes

val read_slice : reader -> len:int -> Slice.t
(** Like {!read_bytes} but returns a view instead of a copy. *)

val skip : reader -> len:int -> unit

val expect_end : reader -> unit
(** @raise Out_of_bounds if unread bytes remain (trailing-garbage
    detection for strict parsers). *)
