(** The Internet checksum (RFC 1071) used by IPv4 and UDP.

    The checksum is the one's-complement of the one's-complement sum of
    the data viewed as big-endian 16-bit words, with an odd trailing
    byte padded with zero. *)

val ones_complement_sum : ?init:int -> bytes -> pos:int -> len:int -> int
(** Folded 16-bit one's-complement sum of a byte range, seeded with
    [init] (default 0). Composable: feed the result of one range as the
    [init] of the next (pseudo-header then payload). Processes 8 bytes
    per iteration as four unchecked native-endian 16-bit lane loads
    (RFC 1071's byte-order invariance), allocation-free; the sub-word
    tail uses the checked byte loop. *)

val ones_complement_sum_bytewise :
  ?init:int -> bytes -> pos:int -> len:int -> int
(** The straightforward 2-bytes-per-iteration sum. Same result as
    {!ones_complement_sum}; kept as the reference implementation the
    word-wide path is property-tested against. *)

val finish : int -> int
(** Final complement step; maps a folded sum to the wire checksum.
    A resulting 0 is kept as 0 (IPv4 semantics); UDP's 0→0xffff rule is
    applied by the UDP encoder. *)

val compute : bytes -> pos:int -> len:int -> int
(** [finish (ones_complement_sum b ~pos ~len)]. *)

val verify : bytes -> pos:int -> len:int -> bool
(** True when the range (with its embedded checksum field) sums to the
    all-ones pattern, i.e. the checksum is valid. *)
