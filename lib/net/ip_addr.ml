type t = int

let of_int v =
  if v < 0 || v > 0xffff_ffff then
    invalid_arg "Ip_addr.of_int: not a 32-bit value";
  v

let to_int t = t

let of_string s =
  let parts = String.split_on_char '.' s in
  if List.length parts <> 4 then invalid_arg ("Ip_addr.of_string: " ^ s);
  let octet p =
    match int_of_string_opt p with
    | Some v when v >= 0 && v <= 255 && p <> "" -> v
    | Some _ | None -> invalid_arg ("Ip_addr.of_string: " ^ s)
  in
  List.fold_left (fun acc p -> (acc lsl 8) lor octet p) 0 parts

let to_string t =
  Printf.sprintf "%d.%d.%d.%d"
    ((t lsr 24) land 0xff)
    ((t lsr 16) land 0xff)
    ((t lsr 8) land 0xff)
    (t land 0xff)

let localhost = of_string "127.0.0.1"
let any = 0

let in_subnet t ~network ~prefix_len =
  if prefix_len < 0 || prefix_len > 32 then
    invalid_arg "Ip_addr.in_subnet: prefix_len out of [0,32]";
  if prefix_len = 0 then true
  else
    let mask = lnot ((1 lsl (32 - prefix_len)) - 1) land 0xffff_ffff in
    Int.equal (t land mask) (network land mask)

let write w t = Buf.write_u32 w t
let read r = Buf.read_u32 r
let equal = Int.equal
let compare = Int.compare
let pp ppf t = Format.pp_print_string ppf (to_string t)
