(** Whole Ethernet/IPv4/UDP frames: the unit the simulated wire and the
    NIC models exchange. *)

type endpoint = {
  mac : Mac_addr.t;
  ip : Ip_addr.t;
  port : int;
}
(** One side of a UDP flow. *)

type view = {
  eth : Ethernet.t;
  ip : Ipv4.t;
  udp : Udp.t;
  payload : Slice.t;
}
(** A parsed frame whose payload is a zero-copy window into the wire
    bytes it was parsed from. Valid only as long as the backing buffer
    is (a pooled buffer's view dies at [Pool.release]). *)

type t = {
  eth : Ethernet.t;
  ip : Ipv4.t;
  udp : Udp.t;
  payload : bytes;
}
(** An owning frame. Defined after {!view} so unannotated field
    accesses default here. *)

val make :
  src:endpoint -> dst:endpoint -> ?ttl:int -> ?identification:int ->
  bytes -> t
(** A frame carrying the given UDP payload. *)

val wire_size : t -> int
(** Bytes occupying the wire once encoded (after minimum-size padding,
    excluding preamble/FCS/IPG — those are accounted by {!Wire}). *)

val encode_into : t -> bytes -> Slice.t
(** Serialize into a caller-owned (typically {!Pool}) buffer, padding
    to the Ethernet minimum frame size, and return the written window.
    The buffer may be larger than {!wire_size}; its prior contents are
    irrelevant (padding is written explicitly).
    @raise Invalid_argument if the buffer is smaller than [wire_size]. *)

val encode : t -> bytes
(** [encode_into] a fresh exactly-sized buffer. *)

type error =
  | Not_ipv4 of int
  | Not_udp of int
  | Ip_error of Ipv4.error
  | Udp_error of Udp.error

val parse_slice : Slice.t -> (view, error) result
(** Parse and validate wire bytes without copying the payload: headers
    are verified in place and the view's payload aliases the input.
    Ethernet minimum-size padding is tolerated and stripped (the IP
    total length is authoritative). *)

val parse : bytes -> (t, error) result
(** [parse_slice] + {!of_view}: parse into an owning frame. *)

val of_view : view -> t
(** Detach a view from its backing buffer by copying the payload. *)

val src_endpoint : t -> endpoint
val dst_endpoint : t -> endpoint
val view_src_endpoint : view -> endpoint
val view_dst_endpoint : view -> endpoint
val pp : Format.formatter -> t -> unit
val pp_error : Format.formatter -> error -> unit
