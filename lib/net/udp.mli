(** UDP headers with pseudo-header checksum. *)

type t = { src_port : int; dst_port : int; payload_len : int }

val header_size : int
(** 8 bytes. *)

val write :
  Buf.writer -> t -> src_ip:Ip_addr.t -> dst_ip:Ip_addr.t -> payload:bytes ->
  unit
(** Emits header then payload, with the checksum computed over the IPv4
    pseudo-header, the UDP header, and the payload. A computed checksum
    of 0 is transmitted as 0xffff per RFC 768. *)

val write_slice :
  Buf.writer -> t -> src_ip:Ip_addr.t -> dst_ip:Ip_addr.t ->
  payload:Slice.t -> unit
(** Like {!write} but the payload is a slice; the segment is emitted
    directly into the writer and the checksum back-patched in place, so
    no scratch segment buffer is allocated. *)

type error = Truncated | Bad_length of int | Bad_checksum

val read :
  Buf.reader -> src_ip:Ip_addr.t -> dst_ip:Ip_addr.t ->
  (t * bytes, error) result
(** Parses header and payload and verifies the checksum (a zero wire
    checksum means "not computed" and is accepted). *)

val read_slice :
  Buf.reader -> src_ip:Ip_addr.t -> dst_ip:Ip_addr.t ->
  (t * Slice.t, error) result
(** Like {!read} but the payload is a zero-copy view into the reader's
    buffer, and the checksum is verified in place over the original
    wire bytes. *)

val pp : Format.formatter -> t -> unit
val pp_error : Format.formatter -> error -> unit
