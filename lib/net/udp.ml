type t = { src_port : int; dst_port : int; payload_len : int }

let header_size = 8

type error = Truncated | Bad_length of int | Bad_checksum

let pseudo_header_sum ~src_ip ~dst_ip ~udp_len =
  let s = Ip_addr.to_int src_ip and d = Ip_addr.to_int dst_ip in
  (s lsr 16) + (s land 0xffff) + (d lsr 16) + (d land 0xffff)
  + Ipv4.protocol_udp + udp_len

(* Header and payload are emitted straight into the caller's writer,
   then the checksum is computed in place over the written region and
   back-patched — no scratch segment buffer. *)
let write_slice w t ~src_ip ~dst_ip ~payload =
  if not (Int.equal (Slice.length payload) t.payload_len) then
    invalid_arg "Udp.write_slice: payload length mismatch";
  let udp_len = header_size + t.payload_len in
  let start = Buf.writer_pos w in
  Buf.write_u16 w t.src_port;
  Buf.write_u16 w t.dst_port;
  Buf.write_u16 w udp_len;
  let csum_pos = Buf.writer_pos w in
  Buf.write_u16 w 0;
  Buf.write_slice w payload;
  let init = pseudo_header_sum ~src_ip ~dst_ip ~udp_len in
  let sum =
    Checksum.ones_complement_sum ~init (Buf.writer_bytes w) ~pos:start
      ~len:udp_len
  in
  let csum =
    match Checksum.finish sum with
    | 0 -> 0xffff (* RFC 768: transmitted 0 means "no checksum" *)
    | c -> c
  in
  Buf.patch_u16 w ~pos:csum_pos csum

let write w t ~src_ip ~dst_ip ~payload =
  if not (Int.equal (Bytes.length payload) t.payload_len) then
    invalid_arg "Udp.write: payload length mismatch";
  write_slice w t ~src_ip ~dst_ip ~payload:(Slice.of_bytes payload)

let read_slice r ~src_ip ~dst_ip =
  if Buf.remaining r < header_size then Error Truncated
  else begin
    let base = Buf.reader_bytes r in
    let start = Buf.reader_pos r in
    let src_port = Buf.read_u16 r in
    let dst_port = Buf.read_u16 r in
    let udp_len = Buf.read_u16 r in
    let wire_csum = Buf.read_u16 r in
    if udp_len < header_size || udp_len - header_size > Buf.remaining r then
      Error (Bad_length udp_len)
    else begin
      let payload_len = udp_len - header_size in
      let payload = Buf.read_slice r ~len:payload_len in
      if wire_csum = 0 then Ok ({ src_port; dst_port; payload_len }, payload)
      else begin
        (* Sum the segment's original wire bytes in place (checksum
           field included): a valid segment sums to all-ones. *)
        let init = pseudo_header_sum ~src_ip ~dst_ip ~udp_len in
        let sum =
          Checksum.ones_complement_sum ~init base ~pos:start ~len:udp_len
        in
        if sum land 0xffff = 0xffff then
          Ok ({ src_port; dst_port; payload_len }, payload)
        else Error Bad_checksum
      end
    end
  end

let read r ~src_ip ~dst_ip =
  match read_slice r ~src_ip ~dst_ip with
  | Error _ as e -> e
  | Ok (t, payload) -> Ok (t, Slice.to_bytes payload)

let pp ppf t =
  Format.fprintf ppf "udp %d -> %d len=%d" t.src_port t.dst_port
    t.payload_len

let pp_error ppf = function
  | Truncated -> Format.pp_print_string ppf "truncated UDP header"
  | Bad_length l -> Format.fprintf ppf "bad UDP length %d" l
  | Bad_checksum -> Format.pp_print_string ppf "bad UDP checksum"
