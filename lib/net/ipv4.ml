type t = {
  dscp : int;
  identification : int;
  ttl : int;
  protocol : int;
  src : Ip_addr.t;
  dst : Ip_addr.t;
  payload_len : int;
}

let header_size = 20
let protocol_udp = 17
let protocol_tcp = 6

type error =
  | Truncated
  | Bad_version of int
  | Options_unsupported of int
  | Bad_checksum
  | Bad_length of int

let write w t =
  let start = Buf.writer_pos w in
  Buf.write_u8 w 0x45 (* version 4, IHL 5 *);
  Buf.write_u8 w (t.dscp lsl 2);
  Buf.write_u16 w (header_size + t.payload_len);
  Buf.write_u16 w t.identification;
  Buf.write_u16 w 0x4000 (* flags: don't-fragment; offset 0 *);
  Buf.write_u8 w t.ttl;
  Buf.write_u8 w t.protocol;
  let checksum_pos = Buf.writer_pos w in
  Buf.write_u16 w 0;
  Ip_addr.write w t.src;
  Ip_addr.write w t.dst;
  let csum =
    Checksum.compute (Buf.writer_bytes w) ~pos:start ~len:header_size
  in
  Buf.patch_u16 w ~pos:checksum_pos csum

let read r =
  if Buf.remaining r < header_size then Error Truncated
  else begin
    (* Validate the checksum in place on the raw header bytes before
       decoding — no header copy. *)
    let base = Buf.reader_bytes r in
    let start = Buf.reader_pos r in
    let vi = Buf.read_u8 r in
    let version = vi lsr 4 and ihl = vi land 0xf in
    if version <> 4 then Error (Bad_version version)
    else if ihl <> 5 then Error (Options_unsupported ihl)
    else if not (Checksum.verify base ~pos:start ~len:header_size) then
      Error Bad_checksum
    else begin
      let dscp = Buf.read_u8 r lsr 2 in
      let total_len = Buf.read_u16 r in
      let identification = Buf.read_u16 r in
      let _flags_frag = Buf.read_u16 r in
      let ttl = Buf.read_u8 r in
      let protocol = Buf.read_u8 r in
      let _csum = Buf.read_u16 r in
      let src = Ip_addr.read r in
      let dst = Ip_addr.read r in
      let payload_len = total_len - header_size in
      if payload_len < 0 || payload_len > Buf.remaining r then
        Error (Bad_length total_len)
      else
        Ok { dscp; identification; ttl; protocol; src; dst; payload_len }
    end
  end

let pp ppf t =
  Format.fprintf ppf "ipv4 %a -> %a proto=%d len=%d ttl=%d" Ip_addr.pp t.src
    Ip_addr.pp t.dst t.protocol t.payload_len t.ttl

let pp_error ppf = function
  | Truncated -> Format.pp_print_string ppf "truncated IPv4 header"
  | Bad_version v -> Format.fprintf ppf "bad IP version %d" v
  | Options_unsupported ihl -> Format.fprintf ppf "IP options (ihl=%d)" ihl
  | Bad_checksum -> Format.pp_print_string ppf "bad IPv4 header checksum"
  | Bad_length l -> Format.fprintf ppf "inconsistent total_length %d" l
