(** Freelist of reusable fixed-size frame buffers.

    The simulated NIC datapaths preallocate their descriptor-ring
    buffers here instead of allocating per packet, mirroring the
    kernel-bypass discipline of real NICs. [acquire]/[release] are O(1)
    and allocation-free in steady state (the freelist is an array
    stack, not a cons list); the pool grows on demand when drained and
    keeps full accounting so tests can assert that every acquired
    buffer comes back. *)

type t

type monitor = {
  on_acquire : bytes -> unit;
  on_release : bytes -> unit;
}
(** Observation hooks for sanitizers: [on_acquire] runs after a buffer
    leaves the pool, [on_release] just before one re-enters the
    freelist (so the monitor may poison its contents). *)

val create : ?prealloc:int -> buffer_bytes:int -> unit -> t
(** A pool handing out buffers of exactly [buffer_bytes], with
    [prealloc] of them allocated up front (default 0). *)

val buffer_bytes : t -> int

val set_monitor : t -> monitor option -> unit
(** Install (or clear) the monitor. With [None] — the default — the
    hot path pays a single branch per acquire/release. *)

val acquire : t -> bytes
(** A buffer from the freelist, or a fresh one if the list is empty.
    Contents are arbitrary (previous packet's bytes) — writers must
    overwrite or zero what they use. *)

val release : t -> bytes -> unit
(** Return a buffer to the freelist. Any slice into it becomes invalid.
    @raise Invalid_argument on a wrong-size buffer or when releases
    would exceed acquires (double-release indicator). *)

val acquired : t -> int
(** Total acquires over the pool's lifetime. *)

val released : t -> int
(** Total releases over the pool's lifetime. *)

val outstanding : t -> int
(** [acquired - released]: buffers currently held by callers. Zero at
    drain iff every acquire was matched by a release. *)

val idle : t -> int
(** Buffers sitting in the freelist now. *)

val created : t -> int
(** Buffers ever allocated (steady state stops increasing this). *)

val high_water : t -> int
(** Maximum simultaneous outstanding buffers observed. *)

val pp : Format.formatter -> t -> unit
