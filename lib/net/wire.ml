type t = {
  engine : Sim.Engine.t;
  gbps : float;
  propagation : Sim.Units.duration;
  loss : float;
  corruption : float;
  rng : Sim.Rng.t;
  deliver : Frame.t -> unit;
  mutable scratch : bytes;  (* corruption-model workspace, reused *)
  mutable free_at : Sim.Units.time;
  mutable frames : int;
  mutable bytes : int;
  mutable lost : int;
  mutable corrupted : int;
}

let overhead_bytes = 24 (* 7 preamble + 1 SFD + 4 FCS + 12 IPG *)

let serialization_delay ~gbps ~bytes =
  if gbps <= 0. then invalid_arg "Wire.serialization_delay: rate <= 0";
  let bits = float_of_int ((bytes + overhead_bytes) * 8) in
  int_of_float (Float.round (bits /. gbps))

let create engine ~gbps ~propagation ?(loss = 0.) ?(corruption = 0.)
    ?(seed = 0x5eed) ~deliver () =
  if gbps <= 0. then invalid_arg "Wire.create: rate <= 0";
  if propagation < 0 then invalid_arg "Wire.create: negative propagation";
  if loss < 0. || loss > 1. then invalid_arg "Wire.create: loss out of [0,1]";
  if corruption < 0. || corruption > 1. then
    invalid_arg "Wire.create: corruption out of [0,1]";
  {
    engine;
    gbps;
    propagation;
    loss;
    corruption;
    rng = Sim.Rng.create ~seed;
    deliver;
    scratch = Bytes.create 0;
    free_at = 0;
    frames = 0;
    bytes = 0;
    lost = 0;
    corrupted = 0;
  }

let transmit t frame =
  let size = Frame.wire_size frame in
  let start = max (Sim.Engine.now t.engine) t.free_at in
  let tx_done = start + serialization_delay ~gbps:t.gbps ~bytes:size in
  t.free_at <- tx_done;
  t.frames <- t.frames + 1;
  t.bytes <- t.bytes + size + overhead_bytes;
  let arrival = tx_done + t.propagation in
  if t.loss > 0. && Sim.Rng.float t.rng < t.loss then t.lost <- t.lost + 1
  else if t.corruption > 0. && Sim.Rng.float t.rng < t.corruption then begin
    (* Flip one random byte of the encoded frame and re-parse: the
       checksums almost always reject it (receiver drop); if the flip
       lands in padding or payload bytes covered only by a checksum the
       receiver skips, the corrupted frame goes through. *)
    if Bytes.length t.scratch < size then t.scratch <- Bytes.create size;
    let s = Frame.encode_into frame t.scratch in
    let i = s.Slice.off + Sim.Rng.int t.rng ~bound:(Slice.length s) in
    Bytes.set t.scratch i
      (Char.chr (Char.code (Bytes.get t.scratch i) lxor 0xff));
    match Frame.parse_slice s with
    | Ok v ->
        (* The scratch is reused for the next frame, so detach. *)
        let f = Frame.of_view v in
        ignore
          (Sim.Engine.schedule_at t.engine ~at:arrival (fun () ->
               t.deliver f))
    | Error _ -> t.corrupted <- t.corrupted + 1
  end
  else
    ignore
      (Sim.Engine.schedule_at t.engine ~at:arrival (fun () ->
           t.deliver frame))

let frames_sent t = t.frames
let bytes_sent t = t.bytes
let busy_until t = t.free_at

let frames_lost t = t.lost
let frames_corrupted t = t.corrupted
