type t = { base : bytes; off : int; len : int }

let[@hot_path] make base ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length base then
    invalid_arg
      (Printf.sprintf "Slice.make: [%d,%d) outside buffer of %d bytes" off
         (off + len) (Bytes.length base))
  else ({ base; off; len } [@alloc_ok])

let of_bytes b = { base = b; off = 0; len = Bytes.length b }
let empty = { base = Bytes.empty; off = 0; len = 0 }
let[@hot_path] length t = t.len
let is_empty t = t.len = 0

let[@hot_path] get t i =
  if i < 0 || i >= t.len then invalid_arg "Slice.get: index out of bounds";
  Bytes.unsafe_get t.base (t.off + i)

let[@hot_path] sub t ~off ~len =
  if off < 0 || len < 0 || off + len > t.len then
    invalid_arg
      (Printf.sprintf "Slice.sub: [%d,%d) outside slice of %d bytes" off
        (off + len) t.len)
  else ({ base = t.base; off = t.off + off; len } [@alloc_ok])

let to_bytes t = Bytes.sub t.base t.off t.len
let to_string t = Bytes.sub_string t.base t.off t.len

let of_string s = of_bytes (Bytes.of_string s)

let[@hot_path] blit t dst ~dst_off =
  Bytes.blit t.base t.off dst dst_off t.len

let[@hot_path] equal a b =
  Int.equal a.len b.len
  &&
  let rec go i =
    Int.equal i a.len
    || Char.equal
         (Bytes.unsafe_get a.base (a.off + i))
         (Bytes.unsafe_get b.base (b.off + i))
       && go (i + 1)
  in
  go 0

let equal_bytes t b = equal t (of_bytes b)

let[@hot_path] is_prefix_of t b =
  Bytes.length b >= t.len
  &&
  let rec go i =
    Int.equal i t.len
    || Char.equal (Bytes.unsafe_get t.base (t.off + i)) (Bytes.unsafe_get b i)
       && go (i + 1)
  in
  go 0

let pp ppf t = Format.fprintf ppf "slice[%d..%d)" t.off (t.off + t.len)
