let[@hot_path] fold_carries sum =
  let rec go s = if s lsr 16 = 0 then s else go ((s land 0xffff) + (s lsr 16)) in
  go sum

let check_range name b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg (Printf.sprintf "Checksum.%s: range out of bounds" name)

let[@hot_path] ones_complement_sum_bytewise ?(init = 0) b ~pos ~len =
  check_range "ones_complement_sum_bytewise" b ~pos ~len;
  let sum = ref init in
  let i = ref pos in
  let stop = pos + len in
  while !i + 1 < stop do
    sum := !sum + Bytes.get_uint16_be b !i;
    i := !i + 2
  done;
  if !i < stop then sum := !sum + (Char.code (Bytes.get b !i) lsl 8);
  fold_carries !sum

let[@hot_path] swap16 v = ((v land 0xff) lsl 8) lor ((v lsr 8) land 0xff)

external get16u : bytes -> int -> int = "%caml_bytes_get16u"
(* Unchecked native-endian 16-bit load. Safe here: [check_range]
   validates the whole range once up front. A 64-bit [get64u] would
   halve the loads again, but without flambda every [int64] result is
   boxed — an allocation per word — which defeats the zero-allocation
   hot path; four unboxed 16-bit lanes per iteration is the fastest
   allocation-free form. *)

(* The one's-complement sum is invariant under uniform byte order
   (RFC 1071 §2(B)): summing the data as native-endian 16-bit lanes and
   byte-swapping the folded result equals the big-endian sum. The main
   loop therefore consumes 8 bytes per iteration as four unchecked
   native lane loads with no per-lane byte swap; only the sub-word tail
   falls back to the checked big-endian byte loop. *)
let[@hot_path] ones_complement_sum ?(init = 0) b ~pos ~len =
  check_range "ones_complement_sum" b ~pos ~len;
  let stop = pos + len in
  let sum = ref init in
  let i = ref pos in
  if len >= 32 then begin
    let acc = ref 0 in
    while !i + 8 <= stop do
      acc :=
        !acc + get16u b !i
        + get16u b (!i + 2)
        + get16u b (!i + 4)
        + get16u b (!i + 6);
      i := !i + 8
    done;
    (* acc grows by at most 4 * 0xffff per iteration, so it stays well
       under 62 bits for any representable [bytes]: one fold at the end
       suffices. *)
    let lanes = fold_carries !acc in
    sum := !sum + if Sys.big_endian then lanes else swap16 lanes
  end;
  (* Tail (and short buffers): the lane loop consumed a multiple of 8
     bytes from [pos], so 16-bit pairing parity is preserved. *)
  while !i + 1 < stop do
    sum := !sum + Bytes.get_uint16_be b !i;
    i := !i + 2
  done;
  if !i < stop then sum := !sum + (Char.code (Bytes.get b !i) lsl 8);
  fold_carries !sum

let[@hot_path] finish sum = lnot (fold_carries sum) land 0xffff
let[@hot_path] compute b ~pos ~len = finish (ones_complement_sum b ~pos ~len)

let[@hot_path] verify b ~pos ~len =
  fold_carries (ones_complement_sum b ~pos ~len) = 0xffff
