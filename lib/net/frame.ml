type endpoint = { mac : Mac_addr.t; ip : Ip_addr.t; port : int }

type view = {
  eth : Ethernet.t;
  ip : Ipv4.t;
  udp : Udp.t;
  payload : Slice.t;
}

(* Defined after [view] so unannotated field accesses default to the
   owning frame type. *)
type t = {
  eth : Ethernet.t;
  ip : Ipv4.t;
  udp : Udp.t;
  payload : bytes;
}

let make ~src ~dst ?(ttl = 64) ?(identification = 0) payload : t =
  let payload_len = Bytes.length payload in
  {
    eth =
      {
        Ethernet.dst = dst.mac;
        src = src.mac;
        ethertype = Ethernet.ethertype_ipv4;
      };
    ip =
      {
        Ipv4.dscp = 0;
        identification;
        ttl;
        protocol = Ipv4.protocol_udp;
        src = src.ip;
        dst = dst.ip;
        payload_len = Udp.header_size + payload_len;
      };
    udp = { Udp.src_port = src.port; dst_port = dst.port; payload_len };
    payload;
  }

let unpadded_size (t : t) =
  Ethernet.header_size + Ipv4.header_size + Udp.header_size
  + Bytes.length t.payload

let wire_size t = max Ethernet.min_frame_size (unpadded_size t)

(* Serialize into a caller-owned (typically pooled) buffer. The buffer
   may be larger than the frame and its contents are arbitrary — the
   minimum-size padding is therefore written explicitly rather than
   assumed pre-zeroed. *)
let[@hot_path] encode_into (t : t) buf =
  let size = wire_size t in
  if Bytes.length buf < size then
    invalid_arg "Frame.encode_into: buffer smaller than wire size";
  let w = Buf.writer_over buf in
  Ethernet.write w t.eth;
  Ipv4.write w t.ip;
  Udp.write_slice w t.udp ~src_ip:t.ip.Ipv4.src ~dst_ip:t.ip.Ipv4.dst
    ~payload:(Slice.of_bytes t.payload);
  let pad = size - Buf.writer_pos w in
  if pad > 0 then Buf.write_zeros w pad;
  Buf.written_slice w

let encode t =
  let buf = Bytes.create (wire_size t) in
  let (_ : Slice.t) = encode_into t buf in
  buf

type error =
  | Not_ipv4 of int
  | Not_udp of int
  | Ip_error of Ipv4.error
  | Udp_error of Udp.error

let[@hot_path] parse_slice s =
  let r = Buf.reader_of_slice s in
  let eth = Ethernet.read r in
  if not (Int.equal eth.Ethernet.ethertype Ethernet.ethertype_ipv4) then
    Error (Not_ipv4 eth.Ethernet.ethertype)
  else
    match Ipv4.read r with
    | Error e -> Error (Ip_error e)
    | Ok ip ->
        if not (Int.equal ip.Ipv4.protocol Ipv4.protocol_udp) then
          Error (Not_udp ip.Ipv4.protocol)
        else
          (* Restrict the view to the IP payload so Ethernet padding is
             not mistaken for UDP data. *)
          let sub = Buf.narrow r ~len:ip.Ipv4.payload_len in
          (match
             Udp.read_slice sub ~src_ip:ip.Ipv4.src ~dst_ip:ip.Ipv4.dst
           with
          | Error e -> Error (Udp_error e)
          | Ok (udp, payload) -> Ok (({ eth; ip; udp; payload } [@alloc_ok]) : view))

let of_view (v : view) : t =
  { eth = v.eth; ip = v.ip; udp = v.udp; payload = Slice.to_bytes v.payload }

let parse b =
  match parse_slice (Slice.of_bytes b) with
  | Error _ as e -> e
  | Ok v -> Ok (of_view v)

let src_endpoint (t : t) =
  { mac = t.eth.Ethernet.src; ip = t.ip.Ipv4.src; port = t.udp.Udp.src_port }

let dst_endpoint (t : t) =
  { mac = t.eth.Ethernet.dst; ip = t.ip.Ipv4.dst; port = t.udp.Udp.dst_port }

let view_src_endpoint (v : view) =
  { mac = v.eth.Ethernet.src; ip = v.ip.Ipv4.src; port = v.udp.Udp.src_port }

let view_dst_endpoint (v : view) =
  { mac = v.eth.Ethernet.dst; ip = v.ip.Ipv4.dst; port = v.udp.Udp.dst_port }

let pp ppf (t : t) =
  Format.fprintf ppf "%a | %a | %a | %d payload bytes" Ethernet.pp t.eth
    Ipv4.pp t.ip Udp.pp t.udp (Bytes.length t.payload)

let pp_error ppf = function
  | Not_ipv4 et -> Format.fprintf ppf "not IPv4 (ethertype 0x%04x)" et
  | Not_udp p -> Format.fprintf ppf "not UDP (protocol %d)" p
  | Ip_error e -> Ipv4.pp_error ppf e
  | Udp_error e -> Udp.pp_error ppf e
