type monitor = {
  on_acquire : bytes -> unit;
  on_release : bytes -> unit;
}

type t = {
  buffer_bytes : int;
  mutable free : bytes array;  (* stack of idle buffers; [0, top) valid *)
  mutable top : int;
  mutable acquired : int;
  mutable released : int;
  mutable created : int;
  mutable high_water : int;
  mutable monitor : monitor option;
}

let create ?(prealloc = 0) ~buffer_bytes () =
  if buffer_bytes <= 0 then invalid_arg "Pool.create: buffer_bytes <= 0";
  if prealloc < 0 then invalid_arg "Pool.create: negative prealloc";
  let t =
    {
      buffer_bytes;
      free = Array.make (max 16 prealloc) Bytes.empty;
      top = 0;
      acquired = 0;
      released = 0;
      created = 0;
      high_water = 0;
      monitor = None;
    }
  in
  for i = 0 to prealloc - 1 do
    t.free.(i) <- Bytes.create buffer_bytes
  done;
  t.top <- prealloc;
  t.created <- prealloc;
  t

let buffer_bytes t = t.buffer_bytes
let set_monitor t m = t.monitor <- m

let[@hot_path] acquire t =
  t.acquired <- t.acquired + 1;
  let outstanding = t.acquired - t.released in
  if outstanding > t.high_water then t.high_water <- outstanding;
  let b =
    if t.top > 0 then begin
      t.top <- t.top - 1;
      let b = t.free.(t.top) in
      t.free.(t.top) <- Bytes.empty;
      b
    end
    else begin
      t.created <- t.created + 1;
      (Bytes.create t.buffer_bytes [@alloc_ok])
    end
  in
  (match t.monitor with None -> () | Some m -> m.on_acquire b);
  b

let[@hot_path] release t b =
  if not (Int.equal (Bytes.length b) t.buffer_bytes) then
    invalid_arg
      (Printf.sprintf "Pool.release: buffer of %d bytes into a %dB pool"
         (Bytes.length b) t.buffer_bytes);
  if t.released >= t.acquired then
    invalid_arg "Pool.release: more releases than acquires";
  (* The monitor sees the buffer before it returns to the freelist, so
     a sanitizer can record identity and poison the contents. *)
  (match t.monitor with None -> () | Some m -> m.on_release b);
  t.released <- t.released + 1;
  if Int.equal t.top (Array.length t.free) then begin
    let bigger = Array.make (2 * max 1 t.top) Bytes.empty in
    Array.blit t.free 0 bigger 0 t.top;
    t.free <- bigger
  end;
  t.free.(t.top) <- b;
  t.top <- t.top + 1

let acquired t = t.acquired
let released t = t.released
let outstanding t = t.acquired - t.released
let idle t = t.top
let created t = t.created
let high_water t = t.high_water

let pp ppf t =
  Format.fprintf ppf
    "pool(%dB: %d created, %d idle, %d outstanding, hw=%d)" t.buffer_bytes
    t.created t.top (outstanding t) t.high_water
