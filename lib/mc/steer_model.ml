type state = {
  to_arrive : int;
  q_worker : int;
  q_fallback : int;
  handled : int;
  nacked : int;
  stranded : int;
  worker_alive : bool;
  mirror_alive : bool;
  push_in_flight : bool;
}

type action =
  | Arrive
  | Worker_dies
  | Push_lands
  | Worker_handles
  | Fallback_handles
  | Sweep
  | Strand

let pp_state fmt s =
  Format.fprintf fmt
    "{arr=%d qw=%d qf=%d done=%d nack=%d strand=%d w=%c mirror=%c push=%c}"
    s.to_arrive s.q_worker s.q_fallback s.handled s.nacked s.stranded
    (if s.worker_alive then 'A' else 'D')
    (if s.mirror_alive then 'A' else 'D')
    (if s.push_in_flight then 'Y' else 'N')

let pp_action fmt = function
  | Arrive -> Format.pp_print_string fmt "packet arrives at NIC"
  | Worker_dies -> Format.pp_print_string fmt "pinned worker dies"
  | Push_lands -> Format.pp_print_string fmt "mirror push lands (NIC learns)"
  | Worker_handles -> Format.pp_print_string fmt "worker handles packet"
  | Fallback_handles -> Format.pp_print_string fmt "fallback handles packet"
  | Sweep -> Format.pp_print_string fmt "dead-pid sweep NACKs stale queue"
  | Strand -> Format.pp_print_string fmt "dispatch has no target: RPC stranded"

module Model (P : sig
  val packets : int
  val with_fallback : bool
end) =
struct
  type nonrec state = state
  type nonrec action = action

  let initial =
    [
      {
        to_arrive = P.packets;
        q_worker = 0;
        q_fallback = 0;
        handled = 0;
        nacked = 0;
        stranded = 0;
        worker_alive = true;
        mirror_alive = true;
        push_in_flight = false;
      };
    ]

  let actions s =
    let out = ref [] in
    let add a s' = out := (a, s') :: !out in
    if s.to_arrive > 0 then begin
      (* The NIC consults its (possibly stale) mirror at dispatch time. *)
      if s.mirror_alive then
        add Arrive { s with to_arrive = s.to_arrive - 1; q_worker = s.q_worker + 1 }
      else if P.with_fallback then
        add Arrive
          { s with to_arrive = s.to_arrive - 1; q_fallback = s.q_fallback + 1 }
      else
        add Strand { s with to_arrive = s.to_arrive - 1; stranded = s.stranded + 1 }
    end;
    if s.worker_alive then begin
      add Worker_dies { s with worker_alive = false; push_in_flight = true };
      if s.q_worker > 0 then
        add Worker_handles { s with q_worker = s.q_worker - 1; handled = s.handled + 1 }
    end;
    if s.push_in_flight then
      add Push_lands { s with push_in_flight = false; mirror_alive = false };
    (* Once the mirror has converged on the death, the dead-pid sweep
       NACKs everything that was queued during the stale window — the
       PR-4 "never silent loss" semantics. *)
    if (not s.worker_alive) && (not s.mirror_alive) && s.q_worker > 0 then
      add Sweep { s with q_worker = 0; nacked = s.nacked + s.q_worker };
    if s.q_fallback > 0 then
      add Fallback_handles
        { s with q_fallback = s.q_fallback - 1; handled = s.handled + 1 };
    !out

  let invariant s =
    let total =
      s.to_arrive + s.q_worker + s.q_fallback + s.handled + s.nacked + s.stranded
    in
    if total <> P.packets then
      Error
        (Format.asprintf "packet conservation broken: %d of %d in %a" total
           P.packets pp_state s)
    else if s.stranded > 0 then
      Error
        (Format.asprintf
           "RPC stranded: steering names a dead worker and declares no \
            fallback (%a)"
           pp_state s)
    else Ok ()

  let is_terminal s =
    s.to_arrive = 0 && s.q_worker = 0 && s.q_fallback = 0
    && s.handled + s.nacked + s.stranded = P.packets

  let equal (a : state) (b : state) = a = b
  let hash (s : state) = Hashtbl.hash s
  let pp_state = pp_state
  let pp_action = pp_action
end

type step = { action : action option; state : state }

let check ?(packets = 2) ~with_fallback () =
  let module M = Model (struct
    let packets = packets
    let with_fallback = with_fallback
  end) in
  let module C = State_space.Make (M) in
  match C.check () with
  | State_space.Ok_verdict st -> State_space.Ok_verdict st
  | Invariant_violation { message; trace; stats } ->
      Invariant_violation
        {
          message;
          trace =
            List.map (fun (s : C.step) -> { action = s.action; state = s.state }) trace;
          stats;
        }
  | Deadlock { trace; stats } ->
      Deadlock
        {
          trace =
            List.map (fun (s : C.step) -> { action = s.action; state = s.state }) trace;
          stats;
        }
  | State_limit st -> State_limit st

let pp_trace fmt trace =
  List.iteri
    (fun i { action; state } ->
      match action with
      | None -> Format.fprintf fmt "  %2d. initial        %a@," i pp_state state
      | Some a ->
          Format.fprintf fmt "  %2d. %a@,      -> %a@," i pp_action a pp_state
            state)
    trace
