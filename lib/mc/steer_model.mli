(** Steering under scheduler-mirror staleness.

    Composes the steering decision with the dispatch model's
    stale-mirror semantics (see {!Dispatch_model}): the NIC steers by a
    fixed program while the target worker can die, and the death
    notification (a [Sched_mirror] push) is in flight for a window
    during which the NIC still believes the worker is alive.

    The model is parameterized by whether the steering program declares
    a fallback target ([with_fallback]).  With a fallback, every packet
    is eventually handled or NACKed — no silent loss, no strand.
    Without one, a packet arriving after the mirror has converged on
    the death has no valid lane: the program still names the dead
    worker, and the RPC is stranded.  [check ~with_fallback:false ()]
    therefore returns a counterexample trace; the steering verifier
    uses this to reject worker-pinned programs that omit a fallback. *)

type state = {
  to_arrive : int;  (** Packets not yet at the NIC. *)
  q_worker : int;  (** Enqueued on the pinned worker's lane. *)
  q_fallback : int;  (** Enqueued on the fallback lane. *)
  handled : int;
  nacked : int;  (** Rejected with [err_dead] — retried upstream. *)
  stranded : int;  (** Dispatched nowhere: silent loss. *)
  worker_alive : bool;
  mirror_alive : bool;  (** The NIC's (possibly stale) belief. *)
  push_in_flight : bool;  (** Death notification posted, not landed. *)
}

type action =
  | Arrive
  | Worker_dies
  | Push_lands
  | Worker_handles
  | Fallback_handles
  | Sweep  (** Dead-pid sweep NACKs packets queued during staleness. *)
  | Strand  (** No-fallback dispatch against a converged-dead mirror. *)

val pp_state : Format.formatter -> state -> unit
val pp_action : Format.formatter -> action -> unit

type step = { action : action option; state : state }

val check :
  ?packets:int -> with_fallback:bool -> unit -> step State_space.verdict
(** Explore all interleavings of [packets] arrivals (default 2) against
    worker death and mirror convergence.  Invariant: packet
    conservation and [stranded = 0]. *)

val pp_trace : Format.formatter -> step list -> unit
