(** Binary min-heap of timestamped events with O(log n) insert/pop and
    O(1) cancellation.

    Ties on the timestamp are broken by insertion order, so the simulation
    is deterministic: two events scheduled for the same instant fire in
    the order they were scheduled. Cancellation is lazy — a cancelled
    entry stays in the heap until it surfaces or until cancelled entries
    become the majority, at which point the heap compacts in place.

    Entries are stored unboxed (no [option] wrapper); a push performs
    exactly one allocation, the entry itself, which doubles as the
    cancellation handle. *)

type 'a t
(** Heap carrying payloads of type ['a]. *)

type 'a handle = 'a Sched_entry.t
(** Identifies a scheduled entry; used to cancel it. The concrete type
    is shared with {!Timing_wheel} so {!Scheduler} can hand out one
    handle type regardless of backend. *)

val create : unit -> 'a t

val is_empty : 'a t -> bool
(** True when no live (non-cancelled) entry remains. *)

val live_count : 'a t -> int
(** Number of scheduled entries not yet popped or cancelled. *)

val push : 'a t -> time:Units.time -> 'a -> 'a handle
(** Schedule a payload at the given time; returns a cancellation handle. *)

val cancel : 'a t -> 'a handle -> unit
(** Cancel a scheduled entry. Cancelling an already-popped or
    already-cancelled entry is a no-op. *)

val pop : 'a t -> (Units.time * 'a) option
(** Remove and return the earliest live entry, or [None] if empty. *)

val peek_time : 'a t -> Units.time option
(** Timestamp of the earliest live entry without removing it. *)

val validate : 'a t -> (unit, string) result
(** Structural self-check: heap order over the stored prefix and
    agreement between the cancelled flags and {!live_count}. O(n);
    meant for sanitizer builds and tests, not the hot path. *)
