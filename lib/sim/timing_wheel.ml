(* Hierarchical timing wheel: O(1) schedule and cancel, pops in exact
   [(time, seq)] order — byte-for-byte the order {!Event_heap} pops.

   Six levels of 256 slots each; level [l]'s slots are [256^l] ns wide,
   so the wheel spans 2^48 ns (~3.26 simulated days) around the current
   time. Events beyond the span park in an unsorted overflow vector and
   migrate in when the clock's top bits catch up (effectively never on
   realistic horizons, but exercised by tests).

   Placement invariant: a live entry with timestamp [T] sits at level
   [level_for (cur lxor T)] — the byte position of the highest bit in
   which [T] differs from the current time — in slot
   [(T lsr 8l) land 255]. Advancing the clock to the next event time
   cascades exactly the buckets whose slot the new time enters, so the
   invariant is restored before any new push can observe it. Two
   consequences carry the determinism proof:

   - all live entries in one level-0 bucket share one exact timestamp
     (their bytes above 0 equal the clock's, byte 0 is the slot);
   - within any bucket, append order is seq order: an older entry is
     cascaded into a bucket at the advance that makes the bucket
     current, which is before any younger push can target it.

   FIFO buckets therefore pop equal-time entries in insertion order,
   matching the heap's tie-break. Cancellation is lazy, like the
   heap's: cancelled entries are dropped when a cascade or pop visits
   them. *)

type 'a entry = 'a Sched_entry.t = {
  time : Units.time;
  seq : int;
  payload : 'a;
  mutable cancelled : bool;
}

type 'a handle = 'a entry

let levels = 6
let slot_bits = 8
let slots = 1 lsl slot_bits (* 256 *)
let span_bits = levels * slot_bits (* 48 *)

(* A FIFO bucket: a growable array window [head, len). Vacated slots
   are overwritten with the sentinel so popped payloads are not
   retained. *)
type 'a bucket = {
  mutable arr : 'a entry array;
  mutable head : int;
  mutable len : int;
}

type 'a t = {
  wheel : 'a bucket array array; (* wheel.(level).(slot) *)
  mutable cur : Units.time;
  mutable next_seq : int;
  mutable live : int;
  (* far-future parking lot: entries whose top 15 bits differ from
     [cur]'s; unsorted, scanned only when the wheel proper is empty *)
  mutable over_arr : 'a entry array;
  mutable over_len : int;
  mutable sentinel : 'a entry option;
}

let create () =
  {
    wheel =
      Array.init levels (fun _ ->
          Array.init slots (fun _ -> { arr = [||]; head = 0; len = 0 }));
    cur = 0;
    next_seq = 0;
    live = 0;
    over_arr = [||];
    over_len = 0;
    sentinel = None;
  }

let is_empty t = t.live = 0
let live_count t = t.live
let now t = t.cur

let sentinel_of t e =
  match t.sentinel with
  | Some s -> s
  | None ->
      let s = { time = 0; seq = -1; payload = e.payload; cancelled = true } in
      t.sentinel <- Some s;
      s

(* Highest differing byte position of [cur lxor time]: the level an
   entry lives at. Callers have already routed [x lsr span_bits <> 0]
   to the overflow vector. *)
let[@hot_path] level_for x =
  if x < 0x100 then 0
  else if x < 0x1_0000 then 1
  else if x < 0x100_0000 then 2
  else if x < 0x1_0000_0000 then 3
  else if x < 0x100_0000_0000 then 4
  else 5

let bucket_grow t b e =
  let s = sentinel_of t e in
  let n = b.len - b.head in
  let cap = max 8 (2 * n) in
  if cap <= Array.length b.arr && b.head > 0 then begin
    (* enough room once the popped prefix is dropped: compact in place *)
    Array.blit b.arr b.head b.arr 0 n;
    Array.fill b.arr n (Array.length b.arr - n) s
  end
  else begin
    let arr = Array.make cap s in
    Array.blit b.arr b.head arr 0 n;
    b.arr <- arr
  end;
  b.head <- 0;
  b.len <- n

let[@hot_path] bucket_append t b e =
  if b.head > 0 && Int.equal b.head b.len then begin
    b.head <- 0;
    b.len <- 0
  end;
  if Int.equal b.len (Array.length b.arr) then bucket_grow t b e;
  b.arr.(b.len) <- e;
  b.len <- b.len + 1

let over_append t e =
  if Int.equal t.over_len (Array.length t.over_arr) then begin
    let s = sentinel_of t e in
    let cap = max 8 (2 * Array.length t.over_arr) in
    let arr = Array.make cap s in
    Array.blit t.over_arr 0 arr 0 t.over_len;
    t.over_arr <- arr
  end;
  t.over_arr.(t.over_len) <- e;
  t.over_len <- t.over_len + 1

(* File the entry at its invariant position relative to [t.cur]. *)
let[@hot_path] place t e =
  let x = t.cur lxor e.time in
  if x lsr span_bits <> 0 then over_append t e
  else begin
    let l = level_for x in
    bucket_append t
      t.wheel.(l).((e.time lsr (l * slot_bits)) land (slots - 1))
      e
  end

let[@hot_path] push t ~time payload =
  if time < t.cur then
    invalid_arg
      (Printf.sprintf "Timing_wheel.push: time %d is before now (%d)" time
         t.cur);
  let e = ({ time; seq = t.next_seq; payload; cancelled = false } [@alloc_ok]) in
  t.next_seq <- t.next_seq + 1;
  t.live <- t.live + 1;
  place t e;
  e

let[@hot_path] cancel t h =
  if not h.cancelled then begin
    h.cancelled <- true;
    t.live <- t.live - 1
  end

(* Empty [b] into the wheel at the entries' new positions relative to
   the freshly advanced [t.cur], dropping cancelled entries. Append
   order preserves bucket order, which preserves seq order. *)
let cascade t b =
  if b.len > b.head then begin
    let s = sentinel_of t b.arr.(b.head) in
    let head = b.head and len = b.len in
    b.head <- 0;
    b.len <- 0;
    for i = head to len - 1 do
      let e = b.arr.(i) in
      b.arr.(i) <- s;
      if not e.cancelled then place t e
    done
  end

(* Pull every overflow entry whose top bits now match [t.cur] into the
   wheel, oldest-first within equal timestamps so bucket FIFO order
   stays seq order. The overflow vector is unsorted, so sort the
   migrating subset by [(time, seq)] first. *)
let migrate_overflow t =
  let keep = ref [] and move = ref [] in
  for i = t.over_len - 1 downto 0 do
    let e = t.over_arr.(i) in
    if not e.cancelled then
      if (t.cur lxor e.time) lsr span_bits = 0 then move := e :: !move
      else keep := e :: !keep
  done;
  (match t.sentinel with
  | Some s -> Array.fill t.over_arr 0 t.over_len s
  | None -> ());
  t.over_len <- 0;
  List.iter (fun e -> over_append t e) !keep;
  let sorted =
    List.sort
      (fun a b ->
        let c = Int.compare a.time b.time in
        if c <> 0 then c else Int.compare a.seq b.seq)
      !move
  in
  List.iter (fun e -> place t e) sorted

(* Jump the clock to [tm] (the minimum live timestamp, so no live entry
   is skipped) and restore the placement invariant by cascading exactly
   the buckets whose slot [tm] newly enters. *)
let advance_to t tm =
  let old = t.cur in
  t.cur <- tm;
  if (old lxor tm) lsr span_bits <> 0 then migrate_overflow t;
  for l = levels - 1 downto 1 do
    if (old lxor tm) lsr (l * slot_bits) <> 0 then
      cascade t t.wheel.(l).((tm lsr (l * slot_bits)) land (slots - 1))
  done

(* Drop cancelled entries at the front of [b]; true if a live entry
   remains at [b.head]. *)
let[@hot_path] rec trim_bucket t b =
  if b.head >= b.len then begin
    b.head <- 0;
    b.len <- 0;
    false
  end
  else begin
    let e = b.arr.(b.head) in
    if e.cancelled then begin
      b.arr.(b.head) <- sentinel_of t e;
      b.head <- b.head + 1;
      trim_bucket t b
    end
    else true
  end

(* Minimum live timestamp, or -1 when none. Level 0 is scanned from the
   clock's slot (all live entries there share the slot's exact time);
   higher levels from the slot after the clock's (the clock's own slot
   at level l is covered by levels below); the overflow vector last. *)
let find_min t =
  if t.live = 0 then -1
  else begin
    let found = ref (-1) in
    let lvl0 = t.wheel.(0) in
    let i = ref (t.cur land (slots - 1)) in
    while !found < 0 && !i < slots do
      let b = lvl0.(!i) in
      if trim_bucket t b then found := b.arr.(b.head).time;
      incr i
    done;
    let l = ref 1 in
    while !found < 0 && !l < levels do
      let lvl = t.wheel.(!l) in
      let j = ref (((t.cur lsr (!l * slot_bits)) land (slots - 1)) + 1) in
      while !found < 0 && !j < slots do
        let b = lvl.(!j) in
        let best = ref (-1) in
        for k = b.head to b.len - 1 do
          let e = b.arr.(k) in
          if (not e.cancelled) && (!best < 0 || e.time < !best) then
            best := e.time
        done;
        if !best >= 0 then found := !best;
        incr j
      done;
      incr l
    done;
    if !found < 0 then begin
      let best = ref (-1) in
      for k = 0 to t.over_len - 1 do
        let e = t.over_arr.(k) in
        if (not e.cancelled) && (!best < 0 || e.time < !best) then
          best := e.time
      done;
      found := !best
    end;
    !found
  end

let peek_time t =
  let tm = find_min t in
  if tm < 0 then None else Some tm

let[@hot_path] pop t =
  if t.live = 0 then None
  else begin
    let tm = find_min t in
    if tm > t.cur then advance_to t tm;
    (* the minimum entry now heads its level-0 bucket *)
    let b = t.wheel.(0).(tm land (slots - 1)) in
    if not (trim_bucket t b) then None (* unreachable: live > 0 *)
    else begin
      let e = b.arr.(b.head) in
      b.arr.(b.head) <- sentinel_of t e;
      b.head <- b.head + 1;
      e.cancelled <- true;
      t.live <- t.live - 1;
      Some ((e.time, e.payload) [@alloc_ok])
    end
  end

(* Structural self-check for sanitizer builds: every live entry at its
   invariant position, no live entry in the past, bookkeeping in
   agreement with [live]. O(capacity); never on the hot path. *)
let validate t =
  let err = ref None in
  let fail fmt = Printf.ksprintf (fun m -> if Option.is_none !err then err := Some m) fmt in
  let counted = ref 0 in
  for l = 0 to levels - 1 do
    for s = 0 to slots - 1 do
      let b = t.wheel.(l).(s) in
      if b.head < 0 || b.head > b.len || b.len > Array.length b.arr then
        fail "Timing_wheel: bucket %d/%d window [%d,%d) exceeds capacity %d" l
          s b.head b.len (Array.length b.arr);
      for k = b.head to min b.len (Array.length b.arr) - 1 do
        let e = b.arr.(k) in
        if not e.cancelled then begin
          incr counted;
          if e.time < t.cur then
            fail "Timing_wheel: live entry (t=%d seq=%d) in the past (now %d)"
              e.time e.seq t.cur;
          let x = t.cur lxor e.time in
          if x lsr span_bits <> 0 then
            fail
              "Timing_wheel: entry (t=%d seq=%d) beyond the span yet filed \
               at level %d"
              e.time e.seq l
          else if not (Int.equal (level_for x) l) then
            fail
              "Timing_wheel: entry (t=%d seq=%d) filed at level %d, \
               invariant says %d"
              e.time e.seq l (level_for x)
          else if
            not (Int.equal ((e.time lsr (l * slot_bits)) land (slots - 1)) s)
          then
            fail "Timing_wheel: entry (t=%d seq=%d) filed in slot %d of level %d"
              e.time e.seq s l
        end
      done
    done
  done;
  for k = 0 to t.over_len - 1 do
    let e = t.over_arr.(k) in
    if not e.cancelled then begin
      incr counted;
      if (t.cur lxor e.time) lsr span_bits = 0 then
        fail
          "Timing_wheel: overflow entry (t=%d seq=%d) is within the wheel \
           span of now (%d)"
          e.time e.seq t.cur
    end
  done;
  match !err with
  | Some m -> Error m
  | None ->
      if not (Int.equal !counted t.live) then
        Error
          (Printf.sprintf
             "Timing_wheel: live count drifted (%d stored, %d counted)"
             t.live !counted)
      else Ok ()
