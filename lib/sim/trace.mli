(** Lightweight event tracing.

    A trace is a bounded ring of timestamped, categorised strings. It is
    disabled by default, in which case [emit] is a few comparisons — the
    render closures are only forced when tracing is on. Used by examples
    and by debugging sessions; benchmarks keep it off. *)

type t

val create : ?capacity:int -> unit -> t
(** Ring with room for [capacity] (default 4096) most-recent entries. *)

val enable : t -> unit
val disable : t -> unit
val is_enabled : t -> bool

val emit : t -> time:Units.time -> cat:string -> (unit -> string) -> unit
(** Record an entry if tracing is enabled. The thunk is not forced when
    disabled. *)

val entries : t -> (Units.time * string * string) list
(** Oldest-first list of retained entries, as [(time, cat, message)]. *)

val entries_seq : t -> (int * Units.time * string * string) list
(** Like {!entries} but with each entry's monotone sequence number,
    assigned at emission. Sequence numbers keep counting across ring
    wrap-around, so gaps reveal entries that were overwritten. *)

val emitted : t -> int
(** Total entries emitted since creation (or the last {!clear}),
    including any the ring has since dropped. *)

val dump : Format.formatter -> t -> unit
(** Render retained entries, one per line. *)

val clear : t -> unit
