(** Hierarchical timing wheel: O(1) schedule and cancel for
    timer-dominated workloads, popping in exactly the same
    [(time, insertion)] order as {!Event_heap}.

    Six levels of 256 slots cover 2^48 ns (~3.26 simulated days) ahead
    of the current time; events beyond that park in an overflow vector
    and migrate in as the clock catches up. Advancing the clock
    cascades only the buckets the new time enters, so the amortised
    per-event cost is O(1) with a small constant.

    Equal-timestamp events always share one FIFO bucket and therefore
    pop in insertion order — the property that makes a wheel-backed
    engine run byte-identical to a heap-backed one. *)

type 'a t
(** Wheel carrying payloads of type ['a]. *)

type 'a handle = 'a Sched_entry.t
(** Identifies a scheduled entry; used to cancel it. The concrete type
    is shared with {!Event_heap} so {!Scheduler} can hand out one
    handle type regardless of backend. *)

val create : unit -> 'a t

val is_empty : 'a t -> bool
(** True when no live (non-cancelled) entry remains. *)

val live_count : 'a t -> int
(** Number of scheduled entries not yet popped or cancelled. *)

val now : 'a t -> Units.time
(** The wheel's internal clock: the timestamp of the last pop. Pushes
    before this instant are rejected. *)

val push : 'a t -> time:Units.time -> 'a -> 'a handle
(** Schedule a payload at the given time; returns a cancellation
    handle. Raises [Invalid_argument] if the time is before {!now}. *)

val cancel : 'a t -> 'a handle -> unit
(** Cancel a scheduled entry. Cancelling an already-popped or
    already-cancelled entry is a no-op. *)

val pop : 'a t -> (Units.time * 'a) option
(** Remove and return the earliest live entry, or [None] if empty.
    Advances {!now} to the popped entry's timestamp. *)

val peek_time : 'a t -> Units.time option
(** Timestamp of the earliest live entry without removing it. *)

val validate : 'a t -> (unit, string) result
(** Structural self-check: every live entry filed at its invariant
    level/slot, none in the past, bookkeeping in agreement with
    {!live_count}. O(capacity); meant for sanitizer builds and tests,
    not the hot path. *)
