(** The discrete-event simulation core.

    An engine owns the simulated clock and an event queue. Components
    schedule closures at absolute or relative times; [run] advances the
    clock from event to event. All state in the simulation is driven by
    these callbacks, so a run is fully deterministic given the same
    schedule order and RNG seeds. *)

type t

type handle
(** A scheduled event, usable for cancellation (e.g. timers that are
    disarmed when the awaited message arrives first). *)

val create : ?sched:Scheduler.kind -> unit -> t
(** A fresh engine with the clock at time 0 and an empty queue.

    [sched] picks the event-queue backend; it defaults to
    {!Scheduler.env_kind} (the [LAUBERHORN_SCHED] environment
    variable, binary heap when unset). Both backends produce
    byte-identical runs — the choice is purely a cost profile. *)

val scheduler_kind : t -> Scheduler.kind
(** Which backend this engine's queue runs on. *)

val now : t -> Units.time
(** Current simulated time. *)

val schedule_at : t -> at:Units.time -> (unit -> unit) -> handle
(** Run a callback at an absolute time.

    @raise Invalid_argument if [at] is in the simulated past. *)

val schedule_after : t -> after:Units.duration -> (unit -> unit) -> handle
(** Run a callback [after] nanoseconds from now.

    @raise Invalid_argument if [after] is negative. *)

val cancel : t -> handle -> unit
(** Disarm a scheduled event; no-op if already fired or cancelled. *)

val pending : t -> int
(** Number of scheduled events not yet fired or cancelled. *)

val next_event_time : t -> Units.time option
(** Timestamp of the earliest pending event, or [None] when the queue
    is drained. The sharded engine uses this to compute the global
    minimum next-event time that anchors each conservative window. *)

val run : ?until:Units.time -> t -> unit
(** Process events in time order until the queue drains, or until the
    first event strictly later than [until] (which stays queued and the
    clock stops at [until]). *)

val step : t -> bool
(** Process exactly one event. Returns [false] if the queue was empty. *)

val events_processed : t -> int
(** Total callbacks fired so far (simulation-effort metric). *)

val set_monitor : t -> (Units.time -> unit) option -> unit
(** Install (or clear) a per-event observer, called with the event's
    timestamp just before its callback runs. With [None] — the
    default — {!step} pays a single branch. Sanitizers use this to
    prove the clock never moves backwards. *)

val validate : t -> (unit, string) result
(** Structural self-check of the event queue ({!Event_heap.validate}). *)
