type entry = { seq : int; time : Units.time; cat : string; msg : string }

type t = {
  capacity : int;
  ring : entry option array;
  mutable next : int;
  mutable count : int;
  mutable emitted : int;
  mutable enabled : bool;
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  {
    capacity;
    ring = Array.make capacity None;
    next = 0;
    count = 0;
    emitted = 0;
    enabled = false;
  }

let enable t = t.enabled <- true
let disable t = t.enabled <- false
let is_enabled t = t.enabled

let emit t ~time ~cat f =
  if t.enabled then begin
    t.ring.(t.next) <- Some { seq = t.emitted; time; cat; msg = f () };
    t.emitted <- t.emitted + 1;
    t.next <- (t.next + 1) mod t.capacity;
    if t.count < t.capacity then t.count <- t.count + 1
  end

let raw_entries t =
  let start = (t.next - t.count + t.capacity) mod t.capacity in
  List.init t.count (fun i ->
      match t.ring.((start + i) mod t.capacity) with
      | Some e -> e
      | None -> assert false)

let entries t = List.map (fun e -> (e.time, e.cat, e.msg)) (raw_entries t)

let entries_seq t =
  List.map (fun e -> (e.seq, e.time, e.cat, e.msg)) (raw_entries t)

let emitted t = t.emitted

let dump ppf t =
  List.iter
    (fun e ->
      Format.fprintf ppf "[%a #%d] %-12s %s@\n" Units.pp_time e.time e.seq
        e.cat e.msg)
    (raw_entries t)

let clear t =
  Array.fill t.ring 0 t.capacity None;
  t.next <- 0;
  t.count <- 0;
  t.emitted <- 0
