type t = {
  mutable clock : Units.time;
  queue : (unit -> unit) Event_heap.t;
  mutable fired : int;
  mutable monitor : (Units.time -> unit) option;
}

type handle = (unit -> unit) Event_heap.handle

let create () =
  { clock = 0; queue = Event_heap.create (); fired = 0; monitor = None }

let set_monitor t m = t.monitor <- m
let validate t = Event_heap.validate t.queue
let now t = t.clock

let[@hot_path] schedule_at t ~at f =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %d is before now (%d)" at
         t.clock);
  Event_heap.push t.queue ~time:at f

let[@hot_path] schedule_after t ~after f =
  if after < 0 then invalid_arg "Engine.schedule_after: negative delay";
  Event_heap.push t.queue ~time:(t.clock + after) f

let[@hot_path] cancel t h = Event_heap.cancel t.queue h
let pending t = Event_heap.live_count t.queue

let[@hot_path] step t =
  match Event_heap.pop t.queue with
  | None -> false
  | Some (time, f) ->
      (match t.monitor with None -> () | Some m -> m time);
      t.clock <- time;
      t.fired <- t.fired + 1;
      f ();
      true

let run ?until t =
  let continue () =
    match until with
    | None -> true
    | Some limit -> (
        match Event_heap.peek_time t.queue with
        | None -> false
        | Some next -> next <= limit)
  in
  while continue () && step t do
    ()
  done;
  (* Advance the clock to the horizon so that rate computations over
     [0, until] are well defined even if the queue drained early. *)
  match until with
  | Some limit when t.clock < limit -> t.clock <- limit
  | Some _ | None -> ()

let events_processed t = t.fired
