type t = {
  mutable clock : Units.time;
  queue : (unit -> unit) Scheduler.t;
  mutable fired : int;
  mutable monitor : (Units.time -> unit) option;
}

type handle = (unit -> unit) Scheduler.handle

let create ?sched () =
  let kind = match sched with Some k -> k | None -> Scheduler.env_kind () in
  { clock = 0; queue = Scheduler.create kind; fired = 0; monitor = None }

let scheduler_kind t = Scheduler.kind t.queue
let set_monitor t m = t.monitor <- m
let validate t = Scheduler.validate t.queue
let now t = t.clock

let[@hot_path] schedule_at t ~at f =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %d is before now (%d)" at
         t.clock);
  Scheduler.push t.queue ~time:at f

let[@hot_path] schedule_after t ~after f =
  if after < 0 then invalid_arg "Engine.schedule_after: negative delay";
  Scheduler.push t.queue ~time:(t.clock + after) f

let[@hot_path] cancel t h = Scheduler.cancel t.queue h
let pending t = Scheduler.live_count t.queue
let next_event_time t = Scheduler.peek_time t.queue

let[@hot_path] step t =
  match Scheduler.pop t.queue with
  | None -> false
  | Some (time, f) ->
      (match t.monitor with None -> () | Some m -> m time);
      t.clock <- time;
      t.fired <- t.fired + 1;
      f ();
      true

let run ?until t =
  let continue () =
    match until with
    | None -> true
    | Some limit -> (
        match Scheduler.peek_time t.queue with
        | None -> false
        | Some next -> next <= limit)
  in
  while continue () && step t do
    ()
  done;
  (* Advance the clock to the horizon so that rate computations over
     [0, until] are well defined even if the queue drained early. *)
  match until with
  | Some limit when t.clock < limit -> t.clock <- limit
  | Some _ | None -> ()

let events_processed t = t.fired
