(* Re-exported so field access stays direct while the concrete record
   lives in [Sched_entry], shared with the timing-wheel backend. *)
type 'a entry = 'a Sched_entry.t = {
  time : Units.time;
  seq : int;
  payload : 'a;
  mutable cancelled : bool;
}

type 'a handle = 'a entry

(* Entries are stored unboxed in [arr.(0 .. size-1)] — no [option]
   wrapper, no separate handle record: the entry itself is the
   cancellation handle (one allocation per push instead of three).
   Slots at [size] and beyond hold [sentinel], a permanently-cancelled
   dummy entry created from the first push, so vacated slots do not
   retain popped payloads. *)
type 'a t = {
  mutable arr : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
  mutable live : int;
  mutable sentinel : 'a entry option;
}

let create () =
  { arr = [||]; size = 0; next_seq = 0; live = 0; sentinel = None }

let is_empty t = t.live = 0
let live_count t = t.live

let[@hot_path] entry_lt a b = a.time < b.time || (Int.equal a.time b.time && a.seq < b.seq)

let[@hot_path] swap t i j =
  let tmp = t.arr.(i) in
  t.arr.(i) <- t.arr.(j);
  t.arr.(j) <- tmp

let[@hot_path] rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_lt t.arr.(i) t.arr.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let[@hot_path] rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && entry_lt t.arr.(l) t.arr.(!smallest) then smallest := l;
  if r < t.size && entry_lt t.arr.(r) t.arr.(!smallest) then smallest := r;
  if not (Int.equal !smallest i) then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let[@hot_path] push t ~time payload =
  let e = ({ time; seq = t.next_seq; payload; cancelled = false } [@alloc_ok]) in
  t.next_seq <- t.next_seq + 1;
  if Int.equal t.size (Array.length t.arr) then begin
    let s =
      match t.sentinel with
      | Some s -> s
      | None ->
          let s = ({ time = 0; seq = -1; payload; cancelled = true } [@alloc_ok]) in
          t.sentinel <- Some s;
          s
    in
    let cap = max 64 (2 * Array.length t.arr) in
    let arr = Array.make cap s in
    Array.blit t.arr 0 arr 0 t.size;
    t.arr <- arr
  end;
  t.arr.(t.size) <- e;
  t.size <- t.size + 1;
  t.live <- t.live + 1;
  sift_up t (t.size - 1);
  e

(* In-place filter of cancelled entries followed by Floyd heapify:
   O(size), amortised free because it runs only when cancelled entries
   are the majority and halves [size] at least. *)
let compact t =
  let old_size = t.size in
  let n = ref 0 in
  for i = 0 to old_size - 1 do
    let e = t.arr.(i) in
    if not e.cancelled then begin
      t.arr.(!n) <- e;
      incr n
    end
  done;
  (match t.sentinel with
  | Some s -> Array.fill t.arr !n (old_size - !n) s
  | None -> ());
  t.size <- !n;
  for i = (t.size / 2) - 1 downto 0 do
    sift_down t i
  done

let[@hot_path] cancel t h =
  if not h.cancelled then begin
    h.cancelled <- true;
    t.live <- t.live - 1;
    if t.size >= 64 && 2 * (t.size - t.live) > t.size then compact t
  end

let[@hot_path] pop_root t =
  let e = t.arr.(0) in
  t.size <- t.size - 1;
  t.arr.(0) <- t.arr.(t.size);
  (match t.sentinel with
  | Some s -> t.arr.(t.size) <- s
  | None -> ());
  if t.size > 0 then sift_down t 0;
  e

(* Discard cancelled entries as they surface; only live pops touch
   [live]. A popped entry is marked cancelled so a later [cancel] on
   its handle is a genuine no-op. *)
let[@hot_path] rec pop t =
  if t.size = 0 then None
  else
    let e = pop_root t in
    if e.cancelled then pop t
    else begin
      e.cancelled <- true;
      t.live <- t.live - 1;
      Some ((e.time, e.payload) [@alloc_ok])
    end

(* Structural self-check for sanitizer builds: the array prefix
   [0, size) must satisfy the heap order (parent not later than either
   child) and the cancelled-entry bookkeeping must agree with [live].
   O(size); never called on the hot path. *)
let validate t =
  if t.size > Array.length t.arr then
    Error
      (Printf.sprintf "Event_heap: size %d exceeds capacity %d" t.size
         (Array.length t.arr))
  else begin
    let err = ref None in
    for i = 1 to t.size - 1 do
      if Option.is_none !err then begin
        let parent = (i - 1) / 2 in
        if entry_lt t.arr.(i) t.arr.(parent) then
          err :=
            Some
              (Printf.sprintf
                 "Event_heap: order violated at slot %d (t=%d seq=%d) vs \
                  parent %d (t=%d seq=%d)"
                 i t.arr.(i).time t.arr.(i).seq parent t.arr.(parent).time
                 t.arr.(parent).seq)
      end
    done;
    match !err with
    | Some e -> Error e
    | None ->
        let live = ref 0 in
        for i = 0 to t.size - 1 do
          if not t.arr.(i).cancelled then incr live
        done;
        if not (Int.equal !live t.live) then
          Error
            (Printf.sprintf
               "Event_heap: live count drifted (%d stored, %d counted)"
               t.live !live)
        else Ok ()
  end

let[@hot_path] rec peek_time t =
  if t.size = 0 then None
  else
    let e = t.arr.(0) in
    if e.cancelled then begin
      ignore (pop_root t);
      peek_time t
    end
    else Some e.time
