(** Reusable sense-reversing barrier synchronizing the sharded
    engine's domains between conservative windows.

    Blocking (futex-parked via [Mutex]/[Condition]), so it degrades
    gracefully when domains outnumber cores. Reusable without a reset:
    consecutive {!await} epochs flip an internal sense flag, which
    makes back-to-back windows safe. *)

type t

val create : int -> t
(** A barrier for the given number of parties.

    @raise Invalid_argument if the count is not positive. *)

val parties : t -> int

val await : t -> unit
(** Arrive at the barrier and block until every party has arrived.
    Every party must call {!await} the same number of times. *)
