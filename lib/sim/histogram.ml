type t = {
  sub_bucket_bits : int;
  sub_bucket_count : int;
  counts : int array;
  mutable total : int;
  mutable sum : float;
  mutable min_v : int;
  mutable max_v : int;
}

let num_indices sub_bucket_count =
  (* Octave 0 holds [sub_bucket_count] linear buckets; each further
     octave adds [sub_bucket_count / 2]. 62 octaves cover any [int]. *)
  sub_bucket_count + (62 * (sub_bucket_count / 2))

let create ?(sub_bucket_bits = 5) () =
  if sub_bucket_bits < 1 || sub_bucket_bits > 16 then
    invalid_arg "Histogram.create: sub_bucket_bits out of [1,16]";
  let sub_bucket_count = 1 lsl sub_bucket_bits in
  {
    sub_bucket_bits;
    sub_bucket_count;
    counts = Array.make (num_indices sub_bucket_count) 0;
    total = 0;
    sum = 0.;
    min_v = max_int;
    max_v = 0;
  }

let bit_length v =
  (* Position of the highest set bit, i.e. floor(log2 v) + 1; 0 for 0. *)
  let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let index_of t v =
  if v < t.sub_bucket_count then v
  else
    let octave = bit_length v - t.sub_bucket_bits in
    let sub = v lsr octave in
    (octave * (t.sub_bucket_count / 2)) + sub

let upper_bound_of_index t i =
  if i < t.sub_bucket_count then i
  else
    let half = t.sub_bucket_count / 2 in
    let octave = (i / half) - 1 in
    let sub = i - (octave * half) in
    ((sub + 1) lsl octave) - 1

let record_n t v ~n =
  if v < 0 then invalid_arg "Histogram.record: negative value";
  if n < 0 then invalid_arg "Histogram.record_n: negative count";
  if n > 0 then begin
    t.counts.(index_of t v) <- t.counts.(index_of t v) + n;
    t.total <- t.total + n;
    t.sum <- t.sum +. (float_of_int v *. float_of_int n);
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v
  end

let record t v = record_n t v ~n:1
let count t = t.total

let min_value t =
  if t.total = 0 then invalid_arg "Histogram.min_value: empty";
  t.min_v

let max_value t =
  if t.total = 0 then invalid_arg "Histogram.max_value: empty";
  t.max_v

let mean t = if t.total = 0 then 0. else t.sum /. float_of_int t.total

let quantile t q =
  if t.total = 0 then invalid_arg "Histogram.quantile: empty";
  if q < 0. || q > 1. then invalid_arg "Histogram.quantile: q out of [0,1]";
  let rank =
    max 1 (int_of_float (Float.round (q *. float_of_int t.total)))
  in
  let rec go i acc =
    if i >= Array.length t.counts then t.max_v
    else
      let acc = acc + t.counts.(i) in
      if acc >= rank then min (upper_bound_of_index t i) t.max_v
      else go (i + 1) acc
  in
  go 0 0

let merge_into ~src ~dst =
  if not (Int.equal src.sub_bucket_bits dst.sub_bucket_bits) then
    invalid_arg "Histogram.merge_into: differing sub_bucket_bits";
  Array.iteri
    (fun i c -> if c > 0 then dst.counts.(i) <- dst.counts.(i) + c)
    src.counts;
  dst.total <- dst.total + src.total;
  dst.sum <- dst.sum +. src.sum;
  if src.total > 0 then begin
    if src.min_v < dst.min_v then dst.min_v <- src.min_v;
    if src.max_v > dst.max_v then dst.max_v <- src.max_v
  end

let clear t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.total <- 0;
  t.sum <- 0.;
  t.min_v <- max_int;
  t.max_v <- 0

let pp_summary ppf t =
  if t.total = 0 then Format.fprintf ppf "(empty)"
  else
    Format.fprintf ppf
      "n=%d mean=%a p50=%a p90=%a p99=%a p99.9=%a max=%a" t.total
      Units.pp_duration
      (int_of_float (mean t))
      Units.pp_duration (quantile t 0.5) Units.pp_duration (quantile t 0.9)
      Units.pp_duration (quantile t 0.99) Units.pp_duration
      (quantile t 0.999) Units.pp_duration (max_value t)
