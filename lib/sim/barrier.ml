(* Sense-reversing barrier for the sharded engine's window steps.

   Blocking (Mutex + Condition), not spinning: simulation windows are
   coarse (thousands of events), so the parking cost is noise, and a
   spinning barrier would be pathological when domains outnumber cores
   — on a single-core CI box a spinner would burn a full scheduling
   quantum per window per domain.

   Sense reversal lets the same barrier be reused every window with no
   reset step: each arrival epoch flips [sense], and a waiter watches
   for the flip rather than a counter reaching zero, so a fast thread
   entering the next window cannot lap a slow one still leaving the
   previous wait. *)

type t = {
  m : Mutex.t;
  cv : Condition.t;
  parties : int;
  mutable remaining : int;
  mutable sense : bool;
}

let[@nondet_ok] create parties =
  if parties <= 0 then invalid_arg "Barrier.create: non-positive parties";
  {
    m = Mutex.create ();
    cv = Condition.create ();
    parties;
    remaining = parties;
    sense = false;
  }

let parties t = t.parties

(* Arrive and block until all [parties] have arrived. The last arrival
   flips the sense and wakes the rest. Runs between windows, never
   inside one, so it is outside the simulated-time hot path. *)
let[@nondet_ok] await t =
  Mutex.lock t.m;
  let my_sense = t.sense in
  t.remaining <- t.remaining - 1;
  if t.remaining = 0 then begin
    t.remaining <- t.parties;
    t.sense <- not t.sense;
    Condition.broadcast t.cv
  end
  else
    while Bool.equal t.sense my_sense do
      Condition.wait t.cv t.m
    done;
  Mutex.unlock t.m
