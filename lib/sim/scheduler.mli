(** Pluggable event-queue backend for {!Engine}.

    Two backends with identical observable behaviour — pops come out in
    [(time, insertion)] order from both — so swapping them changes the
    cost profile, never the simulation output:

    - {b [Heap]} ({!Event_heap}): O(log n) push/pop, O(1) lazy cancel.
      Robust default for mixed schedules.
    - {b [Wheel]} ({!Timing_wheel}): O(1) push/cancel with a small
      constant, amortised O(1) pop. Wins on timer-dominated schedules
      (RPC timeout armed and cancelled per message) where the heap
      pays log-depth sifts for entries that mostly never fire. *)

type kind = Heap | Wheel

val kind_name : kind -> string

val kind_of_string : string -> kind option

val env_kind : unit -> kind
(** Backend selected by the [LAUBERHORN_SCHED] environment variable
    ([heap] | [wheel]); [Heap] when unset.

    @raise Invalid_argument on an unrecognised value. *)

val env_kind_opt : unit -> kind option
(** As {!env_kind} but [None] when the variable is unset, so callers
    with their own default (e.g. [Config.scheduler]) can tell "unset"
    from an explicit [heap]. *)

type 'a t

type 'a handle = 'a Sched_entry.t
(** One handle type across backends: the entry itself. *)

val create : kind -> 'a t
val kind : 'a t -> kind
val is_empty : 'a t -> bool
val live_count : 'a t -> int
val push : 'a t -> time:Units.time -> 'a -> 'a handle
val cancel : 'a t -> 'a handle -> unit
val pop : 'a t -> (Units.time * 'a) option
val peek_time : 'a t -> Units.time option

val validate : 'a t -> (unit, string) result
(** Backend structural self-check ({!Event_heap.validate} or
    {!Timing_wheel.validate}). *)
