(* Domain-sharded conservative PDES over an array of per-shard
   engines.

   The model: each shard (a simulated host, or an isolated pipeline
   stage) owns a private {!Engine} and shares no mutable simulation
   state with any other shard. The only inter-shard channel is
   {!post}, which carries a closure across the wire with a delivery
   time at least [lookahead] past the sender's clock — the classic
   conservative-PDES contract, with the lookahead equal to the
   inter-shard wire latency.

   Execution proceeds in barrier-synchronized windows:

   {v
     a  = min over shards of next pending event time
     window = [a, a + lookahead - 1]          (inclusive)
     every shard runs its own events inside the window, in parallel
     barrier; deliver posted messages; repeat
   v}

   Safety: any message posted during a window has delivery time
   [>= sender clock + lookahead > a + lookahead - 1], i.e. strictly
   beyond the window — so no shard can receive, during a window, a
   message that should have preempted an event it already ran. This is
   why windows need no rollback and the engine stays deterministic.
   It also guarantees progress: each window advances the global clock
   floor by at least one lookahead.

   Determinism, the stronger property this repo leans on: the output
   is byte-identical for ANY domain count, including 1.

   - Within a shard, events run on that shard's engine in (time, seq)
     order; which OS thread hosts the engine is invisible to it.
   - Cross-shard messages are collected at the barrier and delivered
     by the coordinator alone, ordered by [(delivery time, source
     shard, posting order)]. Each per-source outbox is appended only
     by the domain running that source, so the posting order is the
     source's deterministic execution order, and the merged order is a
     pure function of the simulation — not of thread scheduling.
   - Delivery = [Engine.schedule_at] in merged order, so destination
     tie-break seqs are assigned identically every run.

   The barrier discipline (coordinator writes control fields only
   between a done-wait and the next start-wait, workers read them only
   after the start-wait) makes the plain mutable fields data-race
   free; the barrier's mutex provides the happens-before edges. *)

type outbox_item = {
  at : Units.time;
  src : int;
  dst : int;
  fn : unit -> unit;
}

type probe =
  shard:int -> window_end:Units.time -> events:int -> posted:int -> unit

type t = {
  engines : Engine.t array;
  lookahead : Units.duration;
      (* conservative window width: the uniform lookahead, or the
         minimum entry of the latency matrix *)
  latency : Units.duration array array option;
      (* per-pair wire latencies; [None] means uniform [lookahead] *)
  domains : int;
  (* per-source outboxes, reverse posting order; outbox.(s) is written
     only by the domain currently running shard [s], and drained by
     the coordinator at barriers *)
  outbox : outbox_item list array;
  mutable windows : int;
  mutable merged : int;
  (* window control block, written by the coordinator between barrier
     epochs (see the module comment for the discipline) *)
  mutable window_end : Units.time;
  mutable stop : bool;
  (* per-(shard, window) profiler hook; [None] (the default) costs one
     load-and-branch per shard-window. Invoked by whichever domain
     runs the shard, with sim-time-deterministic arguments only — the
     callee owns per-shard storage (see Obs.Profiler). *)
  mutable profiler : probe option;
  (* wire-fault seam; [None] (the default) costs one load-and-branch
     per post. Consulted by the posting domain, so the predicate must
     be a pure function of (src, dst, at) — typically a Fault.Plan
     schedule — and any counting it does must live in per-src storage
     touched only by the posting domain (the outbox discipline). *)
  mutable wire_fault : (src:int -> dst:int -> at:Units.time -> bool) option;
}

let env_domains () =
  match Sys.getenv_opt "LAUBERHORN_SHARDS" with
  | None | Some "" -> 1
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= 1 && n <= 64 -> n
      | Some _ | None ->
          invalid_arg
            (Printf.sprintf "LAUBERHORN_SHARDS=%s: expected 1..64" s))

let make ?domains ~lookahead ~latency engines =
  if Array.length engines = 0 then
    invalid_arg "Shard_engine.create: no shards";
  if lookahead <= 0 then
    invalid_arg "Shard_engine.create: lookahead must be positive";
  let n = Array.length engines in
  let domains =
    match domains with
    | None -> min n (env_domains ())
    | Some d when d >= 1 -> min n d
    | Some d ->
        invalid_arg (Printf.sprintf "Shard_engine.create: %d domains" d)
  in
  {
    engines;
    lookahead;
    latency;
    domains;
    outbox = Array.make n [];
    windows = 0;
    merged = 0;
    window_end = 0;
    stop = false;
    profiler = None;
    wire_fault = None;
  }

let create ?domains ~lookahead engines =
  make ?domains ~lookahead ~latency:None engines

(* Per-pair lookahead: the window width is the matrix minimum — the
   rack's shortest link bounds how far any shard may safely run ahead —
   while each post is validated against its own pair's latency, so a
   model bug on a long link is caught even when it clears the global
   minimum. *)
let create_matrix ?domains ~latency engines =
  let n = Array.length engines in
  if n = 0 then invalid_arg "Shard_engine.create_matrix: no shards";
  if not (Int.equal (Array.length latency) n) then
    invalid_arg "Shard_engine.create_matrix: latency matrix is not NxN";
  let min_latency = ref max_int in
  Array.iteri
    (fun s row ->
      if not (Int.equal (Array.length row) n) then
        invalid_arg "Shard_engine.create_matrix: latency matrix is not NxN";
      Array.iteri
        (fun d l ->
          if l <= 0 then
            invalid_arg
              (Printf.sprintf
                 "Shard_engine.create_matrix: latency.(%d).(%d) = %d must be \
                  positive"
                 s d l);
          if l < !min_latency then min_latency := l)
        row)
    latency;
  make ?domains ~lookahead:!min_latency ~latency:(Some latency) engines

let shards t = Array.length t.engines
let domains t = t.domains
let set_profiler t p = t.profiler <- p
let set_wire_fault t f = t.wire_fault <- f
let lookahead t = t.lookahead
let engine t i = t.engines.(i)
let windows_run t = t.windows
let messages_merged t = t.merged

(* Post a closure from shard [src] to run on shard [dst] at absolute
   time [at]. The conservative contract demands [at] be at least one
   lookahead past the source's clock; violating it would let a window
   deliver into its own past, so it is rejected loudly. Must be called
   from [src]'s own events (or from the coordinator before [run]). *)
let post t ~src ~dst ~at fn =
  let n = Array.length t.engines in
  if src < 0 || src >= n then invalid_arg "Shard_engine.post: bad src";
  if dst < 0 || dst >= n then invalid_arg "Shard_engine.post: bad dst";
  let pair_lookahead =
    match t.latency with
    | None -> t.lookahead
    | Some m -> m.(src).(dst)
  in
  let horizon = Engine.now t.engines.(src) + pair_lookahead in
  if at < horizon then
    invalid_arg
      (Printf.sprintf
         "Shard_engine.post: delivery %d violates lookahead (src %d now %d + \
          lookahead %d = %d)"
         at src
         (Engine.now t.engines.(src))
         pair_lookahead horizon);
  (* The wire-fault seam: a cut wire swallows the message *after* the
     lookahead contract is enforced, so chaos runs still catch model
     bugs. The hook observes (and may count) the drop; dropping here —
     before the outbox — keeps faulted posts invisible to the merge
     order, which is what makes the cut deterministic per shard count. *)
  let dropped =
    match t.wire_fault with None -> false | Some f -> f ~src ~dst ~at
  in
  if not dropped then t.outbox.(src) <- { at; src; dst; fn } :: t.outbox.(src)

(* Deliver every outboxed message, in an order that is a pure function
   of the simulation state: sort by (delivery time, source shard),
   stable over each source's posting order. Coordinator only. *)
let merge t =
  let items = ref [] in
  for s = Array.length t.outbox - 1 downto 0 do
    (* rev_append un-reverses the outbox; prepending source [s] ahead
       of the already-gathered [s+1..] keeps sources ascending *)
    items := List.rev_append t.outbox.(s) !items;
    t.outbox.(s) <- []
  done;
  match !items with
  | [] -> ()
  | items ->
      let arr = Array.of_list items in
      let cmp a b =
        let c = Int.compare a.at b.at in
        if c <> 0 then c else Int.compare a.src b.src
      in
      (* stable: equal (at, src) keeps posting order *)
      Array.stable_sort cmp arr;
      Array.iter
        (fun it ->
          t.merged <- t.merged + 1;
          ignore (Engine.schedule_at t.engines.(it.dst) ~at:it.at it.fn))
        arr

let next_event_time t =
  let best = ref (-1) in
  Array.iter
    (fun e ->
      match Engine.next_event_time e with
      | Some tm when !best < 0 || tm < !best -> best := tm
      | Some _ | None -> ())
    t.engines;
  if !best < 0 then None else Some !best

(* Run the shards owned by [worker] — indices ≡ worker (mod domains) —
   up to the current window end, in ascending shard order. *)
let run_owned t worker =
  let d = t.domains in
  let limit = t.window_end in
  let n = Array.length t.engines in
  let i = ref worker in
  while !i < n do
    (match t.profiler with
    | None -> Engine.run t.engines.(!i) ~until:limit
    | Some probe ->
        let e = t.engines.(!i) in
        let before = Engine.events_processed e in
        Engine.run e ~until:limit;
        (* the outbox was drained at the window's merge, so its length
           here is exactly what this shard posted this window *)
        probe ~shard:!i ~window_end:limit
          ~events:(Engine.events_processed e - before)
          ~posted:(List.length t.outbox.(!i)));
    i := !i + d
  done

(* One coordinator pass: deliver messages, find the next window, set
   the control block. Returns [false] when the simulation is complete
   up to [until] (all clocks advanced to the horizon). *)
let plan_window t ~until =
  merge t;
  match next_event_time t with
  | Some a when a <= until ->
      (* cap at the horizon: the run must not execute past [until] *)
      let window_end = min (a + t.lookahead - 1) until in
      t.window_end <- window_end;
      t.windows <- t.windows + 1;
      true
  | Some _ | None ->
      (* drained (or nothing left before the horizon): fill every
         clock to the horizon, exactly like a plain [Engine.run] *)
      t.window_end <- until;
      t.windows <- t.windows + 1;
      true

(* Completion check separate from [plan_window]: the final
   clock-filling window must still be executed by the workers. Events
   scheduled beyond the horizon stay queued — exactly as a plain
   [Engine.run ~until] leaves them — so completion only demands that
   nothing at or before [until] remains, in a queue or in flight. *)
let complete t ~until =
  Array.for_all (fun e -> Engine.now e >= until) t.engines
  && (match next_event_time t with None -> true | Some a -> a > until)
  && Array.for_all (fun l -> match l with [] -> true | _ :: _ -> false)
       t.outbox

(* Sequential reference: the coordinator itself runs every shard,
   window by window, in shard order. The parallel path below produces
   byte-identical output; this one exists so [domains = 1] costs no
   thread machinery and serves as the determinism oracle. *)
let run_sequential t ~until =
  let continue = ref true in
  while !continue do
    ignore (plan_window t ~until);
    run_owned t 0;
    if complete t ~until then continue := false
  done

exception Worker_failed of int * exn

(* Parallel path: [domains] worker domains, one of which is driven by
   the caller's domain after it finishes coordinating. Two barrier
   epochs per window: one releasing the workers into the window, one
   collecting them before the coordinator touches shared state. A
   worker that trips an exception records it, then keeps honouring
   barrier epochs doing no work (never abandons the protocol —
   abandoning would deadlock the rest) until the coordinator notices,
   raises the stop flag, and every domain exits at the next epoch. *)
let[@nondet_ok] run_parallel t ~until =
  let d = t.domains in
  let barrier = Barrier.create (d + 1) in
  let failures = Array.make d None in
  let worker w =
    let continue = ref true in
    while !continue do
      Barrier.await barrier (* start epoch: window is planned *);
      if t.stop then continue := false
      else begin
        (try run_owned t w
         with e -> if Option.is_none failures.(w) then failures.(w) <- Some e);
        Barrier.await barrier (* done epoch: window fully executed *)
      end
    done
  in
  let handles = Array.init d (fun w -> Domain.spawn (fun () -> worker w)) in
  let first_failure () =
    let r = ref None in
    Array.iteri
      (fun w f ->
        match (f, !r) with
        | Some e, None -> r := Some (w, e)
        | (Some _ | None), _ -> ())
      failures;
    !r
  in
  let continue = ref true in
  while !continue do
    ignore (plan_window t ~until);
    Barrier.await barrier (* release workers into the window *);
    Barrier.await barrier (* wait for the window to complete *);
    if Option.is_some (first_failure ()) || complete t ~until then
      continue := false
  done;
  t.stop <- true;
  Barrier.await barrier (* final epoch: workers observe stop and exit *);
  Array.iter Domain.join handles;
  t.stop <- false;
  match first_failure () with
  | Some (w, e) ->
      (* lowest worker index wins so the report is stable run-to-run *)
      raise (Worker_failed (w, e))
  | None -> ()

let run t ~until =
  if t.domains = 1 then run_sequential t ~until else run_parallel t ~until
