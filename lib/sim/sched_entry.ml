(* The one event-entry representation shared by every scheduler
   backend (binary heap, timing wheel). The entry doubles as the
   cancellation handle, so a push costs exactly one allocation no
   matter which backend holds it — and a handle minted by one backend
   is recognisably foreign to another only by misuse, never by type.

   [seq] is the backend-local insertion number used to break timestamp
   ties FIFO; the pair [(time, seq)] totally orders every entry a
   backend ever held, which is what makes heap and wheel runs
   byte-identical. *)

type 'a t = {
  time : Units.time;
  seq : int;
  payload : 'a;
  mutable cancelled : bool;
}
