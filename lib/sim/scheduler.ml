(* Backend dispatch for the engine's event queue. A plain two-case
   variant rather than a first-class module: the match in each
   operation compiles to a test-and-branch, which keeps the hot path
   free of closure indirection and lets both backends share the one
   {!Sched_entry} handle type. *)

type kind = Heap | Wheel

let kind_name = function Heap -> "heap" | Wheel -> "wheel"

let kind_of_string = function
  | "heap" -> Some Heap
  | "wheel" -> Some Wheel
  | _ -> None

(* LAUBERHORN_SCHED=wheel swaps the engine's default backend process
   wide; unset or "heap" keeps the binary heap. Read once per engine
   creation, never on the hot path, and the choice cannot change
   results — only their cost — so determinism is unaffected. *)
let env_kind_opt () =
  match Sys.getenv_opt "LAUBERHORN_SCHED" with
  | None | Some "" -> None
  | Some s -> (
      match kind_of_string (String.lowercase_ascii s) with
      | Some _ as k -> k
      | None ->
          invalid_arg
            (Printf.sprintf
               "LAUBERHORN_SCHED=%s: expected \"heap\" or \"wheel\"" s))

let env_kind () = match env_kind_opt () with Some k -> k | None -> Heap

type 'a t = H of 'a Event_heap.t | W of 'a Timing_wheel.t

type 'a handle = 'a Sched_entry.t

let create = function
  | Heap -> H (Event_heap.create ())
  | Wheel -> W (Timing_wheel.create ())

let kind = function H _ -> Heap | W _ -> Wheel

let is_empty = function
  | H h -> Event_heap.is_empty h
  | W w -> Timing_wheel.is_empty w

let live_count = function
  | H h -> Event_heap.live_count h
  | W w -> Timing_wheel.live_count w

let[@hot_path] push t ~time payload =
  match t with
  | H h -> Event_heap.push h ~time payload
  | W w -> Timing_wheel.push w ~time payload

let[@hot_path] cancel t e =
  match t with
  | H h -> Event_heap.cancel h e
  | W w -> Timing_wheel.cancel w e

let[@hot_path] pop t =
  match t with H h -> Event_heap.pop h | W w -> Timing_wheel.pop w

let[@hot_path] peek_time t =
  match t with
  | H h -> Event_heap.peek_time h
  | W w -> Timing_wheel.peek_time w

let validate = function
  | H h -> Event_heap.validate h
  | W w -> Timing_wheel.validate w
