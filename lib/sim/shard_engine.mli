(** Domain-sharded conservative parallel discrete-event simulation.

    Partitions a simulation into fixed shards — one {!Engine} per
    simulated host or isolated pipeline stage — and runs them in
    OCaml 5 domains, synchronized by barrier-delimited conservative
    windows of width [lookahead] (the inter-shard wire latency).
    Shards share no simulation state; the only inter-shard channel is
    {!post}, whose delivery time must be at least one lookahead past
    the sender's clock. That contract makes every window safe to run
    without rollback, and makes each window advance the global clock
    floor by at least one lookahead.

    {b Determinism contract}: a run's observable output (every event
    order, every tie-break, every clock reading) is byte-identical for
    any domain count, including the sequential [domains = 1] case.
    Cross-shard messages are merged at barriers in
    [(delivery time, source shard, posting order)] order by the
    coordinator alone, so destination scheduling — including FIFO
    tie-break seqs — never depends on thread interleaving. Exceptions
    are the one non-goal: a failing run fails for every domain count,
    but the wrapping ({!Worker_failed}) differs.

    Sanitizers attach per shard: each shard's engine keeps its own
    {!Sanitize.Engine_watch} monotonicity monitor and heap/wheel
    validation, touched only by the domain running that shard. *)

type t

exception Worker_failed of int * exn
(** A worker domain died: carries the lowest failing worker index and
    the original exception. The sequential path raises the original
    exception unwrapped. *)

val env_domains : unit -> int
(** Domain count selected by the [LAUBERHORN_SHARDS] environment
    variable; [1] when unset.

    @raise Invalid_argument outside [1..64]. *)

val create : ?domains:int -> lookahead:Units.duration -> Engine.t array -> t
(** Wrap the given per-shard engines. [domains] defaults to
    {!env_domains}, and is capped at the shard count. [lookahead] is
    the conservative window width — the minimum inter-shard latency
    the simulation guarantees.

    @raise Invalid_argument on an empty shard array, a non-positive
    lookahead, or a non-positive domain count. *)

val create_matrix :
  ?domains:int -> latency:Units.duration array array -> Engine.t array -> t
(** Like {!create}, but with a per-pair wire-latency matrix:
    [latency.(s).(d)] is the minimum delivery delay of a message posted
    from shard [s] to shard [d] (the [s]→[d] wire latency; the diagonal
    governs self-posts). The conservative window width — reported by
    {!lookahead} — is the matrix minimum: the rack's shortest link
    bounds how far any shard may safely run ahead. {!post}, however,
    validates each message against its own pair's latency, so on an
    asymmetric topology a delivery that undercuts its link's latency is
    rejected even when it clears the global minimum — with a uniform
    lookahead such a violation would pass silently.

    @raise Invalid_argument on an empty shard array, a non-square
    matrix, or a non-positive entry. *)

val shards : t -> int
val domains : t -> int

val lookahead : t -> Units.duration
(** The conservative window width: the [create] lookahead, or the
    minimum entry of the [create_matrix] latency matrix. *)

val engine : t -> int -> Engine.t
(** The shard's private engine (for scheduling its local events and
    reading its clock). *)

val post :
  t -> src:int -> dst:int -> at:Units.time -> (unit -> unit) -> unit
(** Send a closure from shard [src] to run on shard [dst] at absolute
    time [at]. Call only from [src]'s own events, or from the
    coordinator before {!run}. Delivery happens at the next window
    barrier; ordering across all posts is deterministic.

    @raise Invalid_argument if [at] is earlier than [src]'s clock plus
    the [src]→[dst] lookahead — the uniform one, or the pair's entry in
    the {!create_matrix} latency matrix (the conservative contract) —
    or on a bad shard index. *)

val run : t -> until:Units.time -> unit
(** Run every shard up to and including [until], window by window.
    On return all shard clocks equal [until] (exactly as a plain
    [Engine.run ~until] would leave them) and no event at or before
    [until] remains. Reusable: later calls continue from the current
    state with a later horizon. *)

val next_event_time : t -> Units.time option
(** Earliest pending event across all shards (delivered messages
    only — posts still in flight to a barrier are invisible). *)

val windows_run : t -> int
(** Conservative windows executed so far (parallelism-efficiency
    metric: events per window is the available concurrency). *)

val messages_merged : t -> int
(** Cross-shard messages delivered at barriers so far. *)

type probe =
  shard:int -> window_end:Units.time -> events:int -> posted:int -> unit
(** Per-(shard, window) profiler hook: after a shard finishes a
    window, the hook observes how many events it ran ([events]) and
    how many cross-shard messages it posted ([posted]) in that window,
    plus the window's end time. Every argument is a deterministic
    function of the simulation — never of wall-clock or thread
    scheduling — so profiler output stays byte-identical for any
    domain count. *)

val set_profiler : t -> probe option -> unit
(** Install (or clear) the profiler hook. [None] — the default — costs
    one load-and-branch per shard-window. The hook runs on whichever
    domain owns the shard that window; it must only touch per-shard
    storage (the barrier provides the happens-before edges, exactly as
    for the engines themselves — [Obs.Profiler] is the intended
    callee). Install only from a [Config]-gated (or otherwise
    explicitly armed) path, never unconditionally; simlint enforces
    this within [lib/]. *)

val set_wire_fault :
  t -> (src:int -> dst:int -> at:Units.time -> bool) option -> unit
(** Install (or clear) the wire-fault seam: every {!post} consults the
    predicate — after the lookahead contract is enforced — and a [true]
    answer swallows the message before it reaches the outbox, modelling
    a cut inter-shard wire (a flapping link, an asymmetric partition).
    [None] — the default — costs one load-and-branch per post.

    The predicate runs on the posting domain. To keep runs
    byte-identical across domain counts it must be a pure function of
    [(src, dst, at)] — a {!Fault.Plan} schedule, never shared mutable
    state — and any drop counting must live in per-src storage touched
    only by the posting domain (the same discipline as the outboxes;
    [Fault.Rack_chaos] is the intended installer). Install only from a
    fault-plan-driven seam; simlint's [fault-seam] rule flags anything
    else within [lib/]. *)
