(** The kernel-bypass baseline: DPDK/IX-style poll-mode, run-to-
    completion stack.

    Each poller owns one dedicated, pinned core and one NIC receive
    queue; the NIC's flow director steers each service's UDP port to
    the queue of the poller that statically owns that service.
    Interrupts are permanently masked; an empty ring costs spin cycles
    (accounted precisely, not simulated per iteration).

    Fast when the assignment matches the load; rigid when it does not:
    services cannot move between pollers, idle pollers burn their core,
    and a hot poller cannot borrow its neighbour's — exactly the
    trade-off the paper targets (§1–2). *)

type service_spec = {
  service : Rpc.Interface.service_def;
  port : int;
}

val spec : port:int -> Rpc.Interface.service_def -> service_spec

type t

val create :
  Sim.Engine.t -> profile:Coherence.Interconnect.profile -> ncores:int ->
  ?pollers:int -> ?kernel_costs:Osmodel.Kernel.costs -> ?sw_costs:Costs.t ->
  ?fault:Fault.Plan.t -> ?metrics:Obs.Metrics.t -> ?tracer:Obs.Tracer.t ->
  ?sanitize:Sanitize.t -> ?steering:Nic.Steer_verify.verified ->
  services:service_spec list -> egress:(Net.Frame.t -> unit) -> unit -> t
(** [pollers] defaults to [ncores]. [fault] (default {!Fault.Plan.none})
    is forwarded to the DMA NIC as in {!Linux_stack.create}, with its
    drop/pool gauges on [metrics]. [tracer] collects the per-RPC stage
    chain poll_rx → app → marshal → tx_dma (summing exactly to the
    measured latency). Services are assigned to pollers round-robin;
    the assignment is static for the stack's lifetime.

    [steering] replaces the default port→poller flow director with a
    statically verified application-defined steering program
    ({!Nic.Steer_verify.install}): its per-packet cost is charged in
    the NIC pipeline and per-lane counters land on [metrics]. Any
    poller can serve any service port, so cross-lane steering (e.g.
    key-hash affinity) trades the rigid static assignment for cache
    locality. *)

val ingress : t -> Net.Frame.t -> unit
val kernel : t -> Osmodel.Kernel.t
val nic : t -> Nic.Dma_nic.t
val counters : t -> Sim.Counter.group
val metrics : t -> Obs.Metrics.t
val tracer : t -> Obs.Tracer.t
val poller_of_port : t -> port:int -> int

val flush_spin : t -> unit
(** Charge every poller's open idle-spin window up to the current
    simulated time. Call before reading the kernel's cycle ledgers
    (spin is otherwise only accounted when a packet ends the window). *)

val kill_service : t -> service_id:int -> unit
(** Crash the bypass application. One process owns every ring, so a
    crash in any service takes down all pollers at once. Requests in a
    handler's hands are lost, and arrivals during the outage accumulate
    in the NIC rings until they overflow (drops counted by the DMA
    NIC) — the client gets no transport-level signal. No-op if already
    dead. @raise Invalid_argument on an unknown service. *)

val restart_service : t -> service_id:int -> unit
(** Respawn the application with fresh pinned poller threads; each
    immediately drains whatever survived in its RX ring. No-op if
    alive. @raise Invalid_argument on an unknown service. *)

val driver : t -> Harness.Driver.t
