(** The traditional kernel receive path (paper Figure 1 + §2's twelve
    steps, as a conventional OS implements them).

    DMA NIC → moderated MSI-X → IRQ → NAPI softirq (driver poll, IP/UDP
    processing, socket demux) → wake a blocked server thread → context
    switch → recvfrom copy → software unmarshal → handler → software
    marshal → sendto → doorbell → NIC TX DMA.

    Flexible (any thread anywhere, arbitrarily many services) but every
    step above costs CPU cycles on the data path — this is the baseline
    the paper's Figure 5 contrasts against. *)

type service_spec = {
  service : Rpc.Interface.service_def;
  port : int;
  threads : int;  (** Blocking server threads for this service. *)
}

val spec : ?threads:int -> port:int -> Rpc.Interface.service_def ->
  service_spec
(** [threads] defaults to 2. *)

type t

val create :
  Sim.Engine.t -> profile:Coherence.Interconnect.profile -> ncores:int ->
  ?kernel_costs:Osmodel.Kernel.costs -> ?sw_costs:Costs.t ->
  ?nic_config:Nic.Dma_nic.config -> ?fault:Fault.Plan.t ->
  ?metrics:Obs.Metrics.t -> ?tracer:Obs.Tracer.t ->
  ?sanitize:Sanitize.t ->
  services:service_spec list ->
  egress:(Net.Frame.t -> unit) -> unit -> t
(** [fault] (default {!Fault.Plan.none}) is forwarded to the DMA NIC
    (forced completion drops, DMA corruption caught by the driver's
    checksum validation); fault and pool gauges register on [metrics]
    (default a fresh registry).

    [tracer] (default a fresh, disabled tracer) collects the per-RPC
    stage chain nic_irq → socket → app → send → tx_dma, opened at
    {!ingress} and closed when the response hits the wire; stage
    durations sum exactly to the measured end-system latency. *)

val ingress : t -> Net.Frame.t -> unit

val kill_service : t -> service_id:int -> unit
(** Crash the service's process. The client gets {e no} transport-level
    signal: datagrams already in the socket stay queued (the kernel
    owns the buffer, so they are served after a restart) and requests
    in a handler's hands vanish — clients discover the crash by
    timeout only. No-op if already dead.
    @raise Invalid_argument on an unknown service. *)

val restart_service : t -> service_id:int -> unit
(** Respawn the killed process with fresh server threads; the surviving
    socket backlog is drained first. No-op if alive.
    @raise Invalid_argument on an unknown service. *)

val kernel : t -> Osmodel.Kernel.t
val nic : t -> Nic.Dma_nic.t
val counters : t -> Sim.Counter.group
val metrics : t -> Obs.Metrics.t
val tracer : t -> Obs.Tracer.t
val driver : t -> Harness.Driver.t
