type service_spec = { service : Rpc.Interface.service_def; port : int }

let spec ~port service = { service; port }

type poller = {
  pidx : int;
  core : int;
  mutable pthread : Osmodel.Proc.thread;
  mutable spin_since : Sim.Units.time option;
}

type t = {
  engine : Sim.Engine.t;
  kern : Osmodel.Kernel.t;
  mutable nic : Nic.Dma_nic.t option;
  sw : Costs.t;
  by_port : (int, service_spec) Hashtbl.t;
  port_to_poller : (int, int) Hashtbl.t;
  mutable pollers : poller array;
  mutable proc : Osmodel.Proc.process option;
  egress : Net.Frame.t -> unit;
  counters : Sim.Counter.group;
  metrics : Obs.Metrics.t;
  m_kills : Obs.Metrics.counter;
  m_respawns : Obs.Metrics.counter;
  tracer : Obs.Tracer.t;
  trk : int;
}

let kernel t = t.kern
let metrics t = t.metrics
let tracer t = t.tracer

let span_stage t ~rpc name =
  Obs.Tracer.stage t.tracer ~rpc ~track:t.trk ~name (Sim.Engine.now t.engine)

let nic t =
  match t.nic with
  | Some n -> n
  | None -> invalid_arg "Bypass_stack: NIC not initialised"

let counters t = t.counters
let ctr t name = Sim.Counter.counter t.counters name

let charge_user t p cost =
  Osmodel.Cpu_account.charge
    (Osmodel.Kernel.account t.kern ~core:p.core)
    Osmodel.Cpu_account.User cost

(* Run-to-completion handling of one frame on the poller's core. The
   poller thread owns its core outright, so we charge its ledger
   directly and sequence work with engine delays. *)
let rec poll_loop t p () =
  match Nic.Dma_nic.consume (nic t) ~queue:p.pidx Net.Frame.of_view with
  | Some frame ->
      let rx = t.sw.Costs.poll_rx_per_packet + t.sw.Costs.bypass_demux in
      charge_user t p rx;
      (* Capture the thread identity: if the process crashes while this
         packet is in flight, the continuation must die with it (the
         frame is already consumed from the ring, so it is simply lost —
         bypass gives the client no transport-level crash signal). *)
      let th = p.pthread in
      ignore
        (Sim.Engine.schedule_after t.engine ~after:rx (fun () ->
             if th.Osmodel.Proc.state <> Osmodel.Proc.Exited then
               handle t p frame))
  | None ->
      (* Park the (simulated) spin: the ring's produce callback resumes
         us and we back-charge the spin window. *)
      p.spin_since <- Some (Sim.Engine.now t.engine)

and handle t p frame =
  let drop counter =
    Sim.Counter.incr (ctr t counter);
    poll_loop t p ()
  in
  match Rpc.Wire_format.decode frame.Net.Frame.payload with
  | Error _ -> drop "rx_bad_rpc"
  | Ok wire -> (
      (* DMA delivery + poll-loop spin + per-packet rx cost. *)
      span_stage t ~rpc:wire.Rpc.Wire_format.rpc_id "poll_rx";
      match
        Hashtbl.find_opt t.by_port frame.Net.Frame.udp.Net.Udp.dst_port
      with
      | None -> drop "rx_no_service"
      | Some sspec -> (
          match
            Rpc.Interface.find_method sspec.service
              wire.Rpc.Wire_format.method_id
          with
          | None -> drop "rx_no_method"
          | Some mdef -> (
              match
                Rpc.Codec.decode mdef.Rpc.Interface.request
                  wire.Rpc.Wire_format.body
              with
              | Error _ -> drop "rx_bad_args"
              | Ok args -> execute t p frame wire mdef args)))

and execute t p frame (wire : Rpc.Wire_format.t) mdef args =
  let deser =
    Rpc.Deser_cost.cost Rpc.Deser_cost.software
      ~fields:(Rpc.Value.field_count args)
      ~bytes:(Bytes.length wire.Rpc.Wire_format.body)
  in
  let work = deser + mdef.Rpc.Interface.handler_time in
  charge_user t p work;
  let th = p.pthread in
  ignore
    (Sim.Engine.schedule_after t.engine ~after:work (fun () ->
         if th.Osmodel.Proc.state = Osmodel.Proc.Exited then ()
         else begin
         span_stage t ~rpc:wire.Rpc.Wire_format.rpc_id "app";
         let result = mdef.Rpc.Interface.execute args in
         let body = Rpc.Codec.encode result in
         let marshal =
           Rpc.Deser_cost.cost Rpc.Deser_cost.software_marshal
             ~fields:(Rpc.Value.field_count result)
             ~bytes:(Bytes.length body)
           + t.sw.Costs.doorbell
         in
         charge_user t p marshal;
         ignore
           (Sim.Engine.schedule_after t.engine ~after:marshal (fun () ->
                if th.Osmodel.Proc.state = Osmodel.Proc.Exited then ()
                else begin
                let reply =
                  {
                    Rpc.Wire_format.rpc_id = wire.Rpc.Wire_format.rpc_id;
                    service_id = wire.Rpc.Wire_format.service_id;
                    method_id = wire.Rpc.Wire_format.method_id;
                    kind = Rpc.Wire_format.Response;
                    ctx = wire.Rpc.Wire_format.ctx;
                    body;
                  }
                in
                let out =
                  Net.Frame.make
                    ~src:(Net.Frame.dst_endpoint frame)
                    ~dst:(Net.Frame.src_endpoint frame)
                    (Rpc.Wire_format.encode reply)
                in
                Sim.Counter.incr (ctr t "tx_frames");
                span_stage t ~rpc:wire.Rpc.Wire_format.rpc_id "marshal";
                let rpc = wire.Rpc.Wire_format.rpc_id in
                Nic.Dma_nic.transmit (nic t) out
                  ~via:(fun f ->
                    span_stage t ~rpc "tx_dma";
                    Obs.Tracer.rpc_end t.tracer ~rpc
                      (Sim.Engine.now t.engine);
                    t.egress f);
                Sim.Counter.incr (ctr t "rpcs_handled");
                poll_loop t p ()
                end))
         end))

let resume_from_spin t p () =
  if p.pthread.Osmodel.Proc.state = Osmodel.Proc.Exited then ()
  else
  match p.spin_since with
  | None -> ()
  | Some start ->
      p.spin_since <- None;
      let spun = Sim.Engine.now t.engine - start in
      (* Round up to whole poll iterations — the packet waits for the
         current ring check to come around. *)
      let iters = 1 + (spun / max 1 t.sw.Costs.poll_iteration) in
      Osmodel.Cpu_account.charge
        (Osmodel.Kernel.account t.kern ~core:p.core)
        Osmodel.Cpu_account.Spin
        (iters * t.sw.Costs.poll_iteration);
      let th = p.pthread in
      ignore
        (Sim.Engine.schedule_after t.engine ~after:t.sw.Costs.poll_iteration
           (fun () ->
             if th.Osmodel.Proc.state <> Osmodel.Proc.Exited then
               poll_loop t p ()))

let create engine ~profile ~ncores ?pollers ?kernel_costs
    ?(sw_costs = Costs.default) ?(fault = Fault.Plan.none) ?metrics ?tracer
    ?sanitize ?steering ~services ~egress () =
  if services = [] then invalid_arg "Bypass_stack.create: no services";
  let npollers = match pollers with Some n -> n | None -> ncores in
  if npollers < 1 || npollers > ncores then
    invalid_arg "Bypass_stack.create: pollers out of [1, ncores]";
  let kern =
    match kernel_costs with
    | Some costs -> Osmodel.Kernel.create engine ~ncores ~costs ()
    | None -> Osmodel.Kernel.create engine ~ncores ()
  in
  let metrics =
    match metrics with Some m -> m | None -> Obs.Metrics.create ()
  in
  let tracer =
    match tracer with Some tr -> tr | None -> Obs.Tracer.create ()
  in
  let t =
    {
      engine;
      kern;
      nic = None;
      sw = sw_costs;
      by_port = Hashtbl.create 64;
      port_to_poller = Hashtbl.create 64;
      pollers = [||];
      proc = None;
      egress;
      counters = Sim.Counter.group "bypass";
      metrics;
      m_kills = Obs.Metrics.counter metrics "kills";
      m_respawns = Obs.Metrics.counter metrics "respawns";
      tracer;
      trk = Obs.Tracer.track tracer "bypass";
    }
  in
  (* One RX queue per poller; interrupts permanently masked. *)
  let nic_config =
    {
      Nic.Dma_nic.default_config with
      Nic.Dma_nic.nqueues = npollers;
      coalesce_interval = 0;
    }
  in
  let dnic =
    Nic.Dma_nic.create engine profile ~config:nic_config ~fault ~metrics
      ~on_rx_interrupt:(fun ~queue:_ -> ())
      ()
  in
  for q = 0 to npollers - 1 do
    Nic.Dma_nic.mask_irq dnic ~queue:q
  done;
  t.nic <- Some dnic;
  (match sanitize with
  | None -> ()
  | Some z ->
      ignore
        (Sanitize.Pool_watch.attach z ~name:"bypass-rx-pool"
           ~in_flight:(fun () ->
             let occ = ref 0 in
             for q = 0 to npollers - 1 do
               occ := !occ + Nic.Ring.occupancy (Nic.Dma_nic.rx_ring dnic ~queue:q)
             done;
             !occ)
           (Nic.Dma_nic.pool dnic)));
  (* Static service -> poller assignment, round robin. *)
  List.iteri
    (fun i sspec ->
      Hashtbl.replace t.by_port sspec.port sspec;
      Hashtbl.replace t.port_to_poller sspec.port (i mod npollers))
    services;
  (match steering with
  | Some verified ->
      (* Application-defined receive-side steering: a statically
         verified program replaces the port→poller flow director. *)
      Nic.Steer_verify.install ~metrics ~nic:dnic verified
  | None ->
      (* Legacy flow director: each service's port to its poller's
         queue. Predates the verified steering path; raw table write
         reviewed — total (default queue 0), in-range by construction
         (poller index mod npollers), zero per-packet cost charged. *)
      (Nic.Dma_nic.set_steering dnic (fun frame ->
           match
             Hashtbl.find_opt t.port_to_poller
               frame.Net.Frame.udp.Net.Udp.dst_port
           with
           | Some q -> q
           | None -> 0)
       [@steer_seam]));
  (* Spawn pinned poller threads. *)
  let proc = Osmodel.Kernel.new_process kern ~name:"bypass-app" in
  t.proc <- Some proc;
  t.pollers <-
    Array.init npollers (fun pidx ->
        let p_ref = ref None in
        let body () =
          match !p_ref with
          | Some p -> poll_loop t p ()
          | None -> assert false
        in
        let pthread =
          Osmodel.Kernel.spawn kern proc
            ~name:(Printf.sprintf "poller%d" pidx)
            ~affinity:pidx body
        in
        let p = { pidx; core = pidx; pthread; spin_since = None } in
        p_ref := Some p;
        p);
  Array.iter
    (fun p ->
      let ring = Nic.Dma_nic.rx_ring dnic ~queue:p.pidx in
      Nic.Ring.on_produce ring (fun () -> resume_from_spin t p ());
      Osmodel.Kernel.wake kern p.pthread)
    t.pollers;
  t

let ingress t frame =
  if Obs.Tracer.is_enabled t.tracer then begin
    match Rpc.Wire_format.decode frame.Net.Frame.payload with
    | Ok w when w.Rpc.Wire_format.kind = Rpc.Wire_format.Request ->
        Obs.Tracer.rpc_begin t.tracer ~rpc:w.Rpc.Wire_format.rpc_id
          ~track:t.trk (Sim.Engine.now t.engine)
    | Ok _ | Error _ -> ()
  end;
  Nic.Dma_nic.rx_from_wire (nic t) frame

let flush_spin t =
  (* Charge the open spin window of every idle poller up to now; the
     window restarts so repeated flushes do not double-charge. *)
  let now = Sim.Engine.now t.engine in
  Array.iter
    (fun p ->
      match p.spin_since with
      | None -> ()
      | Some start ->
          if now > start then begin
            Osmodel.Cpu_account.charge
              (Osmodel.Kernel.account t.kern ~core:p.core)
              Osmodel.Cpu_account.Spin (now - start);
            p.spin_since <- Some now
          end)
    t.pollers

let check_service t ~service_id =
  let known =
    Hashtbl.fold
      (fun _ s acc ->
        acc || s.service.Rpc.Interface.service_id = service_id)
      t.by_port false
  in
  if not known then
    invalid_arg
      (Printf.sprintf "Bypass_stack: unknown service %d" service_id)

let app_proc t =
  match t.proc with
  | Some p -> p
  | None -> invalid_arg "Bypass_stack: no process"

(* A bypass app is one process that owns every ring: a crash in any
   service takes down the whole address space, pollers and all. The
   rings survive in the NIC, so arrivals during the outage accumulate
   until the ring overflows (counted by the DMA NIC) — no NACK, no
   kernel-held backlog. *)
let kill_service t ~service_id =
  check_service t ~service_id;
  let proc = app_proc t in
  if proc.Osmodel.Proc.alive then begin
    (* Close every open spin window first so the CPU ledgers account
       the time actually spent spinning before the crash. *)
    flush_spin t;
    Array.iter (fun p -> p.spin_since <- None) t.pollers;
    Osmodel.Kernel.kill t.kern proc;
    Obs.Metrics.incr t.m_kills
  end

let restart_service t ~service_id =
  check_service t ~service_id;
  let proc = app_proc t in
  if not proc.Osmodel.Proc.alive then begin
    Osmodel.Kernel.respawn t.kern proc;
    Obs.Metrics.incr t.m_respawns;
    (* Fresh poller threads on the same pinned cores; each immediately
       drains whatever survived in its RX ring. The ring on_produce
       callbacks close over the mutable poller records, so they keep
       working against the new threads. *)
    Array.iter
      (fun p ->
        let pthread =
          Osmodel.Kernel.spawn t.kern proc
            ~name:(Printf.sprintf "poller%d" p.pidx)
            ~affinity:p.core
            (fun () -> poll_loop t p ())
        in
        p.pthread <- pthread;
        p.spin_since <- None;
        Osmodel.Kernel.wake t.kern pthread)
      t.pollers
  end

let poller_of_port t ~port =
  match Hashtbl.find_opt t.port_to_poller port with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Bypass_stack: unknown port %d" port)

let driver t =
  Harness.Driver.make ~name:"bypass"
    ~ingress:(fun f -> ingress t f)
    ~kernel:t.kern ~counters:t.counters ~metrics:t.metrics
    ~describe:(fun () ->
      Printf.sprintf "bypass(%d pollers, %d services)"
        (Array.length t.pollers) (Hashtbl.length t.by_port))
    ()
