type service_spec = {
  service : Rpc.Interface.service_def;
  port : int;
  threads : int;
}

let spec ?(threads = 2) ~port service =
  if threads < 1 then invalid_arg "Linux_stack.spec: threads < 1";
  { service; port; threads }

type service_rt = {
  sspec : service_spec;
  socket : Net.Frame.t Osmodel.Socket.t;
  mutable sproc : Osmodel.Proc.process option;
      (* retained for crash/restart (threads are reachable through it) *)
}

type t = {
  engine : Sim.Engine.t;
  kern : Osmodel.Kernel.t;
  mutable nic : Nic.Dma_nic.t option;
  sw : Costs.t;
  by_port : (int, service_rt) Hashtbl.t;
  egress : Net.Frame.t -> unit;
  counters : Sim.Counter.group;
  metrics : Obs.Metrics.t;
  m_kills : Obs.Metrics.counter;
  m_respawns : Obs.Metrics.counter;
  tracer : Obs.Tracer.t;
  trk : int;
}

let kernel t = t.kern
let metrics t = t.metrics
let tracer t = t.tracer

let span_stage t ~rpc name =
  Obs.Tracer.stage t.tracer ~rpc ~track:t.trk ~name (Sim.Engine.now t.engine)

(* Stage boundaries inside the kernel path see only the frame; the
   wire-format decode to recover the RPC id is paid only when the
   tracer is on. *)
let span_stage_frame t frame name =
  if Obs.Tracer.is_enabled t.tracer then
    match Rpc.Wire_format.decode frame.Net.Frame.payload with
    | Ok w -> span_stage t ~rpc:w.Rpc.Wire_format.rpc_id name
    | Error _ -> ()

let nic t =
  match t.nic with
  | Some n -> n
  | None -> invalid_arg "Linux_stack: NIC not initialised"

let counters t = t.counters
let ctr t name = Sim.Counter.counter t.counters name

let napi_budget = 64

(* NAPI poll in softirq context on [core]: drain the ring with a
   budget, charging kernel time per packet; unmask when empty. The
   descriptor's bytes are parsed in place and its pooled buffer is
   recycled before the softirq delay elapses, so only frames with a
   registered consumer are copied out of the ring. *)
let rec napi t ~core ~queue ~budget () =
  match
    Nic.Dma_nic.consume (nic t) ~queue (fun v ->
        match Hashtbl.find_opt t.by_port v.Net.Frame.udp.Net.Udp.dst_port with
        | None -> None
        | Some rt -> Some (rt, Net.Frame.of_view v))
  with
  | None -> Nic.Dma_nic.unmask_irq (nic t) ~queue
  | Some delivery ->
      let cost = t.sw.Costs.softirq_per_packet + t.sw.Costs.socket_demux in
      Osmodel.Cpu_account.charge
        (Osmodel.Kernel.account t.kern ~core)
        Osmodel.Cpu_account.Kernel cost;
      ignore
        (Sim.Engine.schedule_after t.engine ~after:cost (fun () ->
             (match delivery with
             | None -> Sim.Counter.incr (ctr t "rx_no_service")
             | Some (rt, frame) ->
                 (* MAC + DMA + interrupt + softirq, attributed at the
                    moment the frame reaches its socket. *)
                 span_stage_frame t frame "nic_irq";
                 Osmodel.Socket.enqueue rt.socket frame);
             if budget > 1 then napi t ~core ~queue ~budget:(budget - 1) ()
             else begin
               (* Budget exhausted: ksoftirqd would take over; model as
                  continued polling after a reschedule-sized gap. *)
               Sim.Counter.incr (ctr t "napi_budget_exhausted");
               ignore
                 (Sim.Engine.schedule_after t.engine
                    ~after:(Osmodel.Kernel.costs t.kern).Osmodel.Kernel.syscall
                    (napi t ~core ~queue ~budget:napi_budget))
             end))

let on_rx_interrupt t ~queue =
  Nic.Dma_nic.mask_irq (nic t) ~queue;
  Sim.Counter.incr (ctr t "interrupts");
  Osmodel.Kernel.run_irq t.kern ~cost:(Sim.Units.ns 700)
    (fun ~core -> napi t ~core ~queue ~budget:napi_budget ())

(* One blocking server thread: recvfrom -> unmarshal -> handler ->
   marshal -> sendto -> doorbell -> NIC TX. *)
let rec server_loop t rt th () =
  Osmodel.Socket.recv rt.socket th (fun frame ->
      let payload = frame.Net.Frame.payload in
      let copy_cost =
        int_of_float
          (Float.round
             (t.sw.Costs.recv_copy_per_byte
             *. float_of_int (Bytes.length payload)))
      in
      Osmodel.Kernel.run_for t.kern th ~kind:Osmodel.Cpu_account.Kernel
        copy_cost (fun () ->
          match Rpc.Wire_format.decode payload with
          | Error _ ->
              Sim.Counter.incr (ctr t "rx_bad_rpc");
              server_loop t rt th ()
          | Ok wire -> handle_rpc t rt th frame wire))

and handle_rpc t rt th frame (wire : Rpc.Wire_format.t) =
  (* Socket wait + wakeup + recv copy + header decode. *)
  span_stage t ~rpc:wire.Rpc.Wire_format.rpc_id "socket";
  match
    Rpc.Interface.find_method rt.sspec.service wire.Rpc.Wire_format.method_id
  with
  | None ->
      Sim.Counter.incr (ctr t "rx_no_method");
      server_loop t rt th ()
  | Some mdef -> (
      match
        Rpc.Codec.decode mdef.Rpc.Interface.request wire.Rpc.Wire_format.body
      with
      | Error _ ->
          Sim.Counter.incr (ctr t "rx_bad_args");
          server_loop t rt th ()
      | Ok args ->
          let deser_cost =
            Rpc.Deser_cost.cost Rpc.Deser_cost.software
              ~fields:(Rpc.Value.field_count args)
              ~bytes:(Bytes.length wire.Rpc.Wire_format.body)
          in
          Osmodel.Kernel.run_for t.kern th ~kind:Osmodel.Cpu_account.User
            (deser_cost + mdef.Rpc.Interface.handler_time) (fun () ->
              let result = mdef.Rpc.Interface.execute args in
              let body = Rpc.Codec.encode result in
              let marshal_cost =
                Rpc.Deser_cost.cost Rpc.Deser_cost.software_marshal
                  ~fields:(Rpc.Value.field_count result)
                  ~bytes:(Bytes.length body)
              in
              Osmodel.Kernel.run_for t.kern th
                ~kind:Osmodel.Cpu_account.User marshal_cost (fun () ->
                  send_reply t rt th frame wire body)))

and send_reply t rt th frame wire body =
  (* Deserialize + handler + marshal, all user time. *)
  span_stage t ~rpc:wire.Rpc.Wire_format.rpc_id "app";
  let send_cost =
    t.sw.Costs.send_path
    + int_of_float
        (Float.round
           (t.sw.Costs.send_copy_per_byte *. float_of_int (Bytes.length body)))
    + t.sw.Costs.doorbell
  in
  Osmodel.Kernel.run_for t.kern th ~kind:Osmodel.Cpu_account.Kernel send_cost
    (fun () ->
      let reply =
        {
          Rpc.Wire_format.rpc_id = wire.Rpc.Wire_format.rpc_id;
          service_id = wire.Rpc.Wire_format.service_id;
          method_id = wire.Rpc.Wire_format.method_id;
          kind = Rpc.Wire_format.Response;
          ctx = wire.Rpc.Wire_format.ctx;
          body;
        }
      in
      let out =
        Net.Frame.make
          ~src:(Net.Frame.dst_endpoint frame)
          ~dst:(Net.Frame.src_endpoint frame)
          (Rpc.Wire_format.encode reply)
      in
      Sim.Counter.incr (ctr t "tx_frames");
      span_stage t ~rpc:wire.Rpc.Wire_format.rpc_id "send";
      let rpc = wire.Rpc.Wire_format.rpc_id in
      Nic.Dma_nic.transmit (nic t) out
        ~via:(fun f ->
          span_stage t ~rpc "tx_dma";
          Obs.Tracer.rpc_end t.tracer ~rpc (Sim.Engine.now t.engine);
          t.egress f);
      server_loop t rt th ())

let spawn_server_threads t rt proc =
  for i = 0 to rt.sspec.threads - 1 do
    let th_ref = ref None in
    let body () =
      match !th_ref with
      | Some th -> server_loop t rt th ()
      | None -> assert false
    in
    let th =
      Osmodel.Kernel.spawn t.kern proc
        ~name:
          (Printf.sprintf "%s-t%d" rt.sspec.service.Rpc.Interface.service_name
             i)
        body
    in
    th_ref := Some th;
    Osmodel.Kernel.wake t.kern th
  done

(* Crash/restart lifecycle. A killed Linux service gives the client NO
   transport-level signal: in-socket datagrams stay queued (the kernel
   owns the socket buffer) and in-handler requests vanish with the
   process — clients discover the crash only by timeout. That silence
   is the baseline the NACKing stacks are contrasted against. *)
let service_rt_by_id t ~service_id =
  let found = ref None in
  Hashtbl.iter
    (fun _port rt ->
      if rt.sspec.service.Rpc.Interface.service_id = service_id then
        found := Some rt)
    t.by_port;
  match !found with
  | Some rt -> rt
  | None ->
      invalid_arg (Printf.sprintf "Linux_stack: unknown service %d" service_id)

let kill_service t ~service_id =
  let rt = service_rt_by_id t ~service_id in
  match rt.sproc with
  | Some proc when proc.Osmodel.Proc.alive ->
      Obs.Metrics.incr t.m_kills;
      Osmodel.Kernel.kill t.kern proc
  | Some _ | None -> ()

let restart_service t ~service_id =
  let rt = service_rt_by_id t ~service_id in
  match rt.sproc with
  | Some proc when not proc.Osmodel.Proc.alive ->
      Obs.Metrics.incr t.m_respawns;
      Osmodel.Kernel.respawn t.kern proc;
      (* Fresh threads; the socket and its backlog survived the crash,
         so queued datagrams are served first. *)
      spawn_server_threads t rt proc
  | Some _ | None -> ()

let create engine ~profile ~ncores ?kernel_costs ?(sw_costs = Costs.default)
    ?nic_config ?(fault = Fault.Plan.none) ?metrics ?tracer ?sanitize
    ~services ~egress
    () =
  if services = [] then invalid_arg "Linux_stack.create: no services";
  let kern =
    match kernel_costs with
    | Some costs -> Osmodel.Kernel.create engine ~ncores ~costs ()
    | None -> Osmodel.Kernel.create engine ~ncores ()
  in
  let metrics =
    match metrics with Some m -> m | None -> Obs.Metrics.create ()
  in
  let tracer =
    match tracer with Some tr -> tr | None -> Obs.Tracer.create ()
  in
  let t =
    {
      engine;
      kern;
      nic = None;
      sw = sw_costs;
      by_port = Hashtbl.create 64;
      egress;
      counters = Sim.Counter.group "linux";
      metrics;
      m_kills = Obs.Metrics.counter metrics "kills";
      m_respawns = Obs.Metrics.counter metrics "respawns";
      tracer;
      trk = Obs.Tracer.track tracer "linux";
    }
  in
  let nic_config =
    match nic_config with Some c -> c | None -> Nic.Dma_nic.default_config
  in
  let dnic =
    Nic.Dma_nic.create engine profile ~config:nic_config ~fault ~metrics
      ~on_rx_interrupt:(fun ~queue -> on_rx_interrupt t ~queue)
      ()
  in
  t.nic <- Some dnic;
  (match sanitize with
  | None -> ()
  | Some z ->
      (* Buffers parked in un-consumed ring descriptors at cutoff are
         accounted, not leaked. *)
      ignore
        (Sanitize.Pool_watch.attach z ~name:"linux-rx-pool"
           ~in_flight:(fun () ->
             let occ = ref 0 in
             for q = 0 to nic_config.Nic.Dma_nic.nqueues - 1 do
               occ := !occ + Nic.Ring.occupancy (Nic.Dma_nic.rx_ring dnic ~queue:q)
             done;
             !occ)
           (Nic.Dma_nic.pool dnic)));
  List.iter
    (fun sspec ->
      let rt =
        { sspec; socket = Osmodel.Socket.create kern (); sproc = None }
      in
      if Hashtbl.mem t.by_port sspec.port then
        invalid_arg
          (Printf.sprintf "Linux_stack.create: port %d taken" sspec.port);
      Hashtbl.add t.by_port sspec.port rt;
      let proc =
        Osmodel.Kernel.new_process kern
          ~name:sspec.service.Rpc.Interface.service_name
      in
      rt.sproc <- Some proc;
      spawn_server_threads t rt proc)
    services;
  t

let ingress t frame =
  if Obs.Tracer.is_enabled t.tracer then begin
    match Rpc.Wire_format.decode frame.Net.Frame.payload with
    | Ok w when w.Rpc.Wire_format.kind = Rpc.Wire_format.Request ->
        Obs.Tracer.rpc_begin t.tracer ~rpc:w.Rpc.Wire_format.rpc_id
          ~track:t.trk (Sim.Engine.now t.engine)
    | Ok _ | Error _ -> ()
  end;
  Nic.Dma_nic.rx_from_wire (nic t) frame

let driver t =
  Harness.Driver.make ~name:"linux"
    ~ingress:(fun f -> ingress t f)
    ~kernel:t.kern ~counters:t.counters ~metrics:t.metrics
    ~describe:(fun () ->
      Printf.sprintf "linux(%d cores, %d services)"
        (Osmodel.Kernel.ncores t.kern)
        (Hashtbl.length t.by_port))
    ()
