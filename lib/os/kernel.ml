type costs = {
  ctx_switch_process : Sim.Units.duration;
  ctx_switch_thread : Sim.Units.duration;
  syscall : Sim.Units.duration;
  wake : Sim.Units.duration;
  ipi_latency : Sim.Units.duration;
  ipi_handler : Sim.Units.duration;
  irq_latency : Sim.Units.duration;
  timer_tick_period : Sim.Units.duration;
  timer_tick_cost : Sim.Units.duration;
  quantum : Sim.Units.duration;
}

let default_costs =
  {
    ctx_switch_process = Sim.Units.ns 1_300;
    ctx_switch_thread = Sim.Units.ns 500;
    syscall = Sim.Units.ns 300;
    wake = Sim.Units.ns 500;
    ipi_latency = Sim.Units.ns 800;
    ipi_handler = Sim.Units.ns 300;
    irq_latency = Sim.Units.ns 1_500;
    timer_tick_period = Sim.Units.ms 1;
    timer_tick_cost = Sim.Units.ns 200;
    quantum = Sim.Units.ms 5;
  }

type core = {
  cid : int;
  rq : Runqueue.t;
  acct : Cpu_account.t;
  mutable running : Proc.thread option;
  mutable need_resched : bool;
  mutable last_pid : int;
  mutable stall_start : Sim.Units.time option;
}

type hook =
  core:int -> prev:Proc.thread option -> next:Proc.thread option -> unit

type t = {
  engine : Sim.Engine.t;
  kcosts : costs;
  cores : core array;
  work_stealing : bool;
  mutable next_pid : int;
  mutable next_tid : int;
  mutable hooks : hook list;
  mutable wake_hooks : (core:int -> Proc.thread -> unit) list;
  mutable proc_exit_hooks : (Proc.process -> unit) list;
  mutable proc_respawn_hooks : (Proc.process -> unit) list;
  mutable ctx_switches : int;
  mutable kills : int;
  mutable irq_rr : int;
}

let engine t = t.engine
let ncores t = Array.length t.cores
let costs t = t.kcosts

let fire_hooks t core ~prev ~next =
  List.iter (fun h -> h ~core ~prev ~next) t.hooks

let core t i =
  if i < 0 || i >= Array.length t.cores then
    invalid_arg (Printf.sprintf "Kernel: no core %d" i);
  t.cores.(i)

(* Dispatch the next runnable thread onto an idle core. *)
let rec dispatch t c =
  match c.running with
  | Some _ -> ()
  | None -> (
      let next =
        match Runqueue.pop c.rq with
        | Some th -> Some th
        | None -> if t.work_stealing then steal t c else None
      in
      match next with
      | None -> ()
      | Some th ->
          let switch_cost =
            if th.Proc.kernel_thread || th.Proc.proc.Proc.pid = c.last_pid
            then t.kcosts.ctx_switch_thread
            else t.kcosts.ctx_switch_process
          in
          c.running <- Some th;
          th.Proc.state <- Proc.Running c.cid;
          th.Proc.last_core <- Some c.cid;
          th.Proc.quantum_start <- Sim.Engine.now t.engine + switch_cost;
          if not th.Proc.kernel_thread then
            c.last_pid <- th.Proc.proc.Proc.pid;
          t.ctx_switches <- t.ctx_switches + 1;
          Cpu_account.charge c.acct Cpu_account.Kernel switch_cost;
          fire_hooks t c.cid ~prev:None ~next:(Some th);
          let resume =
            match th.Proc.resume with
            | Some f ->
                th.Proc.resume <- None;
                f
            | None ->
                invalid_arg
                  (Printf.sprintf "Kernel.dispatch: thread %d has no resume"
                     th.Proc.tid)
          in
          ignore
            (Sim.Engine.schedule_after t.engine ~after:switch_cost resume))

and steal t thief =
  (* Pull an unpinned thread from the longest other queue. *)
  let best = ref None in
  Array.iter
    (fun c ->
      if c.cid <> thief.cid && Runqueue.length c.rq > 0 then
        match !best with
        | Some b when Runqueue.length b.rq >= Runqueue.length c.rq -> ()
        | Some _ | None -> best := Some c)
    t.cores;
  match !best with
  | None -> None
  | Some victim -> (
      match Runqueue.pop victim.rq with
      | None -> None
      | Some th ->
          if th.Proc.affinity = None then Some th
          else begin
            (* Pinned: give it back; no second attempt this round. *)
            Runqueue.enqueue victim.rq th;
            None
          end)

let release_core t c th =
  (match c.running with
  | Some cur when cur == th -> ()
  | Some cur ->
      invalid_arg
        (Printf.sprintf "Kernel: thread %d releasing core %d owned by %d"
           th.Proc.tid c.cid cur.Proc.tid)
  | None ->
      invalid_arg
        (Printf.sprintf "Kernel: thread %d releasing idle core %d"
           th.Proc.tid c.cid));
  c.running <- None;
  fire_hooks t c.cid ~prev:(Some th) ~next:None;
  dispatch t c

let running_core t th =
  match th.Proc.state with
  | Proc.Running cid -> core t cid
  | Proc.Ready | Proc.Blocked | Proc.Exited ->
      invalid_arg
        (Printf.sprintf "Kernel: thread %d (%s) is not running" th.Proc.tid
           (Proc.state_name th.Proc.state))

let start_ticks t c =
  let rec tick () =
    (match c.running with
    | None -> () (* tickless idle *)
    | Some th ->
        Cpu_account.charge c.acct Cpu_account.Kernel t.kcosts.timer_tick_cost;
        let ran = Sim.Engine.now t.engine - th.Proc.quantum_start in
        if ran >= t.kcosts.quantum && not (Runqueue.is_empty c.rq) then
          c.need_resched <- true);
    ignore
      (Sim.Engine.schedule_after t.engine ~after:t.kcosts.timer_tick_period
         tick)
  in
  ignore
    (Sim.Engine.schedule_after t.engine ~after:t.kcosts.timer_tick_period tick)

let create engine ~ncores ?(costs = default_costs) ?(work_stealing = true) ()
    =
  if ncores <= 0 then invalid_arg "Kernel.create: need at least one core";
  let cores =
    Array.init ncores (fun cid ->
        {
          cid;
          rq = Runqueue.create ();
          acct = Cpu_account.create ();
          running = None;
          need_resched = false;
          last_pid = -1;
          stall_start = None;
        })
  in
  let t =
    {
      engine;
      kcosts = costs;
      cores;
      work_stealing;
      next_pid = 1;
      next_tid = 1;
      hooks = [];
      wake_hooks = [];
      proc_exit_hooks = [];
      proc_respawn_hooks = [];
      ctx_switches = 0;
      kills = 0;
      irq_rr = 0;
    }
  in
  Array.iter (fun c -> start_ticks t c) cores;
  t

let new_process t ~name =
  let pid = t.next_pid in
  t.next_pid <- t.next_pid + 1;
  Proc.make_process ~pid ~name

let spawn t proc ~name ?affinity ?(kernel_thread = false) body =
  let tid = t.next_tid in
  t.next_tid <- t.next_tid + 1;
  let th = Proc.make_thread ~tid ~name ~proc ?affinity ~kernel_thread () in
  th.Proc.resume <- Some body;
  th

let pick_wake_core t th =
  match th.Proc.affinity with
  | Some cid -> core t cid
  | None -> (
      let idle c = c.running = None && Runqueue.is_empty c.rq in
      let last_ok =
        match th.Proc.last_core with
        | Some cid when idle (core t cid) -> Some (core t cid)
        | Some _ | None -> None
      in
      match last_ok with
      | Some c -> c
      | None -> (
          match Array.find_opt idle t.cores with
          | Some c -> c
          | None ->
              Array.fold_left
                (fun best c ->
                  if Runqueue.length c.rq < Runqueue.length best.rq then c
                  else best)
                t.cores.(0) t.cores))

let wake t th =
  match th.Proc.state with
  | Proc.Ready | Proc.Running _ -> ()
  (* Tolerated no-op: a timer or I/O completion may race with a crash
     (a sleep's wake firing after the process was killed). *)
  | Proc.Exited -> ()
  | Proc.Blocked ->
      let c = pick_wake_core t th in
      th.Proc.state <- Proc.Ready;
      Cpu_account.charge c.acct Cpu_account.Kernel t.kcosts.wake;
      Runqueue.enqueue c.rq th;
      if c.running <> None then
        List.iter (fun h -> h ~core:c.cid th) t.wake_hooks;
      dispatch t c

let exit_thread t th =
  let c = running_core t th in
  th.Proc.state <- Proc.Exited;
  th.Proc.resume <- None;
  release_core t c th

(* Crash a whole process: every thread transitions to Exited wherever
   it is. Running threads release their cores (closing an open memory
   stall first, so the ledger balances); Ready threads become stale
   run-queue entries that [Runqueue.pop] skips; Blocked threads simply
   never wake. Context-switch hooks fire for each vacated core, so the
   NIC mirror learns about the death with its usual push lag. *)
let kill t proc =
  if proc.Proc.alive then begin
    proc.Proc.alive <- false;
    t.kills <- t.kills + 1;
    List.iter
      (fun (th : Proc.thread) ->
        match th.Proc.state with
        | Proc.Exited -> ()
        | Proc.Ready | Proc.Blocked ->
            th.Proc.state <- Proc.Exited;
            th.Proc.resume <- None
        | Proc.Running cid ->
            let c = core t cid in
            (match (c.running, c.stall_start) with
            | Some cur, Some start when cur == th ->
                c.stall_start <- None;
                Cpu_account.charge c.acct Cpu_account.Stall
                  (Sim.Engine.now t.engine - start)
            | _ -> ());
            th.Proc.state <- Proc.Exited;
            th.Proc.resume <- None;
            (match c.running with
            | Some cur when cur == th ->
                c.running <- None;
                fire_hooks t c.cid ~prev:(Some th) ~next:None;
                dispatch t c
            | Some _ | None -> ()))
      proc.Proc.members;
    List.iter (fun h -> h proc) t.proc_exit_hooks
  end

(* Bring a killed process back. Old thread bodies were consumed
   closures, so the caller must [spawn] fresh threads into the process
   afterwards; the pid is stable across the cycle. *)
let respawn t proc =
  if not proc.Proc.alive then begin
    proc.Proc.alive <- true;
    List.iter (fun h -> h proc) t.proc_respawn_hooks
  end

let preempt t c th k =
  c.need_resched <- false;
  th.Proc.resume <- Some k;
  th.Proc.state <- Proc.Ready;
  Runqueue.enqueue c.rq th;
  c.running <- None;
  fire_hooks t c.cid ~prev:(Some th) ~next:None;
  dispatch t c

let run_for t th ~kind d k =
  if d < 0 then invalid_arg "Kernel.run_for: negative duration";
  let c = running_core t th in
  ignore
    (Sim.Engine.schedule_after t.engine ~after:d (fun () ->
         match th.Proc.state with
         | Proc.Exited ->
             (* Killed mid-segment: the continuation dies with the
                thread (the core was already released by [kill]). *)
             ()
         | Proc.Ready | Proc.Running _ | Proc.Blocked ->
             Cpu_account.charge c.acct kind d;
             if c.need_resched && not (Runqueue.is_empty c.rq) then
               preempt t c th k
             else k ()))

let yield t th k =
  let c = running_core t th in
  run_for t th ~kind:Cpu_account.Kernel t.kcosts.syscall (fun () ->
      if Runqueue.is_empty c.rq then k ()
      else begin
        th.Proc.resume <- Some k;
        th.Proc.state <- Proc.Ready;
        Runqueue.enqueue c.rq th;
        c.running <- None;
        fire_hooks t c.cid ~prev:(Some th) ~next:None;
        dispatch t c
      end)

let block t th k =
  let c = running_core t th in
  th.Proc.resume <- Some k;
  th.Proc.state <- Proc.Blocked;
  release_core t c th

let sleep t th d k =
  if d < 0 then invalid_arg "Kernel.sleep: negative duration";
  block t th k;
  ignore (Sim.Engine.schedule_after t.engine ~after:d (fun () -> wake t th))

let stall_begin t th =
  let c = running_core t th in
  if c.stall_start <> None then
    invalid_arg "Kernel.stall_begin: core already stalled";
  c.stall_start <- Some (Sim.Engine.now t.engine)

let stall_end t th =
  let c = running_core t th in
  match c.stall_start with
  | None -> invalid_arg "Kernel.stall_end: core not stalled"
  | Some start ->
      c.stall_start <- None;
      Cpu_account.charge c.acct Cpu_account.Stall
        (Sim.Engine.now t.engine - start)

let run_irq t ?core:cid ~cost handler =
  let c =
    match cid with
    | Some cid -> core t cid
    | None -> (
        match Array.find_opt (fun c -> c.running = None) t.cores with
        | Some c -> c
        | None ->
            let c = t.cores.(t.irq_rr mod Array.length t.cores) in
            t.irq_rr <- t.irq_rr + 1;
            c)
  in
  ignore
    (Sim.Engine.schedule_after t.engine ~after:t.kcosts.irq_latency
       (fun () ->
         Cpu_account.charge c.acct Cpu_account.Kernel cost;
         handler ~core:c.cid))

let send_ipi t ~core:cid k =
  let c = core t cid in
  ignore
    (Sim.Engine.schedule_after t.engine ~after:t.kcosts.ipi_latency
       (fun () ->
         Cpu_account.charge c.acct Cpu_account.Kernel t.kcosts.ipi_handler;
         k ()))

let current t ~core:cid = (core t cid).running
let core_is_idle t ~core:cid = (core t cid).running = None

let idle_cores t =
  Array.to_list t.cores
  |> List.filter_map (fun c -> if c.running = None then Some c.cid else None)

let runqueue_length t ~core:cid = Runqueue.length (core t cid).rq

let total_runnable_waiting t =
  Array.fold_left (fun acc c -> acc + Runqueue.length c.rq) 0 t.cores

let account t ~core:cid = (core t cid).acct
let accounts t = Array.to_list t.cores |> List.map (fun c -> c.acct)
let on_context_switch t h = t.hooks <- t.hooks @ [ h ]
let on_wake_enqueue t h = t.wake_hooks <- t.wake_hooks @ [ h ]
let on_process_exit t h = t.proc_exit_hooks <- t.proc_exit_hooks @ [ h ]

let on_process_respawn t h =
  t.proc_respawn_hooks <- t.proc_respawn_hooks @ [ h ]

let context_switches t = t.ctx_switches
let kills t = t.kills
