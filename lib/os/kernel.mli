(** The OS kernel model: cores, run queues, scheduling, context
    switches, IPIs, timer ticks, and cycle accounting.

    Threads are continuation chains. A thread's body runs when the
    scheduler dispatches it on a core and drives itself with the
    execution primitives below ([run_for], [yield], [block], ...); each
    primitive charges simulated CPU time and returns control to the
    engine. Within one [run_for] segment a thread is non-preemptible
    (segments are short — handler bodies, syscall paths); preemption
    happens at segment boundaries when a timer tick has marked the core
    for reschedule. This matches the throughput-oriented, mostly
    non-preemptive kernels the paper discusses.

    Interrupt approximation: an IRQ charges kernel time on its target
    core and runs its handler after the configured latency, without
    delaying a segment already in flight on that core (brief
    double-booking instead of mid-segment preemption). IRQ steering
    prefers idle cores, so double-booking is rare; the simplification
    is documented here once and holds for all experiments. *)

type costs = {
  ctx_switch_process : Sim.Units.duration;
      (** Address-space switch (TLB/cache effects folded in). *)
  ctx_switch_thread : Sim.Units.duration;  (** Same address space. *)
  syscall : Sim.Units.duration;  (** User→kernel→user, combined. *)
  wake : Sim.Units.duration;  (** try_to_wake_up path, charged to waker. *)
  ipi_latency : Sim.Units.duration;  (** Send to handler start. *)
  ipi_handler : Sim.Units.duration;  (** Kernel time on the target. *)
  irq_latency : Sim.Units.duration;  (** Device signal to ISR start. *)
  timer_tick_period : Sim.Units.duration;
  timer_tick_cost : Sim.Units.duration;
  quantum : Sim.Units.duration;  (** Timeslice before tick preemption. *)
}

val default_costs : costs
(** Linux-flavoured numbers on a server CPU: 1.3 µs process switch,
    500 ns thread switch, 300 ns syscall, 500 ns wake, 800 ns IPI
    delivery, 1 ms tick, 5 ms quantum. *)

type t

val create :
  Sim.Engine.t -> ncores:int -> ?costs:costs -> ?work_stealing:bool ->
  unit -> t
(** [work_stealing] (default true) lets an idle core pull unpinned
    threads from the longest other queue. *)

val engine : t -> Sim.Engine.t
val ncores : t -> int
val costs : t -> costs

(** {1 Processes and threads} *)

val new_process : t -> name:string -> Proc.process

val spawn :
  t -> Proc.process -> name:string -> ?affinity:int ->
  ?kernel_thread:bool -> (unit -> unit) -> Proc.thread
(** Create a thread whose body is the given closure. The thread starts
    [Blocked]; call {!wake} to make it runnable. The body must finish by
    calling one of the primitives that relinquish the core
    ({!block}, {!exit_thread}, ...). *)

val wake : t -> Proc.thread -> unit
(** Make a blocked thread runnable and place it: pinned core if any,
    else its last core when idle, else any idle core, else the shortest
    run queue. No-op if already runnable, and a tolerated no-op on an
    exited thread (a timer or I/O completion racing with {!kill}).
    Charged [costs.wake] to the kernel of the target core. *)

val exit_thread : t -> Proc.thread -> unit

(** {1 Process lifecycle — the server-side failure domain} *)

val kill : t -> Proc.process -> unit
(** Crash the process: all its threads exit wherever they are. Running
    threads release their cores immediately (open memory stalls are
    closed and charged); Ready threads become stale run-queue entries
    that the scheduler skips; Blocked threads never wake. A segment in
    flight under {!run_for} is abandoned when its timer fires. The
    context-switch hooks fire for each vacated core — the NIC's
    scheduling mirror therefore sees the death with the same push lag
    as any other occupancy change. Fires the {!on_process_exit} hooks
    synchronously. Idempotent. *)

val respawn : t -> Proc.process -> unit
(** Mark a killed process alive again (same pid) and fire the
    {!on_process_respawn} hooks. Thread bodies are one-shot
    continuation chains, so the caller spawns fresh threads into the
    process afterwards. No-op if the process is alive. *)

val on_process_exit : t -> (Proc.process -> unit) -> unit
val on_process_respawn : t -> (Proc.process -> unit) -> unit

val kills : t -> int
(** Total {!kill}s that found a live process. *)

(** {1 Execution primitives — call only from the running thread} *)

val run_for :
  t -> Proc.thread -> kind:Cpu_account.kind -> Sim.Units.duration ->
  (unit -> unit) -> unit
(** Execute for a duration, charging the core, then continue — unless a
    reschedule is pending, in which case the thread is preempted and the
    continuation runs at its next dispatch. *)

val yield : t -> Proc.thread -> (unit -> unit) -> unit
(** Voluntarily give up the core (syscall cost applies). Continues
    immediately if nothing else is runnable. *)

val block : t -> Proc.thread -> (unit -> unit) -> unit
(** Leave the core and sleep until {!wake}; the continuation runs at the
    next dispatch after the wake. *)

val sleep : t -> Proc.thread -> Sim.Units.duration -> (unit -> unit) -> unit
(** {!block} plus a timer wake. *)

val stall_begin : t -> Proc.thread -> unit
(** Mark the thread's core as stalled on a memory load: the core stays
    occupied by this thread but accrues [Stall] (low-power) rather than
    [User] time, until {!stall_end}. *)

val stall_end : t -> Proc.thread -> unit

(** {1 Interrupts} *)

val run_irq :
  t -> ?core:int -> cost:Sim.Units.duration -> (core:int -> unit) -> unit
(** Deliver a device interrupt: pick a core (given, else prefer idle),
    charge kernel time, run the handler after [costs.irq_latency]. *)

val send_ipi : t -> core:int -> (unit -> unit) -> unit
(** Inter-processor interrupt: handler runs on the target core after
    [costs.ipi_latency], charging [costs.ipi_handler]. *)

(** {1 Introspection} *)

val current : t -> core:int -> Proc.thread option
val core_is_idle : t -> core:int -> bool
val idle_cores : t -> int list
val runqueue_length : t -> core:int -> int
val total_runnable_waiting : t -> int
val account : t -> core:int -> Cpu_account.t
val accounts : t -> Cpu_account.t list

val on_context_switch :
  t -> (core:int -> prev:Proc.thread option -> next:Proc.thread option ->
        unit) -> unit
(** Register a hook observing every occupancy change of every core —
    the feed for the NIC's scheduling-state mirror (paper §4: "the
    kernel keeps the NIC updated with the current OS scheduling
    state"). Hooks run synchronously at the switch instant. *)

val on_wake_enqueue : t -> (core:int -> Proc.thread -> unit) -> unit
(** Register a hook firing when {!wake} queues a thread behind a busy
    core. Lauberhorn uses this as the kernel→NIC "please free this
    core" signal: if the core's occupant is parked on a CONTROL line,
    the NIC answers it with TRYAGAIN, which makes the occupant enter
    the kernel and yield (paper §5.1's clean descheduling point). *)

val context_switches : t -> int
(** Total dispatches that changed the running thread. *)
