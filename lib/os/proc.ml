type thread_state = Ready | Running of int | Blocked | Exited

type process = {
  pid : int;
  pname : string;
  mutable thread_count : int;
  mutable alive : bool;
  mutable members : thread list;  (* most-recently-spawned first *)
}

and thread = {
  tid : int;
  tname : string;
  proc : process;
  mutable state : thread_state;
  mutable resume : (unit -> unit) option;
  mutable affinity : int option;
  mutable last_core : int option;
  mutable kernel_thread : bool;
  mutable quantum_start : Sim.Units.time;
}

let make_process ~pid ~name =
  { pid; pname = name; thread_count = 0; alive = true; members = [] }

let make_thread ~tid ~name ~proc ?affinity ?(kernel_thread = false) () =
  proc.thread_count <- proc.thread_count + 1;
  let th =
    {
      tid;
      tname = name;
      proc;
      state = Blocked;
      resume = None;
      affinity;
      last_core = None;
      kernel_thread;
      quantum_start = 0;
    }
  in
  proc.members <- th :: proc.members;
  th

let live_members p =
  List.filter (fun th -> th.state <> Exited) p.members

let is_runnable t =
  match t.state with
  | Ready | Running _ -> true
  | Blocked | Exited -> false

let is_exited t = match t.state with Exited -> true | _ -> false

let state_name = function
  | Ready -> "ready"
  | Running c -> Printf.sprintf "running@%d" c
  | Blocked -> "blocked"
  | Exited -> "exited"

let pp_thread ppf t =
  Format.fprintf ppf "%s/%s(tid=%d,%s)" t.proc.pname t.tname t.tid
    (state_name t.state)
