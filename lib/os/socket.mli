(** A receive socket: the queue between softirq-context protocol
    processing and a blocking application thread.

    [recv] charges one syscall and blocks the calling thread when the
    queue is empty; [enqueue] (kernel context) wakes the oldest waiter.
    Payloads are type-parametric ([Net.Frame.t] in the Linux baseline). *)

type 'a t

val create : Kernel.t -> unit -> 'a t

val enqueue : 'a t -> 'a -> unit
(** Deliver a datagram. Never blocks; unbounded (the ring ahead of it
    is the bounded element, as in real kernels the socket buffer limit
    rarely binds for small RPCs). Waiters whose process has been killed
    are skipped and discarded; the datagram remains queued until a live
    thread receives it (crash/restart keeps the backlog). *)

val recv : 'a t -> Proc.thread -> ('a -> unit) -> unit
(** Blocking receive from the calling thread's context. *)

val depth : 'a t -> int
val waiters : 'a t -> int
val enqueued : 'a t -> int
