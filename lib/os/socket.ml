type 'a t = {
  kern : Kernel.t;
  q : 'a Queue.t;
  waiting : Proc.thread Queue.t;
  mutable total : int;
}

let create kern () =
  { kern; q = Queue.create (); waiting = Queue.create (); total = 0 }

let enqueue t v =
  Queue.add v t.q;
  t.total <- t.total + 1;
  (* Waiters that died (their process was killed) while parked here are
     discarded; the datagram stays queued for the next live receiver. *)
  let rec wake_waiter () =
    match Queue.take_opt t.waiting with
    | Some th when th.Proc.state = Proc.Exited -> wake_waiter ()
    | Some th -> Kernel.wake t.kern th
    | None -> ()
  in
  wake_waiter ()

let recv t th k =
  let rec try_take () =
    match Queue.take_opt t.q with
    | Some v -> k v
    | None ->
        Queue.add th t.waiting;
        Kernel.block t.kern th try_take
  in
  Kernel.run_for t.kern th ~kind:Cpu_account.Kernel
    (Kernel.costs t.kern).Kernel.syscall try_take

let depth t = Queue.length t.q
let waiters t = Queue.length t.waiting
let enqueued t = t.total
