(** Processes and threads — the schedulable entities.

    A thread's behaviour is a chain of continuations driven by
    {!Kernel}: the [resume] closure is what runs next time the thread
    is dispatched onto a core. State transitions are owned by the
    kernel; this module is the passive data model. *)

type thread_state =
  | Ready  (** On a run queue. *)
  | Running of int  (** Executing (or stalled) on the given core. *)
  | Blocked  (** Waiting for a wake (socket, endpoint, sleep). *)
  | Exited

type process = {
  pid : int;
  pname : string;
  mutable thread_count : int;
  mutable alive : bool;
      (** Cleared by {!Kernel.kill}; restored by {!Kernel.respawn}. *)
  mutable members : thread list;
      (** Every thread ever spawned into the process, newest first
          (exited ones included — see {!live_members}). *)
}

and thread = {
  tid : int;
  tname : string;
  proc : process;
  mutable state : thread_state;
  mutable resume : (unit -> unit) option;
      (** Continuation to run at next dispatch; consumed by the kernel. *)
  mutable affinity : int option;  (** Pinned core, if any. *)
  mutable last_core : int option;  (** For wake placement affinity. *)
  mutable kernel_thread : bool;
      (** Kernel threads switch cheaper (no address-space change) and
          are eligible for RETIRE (paper §5.2). *)
  mutable quantum_start : Sim.Units.time;
      (** When the thread last started running (quantum accounting). *)
}

val make_process : pid:int -> name:string -> process

val make_thread :
  tid:int -> name:string -> proc:process -> ?affinity:int ->
  ?kernel_thread:bool -> unit -> thread

val live_members : process -> thread list
(** The process's threads that have not exited. *)

val is_runnable : thread -> bool

val is_exited : thread -> bool
(** The thread's state is [Exited] (typed stand-in for a polymorphic
    state compare). *)

val state_name : thread_state -> string
val pp_thread : Format.formatter -> thread -> unit
