(* Classic libpcap, nanosecond-resolution variant, little-endian. *)

let magic_ns = 0xa1b23c4d
let linktype_ethernet = 1

type t = {
  snaplen : int;
  buf : Buffer.t;  (* records only; header prepended at [to_bytes] *)
  mutable nrecords : int;
}

let add_u32 b v =
  Buffer.add_char b (Char.chr (v land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xff))

let add_u16 b v =
  Buffer.add_char b (Char.chr (v land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff))

let create ?(snaplen = 65535) () =
  if snaplen <= 0 then invalid_arg "Pcap.create: snaplen must be positive";
  { snaplen; buf = Buffer.create 4096; nrecords = 0 }

let add_frame t ~time frame =
  let bytes = Net.Frame.encode frame in
  let orig_len = Bytes.length bytes in
  let incl_len = min orig_len t.snaplen in
  add_u32 t.buf (time / 1_000_000_000);
  add_u32 t.buf (time mod 1_000_000_000);
  add_u32 t.buf incl_len;
  add_u32 t.buf orig_len;
  Buffer.add_subbytes t.buf bytes 0 incl_len;
  t.nrecords <- t.nrecords + 1

let count t = t.nrecords

let to_bytes t =
  let header = Buffer.create 24 in
  add_u32 header magic_ns;
  add_u16 header 2;
  (* major *)
  add_u16 header 4;
  (* minor *)
  add_u32 header 0;
  (* thiszone *)
  add_u32 header 0;
  (* sigfigs *)
  add_u32 header t.snaplen;
  add_u32 header linktype_ethernet;
  Buffer.add_buffer header t.buf;
  Buffer.to_bytes header

let write_file t ~file =
  let oc = open_out_bin file in
  output_bytes oc (to_bytes t);
  close_out oc

let get_u32 b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

let records b =
  let len = Bytes.length b in
  if len < 24 then Error "pcap: truncated global header"
  else if get_u32 b 0 <> magic_ns then
    Error (Printf.sprintf "pcap: bad magic 0x%08x" (get_u32 b 0))
  else if get_u32 b 20 <> linktype_ethernet then
    Error (Printf.sprintf "pcap: unexpected linktype %d" (get_u32 b 20))
  else begin
    let rec loop off acc =
      if off = len then Ok (List.rev acc)
      else if off + 16 > len then Error "pcap: truncated record header"
      else begin
        let sec = get_u32 b off in
        let nsec = get_u32 b (off + 4) in
        let incl_len = get_u32 b (off + 8) in
        if off + 16 + incl_len > len then Error "pcap: truncated record body"
        else
          let time = (sec * 1_000_000_000) + nsec in
          let slice = Net.Slice.make b ~off:(off + 16) ~len:incl_len in
          loop (off + 16 + incl_len) ((time, slice) :: acc)
      end
    in
    loop 24 []
  end
