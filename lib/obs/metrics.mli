(** The unified metrics registry.

    One typed registry per server stack absorbs what used to be
    scattered, string-keyed counter plumbing: NIC drop/overflow
    counts, coherence-fault counters, telemetry fault events and pool
    accounting all register here and are exported through one
    interface (assoc lists for reports, JSON for tooling).

    Four metric kinds:
    - {b counters} — monotonically increasing ints, owned by the
      registry ({!incr}/{!add});
    - {b gauges} — set-to-a-value ints ({!set});
    - {b derived gauges} — read-through callbacks onto state owned
      elsewhere (a NIC's ring-drop tally, a pool's outstanding count),
      sampled at export time;
    - {b histograms} — {!Sim.Histogram} value distributions.

    Registering the same name twice returns the same metric; reusing a
    name with a different kind raises [Invalid_argument]. *)

type t

type counter
type gauge

val create : unit -> t

(** {1 Registration} *)

val counter : t -> string -> counter
val gauge : t -> string -> gauge

val derive : t -> string -> (unit -> int) -> unit
(** Register a derived gauge: [fn] is called at export time. *)

val histogram : t -> string -> Sim.Histogram.t
(** Find-or-create a histogram metric; record into the returned
    histogram directly. *)

(** {1 Updates and reads} *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int
val set : gauge -> int -> unit
val gauge_value : gauge -> int

val counter_value : t -> string -> int
(** Value of a registered counter by name; 0 when the name was never
    registered (does not create it). *)

val merge_into : src:t -> dst:t -> unit
(** Deterministic aggregation: add every metric of [src] into [dst],
    iterating [src] in sorted-name order (merge registries in a fixed
    shard order for a rack-wide snapshot that is a pure function of
    the simulation). Counters and gauges add; derived gauges are
    sampled now and add into a plain [dst] gauge of the same name;
    histograms merge via {!Sim.Histogram.merge_into}.

    @raise Invalid_argument when a name is already registered in [dst]
    with an incompatible kind (a derived source needs a gauge slot). *)

(** {1 Export} *)

val to_list : ?keep_zero:bool -> t -> (string * int) list
(** Scalar metrics (counters, gauges, derived gauges — not
    histograms), sorted by name. Zero-valued entries are dropped
    unless [keep_zero] — absent and zero are indistinguishable to
    report code, and dropping keeps fault-free reports free of fault
    counters. *)

val counters_list : ?keep_zero:bool -> t -> (string * int) list
(** Like {!to_list} but counters only (the fault-event section of a
    report, without the derived NIC gauges). *)

val to_json : t -> Json.t
(** Every metric, sorted by name. Scalars export as numbers;
    histograms as [{count, mean, p50, p90, p99, max}]. *)

val pp : Format.formatter -> t -> unit
(** One ["  name: value"] line per scalar metric (zeros kept). *)
