(** The compact cross-fabric trace context.

    A traced RPC that leaves its origin shard carries these 16 bytes
    inside its wire message (see [Rpc.Wire_format]'s context
    extension): the trace id (the rpc id by convention), the id of the
    parent span on the origin's tracer, and the origin host index.
    Every hop can then attribute its own spans to the same causal tree
    without sharing any tracer state across shards — stitching happens
    after the run, from per-shard tracers, in {!Stitch}. *)

type t = {
  trace : int64;  (** Trace (= RPC) id the carried spans belong to. *)
  parent : int;  (** Root span id on the origin's tracer. *)
  origin : int;  (** Origin host index (uplink planes use [hosts]). *)
}

val size : int
(** Encoded size: 16 bytes. *)

val to_bytes : t -> bytes
(** @raise Invalid_argument when [parent] or [origin] exceeds u32. *)

val of_bytes : bytes -> t option
(** [None] unless the input is exactly {!size} bytes. *)

val pp : Format.formatter -> t -> unit
