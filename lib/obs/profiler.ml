(* Per-shard PDES profiler: the callee behind
   Sim.Shard_engine.set_profiler. Every cell is indexed by shard and
   written only by the domain running that shard inside a window (the
   barrier provides the happens-before edges, exactly as for the
   engines), and only sim-time-deterministic quantities are recorded —
   so the report is byte-identical for any LAUBERHORN_SHARDS value. *)

type t = {
  shards : int;
  windows : int array;  (* windows this shard executed *)
  idle : int array;  (* windows with zero events: pure barrier wait *)
  events_total : int array;
  posted_total : int array;
  events : Sim.Histogram.t array;  (* events per window *)
  posted : Sim.Histogram.t array;  (* outbox depth at the barrier *)
}

let create ~shards =
  if shards <= 0 then invalid_arg "Profiler.create: shards must be positive";
  {
    shards;
    windows = Array.make shards 0;
    idle = Array.make shards 0;
    events_total = Array.make shards 0;
    posted_total = Array.make shards 0;
    events = Array.init shards (fun _ -> Sim.Histogram.create ());
    posted = Array.init shards (fun _ -> Sim.Histogram.create ());
  }

let probe t ~shard ~window_end:_ ~events ~posted =
  t.windows.(shard) <- t.windows.(shard) + 1;
  if events = 0 then t.idle.(shard) <- t.idle.(shard) + 1;
  t.events_total.(shard) <- t.events_total.(shard) + events;
  t.posted_total.(shard) <- t.posted_total.(shard) + posted;
  Sim.Histogram.record t.events.(shard) events;
  Sim.Histogram.record t.posted.(shard) posted

let install t shard_engine =
  if Sim.Shard_engine.shards shard_engine <> t.shards then
    invalid_arg "Profiler.install: shard count mismatch";
  Sim.Shard_engine.set_profiler shard_engine (Some (probe t))

let shards t = t.shards

let q h p =
  if Sim.Histogram.count h = 0 then 0 else Sim.Histogram.quantile h p

let hmax h =
  if Sim.Histogram.count h = 0 then 0 else Sim.Histogram.max_value h

(* Lookahead-window utilization in percent: the fraction of this
   shard's windows in which it had any events to run; its complement
   is the barrier-wait occupancy. Integer arithmetic only. *)
let utilization_pct t shard =
  if t.windows.(shard) = 0 then 0
  else 100 * (t.windows.(shard) - t.idle.(shard)) / t.windows.(shard)

let report_lines t =
  List.init t.shards (fun s ->
      Printf.sprintf
        "shard %d: windows=%d busy=%d idle=%d util=%d%% events/win[p50=%d \
         p99=%d max=%d total=%d] outbox/win[p50=%d p99=%d max=%d total=%d]"
        s t.windows.(s)
        (t.windows.(s) - t.idle.(s))
        t.idle.(s) (utilization_pct t s)
        (q t.events.(s) 0.5)
        (q t.events.(s) 0.99)
        (hmax t.events.(s))
        t.events_total.(s)
        (q t.posted.(s) 0.5)
        (q t.posted.(s) 0.99)
        (hmax t.posted.(s))
        t.posted_total.(s))

(* Fold the per-shard registries into [metrics] in fixed (shard, name)
   order — scalars as counters, distributions merged through
   Sim.Histogram.merge_into. *)
let merge_into_metrics t metrics =
  for s = 0 to t.shards - 1 do
    let name suffix = Printf.sprintf "shard%02d_%s" s suffix in
    Metrics.add (Metrics.counter metrics (name "windows")) t.windows.(s);
    Metrics.add (Metrics.counter metrics (name "idle_windows")) t.idle.(s);
    Metrics.add (Metrics.counter metrics (name "events")) t.events_total.(s);
    Metrics.add (Metrics.counter metrics (name "posted")) t.posted_total.(s);
    Sim.Histogram.merge_into ~src:t.events.(s)
      ~dst:(Metrics.histogram metrics (name "events_per_window"));
    Sim.Histogram.merge_into ~src:t.posted.(s)
      ~dst:(Metrics.histogram metrics (name "outbox_depth"))
  done
