(** One node of a per-RPC causal trace.

    A span is an interval (or instant) on a named track, attributed to
    one RPC ([trace_id]) and causally linked to a parent span. Spans
    carry a globally monotone sequence number so exports stay
    deterministically ordered even among same-timestamp events. *)

type kind =
  | Interval  (** A [start_time, end_time] stage of the RPC's chain. *)
  | Detail
      (** A fine-grained sub-interval inside a stage; not part of the
          contiguous stage chain. *)
  | Instant  (** A point event (drop, retry, fault). *)

type t = {
  id : int;  (** Unique within a tracer, > 0. *)
  parent : int;  (** Parent span id; {!no_parent} for roots. *)
  trace_id : int64;  (** The RPC this span belongs to; 0L if none. *)
  track : int;  (** Track index (see {!Tracer.track}). *)
  name : string;
  kind : kind;
  seq : int;  (** Global monotone emission order. *)
  start_time : Sim.Units.time;
  mutable end_time : int;  (** -1 while the interval is still open. *)
}

val no_parent : int
(** The parent id of a root span (0). *)

val is_closed : t -> bool
val duration : t -> Sim.Units.duration
(** 0 for open intervals and instants. *)

val pp : Format.formatter -> t -> unit
