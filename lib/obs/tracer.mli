(** The per-RPC span collector.

    A tracer follows the paper's §6 observation: because the NIC sees
    every RPC's arrival and its response, it can attribute end-system
    latency to pipeline stages with zero application cost. Stacks call
    {!rpc_begin} when a request frame enters the NIC, {!stage} at each
    stage boundary, and {!rpc_end} when the response frame leaves.

    Stage spans form a {e contiguous chain}: each stage runs from the
    previous boundary (tracked per RPC) to the given time, so the
    stage durations of a completed RPC telescope to exactly the
    recorder-measured end-system latency — the invariant experiment
    E14 checks.

    Disabled (the default), every emission is a single load-and-branch
    — the same discipline as {!Sim.Trace}'s unforced thunks, cheap
    enough to leave compiled into every hot path. *)

type t

val create : unit -> t

val enable : t -> unit
val disable : t -> unit
val is_enabled : t -> bool

val track : t -> string -> int
(** Intern a track (rendered as a named thread in trace viewers).
    Returns an index for the emission calls; registering the same name
    twice returns the same index. Registration works while disabled. *)

val track_name : t -> int -> string
val tracks : t -> string list
(** In registration order. *)

(** {1 Emission}

    All emission is a no-op (one branch) while the tracer is
    disabled. *)

val rpc_begin : t -> rpc:int64 -> track:int -> Sim.Units.time -> unit
(** Open the RPC's root span and set its stage cursor. Re-beginning an
    RPC id (a retransmit reaching the server twice) replaces the
    cursor; the superseded root stays open and is skipped by exports. *)

val stage :
  t -> rpc:int64 -> track:int -> name:string -> Sim.Units.time -> unit
(** Close the stage running since the RPC's cursor: emits the interval
    [cursor, time] as a child of the root span and advances the cursor
    to [time]. No-op for an RPC with no open root (e.g. a nested call
    injected behind the MAC). *)

val stage_until :
  t ->
  rpc:int64 ->
  track:int ->
  name:string ->
  stop:Sim.Units.time ->
  unit
(** Like {!stage} but closing at an explicit [stop] instead of "now":
    a wire crossing whose completion time the sender already knows
    (transmit time + link latency) can be attributed without an event
    on the receiving side. The cursor advances to [stop]. *)

val skip_to : t -> rpc:int64 -> Sim.Units.time -> unit
(** Move the RPC's cursor to [time] without emitting a span: the
    elapsed interval belongs to another shard's tracer (e.g. the
    served host's stack), which records it against the same trace id.
    {!Stitch} verifies the remote chain fills the gap exactly. *)

val is_open : t -> rpc:int64 -> bool
(** The RPC has an open root (and the tracer is enabled). *)

val root_of : t -> rpc:int64 -> int option
(** The open root span's id — the value carried as [Context.parent]. *)

val set_context : t -> rpc:int64 -> bytes -> unit
(** Note the RPC's wire trace context (opaque {!Context} bytes) so the
    reply path can echo it. No-op while disabled. *)

val context_of : t -> rpc:int64 -> bytes option
(** The noted context, if any; always [None] while disabled. Cleared
    by {!rpc_end} and {!clear}. *)

val detail :
  t ->
  rpc:int64 ->
  track:int ->
  name:string ->
  start:Sim.Units.time ->
  stop:Sim.Units.time ->
  unit
(** A fine-grained sub-interval (e.g. the NIC pipeline's parse/demux/
    deserialize steps inside one stage). Does not move the stage
    cursor and is excluded from the stage-sum invariant; lives on its
    own track. *)

val instant :
  t -> ?rpc:int64 -> track:int -> name:string -> Sim.Units.time -> unit
(** A point event (drop, retry, fault). *)

val rpc_end : t -> rpc:int64 -> Sim.Units.time -> unit
(** Close the RPC's root span at [time] and retire its cursor. *)

(** {1 Inspection} *)

val spans : t -> Span.t list
(** Every span, in emission (sequence) order. *)

val roots : t -> Span.t list
(** Closed root spans (one per completed traced RPC), in order. *)

val stages_of : t -> rpc:int64 -> Span.t list
(** The closed stage chain of one RPC, in order ({!detail} and
    {!instant} spans excluded). *)

val span_count : t -> int
val clear : t -> unit
(** Drop all spans and cursors; tracks and enablement survive. *)
