type kind = Interval | Detail | Instant

type t = {
  id : int;
  parent : int;
  trace_id : int64;
  track : int;
  name : string;
  kind : kind;
  seq : int;
  start_time : Sim.Units.time;
  mutable end_time : int;
}

let no_parent = 0
let is_closed s = s.end_time >= 0

let duration s =
  if s.kind = Instant || not (is_closed s) then 0
  else s.end_time - s.start_time

let pp ppf s =
  match s.kind with
  | Instant ->
      Format.fprintf ppf "[%a] !%s rpc=%Ld #%d" Sim.Units.pp_time
        s.start_time s.name s.trace_id s.seq
  | Interval | Detail ->
      Format.fprintf ppf "[%a..%s] %s rpc=%Ld #%d" Sim.Units.pp_time
        s.start_time
        (if is_closed s then
           Format.asprintf "%a" Sim.Units.pp_time s.end_time
         else "open")
        s.name s.trace_id s.seq
