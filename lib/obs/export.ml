let us_of_ns ns = float_of_int ns /. 1000.

let event ?(pid = 1) ~name ~cat ~ph ~ts ~tid extra =
  Json.Obj
    ([
       ("name", Json.Str name);
       ("cat", Json.Str cat);
       ("ph", Json.Str ph);
       ("ts", Json.Float (us_of_ns ts));
       ("pid", Json.Int pid);
       ("tid", Json.Int tid);
     ]
    @ extra)

let metadata ?(pid = 1) ~name ~tid value =
  Json.Obj
    [
      ("name", Json.Str name);
      ("ph", Json.Str "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.Str value) ]);
    ]

let span_event ?(pid = 1) (s : Span.t) =
  let tid = s.Span.track + 1 in
  let args =
    Json.Obj
      [
        ("rpc", Json.Str (Int64.to_string s.Span.trace_id));
        ("seq", Json.Int s.Span.seq);
        ("span", Json.Int s.Span.id);
        ("parent", Json.Int s.Span.parent);
      ]
  in
  match s.Span.kind with
  | Span.Instant ->
      Some
        (event ~pid ~name:s.Span.name ~cat:"event" ~ph:"i"
           ~ts:s.Span.start_time ~tid
           [ ("s", Json.Str "t"); ("args", args) ])
  | Span.Interval | Span.Detail ->
      if not (Span.is_closed s) then None
      else
        let cat =
          match s.Span.kind with
          | Span.Detail -> "detail"
          | Span.Interval ->
              if s.Span.parent = Span.no_parent then "rpc" else "stage"
          | Span.Instant -> assert false
        in
        Some
          (event ~pid ~name:s.Span.name ~cat ~ph:"X" ~ts:s.Span.start_time
             ~tid
             [
               ( "dur",
                 Json.Float (us_of_ns (s.Span.end_time - s.Span.start_time))
               );
               ("args", args);
             ])

let trace_events ?(process = "lauberhorn-sim") ?(sim = []) tracer =
  let tracer_tracks = Tracer.tracks tracer in
  let ntracks = List.length tracer_tracks in
  let meta =
    Json.Obj
      [
        ("name", Json.Str "process_name");
        ("ph", Json.Str "M");
        ("pid", Json.Int 1);
        ("args", Json.Obj [ ("name", Json.Str process) ]);
      ]
    :: List.mapi
         (fun i name -> metadata ~name:"thread_name" ~tid:(i + 1) name)
         tracer_tracks
    @ List.mapi
        (fun i (label, _) ->
          metadata ~name:"thread_name" ~tid:(ntracks + 1 + i) label)
        sim
  in
  let span_events =
    List.filter_map span_event (Tracer.spans tracer)
  in
  let sim_events =
    List.concat
      (List.mapi
         (fun i (_, trace) ->
           let tid = ntracks + 1 + i in
           List.map
             (fun (seq, time, cat, msg) ->
               event ~name:cat ~cat:"sim-trace" ~ph:"i" ~ts:time ~tid
                 [
                   ("s", Json.Str "t");
                   ( "args",
                     Json.Obj
                       [ ("seq", Json.Int seq); ("msg", Json.Str msg) ] );
                 ])
             (Sim.Trace.entries_seq trace))
         sim)
  in
  Json.Obj
    [
      ("traceEvents", Json.List (meta @ span_events @ sim_events));
      ("displayTimeUnit", Json.Str "ns");
    ]

(* One process per plane: host tracers, the switch/uplink plane and
   the control plane each get their own pid (their label as the
   process name), with that tracer's tracks as the process's threads.
   Planes appear in list order; a fixed-seed run exports byte-
   identical JSON. *)
let multi_trace_events planes =
  let meta =
    List.concat
      (List.mapi
         (fun i (label, tracer) ->
           let pid = i + 1 in
           Json.Obj
             [
               ("name", Json.Str "process_name");
               ("ph", Json.Str "M");
               ("pid", Json.Int pid);
               ("args", Json.Obj [ ("name", Json.Str label) ]);
             ]
           :: List.mapi
                (fun t name -> metadata ~pid ~name:"thread_name" ~tid:(t + 1) name)
                (Tracer.tracks tracer))
         planes)
  in
  let span_events =
    List.concat
      (List.mapi
         (fun i (_, tracer) ->
           List.filter_map (span_event ~pid:(i + 1)) (Tracer.spans tracer))
         planes)
  in
  Json.Obj
    [
      ("traceEvents", Json.List (meta @ span_events));
      ("displayTimeUnit", Json.Str "ns");
    ]

let to_string ?process ?sim tracer =
  Json.to_string (trace_events ?process ?sim tracer)

let write_file ?process ?sim tracer ~file =
  let oc = open_out file in
  output_string oc (to_string ?process ?sim tracer);
  output_char oc '\n';
  close_out oc
