(** Chrome trace-event / Perfetto JSON export.

    Renders a {!Tracer}'s spans (and optionally {!Sim.Trace} rings) as
    a trace-event JSON object loadable by [ui.perfetto.dev] or
    [chrome://tracing]. Timestamps are emitted in microseconds with
    nanosecond precision (three decimals); events appear in global
    sequence order, so a fixed-seed run exports byte-identical JSON. *)

val trace_events :
  ?process:string ->
  ?sim:(string * Sim.Trace.t) list ->
  Tracer.t ->
  Json.t
(** The full document: thread/process-name metadata, one ["X"]
    (complete) event per closed interval/detail span, one ["i"]
    (instant) event per instant span. Open spans (RPCs still in
    flight, superseded retransmit roots) are skipped. Each [sim] pair
    [(track_label, trace)] contributes its retained {!Sim.Trace}
    entries as instant events on an extra track, ordered by their own
    sequence numbers. *)

val to_string :
  ?process:string -> ?sim:(string * Sim.Trace.t) list -> Tracer.t -> string

val write_file :
  ?process:string ->
  ?sim:(string * Sim.Trace.t) list ->
  Tracer.t ->
  file:string ->
  unit
