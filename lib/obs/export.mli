(** Chrome trace-event / Perfetto JSON export.

    Renders a {!Tracer}'s spans (and optionally {!Sim.Trace} rings) as
    a trace-event JSON object loadable by [ui.perfetto.dev] or
    [chrome://tracing]. Timestamps are emitted in microseconds with
    nanosecond precision (three decimals); events appear in global
    sequence order, so a fixed-seed run exports byte-identical JSON. *)

val trace_events :
  ?process:string ->
  ?sim:(string * Sim.Trace.t) list ->
  Tracer.t ->
  Json.t
(** The full document: thread/process-name metadata, one ["X"]
    (complete) event per closed interval/detail span, one ["i"]
    (instant) event per instant span. Open spans (RPCs still in
    flight, superseded retransmit roots) are skipped. Each [sim] pair
    [(track_label, trace)] contributes its retained {!Sim.Trace}
    entries as instant events on an extra track, ordered by their own
    sequence numbers. *)

val multi_trace_events : (string * Tracer.t) list -> Json.t
(** A multi-process document for a stitched rack trace: each
    [(label, tracer)] plane renders as its own process (pid = list
    position + 1, process name = label) with the tracer's tracks as
    threads — one plane per host, plus the switch/uplink and control
    planes. Spans keep their cross-plane trace/parent ids in [args],
    so one RPC's causal tree reads across processes in the viewer. *)

val to_string :
  ?process:string -> ?sim:(string * Sim.Trace.t) list -> Tracer.t -> string

val write_file :
  ?process:string ->
  ?sim:(string * Sim.Trace.t) list ->
  Tracer.t ->
  file:string ->
  unit
