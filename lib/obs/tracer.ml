type cursor = { root_id : int; mutable at : Sim.Units.time }

type t = {
  mutable enabled : bool;
  mutable spans : Span.t array;  (* dense prefix of length [n] *)
  mutable n : int;
  mutable seq : int;
  mutable tracks : string array;
  mutable ntracks : int;
  cursors : (int64, cursor) Hashtbl.t;
  (* opaque per-RPC trace contexts (Context.to_bytes) noted at ingress
     so the reply path can echo them onto the wire *)
  ctxs : (int64, bytes) Hashtbl.t;
}

let dummy_span =
  {
    Span.id = 0;
    parent = 0;
    trace_id = 0L;
    track = 0;
    name = "";
    kind = Span.Instant;
    seq = 0;
    start_time = 0;
    end_time = 0;
  }

let create () =
  {
    enabled = false;
    spans = Array.make 256 dummy_span;
    n = 0;
    seq = 0;
    tracks = Array.make 8 "";
    ntracks = 0;
    cursors = Hashtbl.create 64;
    ctxs = Hashtbl.create 64;
  }

let enable t = t.enabled <- true
let disable t = t.enabled <- false
let is_enabled t = t.enabled

let track t name =
  let rec find i =
    if i >= t.ntracks then begin
      if t.ntracks = Array.length t.tracks then begin
        let bigger = Array.make (2 * t.ntracks) "" in
        Array.blit t.tracks 0 bigger 0 t.ntracks;
        t.tracks <- bigger
      end;
      t.tracks.(t.ntracks) <- name;
      t.ntracks <- t.ntracks + 1;
      t.ntracks - 1
    end
    else if String.equal t.tracks.(i) name then i
    else find (i + 1)
  in
  find 0

let track_name t i =
  if i < 0 || i >= t.ntracks then invalid_arg "Tracer.track_name";
  t.tracks.(i)

let tracks t = Array.to_list (Array.sub t.tracks 0 t.ntracks)

let push t span =
  if t.n = Array.length t.spans then begin
    let bigger = Array.make (2 * t.n) dummy_span in
    Array.blit t.spans 0 bigger 0 t.n;
    t.spans <- bigger
  end;
  t.spans.(t.n) <- span;
  t.n <- t.n + 1

(* Span ids are 1-based indexes into [spans]. *)
let emit t ~parent ~trace_id ~track ~name ~kind ~start ~stop =
  let id = t.n + 1 in
  let seq = t.seq in
  t.seq <- seq + 1;
  push t
    {
      Span.id;
      parent;
      trace_id;
      track;
      name;
      kind;
      seq;
      start_time = start;
      end_time = stop;
    };
  id

let rpc_begin t ~rpc ~track time =
  if t.enabled then begin
    let root_id =
      emit t ~parent:Span.no_parent ~trace_id:rpc ~track ~name:"rpc"
        ~kind:Span.Interval ~start:time ~stop:(-1)
    in
    Hashtbl.replace t.cursors rpc { root_id; at = time }
  end

let stage t ~rpc ~track ~name time =
  if t.enabled then
    match Hashtbl.find_opt t.cursors rpc with
    | None -> ()
    | Some c ->
        ignore
          (emit t ~parent:c.root_id ~trace_id:rpc ~track ~name
             ~kind:Span.Interval ~start:c.at ~stop:time);
        c.at <- time

let stage_until t ~rpc ~track ~name ~stop =
  if t.enabled then
    match Hashtbl.find_opt t.cursors rpc with
    | None -> ()
    | Some c ->
        ignore
          (emit t ~parent:c.root_id ~trace_id:rpc ~track ~name
             ~kind:Span.Interval ~start:c.at ~stop);
        c.at <- stop

let skip_to t ~rpc time =
  if t.enabled then
    match Hashtbl.find_opt t.cursors rpc with
    | None -> ()
    | Some c -> c.at <- time

let is_open t ~rpc = t.enabled && Hashtbl.mem t.cursors rpc

let root_of t ~rpc =
  if not t.enabled then None
  else
    match Hashtbl.find_opt t.cursors rpc with
    | Some c -> Some c.root_id
    | None -> None

let set_context t ~rpc ctx = if t.enabled then Hashtbl.replace t.ctxs rpc ctx

let context_of t ~rpc =
  if t.enabled then Hashtbl.find_opt t.ctxs rpc else None

let detail t ~rpc ~track ~name ~start ~stop =
  if t.enabled then
    match Hashtbl.find_opt t.cursors rpc with
    | None -> ()
    | Some c ->
        ignore
          (emit t ~parent:c.root_id ~trace_id:rpc ~track ~name
             ~kind:Span.Detail ~start ~stop)

let instant t ?(rpc = 0L) ~track ~name time =
  if t.enabled then
    let parent =
      match Hashtbl.find_opt t.cursors rpc with
      | Some c -> c.root_id
      | None -> Span.no_parent
    in
    ignore
      (emit t ~parent ~trace_id:rpc ~track ~name ~kind:Span.Instant
         ~start:time ~stop:time)

let rpc_end t ~rpc time =
  if t.enabled then
    match Hashtbl.find_opt t.cursors rpc with
    | None -> ()
    | Some c ->
        t.spans.(c.root_id - 1).Span.end_time <- time;
        Hashtbl.remove t.cursors rpc;
        Hashtbl.remove t.ctxs rpc

let spans t = List.init t.n (fun i -> t.spans.(i))

let roots t =
  List.filter
    (fun s -> s.Span.parent = Span.no_parent && Span.is_closed s
              && s.Span.kind = Span.Interval)
    (spans t)

let stages_of t ~rpc =
  (* Stages of the RPC's most recent completed root. *)
  let root =
    List.fold_left
      (fun acc s ->
        if s.Span.trace_id = rpc && s.Span.parent = Span.no_parent
           && Span.is_closed s
        then Some s.Span.id
        else acc)
      None (spans t)
  in
  match root with
  | None -> []
  | Some root_id ->
      List.filter
        (fun s ->
          s.Span.parent = root_id && s.Span.kind = Span.Interval
          && Span.is_closed s)
        (spans t)

let span_count t = t.n

let clear t =
  Array.fill t.spans 0 t.n dummy_span;
  t.n <- 0;
  t.seq <- 0;
  Hashtbl.reset t.cursors;
  Hashtbl.reset t.ctxs
