type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---------- Rendering ---------- *)

let escape_into b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else
    (* Shortest representation that round-trips. *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
      if not (Float.is_finite f) then
        invalid_arg "Json: cannot render nan/infinity"
      else Buffer.add_string b (float_repr f)
  | Str s -> escape_into b s
  | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char b ',';
          to_buffer b item)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape_into b k;
          Buffer.add_char b ':';
          to_buffer b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  to_buffer b v;
  Buffer.contents b

(* ---------- Strict parser ---------- *)

exception Fail of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents b
      else if c = '\\' then begin
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail "bad \\u escape"
            in
            pos := !pos + 4;
            (* Encode the code point as UTF-8 (surrogates kept raw). *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char b (Char.chr (0xc0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xe0 lor (code lsr 12)));
              Buffer.add_char b
                (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
            end
        | _ -> fail "bad escape");
        loop ()
      end
      else if Char.code c < 0x20 then fail "control character in string"
      else begin
        Buffer.add_char b c;
        loop ()
      end
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while
        !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false
      do
        advance ()
      done;
      if !pos = d0 then fail "expected digit"
    in
    (* Integer part: no leading zeros. *)
    (match peek () with
    | Some '0' -> advance ()
    | Some ('1' .. '9') -> digits ()
    | _ -> fail "expected digit");
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with
        | Some ('+' | '-') -> advance ()
        | _ -> ());
        digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing content";
    v
  with
  | v -> Ok v
  | exception Fail msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Str x, Str y -> String.equal x y
  | List x, List y -> List.length x = List.length y && List.for_all2 equal x y
  | Obj x, Obj y ->
      List.length x = List.length y
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2)
           x y
  | _ -> false
