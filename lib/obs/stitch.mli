(** Cross-fabric span stitching.

    Each shard traces into its own {!Tracer} (hosts into their
    stack's, the switch/uplink/control plane into the master's);
    frames carry a {!Context} so every plane tags its spans with the
    same trace id. [assemble] joins them after the run: for each
    completed RPC on the root plane it collects every closed stage
    span with that trace id across all planes, orders them by time,
    and checks the chain tiles the root exactly — the rack-scale
    generalization of E14's single-host stage-sum invariant.

    The root plane's cursor skips over the interval a host serves
    ({!Tracer.skip_to}); the host's own chain must fill that gap
    precisely or [contiguous] is false. *)

type stage = { plane : string;  (** Label of the tracer that emitted it. *)
               span : Span.t }

type t = {
  trace : int64;
  root : Span.t;  (** The origin plane's root: end-to-end latency. *)
  stages : stage list;  (** All planes' stages in time order. *)
  contiguous : bool;
      (** Stages tile [root.start .. root.end] with no gap/overlap. *)
  stage_sum : int;  (** Sum of stage durations. *)
}

val assemble : root:Tracer.t -> parts:(string * Tracer.t) list -> t list
(** One entry per completed RPC on the root plane, sorted by trace id.
    [parts] are the other planes as [(label, tracer)]; the root
    plane's own stages join with label [""]. A trace re-begun on the
    root plane (retransmit) keeps only its most recent root. *)

val exact : t -> bool
(** [contiguous] and the stage durations sum exactly to the root span
    duration (= observed end-to-end latency). *)
