type counter = { cname : string; mutable cv : int }
type gauge = { gname : string; mutable gv : int }

type metric =
  | Counter of counter
  | Gauge of gauge
  | Derived of (unit -> int)
  | Hist of Sim.Histogram.t

type t = { tbl : (string, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 32 }

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Derived _ -> "derived gauge"
  | Hist _ -> "histogram"

let register t name make match_existing =
  match Hashtbl.find_opt t.tbl name with
  | None ->
      let m = make () in
      Hashtbl.add t.tbl name m;
      m
  | Some m ->
      if not (match_existing m) then
        invalid_arg
          (Printf.sprintf "Metrics: %S already registered as a %s" name
             (kind_name m));
      m

let counter t name =
  match
    register t name
      (fun () -> Counter { cname = name; cv = 0 })
      (function Counter _ -> true | _ -> false)
  with
  | Counter c -> c
  | _ -> assert false

let gauge t name =
  match
    register t name
      (fun () -> Gauge { gname = name; gv = 0 })
      (function Gauge _ -> true | _ -> false)
  with
  | Gauge g -> g
  | _ -> assert false

let derive t name fn =
  ignore
    (register t name
       (fun () -> Derived fn)
       (function Derived _ -> true | _ -> false))

let histogram t name =
  match
    register t name
      (fun () -> Hist (Sim.Histogram.create ()))
      (function Hist _ -> true | _ -> false)
  with
  | Hist h -> h
  | _ -> assert false

let incr c = c.cv <- c.cv + 1
let add c n = c.cv <- c.cv + n
let value c = c.cv
let set g v = g.gv <- v
let gauge_value g = g.gv

let counter_value t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Counter c) -> c.cv
  | Some _ | None -> 0

let scalar = function
  | Counter c -> Some c.cv
  | Gauge g -> Some g.gv
  | Derived fn -> Some (fn ())
  | Hist _ -> None

let collect ?(keep_zero = false) t keep =
  Hashtbl.fold
    (fun name m acc ->
      if not (keep m) then acc
      else
        match scalar m with
        | Some v when v <> 0 || keep_zero -> (name, v) :: acc
        | Some _ | None -> acc)
    t.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let to_list ?keep_zero t = collect ?keep_zero t (fun _ -> true)

let counters_list ?keep_zero t =
  collect ?keep_zero t (function Counter _ -> true | _ -> false)

(* Deterministic aggregation: fold [src] into [dst] in sorted-name
   order, so merging per-shard registries in a fixed shard order
   yields one rack-wide snapshot that is a pure function of the
   simulation. Derived gauges are sampled at merge time and land as
   plain gauges — a merged snapshot has no live callbacks into the
   source's state. *)
let merge_into ~src ~dst =
  Hashtbl.fold (fun name m acc -> (name, m) :: acc) src.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (name, m) ->
         match m with
         | Counter c -> add (counter dst name) c.cv
         | Gauge g ->
             let d = gauge dst name in
             d.gv <- d.gv + g.gv
         | Derived fn ->
             let d = gauge dst name in
             d.gv <- d.gv + fn ()
         | Hist h ->
             Sim.Histogram.merge_into ~src:h ~dst:(histogram dst name))

let to_json t =
  let fields =
    Hashtbl.fold (fun name m acc -> (name, m) :: acc) t.tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (name, m) ->
           let v =
             match m with
             | Counter c -> Json.Int c.cv
             | Gauge g -> Json.Int g.gv
             | Derived fn -> Json.Int (fn ())
             | Hist h ->
                 let count = Sim.Histogram.count h in
                 let q p =
                   if count = 0 then 0 else Sim.Histogram.quantile h p
                 in
                 Json.Obj
                   [
                     ("count", Json.Int count);
                     ("mean", Json.Float (Sim.Histogram.mean h));
                     ("p50", Json.Int (q 0.5));
                     ("p90", Json.Int (q 0.9));
                     ("p99", Json.Int (q 0.99));
                     ( "max",
                       Json.Int
                         (if count = 0 then 0 else Sim.Histogram.max_value h)
                     );
                   ]
           in
           (name, v))
  in
  Json.Obj fields

let pp ppf t =
  List.iter
    (fun (name, v) -> Format.fprintf ppf "@\n  %s: %d" name v)
    (to_list ~keep_zero:true t)
