(* The cross-fabric trace context: the 16 bytes a frame carries so a
   span opened on one shard can be stitched under a root opened on
   another. Encoded big-endian through Net.Buf, the same writer the
   wire header uses, so the layout is fixed and diffable. *)

type t = { trace : int64; parent : int; origin : int }

let size = 16

let to_bytes c =
  if c.parent < 0 || c.parent > 0xffff_ffff then
    invalid_arg "Context.to_bytes: parent out of u32 range";
  if c.origin < 0 || c.origin > 0xffff_ffff then
    invalid_arg "Context.to_bytes: origin out of u32 range";
  let w = Net.Buf.writer size in
  Net.Buf.write_u64 w c.trace;
  Net.Buf.write_u32 w c.parent;
  Net.Buf.write_u32 w c.origin;
  Net.Buf.filled w

let of_bytes b =
  if Bytes.length b <> size then None
  else
    let r = Net.Buf.reader b in
    let trace = Net.Buf.read_u64 r in
    let parent = Net.Buf.read_u32 r in
    let origin = Net.Buf.read_u32 r in
    Some { trace; parent; origin }

let pp ppf c =
  Format.fprintf ppf "trace=%Ld parent=%d origin=%d" c.trace c.parent c.origin
