(** Pcap capture of simulated wire traffic.

    Frames crossing the simulated wire are serialized with
    {!Net.Frame.encode} and written in classic libpcap format with
    nanosecond timestamps (magic [0xa1b23c4d], LinkType Ethernet), so
    a simulation run can be opened in Wireshark/tcpdump. The
    {!records} reader walks a capture back into per-frame slices that
    re-parse through {!Net.Frame.parse_slice} — the roundtrip the test
    suite checks. *)

type t

val create : ?snaplen:int -> unit -> t
(** An empty capture; [snaplen] (default 65535) truncates stored
    frame bytes, as in real captures. *)

val add_frame : t -> time:Sim.Units.time -> Net.Frame.t -> unit
(** Append one frame stamped at the given simulated time. *)

val count : t -> int

val to_bytes : t -> bytes
(** Global header followed by the records, append order preserved. *)

val write_file : t -> file:string -> unit

val records : bytes -> ((Sim.Units.time * Net.Slice.t) list, string) result
(** Parse a capture produced by {!to_bytes}: each record as its
    timestamp and a zero-copy window of its frame bytes. Rejects
    unknown magics and truncated records. *)
