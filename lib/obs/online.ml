(* Constant-memory streaming moments (Welford's algorithm). The chaos
   soak records millions of latencies; keeping them would defeat the
   constant-memory contract, so this carries exactly five words of
   state per stream and combines pairwise (Chan et al.) so per-shard
   streams can be merged deterministically after a run. *)

type t = {
  mutable count : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min_v : int;
  mutable max_v : int;
}

let create () =
  { count = 0; mean = 0.; m2 = 0.; min_v = max_int; max_v = min_int }

let record t x =
  t.count <- t.count + 1;
  let xf = float_of_int x in
  let d = xf -. t.mean in
  t.mean <- t.mean +. (d /. float_of_int t.count);
  t.m2 <- t.m2 +. (d *. (xf -. t.mean));
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x

let count t = t.count
let mean t = if t.count = 0 then 0. else t.mean

let variance t =
  if t.count < 2 then 0. else t.m2 /. float_of_int (t.count - 1)

let stddev t = sqrt (variance t)

let min_value t =
  if t.count = 0 then invalid_arg "Online.min_value: empty stream";
  t.min_v

let max_value t =
  if t.count = 0 then invalid_arg "Online.max_value: empty stream";
  t.max_v

let merge_into ~src ~dst =
  if src.count > 0 then begin
    if dst.count = 0 then begin
      dst.count <- src.count;
      dst.mean <- src.mean;
      dst.m2 <- src.m2;
      dst.min_v <- src.min_v;
      dst.max_v <- src.max_v
    end
    else begin
      let n1 = float_of_int dst.count and n2 = float_of_int src.count in
      let n = n1 +. n2 in
      let d = src.mean -. dst.mean in
      dst.m2 <- dst.m2 +. src.m2 +. (d *. d *. n1 *. n2 /. n);
      dst.mean <- dst.mean +. (d *. n2 /. n);
      dst.count <- dst.count + src.count;
      if src.min_v < dst.min_v then dst.min_v <- src.min_v;
      if src.max_v > dst.max_v then dst.max_v <- src.max_v
    end
  end

let clear t =
  t.count <- 0;
  t.mean <- 0.;
  t.m2 <- 0.;
  t.min_v <- max_int;
  t.max_v <- min_int

let pp_summary ppf t =
  if t.count = 0 then Format.fprintf ppf "n=0"
  else
    Format.fprintf ppf "n=%d mean=%.1f sd=%.1f min=%d max=%d" t.count
      (mean t) (stddev t) t.min_v t.max_v
