(** A minimal JSON document model with a strict parser.

    The observability exporters (Chrome trace events, metrics
    snapshots) emit through this module so their output is valid JSON
    by construction, and the CI determinism gate can re-read exported
    files with {!parse} — which accepts exactly RFC 8259 documents and
    nothing else (no trailing garbage, no NaN, no unquoted keys). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
(** Compact (single-line) rendering. Floats are printed with enough
    digits to round-trip; [Int] prints without a decimal point. *)

val to_string : t -> string

val parse : string -> (t, string) result
(** Strict whole-document parse: leading/trailing whitespace is
    allowed, anything else after the document is an error. Numbers
    without [.], [e] or [E] parse as [Int]; others as [Float]. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] for other constructors. *)

val equal : t -> t -> bool
(** Structural equality ([Obj] fields compared in order). *)
