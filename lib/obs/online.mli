(** Constant-memory streaming statistics (Welford).

    Five words of state per stream — count, running mean, running
    second moment, min, max — updated in O(1) per sample, so an
    hours-long soak over millions of samples observes latency without
    growing. Pairs with {!Sim.Histogram} (constant-memory quantiles);
    this module is the cheaper exact-moments half.

    Merging ({!merge_into}) uses the pairwise-combination update, so
    per-shard streams merged in a fixed order produce the same result
    every run. *)

type t

val create : unit -> t
val record : t -> int -> unit

val count : t -> int
val mean : t -> float

val variance : t -> float
(** Unbiased sample variance; [0.] below two samples. *)

val stddev : t -> float

val min_value : t -> int
(** @raise Invalid_argument on an empty stream. *)

val max_value : t -> int
(** @raise Invalid_argument on an empty stream. *)

val merge_into : src:t -> dst:t -> unit
(** Fold [src]'s stream into [dst] as if its samples had been recorded
    there ([src] is left untouched). *)

val clear : t -> unit

val pp_summary : Format.formatter -> t -> unit
(** One line: count, mean, stddev, min, max. *)
