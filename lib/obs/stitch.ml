(* Cross-tracer causal assembly: one tracer per shard (host planes,
   the switch/uplink plane), one trace id per RPC, and a pure
   function of the collected spans that rebuilds each RPC's global
   stage chain. No tracer state ever crosses a shard boundary during
   the run — stitching is entirely post-hoc, so it composes with the
   PDES determinism contract for free. *)

type stage = { plane : string; span : Span.t }

type t = {
  trace : int64;
  root : Span.t;
  stages : stage list;
  contiguous : bool;
  stage_sum : int;
}

let duration (s : Span.t) = s.Span.end_time - s.Span.start_time

let contiguous_chain (root : Span.t) stages =
  match stages with
  | [] -> false
  | first :: _ ->
      let rec walk at = function
        | [] -> at = root.Span.end_time
        | st :: rest ->
            st.span.Span.start_time = at && walk st.span.Span.end_time rest
      in
      first.span.Span.start_time = root.Span.start_time
      && walk root.Span.start_time stages

let assemble ~root:root_tracer ~parts =
  (* The root plane owns the causal roots: one closed parentless span
     per completed RPC (a re-begun trace keeps only its last root,
     matching Tracer.stages_of). Host-side roots live in [parts] and
     are views of the same interval their children tile — only their
     children join the chain. *)
  let roots = Hashtbl.create 256 in
  List.iter
    (fun (s : Span.t) -> Hashtbl.replace roots s.Span.trace_id s)
    (Tracer.roots root_tracer);
  let stages_of_trace : (int64, stage list) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (plane, tracer) ->
      List.iter
        (fun (s : Span.t) ->
          if
            s.Span.kind = Span.Interval
            && s.Span.parent <> Span.no_parent
            && Span.is_closed s
            && Hashtbl.mem roots s.Span.trace_id
          then
            Hashtbl.replace stages_of_trace s.Span.trace_id
              ({ plane; span = s }
              :: (try Hashtbl.find stages_of_trace s.Span.trace_id
                  with Not_found -> [])))
        (Tracer.spans tracer))
    (("", root_tracer) :: parts);
  let traces =
    List.sort Int64.compare
      (Hashtbl.fold (fun trace _ acc -> trace :: acc) roots [])
  in
  List.map
    (fun trace ->
      let root = Hashtbl.find roots trace in
      let stages =
        (* Emission order within a plane and plane list order are both
           deterministic, so the stable sort's tie-break is too. *)
        List.stable_sort
          (fun a b ->
            let c =
              Int.compare a.span.Span.start_time b.span.Span.start_time
            in
            if c <> 0 then c
            else Int.compare a.span.Span.end_time b.span.Span.end_time)
          (List.rev
             (try Hashtbl.find stages_of_trace trace with Not_found -> []))
      in
      let stage_sum =
        List.fold_left (fun acc st -> acc + duration st.span) 0 stages
      in
      { trace; root; stages; contiguous = contiguous_chain root stages;
        stage_sum })
    traces

let exact t = t.contiguous && t.stage_sum = duration t.root
