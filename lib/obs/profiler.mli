(** The per-shard PDES profiler.

    Record, per shard of a {!Sim.Shard_engine} run: how many
    conservative windows it executed, how many were idle (zero events
    — pure barrier wait), the events-per-window and outbox-depth
    distributions, and the lookahead-window utilization. All counters
    are deterministic functions of the simulation (sim-time only, as
    E16 established for wall-clock), so {!report_lines} is
    byte-identical across [LAUBERHORN_SHARDS=1..N].

    Zero-cost when not installed: the engine's hook slot defaults to
    [None] (one load-and-branch per shard-window). Install only from a
    config-gated/armed path — simlint flags unconditional hook
    installation inside [lib/]. *)

type t

val create : shards:int -> t
(** @raise Invalid_argument on a non-positive shard count. *)

val probe : t -> Sim.Shard_engine.probe
(** The raw hook (exposed for tests). *)

val install : t -> Sim.Shard_engine.t -> unit
(** [Sim.Shard_engine.set_profiler] with {!probe}.
    @raise Invalid_argument on a shard-count mismatch. *)

val shards : t -> int

val utilization_pct : t -> int -> int
(** Percent of the shard's windows with at least one event; the
    complement is its barrier-wait occupancy. *)

val report_lines : t -> string list
(** One deterministic line per shard, in shard order: window/idle
    counts, utilization, events-per-window and outbox-depth summary
    quantiles. *)

val merge_into_metrics : t -> Metrics.t -> unit
(** Aggregate into a registry in fixed (shard, name) order: scalar
    counters ([shardNN_windows], [shardNN_idle_windows], ...) and
    histograms ([shardNN_events_per_window], [shardNN_outbox_depth])
    merged via {!Sim.Histogram.merge_into}. *)
