type t = {
  engine : Sim.Engine.t;
  pipeline_delay : Sim.Units.duration;
  sink : Net.Frame.t -> unit;
  mutable frames : int;
  mutable bytes : int;
  mutable errors : int;
}

let create engine ?(pipeline_delay = 300) ~sink () =
  if pipeline_delay < 0 then invalid_arg "Mac.create: negative delay";
  { engine; pipeline_delay; sink; frames = 0; bytes = 0; errors = 0 }

let rx t frame =
  t.frames <- t.frames + 1;
  t.bytes <- t.bytes + Net.Frame.wire_size frame;
  ignore
    (Sim.Engine.schedule_after t.engine ~after:t.pipeline_delay (fun () ->
         t.sink frame))

(* Byte-level ingress: validate in place over the caller's buffer —
   headers and checksums are checked without copying, and malformed
   frames are dropped here (the FCS/parse stage of a real MAC) without
   ever materialising a frame. *)
let rx_slice t slice =
  match Net.Frame.parse_slice slice with
  | Error _ -> t.errors <- t.errors + 1
  | Ok v -> rx t (Net.Frame.of_view v)

let frames t = t.frames
let bytes t = t.bytes
let rx_errors t = t.errors
