(** Application-defined receive-side steering programs.

    The paper's NIC does fixed RPC dispatch; this module makes the
    dispatch policy application business (arXiv:2312.04857): a
    restricted, statically verifiable decision DSL over header and
    payload-prefix fields.  A program is a set of guarded rules plus an
    optional default.  The {e declarative} semantics is match-all: a
    packet is dispatched to the target of the unique rule whose guard
    it satisfies, or to the default if no guard matches.  Programs
    where a packet could match two rules (double dispatch) or none and
    no default (loss) are {e rejected statically} by {!Steer_verify} —
    only verified programs can be installed on a NIC, so the compiled
    first-match evaluator and this declarative semantics provably
    coincide.

    Supported policies: key-hash affinity for caches ({!key_affinity}),
    size-based fast/slow split ({!size_split}), priority lanes for
    latency-critical ports ({!priority_lanes}), and fallback-to-RSS
    ({!rss_all}). *)

(** Header or payload-prefix field a guard may test.  [Payload i] reads
    UDP payload byte [i] (0 if the payload is shorter — total, but the
    verifier additionally requires [i] to be inside the declared
    guaranteed-parseable prefix). *)
type field =
  | Src_ip
  | Dst_ip
  | Src_port
  | Dst_port
  | Length  (** UDP payload length in bytes. *)
  | Payload of int

type atom = { field : field; lo : int; hi : int }
(** Inclusive interval constraint [lo <= field <= hi]. *)

type guard = atom list
(** Conjunction of atoms; [[]] matches every packet. *)

(** Dispatch target of a rule. *)
type target =
  | Queue of int  (** A fixed RX queue. *)
  | Worker of int
      (** A pinned worker id, resolved through the scheduler mirror;
          requires the program to declare [on_dead]. *)
  | Hash_lane of { key : field list; lanes : int; base : int }
      (** [base + Rss.hash (gathered key bytes) mod lanes]: key-hash
          affinity over a contiguous lane window. *)
  | Rss  (** Fall back to the NIC's RSS indirection table. *)

type rule = { guard : guard; target : target }

type t = {
  name : string;
  rules : rule list;
  default : target option;  (** Target when no rule matches. *)
  on_dead : target option;
      (** Fallback used when a [Worker] target is dead (required by
          the verifier for any program containing [Worker]). *)
}

val field_domain : field -> int * int
(** Inclusive value domain of a field. *)

val key_width : field list -> int
(** Bytes a [Hash_lane] key gathers (4 per address, 2 per port/length,
    1 per payload byte). *)

val pp_field : Format.formatter -> field -> unit
val pp_target : Format.formatter -> target -> unit

(** {2 Evaluation} *)

val field_value : Net.Frame.t -> field -> int

val matches : Net.Frame.t -> guard -> bool

val eval :
  rss:(Net.Frame.t -> int) ->
  ?alive:(int -> bool) ->
  ?worker_lane:(int -> int) ->
  t ->
  Net.Frame.t ->
  int
(** Reference (naive, declarative) interpreter: scans {e all} rules,
    asserting the verified exactly-one-match property.
    @raise Failure on double match or fallthrough without default —
    impossible for verified programs; kept as a live oracle for the
    QCheck equivalence suite.  [alive] defaults to [fun _ -> true];
    [worker_lane] maps a worker id to its lane (default: identity). *)

val compile :
  rss:(Net.Frame.t -> int) ->
  ?alive:(int -> bool) ->
  ?worker_lane:(int -> int) ->
  t ->
  Net.Frame.t ->
  int
(** First-match evaluator used on the NIC hot path.  Equivalent to
    {!eval} on verified programs (QCheck-tested). *)

(** {2 Shipped programs} *)

val rss_all : t
(** Everything through the RSS indirection table — the identity
    steering program. *)

val key_affinity : ?name:string -> key_off:int -> key_len:int -> lanes:int -> unit -> t
(** Key-hash affinity: hash [key_len] payload bytes at [key_off] with
    {!Rss.hash} into [lanes] lanes, so all requests for one key share a
    lane (cache locality). *)

val size_split : ?fast_cutoff:int -> fast_lanes:int -> slow_queue:int -> unit -> t
(** Payloads up to [fast_cutoff] bytes (default 128) hash across the
    [fast_lanes] fast lanes; bigger requests go to [slow_queue]. *)

val priority_lanes : port:int -> queue:int -> t
(** Datagrams for the latency-critical [port] get a dedicated lane;
    everything else falls back to RSS. *)

val builtins : t list
(** All shipped programs, as verified by [bin/steer_verify] at build
    time. *)
