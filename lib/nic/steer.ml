type field = Src_ip | Dst_ip | Src_port | Dst_port | Length | Payload of int

type atom = { field : field; lo : int; hi : int }
type guard = atom list

type target =
  | Queue of int
  | Worker of int
  | Hash_lane of { key : field list; lanes : int; base : int }
  | Rss

type rule = { guard : guard; target : target }

type t = {
  name : string;
  rules : rule list;
  default : target option;
  on_dead : target option;
}

let field_domain = function
  | Src_ip | Dst_ip -> (0, 0xffff_ffff)
  | Src_port | Dst_port | Length -> (0, 0xffff)
  | Payload _ -> (0, 0xff)

let pp_field fmt = function
  | Src_ip -> Format.pp_print_string fmt "src_ip"
  | Dst_ip -> Format.pp_print_string fmt "dst_ip"
  | Src_port -> Format.pp_print_string fmt "src_port"
  | Dst_port -> Format.pp_print_string fmt "dst_port"
  | Length -> Format.pp_print_string fmt "length"
  | Payload i -> Format.fprintf fmt "payload[%d]" i

let pp_target fmt = function
  | Queue q -> Format.fprintf fmt "queue %d" q
  | Worker w -> Format.fprintf fmt "worker %d" w
  | Hash_lane { key; lanes; base } ->
      Format.fprintf fmt "hash(%a) into %d lane(s) at %d"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
           pp_field)
        key lanes base
  | Rss -> Format.pp_print_string fmt "rss"

(* Field width in bytes when gathered into a hash key. *)
let field_width = function
  | Src_ip | Dst_ip -> 4
  | Src_port | Dst_port | Length -> 2
  | Payload _ -> 1

let field_value (f : Net.Frame.t) = function
  | Src_ip -> Net.Ip_addr.to_int f.Net.Frame.ip.Net.Ipv4.src
  | Dst_ip -> Net.Ip_addr.to_int f.Net.Frame.ip.Net.Ipv4.dst
  | Src_port -> f.Net.Frame.udp.Net.Udp.src_port
  | Dst_port -> f.Net.Frame.udp.Net.Udp.dst_port
  | Length -> Bytes.length f.Net.Frame.payload
  | Payload i ->
      let p = f.Net.Frame.payload in
      if i >= 0 && i < Bytes.length p then Char.code (Bytes.get p i) else 0

let matches frame guard =
  List.for_all
    (fun { field; lo; hi } ->
      let v = field_value frame field in
      lo <= v && v <= hi)
    guard

(* Gather the key fields of a Hash_lane into [scratch] (big-endian per
   field, fields in declaration order) and return the byte count. *)
let gather_key frame key scratch =
  let off = ref 0 in
  List.iter
    (fun field ->
      let v = field_value frame field in
      let w = field_width field in
      for i = 0 to w - 1 do
        Bytes.set scratch (!off + i)
          (Char.chr ((v lsr (8 * (w - 1 - i))) land 0xff))
      done;
      off := !off + w)
    key;
  !off

let key_width key = List.fold_left (fun a f -> a + field_width f) 0 key

let rec resolve ~rss ~alive ~worker_lane ~on_dead ~scratch frame = function
  | Queue q -> q
  | Rss -> rss frame
  | Hash_lane { key; lanes; base } ->
      let n = gather_key frame key scratch in
      base + (Rss.hash (Bytes.sub scratch 0 n) mod lanes)
  | Worker w ->
      if alive w then worker_lane w
      else (
        match on_dead with
        | Some fb -> resolve ~rss ~alive ~worker_lane ~on_dead:None ~scratch frame fb
        | None ->
            (* Statically impossible: Steer_verify requires on_dead for
               any program containing Worker targets. *)
            failwith "Steer: dead worker target and no on_dead fallback")

let max_key_width t =
  let of_target = function Hash_lane { key; _ } -> key_width key | _ -> 0 in
  List.fold_left
    (fun acc r -> max acc (of_target r.target))
    (max
       (match t.default with Some tg -> of_target tg | None -> 0)
       (match t.on_dead with Some tg -> of_target tg | None -> 0))
    t.rules

let eval ~rss ?(alive = fun _ -> true) ?(worker_lane = fun w -> w) t frame =
  let scratch = Bytes.create (max 1 (max_key_width t)) in
  let matching = List.filter (fun r -> matches frame r.guard) t.rules in
  let target =
    match (matching, t.default) with
    | [ r ], _ -> r.target
    | [], Some d -> d
    | [], None ->
        failwith (Printf.sprintf "Steer.eval: %s: packet matched no rule" t.name)
    | _ :: _ :: _, _ ->
        failwith
          (Printf.sprintf "Steer.eval: %s: packet matched multiple rules" t.name)
  in
  resolve ~rss ~alive ~worker_lane ~on_dead:t.on_dead ~scratch frame target

let compile ~rss ?(alive = fun _ -> true) ?(worker_lane = fun w -> w) t =
  let scratch = Bytes.create (max 1 (max_key_width t)) in
  let rules = Array.of_list t.rules in
  fun frame ->
    let rec first i =
      if i >= Array.length rules then
        match t.default with
        | Some d -> d
        | None ->
            failwith
              (Printf.sprintf "Steer: %s: packet matched no rule" t.name)
      else if matches frame rules.(i).guard then rules.(i).target
      else first (i + 1)
    in
    resolve ~rss ~alive ~worker_lane ~on_dead:t.on_dead ~scratch frame (first 0)

(* --- shipped programs ------------------------------------------------ *)

let rss_all = { name = "rss_all"; rules = []; default = Some Rss; on_dead = None }

let key_affinity ?(name = "key_affinity") ~key_off ~key_len ~lanes () =
  {
    name;
    rules = [];
    default =
      Some
        (Hash_lane
           { key = List.init key_len (fun i -> Payload (key_off + i)); lanes; base = 0 });
    on_dead = None;
  }

let size_split ?(fast_cutoff = 128) ~fast_lanes ~slow_queue () =
  {
    name = "size_split";
    rules =
      [
        {
          guard = [ { field = Length; lo = 0; hi = fast_cutoff } ];
          target =
            Hash_lane
              { key = [ Src_ip; Src_port; Dst_port ]; lanes = fast_lanes; base = 0 };
        };
        {
          guard = [ { field = Length; lo = fast_cutoff + 1; hi = 0xffff } ];
          target = Queue slow_queue;
        };
      ];
    default = None;
    on_dead = None;
  }

let priority_lanes ~port ~queue =
  {
    name = "priority_lanes";
    rules = [ { guard = [ { field = Dst_port; lo = port; hi = port } ]; target = Queue queue } ];
    default = Some Rss;
    on_dead = None;
  }

let builtins =
  [
    rss_all;
    key_affinity ~key_off:20 ~key_len:4 ~lanes:4 ();
    size_split ~fast_lanes:3 ~slow_queue:3 ();
    priority_lanes ~port:7_000 ~queue:0;
  ]
