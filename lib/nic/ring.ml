(* Slots are stored unboxed: no ['a option] wrapper, so produce/consume
   allocate nothing beyond the caller-visible [Some] of [consume]. The
   backing array is created lazily at the first [produce] (using that
   first value as the filler); a consumed slot keeps its old value until
   the ring wraps, which retains at most [size] recent descriptors —
   bounded, and for pooled buffers the backing storage is owned by the
   pool anyway. *)
type 'a t = {
  mutable slots : 'a array;  (* [||] until first produce *)
  capacity : int;
  mask : int;
  mutable head : int;  (* next produce position *)
  mutable tail : int;  (* next consume position *)
  mutable drops : int;
  mutable produced : int;
  mutable consumed : int;
  mutable notify : (unit -> unit) option;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ~size =
  if not (is_power_of_two size) then
    invalid_arg "Ring.create: size must be a positive power of two";
  {
    slots = [||];
    capacity = size;
    mask = size - 1;
    head = 0;
    tail = 0;
    drops = 0;
    produced = 0;
    consumed = 0;
    notify = None;
  }

let size t = t.capacity
let occupancy t = t.head - t.tail
let is_empty t = t.head = t.tail
let is_full t = occupancy t = t.capacity

let produce t v =
  if is_full t then begin
    t.drops <- t.drops + 1;
    false
  end
  else begin
    if Array.length t.slots = 0 then t.slots <- Array.make t.capacity v;
    t.slots.(t.head land t.mask) <- v;
    t.head <- t.head + 1;
    t.produced <- t.produced + 1;
    (match t.notify with Some f -> f () | None -> ());
    true
  end

let consume t =
  if is_empty t then None
  else begin
    let v = t.slots.(t.tail land t.mask) in
    t.tail <- t.tail + 1;
    t.consumed <- t.consumed + 1;
    Some v
  end

let peek t = if is_empty t then None else Some t.slots.(t.tail land t.mask)
let drops t = t.drops
let produced t = t.produced
let consumed t = t.consumed
let on_produce t f = t.notify <- Some f
