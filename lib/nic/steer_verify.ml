type env = {
  queues : int;
  workers : int;
  payload_prefix : int;
  cost_budget : int;
}

let default_env = { queues = 4; workers = 4; payload_prefix = 32; cost_budget = 500 }

type verified = { prog : Steer.t; cost : int }

let program v = v.prog
let cost v = v.cost

(* ------------------------------------------------------------------ *)
(* Boxes: a guard is a conjunction of per-field intervals.  All the
   abstract interpretation below works on (field, lo, hi) lists with at
   most one entry per field, intervals clipped to the field domain. *)

let field_equal a b =
  match (a, b) with
  | Steer.Src_ip, Steer.Src_ip
  | Dst_ip, Dst_ip
  | Src_port, Src_port
  | Dst_port, Dst_port
  | Length, Length ->
      true
  | Payload i, Payload j -> i = j
  | _ -> false

(* Intersect the atoms of a guard into a box.  [None] = the guard is
   unsatisfiable (empty intersection on some field). *)
let guard_box (g : Steer.guard) =
  let rec add box (a : Steer.atom) =
    match box with
    | [] -> Some [ (a.field, a.lo, a.hi) ]
    | (f, lo, hi) :: rest when field_equal f a.field ->
        let lo' = max lo a.lo and hi' = min hi a.hi in
        if lo' > hi' then None
        else Some ((f, lo', hi') :: rest)
    | e :: rest -> Option.map (fun b -> e :: b) (add rest a)
  in
  List.fold_left
    (fun acc a -> match acc with None -> None | Some b -> add b a)
    (Some []) g

let box_interval box field =
  match List.find_opt (fun (f, _, _) -> field_equal f field) box with
  | Some (_, lo, hi) -> (lo, hi)
  | None -> Steer.field_domain field

let fields_of_boxes boxes =
  List.fold_left
    (fun acc box ->
      List.fold_left
        (fun acc (f, _, _) ->
          if List.exists (fun g -> field_equal f g) acc then acc else f :: acc)
        acc box)
    [] boxes
  |> List.rev

let pp_witness fmt assignment =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
    (fun fmt (f, v) -> Format.fprintf fmt "%a=%d" Steer.pp_field f v)
    fmt assignment

(* Pairwise disjointness: two boxes overlap iff the per-field interval
   intersection is non-empty on every field either mentions.  The
   witness packet takes the midpoint of each intersection. *)
let overlap_witness box_a box_b =
  let fields = fields_of_boxes [ box_a; box_b ] in
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | f :: rest ->
        let alo, ahi = box_interval box_a f and blo, bhi = box_interval box_b f in
        let lo = max alo blo and hi = min ahi bhi in
        if lo > hi then None else go ((f, lo + ((hi - lo) / 2)) :: acc) rest
  in
  go [] fields

(* Coverage: recursively split the constrained field space along rule
   boundaries until every cell is covered by some rule (its box
   contains the whole cell) or a hole is found. *)
type cover = Covered | Hole of (Steer.field * int) list

let box_covers space box =
  List.for_all
    (fun (f, slo, shi) ->
      let lo, hi = box_interval box f in
      lo <= slo && shi <= hi)
    space

let box_intersects space box =
  List.for_all
    (fun (f, slo, shi) ->
      let lo, hi = box_interval box f in
      max lo slo <= min hi shi)
    space

let rec cover space boxes =
  if List.exists (fun b -> box_covers space b) boxes then Covered
  else
    let intersecting = List.filter (fun b -> box_intersects space b) boxes in
    match intersecting with
    | [] -> Hole (List.map (fun (f, lo, _) -> (f, lo)) space)
    | _ ->
        (* Some rule intersects but none covers: find the first field
           where an intersecting rule's interval cuts the space
           properly, split there, recurse on each piece. *)
        let cut =
          List.find_map
            (fun box ->
              List.find_map
                (fun (f, slo, shi) ->
                  let lo, hi = box_interval box f in
                  if lo > slo && lo <= shi then Some (f, lo - 1)
                  else if hi >= slo && hi < shi then Some (f, hi)
                  else None)
                space)
            intersecting
        in
        (match cut with
        | None ->
            (* Every intersecting box spans every space interval it
               shares — impossible unless it covers, kept as a hole for
               soundness. *)
            Hole (List.map (fun (f, lo, _) -> (f, lo)) space)
        | Some (cf, at) ->
            (* Rebuild the two sub-spaces sharing all other fields. *)
            let lowers =
              List.map
                (fun ((f, slo, _shi) as e) ->
                  if field_equal f cf then (f, slo, at) else e)
                space
            and uppers =
              List.map
                (fun ((f, _slo, shi) as e) ->
                  if field_equal f cf then (f, at + 1, shi) else e)
                space
            in
            (match cover lowers boxes with
            | Covered -> cover uppers boxes
            | hole -> hole))

(* ------------------------------------------------------------------ *)
(* Static cost model (ns). *)

let field_read_cost = function Steer.Payload _ -> 4 | _ -> 2
let atom_cost (a : Steer.atom) = field_read_cost a.field + 1

let guard_cost (g : Steer.guard) =
  List.fold_left (fun acc a -> acc + atom_cost a) 0 g

let rec target_cost ~on_dead = function
  | Steer.Queue _ -> 1
  | Steer.Rss -> 30
  | Steer.Hash_lane { key; _ } ->
      List.fold_left (fun acc f -> acc + field_read_cost f) 0 key
      + 15
      + (6 * Steer.key_width key)
      + 2
  | Steer.Worker _ ->
      (* Mirror liveness lookup, plus the fallback in the worst case. *)
      10
      + (match on_dead with
        | Some fb -> target_cost ~on_dead:None fb
        | None -> 0)

let static_cost (t : Steer.t) =
  let targets =
    List.map (fun (r : Steer.rule) -> r.target) t.rules
    @ (match t.default with Some d -> [ d ] | None -> [])
  in
  let worst =
    List.fold_left
      (fun acc tg -> max acc (target_cost ~on_dead:t.on_dead tg))
      0 targets
  in
  List.fold_left (fun acc (r : Steer.rule) -> acc + guard_cost r.guard) 0 t.rules
  + worst

(* ------------------------------------------------------------------ *)

let verify ~env (t : Steer.t) =
  let diags = ref [] in
  let reject fmt =
    Format.kasprintf (fun s -> diags := (t.name ^ ": " ^ s) :: !diags) fmt
  in
  (* -- well-formedness and determinism: payload-prefix confinement -- *)
  let check_field where = function
    | Steer.Payload i when i < 0 || i >= env.payload_prefix ->
        reject
          "%s reads payload[%d], outside the guaranteed-parseable %d-byte \
           prefix (deterministic steering may only read header fields and \
           the declared prefix)"
          where i env.payload_prefix
    | _ -> ()
  in
  List.iteri
    (fun i (r : Steer.rule) ->
      List.iter
        (fun (a : Steer.atom) ->
          let dlo, dhi = Steer.field_domain a.field in
          if a.lo > a.hi then
            reject "rule %d: empty interval [%d,%d] on %a (never matches)" i
              a.lo a.hi Steer.pp_field a.field
          else if a.lo < dlo || a.hi > dhi then
            reject "rule %d: interval [%d,%d] exceeds the domain [%d,%d] of %a"
              i a.lo a.hi dlo dhi Steer.pp_field a.field;
          check_field (Printf.sprintf "rule %d guard" i) a.field)
        r.guard)
    t.rules;
  (* -- target validity ---------------------------------------------- *)
  let check_target where = function
    | Steer.Queue q ->
        if q < 0 || q >= env.queues then
          reject "%s: queue %d out of range [0,%d)" where q env.queues
    | Steer.Rss -> ()
    | Steer.Worker w ->
        if w < 0 || w >= env.workers then
          reject "%s: worker %d out of range [0,%d)" where w env.workers
    | Steer.Hash_lane { key; lanes; base } ->
        if lanes <= 0 then reject "%s: hash target needs lanes > 0" where;
        if base < 0 || base + lanes > env.queues then
          reject "%s: lane window [%d,%d) outside the queue range [0,%d)" where
            base (base + lanes) env.queues;
        (match key with
        | [] -> reject "%s: hash target with an empty key" where
        | _ -> ());
        List.iter (fun f -> check_field where f) key
  in
  List.iteri
    (fun i (r : Steer.rule) ->
      check_target (Printf.sprintf "rule %d" i) r.target)
    t.rules;
  (match t.default with Some d -> check_target "default" d | None -> ());
  (match t.on_dead with Some d -> check_target "on_dead fallback" d | None -> ());
  (* -- worker pinning composed with stale-mirror dispatch ----------- *)
  let is_worker = function Steer.Worker _ -> true | _ -> false in
  let pins_worker =
    List.exists (fun (r : Steer.rule) -> is_worker r.target) t.rules
    || (match t.default with Some d -> is_worker d | None -> false)
  in
  (match t.on_dead with
  | Some d when is_worker d ->
      reject "on_dead fallback must not itself pin a worker"
  | _ -> ());
  if pins_worker then begin
    let with_fallback =
      match t.on_dead with Some d -> not (is_worker d) | None -> false
    in
    match Protocheck.Steer_model.check ~with_fallback () with
    | Protocheck.State_space.Ok_verdict _ -> ()
    | Invariant_violation { message; trace; _ } ->
        reject
          "worker-pinned program is unsafe across scheduler-mirror updates: \
           %s@,counterexample (stale-mirror model):@,%a@,declare a non-worker \
           on_dead fallback"
          message Protocheck.Steer_model.pp_trace trace
    | Deadlock { trace; _ } ->
        reject
          "worker-pinned program deadlocks the dispatch model:@,%a@,declare \
           a non-worker on_dead fallback"
          Protocheck.Steer_model.pp_trace trace
    | State_limit _ ->
        reject "stale-mirror model exploration hit the state limit"
  end;
  (* -- totality: disjointness + coverage ---------------------------- *)
  let boxes =
    List.mapi
      (fun i (r : Steer.rule) ->
        match guard_box r.guard with
        | Some b -> (i, b)
        | None ->
            reject "rule %d: guard is unsatisfiable (dead rule)" i;
            (i, [ (Steer.Length, 1, 0) ] (* empty box: never overlaps *)))
      t.rules
  in
  let rec pairs = function
    | [] -> ()
    | (i, bi) :: rest ->
        List.iter
          (fun (j, bj) ->
            match overlap_witness bi bj with
            | Some w ->
                reject
                  "rules %d and %d overlap — double dispatch on the packet \
                   {%a}"
                  i j pp_witness w
            | None -> ())
          rest;
        pairs rest
  in
  pairs boxes;
  (match t.default with
  | Some _ -> () (* the default catches every fallthrough *)
  | None ->
      let live_boxes = List.map snd boxes in
      let fields = fields_of_boxes live_boxes in
      let space =
        List.map
          (fun f ->
            let lo, hi = Steer.field_domain f in
            (f, lo, hi))
          fields
      in
      (match fields with
      | [] -> (
          (* No constrained fields at all: total iff a match-all rule
             exists (overlaps were already reported above). *)
          match t.rules with
          | [] -> reject "no rules and no default: every packet is lost"
          | _ -> ())
      | _ -> (
          match cover space live_boxes with
          | Covered -> ()
          | Hole witness ->
              reject
                "no rule matches the packet {%a} and there is no default — \
                 packets there are lost"
                pp_witness witness)));
  (* -- bounded deterministic cost ----------------------------------- *)
  let cost = static_cost t in
  if cost > env.cost_budget then
    reject
      "static per-packet cost %d ns exceeds the budget %d ns — simplify \
       guards or shrink hash keys"
      cost env.cost_budget;
  match !diags with
  | [] -> Ok { prog = t; cost }
  | ds -> Error (List.rev ds)

let install ?metrics ?alive ?worker_lane ~nic v =
  let rss frame = Dma_nic.rss_queue nic frame in
  let f = Steer.compile ~rss ?alive ?worker_lane v.prog in
  let f =
    match metrics with
    | None -> f
    | Some m ->
        let nq = Dma_nic.nqueues nic in
        let total = Obs.Metrics.counter m "steer_decisions" in
        let lanes =
          Array.init nq (fun i ->
              Obs.Metrics.counter m (Printf.sprintf "steer_lane_%d" i))
        in
        fun frame ->
          let lane = f frame in
          Obs.Metrics.incr total;
          Obs.Metrics.incr lanes.(((lane mod nq) + nq) mod nq);
          lane
  in
  Dma_nic.set_steering ~cost:v.cost nic f
