(** Static verifier for {!Steer} programs.

    An abstract-interpretation pass over the program's guard space:
    every guard is a box (a per-field interval conjunction), and the
    verifier proves, for every well-typed program, without running a
    single packet:

    + {b Totality} — every packet matches exactly one target: pairwise
      box-disjointness (per-field interval intersection; a non-empty
      intersection on every shared field is an overlap, reported with a
      concrete witness packet) plus coverage (recursive splitting of
      the constrained field space along rule boundaries; an uncovered
      cell without a default is loss, reported with a witness packet).
    + {b Target validity} — queue ids in range, hash-lane windows
      inside the queue array, worker ids within the worker count; and,
      composing with the stale-mirror dispatch semantics
      ({!Protocheck.Steer_model}), any program pinning a [Worker] must
      declare a worker-free [on_dead] fallback — the model checker's
      counterexample trace for the fallback-free case is embedded in
      the diagnostic, so verified programs can never silently strand
      an RPC across [Sched_mirror] updates and worker death.
    + {b Bounded deterministic cost} — a per-packet cost bound computed
      statically from the guard atoms and the most expensive reachable
      target, checked against the environment budget and charged in
      simulation by {!install}.
    + {b Determinism} — programs can only read header/payload-prefix
      bytes ([Payload] indices must sit inside the declared
      guaranteed-parseable prefix) and hash with the pure {!Rss.hash};
      nothing the simlint determinism contract forbids (no clocks, no
      ambient randomness, no mutable state).

    Rejection is a build-time error: [bin/steer_verify] runs this pass
    over every shipped program under [dune build @check]. *)

type env = {
  queues : int;  (** RX queues on the target NIC. *)
  workers : int;  (** Worker ids the scheduler mirror can name. *)
  payload_prefix : int;
      (** Guaranteed-parseable payload prefix (bytes): the only payload
          window steering may read. *)
  cost_budget : int;  (** Per-packet steering budget (ns). *)
}

val default_env : env
(** 4 queues, 4 workers, 32-byte payload prefix, 500 ns budget —
    matches {!Dma_nic.default_config}. *)

type verified
(** A verification certificate: the only way to obtain one is
    {!verify}, and {!install} only accepts certified programs — the
    type system keeps unverified programs off the NIC. *)

val program : verified -> Steer.t
val cost : verified -> int
(** The statically computed worst-case per-packet cost (ns). *)

val verify : env:env -> Steer.t -> (verified, string list) result
(** All diagnostics, each actionable: the offending rule/target, and a
    witness packet for totality violations. *)

val static_cost : Steer.t -> int
(** The cost {!verify} would compute (exposed for reports/benches). *)

val install :
  ?metrics:Obs.Metrics.t ->
  ?alive:(int -> bool) ->
  ?worker_lane:(int -> int) ->
  nic:Dma_nic.t ->
  verified ->
  unit
(** Compile the certified program and install it on the NIC, charging
    its static cost per packet.  The [Rss] target resolves through the
    NIC's own indirection table ({!Dma_nic.rss_queue}).

    [metrics] registers per-lane steering counters
    ([steer_lane_<i>], one per NIC queue) and a [steer_decisions]
    total on the registry. *)
