type t = { key : string; queues : int; indirection : int array }

let default_key =
  "\x6d\x5a\x56\xda\x25\x5b\x0e\xc2\x41\x67\x25\x3d\x43\xa3\x8f\xb0\
   \xd0\xca\x2b\xcb\xae\x7b\x30\xb4\x77\xcb\x2d\xa3\x80\x30\xf2\x0c\
   \x6a\x42\xb7\x3b\xbe\xac\x01\xfa"

let create ?(key = default_key) ~queues () =
  if queues <= 0 then invalid_arg "Rss.create: queues <= 0";
  if String.length key < 40 then invalid_arg "Rss.create: key shorter than 40B";
  (* 128-entry indirection table, round-robin initialised (the common
     driver default). *)
  let indirection = Array.init 128 (fun i -> i mod queues) in
  { key; queues; indirection }

let key_window key ~bit =
  (* 32-bit window of the key starting at bit offset [bit]. *)
  let byte = bit / 8 and shift = bit mod 8 in
  let b i =
    if byte + i < String.length key then Char.code key.[byte + i] else 0
  in
  let forty =
    Int64.logor
      (Int64.shift_left (Int64.of_int (b 0)) 32)
      (Int64.of_int ((b 1 lsl 24) lor (b 2 lsl 16) lor (b 3 lsl 8) lor b 4))
  in
  Int64.to_int (Int64.logand (Int64.shift_right_logical forty (8 - shift))
                  0xffff_ffffL)

let toeplitz_hash ~key data =
  let acc = ref 0 in
  for i = 0 to Bytes.length data - 1 do
    let byte = Char.code (Bytes.get data i) in
    for bit = 0 to 7 do
      if byte land (0x80 lsr bit) <> 0 then
        acc := !acc lxor key_window key ~bit:((i * 8) + bit)
    done
  done;
  !acc land 0xffff_ffff

let hash data = toeplitz_hash ~key:default_key data

let hash_flow t ~src_ip ~dst_ip ~src_port ~dst_port =
  let w = Net.Buf.writer 12 in
  Net.Ip_addr.write w src_ip;
  Net.Ip_addr.write w dst_ip;
  Net.Buf.write_u16 w src_port;
  Net.Buf.write_u16 w dst_port;
  toeplitz_hash ~key:t.key (Net.Buf.contents w)

let queue_for t ~src_ip ~dst_ip ~src_port ~dst_port =
  let h = hash_flow t ~src_ip ~dst_ip ~src_port ~dst_port in
  t.indirection.(h land (Array.length t.indirection - 1))

let queue_of_frame t (f : Net.Frame.t) =
  queue_for t ~src_ip:f.Net.Frame.ip.Net.Ipv4.src
    ~dst_ip:f.Net.Frame.ip.Net.Ipv4.dst
    ~src_port:f.Net.Frame.udp.Net.Udp.src_port
    ~dst_port:f.Net.Frame.udp.Net.Udp.dst_port
