(** The traditional descriptor-DMA NIC — Figure 1 of the paper.

    Receive path: MAC → RSS queue selection → IOMMU translation of the
    posted buffer → DMA of the payload into host memory → descriptor
    write-back → (moderated) MSI-X interrupt. Everything after the
    interrupt — protocol processing, demultiplexing to a socket, waking
    a thread — is software and belongs to the stack built on top
    ({!Baseline.Linux_stack}), or is polled directly from the rings by
    a kernel-bypass stack. *)

type config = {
  nqueues : int;
  ring_size : int;
  coalesce_interval : Sim.Units.duration;
      (** MSI-X moderation window; 0 disables moderation. *)
  use_iommu : bool;
  mac_pipeline : Sim.Units.duration;
  descriptor_write : Sim.Units.duration;
      (** Descriptor write-back DMA (small, latency-dominated). *)
}

val default_config : config
(** 4 queues, 512-entry rings, 20 µs moderation, IOMMU on. *)

type t

val create :
  Sim.Engine.t -> Coherence.Interconnect.profile -> ?config:config ->
  ?fault:Fault.Plan.t -> ?metrics:Obs.Metrics.t ->
  on_rx_interrupt:(queue:int -> unit) -> unit -> t
(** [on_rx_interrupt] is the driver's ISR entry (typically bridges into
    {!Osmodel.Kernel.run_irq}).

    [metrics] registers the NIC's drop tallies and receive-pool
    occupancy as derived gauges ([nic_ring_drops], [nic_fault_drops],
    [nic_corrupt_drops], [pool_outstanding]) on the given registry,
    sampled at export time.

    [fault] (default {!Fault.Plan.none}) applies the plan's [nic] link
    at the DMA completion stage: [drop] forces counted completion
    drops (pooled buffer released), [corrupt] flips a byte of the
    DMA'd bytes so the driver's in-place parse rejects the descriptor
    at {!consume}. With the default plan no RNG is consumed and
    behaviour is bit-identical to a fault-free NIC. *)

val rx_from_wire : t -> Net.Frame.t -> unit
(** Connect as the wire's deliver callback. *)

val set_steering : ?cost:int -> t -> (Net.Frame.t -> int) -> unit
(** Replace RSS with an explicit flow-director function (kernel-bypass
    stacks steer each service's port to its dedicated queue). The
    result is taken modulo the queue count.

    [cost] (default 0) is charged to every received frame's hardware
    pipeline — {!Steer_verify.install} passes the statically computed
    per-packet cost of a verified steering program here, so steering
    shows up in latency attribution. The off path ([steering] never
    set) charges nothing.

    This is the raw dispatch-table write. Outside [lib/nic] it is
    confined by the simlint [steer-seam] rule: call sites must either
    go through {!Steer_verify.install} (the verified path) or carry an
    explicit [[@steer_seam]] review annotation. *)

val rss_queue : t -> Net.Frame.t -> int
(** The queue RSS would pick for this frame (the NIC's own indirection
    table) — the meaning of a steering program's [Rss] target. *)

val nqueues : t -> int

val rx_ring : t -> queue:int -> Net.Slice.t Ring.t
(** Completed receive descriptors — each a view of the wire bytes DMAed
    into a pooled receive buffer. Prefer {!consume}, which parses in
    place and recycles the buffer; consuming the ring directly makes
    the caller responsible for returning pool-sized buffers via
    {!pool}. *)

val consume : t -> queue:int -> (Net.Frame.view -> 'a) -> 'a option
(** Take the oldest completed descriptor, parse its bytes in place, and
    apply the callback to the zero-copy view. The backing buffer is
    released back to the pool when the callback returns, so the view
    (and its payload slice) must not escape the callback — copy
    ({!Net.Frame.of_view}) anything that must outlive it. [None] when
    the ring is empty — never "bad frame": descriptors whose bytes fail
    checksum validation (DMA corruption) are counted
    ({!rx_corrupt_dropped}), their buffers released, and skipped. *)

val pool : t -> Net.Pool.t
(** The shared receive-buffer pool (for accounting/diagnostics). *)

val mask_irq : t -> queue:int -> unit
val unmask_irq : t -> queue:int -> unit
(** NAPI-style: mask while polling the ring, unmask when drained. *)

val transmit : t -> Net.Frame.t -> via:(Net.Frame.t -> unit) -> unit
(** NIC-side transmit: descriptor fetch + payload DMA read, then hand
    to the wire ([via]). The CPU-side doorbell cost is charged by the
    calling stack. *)

val rx_delivered : t -> int

val rx_dropped : t -> int
(** Ring-full tail drops. *)

val rx_fault_dropped : t -> int
(** Completion drops forced by the fault plan. *)

val rx_corrupt_dropped : t -> int
(** Descriptors rejected (and released) by {!consume}'s validation. *)

val interrupts_fired : t -> int
val interrupts_suppressed : t -> int
val iommu : t -> Iommu.t option
