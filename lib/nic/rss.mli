(** Receive-Side Scaling: Toeplitz flow hashing to spread flows across
    receive queues without OS involvement (§3 of the paper uses RSS as
    the canonical "offload that bypasses the OS entirely").

    This is a real Toeplitz implementation over the IPv4 5-tuple (minus
    protocol, as in Microsoft's RSS spec for UDP: src/dst address and
    src/dst port), with the standard 40-byte default key. *)

type t

val create : ?key:string -> queues:int -> unit -> t
(** @raise Invalid_argument if [queues <= 0] or the key is shorter than
    40 bytes. *)

val default_key : string
(** The de-facto standard Microsoft RSS key. *)

val toeplitz_hash : key:string -> bytes -> int
(** Raw 32-bit Toeplitz hash of the input bytes under the key. *)

val hash : bytes -> int
(** [hash data] is [toeplitz_hash ~key:default_key data]: the pure,
    reusable flow hash.  The steering DSL's key-hash primitive
    ({!Steer}) uses exactly this function, so steering-by-key and RSS
    provably agree on hash values (QCheck-tested). *)

val hash_flow :
  t -> src_ip:Net.Ip_addr.t -> dst_ip:Net.Ip_addr.t -> src_port:int ->
  dst_port:int -> int
(** 32-bit flow hash. *)

val queue_for :
  t -> src_ip:Net.Ip_addr.t -> dst_ip:Net.Ip_addr.t -> src_port:int ->
  dst_port:int -> int
(** Indirection-table lookup: hash → queue index in [0, queues). *)

val queue_of_frame : t -> Net.Frame.t -> int
