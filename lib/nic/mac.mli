(** Ethernet MAC receive block shared by all NIC models.

    Prices the fixed per-frame hardware pipeline between the wire and
    the NIC's packet logic (PCS/MAC, FCS check, buffering) and counts
    traffic. *)

type t

val create :
  Sim.Engine.t -> ?pipeline_delay:Sim.Units.duration ->
  sink:(Net.Frame.t -> unit) -> unit -> t
(** [pipeline_delay] defaults to 300 ns — a 100 Gb/s MAC + parser at
    FPGA clocks; ASIC NICs are faster but the constant is shared by
    all compared systems, so it cancels in comparisons. *)

val rx : t -> Net.Frame.t -> unit
(** Frame arriving from the wire; reaches the sink after the pipeline
    delay. *)

val rx_slice : t -> Net.Slice.t -> unit
(** Byte-level ingress: parse and validate the wire bytes in place
    (zero-copy header/checksum checks) and feed the frame to {!rx};
    malformed frames are counted in {!rx_errors} and dropped, as a real
    MAC drops bad-FCS frames before the packet logic sees them. The
    slice is not retained: the frame detaches from the buffer before
    the pipeline delay is scheduled. *)

val frames : t -> int
val bytes : t -> int

val rx_errors : t -> int
(** Malformed ingress frames dropped by {!rx_slice}. *)
