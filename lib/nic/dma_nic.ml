type config = {
  nqueues : int;
  ring_size : int;
  coalesce_interval : Sim.Units.duration;
  use_iommu : bool;
  mac_pipeline : Sim.Units.duration;
  descriptor_write : Sim.Units.duration;
}

let default_config =
  {
    nqueues = 4;
    ring_size = 512;
    coalesce_interval = Sim.Units.us 20;
    use_iommu = true;
    mac_pipeline = 300;
    descriptor_write = 150;
  }

type queue = {
  ring : Net.Slice.t Ring.t;
  msix : Msix.t;
  buf_base : int;  (* synthetic IOVA region for this queue's buffers *)
}

type t = {
  engine : Sim.Engine.t;
  prof : Coherence.Interconnect.profile;
  cfg : config;
  rss : Rss.t;
  queues : queue array;
  iommu : Iommu.t option;
  mac : Mac.t;
  pool : Net.Pool.t;
  fault : Fault.Plan.link;
  frng : Sim.Rng.t;  (* fault stream; drawn from only when faults are on *)
  mutable delivered : int;
  mutable fault_dropped : int;  (* forced completion drops (plan.nic.drop) *)
  mutable corrupt_dropped : int;  (* descriptors the driver parse rejected *)
  mutable steering : (Net.Frame.t -> int) option;
  mutable steering_cost : int;
      (* statically verified per-packet cost of the installed steering
         program (ns); 0 when steering is off — the off path charges
         nothing. *)
}

let buffer_bytes = 2048

let queue t q =
  if q < 0 || q >= Array.length t.queues then
    invalid_arg (Printf.sprintf "Dma_nic: no queue %d" q);
  t.queues.(q)

(* Receive-path hardware steps for one frame. *)
let rx_frame t frame =
  let qi =
    match t.steering with
    | Some f -> f frame mod Array.length t.queues
    | None -> Rss.queue_of_frame t.rss frame
  in
  let q = queue t qi in
  let translate_cost =
    match t.iommu with
    | Some mmu ->
        let slot = Ring.produced q.ring land (t.cfg.ring_size - 1) in
        Iommu.translate mmu ~iova:(q.buf_base + (slot * buffer_bytes))
    | None -> 0
  in
  let payload_dma =
    Coherence.Interconnect.dma_transfer t.prof
      ~bytes:(Net.Frame.wire_size frame)
  in
  let steer_cost = match t.steering with Some _ -> t.steering_cost | None -> 0 in
  let total = steer_cost + translate_cost + payload_dma + t.cfg.descriptor_write in
  ignore
    (Sim.Engine.schedule_after t.engine ~after:total (fun () ->
         (* DMA completion: the wire bytes land in a pooled receive
            buffer and the descriptor carries a view of them — the
            driver parses in place and returns the buffer at consume.
            Jumbo frames that exceed the posted buffer size get a
            one-off allocation outside the pool. *)
         let size = Net.Frame.wire_size frame in
         let buf =
           if size <= buffer_bytes then Net.Pool.acquire t.pool
           else Bytes.create size
         in
         let slice = Net.Frame.encode_into frame buf in
         if
           t.fault.Fault.Plan.drop > 0.
           && Sim.Rng.float t.frng < t.fault.Fault.Plan.drop
         then begin
           (* Injected completion fault: the frame vanishes at the DMA
              stage — a counted tail drop that must release its pooled
              buffer like any other rejection. *)
           t.fault_dropped <- t.fault_dropped + 1;
           if Bytes.length buf = buffer_bytes then Net.Pool.release t.pool buf
         end
         else begin
           if
             t.fault.Fault.Plan.corrupt > 0.
             && Sim.Rng.float t.frng < t.fault.Fault.Plan.corrupt
           then
             (* DMA corruption: the descriptor's bytes are damaged in
                host memory; the driver's in-place parse (checksums)
                rejects it at [consume]. *)
             Fault.Link.flip_checksummed t.frng
               ~ip_payload_len:frame.Net.Frame.ip.Net.Ipv4.payload_len slice;
           if Ring.produce q.ring slice then begin
             t.delivered <- t.delivered + 1;
             Msix.raise_event q.msix
           end
           else if Bytes.length buf = buffer_bytes then
             Net.Pool.release t.pool buf
         end))

let create engine prof ?(config = default_config) ?(fault = Fault.Plan.none)
    ?metrics ~on_rx_interrupt () =
  if config.nqueues <= 0 then invalid_arg "Dma_nic.create: nqueues <= 0";
  let iommu = if config.use_iommu then Some (Iommu.create ()) else None in
  let queues =
    Array.init config.nqueues (fun q ->
        let buf_base = (q + 1) * 0x1000_0000 in
        (match iommu with
        | Some mmu ->
            Iommu.map mmu ~iova:buf_base
              ~len:(config.ring_size * buffer_bytes)
        | None -> ());
        {
          ring = Ring.create ~size:config.ring_size;
          msix =
            Msix.create engine ~min_interval:config.coalesce_interval
              ~fire:(fun () -> on_rx_interrupt ~queue:q)
              ();
          buf_base;
        })
  in
  (* The MAC's sink needs [t], which needs the MAC: tie the knot. *)
  let sink_ref = ref (fun (_ : Net.Frame.t) -> ()) in
  let mac =
    Mac.create engine ~pipeline_delay:config.mac_pipeline
      ~sink:(fun f -> !sink_ref f)
      ()
  in
  let t =
    {
      engine;
      prof;
      cfg = config;
      rss = Rss.create ~queues:config.nqueues ();
      queues;
      iommu;
      mac;
      pool = Net.Pool.create ~prealloc:config.ring_size ~buffer_bytes ();
      fault = fault.Fault.Plan.nic;
      frng = Fault.Plan.derived_rng fault ~salt:11;
      delivered = 0;
      fault_dropped = 0;
      corrupt_dropped = 0;
      steering = None;
      steering_cost = 0;
    }
  in
  sink_ref := (fun f -> rx_frame t f);
  (match metrics with
  | None -> ()
  | Some m ->
      Obs.Metrics.derive m "nic_ring_drops" (fun () ->
          Array.fold_left (fun acc q -> acc + Ring.drops q.ring) 0 t.queues);
      Obs.Metrics.derive m "nic_fault_drops" (fun () -> t.fault_dropped);
      Obs.Metrics.derive m "nic_corrupt_drops" (fun () -> t.corrupt_dropped);
      Obs.Metrics.derive m "pool_outstanding" (fun () ->
          Net.Pool.outstanding t.pool));
  t

let rx_from_wire t frame = Mac.rx t.mac frame

let set_steering ?(cost = 0) t f =
  if cost < 0 then invalid_arg "Dma_nic.set_steering: cost < 0";
  t.steering <- Some f;
  t.steering_cost <- cost

let rss_queue t frame = Rss.queue_of_frame t.rss frame
let nqueues t = Array.length t.queues
let rx_ring t ~queue:q = (queue t q).ring

(* Driver-side receive: parse the oldest descriptor's bytes in place,
   hand the zero-copy view to [f], then return the buffer to the pool
   before the view can escape misuse (the view is only valid inside
   [f]). A descriptor whose bytes fail validation (DMA corruption under
   a fault plan) is counted, its buffer released, and the next
   descriptor tried — [None] still means "ring empty", never "bad
   frame", so NAPI/poll loops cannot stall on a corrupt head. *)
let rec consume t ~queue:q f =
  match Ring.consume (queue t q).ring with
  | None -> None
  | Some slice -> (
      let release () =
        let buf = slice.Net.Slice.base in
        if Bytes.length buf = buffer_bytes then Net.Pool.release t.pool buf
      in
      match Net.Frame.parse_slice slice with
      | Ok view ->
          let result = f view in
          release ();
          Some result
      | Error _ ->
          t.corrupt_dropped <- t.corrupt_dropped + 1;
          release ();
          consume t ~queue:q f)

let pool t = t.pool
let mask_irq t ~queue:q = Msix.mask (queue t q).msix
let unmask_irq t ~queue:q = Msix.unmask (queue t q).msix

let transmit t frame ~via =
  (* Descriptor fetch, then payload DMA read, then the wire. *)
  let cost =
    t.prof.Coherence.Interconnect.dma_read
    + Coherence.Interconnect.dma_transfer t.prof
        ~bytes:(Net.Frame.wire_size frame)
  in
  ignore (Sim.Engine.schedule_after t.engine ~after:cost (fun () -> via frame))

let rx_delivered t = t.delivered

let rx_dropped t =
  Array.fold_left (fun acc q -> acc + Ring.drops q.ring) 0 t.queues

let rx_fault_dropped t = t.fault_dropped
let rx_corrupt_dropped t = t.corrupt_dropped

let interrupts_fired t =
  Array.fold_left (fun acc q -> acc + Msix.fired q.msix) 0 t.queues

let interrupts_suppressed t =
  Array.fold_left (fun acc q -> acc + Msix.suppressed q.msix) 0 t.queues

let iommu t = t.iommu
