type t = {
  engine : Sim.Engine.t;
  send : Net.Frame.t -> unit;
  endpoint : Net.Frame.endpoint;
  continuations : Rpc.Value.t Rpc.Continuation.t;
  epochs : (int, int) Hashtbl.t;
      (* continuation id -> epoch: a recycled id must not accept a late
         response meant for its previous owner (ABA) *)
  mutable next_epoch : int;
  schemas : (int * int, Rpc.Schema.t) Hashtbl.t;
  rng : Sim.Rng.t;  (* backoff jitter; only drawn when jitter > 0 *)
  mutable sent : int;
  mutable completed : int;
  mutable errors : int;
  mutable retransmits : int;
  mutable abandoned : int;
  mutable duplicates : int;
  mutable rejected : int;
  mutable retry_budget : int;
  mutable budget_exhausted : int;
}

(* rpc_id = epoch << 20 | continuation id. *)
let cont_bits = 20

let rpc_id_of ~epoch ~cont =
  Int64.logor
    (Int64.shift_left (Int64.of_int epoch) cont_bits)
    (Int64.of_int cont)

let split_rpc_id id =
  ( Int64.to_int (Int64.shift_right_logical id cont_bits),
    Int64.to_int (Int64.logand id (Int64.of_int ((1 lsl cont_bits) - 1))) )

let create engine ~send ?endpoint ?(seed = 0x7e7) ?(retry_budget = max_int)
    ?metrics () =
  let endpoint =
    match endpoint with Some e -> e | None -> Traffic.client_endpoint ()
  in
  if retry_budget < 0 then invalid_arg "Client.create: negative retry_budget";
  let t =
    {
      engine;
      send;
      endpoint;
      continuations = Rpc.Continuation.create ();
      epochs = Hashtbl.create 64;
      next_epoch = 1;
      schemas = Hashtbl.create 16;
      rng = Sim.Rng.create ~seed;
      sent = 0;
      completed = 0;
      errors = 0;
      retransmits = 0;
      abandoned = 0;
      duplicates = 0;
      rejected = 0;
      retry_budget;
      budget_exhausted = 0;
    }
  in
  (match metrics with
  | None -> ()
  | Some m ->
      Obs.Metrics.derive m "client_sent" (fun () -> t.sent);
      Obs.Metrics.derive m "client_completed" (fun () -> t.completed);
      Obs.Metrics.derive m "client_errors" (fun () -> t.errors);
      Obs.Metrics.derive m "client_retransmits" (fun () -> t.retransmits);
      Obs.Metrics.derive m "client_abandoned" (fun () -> t.abandoned);
      Obs.Metrics.derive m "client_rejected" (fun () -> t.rejected);
      Obs.Metrics.derive m "client_duplicates" (fun () -> t.duplicates);
      Obs.Metrics.derive m "client_budget_exhausted" (fun () ->
          t.budget_exhausted));
  t

let expect t ~service_id ~method_id schema =
  Hashtbl.replace t.schemas (service_id, method_id) schema

(* Exponential growth saturates well below max_int so the float->int
   conversion stays exact-enough and never overflows. *)
let grow base backoff =
  let next = float_of_int base *. backoff in
  if next > 1e15 then 1_000_000_000_000_000 else int_of_float (Float.round next)

let call_id ?timeout ?(retries = 3) ?(backoff = 1.) ?(max_timeout = max_int)
    ?(jitter = 0.) t ~service_id ~method_id ~port args k =
  if backoff < 1. then invalid_arg "Client.call: backoff < 1";
  if jitter < 0. || jitter >= 1. then
    invalid_arg "Client.call: jitter out of [0,1)";
  if max_timeout <= 0 then invalid_arg "Client.call: non-positive max_timeout";
  let done_flag = ref false in
  let cont_ref = ref (-1) in
  let cont =
    Rpc.Continuation.alloc t.continuations (fun v ->
        done_flag := true;
        Hashtbl.remove t.epochs !cont_ref;
        k v)
  in
  cont_ref := cont;
  if cont >= 1 lsl cont_bits then
    invalid_arg "Client.call: too many outstanding calls";
  let epoch = t.next_epoch in
  t.next_epoch <- t.next_epoch + 1;
  Hashtbl.replace t.epochs cont epoch;
  let frame () =
    Traffic.request_frame
      ~rpc_id:(rpc_id_of ~epoch ~cont)
      ~service_id ~method_id ~port ~client:t.endpoint args
  in
  t.sent <- t.sent + 1;
  t.send (frame ());
  (match timeout with
  | None -> ()
  | Some timeout ->
      if timeout <= 0 then invalid_arg "Client.call: non-positive timeout";
      let rec arm attempts_left base =
        let wait =
          if jitter > 0. then
            max 1
              (int_of_float
                 (float_of_int base *. (1. -. (jitter *. Sim.Rng.float t.rng))))
          else base
        in
        ignore
          (Sim.Engine.schedule_after t.engine ~after:wait (fun () ->
               if not !done_flag then
                 if attempts_left > 0 && t.retry_budget > 0 then begin
                   t.retransmits <- t.retransmits + 1;
                   t.retry_budget <- t.retry_budget - 1;
                   t.send (frame ());
                   arm (attempts_left - 1) (min max_timeout (grow base backoff))
                 end
                 else begin
                   if attempts_left > 0 then
                     t.budget_exhausted <- t.budget_exhausted + 1;
                   t.abandoned <- t.abandoned + 1;
                   Hashtbl.remove t.epochs cont;
                   ignore (Rpc.Continuation.cancel t.continuations cont)
                 end))
      in
      arm retries timeout);
  rpc_id_of ~epoch ~cont

let call ?timeout ?retries t ~service_id ~method_id ~port args k =
  ignore (call_id ?timeout ?retries t ~service_id ~method_id ~port args k)

let on_reply t frame =
  match Rpc.Wire_format.decode frame.Net.Frame.payload with
  | Error _ -> ()
  | Ok msg -> (
      match msg.Rpc.Wire_format.kind with
      | Rpc.Wire_format.Request -> ()
      | Rpc.Wire_format.Error_reply code ->
          let epoch, cont = split_rpc_id msg.Rpc.Wire_format.rpc_id in
          if Hashtbl.find_opt t.epochs cont = Some epoch then
            if Rpc.Wire_format.retriable_error code then
              (* An explicit transport-level reject (shed under
                 overload, dead service): keep the call armed — the
                 backoff timer already running for it will retransmit,
                 exactly as if the request had been lost, except the
                 client learns immediately instead of burning a
                 timeout. *)
              t.rejected <- t.rejected + 1
            else begin
              t.errors <- t.errors + 1;
              Hashtbl.remove t.epochs cont;
              ignore (Rpc.Continuation.cancel t.continuations cont)
            end
      | Rpc.Wire_format.Response ->
          let epoch, cont = split_rpc_id msg.Rpc.Wire_format.rpc_id in
          if Hashtbl.find_opt t.epochs cont <> Some epoch then
            (* A duplicate, or a late response to an abandoned (and
               possibly recycled) id: drop it. *)
            t.duplicates <- t.duplicates + 1
          else
            let key =
              (msg.Rpc.Wire_format.service_id, msg.Rpc.Wire_format.method_id)
            in
            let value =
              match Hashtbl.find_opt t.schemas key with
              | Some schema -> (
                  match Rpc.Codec.decode schema msg.Rpc.Wire_format.body with
                  | Ok v -> Some v
                  | Error _ -> None)
              | None -> Some (Rpc.Value.Blob msg.Rpc.Wire_format.body)
            in
            (match value with
            | Some v ->
                if Rpc.Continuation.fire t.continuations cont v then
                  t.completed <- t.completed + 1
            | None ->
                t.errors <- t.errors + 1;
                Hashtbl.remove t.epochs cont;
                ignore (Rpc.Continuation.cancel t.continuations cont)))

let outstanding t = Rpc.Continuation.live t.continuations
let completed t = t.completed
let errors t = t.errors

let sent t = t.sent
let retransmits t = t.retransmits
let abandoned t = t.abandoned
let duplicates t = t.duplicates
let rejected t = t.rejected
let budget_exhausted t = t.budget_exhausted
let retry_budget_left t = t.retry_budget
