(** A lossy-network client harness.

    Wraps a {!Client} (with the full retry policy: exponential backoff,
    seeded jitter, retry budget, duplicate suppression) behind a pair of
    {!Fault.Link}s — one per direction between the client and the
    server's MAC — and a {!Recorder} measuring retry-inflated latency.

    Everything is derived from the {!Fault.Plan}'s seed, so the same
    plan + workload seeds reproduce the same trace; {!timeline_digest}
    condenses the completion timeline into one int for determinism
    regression checks. *)

type t

val create :
  Sim.Engine.t ->
  plan:Fault.Plan.t ->
  ?timeout:Sim.Units.duration ->
  ?retries:int ->
  ?backoff:float ->
  ?max_timeout:Sim.Units.duration ->
  ?jitter:float ->
  ?retry_budget:int ->
  ?metrics:Obs.Metrics.t ->
  unit ->
  t
(** Defaults: 200 us initial timeout, 20 retries, backoff 2.0 capped at
    2 ms, jitter 0.25, unlimited budget. [metrics] is forwarded to
    {!Client.create} so the client's tallies export as [client_*]
    derived gauges alongside the server's. *)

val connect : t -> Driver.t -> unit
(** Point the forward (request) link at a server's ingress. Frames sent
    before [connect] are dropped silently. *)

val egress : t -> Net.Frame.t -> unit
(** The server stack's egress: response frames enter the backward
    (reply) link here. Usable at stack-construction time, before
    {!connect}. *)

val call :
  t -> service_id:int -> method_id:int -> port:int -> Rpc.Value.t -> unit
(** Issue one echo-style call through the faulty links with the
    configured retry policy, recording send and completion times. *)

val client : t -> Client.t
val recorder : t -> Recorder.t

val timeline : t -> (Sim.Units.time * int64 * Sim.Units.duration) list
(** Completions in order: (completion time, rpc_id, latency). *)

val timeline_digest : t -> int
(** Order-sensitive hash of {!timeline}; equal digests for equal
    timelines — the determinism regression signal. *)

val stats : t -> (string * int) list
(** Client retry/suppression counters plus both links' fault counters
    (prefixed [req_] and [rep_]). A [rejected] entry (explicit
    shed/dead NACKs converted into retries) appears only when
    nonzero. *)
