type t = {
  name : string;
  ingress : Net.Frame.t -> unit;
  kernel : Osmodel.Kernel.t;
  counters : Sim.Counter.group;
  metrics : Obs.Metrics.t;
  describe : unit -> string;
}

let make ~name ~ingress ~kernel ~counters ?metrics ?describe () =
  let metrics =
    match metrics with Some m -> m | None -> Obs.Metrics.create ()
  in
  let describe =
    match describe with Some f -> f | None -> fun () -> name
  in
  { name; ingress; kernel; counters; metrics; describe }
