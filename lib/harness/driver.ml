type t = {
  name : string;
  ingress : Net.Frame.t -> unit;
  kernel : Osmodel.Kernel.t;
  counters : Sim.Counter.group;
  extra_counters : unit -> (string * int) list;
  describe : unit -> string;
}

let make ~name ~ingress ~kernel ~counters ?(extra_counters = fun () -> [])
    ?describe () =
  let describe =
    match describe with Some f -> f | None -> fun () -> name
  in
  { name; ingress; kernel; counters; extra_counters; describe }
