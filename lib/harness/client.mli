(** A simulated RPC client.

    Issues requests into a server's ingress and matches response frames
    back to per-call continuations — the client-side realisation of the
    paper's §6 observation that replies need "a dedicated end-point"
    created cheaply per outstanding call: the continuation id is the
    RPC id on the wire, allocated and recycled in O(1) by
    {!Rpc.Continuation}. *)

type t

val create :
  Sim.Engine.t -> send:(Net.Frame.t -> unit) ->
  ?endpoint:Net.Frame.endpoint -> ?seed:int -> ?retry_budget:int ->
  ?metrics:Obs.Metrics.t -> unit -> t
(** [seed] feeds the backoff-jitter stream (drawn from only when a call
    uses [jitter > 0]). [retry_budget] caps the total number of
    retransmissions across all calls (default: unlimited); once spent,
    timed-out calls are abandoned instead of retried.

    With [metrics], the client's tallies register as [client_*] derived
    gauges (sent, completed, errors, retransmits, abandoned, rejected,
    duplicates, budget_exhausted) so experiment reports carry them
    uniformly with the server-side counters. *)

val call :
  ?timeout:Sim.Units.duration -> ?retries:int -> t -> service_id:int ->
  method_id:int -> port:int -> Rpc.Value.t -> (Rpc.Value.t -> unit) -> unit
(** Issue a call; the continuation fires with the decoded result when
    the response arrives. The response body is decoded as a raw blob
    when no schema is registered — register one with {!expect} for
    typed decoding.

    With [timeout] set, the request is retransmitted (same RPC id, so
    at-least-once with server-side idempotence left to the service) up
    to [retries] times (default 3) before the call is abandoned. *)

val call_id :
  ?timeout:Sim.Units.duration -> ?retries:int -> ?backoff:float ->
  ?max_timeout:Sim.Units.duration -> ?jitter:float -> t -> service_id:int ->
  method_id:int -> port:int -> Rpc.Value.t -> (Rpc.Value.t -> unit) -> int64
(** {!call}, returning the wire [rpc_id], with the full retry policy:
    the [n]th retransmission waits [timeout * backoff^n] (capped at
    [max_timeout]), each wait shrunk by a seeded jitter factor uniform
    in [(1 - jitter, 1]]. Defaults ([backoff = 1], [jitter = 0])
    reproduce {!call}'s fixed-interval behaviour exactly.
    @raise Invalid_argument if [backoff < 1] or [jitter] outside [0,1). *)

val sent : t -> int
(** First transmissions (excludes retransmits). *)

val retransmits : t -> int
val abandoned : t -> int
(** Calls given up after exhausting retries (or the retry budget). *)

val rejected : t -> int
(** Explicit transport-level rejects received ({!Rpc.Wire_format}
    [err_shed]/[err_dead] error replies). A rejected call stays armed:
    the running backoff timer retransmits it like a lost packet, so
    rejects convert into retries, not errors — calls issued without a
    [timeout] have no such timer and simply stay outstanding. *)

val duplicates : t -> int
(** Response frames suppressed by rpc-id/epoch matching: duplicates of
    an already-completed call, or late replies to abandoned ids. *)

val budget_exhausted : t -> int
(** Calls abandoned specifically because the retry budget ran out. *)

val retry_budget_left : t -> int

val expect : t -> service_id:int -> method_id:int -> Rpc.Schema.t -> unit
(** Register the response schema of a method (clients know the IDL). *)

val on_reply : t -> Net.Frame.t -> unit
(** Connect to the server's egress: filters and consumes responses
    addressed to this client's ids; ignores other frames. *)

val outstanding : t -> int
val completed : t -> int
val errors : t -> int
(** Responses carrying an application error, or undecodable bodies. *)
