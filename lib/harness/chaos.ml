type t = {
  client : Client.t;
  recorder : Recorder.t;
  forward : Fault.Link.t;
  backward : Fault.Link.t;
  target : (Net.Frame.t -> unit) ref;
      (* where the forward link delivers; set by [connect] *)
  timeout : Sim.Units.duration;
  retries : int;
  backoff : float;
  max_timeout : Sim.Units.duration;
  jitter : float;
  mutable timeline_rev : (Sim.Units.time * int64 * Sim.Units.duration) list;
}

let create engine ~plan ?(timeout = Sim.Units.us 200) ?(retries = 20)
    ?(backoff = 2.) ?(max_timeout = Sim.Units.ms 2) ?(jitter = 0.25)
    ?(retry_budget = max_int) ?metrics () =
  let target = ref (fun (_ : Net.Frame.t) -> ()) in
  let forward =
    Fault.Link.create engine ~plan:plan.Fault.Plan.wire
      ~rng:(Fault.Plan.derived_rng plan ~salt:1)
      ~deliver:(fun f -> !target f)
      ()
  in
  let client =
    Client.create engine
      ~send:(fun f -> Fault.Link.send forward f)
      ~seed:(Fault.Plan.derived_seed plan ~salt:2)
      ~retry_budget ?metrics ()
  in
  let backward =
    Fault.Link.create engine ~plan:plan.Fault.Plan.wire
      ~rng:(Fault.Plan.derived_rng plan ~salt:3)
      ~deliver:(fun f -> Client.on_reply client f)
      ()
  in
  let recorder = Recorder.create engine in
  let t =
    {
      client;
      recorder;
      forward;
      backward;
      target;
      timeout;
      retries;
      backoff;
      max_timeout;
      jitter;
      timeline_rev = [];
    }
  in
  Recorder.on_complete recorder (fun ~rpc_id ~latency ->
      t.timeline_rev <-
        (Sim.Engine.now engine, rpc_id, latency) :: t.timeline_rev);
  t

let connect t (driver : Driver.t) = t.target := driver.Driver.ingress
let egress t frame = Fault.Link.send t.backward frame

let call t ~service_id ~method_id ~port args =
  let id_ref = ref 0L in
  let rpc_id =
    Client.call_id t.client ~timeout:t.timeout ~retries:t.retries
      ~backoff:t.backoff ~max_timeout:t.max_timeout ~jitter:t.jitter
      ~service_id ~method_id ~port args (fun _ ->
        Recorder.complete_by_id t.recorder ~rpc_id:!id_ref)
  in
  id_ref := rpc_id;
  Recorder.note_sent t.recorder ~rpc_id

let client t = t.client
let recorder t = t.recorder
let timeline t = List.rev t.timeline_rev

let timeline_digest t =
  List.fold_left
    (fun h (at, id, lat) ->
      let h = ((h * 1_000_003) + at) land max_int in
      let h = ((h * 1_000_003) + Int64.to_int id) land max_int in
      ((h * 1_000_003) + lat) land max_int)
    0x1505 (timeline t)

let stats t =
  [
    ("completed", Client.completed t.client);
    ("errors", Client.errors t.client);
    ("retransmits", Client.retransmits t.client);
    ("abandoned", Client.abandoned t.client);
    ("duplicates_suppressed", Client.duplicates t.client);
    ("budget_exhausted", Client.budget_exhausted t.client);
  ]
  (* Appended only when nonzero, matching the registry convention that
     fault-free reports stay free of fault counters. *)
  @ (match Client.rejected t.client with
    | 0 -> []
    | n -> [ ("rejected", n) ])
  @ Fault.Link.counters t.forward ~prefix:"req_"
  @ Fault.Link.counters t.backward ~prefix:"rep_"
