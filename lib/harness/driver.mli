(** The uniform face every server stack presents to experiments.

    A driver is "a server machine": frames go in at the NIC ingress,
    response frames come out at the egress the stack was created with,
    and the kernel underneath exposes its cycle ledgers. Benchmarks and
    examples drive Linux-style, kernel-bypass, and Lauberhorn stacks
    through this one record. *)

type t = {
  name : string;
  ingress : Net.Frame.t -> unit;
      (** A request frame arriving at the server NIC. *)
  kernel : Osmodel.Kernel.t;
  counters : Sim.Counter.group;
  extra_counters : unit -> (string * int) list;
      (** Stack-specific counters outside the {!Sim.Counter} group —
          fault-injection and pool accounting; empty when the stack has
          no fault plan, so faultless reports are unchanged. *)
  describe : unit -> string;
      (** One-line configuration summary for reports. *)
}

val make :
  name:string -> ingress:(Net.Frame.t -> unit) -> kernel:Osmodel.Kernel.t ->
  counters:Sim.Counter.group ->
  ?extra_counters:(unit -> (string * int) list) ->
  ?describe:(unit -> string) -> unit -> t
