(** The uniform face every server stack presents to experiments.

    A driver is "a server machine": frames go in at the NIC ingress,
    response frames come out at the egress the stack was created with,
    and the kernel underneath exposes its cycle ledgers. Benchmarks and
    examples drive Linux-style, kernel-bypass, and Lauberhorn stacks
    through this one record. *)

type t = {
  name : string;
  ingress : Net.Frame.t -> unit;
      (** A request frame arriving at the server NIC. *)
  kernel : Osmodel.Kernel.t;
  counters : Sim.Counter.group;
  metrics : Obs.Metrics.t;
      (** The stack's unified metrics registry — NIC drop/overflow
          gauges, fault-injection counters, pool accounting. Fault-free
          runs leave the fault counters at zero, and zero-valued
          scalars are dropped from {!Obs.Metrics.to_list}, so faultless
          reports are unchanged. *)
  describe : unit -> string;
      (** One-line configuration summary for reports. *)
}

val make :
  name:string -> ingress:(Net.Frame.t -> unit) -> kernel:Osmodel.Kernel.t ->
  counters:Sim.Counter.group -> ?metrics:Obs.Metrics.t ->
  ?describe:(unit -> string) -> unit -> t
(** [metrics] defaults to a fresh empty registry. *)
