(* Build-time steering-program gate: verify every shipped program under
   the default NIC environment. Any rejection is a build error — wired
   into `dune build @check` and scripts/check.sh. *)

let () =
  let env = Nic.Steer_verify.default_env in
  let failed = ref 0 in
  List.iter
    (fun (p : Nic.Steer.t) ->
      match Nic.Steer_verify.verify ~env p with
      | Ok v ->
          Printf.printf "steer_verify: %-16s PASS (static cost %d ns)\n"
            p.Nic.Steer.name (Nic.Steer_verify.cost v)
      | Error diags ->
          incr failed;
          Printf.printf "steer_verify: %-16s REJECTED\n" p.Nic.Steer.name;
          List.iter (fun d -> Printf.printf "  %s\n" d) diags)
    Nic.Steer.builtins;
  Printf.printf "steer_verify: %d program(s), %d rejected\n"
    (List.length Nic.Steer.builtins) !failed;
  if !failed > 0 then exit 1
