(* lauberhorn-figures: regenerate a single experiment by id (the bench
   executable runs them all; this gives scripted access to one). *)

open Cmdliner

let sections =
  [
    ("fig2", Experiments.Fig2.run);
    ("steps", Experiments.Steps.run);
    ("dispatch", Experiments.Dispatch.run);
    ("crossover", Experiments.Crossover.run);
    ("tryagain", Experiments.Tryagain.run);
    ("loadsweep", Experiments.Loadsweep.run);
    ("dynamic", Experiments.Dynamic.run);
    ("energy", Experiments.Energy.run);
    ("scaling", Experiments.Scaling.run);
    ("modelcheck", Experiments.Modelcheck.run);
    ("encrypt", Experiments.Encrypt.run);
    ("losssweep", Experiments.Losssweep.run);
    ("trace", Experiments.Trace.run);
    ("failover", Experiments.Failover.run);
    ("parallel", Experiments.Parallel.run);
    ("rack", Experiments.Rack.run);
    ("obstrace", Experiments.Obstrace.run);
    ("chaossoak", Experiments.Chaossoak.run);
    ("steering", Experiments.Steering.run);
  ]

let section_arg =
  let section_conv = Arg.enum sections in
  let doc =
    Printf.sprintf "Experiment to run: %s."
      (String.concat ", " (List.map fst sections))
  in
  Arg.(non_empty & pos_all section_conv [] & info [] ~docv:"EXPERIMENT" ~doc)

let run fns =
  List.iter (fun f -> f ()) fns;
  0

let cmd =
  let doc = "regenerate one figure/experiment of the reproduction" in
  Cmd.v (Cmd.info "lauberhorn-figures" ~doc) Term.(const run $ section_arg)

let () = exit (Cmd.eval' cmd)
