(* simlint CLI: `simlint_cli [paths...]` (default: lib). Exits 1 on any
   finding. The analysis lives in lib/simlint so tests can drive it on
   fixture sources directly. *)
let () = Simlint.main ()
